package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestAppendWritesOneLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	rec := Record{
		Time: "2026-08-07T00:00:00Z", RequestID: "r-1", Tenant: "a",
		Route: "/v1/protect", Method: "POST", Status: 200, Rows: 20000,
		DurationMS: 42, Remote: "127.0.0.1:9999",
	}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("Append wrote %q, want exactly one newline-terminated line", line)
	}
	var got Record
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round-trip = %+v, want %+v", got, rec)
	}
}

func TestNilLoggerDiscards(t *testing.T) {
	var l *Logger
	if err := l.Append(Record{RequestID: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := (&Logger{}).Append(Record{RequestID: "r"}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{RequestID: "r-1", Route: "/v1/detect", Status: 200})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the file is appended to, not truncated.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(Record{RequestID: "r-2", Route: "/v1/detect", Status: 403, Code: "forbidden"})
	l2.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ids []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		ids = append(ids, rec.RequestID)
	}
	if len(ids) != 2 || ids[0] != "r-1" || ids[1] != "r-2" {
		t.Fatalf("request IDs = %v, want [r-1 r-2]", ids)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("audit file mode = %v, %v; want 0600", fi.Mode().Perm(), err)
	}
}

func TestConcurrentAppendsDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Append(Record{RequestID: "r", Route: "/v1/protect", Status: 200, DurationMS: int64(j)})
			}
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved/corrupt line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 8*200 {
		t.Fatalf("got %d lines, want %d", n, 8*200)
	}
}
