// Package audit writes the service's append-only audit trail: one JSON
// line per audited request — who (tenant, request ID, remote address),
// what (route, method), and how it went (status, error code, rows
// touched, duration). The record type carries, by construction, no
// field that could hold secret material: no headers, no body, no table
// data, no error message text (messages can echo user input; the
// machine code cannot).
//
// The log is plain JSONL so operators can tail/grep/ship it with
// anything; writes go through one mutex so concurrent requests never
// interleave partial lines.
package audit

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Record is one audit line.
type Record struct {
	// Time is the request start in RFC3339Nano (UTC).
	Time string `json:"time"`
	// RequestID is the per-request ID also echoed in X-Request-Id.
	RequestID string `json:"request_id"`
	// Tenant is the authenticated tenant ID ("default" in open mode;
	// empty when the request failed authentication).
	Tenant string `json:"tenant,omitempty"`
	Route  string `json:"route"`
	Method string `json:"method"`
	Status int    `json:"status"`
	// Code is the machine-readable api error code for non-2xx outcomes.
	Code string `json:"code,omitempty"`
	// Rows is how many table rows the request processed (0 for
	// row-less calls like registry deletes).
	Rows int `json:"rows,omitempty"`
	// DurationMS is wall time in milliseconds.
	DurationMS int64 `json:"duration_ms"`
	// Remote is the client address (host:port as seen by the server).
	Remote string `json:"remote,omitempty"`
	// Job links the line to an async job when the request submitted or
	// cancelled one.
	Job string `json:"job,omitempty"`
}

// Logger appends Records to a writer. The zero value (and a nil
// *Logger) discards everything, so call sites never nil-check.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
}

// NewLogger writes records to w (no closing; for tests and pipes).
func NewLogger(w io.Writer) *Logger { return &Logger{w: w} }

// Open appends to the JSONL file at path, creating it mode 0600. The
// audit trail is operator data — group/world bits stay off like the
// job store's.
func Open(path string) (*Logger, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, err
	}
	return &Logger{w: f, c: f}, nil
}

// Append writes one record as a single JSON line. Marshal errors are
// impossible (Record is all plain fields); write errors are returned so
// the server can surface a failing audit disk, but requests are never
// refused over them.
func (l *Logger) Append(rec Record) error {
	if l == nil || l.w == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(data)
	return err
}

// Close closes the underlying file, if Open created one.
func (l *Logger) Close() error {
	if l == nil || l.c == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Close()
}
