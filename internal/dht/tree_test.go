package dht

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperFig1 builds a role tree shaped like Figure 1 of the paper:
// Person is the root; leaves are specific roles at mixed depths.
func paperFig1(t *testing.T) *Tree {
	t.Helper()
	tree, err := NewCategorical("doctor", Spec{
		Value: "Person",
		Children: []Spec{
			{Value: "Medical Staff", Children: []Spec{
				{Value: "Doctor", Children: []Spec{
					{Value: "Physician"}, {Value: "Surgeon"}, {Value: "Radiologist"},
				}},
				{Value: "Paramedic", Children: []Spec{
					{Value: "Pharmacist"}, {Value: "Nurse"}, {Value: "Consultant"},
				}},
			}},
			{Value: "Admin Staff", Children: []Spec{
				{Value: "Clerk"}, {Value: "Manager"},
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestCategoricalShape(t *testing.T) {
	tree := paperFig1(t)
	if tree.Attr() != "doctor" {
		t.Errorf("Attr = %q", tree.Attr())
	}
	if tree.Numeric() {
		t.Error("categorical tree reported numeric")
	}
	if tree.Size() != 13 {
		t.Errorf("Size = %d, want 13", tree.Size())
	}
	if got := tree.NumLeaves(); got != 8 {
		t.Errorf("NumLeaves = %d, want 8", got)
	}
	if tree.Height() != 3 {
		t.Errorf("Height = %d, want 3", tree.Height())
	}
	root := tree.Root()
	if tree.Value(root) != "Person" || tree.Parent(root) != None {
		t.Error("root wrong")
	}
}

func TestCategoricalRejectsDuplicatesAndEmpty(t *testing.T) {
	_, err := NewCategorical("x", Spec{Value: "A", Children: []Spec{{Value: "A"}}})
	if err == nil {
		t.Error("expected duplicate-value error")
	}
	_, err = NewCategorical("x", Spec{Value: "  "})
	if err == nil {
		t.Error("expected empty-value error")
	}
}

func TestParentChildrenSiblings(t *testing.T) {
	tree := paperFig1(t)
	nurse, ok := tree.ByValue("Nurse")
	if !ok {
		t.Fatal("Nurse not found")
	}
	paramedic := tree.Parent(nurse)
	if tree.Value(paramedic) != "Paramedic" {
		t.Fatalf("parent of Nurse = %q", tree.Value(paramedic))
	}
	ch := tree.Children(paramedic)
	if len(ch) != 3 {
		t.Fatalf("Paramedic children = %d, want 3", len(ch))
	}
	sib := tree.Siblings(nurse)
	if len(sib) != 3 {
		t.Fatalf("Siblings(Nurse) = %d nodes, want 3 (nd together with its siblings)", len(sib))
	}
	found := false
	for _, s := range sib {
		if s == nurse {
			found = true
		}
	}
	if !found {
		t.Error("Siblings must include the node itself")
	}
	// Root's sibling set is itself.
	rs := tree.Siblings(tree.Root())
	if len(rs) != 1 || rs[0] != tree.Root() {
		t.Error("Siblings(root) must be {root}")
	}
}

func TestSortedSiblingsCanonicalOrder(t *testing.T) {
	tree := paperFig1(t)
	nurse, _ := tree.ByValue("Nurse")
	sorted := tree.SortedSiblings(nurse)
	want := []string{"Consultant", "Nurse", "Pharmacist"}
	for i, id := range sorted {
		if tree.Value(id) != want[i] {
			t.Fatalf("sorted sibling %d = %q, want %q", i, tree.Value(id), want[i])
		}
	}
}

func TestLeavesUnderAndCounts(t *testing.T) {
	tree := paperFig1(t)
	med, _ := tree.ByValue("Medical Staff")
	if got := tree.NumLeavesUnder(med); got != 6 {
		t.Errorf("NumLeavesUnder(Medical Staff) = %d, want 6", got)
	}
	leaves := tree.LeavesUnder(med)
	if len(leaves) != 6 {
		t.Errorf("LeavesUnder = %d leaves", len(leaves))
	}
	for _, l := range leaves {
		if !tree.Node(l).IsLeaf() {
			t.Errorf("%q is not a leaf", tree.Value(l))
		}
		if !tree.IsAncestorOrSelf(med, l) {
			t.Errorf("%q not under Medical Staff", tree.Value(l))
		}
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	tree := paperFig1(t)
	nurse, _ := tree.ByValue("Nurse")
	para, _ := tree.ByValue("Paramedic")
	admin, _ := tree.ByValue("Admin Staff")
	if !tree.IsAncestorOrSelf(para, nurse) {
		t.Error("Paramedic should be ancestor of Nurse")
	}
	if !tree.IsAncestorOrSelf(nurse, nurse) {
		t.Error("self should count")
	}
	if tree.IsAncestorOrSelf(nurse, para) {
		t.Error("Nurse is not ancestor of Paramedic")
	}
	if tree.IsAncestorOrSelf(admin, nurse) {
		t.Error("Admin Staff is not ancestor of Nurse")
	}
}

func TestPathUpAndAncestorAtDepth(t *testing.T) {
	tree := paperFig1(t)
	nurse, _ := tree.ByValue("Nurse")
	path := tree.PathUp(nurse)
	if len(path) != 4 {
		t.Fatalf("PathUp length = %d, want 4", len(path))
	}
	if path[0] != nurse || path[len(path)-1] != tree.Root() {
		t.Error("PathUp endpoints wrong")
	}
	at1, err := tree.AncestorAtDepth(nurse, 1)
	if err != nil || tree.Value(at1) != "Medical Staff" {
		t.Errorf("AncestorAtDepth(Nurse,1) = %q, %v", tree.Value(at1), err)
	}
	if _, err := tree.AncestorAtDepth(nurse, 9); err == nil {
		t.Error("expected depth error")
	}
}

func TestNumericTreeFigure3(t *testing.T) {
	// Figure 3 of the paper: Age domain [0,150) — here 6 leaf intervals.
	tree, err := NewNumeric("age", 0, 150, []float64{25, 50, 75, 100, 125})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Numeric() {
		t.Error("not numeric")
	}
	if tree.NumLeaves() != 6 {
		t.Fatalf("NumLeaves = %d, want 6", tree.NumLeaves())
	}
	root := tree.Node(tree.Root())
	if root.Lo != 0 || root.Hi != 150 {
		t.Errorf("root interval [%v,%v), want [0,150)", root.Lo, root.Hi)
	}
	if root.Value != "[0,150)" {
		t.Errorf("root value %q", root.Value)
	}
	// Binary pairwise combination of 6 leaves: 6 -> 3 -> 1(ternary).
	if len(root.Children) != 3 {
		t.Errorf("root has %d children, want 3 (6->3->ternary root)", len(root.Children))
	}
}

func TestNumericNoSingleChildNodes(t *testing.T) {
	for _, nLeaves := range []int{2, 3, 4, 5, 6, 7, 9, 12, 30, 31} {
		cuts := make([]float64, nLeaves-1)
		for i := range cuts {
			cuts[i] = float64(i + 1)
		}
		tree, err := NewNumeric("x", 0, float64(nLeaves), cuts)
		if err != nil {
			t.Fatalf("n=%d: %v", nLeaves, err)
		}
		for i := 0; i < tree.Size(); i++ {
			n := tree.Node(NodeID(i))
			if len(n.Children) == 1 {
				t.Errorf("n=%d: node %q has a single child", nLeaves, n.Value)
			}
		}
		if tree.NumLeaves() != nLeaves {
			t.Errorf("n=%d: leaves = %d", nLeaves, tree.NumLeaves())
		}
	}
}

func TestNumericRejectsBadCuts(t *testing.T) {
	cases := [][]float64{
		{0},      // not strictly inside
		{150},    // equals hi
		{50, 50}, // not increasing
		{80, 20}, // decreasing
		{-5},     // below lo
		{151},    // above hi
	}
	for _, cuts := range cases {
		if _, err := NewNumeric("age", 0, 150, cuts); err == nil {
			t.Errorf("cuts %v accepted", cuts)
		}
	}
	if _, err := NewNumeric("age", 10, 10, nil); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestNewNumericUniform(t *testing.T) {
	tree, err := NewNumericUniform("age", 0, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 30 {
		t.Fatalf("NumLeaves = %d, want 30", tree.NumLeaves())
	}
	if _, err := NewNumericUniform("age", 0, 150, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestLocateNumericAndResolve(t *testing.T) {
	tree, err := NewNumeric("age", 0, 150, []float64{25, 50, 75, 100, 125})
	if err != nil {
		t.Fatal(err)
	}
	id, err := tree.LocateNumeric(37)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Value(id) != "[25,50)" {
		t.Errorf("Locate(37) = %q, want [25,50)", tree.Value(id))
	}
	// Boundary: lower bound inclusive, upper exclusive.
	id, _ = tree.LocateNumeric(25)
	if tree.Value(id) != "[25,50)" {
		t.Errorf("Locate(25) = %q", tree.Value(id))
	}
	id, _ = tree.LocateNumeric(0)
	if tree.Value(id) != "[0,25)" {
		t.Errorf("Locate(0) = %q", tree.Value(id))
	}
	if _, err := tree.LocateNumeric(150); err == nil {
		t.Error("Locate(150) should fail: domain is half-open")
	}
	if _, err := tree.LocateNumeric(-1); err == nil {
		t.Error("Locate(-1) should fail")
	}

	// ResolveValue: raw number, interval value, garbage.
	if id, err := tree.ResolveValue("37"); err != nil || tree.Value(id) != "[25,50)" {
		t.Errorf("ResolveValue(37) = %v, %v", id, err)
	}
	if id, err := tree.ResolveValue("[0,50)"); err != nil || tree.Value(id) == "" {
		t.Errorf("ResolveValue([0,50)) = %v, %v", id, err)
	}
	if _, err := tree.ResolveValue("not-a-number"); err == nil {
		t.Error("garbage resolved")
	}

	// ResolveLeaf rejects internal nodes.
	if _, err := tree.ResolveLeaf("[0,50)"); err == nil {
		t.Error("internal node accepted as leaf")
	}
	if _, err := tree.ResolveLeaf("42"); err != nil {
		t.Errorf("ResolveLeaf(42): %v", err)
	}
}

func TestResolveValueCategorical(t *testing.T) {
	tree := paperFig1(t)
	if _, err := tree.ResolveValue("Nurse"); err != nil {
		t.Error(err)
	}
	if _, err := tree.ResolveValue("Astronaut"); err == nil {
		t.Error("unknown value resolved")
	}
	if _, err := tree.LocateNumeric(5); err == nil {
		t.Error("LocateNumeric on categorical tree must fail")
	}
}

func TestIntervalValueRoundtrip(t *testing.T) {
	cases := []struct{ lo, hi float64 }{{0, 150}, {25, 50}, {0.5, 1.25}, {-10, 10}}
	for _, c := range cases {
		s := IntervalValue(c.lo, c.hi)
		lo, hi, err := ParseIntervalValue(s)
		if err != nil || lo != c.lo || hi != c.hi {
			t.Errorf("roundtrip %s -> %v,%v,%v", s, lo, hi, err)
		}
	}
	for _, bad := range []string{"", "[1,2]", "(1,2)", "[x,2)", "[1;2)", "[1,y)"} {
		if _, _, err := ParseIntervalValue(bad); err == nil {
			t.Errorf("ParseIntervalValue(%q) accepted", bad)
		}
	}
}

func TestDocRoundtrip(t *testing.T) {
	cat := paperFig1(t)
	num, err := NewNumeric("age", 0, 150, []float64{25, 50, 75, 100, 125})
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range []*Tree{cat, num} {
		data, err := tree.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseTree(data)
		if err != nil {
			t.Fatalf("%s: %v", tree.Attr(), err)
		}
		if back.Size() != tree.Size() || back.NumLeaves() != tree.NumLeaves() ||
			back.Attr() != tree.Attr() || back.Numeric() != tree.Numeric() {
			t.Errorf("%s: roundtrip shape mismatch", tree.Attr())
		}
		for i := 0; i < tree.Size(); i++ {
			if back.Value(NodeID(i)) != tree.Value(NodeID(i)) {
				t.Errorf("%s: node %d value %q != %q", tree.Attr(), i, back.Value(NodeID(i)), tree.Value(NodeID(i)))
			}
		}
	}
}

func TestFromDocRejectsBrokenNumeric(t *testing.T) {
	// children leave a gap
	d := Doc{Attr: "age", Numeric: true, Root: Spec{
		Value: "[0,10)", Lo: 0, Hi: 10,
		Children: []Spec{
			{Value: "[0,4)", Lo: 0, Hi: 4},
			{Value: "[5,10)", Lo: 5, Hi: 10},
		},
	}}
	if _, err := FromDoc(d); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap not detected: %v", err)
	}
	// value/interval mismatch
	d2 := Doc{Attr: "age", Numeric: true, Root: Spec{Value: "[0,9)", Lo: 0, Hi: 10}}
	if _, err := FromDoc(d2); err == nil {
		t.Error("value/interval mismatch not detected")
	}
	// children fall short of parent's upper bound
	d3 := Doc{Attr: "age", Numeric: true, Root: Spec{
		Value: "[0,10)", Lo: 0, Hi: 10,
		Children: []Spec{
			{Value: "[0,4)", Lo: 0, Hi: 4},
			{Value: "[4,8)", Lo: 4, Hi: 8},
		},
	}}
	if _, err := FromDoc(d3); err == nil {
		t.Error("short children not detected")
	}
}

func TestParseTreeBadJSON(t *testing.T) {
	if _, err := ParseTree([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}

// Property: for random numeric trees, every interior node's children
// partition its interval, and every in-domain value locates to exactly
// one leaf whose interval contains it.
func TestQuickNumericPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(nCutsRaw uint8, seed int64) bool {
		nCuts := int(nCutsRaw)%40 + 1
		r := rand.New(rand.NewSource(seed))
		cutSet := make(map[float64]bool)
		for len(cutSet) < nCuts {
			c := float64(r.Intn(148) + 1)
			cutSet[c] = true
		}
		cuts := make([]float64, 0, nCuts)
		for c := range cutSet {
			cuts = append(cuts, c)
		}
		// sort ascending
		for i := range cuts {
			for j := i + 1; j < len(cuts); j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}
		tree, err := NewNumeric("x", 0, 150, cuts)
		if err != nil {
			return false
		}
		if err := tree.validateIntervals(tree.Root()); err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := r.Float64() * 150
			leaf, err := tree.LocateNumeric(x)
			if err != nil {
				return false
			}
			n := tree.Node(leaf)
			if !(x >= n.Lo && x < n.Hi) || !n.IsLeaf() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: numLeavesUnder is consistent with LeavesUnder for all nodes.
func TestLeafCountConsistency(t *testing.T) {
	trees := []*Tree{paperFig1(t)}
	num, _ := NewNumeric("age", 0, 150, []float64{10, 20, 40, 80, 120, 140})
	trees = append(trees, num)
	for _, tree := range trees {
		for i := 0; i < tree.Size(); i++ {
			id := NodeID(i)
			if got, want := tree.NumLeavesUnder(id), len(tree.LeavesUnder(id)); got != want {
				t.Errorf("%s node %q: NumLeavesUnder=%d, len(LeavesUnder)=%d",
					tree.Attr(), tree.Value(id), got, want)
			}
		}
	}
}
