package dht

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTree builds a random categorical tree with the given RNG:
// bounded depth and fanout, unique values.
func randomTree(rng *rand.Rand) *Tree {
	counter := 0
	var build func(depth int) Spec
	build = func(depth int) Spec {
		counter++
		s := Spec{Value: nodeName(counter)}
		if depth >= 4 {
			return s
		}
		fanout := rng.Intn(4) // 0..3 children
		if depth == 0 && fanout < 2 {
			fanout = 2 // roots get at least two children
		}
		if fanout == 1 {
			fanout = 2 // avoid single-child nodes like the builders do
		}
		for i := 0; i < fanout; i++ {
			s.Children = append(s.Children, build(depth+1))
		}
		return s
	}
	tree, err := NewCategorical("rand", build(0))
	if err != nil {
		panic(err)
	}
	return tree
}

func nodeName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := []byte{}
	for i > 0 {
		name = append(name, letters[i%26])
		i /= 26
	}
	return "n" + string(name)
}

// randomFrontier walks up from the leaf frontier with random merges.
func randomFrontier(tree *Tree, rng *rand.Rand) GenSet {
	g := LeafGenSet(tree)
	steps := rng.Intn(tree.Size())
	for i := 0; i < steps; i++ {
		cands := g.MergeCandidates()
		if len(cands) == 0 {
			break
		}
		next, err := g.MergeAt(cands[rng.Intn(len(cands))])
		if err != nil {
			panic(err)
		}
		g = next
	}
	return g
}

// Property: random frontiers are valid, totally cover leaves, and sit
// within the lattice bounds.
func TestQuickRandomFrontierInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng)
		g := randomFrontier(tree, rng)
		// revalidation via the constructor
		if _, err := NewGenSet(tree, g.Nodes()); err != nil {
			return false
		}
		for _, leaf := range tree.Leaves() {
			if _, ok := g.CoverOf(leaf); !ok {
				return false
			}
		}
		return LeafGenSet(tree).AtOrBelow(g) && g.AtOrBelow(RootGenSet(tree))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: GeneralizeValue is idempotent — generalizing a generalized
// value yields itself.
func TestQuickGeneralizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng)
		g := randomFrontier(tree, rng)
		for _, leaf := range tree.Leaves() {
			v1, err := g.GeneralizeValue(tree.Value(leaf))
			if err != nil {
				return false
			}
			v2, err := g.GeneralizeValue(v1)
			if err != nil || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every frontier enumerated between a random lower bound and
// the root is within bounds and unique; the lower bound itself and the
// upper bound are always among the results.
func TestQuickEnumerateBetweenBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng)
		lower := randomFrontier(tree, rng)
		upper := RootGenSet(tree)
		seen := make(map[string]bool)
		sawLower, sawUpper := false, false
		count := 0
		err := EnumerateBetween(lower, upper, func(g GenSet) bool {
			count++
			if count > 3000 {
				return false // cap explosion; partial check is fine
			}
			if !lower.AtOrBelow(g) || !g.AtOrBelow(upper) {
				return false
			}
			key := g.String()
			if seen[key] {
				return false
			}
			seen[key] = true
			if g.Equal(lower) {
				sawLower = true
			}
			if g.Equal(upper) {
				sawUpper = true
			}
			return true
		})
		if err != nil {
			return false
		}
		if count > 3000 {
			return true // truncated run: uniqueness+bounds verified so far
		}
		return sawLower && sawUpper && len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SplitAt and MergeAt are inverses wherever both apply.
func TestQuickSplitMergeInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng)
		g := randomFrontier(tree, rng)
		for _, nd := range g.Nodes() {
			if tree.Node(nd).IsLeaf() {
				continue
			}
			split, err := g.SplitAt(nd)
			if err != nil {
				return false
			}
			back, err := split.MergeAt(nd)
			if err != nil || !back.Equal(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SpecificityLoss is antitone along merges (generalizing more
// loses more specificity) and bounded by [0, 1).
func TestQuickSpecificityLossMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng)
		g := LeafGenSet(tree)
		prev := g.SpecificityLoss()
		if prev != 0 {
			return false
		}
		for {
			cands := g.MergeCandidates()
			if len(cands) == 0 {
				break
			}
			next, err := g.MergeAt(cands[rng.Intn(len(cands))])
			if err != nil {
				return false
			}
			loss := next.SpecificityLoss()
			if loss < prev || loss >= 1 {
				return false
			}
			prev = loss
			g = next
		}
		return g.Equal(RootGenSet(tree))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
