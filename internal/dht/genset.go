package dht

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// GenSet is a valid generalization over one tree: a set of generalization
// nodes such that every leaf-to-root path crosses exactly one member
// (Section 4 of the paper). A GenSet is immutable.
//
// GenSets form a lattice ordered by AtOrBelow: the all-leaves frontier is
// the bottom (most specific), {root} is the top (most general). Binning
// produces the minimal generalization nodes (mingends), usage metrics
// produce the maximal generalization nodes (maxgends), and the ultimate
// generalization (ultigends) chosen by multi-attribute binning lies
// between them.
type GenSet struct {
	tree   *Tree
	nodes  []NodeID // sorted by NodeID
	member []bool   // indexed by NodeID
}

// NewGenSet validates and builds a generalization set from the given
// nodes. Validation enforces the paper's definition: the path from every
// leaf to the root encounters one and only one member.
func NewGenSet(t *Tree, nodes []NodeID) (GenSet, error) {
	if t == nil {
		return GenSet{}, errors.New("dht: nil tree")
	}
	member := make([]bool, t.Size())
	for _, id := range nodes {
		if !t.Valid(id) {
			return GenSet{}, fmt.Errorf("dht: node %d not in tree %s", id, t.Attr())
		}
		if member[id] {
			return GenSet{}, fmt.Errorf("dht: duplicate node %q", t.Value(id))
		}
		member[id] = true
	}
	for _, leaf := range t.leaves {
		count := 0
		for cur := leaf; cur != None; cur = t.Parent(cur) {
			if member[cur] {
				count++
			}
		}
		if count != 1 {
			return GenSet{}, fmt.Errorf(
				"dht: invalid generalization for %s: leaf %q crosses %d generalization nodes, want exactly 1",
				t.Attr(), t.Value(leaf), count)
		}
	}
	sorted := make([]NodeID, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return GenSet{tree: t, nodes: sorted, member: member}, nil
}

// NewGenSetFromValues builds a GenSet from canonical node values.
func NewGenSetFromValues(t *Tree, values []string) (GenSet, error) {
	ids := make([]NodeID, 0, len(values))
	for _, v := range values {
		id, ok := t.ByValue(v)
		if !ok {
			return GenSet{}, fmt.Errorf("dht: value %q not in tree %s", v, t.Attr())
		}
		ids = append(ids, id)
	}
	return NewGenSet(t, ids)
}

// LeafGenSet returns the bottom of the lattice: every leaf is its own
// generalization node (no information loss).
func LeafGenSet(t *Tree) GenSet {
	return mustGenSet(t, t.Leaves())
}

// RootGenSet returns the top of the lattice: the single root node
// (total information loss — full suppression into one bin).
func RootGenSet(t *Tree) GenSet {
	return mustGenSet(t, []NodeID{t.Root()})
}

func mustGenSet(t *Tree, nodes []NodeID) GenSet {
	g, err := NewGenSet(t, nodes)
	if err != nil {
		panic(err)
	}
	return g
}

// Tree returns the tree this set generalizes.
func (g GenSet) Tree() *Tree { return g.tree }

// Nodes returns the member node IDs in ascending ID order.
func (g GenSet) Nodes() []NodeID {
	out := make([]NodeID, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Values returns the member node values, ordered by node ID.
func (g GenSet) Values() []string {
	out := make([]string, len(g.nodes))
	for i, id := range g.nodes {
		out[i] = g.tree.Value(id)
	}
	return out
}

// Len returns the number of generalization nodes (Ng of §4.2.2).
func (g GenSet) Len() int { return len(g.nodes) }

// IsZero reports whether g is the zero value (no tree attached).
func (g GenSet) IsZero() bool { return g.tree == nil }

// Contains reports whether id is a generalization node of g.
func (g GenSet) Contains(id NodeID) bool {
	return g.tree != nil && g.tree.Valid(id) && g.member[id]
}

// CoverOf returns the member that covers node id: the unique member on
// the path from id to the root, if any. For a leaf this always exists
// (validity); for an internal node it exists only when some member sits
// at or above it.
func (g GenSet) CoverOf(id NodeID) (NodeID, bool) {
	for cur := id; cur != None; cur = g.tree.Parent(cur) {
		if g.member[cur] {
			return cur, true
		}
	}
	return None, false
}

// GeneralizeValue maps a raw cell value to the value of its covering
// generalization node. This is the Bin(.) operation of Figure 8.
func (g GenSet) GeneralizeValue(raw string) (string, error) {
	id, err := g.tree.ResolveValue(raw)
	if err != nil {
		return "", err
	}
	cover, ok := g.CoverOf(id)
	if !ok {
		return "", fmt.Errorf("dht: value %q sits above the generalization frontier of %s", raw, g.tree.Attr())
	}
	return g.tree.Value(cover), nil
}

// Equal reports whether two sets over the same tree have the same members.
func (g GenSet) Equal(o GenSet) bool {
	if g.tree != o.tree || len(g.nodes) != len(o.nodes) {
		return false
	}
	for i := range g.nodes {
		if g.nodes[i] != o.nodes[i] {
			return false
		}
	}
	return true
}

// AtOrBelow reports whether g is at least as specific as upper: every
// member of g lies in the subtree of (at or below) some member of upper.
// Binning guarantees mingends.AtOrBelow(maxgends).
func (g GenSet) AtOrBelow(upper GenSet) bool {
	if g.tree != upper.tree {
		return false
	}
	for _, n := range g.nodes {
		if _, ok := upper.CoverOf(n); !ok {
			return false
		}
	}
	return true
}

// SpecificityLoss returns (N − Ng)/N, the efficient information-loss
// estimate of §4.2.2 used by multi-attribute binning's Selection step,
// where N is the number of leaves and Ng the number of generalization
// nodes.
func (g GenSet) SpecificityLoss() float64 {
	n := g.tree.NumLeaves()
	if n == 0 {
		return 0
	}
	return float64(n-g.Len()) / float64(n)
}

// SplitAt returns a new GenSet with member id replaced by its children
// (one refinement step down the lattice). It errors if id is not a member
// or is a leaf.
func (g GenSet) SplitAt(id NodeID) (GenSet, error) {
	if !g.Contains(id) {
		return GenSet{}, fmt.Errorf("dht: %q is not a generalization node", g.tree.Value(id))
	}
	ch := g.tree.Children(id)
	if len(ch) == 0 {
		return GenSet{}, fmt.Errorf("dht: cannot split leaf %q", g.tree.Value(id))
	}
	nodes := make([]NodeID, 0, len(g.nodes)-1+len(ch))
	for _, n := range g.nodes {
		if n != id {
			nodes = append(nodes, n)
		}
	}
	nodes = append(nodes, ch...)
	return NewGenSet(g.tree, nodes)
}

// MergeAt returns a new GenSet with all children of parent replaced by
// parent (one generalization step up the lattice). All children of parent
// must currently be members.
func (g GenSet) MergeAt(parent NodeID) (GenSet, error) {
	ch := g.tree.Children(parent)
	if len(ch) == 0 {
		return GenSet{}, fmt.Errorf("dht: %q is a leaf", g.tree.Value(parent))
	}
	for _, c := range ch {
		if !g.Contains(c) {
			return GenSet{}, fmt.Errorf("dht: child %q of %q is not a member; cannot merge", g.tree.Value(c), g.tree.Value(parent))
		}
	}
	nodes := make([]NodeID, 0, len(g.nodes)-len(ch)+1)
	for _, n := range g.nodes {
		isChild := false
		for _, c := range ch {
			if n == c {
				isChild = true
				break
			}
		}
		if !isChild {
			nodes = append(nodes, n)
		}
	}
	nodes = append(nodes, parent)
	return NewGenSet(g.tree, nodes)
}

// MergeCandidates returns the parents whose full child sets are members of
// g — the legal MergeAt arguments (the upward moves available from g).
func (g GenSet) MergeCandidates() []NodeID {
	seen := make(map[NodeID]bool)
	var out []NodeID
	for _, n := range g.nodes {
		p := g.tree.Parent(n)
		if p == None || seen[p] {
			continue
		}
		seen[p] = true
		ok := true
		for _, c := range g.tree.Children(p) {
			if !g.Contains(c) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the member values, e.g. "{Doctor, Paramedic}".
func (g GenSet) String() string {
	if g.tree == nil {
		return "{}"
	}
	return "{" + strings.Join(g.Values(), ", ") + "}"
}

// EnumerateBetween calls fn for every valid generalization g with
// lower.AtOrBelow(g) and g.AtOrBelow(upper) — the "allowable
// generalizations" of §4.2.2, e.g. the six frontiers enumerated for
// Figure 6. Enumeration stops early if fn returns false. It errors if the
// bounds are not ordered (lower must be at or below upper).
//
// The enumeration is the cross product, over the members u of upper, of
// the frontiers of the subtree rooted at u that stay at or above the
// members of lower inside that subtree.
func EnumerateBetween(lower, upper GenSet, fn func(GenSet) bool) error {
	if lower.tree != upper.tree || lower.tree == nil {
		return errors.New("dht: bounds must share one tree")
	}
	if !lower.AtOrBelow(upper) {
		return errors.New("dht: lower bound is not at-or-below upper bound")
	}
	t := lower.tree

	// frontiers(u) enumerated lazily via recursion with a callback.
	var frontiers func(u NodeID, emit func([]NodeID) bool) bool
	frontiers = func(u NodeID, emit func([]NodeID) bool) bool {
		// Option 1: stop here — {u} is always allowed (it covers every
		// lower member beneath it).
		if !emit([]NodeID{u}) {
			return false
		}
		// Option 2: descend — allowed only if u is not itself a lower
		// member (descending below lower would violate lower ≤ g).
		if lower.Contains(u) || t.Node(u).IsLeaf() {
			return true
		}
		ch := t.Children(u)
		// Cross product of children's frontiers.
		var cross func(i int, acc []NodeID) bool
		cross = func(i int, acc []NodeID) bool {
			if i == len(ch) {
				out := make([]NodeID, len(acc))
				copy(out, acc)
				return emit(out)
			}
			return frontiers(ch[i], func(sub []NodeID) bool {
				return cross(i+1, append(acc, sub...))
			})
		}
		return cross(0, nil)
	}

	uppers := upper.Nodes()
	var crossTop func(i int, acc []NodeID) bool
	crossTop = func(i int, acc []NodeID) bool {
		if i == len(uppers) {
			nodes := make([]NodeID, len(acc))
			copy(nodes, acc)
			g, err := NewGenSet(t, nodes)
			if err != nil {
				// By construction every emitted set is a valid frontier.
				panic("dht: enumeration produced invalid generalization: " + err.Error())
			}
			return fn(g)
		}
		return frontiers(uppers[i], func(sub []NodeID) bool {
			return crossTop(i+1, append(acc, sub...))
		})
	}
	crossTop(0, nil)
	return nil
}

// CountBetween returns the number of allowable generalizations between
// lower and upper (the per-attribute n_i of §4.2.2), up to limit; it
// returns limit if the true count is at least limit. limit <= 0 counts
// exhaustively.
func CountBetween(lower, upper GenSet, limit int) (int, error) {
	count := 0
	err := EnumerateBetween(lower, upper, func(GenSet) bool {
		count++
		return limit <= 0 || count < limit
	})
	return count, err
}
