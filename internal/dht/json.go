package dht

import (
	"encoding/json"
	"fmt"
	"math"
)

// Doc is the portable serialized form of a Tree.
type Doc struct {
	Attr    string `json:"attr"`
	Numeric bool   `json:"numeric,omitempty"`
	Root    Spec   `json:"root"`
}

// Doc returns the serializable form of the tree.
func (t *Tree) Doc() Doc {
	return Doc{Attr: t.attr, Numeric: t.numeric, Root: t.Spec()}
}

// MarshalJSON serializes the tree as its Doc.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Doc())
}

// FromDoc rebuilds a tree from its serialized form, revalidating all
// structural invariants (unique values; for numeric trees, children must
// exactly partition their parent's interval).
func FromDoc(d Doc) (*Tree, error) {
	if !d.Numeric {
		return NewCategorical(d.Attr, d.Root)
	}
	t := &Tree{attr: d.Attr, numeric: true, byValue: make(map[string]NodeID)}
	if err := t.addSpec(d.Root, None, 0); err != nil {
		return nil, err
	}
	t.finish()
	if err := t.validateIntervals(t.Root()); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTree decodes a JSON Doc into a Tree.
func ParseTree(data []byte) (*Tree, error) {
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("dht: decoding tree: %w", err)
	}
	return FromDoc(d)
}

func (t *Tree) validateIntervals(id NodeID) error {
	n := t.Node(id)
	if !(n.Lo < n.Hi) {
		return fmt.Errorf("dht: node %q has empty interval [%v,%v)", n.Value, n.Lo, n.Hi)
	}
	if n.Value != IntervalValue(n.Lo, n.Hi) {
		return fmt.Errorf("dht: node %q does not match its interval [%v,%v)", n.Value, n.Lo, n.Hi)
	}
	if n.IsLeaf() {
		return nil
	}
	cursor := n.Lo
	for _, c := range n.Children {
		cn := t.Node(c)
		if math.Abs(cn.Lo-cursor) > 1e-9 {
			return fmt.Errorf("dht: children of %q leave gap at %v", n.Value, cursor)
		}
		cursor = cn.Hi
		if err := t.validateIntervals(c); err != nil {
			return err
		}
	}
	if math.Abs(cursor-n.Hi) > 1e-9 {
		return fmt.Errorf("dht: children of %q do not reach %v", n.Value, n.Hi)
	}
	return nil
}
