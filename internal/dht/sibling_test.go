package dht

import "testing"

// TestSiblingRankMatchesSortedSiblings pins the precomputed rank/count
// tables against the sorting definition they replace in the detection
// hot path, over every node of a representative tree.
func TestSiblingRankMatchesSortedSiblings(t *testing.T) {
	tree, err := NewCategorical("role", Spec{
		Value: "any",
		Children: []Spec{
			{Value: "clinical", Children: []Spec{
				{Value: "doctor"}, {Value: "nurse"}, {Value: "surgeon"},
			}},
			{Value: "admin", Children: []Spec{
				{Value: "clerk"}, {Value: "manager"},
			}},
			{Value: "solo"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := NodeID(0); int(id) < tree.Size(); id++ {
		sorted := tree.SortedSiblings(id)
		if got, want := tree.NumSiblings(id), len(sorted); got != want {
			t.Errorf("node %s: NumSiblings = %d, want %d", tree.Value(id), got, want)
		}
		if got, want := tree.SiblingRank(id), indexOf(id, sorted); got != want {
			t.Errorf("node %s: SiblingRank = %d, want %d", tree.Value(id), got, want)
		}
	}
	if tree.NumSiblings(tree.Root()) != 1 || tree.SiblingRank(tree.Root()) != 0 {
		t.Error("root must be its own sole sibling at rank 0")
	}
}

func indexOf(id NodeID, s []NodeID) int {
	for i, v := range s {
		if v == id {
			return i
		}
	}
	return -1
}
