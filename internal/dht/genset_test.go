package dht

import (
	"sort"
	"strings"
	"testing"
)

// fig6 builds the numeric tree of Figure 6 in the paper:
// node ids in the paper: level 0 root(10); level 1: 20,21,22;
// level 2: 30,31,32,33; level 3: 45,46 (children of 32).
// We reproduce the shape (not the labels): root has 3 children; the
// middle child has 2 children, the first of which has 2 children.
func fig6(t *testing.T) *Tree {
	t.Helper()
	tree, err := NewCategorical("fig6", Spec{
		Value: "n10",
		Children: []Spec{
			{Value: "n20", Children: []Spec{
				{Value: "n30"}, {Value: "n31"},
			}},
			{Value: "n21", Children: []Spec{
				{Value: "n32", Children: []Spec{
					{Value: "n45"}, {Value: "n46"},
				}},
				{Value: "n33"},
			}},
			{Value: "n22"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func ids(t *testing.T, tree *Tree, values ...string) []NodeID {
	t.Helper()
	out := make([]NodeID, len(values))
	for i, v := range values {
		id, ok := tree.ByValue(v)
		if !ok {
			t.Fatalf("value %q not found", v)
		}
		out[i] = id
	}
	return out
}

func TestGenSetValidation(t *testing.T) {
	tree := fig6(t)
	// Valid: the minimal generalization of Figure 6.
	if _, err := NewGenSet(tree, ids(t, tree, "n30", "n31", "n45", "n46", "n33", "n22")); err != nil {
		t.Errorf("valid frontier rejected: %v", err)
	}
	// Valid: mixed levels (broader generalization notion of [14]).
	if _, err := NewGenSet(tree, ids(t, tree, "n20", "n32", "n33", "n22")); err != nil {
		t.Errorf("mixed-level frontier rejected: %v", err)
	}
	// Invalid: leaf n22 uncovered.
	if _, err := NewGenSet(tree, ids(t, tree, "n20", "n21")); err == nil {
		t.Error("uncovered leaf accepted")
	}
	// Invalid: double cover (n21 and n45 on the same path).
	if _, err := NewGenSet(tree, ids(t, tree, "n20", "n21", "n45", "n46", "n22")); err == nil {
		t.Error("double cover accepted")
	}
	// Invalid: duplicate member.
	if _, err := NewGenSet(tree, append(ids(t, tree, "n20", "n21", "n22"), ids(t, tree, "n22")...)); err == nil {
		t.Error("duplicate accepted")
	}
	// Invalid: nil tree.
	if _, err := NewGenSet(nil, nil); err == nil {
		t.Error("nil tree accepted")
	}
	// Invalid: foreign node id.
	if _, err := NewGenSet(tree, []NodeID{999}); err == nil {
		t.Error("foreign id accepted")
	}
}

func TestNewGenSetFromValues(t *testing.T) {
	tree := fig6(t)
	g, err := NewGenSetFromValues(tree, []string{"n20", "n21", "n22"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	if _, err := NewGenSetFromValues(tree, []string{"nope"}); err == nil {
		t.Error("unknown value accepted")
	}
}

func TestLeafAndRootGenSets(t *testing.T) {
	tree := fig6(t)
	leaf := LeafGenSet(tree)
	if leaf.Len() != tree.NumLeaves() {
		t.Errorf("LeafGenSet len = %d, want %d", leaf.Len(), tree.NumLeaves())
	}
	if leaf.SpecificityLoss() != 0 {
		t.Errorf("leaf frontier loss = %v, want 0", leaf.SpecificityLoss())
	}
	root := RootGenSet(tree)
	if root.Len() != 1 || !root.Contains(tree.Root()) {
		t.Error("RootGenSet wrong")
	}
	wantLoss := float64(tree.NumLeaves()-1) / float64(tree.NumLeaves())
	if root.SpecificityLoss() != wantLoss {
		t.Errorf("root loss = %v, want %v", root.SpecificityLoss(), wantLoss)
	}
	if !leaf.AtOrBelow(root) {
		t.Error("leaves must be at-or-below root")
	}
	if root.AtOrBelow(leaf) {
		t.Error("root is not at-or-below leaves")
	}
}

func TestCoverOfAndGeneralizeValue(t *testing.T) {
	tree := fig6(t)
	g, err := NewGenSetFromValues(tree, []string{"n20", "n32", "n33", "n22"})
	if err != nil {
		t.Fatal(err)
	}
	n45, _ := tree.ByValue("n45")
	cover, ok := g.CoverOf(n45)
	if !ok || tree.Value(cover) != "n32" {
		t.Errorf("CoverOf(n45) = %v, %v", cover, ok)
	}
	n30, _ := tree.ByValue("n30")
	cover, ok = g.CoverOf(n30)
	if !ok || tree.Value(cover) != "n20" {
		t.Errorf("CoverOf(n30) = %v, %v", cover, ok)
	}
	// root is above the frontier: no cover
	if _, ok := g.CoverOf(tree.Root()); ok {
		t.Error("root should have no cover")
	}

	got, err := g.GeneralizeValue("n46")
	if err != nil || got != "n32" {
		t.Errorf("GeneralizeValue(n46) = %q, %v", got, err)
	}
	got, err = g.GeneralizeValue("n22")
	if err != nil || got != "n22" {
		t.Errorf("GeneralizeValue(n22) = %q, %v (leaf that is its own generalization node)", got, err)
	}
	if _, err := g.GeneralizeValue("n10"); err == nil {
		t.Error("value above frontier generalized")
	}
	if _, err := g.GeneralizeValue("bogus"); err == nil {
		t.Error("bogus value generalized")
	}
}

func TestAtOrBelowPartialOrder(t *testing.T) {
	tree := fig6(t)
	bottom := LeafGenSet(tree)
	mid, _ := NewGenSetFromValues(tree, []string{"n20", "n32", "n33", "n22"})
	top := RootGenSet(tree)
	if !bottom.AtOrBelow(mid) || !mid.AtOrBelow(top) || !bottom.AtOrBelow(top) {
		t.Error("chain ordering broken")
	}
	if mid.AtOrBelow(bottom) || top.AtOrBelow(mid) {
		t.Error("reverse ordering should fail")
	}
	// reflexive
	if !mid.AtOrBelow(mid) {
		t.Error("AtOrBelow must be reflexive")
	}
	// incomparable pair
	a, _ := NewGenSetFromValues(tree, []string{"n20", "n21", "n22"})
	b, _ := NewGenSetFromValues(tree, []string{"n30", "n31", "n21", "n22"})
	if !b.AtOrBelow(a) {
		t.Error("b refines a only at n20; should be below")
	}
	c, _ := NewGenSetFromValues(tree, []string{"n20", "n32", "n33", "n22"})
	if c.AtOrBelow(b) || b.AtOrBelow(c) {
		t.Error("b and c are incomparable")
	}
}

func TestSplitAndMerge(t *testing.T) {
	tree := fig6(t)
	g, _ := NewGenSetFromValues(tree, []string{"n20", "n21", "n22"})
	n21, _ := tree.ByValue("n21")
	split, err := g.SplitAt(n21)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := map[string]bool{"n20": true, "n32": true, "n33": true, "n22": true}
	for _, v := range split.Values() {
		if !wantVals[v] {
			t.Errorf("unexpected member %q after split", v)
		}
	}
	if split.Len() != 4 {
		t.Errorf("split Len = %d", split.Len())
	}
	// merging back
	merged, err := split.MergeAt(n21)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Equal(g) {
		t.Errorf("merge(split) != original: %v vs %v", merged, g)
	}
	// split a leaf member fails
	n22, _ := tree.ByValue("n22")
	if _, err := g.SplitAt(n22); err == nil {
		t.Error("split leaf accepted")
	}
	// split non-member fails
	n30, _ := tree.ByValue("n30")
	if _, err := g.SplitAt(n30); err == nil {
		t.Error("split non-member accepted")
	}
	// merge with missing child fails
	if _, err := g.MergeAt(n21); err == nil {
		t.Error("merge with non-member children accepted")
	}
	// merge at leaf fails
	if _, err := g.MergeAt(n22); err == nil {
		t.Error("merge at leaf accepted")
	}
}

func TestMergeCandidates(t *testing.T) {
	tree := fig6(t)
	bottom := LeafGenSet(tree)
	cands := bottom.MergeCandidates()
	var vals []string
	for _, c := range cands {
		vals = append(vals, tree.Value(c))
	}
	sort.Strings(vals)
	// from all-leaves, the mergeable parents are n20 (children n30,n31)
	// and n32 (children n45,n46); n21's children include internal n32.
	want := []string{"n20", "n32"}
	if strings.Join(vals, ",") != strings.Join(want, ",") {
		t.Errorf("MergeCandidates = %v, want %v", vals, want)
	}
}

func TestEnumerateBetweenFigure6(t *testing.T) {
	// The paper enumerates exactly six allowable generalizations between
	// the minimal nodes {30,31,45,46,33,22} and maximal nodes {20,21,22}:
	// {30,31,45,46,33,22}, {30,31,32,33,22}, {30,31,21,22},
	// {20,45,46,33,22}, {20,32,33,22}, {20,21,22}.
	tree := fig6(t)
	lower, err := NewGenSetFromValues(tree, []string{"n30", "n31", "n45", "n46", "n33", "n22"})
	if err != nil {
		t.Fatal(err)
	}
	upper, err := NewGenSetFromValues(tree, []string{"n20", "n21", "n22"})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	err = EnumerateBetween(lower, upper, func(g GenSet) bool {
		vals := g.Values()
		sort.Strings(vals)
		got = append(got, strings.Join(vals, "+"))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("enumerated %d generalizations, want 6 (paper, Figure 6): %v", len(got), got)
	}
	want := map[string]bool{
		"n22+n30+n31+n33+n45+n46": true,
		"n22+n30+n31+n32+n33":     true,
		"n21+n22+n30+n31":         true,
		"n20+n22+n33+n45+n46":     true,
		"n20+n22+n32+n33":         true,
		"n20+n21+n22":             true,
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected generalization %s", g)
		}
		delete(want, g)
	}
	for g := range want {
		t.Errorf("missing generalization %s", g)
	}
}

func TestEnumerateBetweenEarlyStopAndCount(t *testing.T) {
	tree := fig6(t)
	lower, _ := NewGenSetFromValues(tree, []string{"n30", "n31", "n45", "n46", "n33", "n22"})
	upper, _ := NewGenSetFromValues(tree, []string{"n20", "n21", "n22"})
	calls := 0
	err := EnumerateBetween(lower, upper, func(GenSet) bool {
		calls++
		return calls < 3
	})
	if err != nil || calls != 3 {
		t.Errorf("early stop: calls=%d err=%v", calls, err)
	}
	n, err := CountBetween(lower, upper, 0)
	if err != nil || n != 6 {
		t.Errorf("CountBetween = %d, %v; want 6", n, err)
	}
	n, err = CountBetween(lower, upper, 4)
	if err != nil || n != 4 {
		t.Errorf("CountBetween limited = %d, %v; want 4", n, err)
	}
}

func TestEnumerateBetweenDegenerate(t *testing.T) {
	tree := fig6(t)
	g, _ := NewGenSetFromValues(tree, []string{"n20", "n21", "n22"})
	// lower == upper: exactly one frontier.
	n, err := CountBetween(g, g, 0)
	if err != nil || n != 1 {
		t.Errorf("CountBetween(g,g) = %d, %v", n, err)
	}
	// full lattice between leaves and root
	total, err := CountBetween(LeafGenSet(tree), RootGenSet(tree), 0)
	if err != nil {
		t.Fatal(err)
	}
	// frontiers(n20)=2, frontiers(n32)=2 => frontiers(n21)=1+2*1=3,
	// frontiers(n22)=1 => root: 1 + 2*3*1 = 7.
	if total != 7 {
		t.Errorf("full lattice count = %d, want 7", total)
	}
}

func TestEnumerateBetweenBadBounds(t *testing.T) {
	tree := fig6(t)
	other := fig6(t)
	lower := LeafGenSet(tree)
	upper := RootGenSet(other)
	if err := EnumerateBetween(lower, upper, func(GenSet) bool { return true }); err == nil {
		t.Error("cross-tree bounds accepted")
	}
	// reversed bounds
	if err := EnumerateBetween(RootGenSet(tree), LeafGenSet(tree), func(GenSet) bool { return true }); err == nil {
		t.Error("reversed bounds accepted")
	}
}

// Property over the full lattice: every enumerated frontier is valid,
// within bounds, and unique.
func TestEnumerateAllValidAndUnique(t *testing.T) {
	tree := fig6(t)
	lower := LeafGenSet(tree)
	upper := RootGenSet(tree)
	seen := make(map[string]bool)
	err := EnumerateBetween(lower, upper, func(g GenSet) bool {
		if !lower.AtOrBelow(g) || !g.AtOrBelow(upper) {
			t.Errorf("frontier %v out of bounds", g)
		}
		key := g.String()
		if seen[key] {
			t.Errorf("duplicate frontier %s", key)
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenSetStringAndZero(t *testing.T) {
	var zero GenSet
	if !zero.IsZero() || zero.String() != "{}" {
		t.Error("zero GenSet misbehaves")
	}
	tree := fig6(t)
	g, _ := NewGenSetFromValues(tree, []string{"n20", "n21", "n22"})
	if g.IsZero() {
		t.Error("non-zero reported zero")
	}
	s := g.String()
	if !strings.Contains(s, "n20") || !strings.HasPrefix(s, "{") {
		t.Errorf("String = %q", s)
	}
}
