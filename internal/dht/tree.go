// Package dht implements domain hierarchy trees (DHTs), the structure the
// paper builds both binning and watermarking on. A DHT organizes an
// attribute's domain: leaves are the most specific values, the root is the
// most general description (Figure 1 of the paper). Numeric attributes get
// a binary DHT constructed by dividing the domain into disjoint intervals
// and pairwise combining them (Figure 3).
//
// The package also implements generalization sets (GenSet): a valid
// generalization is a set of nodes such that the path from every leaf to
// the root encounters exactly one set member — one to guarantee
// generalizability, only one to guarantee deterministic generalization
// (Section 4 of the paper).
package dht

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// NodeID identifies a node within one Tree. The root is always NodeID 0.
type NodeID int32

// None is the invalid node ID (used for the root's parent).
const None NodeID = -1

// Node is one vertex of a domain hierarchy tree.
type Node struct {
	ID       NodeID
	Value    string // canonical value; for numeric trees: "[lo,hi)"
	Parent   NodeID // None for the root
	Children []NodeID
	Depth    int // root = 0
	// Lo and Hi bound the half-open interval [Lo, Hi) for numeric trees.
	// They are meaningless (zero) for categorical trees.
	Lo, Hi float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is an immutable domain hierarchy tree for one attribute.
type Tree struct {
	attr    string
	numeric bool
	nodes   []Node
	byValue map[string]NodeID
	leaves  []NodeID // in left-to-right construction order
	// numLeavesUnder[i] = number of leaves in the subtree rooted at i.
	numLeavesUnder []int
	// sibRank[i] = index of node i among SortedSiblings(i); sibCount[i] =
	// len(Siblings(i)). Precomputed by finish so per-tuple detection
	// walks read the parity of a node's canonical sibling position
	// without sorting (or allocating) per call.
	sibRank  []int32
	sibCount []int32
	height   int
}

// Spec is a declarative description of a categorical tree, used both by
// builders and by the JSON codec.
type Spec struct {
	Value    string  `json:"value"`
	Lo       float64 `json:"lo,omitempty"`
	Hi       float64 `json:"hi,omitempty"`
	Children []Spec  `json:"children,omitempty"`
}

// NewCategorical builds a tree for attribute attr from a nested Spec.
// Node values must be unique across the tree and non-empty.
func NewCategorical(attr string, root Spec) (*Tree, error) {
	t := &Tree{attr: attr, byValue: make(map[string]NodeID)}
	if err := t.addSpec(root, None, 0); err != nil {
		return nil, err
	}
	t.finish()
	return t, nil
}

func (t *Tree) addSpec(s Spec, parent NodeID, depth int) error {
	if strings.TrimSpace(s.Value) == "" {
		return errors.New("dht: empty node value")
	}
	if _, dup := t.byValue[s.Value]; dup {
		return fmt.Errorf("dht: duplicate node value %q", s.Value)
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{
		ID: id, Value: s.Value, Parent: parent, Depth: depth, Lo: s.Lo, Hi: s.Hi,
	})
	t.byValue[s.Value] = id
	if parent != None {
		t.nodes[parent].Children = append(t.nodes[parent].Children, id)
	}
	for _, c := range s.Children {
		if err := t.addSpec(c, id, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// IntervalValue renders the canonical value string for the half-open
// interval [lo, hi).
func IntervalValue(lo, hi float64) string {
	return "[" + formatBound(lo) + "," + formatBound(hi) + ")"
}

func formatBound(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ParseIntervalValue parses a string produced by IntervalValue.
func ParseIntervalValue(s string) (lo, hi float64, err error) {
	if len(s) < 5 || s[0] != '[' || s[len(s)-1] != ')' {
		return 0, 0, fmt.Errorf("dht: %q is not an interval value", s)
	}
	comma := strings.IndexByte(s, ',')
	if comma < 0 {
		return 0, 0, fmt.Errorf("dht: %q is not an interval value", s)
	}
	lo, err = strconv.ParseFloat(s[1:comma], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("dht: bad interval lower bound in %q: %v", s, err)
	}
	hi, err = strconv.ParseFloat(s[comma+1:len(s)-1], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("dht: bad interval upper bound in %q: %v", s, err)
	}
	return lo, hi, nil
}

// NewNumeric builds a binary DHT for a numeric attribute with domain
// [lo, hi), divided at the given cut points (Figure 3 of the paper).
// Cuts must be strictly increasing and lie strictly inside (lo, hi).
// Leaf intervals are [lo,c1), [c1,c2), ..., [cn,hi); adjacent intervals
// are pairwise combined level by level until a single root spans [lo,hi).
// With an odd number of nodes at some level, the trailing node joins the
// last pair (a ternary parent) so that no node ever has a single child.
func NewNumeric(attr string, lo, hi float64, cuts []float64) (*Tree, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("dht: invalid domain [%v,%v)", lo, hi)
	}
	prev := lo
	for i, c := range cuts {
		if !(c > prev) || !(c < hi) {
			return nil, fmt.Errorf("dht: cut %d (%v) not strictly inside (%v,%v) in order", i, c, prev, hi)
		}
		prev = c
	}
	t := &Tree{attr: attr, numeric: true, byValue: make(map[string]NodeID)}

	bounds := make([]float64, 0, len(cuts)+2)
	bounds = append(bounds, lo)
	bounds = append(bounds, cuts...)
	bounds = append(bounds, hi)

	type span struct{ lo, hi float64 }
	level := make([]span, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		level = append(level, span{bounds[i], bounds[i+1]})
	}
	// kids[l][i] lists, for entry i of level l, its child indices in level
	// l-1; the leaf level (l = 0) has empty child lists.
	levels := [][]span{level}
	kids := [][][]int{make([][]int, len(level))}
	for len(levels[len(levels)-1]) > 1 {
		cur := levels[len(levels)-1]
		var next []span
		var nextKids [][]int
		// Pair adjacent spans; when exactly three remain, merge them into
		// one ternary parent so no node ever ends up with a single child.
		// An odd level count always reaches the three-remaining case.
		for i := 0; i < len(cur); i += 2 {
			if i+3 == len(cur) {
				next = append(next, span{cur[i].lo, cur[i+2].hi})
				nextKids = append(nextKids, []int{i, i + 1, i + 2})
				i++ // consumed one extra
			} else {
				next = append(next, span{cur[i].lo, cur[i+1].hi})
				nextKids = append(nextKids, []int{i, i + 1})
			}
		}
		levels = append(levels, next)
		kids = append(kids, nextKids)
	}

	// Materialize nodes top-down so the root gets ID 0.
	type frame struct {
		levelIdx int
		spanIdx  int
		parent   NodeID
		depth    int
	}
	stack := []frame{{len(levels) - 1, 0, None, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sp := levels[f.levelIdx][f.spanIdx]
		val := IntervalValue(sp.lo, sp.hi)
		if _, dup := t.byValue[val]; dup {
			return nil, fmt.Errorf("dht: duplicate interval %s", val)
		}
		id := NodeID(len(t.nodes))
		t.nodes = append(t.nodes, Node{
			ID: id, Value: val, Parent: f.parent, Depth: f.depth, Lo: sp.lo, Hi: sp.hi,
		})
		t.byValue[val] = id
		if f.parent != None {
			t.nodes[f.parent].Children = append(t.nodes[f.parent].Children, id)
		}
		if f.levelIdx > 0 {
			childIdx := kids[f.levelIdx][f.spanIdx]
			// push in reverse so children materialize left-to-right
			for i := len(childIdx) - 1; i >= 0; i-- {
				stack = append(stack, frame{f.levelIdx - 1, childIdx[i], id, f.depth + 1})
			}
		}
	}
	t.finish()
	return t, nil
}

// NewNumericUniform builds a numeric DHT with equal-width leaf intervals.
// width must evenly divide (hi-lo) to within floating-point tolerance;
// otherwise the last interval is shorter.
func NewNumericUniform(attr string, lo, hi, width float64) (*Tree, error) {
	if width <= 0 {
		return nil, errors.New("dht: width must be positive")
	}
	var cuts []float64
	for c := lo + width; c < hi-1e-9; c += width {
		cuts = append(cuts, c)
	}
	return NewNumeric(attr, lo, hi, cuts)
}

func (t *Tree) finish() {
	t.numLeavesUnder = make([]int, len(t.nodes))
	t.leaves = t.leaves[:0]
	// nodes were appended in DFS preorder, so children follow parents;
	// compute leaf counts bottom-up by reverse scan.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := &t.nodes[i]
		if n.IsLeaf() {
			t.numLeavesUnder[i] = 1
		} else {
			sum := 0
			for _, c := range n.Children {
				sum += t.numLeavesUnder[c]
			}
			t.numLeavesUnder[i] = sum
		}
		if n.Depth > t.height {
			t.height = n.Depth
		}
	}
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() {
			t.leaves = append(t.leaves, t.nodes[i].ID)
		}
	}
	t.sibRank = make([]int32, len(t.nodes))
	t.sibCount = make([]int32, len(t.nodes))
	t.sibCount[0] = 1 // the root is its own sole sibling
	for i := range t.nodes {
		sorted := t.SortedChildren(t.nodes[i].ID)
		for rank, c := range sorted {
			t.sibRank[c] = int32(rank)
			t.sibCount[c] = int32(len(sorted))
		}
	}
}

// SiblingRank returns the index of id within SortedSiblings(id) without
// sorting or allocating — the canonical position whose parity carries
// one detection bit per level.
func (t *Tree) SiblingRank(id NodeID) int { return int(t.sibRank[id]) }

// NumSiblings returns len(Siblings(id)) (including id itself) in O(1).
func (t *Tree) NumSiblings(id NodeID) int { return int(t.sibCount[id]) }

// Attr returns the attribute name the tree describes.
func (t *Tree) Attr() string { return t.attr }

// Numeric reports whether the tree is a numeric (interval) DHT.
func (t *Tree) Numeric() bool { return t.numeric }

// Size returns the total number of nodes.
func (t *Tree) Size() int { return len(t.nodes) }

// Height returns the maximum depth of any node (root depth is 0).
func (t *Tree) Height() int { return t.height }

// Root returns the root node ID (always 0 for a non-empty tree).
func (t *Tree) Root() NodeID { return 0 }

// Node returns a read-only view of the node with the given ID.
// It panics on an invalid ID; callers hold IDs only from this tree.
func (t *Tree) Node(id NodeID) *Node {
	return &t.nodes[id]
}

// Valid reports whether id names a node of this tree.
func (t *Tree) Valid(id NodeID) bool {
	return id >= 0 && int(id) < len(t.nodes)
}

// Value returns the canonical value string of a node.
func (t *Tree) Value(id NodeID) string { return t.nodes[id].Value }

// Parent implements the paper's Parent(nd, tr); it returns None for the root.
func (t *Tree) Parent(id NodeID) NodeID { return t.nodes[id].Parent }

// Children implements the paper's Children(nd, tr).
func (t *Tree) Children(id NodeID) []NodeID { return t.nodes[id].Children }

// Siblings implements the paper's Siblings(nd, tr): it returns nd together
// with its sibling nodes. For the root it returns just the root.
func (t *Tree) Siblings(id NodeID) []NodeID {
	p := t.nodes[id].Parent
	if p == None {
		return []NodeID{id}
	}
	return t.nodes[p].Children
}

// SortedSiblings returns Siblings(id) sorted by node value. This is the
// "sorted set S" used by Permutate and Detection: sorting by value makes
// the order canonical for embedder and detector regardless of tree
// construction order.
func (t *Tree) SortedSiblings(id NodeID) []NodeID {
	sib := t.Siblings(id)
	out := make([]NodeID, len(sib))
	copy(out, sib)
	sort.Slice(out, func(i, j int) bool { return t.nodes[out[i]].Value < t.nodes[out[j]].Value })
	return out
}

// SortedChildren returns Children(id) sorted by node value.
func (t *Tree) SortedChildren(id NodeID) []NodeID {
	ch := t.Children(id)
	out := make([]NodeID, len(ch))
	copy(out, ch)
	sort.Slice(out, func(i, j int) bool { return t.nodes[out[i]].Value < t.nodes[out[j]].Value })
	return out
}

// Leaves implements the paper's Leaves(tr): all leaf node IDs.
func (t *Tree) Leaves() []NodeID {
	out := make([]NodeID, len(t.leaves))
	copy(out, t.leaves)
	return out
}

// NumLeaves returns the number of leaves of the whole tree (|S| in Eq. 1).
func (t *Tree) NumLeaves() int { return t.numLeavesUnder[0] }

// NumLeavesUnder returns |Si|: the number of leaves in the subtree rooted
// at id (SubTree(nd, tr) of the paper).
func (t *Tree) NumLeavesUnder(id NodeID) int { return t.numLeavesUnder[id] }

// LeavesUnder returns the leaf IDs of the subtree rooted at id.
func (t *Tree) LeavesUnder(id NodeID) []NodeID {
	out := make([]NodeID, 0, t.numLeavesUnder[id])
	var walk func(NodeID)
	walk = func(n NodeID) {
		if t.nodes[n].IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range t.nodes[n].Children {
			walk(c)
		}
	}
	walk(id)
	return out
}

// IsAncestorOrSelf reports whether a is an ancestor of b or equal to b.
func (t *Tree) IsAncestorOrSelf(a, b NodeID) bool {
	for cur := b; cur != None; cur = t.nodes[cur].Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// PathUp returns the node IDs from `from` (inclusive) up to the root
// (inclusive).
func (t *Tree) PathUp(from NodeID) []NodeID {
	var out []NodeID
	for cur := from; cur != None; cur = t.nodes[cur].Parent {
		out = append(out, cur)
	}
	return out
}

// AncestorAtDepth returns the ancestor of id at the requested depth, or
// id itself if its depth equals the request. It errors if depth exceeds
// the node's depth.
func (t *Tree) AncestorAtDepth(id NodeID, depth int) (NodeID, error) {
	if depth < 0 || depth > t.nodes[id].Depth {
		return None, fmt.Errorf("dht: node %q has depth %d, requested %d", t.nodes[id].Value, t.nodes[id].Depth, depth)
	}
	cur := id
	for t.nodes[cur].Depth > depth {
		cur = t.nodes[cur].Parent
	}
	return cur, nil
}

// ByValue returns the node whose canonical value is v.
func (t *Tree) ByValue(v string) (NodeID, bool) {
	id, ok := t.byValue[v]
	return id, ok
}

// LocateNumeric returns the leaf whose interval contains x.
func (t *Tree) LocateNumeric(x float64) (NodeID, error) {
	if !t.numeric {
		return None, fmt.Errorf("dht: %s is not a numeric tree", t.attr)
	}
	root := &t.nodes[0]
	if x < root.Lo || x >= root.Hi || math.IsNaN(x) {
		return None, fmt.Errorf("dht: value %v outside domain [%v,%v)", x, root.Lo, root.Hi)
	}
	cur := NodeID(0)
	for !t.nodes[cur].IsLeaf() {
		next := None
		for _, c := range t.nodes[cur].Children {
			cn := &t.nodes[c]
			if x >= cn.Lo && x < cn.Hi {
				next = c
				break
			}
		}
		if next == None {
			return None, fmt.Errorf("dht: internal gap at %v under %q", x, t.nodes[cur].Value)
		}
		cur = next
	}
	return cur, nil
}

// ResolveValue maps a raw cell value to its tree node. Categorical values
// resolve by exact match. Numeric values resolve by exact match of an
// interval value first (binned data), then by parsing a number and
// locating its leaf interval (raw data).
func (t *Tree) ResolveValue(v string) (NodeID, error) {
	if id, ok := t.byValue[v]; ok {
		return id, nil
	}
	if t.numeric {
		if x, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			return t.LocateNumeric(x)
		}
	}
	return None, fmt.Errorf("dht: value %q not in domain of %s", v, t.attr)
}

// ResolveLeaf is ResolveValue restricted to leaves; it errors if the value
// names an internal (already generalized) node.
func (t *Tree) ResolveLeaf(v string) (NodeID, error) {
	id, err := t.ResolveValue(v)
	if err != nil {
		return None, err
	}
	if !t.nodes[id].IsLeaf() {
		return None, fmt.Errorf("dht: value %q of %s is already generalized", v, t.attr)
	}
	return id, nil
}

// Spec converts the tree back to its declarative form (inverse of
// NewCategorical; numeric trees round-trip through the same shape).
func (t *Tree) Spec() Spec {
	var build func(NodeID) Spec
	build = func(id NodeID) Spec {
		n := &t.nodes[id]
		s := Spec{Value: n.Value, Lo: n.Lo, Hi: n.Hi}
		for _, c := range n.Children {
			s.Children = append(s.Children, build(c))
		}
		return s
	}
	return build(0)
}
