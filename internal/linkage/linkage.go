// Package linkage implements the re-identification attack that motivates
// the paper's privacy half (§1): "re-identification by linking attributes
// such as birth date, zip code that are shared by the anonymized medical
// data and some externally collected voting records". The adversary holds
// an external identified table (a voter roll: name/SSN plus the
// quasi-identifying attributes) and joins it against the published
// medical table on the quasi-identifiers. A published tuple whose
// quasi-combination matches exactly one external individual is
// re-identified.
//
// Binning defeats the attack by construction: after k-anonymization every
// published combination covers at least k tuples, so no join can narrow a
// record to one person — the best the adversary gets is a 1/k-confidence
// candidate set. This package measures exactly that, before and after
// protection.
package linkage

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/relation"
)

// Result quantifies a linking attack.
type Result struct {
	// Published is the number of tuples in the published table.
	Published int
	// Matched counts published tuples whose quasi-combination matches at
	// least one external individual.
	Matched int
	// ReIdentified counts published tuples pinned to exactly one external
	// individual — full identity disclosure.
	ReIdentified int
	// MaxCandidates and MinCandidates bound the candidate-set sizes over
	// matched tuples; MinCandidates == 1 means someone was re-identified.
	MinCandidates, MaxCandidates int
}

// Rate returns the fraction of published tuples that were re-identified.
func (r Result) Rate() float64 {
	if r.Published == 0 {
		return 0
	}
	return float64(r.ReIdentified) / float64(r.Published)
}

// String summarizes the attack outcome.
func (r Result) String() string {
	return fmt.Sprintf("%d/%d tuples re-identified (%.1f%%), candidate sets %d..%d",
		r.ReIdentified, r.Published, r.Rate()*100, r.MinCandidates, r.MaxCandidates)
}

// Attack joins the published table against the external identified table
// on the given quasi-identifying columns. Because the published data may
// be generalized, matching is hierarchical: an external individual
// matches a published tuple if, for every column, the individual's
// (specific) value falls under the published (possibly generalized)
// value in that column's DHT.
//
// trees maps each join column to its DHT; external values must resolve to
// tree nodes (typically leaves), published values to any node.
func Attack(published, external *relation.Table, cols []string, trees map[string]*dht.Tree) (Result, error) {
	var res Result
	if len(cols) == 0 {
		return res, fmt.Errorf("linkage: no join columns")
	}
	pubIdx := make([]int, len(cols))
	extIdx := make([]int, len(cols))
	for i, col := range cols {
		var err error
		if pubIdx[i], err = published.Schema().Index(col); err != nil {
			return res, err
		}
		if extIdx[i], err = external.Schema().Index(col); err != nil {
			return res, err
		}
		if trees[col] == nil {
			return res, fmt.Errorf("linkage: no tree for join column %s", col)
		}
	}

	// Index external individuals by their leaf-node path per column:
	// for candidate counting we register each individual under every
	// (column, ancestor) pair lazily via a per-column map from node ID to
	// the set of external rows below it. Values resolve once per distinct
	// dictionary entry; rows register by integer code. The join then
	// intersects.
	perColRows := make([]map[dht.NodeID][]int32, len(cols))
	for ci, col := range cols {
		tree := trees[col]
		dict := external.DictValues(extIdx[ci])
		codes := external.Codes(extIdx[ci])
		idOf := make([]dht.NodeID, len(dict))
		resolved := make([]bool, len(dict))
		errOf := make([]error, len(dict))
		m := make(map[dht.NodeID][]int32)
		for row, code := range codes {
			if !resolved[code] {
				resolved[code] = true
				idOf[code], errOf[code] = tree.ResolveValue(dict[code])
			}
			if err := errOf[code]; err != nil {
				return res, fmt.Errorf("linkage: external row %d column %s: %w", row, col, err)
			}
			// register under the node and all its ancestors
			for cur := idOf[code]; cur != dht.None; cur = tree.Parent(cur) {
				m[cur] = append(m[cur], int32(row))
			}
		}
		perColRows[ci] = m
	}

	res.Published = published.NumRows()
	res.MinCandidates = -1
	// Published values also resolve per distinct dictionary entry; an
	// out-of-domain value means "no candidates", not an error.
	pubIDs := make([][]dht.NodeID, len(cols))
	pubOK := make([][]bool, len(cols))
	for ci, col := range cols {
		tree := trees[col]
		dict := published.DictValues(pubIdx[ci])
		pubIDs[ci] = make([]dht.NodeID, len(dict))
		pubOK[ci] = make([]bool, len(dict))
		for code, v := range dict {
			if id, err := tree.ResolveValue(v); err == nil {
				pubIDs[ci][code], pubOK[ci][code] = id, true
			}
		}
	}
	for row := 0; row < published.NumRows(); row++ {
		// candidate set = intersection over columns of externals under
		// the published node
		var candidates []int32
		for ci := range cols {
			code := published.CodeAt(row, pubIdx[ci])
			if !pubOK[ci][code] {
				candidates = nil
				break
			}
			rows := perColRows[ci][pubIDs[ci][code]]
			if ci == 0 {
				candidates = rows
				continue
			}
			candidates = intersect(candidates, rows)
			if len(candidates) == 0 {
				break
			}
		}
		if len(candidates) == 0 {
			continue
		}
		res.Matched++
		if len(candidates) == 1 {
			res.ReIdentified++
		}
		if res.MinCandidates < 0 || len(candidates) < res.MinCandidates {
			res.MinCandidates = len(candidates)
		}
		if len(candidates) > res.MaxCandidates {
			res.MaxCandidates = len(candidates)
		}
	}
	if res.MinCandidates < 0 {
		res.MinCandidates = 0
	}
	return res, nil
}

// intersect returns the sorted intersection of two ascending row lists.
func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ExternalView extracts the adversary's knowledge from an original table:
// the identifying columns plus the chosen quasi columns — a stand-in for
// the "externally collected voting records" of the paper's example.
func ExternalView(original *relation.Table, identCol string, cols []string) (*relation.Table, error) {
	schemaCols := []relation.Column{{Name: identCol, Kind: relation.Identifying}}
	for _, c := range cols {
		schemaCols = append(schemaCols, relation.Column{Name: c, Kind: relation.QuasiCategorical})
	}
	schema, err := relation.NewSchema(schemaCols)
	if err != nil {
		return nil, err
	}
	// A columnar projection: the adversary's view copies dictionaries and
	// code vectors wholesale, no per-cell decoding.
	return original.Project(schema)
}
