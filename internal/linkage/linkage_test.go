package linkage

import (
	"testing"

	"repro/internal/anonymity"
	"repro/internal/binning"
	"repro/internal/crypt"
	"repro/internal/datagen"
	"repro/internal/dht"
	"repro/internal/ontology"
	"repro/internal/relation"
)

func smallTrees(t *testing.T) map[string]*dht.Tree {
	t.Helper()
	age, err := dht.NewNumeric("age", 0, 80, []float64{20, 40, 60})
	if err != nil {
		t.Fatal(err)
	}
	zip, err := dht.NewCategorical("zip", dht.Spec{
		Value: "ALL",
		Children: []dht.Spec{
			{Value: "North", Children: []dht.Spec{{Value: "Z1"}, {Value: "Z2"}}},
			{Value: "South", Children: []dht.Spec{{Value: "Z3"}, {Value: "Z4"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*dht.Tree{"age": age, "zip": zip}
}

func mkTable(t *testing.T, rows [][]string) *relation.Table {
	t.Helper()
	tbl := relation.NewTable(relation.MustSchema(
		relation.Column{Name: "ssn", Kind: relation.Identifying},
		relation.Column{Name: "age", Kind: relation.QuasiNumeric},
		relation.Column{Name: "zip", Kind: relation.QuasiCategorical},
	))
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAttackOnRawDataReIdentifies(t *testing.T) {
	trees := smallTrees(t)
	// Published: de-identified (SSN replaced) but quasi columns raw.
	published := mkTable(t, [][]string{
		{"x1", "25", "Z1"}, // unique (25, Z1)
		{"x2", "25", "Z2"},
		{"x3", "45", "Z3"},
		{"x4", "45", "Z3"}, // two people share (45, Z3) in the external data? No: see external
	})
	external := mkTable(t, [][]string{
		{"alice", "25", "Z1"},
		{"bob", "25", "Z2"},
		{"carol", "45", "Z3"},
		{"dave", "47", "Z3"},
	})
	res, err := Attack(published, external, []string{"age", "zip"}, trees)
	if err != nil {
		t.Fatal(err)
	}
	// (25,Z1)->alice, (25,Z2)->bob, (45,Z3)->carol (dave is 47: same leaf
	// [40,60) though! ResolveValue on published "45" gives leaf [40,60);
	// external 45 and 47 both land there -> 2 candidates).
	if res.ReIdentified != 2 {
		t.Errorf("re-identified = %d, want 2 (alice and bob pinned): %s", res.ReIdentified, res)
	}
	if res.Matched != 4 {
		t.Errorf("matched = %d, want 4", res.Matched)
	}
	if res.MinCandidates != 1 {
		t.Errorf("min candidates = %d", res.MinCandidates)
	}
}

func TestAttackOnGeneralizedDataBlunted(t *testing.T) {
	trees := smallTrees(t)
	// Published after binning: age to [0,40)/[40,80), zip to regions.
	published := mkTable(t, [][]string{
		{"x1", "[0,40)", "North"},
		{"x2", "[0,40)", "North"},
		{"x3", "[40,80)", "South"},
		{"x4", "[40,80)", "South"},
	})
	external := mkTable(t, [][]string{
		{"alice", "25", "Z1"},
		{"bob", "30", "Z2"},
		{"carol", "45", "Z3"},
		{"dave", "47", "Z4"},
	})
	res, err := Attack(published, external, []string{"age", "zip"}, trees)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReIdentified != 0 {
		t.Errorf("re-identified = %d on k=2 generalized data: %s", res.ReIdentified, res)
	}
	if res.MinCandidates < 2 {
		t.Errorf("min candidates = %d, want >= 2", res.MinCandidates)
	}
}

func TestAttackValidation(t *testing.T) {
	trees := smallTrees(t)
	tbl := mkTable(t, [][]string{{"a", "10", "Z1"}})
	if _, err := Attack(tbl, tbl, nil, trees); err == nil {
		t.Error("no join columns accepted")
	}
	if _, err := Attack(tbl, tbl, []string{"missing"}, trees); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := Attack(tbl, tbl, []string{"age"}, map[string]*dht.Tree{}); err == nil {
		t.Error("missing tree accepted")
	}
	bad := mkTable(t, [][]string{{"a", "not-a-number", "Z1"}})
	if _, err := Attack(tbl, bad, []string{"age"}, trees); err == nil {
		t.Error("unresolvable external value accepted")
	}
	// out-of-domain published value: simply no candidates
	res, err := Attack(bad, tbl, []string{"age"}, trees)
	if err != nil || res.Matched != 0 {
		t.Errorf("out-of-domain published: %v %v", res, err)
	}
}

func TestExternalView(t *testing.T) {
	tbl := mkTable(t, [][]string{{"a", "10", "Z1"}, {"b", "20", "Z2"}})
	view, err := ExternalView(tbl, "ssn", []string{"zip"})
	if err != nil {
		t.Fatal(err)
	}
	if view.NumRows() != 2 || view.Schema().NumColumns() != 2 {
		t.Fatalf("view shape: %d rows, %d cols", view.NumRows(), view.Schema().NumColumns())
	}
	if v, _ := view.Cell(1, "zip"); v != "Z2" {
		t.Errorf("cell = %q", v)
	}
	if _, err := ExternalView(tbl, "missing", []string{"zip"}); err == nil {
		t.Error("missing ident accepted")
	}
	if _, err := ExternalView(tbl, "ssn", []string{"missing"}); err == nil {
		t.Error("missing quasi accepted")
	}
}

// The paper's premise, end to end: raw de-identified data leak identities
// to a voter-roll join; the binned table leaks none.
func TestLinkingAttackBeforeAndAfterBinning(t *testing.T) {
	original, err := datagen.Generate(datagen.Config{Rows: 4000, Seed: 13, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	trees := ontology.Trees()
	quasi := original.Schema().QuasiColumns()

	// The adversary's voter roll covers everyone (worst case).
	external, err := ExternalView(original, ontology.ColSSN, quasi)
	if err != nil {
		t.Fatal(err)
	}

	// Naive release: only the SSN randomized.
	naive := original.Clone()
	ci, _ := naive.Schema().Index(ontology.ColSSN)
	for i := 0; i < naive.NumRows(); i++ {
		naive.SetCellAt(i, ci, "anon")
	}
	rawRes, err := Attack(naive, external, quasi, trees)
	if err != nil {
		t.Fatal(err)
	}
	if rawRes.Rate() < 0.5 {
		t.Errorf("naive release re-identification rate %.2f; expected most tuples unique over 5 quasi columns", rawRes.Rate())
	}

	// Binned release at k=10.
	cipher, err := crypt.NewCipher([]byte("linkage"))
	if err != nil {
		t.Fatal(err)
	}
	binned, err := binning.Run(original, binning.Config{K: 10, Trees: trees}, cipher)
	if err != nil {
		t.Fatal(err)
	}
	binRes, err := Attack(binned.Table, external, quasi, trees)
	if err != nil {
		t.Fatal(err)
	}
	if binRes.ReIdentified != 0 {
		t.Errorf("binned release re-identified %d tuples; k-anonymity must prevent all", binRes.ReIdentified)
	}
	if binRes.Matched > 0 && binRes.MinCandidates < 10 {
		t.Errorf("min candidate set %d < k=10", binRes.MinCandidates)
	}
	// sanity: the binned table is k-anonymous
	ok, err := anonymity.SatisfiesK(binned.Table, quasi, 10)
	if err != nil || !ok {
		t.Error("binned table not k-anonymous")
	}
}
