package bitstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	b := New(13)
	if b.Len() != 13 {
		t.Fatalf("Len = %d, want 13", b.Len())
	}
	for i := 0; i < 13; i++ {
		if b.Get(i) {
			t.Errorf("bit %d set in fresh string", i)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative length")
		}
	}()
	New(-1)
}

func TestFromStringRoundtrip(t *testing.T) {
	cases := []string{"", "0", "1", "10110", "0000011111", "101010101010101010101"}
	for _, s := range cases {
		b, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if got := b.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
}

func TestFromStringInvalid(t *testing.T) {
	if _, err := FromString("01x1"); err == nil {
		t.Fatal("expected error for invalid rune")
	}
}

func TestFromBools(t *testing.T) {
	b := FromBools([]bool{true, false, true, true})
	if b.String() != "1011" {
		t.Fatalf("got %s, want 1011", b.String())
	}
}

func TestFromBytes(t *testing.T) {
	b, err := FromBytes([]byte{0b10110101}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// LSB-first: 1,0,1,0,1,1,0,1
	if b.String() != "10101101" {
		t.Fatalf("got %s, want 10101101", b.String())
	}
	if _, err := FromBytes([]byte{0xff}, 9); err == nil {
		t.Fatal("expected error: too few source bits")
	}
}

func TestSetIsCopyOnWrite(t *testing.T) {
	a := MustFromString("0000")
	b := a.Set(2, true)
	if a.String() != "0000" {
		t.Errorf("original mutated: %s", a.String())
	}
	if b.String() != "0010" {
		t.Errorf("copy wrong: %s", b.String())
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromString("101").Get(3)
}

func TestEqualAndHamming(t *testing.T) {
	a := MustFromString("10110")
	b := MustFromString("10011")
	if a.Equal(b) {
		t.Error("unexpected Equal")
	}
	if !a.Equal(a) {
		t.Error("self not Equal")
	}
	d, err := a.Hamming(b)
	if err != nil || d != 2 {
		t.Errorf("Hamming = %d, %v; want 2, nil", d, err)
	}
	if _, err := a.Hamming(MustFromString("1")); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestLossFraction(t *testing.T) {
	a := MustFromString("1111")
	b := MustFromString("1100")
	f, err := a.LossFraction(b)
	if err != nil || f != 0.5 {
		t.Errorf("LossFraction = %v, %v; want 0.5, nil", f, err)
	}
	empty := New(0)
	if f, err := empty.LossFraction(empty); err != nil || f != 0 {
		t.Errorf("empty LossFraction = %v, %v", f, err)
	}
}

func TestDuplicateAndMajorityFold(t *testing.T) {
	wm := MustFromString("1011")
	wmd := wm.Duplicate(3)
	if wmd.Len() != 12 {
		t.Fatalf("Duplicate len = %d, want 12", wmd.Len())
	}
	if wmd.String() != "101110111011" {
		t.Fatalf("Duplicate = %s", wmd.String())
	}
	back, err := wmd.MajorityFold(4)
	if err != nil || !back.Equal(wm) {
		t.Fatalf("MajorityFold = %s, %v; want %s", back.String(), err, wm.String())
	}
	// Corrupt one replica entirely; majority of 3 still recovers.
	corrupt := wmd
	for i := 0; i < 4; i++ {
		corrupt = corrupt.Set(i, !corrupt.Get(i))
	}
	back, err = corrupt.MajorityFold(4)
	if err != nil || !back.Equal(wm) {
		t.Fatalf("MajorityFold after corruption = %s, want %s", back.String(), wm.String())
	}
}

func TestMajorityFoldErrors(t *testing.T) {
	b := MustFromString("10110")
	if _, err := b.MajorityFold(4); err == nil {
		t.Error("expected non-multiple error")
	}
	if _, err := b.MajorityFold(0); err == nil {
		t.Error("expected positive-markLen error")
	}
}

func TestMajorityFoldTieIsZero(t *testing.T) {
	// two replicas disagreeing at every position -> all zeros
	b := MustFromString("11110000")
	out, err := b.MajorityFold(4)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "0000" {
		t.Fatalf("tie fold = %s, want 0000", out.String())
	}
}

func TestDuplicatePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromString("1").Duplicate(0)
}

func TestRandomLength(t *testing.T) {
	b, err := Random(21)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 21 {
		t.Fatalf("Random len = %d, want 21", b.Len())
	}
}

func TestVoteBoardResolve(t *testing.T) {
	vb := NewVoteBoard(3)
	vb.Vote(0, true, 1)
	vb.Vote(0, true, 1)
	vb.Vote(0, false, 1)
	vb.Vote(1, false, 5)
	vb.Vote(1, true, 2)
	// position 2 untouched
	got := vb.Resolve()
	if got.String() != "100" {
		t.Fatalf("Resolve = %s, want 100", got.String())
	}
	if !vb.Decided(0) || vb.Decided(2) {
		t.Error("Decided wrong")
	}
	z, o := vb.Votes(1)
	if z != 5 || o != 2 {
		t.Errorf("Votes(1) = %v,%v; want 5,2", z, o)
	}
}

func TestVoteBoardIgnoresBadVotes(t *testing.T) {
	vb := NewVoteBoard(2)
	vb.Vote(-1, true, 1)
	vb.Vote(2, true, 1)
	vb.Vote(0, true, 0)
	vb.Vote(0, true, -3)
	if vb.Decided(0) || vb.Decided(1) {
		t.Error("invalid votes should be ignored")
	}
}

func TestVoteBoardFoldInto(t *testing.T) {
	vb := NewVoteBoard(6) // 2 replicas of 3 positions
	vb.Vote(0, true, 1)
	vb.Vote(3, true, 1) // replica of position 0
	vb.Vote(1, false, 2)
	vb.Vote(4, true, 1) // conflicting replica, lower weight
	folded, err := vb.FoldInto(3)
	if err != nil {
		t.Fatal(err)
	}
	got := folded.Resolve()
	if got.String() != "100" {
		t.Fatalf("folded Resolve = %s, want 100", got.String())
	}
	if _, err := vb.FoldInto(4); err == nil {
		t.Error("expected non-multiple error")
	}
	if _, err := vb.FoldInto(0); err == nil {
		t.Error("expected positive error")
	}
}

func TestVoteBoardConfidence(t *testing.T) {
	vb := NewVoteBoard(2)
	vb.Vote(0, true, 3)
	vb.Vote(0, false, 1)
	conf := vb.Confidence()
	if conf[0] != 0.5 {
		t.Errorf("confidence[0] = %v, want 0.5", conf[0])
	}
	if conf[1] != 0 {
		t.Errorf("confidence[1] = %v, want 0", conf[1])
	}
}

// Property: String/FromString roundtrip for arbitrary bit patterns.
func TestQuickStringRoundtrip(t *testing.T) {
	f := func(raw []byte) bool {
		n := len(raw) * 8
		b, err := FromBytes(raw, n)
		if err != nil {
			return false
		}
		back, err := FromString(b.String())
		return err == nil && back.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Duplicate then MajorityFold is the identity for any factor >= 1.
func TestQuickDuplicateFoldIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(raw []byte, lRaw uint8) bool {
		n := len(raw) * 8
		if n == 0 {
			return true
		}
		l := int(lRaw)%5 + 1
		b, err := FromBytes(raw, n)
		if err != nil {
			return false
		}
		folded, err := b.Duplicate(l).MajorityFold(n)
		return err == nil && folded.Equal(b)
	}
	cfg := &quick.Config{Rand: rng, MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Hamming distance is a metric on equal-length strings
// (symmetry and identity checked; triangle inequality over triples).
func TestQuickHammingMetric(t *testing.T) {
	f := func(x, y, z [4]byte) bool {
		a, _ := FromBytes(x[:], 32)
		b, _ := FromBytes(y[:], 32)
		c, _ := FromBytes(z[:], 32)
		ab, _ := a.Hamming(b)
		ba, _ := b.Hamming(a)
		aa, _ := a.Hamming(a)
		ac, _ := a.Hamming(c)
		cb, _ := c.Hamming(b)
		return ab == ba && aa == 0 && ab <= ac+cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
