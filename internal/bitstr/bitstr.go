// Package bitstr implements fixed-length bit strings used as watermark
// marks. A mark wm is a short bit string (the paper uses 20 bits); the
// replicated mark wmd is wm duplicated l times (Duplicate in Table 1 of the
// paper). Detection accumulates votes per position and folds replicas back
// into a single mark by majority voting (MajorVot).
package bitstr

import (
	"crypto/rand"
	"errors"
	"fmt"
	"strings"
)

// Bits is an immutable-by-convention bit string. The zero value is the
// empty bit string.
type Bits struct {
	n    int
	bits []byte // packed LSB-first within each byte
}

// New returns an all-zero bit string of length n. n must be >= 0.
func New(n int) Bits {
	if n < 0 {
		panic("bitstr: negative length")
	}
	return Bits{n: n, bits: make([]byte, (n+7)/8)}
}

// FromBools builds a bit string from a slice of booleans.
func FromBools(vals []bool) Bits {
	b := New(len(vals))
	for i, v := range vals {
		if v {
			b.setInPlace(i, true)
		}
	}
	return b
}

// FromString parses a string of '0' and '1' runes, e.g. "10110".
func FromString(s string) (Bits, error) {
	b := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			b.setInPlace(i, true)
		default:
			return Bits{}, fmt.Errorf("bitstr: invalid rune %q at position %d", r, i)
		}
	}
	return b, nil
}

// MustFromString is FromString that panics on error; for tests and constants.
func MustFromString(s string) Bits {
	b, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// FromBytes builds an n-bit string from the first n bits of raw
// (LSB-first within each byte). It errors if raw holds fewer than n bits.
func FromBytes(raw []byte, n int) (Bits, error) {
	if len(raw)*8 < n {
		return Bits{}, fmt.Errorf("bitstr: need %d bits, got %d", n, len(raw)*8)
	}
	b := New(n)
	for i := 0; i < n; i++ {
		if raw[i/8]&(1<<(uint(i)%8)) != 0 {
			b.setInPlace(i, true)
		}
	}
	return b, nil
}

// Random returns a uniformly random n-bit string using crypto/rand.
func Random(n int) (Bits, error) {
	raw := make([]byte, (n+7)/8)
	if _, err := rand.Read(raw); err != nil {
		return Bits{}, err
	}
	return FromBytes(raw, n)
}

// Len returns the number of bits.
func (b Bits) Len() int { return b.n }

// Get returns bit i. It panics if i is out of range.
func (b Bits) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstr: index %d out of range [0,%d)", i, b.n))
	}
	return b.bits[i/8]&(1<<(uint(i)%8)) != 0
}

// Set returns a copy of b with bit i set to v.
func (b Bits) Set(i int, v bool) Bits {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstr: index %d out of range [0,%d)", i, b.n))
	}
	c := b.clone()
	c.setInPlace(i, v)
	return c
}

func (b *Bits) setInPlace(i int, v bool) {
	mask := byte(1) << (uint(i) % 8)
	if v {
		b.bits[i/8] |= mask
	} else {
		b.bits[i/8] &^= mask
	}
}

func (b Bits) clone() Bits {
	c := Bits{n: b.n, bits: make([]byte, len(b.bits))}
	copy(c.bits, b.bits)
	return c
}

// String renders the bit string as '0'/'1' runes, index 0 first.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Equal reports whether two bit strings have the same length and contents.
func (b Bits) Equal(o Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := 0; i < b.n; i++ {
		if b.Get(i) != o.Get(i) {
			return false
		}
	}
	return true
}

// Hamming returns the Hamming distance between two equal-length bit
// strings, i.e. the number of differing positions.
func (b Bits) Hamming(o Bits) (int, error) {
	if b.n != o.n {
		return 0, errors.New("bitstr: length mismatch")
	}
	d := 0
	for i := 0; i < b.n; i++ {
		if b.Get(i) != o.Get(i) {
			d++
		}
	}
	return d, nil
}

// LossFraction returns the fraction of positions of b that differ in o
// (the paper's "mark loss"). Both strings must be the same length.
func (b Bits) LossFraction(o Bits) (float64, error) {
	if b.n == 0 {
		return 0, nil
	}
	d, err := b.Hamming(o)
	if err != nil {
		return 0, err
	}
	return float64(d) / float64(b.n), nil
}

// Duplicate concatenates l copies of b, producing the replicated mark wmd
// of the paper (|wmd| = l·|wm|). l must be >= 1.
func (b Bits) Duplicate(l int) Bits {
	if l < 1 {
		panic("bitstr: duplication factor must be >= 1")
	}
	d := New(b.n * l)
	for c := 0; c < l; c++ {
		for i := 0; i < b.n; i++ {
			if b.Get(i) {
				d.setInPlace(c*b.n+i, true)
			}
		}
	}
	return d
}

// MajorityFold folds a replicated bit string of length l·markLen back into
// markLen bits by per-position majority over the l replicas (the paper's
// MajorVot over wmd). Ties resolve to 0. It errors if b.Len() is not a
// multiple of markLen.
func (b Bits) MajorityFold(markLen int) (Bits, error) {
	if markLen <= 0 {
		return Bits{}, errors.New("bitstr: markLen must be positive")
	}
	if b.n%markLen != 0 {
		return Bits{}, fmt.Errorf("bitstr: length %d not a multiple of %d", b.n, markLen)
	}
	l := b.n / markLen
	out := New(markLen)
	for i := 0; i < markLen; i++ {
		ones := 0
		for c := 0; c < l; c++ {
			if b.Get(c*markLen + i) {
				ones++
			}
		}
		if 2*ones > l {
			out.setInPlace(i, true)
		}
	}
	return out, nil
}

// VoteBoard accumulates weighted votes for each position of a bit string
// during watermark detection. The zero value is not usable; use NewVoteBoard.
type VoteBoard struct {
	zero []float64
	one  []float64
}

// NewVoteBoard returns a vote accumulator for n positions.
func NewVoteBoard(n int) *VoteBoard {
	return &VoteBoard{zero: make([]float64, n), one: make([]float64, n)}
}

// Len returns the number of positions.
func (v *VoteBoard) Len() int { return len(v.zero) }

// Vote adds weight w to the tally for bit value at position pos.
// Votes with non-positive weight are ignored.
func (v *VoteBoard) Vote(pos int, bit bool, w float64) {
	if pos < 0 || pos >= len(v.zero) || w <= 0 {
		return
	}
	if bit {
		v.one[pos] += w
	} else {
		v.zero[pos] += w
	}
}

// Votes returns the (zero, one) tallies at position pos.
func (v *VoteBoard) Votes(pos int) (zero, one float64) {
	return v.zero[pos], v.one[pos]
}

// Decided reports whether any vote has been cast at position pos.
func (v *VoteBoard) Decided(pos int) bool {
	return v.zero[pos] > 0 || v.one[pos] > 0
}

// Resolve returns the majority bit string over all positions. Positions
// with no votes or tied votes resolve to 0.
func (v *VoteBoard) Resolve() Bits {
	out := New(len(v.zero))
	for i := range v.zero {
		if v.one[i] > v.zero[i] {
			out.setInPlace(i, true)
		}
	}
	return out
}

// Merge adds every tally of other into v. Boards must have equal length.
// It is the fan-in step of sharded detection: because detection weights
// are integer-valued, float64 addition is exact and merging per-shard
// boards in shard order reproduces the sequential tallies bit for bit.
func (v *VoteBoard) Merge(other *VoteBoard) error {
	if other == nil {
		return errors.New("bitstr: cannot merge a nil board")
	}
	if len(other.zero) != len(v.zero) {
		return fmt.Errorf("bitstr: cannot merge boards of length %d and %d", v.Len(), other.Len())
	}
	for i := range v.zero {
		v.zero[i] += other.zero[i]
		v.one[i] += other.one[i]
	}
	return nil
}

// FoldInto collapses a replicated board (length l·markLen) into a markLen
// board by summing tallies across replicas, implementing the outer
// MajorVot(wmd) of the paper's Detection with weighted votes preserved.
func (v *VoteBoard) FoldInto(markLen int) (*VoteBoard, error) {
	if markLen <= 0 {
		return nil, errors.New("bitstr: markLen must be positive")
	}
	if len(v.zero)%markLen != 0 {
		return nil, fmt.Errorf("bitstr: board length %d not a multiple of %d", len(v.zero), markLen)
	}
	out := NewVoteBoard(markLen)
	for i := range v.zero {
		out.zero[i%markLen] += v.zero[i]
		out.one[i%markLen] += v.one[i]
	}
	return out, nil
}

// Confidence returns, per position, the margin |one-zero| / (one+zero),
// or 0 for positions without votes. It is a diagnostic for detection
// strength.
func (v *VoteBoard) Confidence() []float64 {
	out := make([]float64, len(v.zero))
	for i := range v.zero {
		tot := v.zero[i] + v.one[i]
		if tot > 0 {
			d := v.one[i] - v.zero[i]
			if d < 0 {
				d = -d
			}
			out[i] = d / tot
		}
	}
	return out
}
