package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{Name: "ssn", Kind: Identifying},
		{Name: "age", Kind: QuasiNumeric},
		{Name: "doctor", Kind: QuasiCategorical},
		{Name: "note", Kind: Other},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable(testSchema(t))
	rows := [][]string{
		{"s1", "34", "Nurse", "a"},
		{"s2", "67", "Surgeon", "b"},
		{"s3", "12", "Clerk", "c"},
		{"s4", "45", "Nurse", "d"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema([]Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema([]Column{{Name: "  "}}); err == nil {
		t.Error("blank name accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.NumColumns() != 4 {
		t.Errorf("NumColumns = %d", s.NumColumns())
	}
	i, err := s.Index("doctor")
	if err != nil || i != 2 {
		t.Errorf("Index(doctor) = %d, %v", i, err)
	}
	if _, err := s.Index("missing"); err == nil {
		t.Error("missing column resolved")
	}
	if got := strings.Join(s.Names(), ","); got != "ssn,age,doctor,note" {
		t.Errorf("Names = %s", got)
	}
	if got := s.QuasiColumns(); len(got) != 2 || got[0] != "age" || got[1] != "doctor" {
		t.Errorf("QuasiColumns = %v", got)
	}
	if got := s.IdentColumns(); len(got) != 1 || got[0] != "ssn" {
		t.Errorf("IdentColumns = %v", got)
	}
	if got := s.ColumnsOfKind(Other); len(got) != 1 || got[0] != "note" {
		t.Errorf("ColumnsOfKind(Other) = %v", got)
	}
	if s.Column(1).Kind != QuasiNumeric {
		t.Error("Column(1) kind wrong")
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "ssn" {
		t.Error("Columns() exposed internal state")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Identifying:      "identifying",
		QuasiCategorical: "quasi-categorical",
		QuasiNumeric:     "quasi-numeric",
		Other:            "other",
		Kind(42):         "Kind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !QuasiNumeric.IsQuasi() || !QuasiCategorical.IsQuasi() || Identifying.IsQuasi() || Other.IsQuasi() {
		t.Error("IsQuasi wrong")
	}
}

func TestAppendRowValidation(t *testing.T) {
	tbl := NewTable(testSchema(t))
	if err := tbl.AppendRow([]string{"too", "short"}); err == nil {
		t.Error("short row accepted")
	}
	row := []string{"s1", "30", "Nurse", "x"}
	if err := tbl.AppendRow(row); err != nil {
		t.Fatal(err)
	}
	row[0] = "mutated"
	if got, _ := tbl.Cell(0, "ssn"); got != "s1" {
		t.Error("AppendRow did not copy the row")
	}
}

func TestCellAccess(t *testing.T) {
	tbl := testTable(t)
	v, err := tbl.Cell(1, "doctor")
	if err != nil || v != "Surgeon" {
		t.Errorf("Cell = %q, %v", v, err)
	}
	if _, err := tbl.Cell(0, "missing"); err == nil {
		t.Error("missing column read")
	}
	if _, err := tbl.Cell(99, "ssn"); err == nil {
		t.Error("out-of-range row read")
	}
	if err := tbl.SetCell(1, "doctor", "Nurse"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Cell(1, "doctor"); v != "Nurse" {
		t.Error("SetCell did not stick")
	}
	if err := tbl.SetCell(99, "doctor", "x"); err == nil {
		t.Error("out-of-range SetCell accepted")
	}
	if err := tbl.SetCell(0, "missing", "x"); err == nil {
		t.Error("missing-column SetCell accepted")
	}
	// Fast path
	ci, _ := tbl.Schema().Index("age")
	if tbl.CellAt(2, ci) != "12" {
		t.Error("CellAt wrong")
	}
	tbl.SetCellAt(2, ci, "13")
	if tbl.CellAt(2, ci) != "13" {
		t.Error("SetCellAt wrong")
	}
}

func TestRowAndColumnCopies(t *testing.T) {
	tbl := testTable(t)
	r := tbl.Row(0)
	r[0] = "mutated"
	if v, _ := tbl.Cell(0, "ssn"); v != "s1" {
		t.Error("Row exposed internal state")
	}
	col, err := tbl.Column("ssn")
	if err != nil || len(col) != 4 || col[3] != "s4" {
		t.Errorf("Column = %v, %v", col, err)
	}
	col[0] = "mutated"
	if v, _ := tbl.Cell(0, "ssn"); v != "s1" {
		t.Error("Column exposed internal state")
	}
	if _, err := tbl.Column("missing"); err == nil {
		t.Error("missing column read")
	}
}

func TestClone(t *testing.T) {
	tbl := testTable(t)
	cp := tbl.Clone()
	if err := cp.SetCell(0, "ssn", "mutated"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Cell(0, "ssn"); v != "s1" {
		t.Error("Clone shares row storage")
	}
	if cp.NumRows() != tbl.NumRows() {
		t.Error("Clone row count wrong")
	}
}

func TestDeleteRows(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.DeleteRows([]int{1, 3, 1}); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	a, _ := tbl.Cell(0, "ssn")
	b, _ := tbl.Cell(1, "ssn")
	if a != "s1" || b != "s3" {
		t.Errorf("remaining rows = %s,%s; want s1,s3", a, b)
	}
	if err := tbl.DeleteRows([]int{5}); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if err := tbl.DeleteRows(nil); err != nil {
		t.Error("empty delete should be a no-op")
	}
}

func TestDeleteWhere(t *testing.T) {
	tbl := testTable(t)
	ci, _ := tbl.Schema().Index("doctor")
	n := tbl.DeleteWhere(func(row []string) bool { return row[ci] == "Nurse" })
	if n != 2 || tbl.NumRows() != 2 {
		t.Errorf("DeleteWhere removed %d, left %d", n, tbl.NumRows())
	}
}

func TestAppendTable(t *testing.T) {
	a := testTable(t)
	b := testTable(t)
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 8 {
		t.Errorf("NumRows = %d, want 8", a.NumRows())
	}
	narrow := NewTable(MustSchema(Column{Name: "x"}))
	if err := a.AppendTable(narrow); err == nil {
		t.Error("mismatched append accepted")
	}
}

func TestShuffleAndSort(t *testing.T) {
	tbl := testTable(t)
	tbl.Shuffle(rand.New(rand.NewSource(3)))
	if tbl.NumRows() != 4 {
		t.Fatal("shuffle changed row count")
	}
	if err := tbl.SortByColumn("ssn"); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"s1", "s2", "s3", "s4"} {
		if v, _ := tbl.Cell(i, "ssn"); v != want {
			t.Errorf("row %d ssn = %s, want %s", i, v, want)
		}
	}
	if err := tbl.SortByColumn("missing"); err == nil {
		t.Error("missing-column sort accepted")
	}
}

func TestForEachRow(t *testing.T) {
	tbl := testTable(t)
	count := 0
	tbl.ForEachRow(func(i int, row []string) {
		if len(row) != 4 {
			t.Errorf("row %d has %d cells", i, len(row))
		}
		count++
	})
	if count != 4 {
		t.Errorf("visited %d rows", count)
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tbl := testTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for _, c := range tbl.Schema().Names() {
			a, _ := tbl.Cell(i, c)
			b, _ := back.Cell(i, c)
			if a != b {
				t.Errorf("row %d col %s: %q != %q", i, c, a, b)
			}
		}
	}
}

func TestCSVColumnPermutation(t *testing.T) {
	// A CSV with permuted column order must map cells by name.
	csvText := "doctor,ssn,note,age\nNurse,s1,a,34\n"
	back, err := ReadCSV(strings.NewReader(csvText), testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Cell(0, "ssn"); v != "s1" {
		t.Errorf("ssn = %q", v)
	}
	if v, _ := back.Cell(0, "age"); v != "34" {
		t.Errorf("age = %q", v)
	}
}

func TestCSVErrors(t *testing.T) {
	s := testSchema(t)
	cases := []string{
		"",                                // no header
		"a,b\n",                           // wrong column count
		"ssn,age,doctor,bogus\n",          // unknown column
		"ssn,ssn,doctor,note\n",           // duplicate column
		"ssn,age,doctor,note\nonly,two\n", // short record
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), s); err == nil {
			t.Errorf("CSV %q accepted", c)
		}
	}
}
