package relation

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{Name: "ssn", Kind: Identifying},
		{Name: "age", Kind: QuasiNumeric},
		{Name: "doctor", Kind: QuasiCategorical},
		{Name: "note", Kind: Other},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable(testSchema(t))
	rows := [][]string{
		{"s1", "34", "Nurse", "a"},
		{"s2", "67", "Surgeon", "b"},
		{"s3", "12", "Clerk", "c"},
		{"s4", "45", "Nurse", "d"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema([]Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema([]Column{{Name: "  "}}); err == nil {
		t.Error("blank name accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.NumColumns() != 4 {
		t.Errorf("NumColumns = %d", s.NumColumns())
	}
	i, err := s.Index("doctor")
	if err != nil || i != 2 {
		t.Errorf("Index(doctor) = %d, %v", i, err)
	}
	if _, err := s.Index("missing"); err == nil {
		t.Error("missing column resolved")
	}
	if got := strings.Join(s.Names(), ","); got != "ssn,age,doctor,note" {
		t.Errorf("Names = %s", got)
	}
	if got := s.QuasiColumns(); len(got) != 2 || got[0] != "age" || got[1] != "doctor" {
		t.Errorf("QuasiColumns = %v", got)
	}
	if got := s.IdentColumns(); len(got) != 1 || got[0] != "ssn" {
		t.Errorf("IdentColumns = %v", got)
	}
	if got := s.ColumnsOfKind(Other); len(got) != 1 || got[0] != "note" {
		t.Errorf("ColumnsOfKind(Other) = %v", got)
	}
	if s.Column(1).Kind != QuasiNumeric {
		t.Error("Column(1) kind wrong")
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "ssn" {
		t.Error("Columns() exposed internal state")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Identifying:      "identifying",
		QuasiCategorical: "quasi-categorical",
		QuasiNumeric:     "quasi-numeric",
		Other:            "other",
		Kind(42):         "Kind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !QuasiNumeric.IsQuasi() || !QuasiCategorical.IsQuasi() || Identifying.IsQuasi() || Other.IsQuasi() {
		t.Error("IsQuasi wrong")
	}
}

func TestAppendRowValidation(t *testing.T) {
	tbl := NewTable(testSchema(t))
	if err := tbl.AppendRow([]string{"too", "short"}); err == nil {
		t.Error("short row accepted")
	}
	row := []string{"s1", "30", "Nurse", "x"}
	if err := tbl.AppendRow(row); err != nil {
		t.Fatal(err)
	}
	row[0] = "mutated"
	if got, _ := tbl.Cell(0, "ssn"); got != "s1" {
		t.Error("AppendRow did not copy the row")
	}
}

func TestCellAccess(t *testing.T) {
	tbl := testTable(t)
	v, err := tbl.Cell(1, "doctor")
	if err != nil || v != "Surgeon" {
		t.Errorf("Cell = %q, %v", v, err)
	}
	if _, err := tbl.Cell(0, "missing"); err == nil {
		t.Error("missing column read")
	}
	if _, err := tbl.Cell(99, "ssn"); err == nil {
		t.Error("out-of-range row read")
	}
	if err := tbl.SetCell(1, "doctor", "Nurse"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Cell(1, "doctor"); v != "Nurse" {
		t.Error("SetCell did not stick")
	}
	if err := tbl.SetCell(99, "doctor", "x"); err == nil {
		t.Error("out-of-range SetCell accepted")
	}
	if err := tbl.SetCell(0, "missing", "x"); err == nil {
		t.Error("missing-column SetCell accepted")
	}
	// Fast path
	ci, _ := tbl.Schema().Index("age")
	if tbl.CellAt(2, ci) != "12" {
		t.Error("CellAt wrong")
	}
	tbl.SetCellAt(2, ci, "13")
	if tbl.CellAt(2, ci) != "13" {
		t.Error("SetCellAt wrong")
	}
}

func TestRowAndColumnCopies(t *testing.T) {
	tbl := testTable(t)
	r := tbl.Row(0)
	r[0] = "mutated"
	if v, _ := tbl.Cell(0, "ssn"); v != "s1" {
		t.Error("Row exposed internal state")
	}
	col, err := tbl.Column("ssn")
	if err != nil || len(col) != 4 || col[3] != "s4" {
		t.Errorf("Column = %v, %v", col, err)
	}
	col[0] = "mutated"
	if v, _ := tbl.Cell(0, "ssn"); v != "s1" {
		t.Error("Column exposed internal state")
	}
	if _, err := tbl.Column("missing"); err == nil {
		t.Error("missing column read")
	}
}

func TestClone(t *testing.T) {
	tbl := testTable(t)
	cp := tbl.Clone()
	if err := cp.SetCell(0, "ssn", "mutated"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Cell(0, "ssn"); v != "s1" {
		t.Error("Clone shares row storage")
	}
	if cp.NumRows() != tbl.NumRows() {
		t.Error("Clone row count wrong")
	}
}

func TestDeleteRows(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.DeleteRows([]int{1, 3, 1}); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	a, _ := tbl.Cell(0, "ssn")
	b, _ := tbl.Cell(1, "ssn")
	if a != "s1" || b != "s3" {
		t.Errorf("remaining rows = %s,%s; want s1,s3", a, b)
	}
	if err := tbl.DeleteRows([]int{5}); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if err := tbl.DeleteRows(nil); err != nil {
		t.Error("empty delete should be a no-op")
	}
}

func TestDeleteWhere(t *testing.T) {
	tbl := testTable(t)
	ci, _ := tbl.Schema().Index("doctor")
	n := tbl.DeleteWhere(func(row []string) bool { return row[ci] == "Nurse" })
	if n != 2 || tbl.NumRows() != 2 {
		t.Errorf("DeleteWhere removed %d, left %d", n, tbl.NumRows())
	}
}

func TestSlice(t *testing.T) {
	tbl := testTable(t)
	mid, err := tbl.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mid.NumRows() != 2 {
		t.Fatalf("slice rows = %d, want 2", mid.NumRows())
	}
	if got := mid.Row(0); got[0] != "s2" || got[2] != "Surgeon" {
		t.Errorf("slice row 0 = %v", got)
	}
	if got := mid.Row(1); got[0] != "s3" {
		t.Errorf("slice row 1 = %v", got)
	}
	// The slice is independent: mutating it leaves the source intact.
	mid.SetCellAt(0, 0, "changed")
	if v, _ := tbl.Cell(1, "ssn"); v != "s2" {
		t.Error("slice mutation leaked into the source table")
	}
	// Empty and full ranges.
	if empty, err := tbl.Slice(2, 2); err != nil || empty.NumRows() != 0 {
		t.Errorf("empty slice: %v, rows=%d", err, empty.NumRows())
	}
	if full, err := tbl.Slice(0, tbl.NumRows()); err != nil || full.NumRows() != tbl.NumRows() {
		t.Errorf("full slice: %v", err)
	}
	// Out-of-range requests are rejected.
	for _, r := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		if _, err := tbl.Slice(r[0], r[1]); err == nil {
			t.Errorf("slice [%d,%d) accepted", r[0], r[1])
		}
	}
}

func TestAppendTable(t *testing.T) {
	a := testTable(t)
	b := testTable(t)
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 8 {
		t.Errorf("NumRows = %d, want 8", a.NumRows())
	}
	narrow := NewTable(MustSchema(Column{Name: "x"}))
	if err := a.AppendTable(narrow); err == nil {
		t.Error("mismatched append accepted")
	}
}

func TestShuffleAndSort(t *testing.T) {
	tbl := testTable(t)
	tbl.Shuffle(rand.New(rand.NewSource(3)))
	if tbl.NumRows() != 4 {
		t.Fatal("shuffle changed row count")
	}
	if err := tbl.SortByColumn("ssn"); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"s1", "s2", "s3", "s4"} {
		if v, _ := tbl.Cell(i, "ssn"); v != want {
			t.Errorf("row %d ssn = %s, want %s", i, v, want)
		}
	}
	if err := tbl.SortByColumn("missing"); err == nil {
		t.Error("missing-column sort accepted")
	}
}

func TestForEachRow(t *testing.T) {
	tbl := testTable(t)
	count := 0
	tbl.ForEachRow(func(i int, row []string) {
		if len(row) != 4 {
			t.Errorf("row %d has %d cells", i, len(row))
		}
		count++
	})
	if count != 4 {
		t.Errorf("visited %d rows", count)
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tbl := testTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for _, c := range tbl.Schema().Names() {
			a, _ := tbl.Cell(i, c)
			b, _ := back.Cell(i, c)
			if a != b {
				t.Errorf("row %d col %s: %q != %q", i, c, a, b)
			}
		}
	}
}

func TestCSVColumnPermutation(t *testing.T) {
	// A CSV with permuted column order must map cells by name.
	csvText := "doctor,ssn,note,age\nNurse,s1,a,34\n"
	back, err := ReadCSV(strings.NewReader(csvText), testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Cell(0, "ssn"); v != "s1" {
		t.Errorf("ssn = %q", v)
	}
	if v, _ := back.Cell(0, "age"); v != "34" {
		t.Errorf("age = %q", v)
	}
}

func TestCSVErrors(t *testing.T) {
	s := testSchema(t)
	cases := []string{
		"",                                // no header
		"a,b\n",                           // wrong column count
		"ssn,age,doctor,bogus\n",          // unknown column
		"ssn,ssn,doctor,note\n",           // duplicate column
		"ssn,age,doctor,note\nonly,two\n", // short record
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), s); err == nil {
			t.Errorf("CSV %q accepted", c)
		}
	}
}

func TestSortByColumnNumeric(t *testing.T) {
	// Regression: lexicographic sorting put "10" before "9". QuasiNumeric
	// columns must sort by magnitude.
	tbl := NewTable(testSchema(t))
	ages := []string{"10", "9", "100", "23", "9", "invalid", "4.5"}
	for i, age := range ages {
		if err := tbl.AppendRow([]string{fmt.Sprintf("s%d", i), age, "Nurse", "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.SortByColumn("age"); err != nil {
		t.Fatal(err)
	}
	want := []string{"4.5", "9", "9", "10", "23", "100", "invalid"}
	for i, w := range want {
		if v, _ := tbl.Cell(i, "age"); v != w {
			t.Errorf("row %d age = %q, want %q", i, v, w)
		}
	}
	// Stability: the two 9s keep their original relative order (s1 then s4).
	a, _ := tbl.Cell(1, "ssn")
	b, _ := tbl.Cell(2, "ssn")
	if a != "s1" || b != "s4" {
		t.Errorf("equal keys reordered: %s, %s", a, b)
	}
	// Non-numeric column kinds still sort lexicographically.
	if err := tbl.SortByColumn("doctor"); err != nil {
		t.Fatal(err)
	}
}

func TestCodeAccessors(t *testing.T) {
	tbl := testTable(t)
	ci, _ := tbl.Schema().Index("doctor")
	// Dictionary encoding: the two "Nurse" cells share one code.
	if tbl.CodeAt(0, ci) != tbl.CodeAt(3, ci) {
		t.Error("equal values got distinct codes")
	}
	if got := tbl.ValueOf(ci, tbl.CodeAt(0, ci)); got != "Nurse" {
		t.Errorf("ValueOf = %q", got)
	}
	code, ok := tbl.CodeOf(ci, "Surgeon")
	if !ok || tbl.ValueOf(ci, code) != "Surgeon" {
		t.Errorf("CodeOf(Surgeon) = %d, %v", code, ok)
	}
	if _, ok := tbl.CodeOf(ci, "absent"); ok {
		t.Error("CodeOf resolved an absent value")
	}
	if tbl.DictLen(ci) != 3 {
		t.Errorf("DictLen = %d, want 3", tbl.DictLen(ci))
	}
	if got := len(tbl.Codes(ci)); got != tbl.NumRows() {
		t.Errorf("Codes length = %d", got)
	}
	if got := len(tbl.DictValues(ci)); got != 3 {
		t.Errorf("DictValues length = %d", got)
	}
	// SetCodeAt writes without interning; out-of-range codes panic.
	tbl.SetCodeAt(2, ci, code)
	if v, _ := tbl.Cell(2, "doctor"); v != "Surgeon" {
		t.Error("SetCodeAt did not stick")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range SetCodeAt did not panic")
			}
		}()
		tbl.SetCodeAt(0, ci, 99)
	}()
	// InternValue grows the dictionary without touching rows.
	n := tbl.NumRows()
	newCode := tbl.InternValue(ci, "Radiologist")
	if tbl.NumRows() != n || tbl.ValueOf(ci, newCode) != "Radiologist" {
		t.Error("InternValue changed rows or misfiled the value")
	}
}

func TestRowViewAndChunks(t *testing.T) {
	tbl := testTable(t)
	v := tbl.View(1)
	if v.Index() != 1 || v.Cell(0) != "s2" || tbl.ValueOf(0, v.Code(0)) != "s2" {
		t.Errorf("RowView = %v %q", v.Index(), v.Cell(0))
	}
	if got := v.AppendTo(nil); len(got) != 4 || got[2] != "Surgeon" {
		t.Errorf("AppendTo = %v", got)
	}
	var ranges [][2]int
	if err := tbl.ForEachRowChunk(3, func(lo, hi int) error {
		ranges = append(ranges, [2]int{lo, hi})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 2 || ranges[0] != [2]int{0, 3} || ranges[1] != [2]int{3, 4} {
		t.Errorf("chunks = %v", ranges)
	}
	wantErr := fmt.Errorf("stop")
	if err := tbl.ForEachRowChunk(1, func(lo, hi int) error { return wantErr }); err != wantErr {
		t.Errorf("chunk error = %v", err)
	}
}

func TestAppendCodes(t *testing.T) {
	tbl := testTable(t)
	codes := []uint32{tbl.CodeAt(0, 0), tbl.CodeAt(1, 1), tbl.CodeAt(2, 2), tbl.CodeAt(3, 3)}
	if err := tbl.AppendCodes(codes); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 5 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if got := tbl.Row(4); got[0] != "s1" || got[1] != "67" || got[2] != "Clerk" || got[3] != "d" {
		t.Errorf("appended row = %v", got)
	}
	if err := tbl.AppendCodes([]uint32{0}); err == nil {
		t.Error("short code row accepted")
	}
	if err := tbl.AppendCodes([]uint32{0, 0, 0, 99}); err == nil {
		t.Error("out-of-range code accepted")
	}
}

func TestMapColumn(t *testing.T) {
	tbl := testTable(t)
	ci, _ := tbl.Schema().Index("doctor")
	// Merge Nurse and Surgeon into Staff; Clerk unchanged.
	changed, err := tbl.MapColumn(ci, func(v string) (string, error) {
		if v == "Nurse" || v == "Surgeon" {
			return "Staff", nil
		}
		return v, nil
	})
	if err != nil || changed != 3 {
		t.Fatalf("MapColumn = %d, %v; want 3 changed", changed, err)
	}
	for i, want := range []string{"Staff", "Staff", "Clerk", "Staff"} {
		if v, _ := tbl.Cell(i, "doctor"); v != want {
			t.Errorf("row %d doctor = %q, want %q", i, v, want)
		}
	}
	// The dictionary compacted: merged outputs share one entry.
	if tbl.DictLen(ci) != 2 {
		t.Errorf("DictLen = %d, want 2", tbl.DictLen(ci))
	}
	// Errors abort without committing.
	if _, err := tbl.MapColumn(ci, func(v string) (string, error) {
		return "", fmt.Errorf("boom")
	}); err == nil {
		t.Error("MapColumn error not propagated")
	}
	if v, _ := tbl.Cell(0, "doctor"); v != "Staff" {
		t.Error("failed MapColumn mutated the table")
	}
	// Unused dictionary entries are skipped: delete all Clerk rows, then
	// map with a fn that rejects Clerk — it must never see the value.
	tbl.DeleteWhereView(func(v RowView) bool { return v.Cell(ci) == "Clerk" })
	if _, err := tbl.MapColumn(ci, func(v string) (string, error) {
		if v == "Clerk" {
			return "", fmt.Errorf("stale entry visited")
		}
		return v, nil
	}); err != nil {
		t.Errorf("MapColumn visited a stale dictionary entry: %v", err)
	}
}

func TestDeleteWhereView(t *testing.T) {
	tbl := testTable(t)
	ci, _ := tbl.Schema().Index("doctor")
	code, _ := tbl.CodeOf(ci, "Nurse")
	n := tbl.DeleteWhereView(func(v RowView) bool { return v.Code(ci) == code })
	if n != 2 || tbl.NumRows() != 2 {
		t.Errorf("DeleteWhereView removed %d, left %d", n, tbl.NumRows())
	}
}

func TestProject(t *testing.T) {
	tbl := testTable(t)
	sub := MustSchema(
		Column{Name: "doctor", Kind: QuasiCategorical},
		Column{Name: "ssn", Kind: Identifying},
	)
	out, err := tbl.Project(sub)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if v, _ := out.Cell(1, "doctor"); v != "Surgeon" {
		t.Errorf("projected doctor = %q", v)
	}
	if v, _ := out.Cell(1, "ssn"); v != "s2" {
		t.Errorf("projected ssn = %q", v)
	}
	// Mutating the projection must not touch the source.
	if err := out.SetCell(0, "ssn", "mutated"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Cell(0, "ssn"); v != "s1" {
		t.Error("Project shares code storage")
	}
	if _, err := tbl.Project(MustSchema(Column{Name: "missing"})); err == nil {
		t.Error("projection of a missing column accepted")
	}
}
