package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzCSVRoundTrip drives the streaming CSV reader with arbitrary
// documents against the builtin 4-column schema. Inputs the reader
// rejects (bad headers, ragged records, duplicate columns, quoting
// errors) must fail cleanly; inputs it accepts must round-trip through
// WriteCSV → ReadCSV cell-for-cell, and the writer must be
// deterministic.
func FuzzCSVRoundTrip(f *testing.F) {
	// Seed corpus: the interesting shapes — plain, permuted header,
	// aggressive quoting (embedded separators, quotes, newlines), ragged
	// records, duplicate and unknown columns, empty cells, CRLF endings.
	f.Add("ssn,age,doctor,note\ns1,34,Nurse,a\ns2,67,Surgeon,b\n")
	f.Add("doctor,ssn,note,age\nNurse,s1,a,34\n")
	f.Add("note,doctor,age,ssn\nx,Clerk,9,s9\ny,Nurse,10,s10\n")
	f.Add("ssn,age,doctor,note\n\"s,1\",\"3\n4\",\"Nu\"\"rse\",\"\"\n")
	f.Add("ssn,age,doctor,note\nonly,two\n")
	f.Add("ssn,ssn,doctor,note\na,b,c,d\n")
	f.Add("ssn,age,doctor,bogus\na,b,c,d\n")
	f.Add("ssn,age,doctor,note\r\ns1,34,Nurse,a\r\n")
	f.Add("ssn,age,doctor,note\ns1,,,\n,,,\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		schema := MustSchema(
			Column{Name: "ssn", Kind: Identifying},
			Column{Name: "age", Kind: QuasiNumeric},
			Column{Name: "doctor", Kind: QuasiCategorical},
			Column{Name: "note", Kind: Other},
		)
		tbl, err := ReadCSV(strings.NewReader(input), schema)
		if err != nil {
			return // rejected input: fine, as long as it doesn't panic
		}
		var out bytes.Buffer
		if err := tbl.WriteCSV(&out); err != nil {
			t.Fatalf("WriteCSV of accepted input failed: %v", err)
		}
		var out2 bytes.Buffer
		if err := tbl.WriteCSV(&out2); err != nil {
			t.Fatalf("second WriteCSV failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("WriteCSV is not deterministic")
		}
		back, err := ReadCSV(bytes.NewReader(out.Bytes()), schema)
		if err != nil {
			t.Fatalf("re-reading written CSV failed: %v\ncsv:\n%s", err, out.String())
		}
		if back.NumRows() != tbl.NumRows() {
			t.Fatalf("round-trip rows = %d, want %d", back.NumRows(), tbl.NumRows())
		}
		for i := 0; i < tbl.NumRows(); i++ {
			for ci := 0; ci < schema.NumColumns(); ci++ {
				want := tbl.CellAt(i, ci)
				// encoding/csv normalizes "\r\n" inside quoted fields to
				// "\n" on read; fold the original the same way.
				want = strings.ReplaceAll(want, "\r\n", "\n")
				if got := back.CellAt(i, ci); got != want {
					t.Fatalf("row %d col %d: round-trip %q, want %q", i, ci, got, want)
				}
			}
		}
	})
}
