package relation

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
)

// SegmentReader streams a CSV input as a sequence of bounded *Table
// segments instead of materializing one giant table. All segments share
// the reader's per-column dictionaries: a value seen in segment 1 keeps
// the same dictionary code in segment 400, so per-distinct-value work
// (encryption, generalization, embed preludes) amortizes across the
// whole stream while the resident row set stays bounded by the chunk
// size.
//
// Each segment is a self-contained Table over the reader's schema. Its
// dictionaries are capacity-capped views of the shared ones: reads are
// plain lookups, and a consumer that interns new values (SetCellAt,
// MapColumn) re-allocates privately without clobbering the shared
// backing — earlier segments and the reader itself stay valid. Quoted
// fields, embedded newlines and multi-byte runes are handled by the
// record-level CSV decoding, so a logical record never straddles two
// segments regardless of where its bytes fall.
type SegmentReader struct {
	schema  *Schema
	cr      *csv.Reader
	perm    []int // perm[csvCol] = schemaCol
	cols    []column
	chunk   int
	dictCap int
	lineNo  int
	rows    int
	done    bool
	err     error
}

// minDictCap floors the shared-dictionary retirement threshold so that
// low-cardinality columns keep full cross-stream sharing even under
// tiny chunk sizes.
const minDictCap = 16384

// NewSegmentReader prepares streaming ingest of r against schema,
// yielding at most chunk rows per segment (DefaultChunk when
// chunk <= 0). The CSV header is read and validated eagerly with the
// exact rules of ReadCSV: it must contain the schema's column names,
// each exactly once, in any order.
func NewSegmentReader(r io.Reader, schema *Schema, chunk int) (*SegmentReader, error) {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading header: %w", err)
	}
	perm, err := headerPerm(header, schema)
	if err != nil {
		return nil, err
	}
	return &SegmentReader{
		schema:  schema,
		cr:      cr,
		perm:    perm,
		cols:    make([]column, schema.NumColumns()),
		chunk:   chunk,
		dictCap: max(4*chunk, minDictCap),
		lineNo:  2,
	}, nil
}

// headerPerm maps CSV column positions to schema positions, enforcing
// ReadCSV's header contract (exact column set, no duplicates).
func headerPerm(header []string, schema *Schema) ([]int, error) {
	if len(header) != schema.NumColumns() {
		return nil, fmt.Errorf("relation: header has %d columns, schema has %d", len(header), schema.NumColumns())
	}
	perm := make([]int, len(header))
	seen := make(map[string]bool)
	for i, name := range header {
		si, err := schema.Index(name)
		if err != nil {
			return nil, fmt.Errorf("relation: unexpected CSV column %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("relation: duplicate CSV column %q", name)
		}
		seen[name] = true
		perm[i] = si
	}
	return perm, nil
}

// Next returns the next segment of at most the configured chunk rows,
// or (nil, io.EOF) once the input is exhausted. A malformed record
// fails with the same "relation: line N" error ReadCSV reports, and
// the failure is sticky.
func (sr *SegmentReader) Next() (*Table, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	if sr.done {
		return nil, io.EOF
	}
	codes := make([][]uint32, len(sr.cols))
	for ci := range codes {
		codes[ci] = make([]uint32, 0, sr.chunk)
	}
	n := 0
	for ; n < sr.chunk; n++ {
		rec, err := sr.cr.Read()
		if err == io.EOF {
			sr.done = true
			break
		}
		if err != nil {
			sr.err = fmt.Errorf("relation: line %d: %w", sr.lineNo, err)
			return nil, sr.err
		}
		sr.lineNo++
		for i, v := range rec {
			ci := sr.perm[i]
			codes[ci] = append(codes[ci], sr.cols[ci].intern(v))
		}
	}
	if n == 0 {
		return nil, io.EOF
	}
	sr.rows += n
	seg := &Table{schema: sr.schema, cols: make([]column, len(sr.cols))}
	for ci := range sr.cols {
		dict := sr.cols[ci].dict
		// Three-index slice: the segment reads the shared dictionary in
		// place, but any append (a consumer interning a new value) falls
		// off the capped capacity and copies, leaving the shared backing
		// untouched. The inverse index stays nil and is rebuilt lazily
		// and privately if the consumer ever needs it.
		seg.cols[ci].dict = dict[:len(dict):len(dict)]
		seg.cols[ci].codes = codes[ci]
	}
	// Retire oversized shared dictionaries. A near-unique column (an
	// identifying column, say) never repays sharing — its dictionary and
	// intern index would otherwise grow with the stream length, not the
	// chunk size, and every consumer doing per-distinct-value work over a
	// segment's dictionary view would pay for the whole stream's history.
	// Subsequent segments start that column from an empty dictionary; the
	// segment just built keeps its capped view of the retired backing,
	// and low-cardinality columns never hit the cap.
	for ci := range sr.cols {
		if len(sr.cols[ci].dict) > sr.dictCap {
			sr.cols[ci] = column{}
		}
	}
	return seg, nil
}

// Rows returns the number of data rows ingested so far.
func (sr *SegmentReader) Rows() int { return sr.rows }

// Schema returns the schema segments are yielded over.
func (sr *SegmentReader) Schema() *Schema { return sr.schema }

// TableSegments streams an in-memory table as bounded segments — the
// in-memory twin of SegmentReader for callers that already hold a Table
// but want the bounded-memory code path, and for tests comparing the
// two. Segments are compact re-encodings in row order: each carries
// only the dictionary entries its own rows use, so a segment's
// footprint is proportional to its row count even when the source
// table's dictionaries are huge (a million-row identifying column would
// otherwise ride along with every Slice-style segment).
type TableSegments struct {
	t     *Table
	chunk int
	lo    int
}

// Segments returns a streaming view of t yielding at most chunk rows
// per segment (DefaultChunk when chunk <= 0). The table must not be
// mutated while the view is drained.
func (t *Table) Segments(chunk int) *TableSegments {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &TableSegments{t: t, chunk: chunk}
}

// Schema returns the schema segments are yielded over.
func (ts *TableSegments) Schema() *Schema { return ts.t.schema }

// Next returns the next segment, or (nil, io.EOF) when the table is
// exhausted.
func (ts *TableSegments) Next() (*Table, error) {
	n := ts.t.NumRows()
	if ts.lo >= n {
		return nil, io.EOF
	}
	hi := min(ts.lo+ts.chunk, n)
	seg := compactSlice(ts.t, ts.lo, hi)
	ts.lo = hi
	return seg, nil
}

// compactSlice re-encodes rows [lo,hi) of t with segment-local
// dictionaries holding only the values those rows use. Value strings
// share backing with the source dictionaries; the lazily-built
// value→code index stays unmaterialized until a consumer interns.
func compactSlice(t *Table, lo, hi int) *Table {
	out := &Table{schema: t.schema, cols: make([]column, len(t.cols))}
	for ci := range t.cols {
		src := &t.cols[ci]
		dst := &out.cols[ci]
		remap := make(map[uint32]uint32, min(hi-lo, len(src.dict)))
		dst.codes = make([]uint32, hi-lo)
		for i, code := range src.codes[lo:hi] {
			nc, ok := remap[code]
			if !ok {
				nc = uint32(len(dst.dict))
				dst.dict = append(dst.dict, src.dict[code])
				remap[code] = nc
			}
			dst.codes[i] = nc
		}
	}
	return out
}

// SegmentWriter emits a sequence of table segments as one CSV stream:
// the header once, then each segment's rows in arrival order. The
// concatenated output is byte-identical to WriteCSV of the
// corresponding whole table.
type SegmentWriter struct {
	cw          *csv.Writer
	names       []string
	wroteHeader bool
	record      []string
}

// NewSegmentWriter prepares a segment CSV writer for tables over
// schema.
func NewSegmentWriter(w io.Writer, schema *Schema) *SegmentWriter {
	return &SegmentWriter{
		cw:     csv.NewWriter(w),
		names:  schema.Names(),
		record: make([]string, schema.NumColumns()),
	}
}

// writeHeader emits the header row exactly once.
func (sw *SegmentWriter) writeHeader() error {
	if sw.wroteHeader {
		return nil
	}
	sw.wroteHeader = true
	if err := sw.cw.Write(sw.names); err != nil {
		return fmt.Errorf("relation: writing header: %w", err)
	}
	return nil
}

// WriteSegment appends every row of t to the stream, flushing per
// bounded batch so the writer's buffer never holds more than
// DefaultChunk encoded rows.
func (sw *SegmentWriter) WriteSegment(t *Table) error {
	if len(t.cols) != len(sw.record) {
		return errors.New("relation: segment column count mismatch")
	}
	if err := sw.writeHeader(); err != nil {
		return err
	}
	return t.ForEachRowChunk(DefaultChunk, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			for ci := range t.cols {
				c := &t.cols[ci]
				sw.record[ci] = c.dict[c.codes[i]]
			}
			if err := sw.cw.Write(sw.record); err != nil {
				return fmt.Errorf("relation: writing row: %w", err)
			}
		}
		sw.cw.Flush()
		return sw.cw.Error()
	})
}

// Flush completes the stream: the header is emitted even if no segment
// was written (matching WriteCSV on an empty table) and buffered rows
// reach the underlying writer.
func (sw *SegmentWriter) Flush() error {
	if err := sw.writeHeader(); err != nil {
		return err
	}
	sw.cw.Flush()
	return sw.cw.Error()
}
