// Package relation is the relational-table substrate of the framework.
// It models the paper's table tbl: a schema whose columns are classified
// by the identifying information they contain (Section 2 of the paper —
// identifying, quasi-identifying, or other), and a column-major,
// dictionary-encoded cell store with the mutation operations the attack
// models need (random alteration, tuple addition, random and range
// deletion).
//
// Representation. The paper observes that after binning the data become
// essentially categorical, so every column is stored as a string
// dictionary (code → value, deduplicated) plus a dense []uint32 code
// vector with one code per tuple. Hot paths — binning histograms,
// watermark scans, attack mutations — operate on the integer codes and
// precompute per-distinct-value work once per dictionary entry instead
// of once per row; the string API (Cell, Row, ForEachRow, CSV) decodes
// on demand. Domain semantics (numeric intervals, categorical
// hierarchies) live in the dht package.
package relation

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pool"
)

// Kind classifies a column by the identifying information it contains
// (Section 2 of the paper).
type Kind int

const (
	// Identifying columns explicitly identify individuals (e.g. SSN).
	// The binning algorithm replaces them by encrypted values.
	Identifying Kind = iota
	// QuasiCategorical columns contain potentially identifying categorical
	// information (e.g. doctor, symptom) generalized over a categorical DHT.
	QuasiCategorical
	// QuasiNumeric columns contain potentially identifying numeric
	// information (e.g. age, zip) generalized over a numeric binary DHT.
	QuasiNumeric
	// Other columns carry no identifying information and are left intact.
	Other
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Identifying:
		return "identifying"
	case QuasiCategorical:
		return "quasi-categorical"
	case QuasiNumeric:
		return "quasi-numeric"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsQuasi reports whether the column is quasi-identifying.
func (k Kind) IsQuasi() bool { return k == QuasiCategorical || k == QuasiNumeric }

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered set of columns with unique names.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema validates and builds a schema.
func NewSchema(cols []Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, errors.New("relation: empty schema")
	}
	s := &Schema{cols: make([]Column, len(cols)), byName: make(map[string]int, len(cols))}
	copy(s.cols, cols)
	for i, c := range cols {
		if strings.TrimSpace(c.Name) == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for literals in tests and
// builtin schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of all columns.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Index returns the position of the named column.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("relation: no column %q", name)
	}
	return i, nil
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// ColumnsOfKind returns the names of all columns with the given kind, in
// schema order.
func (s *Schema) ColumnsOfKind(k Kind) []string {
	var out []string
	for _, c := range s.cols {
		if c.Kind == k {
			out = append(out, c.Name)
		}
	}
	return out
}

// QuasiColumns returns the names of all quasi-identifying columns.
func (s *Schema) QuasiColumns() []string {
	var out []string
	for _, c := range s.cols {
		if c.Kind.IsQuasi() {
			out = append(out, c.Name)
		}
	}
	return out
}

// IdentColumns returns the names of all identifying columns.
func (s *Schema) IdentColumns() []string { return s.ColumnsOfKind(Identifying) }

// column is one dictionary-encoded attribute vector: dict maps codes to
// values, index is the inverse (built lazily after Clone), codes holds
// one dictionary code per tuple.
type column struct {
	dict  []string
	index map[string]uint32
	codes []uint32
}

// ensureIndex (re)builds the value → code map. It is nil after Clone so
// read-only clones never pay for it. Not safe for concurrent use.
func (c *column) ensureIndex() {
	if c.index != nil {
		return
	}
	c.index = make(map[string]uint32, len(c.dict))
	for code, v := range c.dict {
		c.index[v] = uint32(code)
	}
}

// intern returns the code of v, inserting it into the dictionary if new.
// Inserted values are cloned so the dictionary never pins a caller's
// larger backing array (e.g. a CSV record buffer).
func (c *column) intern(v string) uint32 {
	c.ensureIndex()
	if code, ok := c.index[v]; ok {
		return code
	}
	code := uint32(len(c.dict))
	v = strings.Clone(v)
	c.dict = append(c.dict, v)
	c.index[v] = code
	return code
}

// Table is an in-memory relation: a schema plus one dictionary-encoded
// code vector per column.
type Table struct {
	schema *Schema
	cols   []column
}

// NewTable returns an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema, cols: make([]column, schema.NumColumns())}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.cols[0].codes) }

// AppendRow adds a tuple. The row length must match the schema. Cell
// values are interned into the per-column dictionaries.
func (t *Table) AppendRow(row []string) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("relation: row has %d cells, schema has %d columns", len(row), len(t.cols))
	}
	for ci := range t.cols {
		c := &t.cols[ci]
		c.codes = append(c.codes, c.intern(row[ci]))
	}
	return nil
}

// AppendCodes adds a tuple given as per-column dictionary codes. Every
// code must already be in range for its column's dictionary.
func (t *Table) AppendCodes(codes []uint32) error {
	if len(codes) != len(t.cols) {
		return fmt.Errorf("relation: row has %d codes, schema has %d columns", len(codes), len(t.cols))
	}
	for ci := range t.cols {
		if int(codes[ci]) >= len(t.cols[ci].dict) {
			return fmt.Errorf("relation: column %d: code %d out of dictionary range [0,%d)",
				ci, codes[ci], len(t.cols[ci].dict))
		}
	}
	for ci := range t.cols {
		t.cols[ci].codes = append(t.cols[ci].codes, codes[ci])
	}
	return nil
}

// Row returns a copy of tuple i.
func (t *Table) Row(i int) []string {
	row := make([]string, len(t.cols))
	for ci := range t.cols {
		c := &t.cols[ci]
		row[ci] = c.dict[c.codes[i]]
	}
	return row
}

// Cell returns the value at row i, named column.
func (t *Table) Cell(i int, col string) (string, error) {
	ci, err := t.schema.Index(col)
	if err != nil {
		return "", err
	}
	if i < 0 || i >= t.NumRows() {
		return "", fmt.Errorf("relation: row %d out of range [0,%d)", i, t.NumRows())
	}
	return t.CellAt(i, ci), nil
}

// SetCell overwrites the value at row i, named column.
func (t *Table) SetCell(i int, col, value string) error {
	ci, err := t.schema.Index(col)
	if err != nil {
		return err
	}
	if i < 0 || i >= t.NumRows() {
		return fmt.Errorf("relation: row %d out of range [0,%d)", i, t.NumRows())
	}
	t.SetCellAt(i, ci, value)
	return nil
}

// CellAt is Cell by column index, without bounds checking on the column;
// for hot loops that already resolved the index. It is a dictionary
// lookup — no allocation.
func (t *Table) CellAt(i, col int) string {
	c := &t.cols[col]
	return c.dict[c.codes[i]]
}

// SetCellAt is SetCell by column index. The value is interned; writing a
// value already in the column's dictionary mutates only the code vector.
// Not safe for concurrent use (interning may grow the dictionary) — see
// SetCodeAt for the race-free sharded-writer path.
func (t *Table) SetCellAt(i, col int, value string) {
	c := &t.cols[col]
	c.codes[i] = c.intern(value)
}

// CodeAt returns the dictionary code of the cell at row i. Codes are
// stable under reads and SetCodeAt, and only grow (never shuffle) under
// interning writes; Delete*, Shuffle and Sort* reorder rows, and
// MapColumn rebuilds the dictionary.
func (t *Table) CodeAt(i, col int) uint32 { return t.cols[col].codes[i] }

// SetCodeAt overwrites the cell at row i with an existing dictionary
// code (obtained from CodeAt, CodeOf or InternValue). It is a plain
// slice store, so concurrent writers on disjoint rows are safe. The code
// must be in range for the column's dictionary.
func (t *Table) SetCodeAt(i, col int, code uint32) {
	c := &t.cols[col]
	if int(code) >= len(c.dict) {
		panic(fmt.Sprintf("relation: column %d: code %d out of dictionary range [0,%d)", col, code, len(c.dict)))
	}
	c.codes[i] = code
}

// ValueOf decodes a dictionary code of the column.
func (t *Table) ValueOf(col int, code uint32) string { return t.cols[col].dict[code] }

// CodeOf returns the dictionary code of value in the column, if the
// value occurs in the dictionary. It may (re)build the column's inverse
// index, so it is not safe concurrently with itself or with interning
// writes on the same column.
func (t *Table) CodeOf(col int, value string) (uint32, bool) {
	c := &t.cols[col]
	c.ensureIndex()
	code, ok := c.index[value]
	return code, ok
}

// InternValue inserts value into the column's dictionary (if absent) and
// returns its code, without touching any row. Use it to pre-intern every
// value a sharded writer may store, then write codes with SetCodeAt.
func (t *Table) InternValue(col int, value string) uint32 {
	return t.cols[col].intern(value)
}

// DictLen returns the column's dictionary size (distinct values ever
// interned; deletions may leave unused entries until MapColumn compacts).
func (t *Table) DictLen(col int) int { return len(t.cols[col].dict) }

// DictValues returns the column's dictionary, indexed by code. The slice
// is shared with the table: callers must treat it as read-only, and it
// is stale after interning writes or MapColumn.
func (t *Table) DictValues(col int) []string { return t.cols[col].dict }

// Codes returns the column's code vector (one code per row). The slice
// is shared with the table: callers must treat it as read-only, and it
// is stale after any row mutation.
func (t *Table) Codes(col int) []uint32 { return t.cols[col].codes }

// Column returns a decoded copy of the named column's values.
func (t *Table) Column(name string) ([]string, error) {
	ci, err := t.schema.Index(name)
	if err != nil {
		return nil, err
	}
	c := &t.cols[ci]
	out := make([]string, len(c.codes))
	for i, code := range c.codes {
		out[i] = c.dict[code]
	}
	return out, nil
}

// Clone returns a deep copy sharing the (immutable) schema. Cloning
// copies dictionaries and code vectors; the inverse indexes are rebuilt
// lazily, so read-only clones never pay for them.
func (t *Table) Clone() *Table {
	c := &Table{schema: t.schema, cols: make([]column, len(t.cols))}
	for ci := range t.cols {
		src := &t.cols[ci]
		dst := &c.cols[ci]
		dst.dict = append([]string(nil), src.dict...)
		dst.codes = append([]uint32(nil), src.codes...)
	}
	return c
}

// Slice returns a new table holding rows [lo, hi) of t, in order — the
// natural way to carve a delta batch out of a larger export. Column
// dictionaries are copied wholesale (codes stay valid without a remap);
// the code vectors copy only the requested range.
func (t *Table) Slice(lo, hi int) (*Table, error) {
	if lo < 0 || hi < lo || hi > t.NumRows() {
		return nil, fmt.Errorf("relation: slice [%d,%d) out of range [0,%d]", lo, hi, t.NumRows())
	}
	out := &Table{schema: t.schema, cols: make([]column, len(t.cols))}
	for ci := range t.cols {
		src := &t.cols[ci]
		dst := &out.cols[ci]
		dst.dict = append([]string(nil), src.dict...)
		dst.codes = append([]uint32(nil), src.codes[lo:hi]...)
	}
	return out, nil
}

// compact keeps exactly the rows for which keep[i] is true, preserving
// relative order.
func (t *Table) compact(keep []bool) {
	for ci := range t.cols {
		codes := t.cols[ci].codes
		kept := codes[:0]
		for i, code := range codes {
			if keep[i] {
				kept = append(kept, code)
			}
		}
		t.cols[ci].codes = kept
	}
}

// DeleteRows removes the tuples at the given indices (any order,
// duplicates tolerated). Remaining rows preserve their relative order.
func (t *Table) DeleteRows(indices []int) error {
	if len(indices) == 0 {
		return nil
	}
	n := t.NumRows()
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	for _, i := range indices {
		if i < 0 || i >= n {
			return fmt.Errorf("relation: row %d out of range [0,%d)", i, n)
		}
		keep[i] = false
	}
	t.compact(keep)
	return nil
}

// DeleteWhere removes all tuples for which pred returns true and reports
// how many were removed. This implements the paper's range deletion
// (DELETE FROM R WHERE SSN > lval AND SSN < uval) generically. The row
// slice passed to pred is reused between calls: it must not be retained.
// Prefer DeleteWhereView, which decodes nothing.
func (t *Table) DeleteWhere(pred func(row []string) bool) int {
	scratch := make([]string, len(t.cols))
	return t.DeleteWhereView(func(v RowView) bool {
		return pred(v.AppendTo(scratch[:0]))
	})
}

// DeleteWhereView is DeleteWhere over zero-copy row views: pred reads
// cells (or codes) straight from the column store.
func (t *Table) DeleteWhereView(pred func(v RowView) bool) int {
	n := t.NumRows()
	keep := make([]bool, n)
	removed := 0
	for i := 0; i < n; i++ {
		if pred(RowView{t: t, i: i}) {
			removed++
		} else {
			keep[i] = true
		}
	}
	if removed > 0 {
		t.compact(keep)
	}
	return removed
}

// AppendTable appends all rows of other, which must share the schema
// column count. Cells are matched positionally; other's codes are
// remapped through a per-column dictionary translation built once, so
// the append is O(dict + rows) rather than per-cell hashing.
func (t *Table) AppendTable(other *Table) error {
	if len(other.cols) != len(t.cols) {
		return errors.New("relation: column count mismatch")
	}
	for ci := range t.cols {
		src := &other.cols[ci]
		dst := &t.cols[ci]
		remap := make([]uint32, len(src.dict))
		for code, v := range src.dict {
			remap[code] = dst.intern(v)
		}
		for _, code := range src.codes {
			dst.codes = append(dst.codes, remap[code])
		}
	}
	return nil
}

// permute rearranges rows so that new row i is old row perm[i].
func (t *Table) permute(perm []int) {
	for ci := range t.cols {
		codes := t.cols[ci].codes
		next := make([]uint32, len(codes))
		for i, p := range perm {
			next[i] = codes[p]
		}
		t.cols[ci].codes = next
	}
}

// identityPerm returns [0, 1, ... n).
func identityPerm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// Shuffle permutes row order using rng. Attacks use this to destroy any
// accidental reliance on physical order. The rng draw sequence matches a
// direct Fisher–Yates shuffle of the row store, so seeded runs reproduce
// historical orders.
func (t *Table) Shuffle(rng *rand.Rand) {
	perm := identityPerm(t.NumRows())
	rng.Shuffle(len(perm), func(i, j int) {
		perm[i], perm[j] = perm[j], perm[i]
	})
	t.permute(perm)
}

// SortByColumn sorts rows by the named column (stable). QuasiNumeric
// columns sort numerically: values parse once per distinct dictionary
// entry, numeric values order by magnitude (so "9" < "10"), and
// non-numeric values sort lexicographically after all numeric ones.
// Every other kind sorts by plain string comparison.
func (t *Table) SortByColumn(name string) error {
	ci, err := t.schema.Index(name)
	if err != nil {
		return err
	}
	c := &t.cols[ci]
	perm := identityPerm(len(c.codes))
	if t.schema.Column(ci).Kind == QuasiNumeric {
		nums := make([]float64, len(c.dict))
		numeric := make([]bool, len(c.dict))
		for code, v := range c.dict {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				nums[code], numeric[code] = f, true
			}
		}
		sort.SliceStable(perm, func(i, j int) bool {
			a, b := c.codes[perm[i]], c.codes[perm[j]]
			switch {
			case numeric[a] && numeric[b]:
				return nums[a] < nums[b]
			case numeric[a] != numeric[b]:
				return numeric[a] // numbers before non-numbers
			default:
				return c.dict[a] < c.dict[b]
			}
		})
	} else {
		sort.SliceStable(perm, func(i, j int) bool {
			return c.dict[c.codes[perm[i]]] < c.dict[c.codes[perm[j]]]
		})
	}
	t.permute(perm)
	return nil
}

// RowView is a zero-copy accessor for one tuple of a table. It is valid
// only while the table's row set is unchanged.
type RowView struct {
	t *Table
	i int
}

// View returns a zero-copy view of tuple i.
func (t *Table) View(i int) RowView { return RowView{t: t, i: i} }

// Index returns the row index the view points at.
func (v RowView) Index() int { return v.i }

// Cell decodes the cell in the given column.
func (v RowView) Cell(col int) string { return v.t.CellAt(v.i, col) }

// Code returns the dictionary code of the cell in the given column.
func (v RowView) Code(col int) uint32 { return v.t.cols[col].codes[v.i] }

// AppendTo appends the decoded row to dst and returns it.
func (v RowView) AppendTo(dst []string) []string {
	for ci := range v.t.cols {
		c := &v.t.cols[ci]
		dst = append(dst, c.dict[c.codes[v.i]])
	}
	return dst
}

// ForEachRow calls fn with (index, decoded row) for each tuple. The row
// slice is reused between calls: it must not be mutated or retained.
// Prefer code-level scans (Codes/DictValues, View) on hot paths.
func (t *Table) ForEachRow(fn func(i int, row []string)) {
	n := t.NumRows()
	row := make([]string, len(t.cols))
	for i := 0; i < n; i++ {
		for ci := range t.cols {
			c := &t.cols[ci]
			row[ci] = c.dict[c.codes[i]]
		}
		fn(i, row)
	}
}

// DefaultChunk is the row-batch size of ForEachRowChunk when the caller
// passes chunk <= 0.
const DefaultChunk = 4096

// ForEachRowChunk calls fn with contiguous half-open row ranges
// [lo, hi) of at most chunk rows (DefaultChunk when chunk <= 0), in
// order, stopping at the first error. Batches bound the working set of
// streaming consumers; fn reads cells through the code-level accessors.
func (t *Table) ForEachRowChunk(chunk int, fn func(lo, hi int) error) error {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	n := t.NumRows()
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// MapColumn rewrites one column through fn, calling fn once per distinct
// value in use instead of once per row: fn transforms dictionary
// entries, rows only have their codes remapped. The dictionary is
// compacted (unused entries dropped, equal outputs merged) and the
// number of rows whose value changed is returned. fn must be
// deterministic; a row-level scan applying a deterministic fn yields
// exactly the same table.
func (t *Table) MapColumn(col int, fn func(value string) (string, error)) (int, error) {
	return t.MapColumnCtx(context.Background(), 1, col, fn)
}

// MapColumnCtx is MapColumn with the per-entry fn calls fanned out over
// workers (0 = GOMAXPROCS, 1 = sequential) under ctx. The rebuilt
// dictionary is ordered by first use regardless of worker count, and the
// error of the lowest failing dictionary entry is reported.
func (t *Table) MapColumnCtx(ctx context.Context, workers, col int, fn func(value string) (string, error)) (int, error) {
	c := &t.cols[col]
	n := len(c.dict)
	if n == 0 {
		return 0, nil
	}
	rowsPer := make([]int, n)
	for _, code := range c.codes {
		rowsPer[code]++
	}
	results := make([]string, n)
	if err := pool.ForEachCtx(ctx, workers, n, func(k int) error {
		if rowsPer[k] == 0 {
			return nil
		}
		out, err := fn(c.dict[k])
		if err != nil {
			return err
		}
		results[k] = out
		return nil
	}); err != nil {
		return 0, err
	}
	next := column{}
	remap := make([]uint32, n)
	changed := 0
	for k := 0; k < n; k++ {
		if rowsPer[k] == 0 {
			continue
		}
		remap[k] = next.intern(results[k])
		if results[k] != c.dict[k] {
			changed += rowsPer[k]
		}
	}
	next.codes = c.codes
	for i, code := range next.codes {
		next.codes[i] = remap[code]
	}
	t.cols[col] = next
	return changed, nil
}

// Project returns a new table over the target schema, copying each
// target column's dictionary and code vector from the source column of
// the same name — a zero-decode columnar projection.
func (t *Table) Project(target *Schema) (*Table, error) {
	out := NewTable(target)
	for ci := 0; ci < target.NumColumns(); ci++ {
		si, err := t.schema.Index(target.Column(ci).Name)
		if err != nil {
			return nil, err
		}
		src := &t.cols[si]
		out.cols[ci].dict = append([]string(nil), src.dict...)
		out.cols[ci].codes = append([]uint32(nil), src.codes...)
	}
	return out, nil
}

// WriteCSV writes the table (header + rows) to w, decoding one bounded
// record batch at a time — the table is never materialized as
// [][]string.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("relation: writing header: %w", err)
	}
	record := make([]string, len(t.cols))
	err := t.ForEachRowChunk(DefaultChunk, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			for ci := range t.cols {
				c := &t.cols[ci]
				record[ci] = c.dict[c.codes[i]]
			}
			if err := cw.Write(record); err != nil {
				return fmt.Errorf("relation: writing row: %w", err)
			}
		}
		// flush per batch so the writer's buffer stays bounded
		cw.Flush()
		return cw.Error()
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table from r. The CSV header must contain exactly the
// schema's column names (in any order); cells are mapped by name. The
// reader streams: each record is interned straight into the column
// dictionaries and code vectors, so no [][]string row store is ever
// built and repeated values share one dictionary entry.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading header: %w", err)
	}
	perm, err := headerPerm(header, schema) // perm[csvCol] = schemaCol
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	for lineNo := 2; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", lineNo, err)
		}
		for i, v := range rec {
			c := &t.cols[perm[i]]
			c.codes = append(c.codes, c.intern(v))
		}
	}
	return t, nil
}
