// Package relation is the relational-table substrate of the framework.
// It models the paper's table tbl: a schema whose columns are classified
// by the identifying information they contain (Section 2 of the paper —
// identifying, quasi-identifying, or other), and a row store with the
// mutation operations the attack models need (random alteration, tuple
// addition, random and range deletion).
//
// Cell values are strings; domain semantics (numeric intervals,
// categorical hierarchies) live in the dht package. This mirrors the
// paper's observation that after binning the data become essentially
// categorical.
package relation

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
)

// Kind classifies a column by the identifying information it contains
// (Section 2 of the paper).
type Kind int

const (
	// Identifying columns explicitly identify individuals (e.g. SSN).
	// The binning algorithm replaces them by encrypted values.
	Identifying Kind = iota
	// QuasiCategorical columns contain potentially identifying categorical
	// information (e.g. doctor, symptom) generalized over a categorical DHT.
	QuasiCategorical
	// QuasiNumeric columns contain potentially identifying numeric
	// information (e.g. age, zip) generalized over a numeric binary DHT.
	QuasiNumeric
	// Other columns carry no identifying information and are left intact.
	Other
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Identifying:
		return "identifying"
	case QuasiCategorical:
		return "quasi-categorical"
	case QuasiNumeric:
		return "quasi-numeric"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsQuasi reports whether the column is quasi-identifying.
func (k Kind) IsQuasi() bool { return k == QuasiCategorical || k == QuasiNumeric }

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered set of columns with unique names.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema validates and builds a schema.
func NewSchema(cols []Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, errors.New("relation: empty schema")
	}
	s := &Schema{cols: make([]Column, len(cols)), byName: make(map[string]int, len(cols))}
	copy(s.cols, cols)
	for i, c := range cols {
		if strings.TrimSpace(c.Name) == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for literals in tests and
// builtin schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of all columns.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Index returns the position of the named column.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("relation: no column %q", name)
	}
	return i, nil
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// ColumnsOfKind returns the names of all columns with the given kind, in
// schema order.
func (s *Schema) ColumnsOfKind(k Kind) []string {
	var out []string
	for _, c := range s.cols {
		if c.Kind == k {
			out = append(out, c.Name)
		}
	}
	return out
}

// QuasiColumns returns the names of all quasi-identifying columns.
func (s *Schema) QuasiColumns() []string {
	var out []string
	for _, c := range s.cols {
		if c.Kind.IsQuasi() {
			out = append(out, c.Name)
		}
	}
	return out
}

// IdentColumns returns the names of all identifying columns.
func (s *Schema) IdentColumns() []string { return s.ColumnsOfKind(Identifying) }

// Table is an in-memory relation: a schema plus a row store.
type Table struct {
	schema *Schema
	rows   [][]string
}

// NewTable returns an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.rows) }

// AppendRow adds a tuple. The row length must match the schema. The slice
// is copied.
func (t *Table) AppendRow(row []string) error {
	if len(row) != t.schema.NumColumns() {
		return fmt.Errorf("relation: row has %d cells, schema has %d columns", len(row), t.schema.NumColumns())
	}
	cp := make([]string, len(row))
	copy(cp, row)
	t.rows = append(t.rows, cp)
	return nil
}

// Row returns a copy of tuple i.
func (t *Table) Row(i int) []string {
	cp := make([]string, len(t.rows[i]))
	copy(cp, t.rows[i])
	return cp
}

// Cell returns the value at row i, named column.
func (t *Table) Cell(i int, col string) (string, error) {
	ci, err := t.schema.Index(col)
	if err != nil {
		return "", err
	}
	if i < 0 || i >= len(t.rows) {
		return "", fmt.Errorf("relation: row %d out of range [0,%d)", i, len(t.rows))
	}
	return t.rows[i][ci], nil
}

// SetCell overwrites the value at row i, named column.
func (t *Table) SetCell(i int, col, value string) error {
	ci, err := t.schema.Index(col)
	if err != nil {
		return err
	}
	if i < 0 || i >= len(t.rows) {
		return fmt.Errorf("relation: row %d out of range [0,%d)", i, len(t.rows))
	}
	t.rows[i][ci] = value
	return nil
}

// CellAt is Cell by column index, without bounds checking on the column;
// for hot loops that already resolved the index.
func (t *Table) CellAt(i, col int) string { return t.rows[i][col] }

// SetCellAt is SetCell by column index.
func (t *Table) SetCellAt(i, col int, value string) { t.rows[i][col] = value }

// Column returns a copy of the named column's values.
func (t *Table) Column(name string) ([]string, error) {
	ci, err := t.schema.Index(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[ci]
	}
	return out, nil
}

// Clone returns a deep copy sharing the (immutable) schema.
func (t *Table) Clone() *Table {
	c := &Table{schema: t.schema, rows: make([][]string, len(t.rows))}
	for i, r := range t.rows {
		row := make([]string, len(r))
		copy(row, r)
		c.rows[i] = row
	}
	return c
}

// DeleteRows removes the tuples at the given indices (any order,
// duplicates tolerated). Remaining rows preserve their relative order.
func (t *Table) DeleteRows(indices []int) error {
	if len(indices) == 0 {
		return nil
	}
	drop := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(t.rows) {
			return fmt.Errorf("relation: row %d out of range [0,%d)", i, len(t.rows))
		}
		drop[i] = true
	}
	kept := t.rows[:0]
	for i, r := range t.rows {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	// zero the tail so deleted rows can be collected
	for i := len(kept); i < len(t.rows); i++ {
		t.rows[i] = nil
	}
	t.rows = kept
	return nil
}

// DeleteWhere removes all tuples for which pred returns true and reports
// how many were removed. This implements the paper's range deletion
// (DELETE FROM R WHERE SSN > lval AND SSN < uval) generically.
func (t *Table) DeleteWhere(pred func(row []string) bool) int {
	kept := t.rows[:0]
	removed := 0
	for _, r := range t.rows {
		if pred(r) {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(t.rows); i++ {
		t.rows[i] = nil
	}
	t.rows = kept
	return removed
}

// AppendTable appends all rows of other, which must share the schema
// column count.
func (t *Table) AppendTable(other *Table) error {
	if other.schema.NumColumns() != t.schema.NumColumns() {
		return errors.New("relation: column count mismatch")
	}
	for i := range other.rows {
		if err := t.AppendRow(other.rows[i]); err != nil {
			return err
		}
	}
	return nil
}

// Shuffle permutes row order using rng. Attacks use this to destroy any
// accidental reliance on physical order.
func (t *Table) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(t.rows), func(i, j int) {
		t.rows[i], t.rows[j] = t.rows[j], t.rows[i]
	})
}

// SortByColumn sorts rows by the named column's string value (stable).
func (t *Table) SortByColumn(name string) error {
	ci, err := t.schema.Index(name)
	if err != nil {
		return err
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		return t.rows[i][ci] < t.rows[j][ci]
	})
	return nil
}

// ForEachRow calls fn with (index, row view) for each tuple. The row slice
// must not be mutated or retained.
func (t *Table) ForEachRow(fn func(i int, row []string)) {
	for i, r := range t.rows {
		fn(i, r)
	}
}

// WriteCSV writes the table (header + rows) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("relation: writing header: %w", err)
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("relation: writing row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table from r. The CSV header must contain exactly the
// schema's column names (in any order); cells are mapped by name.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading header: %w", err)
	}
	if len(header) != schema.NumColumns() {
		return nil, fmt.Errorf("relation: header has %d columns, schema has %d", len(header), schema.NumColumns())
	}
	perm := make([]int, len(header)) // perm[csvCol] = schemaCol
	seen := make(map[string]bool)
	for i, name := range header {
		si, err := schema.Index(name)
		if err != nil {
			return nil, fmt.Errorf("relation: unexpected CSV column %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("relation: duplicate CSV column %q", name)
		}
		seen[name] = true
		perm[i] = si
	}
	t := NewTable(schema)
	for lineNo := 2; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", lineNo, err)
		}
		row := make([]string, schema.NumColumns())
		for i, v := range rec {
			row[perm[i]] = v
		}
		t.rows = append(t.rows, row)
	}
	return t, nil
}
