package relation

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func segSchema() *Schema {
	return MustSchema(
		Column{Name: "ssn", Kind: Identifying},
		Column{Name: "age", Kind: QuasiNumeric},
		Column{Name: "doctor", Kind: QuasiCategorical},
		Column{Name: "note", Kind: Other},
	)
}

// collectSegments drains a segment reader into a fresh table, returning
// the reassembled table and the segment row counts.
func collectSegments(t *testing.T, sr *SegmentReader) (*Table, []int) {
	t.Helper()
	out := NewTable(sr.schema)
	var sizes []int
	for {
		seg, err := sr.Next()
		if err == io.EOF {
			return out, sizes
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		sizes = append(sizes, seg.NumRows())
		if err := out.AppendTable(seg); err != nil {
			t.Fatalf("AppendTable: %v", err)
		}
	}
}

func tablesEqual(t *testing.T, got, want *Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		for ci := 0; ci < want.Schema().NumColumns(); ci++ {
			if g, w := got.CellAt(i, ci), want.CellAt(i, ci); g != w {
				t.Fatalf("row %d col %d: %q, want %q", i, ci, g, w)
			}
		}
	}
}

func TestSegmentReaderMatchesReadCSV(t *testing.T) {
	const input = "doctor,ssn,note,age\n" + // permuted header
		"Nurse,s1,a,34\n" +
		"\"Sur,geon\",s2,\"multi\nline\",67\n" +
		"Nurse,s3,\"qu\"\"ote\",34\n" +
		"Clerk,s4,后藤さん,9\n" +
		"Nurse,s5,,34\n"
	want, err := ReadCSV(strings.NewReader(input), segSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 2, 3, 5, 100, 0} {
		sr, err := NewSegmentReader(strings.NewReader(input), segSchema(), chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		got, sizes := collectSegments(t, sr)
		tablesEqual(t, got, want)
		if sr.Rows() != want.NumRows() {
			t.Fatalf("chunk %d: Rows() = %d, want %d", chunk, sr.Rows(), want.NumRows())
		}
		for _, n := range sizes {
			limit := chunk
			if limit <= 0 {
				limit = DefaultChunk
			}
			if n > limit {
				t.Fatalf("chunk %d: segment of %d rows", chunk, n)
			}
		}
	}
}

// TestSegmentReaderSharedDicts pins the cross-segment dictionary
// contract: a value seen in two segments carries the same code in both,
// and a consumer interning into one segment cannot disturb the shared
// backing other segments read.
func TestSegmentReaderSharedDicts(t *testing.T) {
	const input = "ssn,age,doctor,note\n" +
		"s1,34,Nurse,a\n" +
		"s2,67,Surgeon,b\n" +
		"s3,34,Nurse,c\n" +
		"s4,9,Clerk,d\n"
	sr, err := NewSegmentReader(strings.NewReader(input), segSchema(), 2)
	if err != nil {
		t.Fatal(err)
	}
	seg1, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	ageIdx, _ := segSchema().Index("age")
	code34 := seg1.CodeAt(0, ageIdx)

	// Interning a new value into seg1 must copy, not grow the shared dict.
	seg1.SetCellAt(1, ageIdx, "999")

	seg2, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := seg2.CodeAt(0, ageIdx); got != code34 {
		t.Fatalf("age code for repeated value = %d in segment 2, want %d", got, code34)
	}
	for _, v := range seg2.DictValues(ageIdx) {
		if v == "999" {
			t.Fatal("consumer-interned value leaked into the shared dictionary")
		}
	}
	// seg1 still reads correctly after the reader interned more values.
	if got := seg1.CellAt(0, ageIdx); got != "34" {
		t.Fatalf("segment 1 cell = %q after later ingest, want \"34\"", got)
	}
	if got := seg1.CellAt(1, ageIdx); got != "999" {
		t.Fatalf("segment 1 interned cell = %q, want \"999\"", got)
	}
}

func TestSegmentWriterMatchesWriteCSV(t *testing.T) {
	const input = "ssn,age,doctor,note\n" +
		"s1,34,Nurse,\"a\nb\"\n" +
		"s2,67,\"Sur,geon\",b\n" +
		"s3,34,Nurse,c\n" +
		"s4,9,Clerk,d\n" +
		"s5,67,Nurse,e\n"
	tbl, err := ReadCSV(strings.NewReader(input), segSchema())
	if err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := tbl.WriteCSV(&whole); err != nil {
		t.Fatal(err)
	}
	for _, split := range [][]int{{5}, {1, 4}, {2, 2, 1}, {3, 0, 2}} {
		var streamed bytes.Buffer
		sw := NewSegmentWriter(&streamed, tbl.Schema())
		lo := 0
		for _, n := range split {
			seg, err := tbl.Slice(lo, lo+n)
			if err != nil {
				t.Fatal(err)
			}
			lo += n
			if err := sw.WriteSegment(seg); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed.Bytes(), whole.Bytes()) {
			t.Fatalf("split %v: streamed CSV differs from WriteCSV", split)
		}
	}
}

func TestSegmentWriterEmptyStream(t *testing.T) {
	empty := NewTable(segSchema())
	var whole bytes.Buffer
	if err := empty.WriteCSV(&whole); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	sw := NewSegmentWriter(&streamed, segSchema())
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), whole.Bytes()) {
		t.Fatalf("empty stream = %q, want %q", streamed.String(), whole.String())
	}
}

func TestSegmentReaderErrors(t *testing.T) {
	if _, err := NewSegmentReader(strings.NewReader("ssn,ssn,doctor,note\n"), segSchema(), 2); err == nil {
		t.Fatal("duplicate header column accepted")
	}
	if _, err := NewSegmentReader(strings.NewReader("ssn,age,doctor,bogus\n"), segSchema(), 2); err == nil {
		t.Fatal("unknown header column accepted")
	}
	if _, err := NewSegmentReader(strings.NewReader(""), segSchema(), 2); err == nil {
		t.Fatal("empty input accepted")
	}

	// A ragged record mid-stream fails with ReadCSV's line numbering and
	// the failure is sticky.
	const bad = "ssn,age,doctor,note\ns1,34,Nurse,a\nonly,two\n"
	sr, err := NewSegmentReader(strings.NewReader(bad), segSchema(), 10)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sr.Next()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("ragged record error = %v, want line 3", err)
	}
	if _, err2 := sr.Next(); !errors.Is(err2, err) && err2 == nil {
		t.Fatal("error is not sticky")
	}
}

// FuzzSegmentIngest asserts the streaming contract on arbitrary
// documents: whenever ReadCSV accepts an input, segmented ingest at any
// chunk size must accept it too and reassemble to the identical table —
// records split across segment boundaries (quoted newlines, multi-byte
// runes, trailing partial rows) included.
func FuzzSegmentIngest(f *testing.F) {
	f.Add("ssn,age,doctor,note\ns1,34,Nurse,a\ns2,67,Surgeon,b\ns3,9,Clerk,c\n", 2)
	f.Add("doctor,ssn,note,age\nNurse,s1,a,34\n", 1)
	f.Add("ssn,age,doctor,note\n\"s,1\",\"3\n4\",\"Nu\"\"rse\",\"\"\n\"s\n2\",5,N,x\n", 1)
	f.Add("ssn,age,doctor,note\nс1,34,Ärztin,後藤\nс2,34,Ärztin,後藤\n", 1)
	f.Add("ssn,age,doctor,note\r\ns1,34,Nurse,a\r\ns2,5,N,b", 3)
	f.Add("ssn,age,doctor,note\ns1,,,\n,,,\n", 7)
	f.Add("", 4)
	f.Fuzz(func(t *testing.T, input string, chunk int) {
		if chunk < 0 {
			chunk = -chunk
		}
		chunk %= 6 // exercise tiny segments and the <=0 default path
		schema := segSchema()
		want, wantErr := ReadCSV(strings.NewReader(input), schema)

		sr, err := NewSegmentReader(strings.NewReader(input), schema, chunk)
		if err != nil {
			if wantErr == nil {
				t.Fatalf("segment reader rejected input ReadCSV accepts: %v", err)
			}
			return
		}
		got := NewTable(schema)
		var segErr error
		for {
			seg, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				segErr = err
				break
			}
			if err := got.AppendTable(seg); err != nil {
				t.Fatal(err)
			}
		}
		if wantErr != nil {
			if segErr == nil {
				t.Fatalf("segmented ingest accepted input ReadCSV rejects: %v", wantErr)
			}
			return
		}
		if segErr != nil {
			t.Fatalf("segmented ingest failed on accepted input: %v", segErr)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
		}
		for i := 0; i < want.NumRows(); i++ {
			for ci := 0; ci < schema.NumColumns(); ci++ {
				if g, w := got.CellAt(i, ci), want.CellAt(i, ci); g != w {
					t.Fatalf("row %d col %d: %q, want %q", i, ci, g, w)
				}
			}
		}
	})
}
