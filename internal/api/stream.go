package api

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
)

// This file defines the streaming half of the wire contract: a text/csv
// request/response mode for POST /v1/apply and POST /v1/append. The
// request body is one CSV document (header + records) consumed
// segment-at-a-time — the server never buffers the table — and the
// response body is the protected CSV, emitted incrementally. Everything
// that is not cell data rides in headers (request metadata) and HTTP
// trailers (run statistics and the effective/advanced plan, which only
// exist once the stream has drained).
//
// Because the response streams, a failure discovered mid-body (a
// source-side CSV error, or an end-of-stream verdict like plan drift)
// cannot change the already-committed 200 status. Such failures are
// reported in the ErrorTrailer instead, and the emitted CSV must be
// discarded. Streaming clients MUST check ErrorTrailer before trusting
// the body; failures detected before the first byte keep the ordinary
// status + ErrorResponse envelope.
//
// The JSON mode of the same endpoints (and every other endpoint) is
// untouched; pick the mode with the request Content-Type.

// POST /v1/plan shares the mode with one twist: the planning pass
// consumes the CSV body segment-at-a-time (bounded by distinct
// quasi-tuples, not rows) but emits no CSV — the response body is
// empty, and the computed plan plus a PlanStreamStats summary ride the
// PlanHeader / StatsTrailer trailers. Because nothing is written before
// the pass completes, plan-mode failures always keep the ordinary
// status + ErrorResponse envelope; ErrorTrailer is never used there.

// The read side of the pipeline speaks the same mode: a text/csv POST
// /v1/detect or /v1/traceback carries the suspect table as the request
// body, consumed segment-at-a-time (core.DetectStream/TracebackStream —
// memory bounded by the segment size, verdicts bit-identical to the
// in-memory endpoints). Like the plan mode they emit no CSV: the
// response body is empty, the verdict document rides the ResultTrailer
// and the ingest counters the StatsTrailer, and every failure keeps the
// ordinary status + ErrorResponse envelope. Detection metadata travels
// in headers: the provenance record (ProvenanceHeader) plus the usual
// secret/eta pair for /v1/detect; /v1/traceback needs only the master
// secret — its candidates come from the server's recipient registry.

// ContentTypeCSV selects the streaming mode on /v1/plan, /v1/apply,
// /v1/append, /v1/detect and /v1/traceback.
const ContentTypeCSV = "text/csv"

// Request headers of the streaming mode. The watermark secret rides the
// existing SecretHeader. Headers are size-limited by the HTTP server
// (net/http defaults to 1 MiB for all headers combined); a plan too
// large to travel as a header must use the JSON mode.
const (
	// PlanHeader carries the plan as one line of JSON (the ParsePlan
	// format, compact — headers cannot hold newlines). As a response
	// trailer, it carries the effective (apply) or advanced (append)
	// plan the same way.
	PlanHeader = "X-Medshield-Plan"
	// SchemaHeader carries the CSV body's schema as a JSON array of
	// Column objects, e.g. [{"name":"ssn","kind":"identifying"},...].
	SchemaHeader = "X-Medshield-Schema"
	// EtaHeader carries the watermark selection parameter η in decimal.
	EtaHeader = "X-Medshield-Eta"
	// OptionsHeader optionally carries an Options object as JSON.
	OptionsHeader = "X-Medshield-Options"
	// ChunkHeader optionally overrides the segment size (rows per
	// segment) in decimal.
	ChunkHeader = "X-Medshield-Chunk"
	// ProvenanceHeader carries the owner's provenance record as one line
	// of JSON on a streaming /v1/detect request.
	ProvenanceHeader = "X-Medshield-Provenance"
)

// Response trailers of the streaming mode.
const (
	// StatsTrailer carries the run summary as a JSON StreamStats.
	StatsTrailer = "X-Medshield-Stats"
	// ErrorTrailer carries a JSON Error when the run failed after the
	// response body had started; absent on success.
	ErrorTrailer = "X-Medshield-Error"
	// ResultTrailer carries the verdict document of a body-less streaming
	// run: a DetectResponse on /v1/detect, a TracebackResponse on
	// /v1/traceback.
	ResultTrailer = "X-Medshield-Result"
)

// ReadStreamStats is the ingest summary of a streaming detect or
// traceback run (their StatsTrailer) — the verdict itself rides the
// ResultTrailer.
type ReadStreamStats struct {
	Rows     int `json:"rows"`
	Segments int `json:"segments"`
}

// StreamStats is the streaming run summary (StatsTrailer).
type StreamStats struct {
	Rows           int `json:"rows"`
	Segments       int `json:"segments"`
	TuplesSelected int `json:"tuples_selected"`
	BitsEmbedded   int `json:"bits_embedded"`
	CellsChanged   int `json:"cells_changed"`
	NewBins        int `json:"new_bins"`
	Suppressed     int `json:"suppressed"`
}

// StreamStatsOf projects a streaming result to its wire summary.
func StreamStatsOf(res *core.Streamed) StreamStats {
	return StreamStats{
		Rows:           res.Rows,
		Segments:       res.Segments,
		TuplesSelected: res.Embed.TuplesSelected,
		BitsEmbedded:   res.Embed.BitsEmbedded,
		CellsChanged:   res.Embed.CellsChanged,
		NewBins:        res.NewBins,
		Suppressed:     res.Suppressed,
	}
}

// PlanStreamStats is the planning-mode run summary (the StatsTrailer of
// a streaming POST /v1/plan).
type PlanStreamStats struct {
	Rows       int     `json:"rows"`
	Segments   int     `json:"segments"`
	K          int     `json:"k"`
	Epsilon    int     `json:"epsilon"`
	EffectiveK int     `json:"effective_k"`
	AvgLoss    float64 `json:"avg_loss"`
}

// PlanStreamStatsOf projects a streamed planning result to its wire
// summary.
func PlanStreamStatsOf(res *core.PlannedStream) PlanStreamStats {
	return PlanStreamStats{
		Rows:       res.Rows,
		Segments:   res.Segments,
		K:          res.Plan.K,
		Epsilon:    res.Plan.Epsilon,
		EffectiveK: res.Plan.EffectiveK,
		AvgLoss:    res.Plan.AvgLoss,
	}
}

// ApplyRequest is the JSON mode of POST /v1/apply: execute a saved plan
// on a table — the transform half of protect, with no binning search.
type ApplyRequest struct {
	Table   Table     `json:"table"`
	Plan    core.Plan `json:"plan"`
	Key     Key       `json:"key"`
	Options *Options  `json:"options,omitempty"`
	Output  string    `json:"output,omitempty"` // OutputRows (default) | OutputCSV
}

// ApplyResponse returns the protected table, the provenance record and
// the effective plan (its published bin record filled in — retain it
// for /v1/append).
type ApplyResponse struct {
	Version    string          `json:"version"`
	Table      Table           `json:"table"`
	Provenance core.Provenance `json:"provenance"`
	Plan       core.Plan       `json:"plan"`
	Stats      ProtectStats    `json:"stats"`
}

// DecodeSchemaHeader parses SchemaHeader into a validated schema.
func DecodeSchemaHeader(h string) (*relation.Schema, error) {
	if strings.TrimSpace(h) == "" {
		return nil, fmt.Errorf("api: streaming request needs the %s header (JSON column array)", SchemaHeader)
	}
	var cols []Column
	if err := json.Unmarshal([]byte(h), &cols); err != nil {
		return nil, fmt.Errorf("api: %s: %w", SchemaHeader, err)
	}
	out := make([]relation.Column, len(cols))
	for i, c := range cols {
		kind, err := ParseKind(c.Kind)
		if err != nil {
			return nil, fmt.Errorf("api: %s: column %q: %w", SchemaHeader, c.Name, err)
		}
		out[i] = relation.Column{Name: c.Name, Kind: kind}
	}
	return relation.NewSchema(out)
}

// DecodePlanHeader parses and validates PlanHeader via core.ParsePlan.
func DecodePlanHeader(h string) (*core.Plan, error) {
	if strings.TrimSpace(h) == "" {
		return nil, fmt.Errorf("api: streaming request needs the %s header (plan JSON on one line)", PlanHeader)
	}
	plan, err := core.ParsePlan([]byte(h))
	if err != nil {
		return nil, fmt.Errorf("api: %s: %w", PlanHeader, err)
	}
	return plan, nil
}

// EncodePlanHeader renders a plan as the single-line JSON PlanHeader
// carries (MarshalPlan indents, which headers cannot hold).
func EncodePlanHeader(plan *core.Plan) (string, error) {
	data, err := json.Marshal(plan)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// DecodeProvenanceHeader parses ProvenanceHeader into the provenance
// record a streaming detect runs under.
func DecodeProvenanceHeader(h string) (core.Provenance, error) {
	var prov core.Provenance
	if strings.TrimSpace(h) == "" {
		return prov, fmt.Errorf("api: streaming request needs the %s header (provenance JSON on one line)", ProvenanceHeader)
	}
	if err := json.Unmarshal([]byte(h), &prov); err != nil {
		return prov, fmt.Errorf("api: %s: %w", ProvenanceHeader, err)
	}
	return prov, nil
}

// DecodeOptionsHeader parses the optional OptionsHeader; empty means no
// overrides (nil).
func DecodeOptionsHeader(h string) (*Options, error) {
	if strings.TrimSpace(h) == "" {
		return nil, nil
	}
	var opts Options
	if err := json.Unmarshal([]byte(h), &opts); err != nil {
		return nil, fmt.Errorf("api: %s: %w", OptionsHeader, err)
	}
	return &opts, nil
}

// DecodeEtaHeader parses the required EtaHeader.
func DecodeEtaHeader(h string) (uint64, error) {
	if strings.TrimSpace(h) == "" {
		return 0, fmt.Errorf("api: streaming request needs the %s header", EtaHeader)
	}
	eta, err := strconv.ParseUint(strings.TrimSpace(h), 10, 64)
	if err != nil || eta == 0 {
		return 0, fmt.Errorf("api: %s: want a decimal >= 1, got %q", EtaHeader, h)
	}
	return eta, nil
}

// DecodeChunkHeader parses the optional ChunkHeader; 0 means "server
// default".
func DecodeChunkHeader(h string) (int, error) {
	if strings.TrimSpace(h) == "" {
		return 0, nil
	}
	chunk, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || chunk < 1 {
		return 0, fmt.Errorf("api: %s: want a decimal >= 1, got %q", ChunkHeader, h)
	}
	return chunk, nil
}
