package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/binning"
	"repro/internal/core"
	"repro/internal/relation"
)

func wireTable() Table {
	return Table{
		Columns: []Column{
			{Name: "id", Kind: "identifying"},
			{Name: "age", Kind: "quasi-numeric"},
			{Name: "note", Kind: "other"},
		},
		Rows: [][]string{{"a", "30", "x"}, {"b", "41", "y"}},
	}
}

func TestTableRoundTrip(t *testing.T) {
	for _, output := range []string{OutputRows, OutputCSV, ""} {
		tbl, err := DecodeTable(wireTable())
		if err != nil {
			t.Fatal(err)
		}
		wire, err := EncodeTable(tbl, output)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeTable(wire)
		if err != nil {
			t.Fatalf("output=%q: %v", output, err)
		}
		if back.NumRows() != 2 {
			t.Fatalf("output=%q: %d rows", output, back.NumRows())
		}
		for i := 0; i < 2; i++ {
			for c := 0; c < 3; c++ {
				if back.CellAt(i, c) != tbl.CellAt(i, c) {
					t.Fatalf("output=%q: cell (%d,%d) = %q", output, i, c, back.CellAt(i, c))
				}
			}
		}
		if back.Schema().Column(0).Kind != relation.Identifying ||
			back.Schema().Column(1).Kind != relation.QuasiNumeric ||
			back.Schema().Column(2).Kind != relation.Other {
			t.Fatalf("output=%q: kinds lost", output)
		}
	}
}

func TestDecodeTableRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Table)
	}{
		{"no columns", func(t *Table) { t.Columns = nil }},
		{"bad kind", func(t *Table) { t.Columns[0].Kind = "mystery" }},
		{"rows and csv", func(t *Table) { t.CSV = "id,age,note\n" }},
		{"short row", func(t *Table) { t.Rows = [][]string{{"only-one"}} }},
		{"dup column", func(t *Table) { t.Columns[1].Name = "id" }},
	}
	for _, tc := range cases {
		w := wireTable()
		tc.mut(&w)
		if _, err := DecodeTable(w); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDecodeTableCSVHeaderMismatch(t *testing.T) {
	w := wireTable()
	w.Rows = nil
	w.CSV = "id,age,wrong\na,30,x\n"
	if _, err := DecodeTable(w); err == nil {
		t.Fatal("mismatched CSV header accepted")
	}
}

func TestParseKindAliases(t *testing.T) {
	for in, want := range map[string]relation.Kind{
		"identifying":       relation.Identifying,
		"ID":                relation.Identifying,
		"quasi-categorical": relation.QuasiCategorical,
		"quasi_numeric":     relation.QuasiNumeric,
		"other":             relation.Other,
		"":                  relation.Other,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
}

func TestOptionsApply(t *testing.T) {
	base := core.Config{K: 20, AutoEpsilon: true, Workers: 4, LossThreshold: 0.15}

	// nil options inherit everything.
	var o *Options
	cfg, err := o.Apply(base)
	if err != nil || !reflect.DeepEqual(cfg, base) {
		t.Fatalf("nil options: (%+v, %v)", cfg, err)
	}

	f := false
	w := 0
	lt := 0.3
	cfg, err = (&Options{
		K:             5,
		AutoEpsilon:   &f,
		Workers:       &w,
		LossThreshold: &lt,
		Strategy:      "greedy",
	}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K != 5 || cfg.AutoEpsilon || cfg.Workers != 0 || cfg.LossThreshold != 0.3 ||
		cfg.Strategy != binning.StrategyGreedy {
		t.Fatalf("overrides not applied: %+v", cfg)
	}

	if _, err := (&Options{Strategy: "quantum"}).Apply(base); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err    error
		code   string
		status int
	}{
		{fmt.Errorf("x: %w", core.ErrBadConfig), CodeBadConfig, http.StatusBadRequest},
		{fmt.Errorf("x: %w", core.ErrBadKey), CodeBadKey, http.StatusBadRequest},
		{fmt.Errorf("x: %w", core.ErrBadSchema), CodeBadSchema, http.StatusBadRequest},
		{fmt.Errorf("x: %w", core.ErrBadProvenance), CodeBadProvenance, http.StatusBadRequest},
		{fmt.Errorf("x: %w", core.ErrUnsatisfiable), CodeUnsatisfiable, http.StatusUnprocessableEntity},
		{fmt.Errorf("x: %w", core.ErrKeyMismatch), CodeKeyMismatch, http.StatusForbidden},
		{context.Canceled, CodeCanceled, 499},
		{context.DeadlineExceeded, CodeDeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("mystery"), CodeInternal, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		code, status := Classify(tc.err)
		if code != tc.code || status != tc.status {
			t.Errorf("Classify(%v) = (%s, %d), want (%s, %d)", tc.err, code, status, tc.code, tc.status)
		}
	}
}

func TestDecodeJSONTrailingGarbage(t *testing.T) {
	var v map[string]any
	if err := DecodeJSON(strings.NewReader(`{"a":1} trailing`), &v); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if err := DecodeJSON(strings.NewReader(`{"a":1}`), &v); err != nil {
		t.Fatal(err)
	}
}
