package api

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/core"
)

// Error is the structured error body: a machine-readable code plus a
// human-readable message.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the envelope every non-2xx response carries.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Machine-readable error codes. Clients switch on these, never on
// message text.
const (
	CodeBadRequest        = "bad_request"         // malformed JSON, bad table payload, bad options
	CodeBadConfig         = "bad_config"          // configuration rejected by the pipeline
	CodeBadKey            = "bad_key"             // unusable key material
	CodeBadSchema         = "bad_schema"          // table/schema the pipeline cannot process
	CodeBadProvenance     = "bad_provenance"      // provenance record does not fit
	CodeUnsatisfiable     = "unsatisfiable"       // k-anonymity/bandwidth unattainable for this data
	CodeKeyMismatch       = "key_mismatch"        // well-formed key does not match the data
	CodePlanDrift         = "plan_drift"          // delta batch no longer fits the frozen plan; re-plan
	CodeCanceled          = "canceled"            // request context cancelled by the client
	CodeDeadlineExceeded  = "deadline_exceeded"   // per-request deadline hit
	CodeOverloaded        = "overloaded"          // in-flight request limit reached
	CodePayloadTooLarge   = "payload_too_large"   // request body exceeds the server cap
	CodeNotFound          = "not_found"           // addressed resource (e.g. a recipient) absent
	CodeConflict          = "conflict"            // write refused: it would clobber live state (e.g. re-registering a recipient with a new mark)
	CodeTooManyRecipients = "too_many_recipients" // fingerprint batch exceeds the server's recipient cap; split it
	CodeUnauthorized      = "unauthorized"        // missing or unknown bearer token
	CodeForbidden         = "forbidden"           // authenticated but not allowed (disabled tenant, role, non-loopback /metrics)
	CodeRateLimited       = "rate_limited"        // token bucket empty; honor Retry-After
	CodeQuotaExceeded     = "quota_exceeded"      // per-tenant quota (rows per request, active jobs) exhausted
	CodeInternal          = "internal"            // anything unclassified
)

// RequestIDHeader carries the server-assigned request ID on every
// response; audit lines and access logs reference the same ID.
const RequestIDHeader = "X-Request-Id"

// Classify maps a pipeline error to its wire code and HTTP status via
// errors.Is over the core sentinels — no string matching. Unclassified
// errors are internal (500).
func Classify(err error) (code string, status int) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded, http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// 499 is nginx's "client closed request"; net/http has no named
		// constant, and the client is usually gone anyway.
		return CodeCanceled, 499
	case errors.Is(err, core.ErrBadConfig):
		return CodeBadConfig, http.StatusBadRequest
	case errors.Is(err, core.ErrBadKey):
		return CodeBadKey, http.StatusBadRequest
	case errors.Is(err, core.ErrBadSchema):
		return CodeBadSchema, http.StatusBadRequest
	case errors.Is(err, core.ErrBadProvenance):
		return CodeBadProvenance, http.StatusBadRequest
	case errors.Is(err, core.ErrUnsatisfiable):
		return CodeUnsatisfiable, http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrKeyMismatch):
		return CodeKeyMismatch, http.StatusForbidden
	case errors.Is(err, core.ErrPlanDrift):
		// The request is well-formed; it conflicts with the frozen
		// plan's published state. The client's remedy is a re-plan.
		return CodePlanDrift, http.StatusConflict
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}
