package api

import (
	"encoding/json"

	"repro/internal/jobs"
)

// Headers of the async job API.
const (
	// IdempotencyKeyHeader carries the client-supplied idempotency key
	// of POST /v1/jobs/{kind}: resubmitting the same key for the same
	// kind returns the existing job instead of creating a new one.
	IdempotencyKeyHeader = "Idempotency-Key"
	// WebhookHeader carries the completion callback URL of POST
	// /v1/jobs/{kind}. The callback is HMAC-signed with the job's master
	// secret (see jobs.SignatureHeader).
	WebhookHeader = "X-Medshield-Webhook"
)

// JobResponse is the job resource: its snapshot plus, once the job
// succeeded, the result document — byte-identical to the corresponding
// synchronous endpoint's response body.
type JobResponse struct {
	Version string          `json:"version"`
	Job     jobs.Snapshot   `json:"job"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// JobsListResponse is one page of GET /v1/jobs. Total counts every
// match before pagination; Offset and Limit echo the window served.
type JobsListResponse struct {
	Version string          `json:"version"`
	Jobs    []jobs.Snapshot `json:"jobs"`
	Total   int             `json:"total"`
	Offset  int             `json:"offset"`
	Limit   int             `json:"limit"`
}

// ReadyResponse is GET /readyz: ready until the server starts draining.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Status string `json:"status"` // "ok" or "draining"
}
