package api

import (
	"repro/internal/core"
	"repro/internal/registry"
)

// This file defines the multi-recipient fingerprinting / leak-traceback
// half of the wire contract: POST /v1/fingerprint marks one source
// table for N recipients and registers them, the /v1/recipients
// CRUD-lite reads and prunes the registry, and POST /v1/traceback runs
// detection for every registered recipient against a suspect table and
// ranks the verdicts. Registry records travel as the registry.Record
// JSON — wire format and on-disk format are the same document, so a
// record can be exported from one service and imported into another
// verbatim.

// SecretHeader carries the owner's master secret on registry-record
// requests (GET/DELETE /v1/recipients/{id}, POST /v1/recipients). The
// server re-derives the addressed record's key from it and compares
// fingerprints: registry records are server-held owner state, so
// reading a full record or mutating one requires proof of the secret.
// The summary list (GET /v1/recipients) stays open — it carries no
// plans and mutates nothing.
const SecretHeader = "X-Medshield-Secret"

// RecipientRef names one recipient in a fingerprint request.
type RecipientRef struct {
	ID string `json:"id"`
}

// FingerprintRequest asks the service to protect one table for N
// recipients. Per-recipient keys are derived server-side from the
// master secret and each recipient ID (the same derivation the owner
// uses for traceback); only the key fingerprints are retained.
type FingerprintRequest struct {
	Table      Table          `json:"table"`
	Secret     string         `json:"secret"`
	Eta        uint64         `json:"eta"`
	Recipients []RecipientRef `json:"recipients"`
	Options    *Options       `json:"options,omitempty"`
	Output     string         `json:"output,omitempty"` // OutputRows (default) | OutputCSV
}

// FingerprintRecipient is one recipient's slice of the response.
type FingerprintRecipient struct {
	ID             string          `json:"id"`
	KeyFingerprint string          `json:"key_fingerprint"`
	Table          Table           `json:"table"`
	Provenance     core.Provenance `json:"provenance"`
	TuplesSelected int             `json:"tuples_selected"`
	BitsEmbedded   int             `json:"bits_embedded"`
	CellsChanged   int             `json:"cells_changed"`
}

// FingerprintResponse returns every recipient's marked copy. The
// recipients are also registered in the service's registry for later
// traceback.
type FingerprintResponse struct {
	Version    string                 `json:"version"`
	Recipients []FingerprintRecipient `json:"recipients"`
	Stats      PlanStats              `json:"stats"`
}

// TracebackRequest asks whose registered copy a suspect table carries.
// Keys are re-derived from the master secret per registered recipient
// and verified against the stored fingerprints.
type TracebackRequest struct {
	Table   Table    `json:"table"`
	Secret  string   `json:"secret"`
	Options *Options `json:"options,omitempty"`
}

// TracebackVerdict mirrors core.TracebackVerdict with wire-stable
// names.
type TracebackVerdict struct {
	RecipientID string  `json:"recipient_id"`
	Mark        string  `json:"mark"`
	MarkLoss    float64 `json:"mark_loss"`
	MatchRatio  float64 `json:"match_ratio"`
	Match       bool    `json:"match"`
	Confidence  float64 `json:"confidence"`
	VotesCast   int     `json:"votes_cast"`
}

// TracebackResponse reports the ranked verdicts, best match first.
// Skipped lists registered recipients the supplied secret could not
// verify (foreign imports, stale records) — they were excluded from the
// verdicts rather than failing the traceback.
type TracebackResponse struct {
	Version  string             `json:"version"`
	Verdicts []TracebackVerdict `json:"verdicts"`
	Culprit  string             `json:"culprit,omitempty"`
	Matches  int                `json:"matches"`
	Skipped  []string           `json:"skipped,omitempty"`
}

// RecipientSummary is the list view of one registry record:
// operational fields only. The key fingerprint and mark are
// deliberately absent — the list endpoint is unauthenticated, and a
// fingerprint is an offline verification oracle for the master secret
// (see the README security note); both travel only in the full record,
// which requires the secret.
type RecipientSummary struct {
	ID          string `json:"id"`
	Eta         uint64 `json:"eta"`
	Duplication int    `json:"duplication"`
	Rows        int    `json:"rows"`
	CreatedAt   string `json:"created_at,omitempty"`
}

// SummaryOf projects a registry record to its list view.
func SummaryOf(r registry.Record) RecipientSummary {
	return RecipientSummary{
		ID:          r.RecipientID,
		Eta:         r.Eta,
		Duplication: r.Duplication,
		Rows:        r.Plan.Rows,
		CreatedAt:   r.CreatedAt,
	}
}

// RecipientsResponse is the GET /v1/recipients body.
type RecipientsResponse struct {
	Version    string             `json:"version"`
	Recipients []RecipientSummary `json:"recipients"`
}

// RecipientResponse is the GET /v1/recipients/{id} body (and the POST
// import echo): the full registry record, plan included.
type RecipientResponse struct {
	Version   string          `json:"version"`
	Recipient registry.Record `json:"recipient"`
}
