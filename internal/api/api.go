// Package api defines the versioned JSON wire contract of the medshield
// HTTP service: request/response DTOs for the three pipeline operations
// (protect, detect, dispute), a CSV-or-rows table payload, and a
// structured error envelope with machine-readable codes. The provenance
// record travels as the existing core.Provenance JSON — the wire format
// and the owner's retained record are the same document, so a protect
// response's provenance can be stored verbatim and replayed in a later
// detect request.
//
// The package is transport-agnostic: it knows JSON and the pipeline's
// sentinel errors, not net/http handlers (those live in
// internal/server). Version is carried in every response body so clients
// can assert compatibility without inspecting URLs.
package api

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/binning"
	"repro/internal/core"
	"repro/internal/relation"
)

// Version is the wire-format version tag carried in every response and
// matched by the URL prefix (/v1/...).
const Version = "v1"

// Column describes one table column on the wire. Kind uses the string
// forms of relation.Kind: "identifying", "quasi-categorical",
// "quasi-numeric", "other".
type Column struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// Table is the CSV-or-rows table payload. Columns is always required —
// it is the schema, including the kind classification the pipeline
// needs. The cells come either inline as Rows or as one CSV document
// (header + records) in CSV; exactly one of the two must be set.
type Table struct {
	Columns []Column   `json:"columns"`
	Rows    [][]string `json:"rows,omitempty"`
	CSV     string     `json:"csv,omitempty"`
}

// Output formats for table-bearing responses.
const (
	OutputRows = "rows" // default: cells inline as JSON arrays
	OutputCSV  = "csv"  // cells as one CSV document
)

// Key carries the watermarking secret on the wire: the passphrase the
// full key set derives from (crypt.NewWatermarkKeyFromSecret) and the
// selection parameter η.
type Key struct {
	Secret string `json:"secret"`
	Eta    uint64 `json:"eta"`
}

// Options overrides server-default pipeline configuration per request.
// Zero-valued fields inherit the server default; booleans and Workers
// are pointers so an explicit false/0 is distinguishable from absent.
type Options struct {
	K                   int      `json:"k,omitempty"`
	Epsilon             int      `json:"epsilon,omitempty"`
	AutoEpsilon         *bool    `json:"auto_epsilon,omitempty"`
	Strategy            string   `json:"strategy,omitempty"` // "auto" | "exhaustive" | "greedy"
	EnumLimit           int      `json:"enum_limit,omitempty"`
	Aggressive          *bool    `json:"aggressive,omitempty"`
	IdentCol            string   `json:"ident_col,omitempty"`
	MarkBits            int      `json:"mark_bits,omitempty"`
	Duplication         int      `json:"duplication,omitempty"`
	Quantum             *float64 `json:"quantum,omitempty"`
	Tau                 *float64 `json:"tau,omitempty"`
	LossThreshold       *float64 `json:"loss_threshold,omitempty"`
	WeightedVoting      *bool    `json:"weighted_voting,omitempty"`
	BoundaryPermutation *bool    `json:"boundary_permutation,omitempty"`
	NoColumnSalt        *bool    `json:"no_column_salt,omitempty"`
	Workers             *int     `json:"workers,omitempty"`
}

// ProtectRequest asks the service to run the full Figure-2 pipeline.
type ProtectRequest struct {
	Table   Table    `json:"table"`
	Key     Key      `json:"key"`
	Options *Options `json:"options,omitempty"`
	Output  string   `json:"output,omitempty"` // OutputRows (default) | OutputCSV
}

// ProtectStats is the response's run summary.
type ProtectStats struct {
	Rows           int     `json:"rows"`
	TuplesSelected int     `json:"tuples_selected"`
	BitsEmbedded   int     `json:"bits_embedded"`
	CellsChanged   int     `json:"cells_changed"`
	EffectiveK     int     `json:"effective_k"`
	Epsilon        int     `json:"epsilon"`
	AvgLoss        float64 `json:"avg_loss"`
}

// ProtectResponse returns the outsourcing-ready table, the owner's
// provenance record (store it — detection needs it back verbatim) and
// the effective protection plan (store it too — incremental appends
// replay it; it is a superset of the provenance record).
type ProtectResponse struct {
	Version    string          `json:"version"`
	Table      Table           `json:"table"`
	Provenance core.Provenance `json:"provenance"`
	Plan       core.Plan       `json:"plan"`
	Stats      ProtectStats    `json:"stats"`
}

// PlanRequest asks the service to run only the planning stage: the
// binning frontier search and ownership-mark derivation, with no table
// transform. The response's plan is a dry-run artifact — it shows the
// effective k, frontiers and information loss a protect run would use —
// and becomes executable through /v1/protect (which re-plans
// identically) or a library ApplyContext.
type PlanRequest struct {
	Table   Table    `json:"table"`
	Key     Key      `json:"key"`
	Options *Options `json:"options,omitempty"`
}

// PlanStats summarizes the search.
type PlanStats struct {
	Rows       int     `json:"rows"`
	K          int     `json:"k"`
	Epsilon    int     `json:"epsilon"`
	EffectiveK int     `json:"effective_k"`
	AvgLoss    float64 `json:"avg_loss"`
}

// PlanResponse returns the searched plan.
type PlanResponse struct {
	Version string    `json:"version"`
	Plan    core.Plan `json:"plan"`
	Stats   PlanStats `json:"stats"`
}

// AppendRequest asks the service to protect a delta batch under an
// existing plan — the plan a previous protect (or append) response
// returned, with its published bin record. The response carries only
// the protected delta rows; the caller appends them to the outsourced
// table and retains the advanced plan for the next batch.
type AppendRequest struct {
	Table   Table     `json:"table"` // the delta batch (clear-text rows)
	Plan    core.Plan `json:"plan"`
	Key     Key       `json:"key"`
	Options *Options  `json:"options,omitempty"`
	Output  string    `json:"output,omitempty"` // OutputRows (default) | OutputCSV
}

// AppendStats is the append work summary.
type AppendStats struct {
	// Rows is the number of protected delta rows returned.
	Rows int `json:"rows"`
	// TotalRows is the published union size per the advanced plan.
	TotalRows      int `json:"total_rows"`
	TuplesSelected int `json:"tuples_selected"`
	BitsEmbedded   int `json:"bits_embedded"`
	CellsChanged   int `json:"cells_changed"`
	NewBins        int `json:"new_bins"`
	Suppressed     int `json:"suppressed"`
}

// AppendResponse returns the protected delta and the advanced plan.
type AppendResponse struct {
	Version string      `json:"version"`
	Table   Table       `json:"table"`
	Plan    core.Plan   `json:"plan"`
	Stats   AppendStats `json:"stats"`
}

// DetectRequest asks whether the owner's mark is present in a suspected
// table, given the provenance record from the original protect run.
type DetectRequest struct {
	Table      Table           `json:"table"`
	Provenance core.Provenance `json:"provenance"`
	Key        Key             `json:"key"`
	Options    *Options        `json:"options,omitempty"`
}

// DetectStats is the detection work summary.
type DetectStats struct {
	TuplesSelected int `json:"tuples_selected"`
	VotesCast      int `json:"votes_cast"`
	BitsRead       int `json:"bits_read"`
	SkippedCells   int `json:"skipped_cells"`
}

// DetectResponse reports the verdict.
type DetectResponse struct {
	Version  string      `json:"version"`
	Match    bool        `json:"match"`
	MarkLoss float64     `json:"mark_loss"`
	Mark     string      `json:"mark"`
	Stats    DetectStats `json:"stats"`
}

// RivalClaim is a competing ownership assertion in a dispute: the
// claimant's key material, claimed statistic v and claimed mark.
type RivalClaim struct {
	Claimant    string  `json:"claimant"`
	Key         Key     `json:"key"`
	V           float64 `json:"v"`
	Mark        string  `json:"mark"` // '0'/'1' runes
	Duplication int     `json:"duplication,omitempty"`
}

// DisputeRequest asks the service to arbitrate ownership (§5.4): the
// owner's claim is rebuilt from the provenance record plus OwnerKey;
// rival claims come explicitly.
type DisputeRequest struct {
	Table      Table           `json:"table"`
	Provenance core.Provenance `json:"provenance"`
	OwnerKey   Key             `json:"owner_key"`
	Rivals     []RivalClaim    `json:"rivals,omitempty"`
	Options    *Options        `json:"options,omitempty"`
}

// Verdict mirrors ownership.Verdict with wire-stable field names.
type Verdict struct {
	Claimant     string  `json:"claimant"`
	DecryptOK    bool    `json:"decrypt_ok"`
	StatisticOK  bool    `json:"statistic_ok"`
	MarkDerived  bool    `json:"mark_derived"`
	MarkDetected bool    `json:"mark_detected"`
	MarkLoss     float64 `json:"mark_loss"`
	Valid        bool    `json:"valid"`
	Reason       string  `json:"reason,omitempty"`
}

// DisputeResponse returns one verdict per claim, owner first.
type DisputeResponse struct {
	Version  string    `json:"version"`
	Verdicts []Verdict `json:"verdicts"`
}

// HealthResponse is the /v1/healthz body.
type HealthResponse struct {
	Status   string `json:"status"`
	Version  string `json:"version"`
	Workers  int    `json:"workers"`
	Inflight int    `json:"inflight"`
	Capacity int    `json:"capacity"`
}

// DecodeTable materializes the wire payload as a relation.Table,
// validating the schema and the cells. Exactly one of Rows and CSV must
// carry the data (an empty table is Rows with zero records: set neither
// and the table has the schema only).
func DecodeTable(t Table) (*relation.Table, error) {
	schema, err := SchemaOf(t.Columns)
	if err != nil {
		return nil, err
	}
	if t.CSV != "" {
		if len(t.Rows) > 0 {
			return nil, fmt.Errorf("api: table carries both rows and csv; choose one")
		}
		return relation.ReadCSV(strings.NewReader(t.CSV), schema)
	}
	tbl := relation.NewTable(schema)
	for i, row := range t.Rows {
		if err := tbl.AppendRow(row); err != nil {
			return nil, fmt.Errorf("api: row %d: %w", i, err)
		}
	}
	return tbl, nil
}

// SchemaOf converts the wire column list to a validated schema without
// touching cell data — the streaming paths use it to plan over a CSV
// source they never materialize.
func SchemaOf(columns []Column) (*relation.Schema, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("api: table has no columns")
	}
	cols := make([]relation.Column, len(columns))
	for i, c := range columns {
		kind, err := ParseKind(c.Kind)
		if err != nil {
			return nil, fmt.Errorf("api: column %q: %w", c.Name, err)
		}
		cols[i] = relation.Column{Name: c.Name, Kind: kind}
	}
	return relation.NewSchema(cols)
}

// EncodeTable converts a relation.Table to the wire payload in the given
// output format (OutputRows when empty).
func EncodeTable(tbl *relation.Table, output string) (Table, error) {
	schema := tbl.Schema()
	out := Table{Columns: make([]Column, schema.NumColumns())}
	for i := 0; i < schema.NumColumns(); i++ {
		c := schema.Column(i)
		out.Columns[i] = Column{Name: c.Name, Kind: c.Kind.String()}
	}
	switch output {
	case "", OutputRows:
		out.Rows = make([][]string, tbl.NumRows())
		for i := 0; i < tbl.NumRows(); i++ {
			out.Rows[i] = tbl.View(i).AppendTo(make([]string, 0, schema.NumColumns()))
		}
	case OutputCSV:
		var sb strings.Builder
		if err := tbl.WriteCSV(&sb); err != nil {
			return Table{}, err
		}
		out.CSV = sb.String()
	default:
		return Table{}, fmt.Errorf("api: unknown output format %q (want %q or %q)", output, OutputRows, OutputCSV)
	}
	return out, nil
}

// ParseKind maps the wire kind string to relation.Kind. It accepts the
// String() forms plus pragmatic aliases.
func ParseKind(s string) (relation.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "identifying", "ident", "id":
		return relation.Identifying, nil
	case "quasi-categorical", "quasi_categorical", "categorical":
		return relation.QuasiCategorical, nil
	case "quasi-numeric", "quasi_numeric", "numeric":
		return relation.QuasiNumeric, nil
	case "other", "":
		return relation.Other, nil
	default:
		return 0, fmt.Errorf("unknown column kind %q", s)
	}
}

// Apply overlays the request options on a base configuration and
// returns the effective one. Zero-valued / nil fields inherit base.
func (o *Options) Apply(base core.Config) (core.Config, error) {
	cfg := base
	if o == nil {
		return cfg, nil
	}
	if o.K != 0 {
		cfg.K = o.K
	}
	if o.Epsilon != 0 {
		cfg.Epsilon = o.Epsilon
	}
	if o.AutoEpsilon != nil {
		cfg.AutoEpsilon = *o.AutoEpsilon
	}
	if o.Strategy != "" {
		s, err := ParseStrategy(o.Strategy)
		if err != nil {
			return cfg, err
		}
		cfg.Strategy = s
	}
	if o.EnumLimit != 0 {
		cfg.EnumLimit = o.EnumLimit
	}
	if o.Aggressive != nil {
		cfg.Aggressive = *o.Aggressive
	}
	if o.IdentCol != "" {
		cfg.IdentCol = o.IdentCol
	}
	if o.MarkBits != 0 {
		cfg.MarkBits = o.MarkBits
	}
	if o.Duplication != 0 {
		cfg.Duplication = o.Duplication
	}
	if o.Quantum != nil {
		cfg.Quantum = *o.Quantum
	}
	if o.Tau != nil {
		cfg.Tau = *o.Tau
	}
	if o.LossThreshold != nil {
		cfg.LossThreshold = *o.LossThreshold
	}
	if o.WeightedVoting != nil {
		cfg.WeightedVoting = *o.WeightedVoting
	}
	if o.BoundaryPermutation != nil {
		cfg.BoundaryPermutation = *o.BoundaryPermutation
	}
	if o.NoColumnSalt != nil {
		cfg.NoColumnSalt = *o.NoColumnSalt
		cfg.SaltPositionWithColumn = false // re-derived by core.New
	}
	if o.Workers != nil {
		cfg.Workers = *o.Workers
	}
	return cfg, nil
}

// ParseStrategy maps the wire strategy string to the binning strategy
// (the inverse of Strategy.String()).
func ParseStrategy(s string) (binning.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return binning.StrategyAuto, nil
	case "exhaustive":
		return binning.StrategyExhaustive, nil
	case "greedy":
		return binning.StrategyGreedy, nil
	default:
		return binning.StrategyAuto, fmt.Errorf("unknown strategy %q (want auto, exhaustive or greedy)", s)
	}
}

// DecodeJSON decodes one JSON document from r into v, rejecting
// trailing garbage. Size limiting is the caller's concern
// (http.MaxBytesReader in the server).
func DecodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("api: decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("api: trailing data after JSON document")
	}
	return nil
}
