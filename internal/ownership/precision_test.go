package ownership

import (
	"errors"
	"strconv"
	"testing"
)

// TestNumericOfCapsLongDigitStrings pins the maxIdentDigits fix:
// identifiers beyond 15 digits used to be parsed as a single float64 and
// silently lose precision (1e18-scale ULPs), skewing the committed mean.
// Now the first 15 digits are taken deterministically and exactly.
func TestNumericOfCapsLongDigitStrings(t *testing.T) {
	long := "12345678901234567890" // 20 digits
	want, err := strconv.ParseFloat(long[:maxIdentDigits], 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := IdentStatistic([]string{long})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("IdentStatistic(%q) = %v, want first-15-digit value %v", long, got, want)
	}

	// Exactness: a tail change beyond the cap must not wiggle the value
	// (before the fix it produced a different, rounded float).
	got2, err := IdentStatistic([]string{"123456789012345" + "99999"})
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Errorf("capped parse is not deterministic: %v vs %v", got2, want)
	}

	// Digits interleaved with separators cap the same way.
	got3, err := IdentStatistic([]string{"1234-5678-9012-3456-7890"})
	if err != nil {
		t.Fatal(err)
	}
	if got3 != want {
		t.Errorf("separator form = %v, want %v", got3, want)
	}
}

// TestIdentStatisticShortValuesUnchanged guards backward compatibility:
// identifiers within 15 digits (every SSN) keep their exact value.
func TestIdentStatisticShortValuesUnchanged(t *testing.T) {
	v, err := IdentStatistic([]string{"123-45-6789", "987-65-4321"})
	if err != nil {
		t.Fatal(err)
	}
	want := (123456789.0 + 987654321.0) / 2
	if v != want {
		t.Errorf("mean = %v, want %v", v, want)
	}
}

// TestIdentStatisticNumericFractionThreshold pins the subset-mean fix:
// a column where digits are the exception, not the rule, must refuse to
// commit a statistic instead of averaging whatever subset parsed.
func TestIdentStatisticNumericFractionThreshold(t *testing.T) {
	// 1 of 4 numeric (25% < 50%): refuse.
	_, err := IdentStatistic([]string{"alpha", "beta", "gamma", "123"})
	if !errors.Is(err, ErrNonNumericIdentifiers) {
		t.Errorf("25%% numeric: got %v, want ErrNonNumericIdentifiers", err)
	}

	// Nothing numeric: refuse.
	_, err = IdentStatistic([]string{"alpha", "beta"})
	if !errors.Is(err, ErrNonNumericIdentifiers) {
		t.Errorf("0%% numeric: got %v, want ErrNonNumericIdentifiers", err)
	}

	// Empty input: refuse (division by zero guard).
	if _, err := IdentStatistic(nil); err == nil {
		t.Error("empty input accepted")
	}

	// Exactly at the threshold (2 of 4 = 50%): accepted.
	v, err := IdentStatistic([]string{"10", "20", "x", "y"})
	if err != nil {
		t.Fatalf("50%% numeric rejected: %v", err)
	}
	if v != 15 {
		t.Errorf("mean = %v, want 15", v)
	}
}

// TestMarkFromStatisticSalted pins the multi-recipient mark derivation:
// distinct salts give distinct marks, the empty salt is the classic F,
// and quantization still absorbs sub-quantum drift per salt.
func TestMarkFromStatisticSalted(t *testing.T) {
	base, err := MarkFromStatistic(5e8, 1e6, 20)
	if err != nil {
		t.Fatal(err)
	}
	unsalted, err := MarkFromStatisticSalted(5e8, 1e6, 20, "")
	if err != nil {
		t.Fatal(err)
	}
	if !base.Equal(unsalted) {
		t.Error("empty salt must equal MarkFromStatistic")
	}
	a, err := MarkFromStatisticSalted(5e8, 1e6, 20, "hospital-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarkFromStatisticSalted(5e8, 1e6, 20, "hospital-b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) || a.Equal(base) {
		t.Error("salted marks must be pairwise distinct")
	}
	aDrift, err := MarkFromStatisticSalted(5e8+1e5, 1e6, 20, "hospital-a")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(aDrift) {
		t.Error("sub-quantum drift must keep the salted mark stable")
	}
}
