package ownership

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/relation"
	"repro/internal/watermark"
)

func TestIdentStatistic(t *testing.T) {
	v, err := IdentStatistic([]string{"123-45-6789", "111-11-1111"})
	if err != nil {
		t.Fatal(err)
	}
	want := (123456789.0 + 111111111.0) / 2
	if v != want {
		t.Errorf("v = %v, want %v", v, want)
	}
	// non-numeric values are skipped
	v, err = IdentStatistic([]string{"abc", "5"})
	if err != nil || v != 5 {
		t.Errorf("v = %v, %v", v, err)
	}
	if _, err := IdentStatistic([]string{"abc", "xyz"}); err == nil {
		t.Error("all-non-numeric accepted")
	}
	if _, err := IdentStatistic(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestMarkFromStatistic(t *testing.T) {
	a, err := MarkFromStatistic(123456, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 20 {
		t.Fatalf("len = %d", a.Len())
	}
	// quantization: drift within the same bucket maps to the same mark
	// (cross-bucket drift is handled by the judge's τ check, not by F)
	b, _ := MarkFromStatistic(123456+30, 1000, 20)
	if !a.Equal(b) {
		t.Error("within-bucket drift changed the mark")
	}
	// far values map elsewhere (overwhelmingly likely)
	c, _ := MarkFromStatistic(987654321, 1000, 20)
	if a.Equal(c) {
		t.Error("distant statistics collided (unlucky?)")
	}
	// determinism
	d, _ := MarkFromStatistic(123456, 1000, 20)
	if !a.Equal(d) {
		t.Error("F not deterministic")
	}
	if _, err := MarkFromStatistic(1, 0, 20); err == nil {
		t.Error("zero quantum accepted")
	}
	if _, err := MarkFromStatistic(1, 1, 0); err == nil {
		t.Error("zero markLen accepted")
	}
}

// disputeFixture builds an owner's watermarked table plus everything a
// dispute needs.
type disputeFixture struct {
	original *relation.Table // clear-text identifiers
	disputed *relation.Table // binned + watermarked
	columns  map[string]watermark.ColumnSpec
	owner    Claim
	judge    Judge
}

func newDisputeFixture(t *testing.T, rows int) *disputeFixture {
	t.Helper()
	// One quasi column with a simple 3-level tree.
	tree, err := dht.NewCategorical("zip", func() dht.Spec {
		root := dht.Spec{Value: "ALL"}
		for r := 0; r < 3; r++ {
			reg := dht.Spec{Value: fmt.Sprintf("R%d", r)}
			for s := 0; s < 3; s++ {
				st := dht.Spec{Value: fmt.Sprintf("R%dS%d", r, s)}
				for z := 0; z < 3; z++ {
					st.Children = append(st.Children, dht.Spec{Value: fmt.Sprintf("R%dS%dZ%d", r, s, z)})
				}
				reg.Children = append(reg.Children, st)
			}
			root.Children = append(root.Children, reg)
		}
		return root
	}())
	if err != nil {
		t.Fatal(err)
	}
	var states, regions []string
	for r := 0; r < 3; r++ {
		regions = append(regions, fmt.Sprintf("R%d", r))
		for s := 0; s < 3; s++ {
			states = append(states, fmt.Sprintf("R%dS%d", r, s))
		}
	}
	ulti, _ := dht.NewGenSetFromValues(tree, states)
	maxg, _ := dht.NewGenSetFromValues(tree, regions)
	columns := map[string]watermark.ColumnSpec{"zip": {Tree: tree, MaxGen: maxg, UltiGen: ulti}}

	schema := relation.MustSchema(
		relation.Column{Name: "ssn", Kind: relation.Identifying},
		relation.Column{Name: "zip", Kind: relation.QuasiCategorical},
	)
	original := relation.NewTable(schema)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < rows; i++ {
		ssn := fmt.Sprintf("%03d-%02d-%04d", rng.Intn(899)+1, rng.Intn(89)+10, i)
		if err := original.AppendRow([]string{ssn, states[rng.Intn(len(states))]}); err != nil {
			t.Fatal(err)
		}
	}

	// Owner derives mark from the clear-text statistic (the §5.4 scheme),
	// encrypts identifiers, embeds.
	const quantum = 1e6
	key := crypt.NewWatermarkKeyFromSecret("the-hospital", 8)
	wm, v, err := OwnerMark(original, "ssn", quantum, 20)
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := crypt.NewCipher(key.Enc)
	if err != nil {
		t.Fatal(err)
	}
	disputed := original.Clone()
	ci, _ := disputed.Schema().Index("ssn")
	for i := 0; i < disputed.NumRows(); i++ {
		disputed.SetCellAt(i, ci, cipher.EncryptString(disputed.CellAt(i, ci)))
	}
	params := watermark.Params{Key: key, Mark: wm, Duplication: 4, SaltPositionWithColumn: true}
	if _, err := watermark.Embed(disputed, "ssn", columns, params); err != nil {
		t.Fatal(err)
	}

	return &disputeFixture{
		original: original,
		disputed: disputed,
		columns:  columns,
		owner:    Claim{Claimant: "hospital", V: v, Key: key, Params: params},
		judge: Judge{
			IdentCol: "ssn",
			Columns:  columns,
			// τ must absorb the sampling drift of the mean under tuple
			// deletion/addition attacks (§5.4): with SSN-scale values
			// (σ ≈ 2.6e8) and 20% deletion the mean drifts by a few
			// million, while a bogus claim is off by ~1e8.
			Tau:           5e7,
			Quantum:       quantum,
			LossThreshold: 0.15,
		},
	}
}

func TestOwnerClaimStands(t *testing.T) {
	f := newDisputeFixture(t, 3000)
	verdicts, err := f.judge.Resolve(f.disputed, []Claim{f.owner})
	if err != nil {
		t.Fatal(err)
	}
	v := verdicts[0]
	if !v.Valid {
		t.Fatalf("owner claim rejected: %+v", v)
	}
	if !v.DecryptOK || !v.StatisticOK || !v.MarkDerived || !v.MarkDetected {
		t.Errorf("verdict steps: %+v", v)
	}
}

func TestAttack1BogusAdditiveMark(t *testing.T) {
	// Figure 10, Attack 1: the attacker inserts his bogus mark Wa (with
	// his own key) into the owner's watermarked data and claims it.
	f := newDisputeFixture(t, 3000)
	attackerKey := crypt.NewWatermarkKeyFromSecret("data-thief", 8)
	bogusV := 4.2e8 // arbitrary claimed statistic
	bogusMark, err := MarkFromStatistic(bogusV, f.judge.Quantum, 20)
	if err != nil {
		t.Fatal(err)
	}
	attackerParams := watermark.Params{Key: attackerKey, Mark: bogusMark, Duplication: 4, SaltPositionWithColumn: true}
	stolen := f.disputed.Clone()
	if _, err := watermark.Embed(stolen, "ssn", f.columns, attackerParams); err != nil {
		t.Fatal(err)
	}

	verdicts, err := f.judge.Resolve(stolen, []Claim{
		f.owner,
		{Claimant: "thief", V: bogusV, Key: attackerKey, Params: attackerParams},
	})
	if err != nil {
		t.Fatal(err)
	}
	ownerV, thiefV := verdicts[0], verdicts[1]
	if !ownerV.Valid {
		t.Errorf("owner claim must survive the attacker's over-embedding: %+v", ownerV)
	}
	if thiefV.Valid {
		t.Errorf("thief claim must fail: %+v", thiefV)
	}
	if thiefV.DecryptOK {
		t.Error("thief cannot decrypt the identifying column; DecryptOK must be false")
	}
}

func TestAttack2BogusExtractedOriginal(t *testing.T) {
	// Figure 10, Attack 2: the attacker fabricates a bogus "original" Da
	// such that Da ⊕ Wa = Dw. Because the mark is F(v) of a statistic he
	// cannot compute (encrypted identifiers), his claimed (V, mark) pair
	// cannot both match: if he picks V freely, the statistic check fails;
	// if he guesses the mark, it is not F(V).
	f := newDisputeFixture(t, 3000)
	attackerKey := crypt.NewWatermarkKeyFromSecret("forger", 8)

	// The forger detects SOME bit pattern under his own key and declares
	// it "his mark", then claims a V that fits nothing.
	det, err := watermark.Detect(f.disputed, "ssn", f.columns, watermark.Params{
		Key: attackerKey, Mark: bitstr.New(20), Duplication: 4, SaltPositionWithColumn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	forgedParams := watermark.Params{Key: attackerKey, Mark: det.Mark, Duplication: 4, SaltPositionWithColumn: true}
	verdicts, err := f.judge.Resolve(f.disputed, []Claim{
		{Claimant: "forger", V: 7.7e8, Key: attackerKey, Params: forgedParams},
	})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Valid {
		t.Fatalf("forger claim must fail: %+v", verdicts[0])
	}
}

func TestDisputeSurvivesTupleAttacks(t *testing.T) {
	// §5.4 motivates the statistic: the disputed table has usually been
	// attacked (deletions, additions); the owner's claim must still stand.
	f := newDisputeFixture(t, 4000)
	rng := rand.New(rand.NewSource(31))
	attacked := f.disputed.Clone()
	if _, err := attack.DeleteRandom(attacked, 0.2, rng); err != nil {
		t.Fatal(err)
	}
	gen := attack.BogusRowGenerator(attacked.Schema(), "ssn", "bogus", map[string][]string{
		"zip": f.columns["zip"].UltiGen.Values(),
	}, rng)
	if _, err := attack.AddSubset(attacked, 0.1, gen); err != nil {
		t.Fatal(err)
	}
	verdicts, err := f.judge.Resolve(attacked, []Claim{f.owner})
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts[0].Valid {
		t.Fatalf("owner claim failed on attacked table: %+v", verdicts[0])
	}
}

func TestJudgeRejectsWrongStatistic(t *testing.T) {
	f := newDisputeFixture(t, 1000)
	claim := f.owner
	claim.V += f.judge.Tau * 10 // way off
	// the claimed mark must still be F(V) for the claim to be coherent
	wm, _ := MarkFromStatistic(claim.V, f.judge.Quantum, 20)
	claim.Params.Mark = wm
	verdicts, err := f.judge.Resolve(f.disputed, []Claim{claim})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Valid || verdicts[0].StatisticOK {
		t.Errorf("wrong statistic accepted: %+v", verdicts[0])
	}
}

func TestJudgeRejectsNonCommittedMark(t *testing.T) {
	f := newDisputeFixture(t, 1000)
	claim := f.owner
	claim.Params.Mark = claim.Params.Mark.Set(0, !claim.Params.Mark.Get(0)) // not F(v) anymore
	verdicts, err := f.judge.Resolve(f.disputed, []Claim{claim})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Valid || verdicts[0].MarkDerived {
		t.Errorf("non-committed mark accepted: %+v", verdicts[0])
	}
}

func TestJudgeValidation(t *testing.T) {
	f := newDisputeFixture(t, 100)
	j := f.judge
	j.Tau = 0
	if _, err := j.Resolve(f.disputed, nil); err == nil {
		t.Error("zero tau accepted")
	}
	j = f.judge
	j.LossThreshold = 0.5
	if _, err := j.Resolve(f.disputed, nil); err == nil {
		t.Error("loss threshold 0.5 accepted")
	}
	j = f.judge
	j.IdentCol = "missing"
	if _, err := j.Resolve(f.disputed, nil); err == nil {
		t.Error("missing ident column accepted")
	}
}
