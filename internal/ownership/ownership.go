// Package ownership implements the paper's resolution of the rightful
// ownership problem (§5.4, Figure 10). The insight is specific to the
// integrated framework: the identifying columns of a binned table are
// encrypted, so only the true owner can decrypt them. The mark is
// therefore derived as wm = F(v), where v is a statistic (the mean) of
// the clear-text identifying column and F a one-way function. In a
// dispute the claimed owner presents v, decrypts the identifying column
// to recompute v', shows |v − v'| < τ, and shows the detected mark equals
// F(v). An attacker who inserted a bogus mark (Attack 1) or "extracted" a
// bogus original (Attack 2) cannot decrypt the identifiers, so his v'
// computation fails and his mark is not F of any verifiable statistic.
//
// The statistic is used instead of the exact clear-texts because "most
// probably, the watermarked table in dispute had been attacked, e.g.,
// some tuples were deleted or some spurious tuples were added" — a mean
// over the surviving rows stays within τ of the original mean.
package ownership

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// maxIdentDigits caps the digit string numericOf parses. float64 holds
// every integer up to 2^53 (~9.0e15) exactly; concatenating more than 15
// digits would round the value, so two identifiers differing only in
// their tail could silently collapse to the same float — skewing the
// mean v the mark commits to in a platform- and length-dependent way.
// Truncating to the first 15 digits is deterministic and lossless.
const maxIdentDigits = 15

// MinNumericFraction is the smallest fraction of identifying values that
// must parse as numeric for IdentStatistic to be meaningful. A mean over
// a sliver of the column would commit the mark to a statistic dominated
// by whatever subset happened to contain digits — an unstable anchor an
// attacker could shift by deleting a handful of rows.
const MinNumericFraction = 0.5

// ErrNonNumericIdentifiers marks an identifying column whose numeric
// fraction is below MinNumericFraction (or zero); callers classify with
// errors.Is.
var ErrNonNumericIdentifiers = fmt.Errorf("ownership: identifying values are not sufficiently numeric")

// IdentStatistic computes v: the mean of the numeric interpretations of
// the clear-text identifying values (digits extracted from formats like
// "123-45-6789", capped at maxIdentDigits for exact float64 arithmetic).
// It errors (wrapping ErrNonNumericIdentifiers) when fewer than
// MinNumericFraction of the values are numeric — a mean over a small
// accidental subset would be a meaningless commitment.
func IdentStatistic(cleartexts []string) (float64, error) {
	var sum float64
	n := 0
	for _, s := range cleartexts {
		v, ok := numericOf(s)
		if !ok {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("%w: no numeric values among %d", ErrNonNumericIdentifiers, len(cleartexts))
	}
	if frac := float64(n) / float64(len(cleartexts)); frac < MinNumericFraction {
		return 0, fmt.Errorf("%w: only %d of %d values (%.0f%%) are numeric, need >= %.0f%%",
			ErrNonNumericIdentifiers, n, len(cleartexts), frac*100, MinNumericFraction*100)
	}
	return sum / float64(n), nil
}

// StatAccum accumulates the IdentStatistic incrementally — the
// streaming planner feeds it identifying values segment by segment
// without ever materializing the column. Values accumulate in row
// order, so the float sum (and therefore the mean) is bitwise-identical
// to IdentStatistic over the concatenated column.
type StatAccum struct {
	sum   float64
	n     int
	total int
}

// Add folds one identifying value into the statistic.
func (a *StatAccum) Add(value string) {
	a.total++
	v, ok := numericOf(value)
	if !ok {
		return
	}
	a.sum += v
	a.n++
}

// Statistic returns the mean v over the values added so far, with
// exactly IdentStatistic's numeric-fraction validation.
func (a *StatAccum) Statistic() (float64, error) {
	if a.n == 0 {
		return 0, fmt.Errorf("%w: no numeric values among %d", ErrNonNumericIdentifiers, a.total)
	}
	if frac := float64(a.n) / float64(a.total); frac < MinNumericFraction {
		return 0, fmt.Errorf("%w: only %d of %d values (%.0f%%) are numeric, need >= %.0f%%",
			ErrNonNumericIdentifiers, a.n, a.total, frac*100, MinNumericFraction*100)
	}
	return a.sum / float64(a.n), nil
}

func numericOf(s string) (float64, bool) {
	var digits strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			digits.WriteRune(r)
			if digits.Len() == maxIdentDigits {
				break
			}
		}
	}
	if digits.Len() == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(digits.String(), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// MarkFromStatistic is the one-way function F: it derives a markLen-bit
// mark from the statistic v. Rounding quantizes v so that attack-induced
// drift below quantum maps to the same mark the owner committed to.
func MarkFromStatistic(v float64, quantum float64, markLen int) (bitstr.Bits, error) {
	return MarkFromStatisticSalted(v, quantum, markLen, "")
}

// MarkFromStatisticSalted is F with a recipient salt: the multi-recipient
// fingerprinting extension derives each outsourced copy's mark as
// F(v, recipientID), so a leaked copy identifies its recipient by which
// registered mark its votes reconstruct, while every mark stays a
// one-way commitment to the same verifiable statistic v. An empty salt
// is exactly MarkFromStatistic — the single-recipient §5.4 mark.
func MarkFromStatisticSalted(v float64, quantum float64, markLen int, salt string) (bitstr.Bits, error) {
	if markLen < 1 {
		return bitstr.Bits{}, fmt.Errorf("ownership: markLen must be >= 1")
	}
	if quantum <= 0 {
		return bitstr.Bits{}, fmt.Errorf("ownership: quantum must be positive")
	}
	q := int64(math.Round(v / quantum))
	prf := crypt.NewPRF([]byte("ownership/F/v1"))
	var digest []byte
	if salt == "" {
		digest = prf.Sum([]byte(strconv.FormatInt(q, 10)))
	} else {
		digest = prf.Sum([]byte(strconv.FormatInt(q, 10)), []byte(salt))
	}
	return bitstr.FromBytes(digest, markLen)
}

// OwnerMark derives the owner's mark directly from the original table's
// identifying column: v = IdentStatistic, wm = F(v). It returns both.
func OwnerMark(original *relation.Table, identCol string, quantum float64, markLen int) (bitstr.Bits, float64, error) {
	col, err := original.Column(identCol)
	if err != nil {
		return bitstr.Bits{}, 0, err
	}
	v, err := IdentStatistic(col)
	if err != nil {
		return bitstr.Bits{}, 0, err
	}
	wm, err := MarkFromStatistic(v, quantum, markLen)
	return wm, v, err
}

// Claim is one party's ownership assertion over a disputed table.
type Claim struct {
	// Claimant names the party (for reporting).
	Claimant string
	// V is the statistic the party claims the mark derives from.
	V float64
	// Key is the party's watermarking key set (including the encryption
	// key for the identifying columns).
	Key crypt.WatermarkKey
	// Params are the party's detection parameters; Params.Mark length and
	// duplication must describe the embedding the party claims.
	Params watermark.Params
}

// Verdict is the court's finding for one claim.
type Verdict struct {
	Claimant string
	// DecryptOK: the party's key decrypts the identifying column.
	DecryptOK bool
	// StatisticOK: |v − v'| < τ over the decrypted identifiers.
	StatisticOK bool
	// MarkDerived: the party's claimed mark equals F(v) (the party's
	// Params.Mark is checked against the commitment).
	MarkDerived bool
	// MarkDetected: detection under the party's key recovers a mark
	// within lossThreshold of F(v).
	MarkDetected bool
	// MarkLoss is the detected mark's loss against F(v).
	MarkLoss float64
	// Valid is the conjunction — the claim stands.
	Valid bool
	// Reason explains a failed claim.
	Reason string
}

// Judge arbitrates ownership of the disputed table (§5.4): for each
// claim it (1) decrypts the identifying column with the claimant's key,
// (2) recomputes the statistic v' and checks |v−v'| < tau, (3) re-derives
// F(v) and checks the claimed mark, and (4) detects the mark under the
// claimant's key and compares to F(v) with the given loss threshold.
type Judge struct {
	// IdentCol names the encrypted identifying column.
	IdentCol string
	// Columns are the watermark column specs (public: trees + frontiers).
	Columns map[string]watermark.ColumnSpec
	// Tau is the statistic tolerance τ.
	Tau float64
	// Quantum is F's quantization step (must match the owner's).
	Quantum float64
	// LossThreshold is the maximal mark loss accepted as a match.
	LossThreshold float64
}

// Resolve evaluates every claim against the disputed table and returns
// one verdict per claim, in order.
func (j Judge) Resolve(disputed *relation.Table, claims []Claim) ([]Verdict, error) {
	return j.ResolveContext(context.Background(), disputed, claims)
}

// ResolveContext is Resolve under a context: the per-claim detection
// scans abort with the context's error on cancellation, and no further
// claims are evaluated once ctx is done.
func (j Judge) ResolveContext(ctx context.Context, disputed *relation.Table, claims []Claim) ([]Verdict, error) {
	if j.Tau <= 0 || j.Quantum <= 0 {
		return nil, fmt.Errorf("ownership: Tau and Quantum must be positive")
	}
	if j.LossThreshold < 0 || j.LossThreshold >= 0.5 {
		return nil, fmt.Errorf("ownership: LossThreshold must be in [0, 0.5)")
	}
	encCol, err := disputed.Column(j.IdentCol)
	if err != nil {
		return nil, err
	}
	verdicts := make([]Verdict, 0, len(claims))
	for _, claim := range claims {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := j.resolveOne(ctx, disputed, encCol, claim)
		if err != nil {
			return nil, err
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}

func (j Judge) resolveOne(ctx context.Context, disputed *relation.Table, encCol []string, claim Claim) (Verdict, error) {
	v := Verdict{Claimant: claim.Claimant}

	// (1) Decrypt the identifying column with the claimant's key.
	cipher, err := crypt.NewCipher(claim.Key.Enc)
	if err != nil {
		v.Reason = fmt.Sprintf("cannot build cipher: %v", err)
		return v, nil
	}
	cleartexts := make([]string, 0, len(encCol))
	failures := 0
	for _, token := range encCol {
		pt, err := cipher.DecryptString(token)
		if err != nil {
			failures++
			continue
		}
		cleartexts = append(cleartexts, pt)
	}
	// Attackers may have added bogus tuples: tolerate a minority of
	// undecryptable cells, but an owner must decrypt most of the table.
	if len(cleartexts) == 0 || failures > len(encCol)/2 {
		v.Reason = fmt.Sprintf("key decrypts only %d of %d identifying values", len(cleartexts), len(encCol))
		return v, nil
	}
	v.DecryptOK = true

	// (2) Statistic check: |v − v'| < τ.
	vPrime, err := IdentStatistic(cleartexts)
	if err != nil {
		v.Reason = err.Error()
		return v, nil
	}
	if math.Abs(claim.V-vPrime) >= j.Tau {
		v.Reason = fmt.Sprintf("statistic mismatch: claimed %v, recomputed %v, tau %v", claim.V, vPrime, j.Tau)
		return v, nil
	}
	v.StatisticOK = true

	// (3) The claimed mark must be F(v) — the one-way commitment that
	// defeats Attack 2 (no one can invert F to fabricate a fitting v).
	fv, err := MarkFromStatistic(claim.V, j.Quantum, claim.Params.Mark.Len())
	if err != nil {
		v.Reason = err.Error()
		return v, nil
	}
	if !claim.Params.Mark.Equal(fv) {
		v.Reason = "claimed mark is not F(v)"
		return v, nil
	}
	v.MarkDerived = true

	// (4) Detect under the claimant's key and compare with F(v).
	det, err := watermark.DetectContext(ctx, disputed, j.IdentCol, j.Columns, claim.Params)
	if err != nil {
		if ctx.Err() != nil {
			// Cancellation aborts the whole arbitration rather than
			// mislabelling this claim as failed.
			return Verdict{}, ctx.Err()
		}
		v.Reason = fmt.Sprintf("detection failed: %v", err)
		return v, nil
	}
	loss, err := fv.LossFraction(det.Mark)
	if err != nil {
		v.Reason = err.Error()
		return v, nil
	}
	v.MarkLoss = loss
	if loss > j.LossThreshold {
		v.Reason = fmt.Sprintf("mark loss %.2f exceeds threshold %.2f", loss, j.LossThreshold)
		return v, nil
	}
	v.MarkDetected = true
	v.Valid = true
	return v, nil
}
