package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/attack"
	"repro/internal/binning"
	"repro/internal/ontology"
	"repro/internal/pool"
	"repro/internal/watermark"
)

// WeightedVotingAblation (E10) quantifies the §5.3 policy that "the copy
// from a higher level is more reliable than that from a lower level".
// The adversary mounts the re-specialization laundering attack: values
// are generalized one level and then randomly re-specialized back to the
// frontier, so lower levels carry random bits while upper levels keep the
// mark. Per-cell majority voting with level weights should then beat
// unweighted voting. The sweep varies the fraction of attacked tuples.
func WeightedVotingAblation(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	setup, err := newWatermarkSetup(cfg, 20)
	if err != nil {
		return nil, err
	}
	const eta = 25

	// Use the zip column at the ZIP5 frontier: three levels below the
	// region metrics, so re-specialization leaves two noisy levels below
	// one clean level — the regime where weighting matters.
	zipTree := setup.trees[ontology.ColZip]
	ulti, err := FrontierAtDepth(zipTree, 4)
	if err != nil {
		return nil, err
	}
	maxg, err := FrontierAtDepth(zipTree, 1)
	if err != nil {
		return nil, err
	}
	spec := watermark.ColumnSpec{Tree: zipTree, MaxGen: maxg, UltiGen: ulti}
	cols := map[string]watermark.ColumnSpec{ontology.ColZip: spec}

	base := setup.binned.Clone()
	ci, _ := base.Schema().Index(ontology.ColZip)
	for i := 0; i < base.NumRows(); i++ {
		orig, _ := setup.original.Cell(i, ontology.ColZip)
		v, err := ulti.GeneralizeValue(orig)
		if err != nil {
			return nil, err
		}
		base.SetCellAt(i, ci, v)
	}

	embedParams := setup.params(eta)
	marked := base.Clone()
	if _, err := watermark.Embed(marked, setup.identCol, cols, embedParams); err != nil {
		return nil, err
	}

	out := &Table{
		ID:     "E10 / §5.3 weighted voting",
		Title:  "re-specialization attack: mark loss (%) with unweighted vs level-weighted voting",
		Header: []string{"attacked %", "unweighted loss %", "weighted loss %"},
		Notes: []string{
			"attack: generalize 2 levels then randomly re-specialize to the frontier (lower levels random, top level intact)",
		},
	}
	// Each attack strength builds and judges its own attacked clone with
	// a seed derived from the strength — independent sweep points.
	fracs := []float64{0, 0.25, 0.5, 0.75, 1.0}
	rows, err := pool.Map(cfg.Workers, len(fracs), func(fi int) ([]string, error) {
		frac := fracs[fi]
		attacked := marked.Clone()
		if frac > 0 {
			// Respecialize a random subset: apply to a cloned subset view
			// by attacking everything on a fraction of rows.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(frac*100)))
			full := marked.Clone()
			if _, err := attack.Respecialize(full, ontology.ColZip, zipTree, maxg, ulti, 2, rng); err != nil {
				return nil, err
			}
			n := attacked.NumRows()
			target := int(frac * float64(n))
			perm := rng.Perm(n)
			for i := 0; i < target; i++ {
				attacked.SetCellAt(perm[i], ci, full.CellAt(perm[i], ci))
			}
		}
		row := []string{pct(frac)}
		for _, weighted := range []bool{false, true} {
			params := setup.pointParams(eta)
			params.WeightedVoting = weighted
			res, err := watermark.Detect(attacked, setup.identCol, cols, params)
			if err != nil {
				return nil, err
			}
			loss, err := watermark.MarkLoss(setup.mark, res)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(loss))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, rows...)
	return out, nil
}

// SwappingAblation (E11) quantifies the §6 "restrained swapping"
// suggestion: equalizing sibling-bin sizes before watermarking makes
// Lemma 1's equal-bin assumption hold, reducing per-bin drift. The table
// reports the seamlessness drift metric with and without swapping.
func SwappingAblation(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	const eta = 50
	const trials = 6

	out := &Table{
		ID:     "E11 / §6 restrained swapping",
		Title:  "per-bin watermark drift without vs with restrained swapping",
		Header: []string{"column", "plain drift/size %", "swapped drift/size %", "tuples swapped"},
		Notes: []string{
			"swapping equalizes sibling bins (Lemma 1 assumption (i)); drift = mean per-run |out−in| / mean bin size",
		},
	}

	for _, swap := range []bool{false, true} {
		setup, err := newWatermarkSetup(cfg, 20)
		if err != nil {
			return nil, err
		}
		quasi := setup.binned.Schema().QuasiColumns()
		swapped := 0
		if swap {
			rng := rand.New(rand.NewSource(cfg.Seed))
			for _, col := range quasi {
				n, err := binning.RestrainedSwap(setup.binned, col, setup.columns[col].UltiGen, 0, rng)
				if err != nil {
					return nil, err
				}
				swapped += n
			}
		}
		for ci, col := range quasi {
			rel, err := driftRate(setup, col, eta, trials)
			if err != nil {
				return nil, err
			}
			if !swap {
				out.Rows = append(out.Rows, []string{col, pct(rel), "", ""})
			} else {
				out.Rows[ci][2] = pct(rel)
				out.Rows[ci][3] = fmt.Sprintf("%d", swapped)
			}
		}
	}
	return out, nil
}

// driftRate measures the per-run relative bin drift of watermarking for
// one column (the E7 metric).
func driftRate(setup *wmSetup, col string, eta uint64, trials int) (float64, error) {
	type agg struct{ out, in, size int }
	bins := make(map[string]*agg)
	for trial := 0; trial < trials; trial++ {
		params := setup.params(eta)
		params.Key.K1 = append([]byte{byte(trial)}, params.Key.K1...)
		params.Key.K2 = append([]byte{byte(trial)}, params.Key.K2...)
		marked := setup.binned.Clone()
		if _, err := watermark.Embed(marked, setup.identCol, setup.columns, params); err != nil {
			return 0, err
		}
		flows, err := flowFor(setup, marked, col)
		if err != nil {
			return 0, err
		}
		for key, f := range flows.out {
			a := bins[key]
			if a == nil {
				a = &agg{size: flows.size[key]}
				bins[key] = a
			}
			a.out += f
			a.in += flows.in[key]
		}
	}
	// Sorted bin order keeps the float accumulation reproducible.
	keys := make([]string, 0, len(bins))
	for key := range bins {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	sumDiff, sumSize := 0.0, 0.0
	for _, key := range keys {
		a := bins[key]
		d := a.out - a.in
		if d < 0 {
			d = -d
		}
		sumDiff += float64(d) / float64(trials)
		sumSize += float64(a.size)
	}
	if len(bins) == 0 || sumSize == 0 {
		return 0, nil
	}
	return (sumDiff / float64(len(bins))) / (sumSize / float64(len(bins))), nil
}

type flowSet struct {
	out, in, size map[string]int
}

func flowFor(setup *wmSetup, marked interface {
	NumRows() int
	CellAt(row, col int) string
}, col string) (flowSet, error) {
	fs := flowSet{out: map[string]int{}, in: map[string]int{}, size: map[string]int{}}
	ci, err := setup.binned.Schema().Index(col)
	if err != nil {
		return fs, err
	}
	for i := 0; i < setup.binned.NumRows(); i++ {
		before := setup.binned.CellAt(i, ci)
		after := marked.CellAt(i, ci)
		fs.size[before]++
		if before != after {
			fs.out[before]++
			fs.in[after]++
		}
		// ensure keys exist for pure receivers
		if _, ok := fs.out[after]; !ok {
			fs.out[after] += 0
		}
	}
	return fs, nil
}
