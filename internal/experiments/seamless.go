package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/anonymity"
	"repro/internal/watermark"
)

// Seamlessness empirically validates Lemmas 1 and 2 of Section 6 (E7):
// for any bin, the probability that one bit-embedding removes a tuple
// (Pr−) equals the probability that it adds one (Pr+), so watermarking
// neither shrinks nor grows bins on average. The experiment embeds under
// many independent keys and reports, per column, the per-bin outflow and
// inflow rates and their mean absolute difference — which should be
// within sampling error of zero.
func Seamlessness(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	setup, err := newWatermarkSetup(cfg, 20)
	if err != nil {
		return nil, err
	}
	const eta = 50
	const trials = 10

	quasi := setup.binned.Schema().QuasiColumns()
	type agg struct {
		out, in int
		size    int
	}
	perCol := make(map[string]map[string]*agg, len(quasi))
	for _, col := range quasi {
		perCol[col] = make(map[string]*agg)
	}

	for trial := 0; trial < trials; trial++ {
		params := setup.params(eta)
		params.Key.K1 = append([]byte{byte(trial)}, params.Key.K1...)
		params.Key.K2 = append([]byte{byte(trial)}, params.Key.K2...)
		marked := setup.binned.Clone()
		if _, err := watermark.Embed(marked, setup.identCol, setup.columns, params); err != nil {
			return nil, err
		}
		for _, col := range quasi {
			flows, err := anonymity.Flow(setup.binned, marked, []string{col})
			if err != nil {
				return nil, err
			}
			for key, f := range flows {
				a := perCol[col][key]
				if a == nil {
					a = &agg{size: f.Before}
					perCol[col][key] = a
				}
				a.out += f.Out
				a.in += f.In
			}
		}
	}

	out := &Table{
		ID:    "E7 / §6 Lemmas 1-2",
		Title: "seamlessness: per-bin outflow (Pr−) vs inflow (Pr+) under repeated embeddings",
		Header: []string{
			"column", "bins", "total out", "total in",
			"net drift/bin/run", "mean bin size", "drift/size %",
		},
		Notes: []string{
			fmt.Sprintf("%d independent keys, η=%d; Lemmas 1-2 predict out ≈ in, so per-run net drift should be a tiny fraction of bin size", trials, eta),
		},
	}
	for _, col := range quasi {
		bins := perCol[col]
		// Sum in sorted bin order: float accumulation is order-sensitive
		// in the last digits, and map order would vary run to run.
		keys := make([]string, 0, len(bins))
		for key := range bins {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		totalOut, totalIn := 0, 0
		sumDiff, sumSize := 0.0, 0.0
		n := 0
		for _, key := range keys {
			a := bins[key]
			totalOut += a.out
			totalIn += a.in
			sumDiff += math.Abs(float64(a.out-a.in)) / trials
			sumSize += float64(a.size)
			n++
		}
		meanDrift, meanSize, rel := 0.0, 0.0, 0.0
		if n > 0 {
			meanDrift = sumDiff / float64(n)
			meanSize = sumSize / float64(n)
			if meanSize > 0 {
				rel = meanDrift / meanSize
			}
		}
		out.Rows = append(out.Rows, []string{
			col,
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", totalOut),
			fmt.Sprintf("%d", totalIn),
			fmt.Sprintf("%.2f", meanDrift),
			fmt.Sprintf("%.0f", meanSize),
			pct(rel),
		})
	}
	return out, nil
}
