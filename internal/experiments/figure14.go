package experiments

import (
	"fmt"

	"repro/internal/anonymity"
	"repro/internal/binning"
	"repro/internal/watermark"
)

// Figure14 reproduces "effect of watermarking on binning" (E6): for each
// k and each quasi-identifying attribute, the total number of bins, the
// number of bins whose size changed under watermarking, and the number of
// bins that fell below k. The paper's observation to reproduce: "a
// majority of the bins are affected by watermarking, whereas the
// interference is minor in terms of satisfying k-anonymity: none of the
// bins cannot meet k-anonymity after watermarking."
//
// Per Section 6, binning applies the conservative slack ε = (s/S)·|wmd|
// (k+ε during binning) so the watermark cannot push a bin below k.
func Figure14(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	ks := []int{10, 20, 45, 100}
	const eta = 75

	out := &Table{
		ID:    "E6 / Figure 14",
		Title: "effect of watermarking on binning (total bins / bins changed / bins < k)",
		Notes: []string{
			fmt.Sprintf("η=%d; binning applies the §6 conservative ε so the third number must be 0", eta),
		},
	}

	for _, k := range ks {
		// First pass to learn bin sizes, then re-bin at k+ε (§6), with
		// ε the maximum of the per-column conservative values.
		setup, err := newWatermarkSetup(cfg, k)
		if err != nil {
			return nil, err
		}
		quasi := setup.binned.Schema().QuasiColumns()
		eps := 0
		for _, col := range quasi {
			bins, err := anonymity.Bins(setup.binned, []string{col})
			if err != nil {
				return nil, err
			}
			if e := binning.EpsilonForMark(bins, cfg.MarkBits*cfg.Duplication); e > eps {
				eps = e
			}
		}
		// The conservative ε is an upper bound; if the data cannot be
		// binned at k+ε under the usage metrics (a maximal node holds
		// fewer than k+ε tuples), halve ε until binnable — any smaller
		// slack still only errs toward a non-zero third column.
		for eps > 0 {
			next, err := newWatermarkSetup(cfg, k+eps)
			if err == nil {
				setup = next
				break
			}
			eps /= 2
		}

		marked := setup.binned.Clone()
		if _, err := watermark.Embed(marked, setup.identCol, setup.columns, setup.params(eta)); err != nil {
			return nil, err
		}

		if len(out.Header) == 0 {
			out.Header = append([]string{"k"}, quasi...)
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, col := range quasi {
			before, err := anonymity.Bins(setup.binned, []string{col})
			if err != nil {
				return nil, err
			}
			after, err := anonymity.Bins(marked, []string{col})
			if err != nil {
				return nil, err
			}
			stats := anonymity.Compare(before, after, k)
			row = append(row, stats.String())
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
