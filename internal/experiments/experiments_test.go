package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ontology"
)

// small keeps experiment tests fast while exercising the full code paths.
func small() Config {
	return Config{Rows: 4000, Seed: 3, MarkBits: 20, Duplication: 4, Secret: "test-secret"}
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestFigure11Shape(t *testing.T) {
	tbl, err := Figure11(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Multi-attribute loss must dominate mono-attribute loss at every k
	// (the paper's headline observation).
	for i := range tbl.Rows {
		mono := cell(t, tbl, i, 1)
		multi := cell(t, tbl, i, 2)
		if multi < mono {
			t.Errorf("k=%s: multi %v < mono %v", tbl.Rows[i][0], multi, mono)
		}
	}
	// Both curves are monotonically non-decreasing in k (within a small
	// tolerance for the greedy search).
	for i := 1; i < len(tbl.Rows); i++ {
		if cell(t, tbl, i, 1)+1e-9 < cell(t, tbl, i-1, 1)-2 {
			t.Errorf("mono loss dropped sharply at k=%s", tbl.Rows[i][0])
		}
	}
	// Saturation: the last two multi values are close.
	last := cell(t, tbl, len(tbl.Rows)-1, 2)
	prev := cell(t, tbl, len(tbl.Rows)-2, 2)
	if last-prev > 10 {
		t.Errorf("multi loss still rising steeply at the end: %v -> %v", prev, last)
	}
}

func TestFigure12aShape(t *testing.T) {
	tbl, err := Figure12a(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(figure12Fracs) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Zero attack -> zero loss for every eta.
	for col := 1; col <= 3; col++ {
		if loss := cell(t, tbl, 0, col); loss != 0 {
			t.Errorf("0%% alteration, col %d: loss %v", col, loss)
		}
	}
	// Survival: at 70% alteration the mark loss stays at or below the
	// paper's ~30%.
	for col := 1; col <= 3; col++ {
		if loss := cell(t, tbl, 7, col); loss > 35 {
			t.Errorf("70%% alteration, col %d: loss %v > 35", col, loss)
		}
	}
}

func TestFigure12bShape(t *testing.T) {
	tbl, err := Figure12b(small())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 3; col++ {
		if loss := cell(t, tbl, 0, col); loss != 0 {
			t.Errorf("0%% addition, col %d: loss %v", col, loss)
		}
		if loss := cell(t, tbl, len(tbl.Rows)-1, col); loss > 30 {
			t.Errorf("90%% addition, col %d: loss %v > 30 (bogus bits must not dominate)", col, loss)
		}
	}
}

func TestFigure12cShape(t *testing.T) {
	tbl, err := Figure12c(small())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 3; col++ {
		if loss := cell(t, tbl, 0, col); loss != 0 {
			t.Errorf("0%% deletion, col %d: loss %v", col, loss)
		}
		if loss := cell(t, tbl, 7, col); loss > 35 {
			t.Errorf("70%% deletion, col %d: loss %v > 35", col, loss)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	tbl, err := Figure13(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Loss is minor (paper: single digits) and non-increasing in η.
	prev := 1e9
	for i := range tbl.Rows {
		loss := cell(t, tbl, i, 3)
		if loss > 10 {
			t.Errorf("η=%s: watermark info loss %v%% not minor", tbl.Rows[i][0], loss)
		}
		if loss > prev+0.5 {
			t.Errorf("loss grew with η at row %d: %v after %v", i, loss, prev)
		}
		prev = loss
	}
	// More marked tuples at smaller η.
	if cell(t, tbl, 0, 1) <= cell(t, tbl, len(tbl.Rows)-1, 1) {
		t.Error("η=50 should select more tuples than η=200")
	}
}

func TestFigure14Shape(t *testing.T) {
	tbl, err := Figure14(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if len(tbl.Header) != 6 { // k + 5 attributes
		t.Fatalf("header = %v", tbl.Header)
	}
	for _, row := range tbl.Rows {
		for col := 1; col < len(row); col++ {
			parts := strings.Fields(row[col])
			if len(parts) != 3 {
				t.Fatalf("cell %q malformed", row[col])
			}
			total, _ := strconv.Atoi(parts[0])
			changed, _ := strconv.Atoi(parts[1])
			belowK, _ := strconv.Atoi(parts[2])
			if total <= 0 {
				t.Errorf("k=%s %s: no bins", row[0], tbl.Header[col])
			}
			if changed > total {
				t.Errorf("k=%s %s: changed %d > total %d", row[0], tbl.Header[col], changed, total)
			}
			// The paper's key claim: zero bins below k.
			if belowK != 0 {
				t.Errorf("k=%s %s: %d bins below k", row[0], tbl.Header[col], belowK)
			}
		}
	}
}

func TestSeamlessnessShape(t *testing.T) {
	tbl, err := Seamlessness(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		out, _ := strconv.Atoi(row[2])
		in, _ := strconv.Atoi(row[3])
		if out != in {
			t.Errorf("%s: total out %d != total in %d (flow must conserve)", row[0], out, in)
		}
		rel, _ := strconv.ParseFloat(row[6], 64)
		// Lemmas 1-2 under the paper's relaxed reading: per-run net bin
		// drift is a small fraction of bin size (no bin "drastically
		// affected"). 10% is far above the observed noise.
		if out > 0 && rel > 10 {
			t.Errorf("%s: per-run net drift %v%% of bin size; Pr− ≈ Pr+ violated", row[0], rel)
		}
	}
}

func TestGeneralizationAttackShape(t *testing.T) {
	tbl, err := GeneralizationAttack(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// level 0: both schemes clean.
	if cell(t, tbl, 0, 1) != 0 || cell(t, tbl, 0, 2) != 0 {
		t.Errorf("clean losses: %v %v", tbl.Rows[0][1], tbl.Rows[0][2])
	}
	// level 1: single-level destroyed (≈ fraction of 1-bits ≥ 30%),
	// hierarchical survives (small loss).
	single := cell(t, tbl, 1, 1)
	hier := cell(t, tbl, 1, 2)
	if single < 25 {
		t.Errorf("single-level loss %v after 1-level attack; paper says destroyed", single)
	}
	if hier > 10 {
		t.Errorf("hierarchical loss %v after 1-level attack; paper says resilient", hier)
	}
	if hier >= single {
		t.Errorf("hierarchical (%v) must beat single-level (%v)", hier, single)
	}
}

func TestDownUpAblationShape(t *testing.T) {
	tbl, err := DownUpAblation(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// At the largest k the downward search must visit fewer nodes: the
	// minimal frontier sits near the maximal nodes where it starts.
	last := tbl.Rows[len(tbl.Rows)-1]
	down, _ := strconv.Atoi(last[1])
	up, _ := strconv.Atoi(last[2])
	if down >= up {
		t.Errorf("k=%s: downward visited %d >= upward %d", last[0], down, up)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"T — demo", "long-column", "333333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFrontierAtDepth(t *testing.T) {
	tree := ontology.Zip()
	g, err := FrontierAtDepth(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Errorf("regions = %d, want 4", g.Len())
	}
	g, err = FrontierAtDepth(tree, 99)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != tree.NumLeaves() {
		t.Errorf("deep frontier should be all leaves")
	}
	g, err = FrontierAtDepth(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("depth 0 should be the root")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Rows != 20000 || c.MarkBits != 20 || c.Duplication != 4 || c.Secret == "" || c.Seed == 0 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestWeightedVotingAblationShape(t *testing.T) {
	tbl, err := WeightedVotingAblation(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		unweighted := cell(t, tbl, i, 1)
		weighted := cell(t, tbl, i, 2)
		if weighted > unweighted {
			t.Errorf("attacked %s%%: weighted %v beats unweighted %v the wrong way",
				tbl.Rows[i][0], weighted, unweighted)
		}
	}
	// At full attack strength weighted voting must keep the mark intact
	// (the §5.3 policy's purpose) while unweighted suffers.
	last := len(tbl.Rows) - 1
	if w := cell(t, tbl, last, 2); w > 10 {
		t.Errorf("weighted loss %v at full attack; top level should recover the mark", w)
	}
}

func TestSwappingAblationShape(t *testing.T) {
	tbl, err := SwappingAblation(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		plain, _ := strconv.ParseFloat(row[1], 64)
		swapped, _ := strconv.ParseFloat(row[2], 64)
		// Swapping must not blow the drift up; both stay small.
		if plain > 10 || swapped > 10 {
			t.Errorf("%s: drift plain=%v swapped=%v too large", row[0], plain, swapped)
		}
		moved, _ := strconv.Atoi(row[3])
		if moved == 0 {
			t.Errorf("%s: no tuples swapped", row[0])
		}
	}
}

func TestReIdentificationShape(t *testing.T) {
	tbl, err := ReIdentification(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The naive release re-identifies most tuples...
	if rate := cell(t, tbl, 0, 2); rate < 50 {
		t.Errorf("naive re-identification rate %v%%, expected most tuples unique", rate)
	}
	// ...every binned release re-identifies none, with candidate sets >= k.
	ks := []float64{5, 10, 25, 50}
	for i := 1; i < len(tbl.Rows); i++ {
		if n := cell(t, tbl, i, 1); n != 0 {
			t.Errorf("%s: %v tuples re-identified", tbl.Rows[i][0], n)
		}
		if min := cell(t, tbl, i, 3); min > 0 && min < ks[i-1] {
			t.Errorf("%s: min candidates %v < k", tbl.Rows[i][0], min)
		}
	}
}
