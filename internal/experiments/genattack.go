package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/ontology"
	"repro/internal/pool"
	"repro/internal/watermark"
)

// GeneralizationAttack validates the §5.2 claim (E8): the keyless
// generalization attack — generalizing every value one or more levels up
// the DHT, within the usage metrics — completely destroys the
// single-level scheme's mark while the hierarchical scheme survives on
// the surviving upper levels. The experiment embeds the same mark with
// both schemes into the zip_code column (whose binned frontier has
// uniform depth, as the single-level scheme requires) and sweeps the
// attack depth.
func GeneralizationAttack(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	setup, err := newWatermarkSetup(cfg, 20)
	if err != nil {
		return nil, err
	}
	const eta = 25

	// Single-level needs a uniform-depth frontier: rebuild zip's spec at
	// the ZIP3 level (depth 3), with regions (depth 1) as the metrics.
	zipTree := setup.trees[ontology.ColZip]
	ulti, err := FrontierAtDepth(zipTree, 3)
	if err != nil {
		return nil, err
	}
	maxg, err := FrontierAtDepth(zipTree, 1)
	if err != nil {
		return nil, err
	}
	spec := watermark.ColumnSpec{Tree: zipTree, MaxGen: maxg, UltiGen: ulti}
	cols := map[string]watermark.ColumnSpec{ontology.ColZip: spec}

	// Re-bin the zip column of the binned table to the ZIP3 frontier.
	base := setup.binned.Clone()
	ci, _ := base.Schema().Index(ontology.ColZip)
	for i := 0; i < base.NumRows(); i++ {
		orig, _ := setup.original.Cell(i, ontology.ColZip)
		v, err := ulti.GeneralizeValue(orig)
		if err != nil {
			return nil, err
		}
		base.SetCellAt(i, ci, v)
	}

	params := setup.params(eta)
	hier := base.Clone()
	if _, err := watermark.Embed(hier, setup.identCol, cols, params); err != nil {
		return nil, err
	}
	single := base.Clone()
	if _, err := watermark.EmbedSingleLevel(single, setup.identCol, cols, params); err != nil {
		return nil, err
	}

	out := &Table{
		ID:     "E8 / §5.2 claim",
		Title:  "generalization attack: mark loss (%) for single-level vs hierarchical watermarking",
		Header: []string{"attack levels", "single-level loss %", "hierarchical loss %"},
		Notes: []string{
			"attack generalizes zip values up the tree (keyless), clamped at the usage metrics",
			"level 2 reaches the maximal nodes: every embedded level is erased, so both schemes read nothing",
		},
	}
	// Each attack depth clones and judges both schemes independently;
	// inside the fan-out the detects run sequentially (pointParams).
	rows, err := pool.Map(cfg.Workers, 3, func(levels int) ([]string, error) {
		params := setup.pointParams(eta)
		hAtt := hier.Clone()
		sAtt := single.Clone()
		if levels > 0 {
			if _, err := attack.Generalize(hAtt, ontology.ColZip, zipTree, maxg, levels); err != nil {
				return nil, err
			}
			if _, err := attack.Generalize(sAtt, ontology.ColZip, zipTree, maxg, levels); err != nil {
				return nil, err
			}
		}
		sRes, err := watermark.DetectSingleLevel(sAtt, setup.identCol, cols, params)
		if err != nil {
			return nil, err
		}
		hRes, err := watermark.Detect(hAtt, setup.identCol, cols, params)
		if err != nil {
			return nil, err
		}
		sLoss, err := watermark.MarkLoss(setup.mark, sRes)
		if err != nil {
			return nil, err
		}
		hLoss, err := watermark.MarkLoss(setup.mark, hRes)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%d", levels), pct(sLoss), pct(hLoss)}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, rows...)
	return out, nil
}
