package experiments

import (
	"fmt"

	"repro/internal/binning"
	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/ontology"
	"repro/internal/pool"
)

// Figure11 reproduces "k vs. information loss" (E1): for each k, the
// Equation (3) normalized information loss after mono-attribute binning
// (every column binned individually) and after multi-attribute binning
// (the joint table satisfying k). The paper's observations to reproduce:
// multi-attribute binning loses far more information than mono-attribute
// binning, and both curves rise with k and then saturate.
func Figure11(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	ks := []int{10, 20, 45, 100, 150, 200, 250, 300, 350}

	tbl, err := generate(cfg)
	if err != nil {
		return nil, err
	}
	trees := ontology.Trees()
	quasi := tbl.Schema().QuasiColumns()

	// Usage metrics for this experiment: unconstrained (root), so the
	// whole k range is binnable and the curves can saturate.
	maxGens := make(map[string]dht.GenSet, len(quasi))
	for _, col := range quasi {
		maxGens[col] = dht.RootGenSet(trees[col])
	}

	// Histograms once, straight off the dictionary-encoded columns.
	hists := make(map[string][]int, len(quasi))
	for _, col := range quasi {
		ci, err := tbl.Schema().Index(col)
		if err != nil {
			return nil, err
		}
		h, err := infoloss.LeafHistogramCodes(trees[col], tbl.DictValues(ci), tbl.Codes(ci))
		if err != nil {
			return nil, err
		}
		hists[col] = h
	}

	out := &Table{
		ID:     "E1 / Figure 11",
		Title:  "k vs. information loss (%), mono- vs multi-attribute binning",
		Header: []string{"k", "mono-attr loss %", "multi-attr loss %"},
		Notes: []string{
			"multi-attribute binning must generalize far beyond the per-column frontiers to make 5-column combinations k-anonymous",
		},
	}

	// Every k of the sweep bins the same read-only table independently,
	// so the points run concurrently; pool.Map returns rows in k order.
	rows, err := pool.Map(cfg.Workers, len(ks), func(ki int) ([]string, error) {
		k := ks[ki]
		minGens := make(map[string]dht.GenSet, len(quasi))
		var monoLosses []float64
		for _, col := range quasi {
			g, _, err := binning.MonoBinHist(trees[col], maxGens[col], hists[col], k, false)
			if err != nil {
				return nil, fmt.Errorf("k=%d column %s: %w", k, col, err)
			}
			minGens[col] = g
			l, err := infoloss.ColumnLoss(g, hists[col])
			if err != nil {
				return nil, err
			}
			monoLosses = append(monoLosses, l)
		}
		monoAvg := infoloss.NormalizedLoss(monoLosses)

		ulti, _, err := binning.MultiBin(tbl, quasi, minGens, maxGens, k, binning.StrategyGreedy, 0, 1)
		if err != nil {
			return nil, fmt.Errorf("k=%d multi: %w", k, err)
		}
		var multiLosses []float64
		for _, col := range quasi {
			l, err := infoloss.ColumnLoss(ulti[col], hists[col])
			if err != nil {
				return nil, err
			}
			multiLosses = append(multiLosses, l)
		}
		multiAvg := infoloss.NormalizedLoss(multiLosses)

		return []string{fmt.Sprintf("%d", k), pct(monoAvg), pct(multiAvg)}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, rows...)
	return out, nil
}
