// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7), plus the experimentally checkable in-text
// claims. Each runner returns a printable Table whose rows mirror what
// the paper reports; cmd/experiments renders them and bench_test.go wraps
// each in a testing.B benchmark. See DESIGN.md §3 for the experiment
// index (E1..E9) and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/binning"
	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/datagen"
	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/ontology"
	"repro/internal/ownership"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// Config parameterizes an experiment run. Zero values default to the
// paper's setting: 20,000 tuples, a 20-bit mark.
type Config struct {
	// Rows is the synthetic data set size (paper: ~20,000).
	Rows int
	// Seed drives the synthetic data and the attack randomness.
	Seed int64
	// MarkBits is |wm| (paper: 20).
	MarkBits int
	// Duplication is the mark replication factor l.
	Duplication int
	// Secret derives the watermarking key set.
	Secret string
	// Workers bounds the goroutines used to run independent experiment
	// points (figure-sweep entries, attack-battery cells) concurrently
	// (0 = GOMAXPROCS, 1 = sequential). Results are assembled in point
	// order, so tables are identical for every worker count.
	Workers int
}

// Defaults fills in the paper's parameters.
func (c Config) Defaults() Config {
	if c.Rows == 0 {
		c.Rows = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MarkBits == 0 {
		c.MarkBits = 20
	}
	if c.Duplication == 0 {
		c.Duplication = 4
	}
	if c.Secret == "" {
		c.Secret = "experiments-owner-secret"
	}
	return c
}

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E2 / Figure 12(a)").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes carry caveats (e.g. voting-strength differences vs the paper).
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// pct formats a fraction as a percentage with one decimal.
func pct(f float64) string { return fmt.Sprintf("%.1f", f*100) }

// generate builds the synthetic evaluation data set.
func generate(cfg Config) (*relation.Table, error) {
	return datagen.Generate(datagen.Config{
		Rows: cfg.Rows, Seed: cfg.Seed, Correlate: true, ZipfS: 1.2,
	})
}

// FrontierAtDepth returns the valid generalization whose members are the
// nodes at the given depth (or shallower leaves). It is how the
// experiments state usage metrics "directly given as maximal
// generalization nodes" (the paper's §7 simplification).
func FrontierAtDepth(tree *dht.Tree, depth int) (dht.GenSet, error) {
	var members []dht.NodeID
	var walk func(nd dht.NodeID)
	walk = func(nd dht.NodeID) {
		n := tree.Node(nd)
		if n.Depth == depth || n.IsLeaf() {
			members = append(members, nd)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
	return dht.NewGenSet(tree, members)
}

// defaultMaxGens states the experiments' usage metrics: regions for zip,
// chapters for symptom, classes for prescription, staff categories for
// doctor, quarter-domain intervals for age.
func defaultMaxGens(trees map[string]*dht.Tree) (map[string]dht.GenSet, error) {
	depths := map[string]int{
		ontology.ColAge:          2,
		ontology.ColZip:          1,
		ontology.ColDoctor:       2,
		ontology.ColSymptom:      1,
		ontology.ColPrescription: 1,
	}
	out := make(map[string]dht.GenSet, len(trees))
	for col, tree := range trees {
		d, ok := depths[col]
		if !ok {
			d = 1
		}
		g, err := FrontierAtDepth(tree, d)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", col, err)
		}
		out[col] = g
	}
	return out, nil
}

// wmSetup is the shared fixture of the watermarking experiments: the
// original table, its per-column mono-binned version (identifiers
// encrypted), and the watermark column specs.
type wmSetup struct {
	cfg      Config
	original *relation.Table
	binned   *relation.Table
	columns  map[string]watermark.ColumnSpec
	trees    map[string]*dht.Tree
	identCol string
	mark     bitstr.Bits
}

// key derives the experiment key set for a given η.
func (s *wmSetup) key(eta uint64) crypt.WatermarkKey {
	return crypt.NewWatermarkKeyFromSecret(s.cfg.Secret, eta)
}

// params builds watermark parameters for a given η. Workers propagates
// so that Workers=1 runs the whole experiment — sweep points and their
// inner embed/detect — strictly sequentially, while experiments that
// loop sequentially (seamlessness trials, drift rates) still fan their
// embeds out.
func (s *wmSetup) params(eta uint64) watermark.Params {
	return watermark.Params{
		Key:                    s.key(eta),
		Mark:                   s.mark,
		Duplication:            s.cfg.Duplication,
		SaltPositionWithColumn: true,
		Workers:                s.cfg.Workers,
	}
}

// pointParams is params for use inside a sweep that already fans its
// points out over cfg.Workers: the inner embed/detect stays sequential
// so the total concurrency is bounded by the flag instead of its square.
func (s *wmSetup) pointParams(eta uint64) watermark.Params {
	p := s.params(eta)
	p.Workers = 1
	return p
}

// newWatermarkSetup generates data, states the usage metrics as maximal
// generalization nodes (§7's simplification), mono-bins every quasi
// column downward at k, encrypts identifiers, and derives the ownership
// mark — the common preparation of the Figure 12/13/14 experiments.
func newWatermarkSetup(cfg Config, k int) (*wmSetup, error) {
	cfg = cfg.Defaults()
	original, err := generate(cfg)
	if err != nil {
		return nil, err
	}
	trees := ontology.Trees()
	maxGens, err := defaultMaxGens(trees)
	if err != nil {
		return nil, err
	}
	identCol := original.Schema().IdentColumns()[0]

	key := crypt.NewWatermarkKeyFromSecret(cfg.Secret, 75)
	cipher, err := crypt.NewCipher(key.Enc)
	if err != nil {
		return nil, err
	}
	mark, _, err := ownership.OwnerMark(original, identCol, 1e6, cfg.MarkBits)
	if err != nil {
		return nil, err
	}

	binned := original.Clone()
	columns := make(map[string]watermark.ColumnSpec, len(trees))
	for _, col := range original.Schema().QuasiColumns() {
		ci, _ := binned.Schema().Index(col)
		hist, err := infoloss.LeafHistogramCodes(trees[col], binned.DictValues(ci), binned.Codes(ci))
		if err != nil {
			return nil, err
		}
		ulti, _, err := binning.MonoBinHist(trees[col], maxGens[col], hist, k, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: mono-binning %s at k=%d: %w", col, k, err)
		}
		if _, err := binned.MapColumn(ci, ulti.GeneralizeValue); err != nil {
			return nil, err
		}
		columns[col] = watermark.ColumnSpec{Tree: trees[col], MaxGen: maxGens[col], UltiGen: ulti}
	}
	identIdx, _ := binned.Schema().Index(identCol)
	if _, err := binned.MapColumn(identIdx, func(v string) (string, error) {
		return cipher.EncryptString(v), nil
	}); err != nil {
		return nil, err
	}

	return &wmSetup{
		cfg:      cfg,
		original: original,
		binned:   binned,
		columns:  columns,
		trees:    trees,
		identCol: identCol,
		mark:     mark,
	}, nil
}

// frontierValues lists the legal (frontier) values of a column — the
// value pool attackers draw plausible replacements from.
func (s *wmSetup) frontierValues() map[string][]string {
	out := make(map[string][]string, len(s.columns))
	for col, spec := range s.columns {
		out[col] = spec.UltiGen.Values()
	}
	return out
}

// columnLossAvg computes the Equation (3) average loss of a frontier
// assignment against the original histograms.
func columnLossAvg(s *wmSetup, gens map[string]dht.GenSet) (float64, error) {
	var losses []float64
	for col, gen := range gens {
		ci, err := s.original.Schema().Index(col)
		if err != nil {
			return 0, err
		}
		hist, err := infoloss.LeafHistogramCodes(s.trees[col], s.original.DictValues(ci), s.original.Codes(ci))
		if err != nil {
			return 0, err
		}
		l, err := infoloss.ColumnLoss(gen, hist)
		if err != nil {
			return 0, err
		}
		losses = append(losses, l)
	}
	return infoloss.NormalizedLoss(losses), nil
}
