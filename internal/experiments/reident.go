package experiments

import (
	"fmt"

	"repro/internal/binning"
	"repro/internal/crypt"
	"repro/internal/linkage"
	"repro/internal/ontology"
)

// ReIdentification (E12) quantifies the privacy premise of §1: the
// re-identification risk of a naive de-identified release (SSN removed,
// quasi columns raw) versus the binned release, against a worst-case
// adversary holding an external identified table covering every patient
// (the "voting records" of the paper's example). Swept over k.
func ReIdentification(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	original, err := generate(cfg)
	if err != nil {
		return nil, err
	}
	trees := ontology.Trees()
	quasi := original.Schema().QuasiColumns()

	external, err := linkage.ExternalView(original, ontology.ColSSN, quasi)
	if err != nil {
		return nil, err
	}

	out := &Table{
		ID:     "E12 / §1 premise",
		Title:  "linking-attack re-identification: naive release vs binned release",
		Header: []string{"release", "re-identified", "rate %", "min candidates", "max candidates"},
		Notes: []string{
			"adversary joins an identified external table (voter roll) on all five quasi columns",
		},
	}

	// Naive release: identifiers removed, quasi columns untouched.
	naive := original.Clone()
	ci, err := naive.Schema().Index(ontology.ColSSN)
	if err != nil {
		return nil, err
	}
	for i := 0; i < naive.NumRows(); i++ {
		naive.SetCellAt(i, ci, "anon")
	}
	res, err := linkage.Attack(naive, external, quasi, trees)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, []string{
		"de-identified only",
		fmt.Sprintf("%d", res.ReIdentified),
		pct(res.Rate()),
		fmt.Sprintf("%d", res.MinCandidates),
		fmt.Sprintf("%d", res.MaxCandidates),
	})

	cipher, err := crypt.NewCipher([]byte(cfg.Secret))
	if err != nil {
		return nil, err
	}
	for _, k := range []int{5, 10, 25, 50} {
		binned, err := binning.Run(original, binning.Config{K: k, Trees: trees}, cipher)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", k, err)
		}
		res, err := linkage.Attack(binned.Table, external, quasi, trees)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("binned k=%d", k),
			fmt.Sprintf("%d", res.ReIdentified),
			pct(res.Rate()),
			fmt.Sprintf("%d", res.MinCandidates),
			fmt.Sprintf("%d", res.MaxCandidates),
		})
	}
	return out, nil
}
