package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/pool"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// Figure 12 (E2-E4): robustness of the hierarchical watermarking scheme
// to the three tuple-level attacks, swept over attack strength for
// η ∈ {50, 75, 100}. Mark loss is the fraction of wrong mark bits.

var figure12Etas = []uint64{50, 75, 100}
var figure12Fracs = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// attackKind selects the Figure 12 sub-experiment.
type attackKind int

const (
	subsetAlteration attackKind = iota
	subsetAddition
	subsetDeletion
)

func (a attackKind) String() string {
	switch a {
	case subsetAlteration:
		return "alteration"
	case subsetAddition:
		return "addition"
	case subsetDeletion:
		return "deletion"
	default:
		return "?"
	}
}

// Figure12a reproduces Figure 12(a): robustness to Subset Alteration.
func Figure12a(cfg Config) (*Table, error) { return figure12(cfg, subsetAlteration, "12(a)") }

// Figure12b reproduces Figure 12(b): robustness to Subset Addition.
func Figure12b(cfg Config) (*Table, error) { return figure12(cfg, subsetAddition, "12(b)") }

// Figure12c reproduces Figure 12(c): robustness to Subset Deletion
// (issued as SQL-style range deletions over the identifying column).
func Figure12c(cfg Config) (*Table, error) { return figure12(cfg, subsetDeletion, "12(c)") }

func figure12(cfg Config, kind attackKind, figure string) (*Table, error) {
	cfg = cfg.Defaults()
	setup, err := newWatermarkSetup(cfg, 20)
	if err != nil {
		return nil, err
	}

	// One watermarked table per η; the three embeds are independent.
	markedByEta, err := pool.Map(cfg.Workers, len(figure12Etas), func(i int) (*relation.Table, error) {
		m := setup.binned.Clone()
		if _, err := watermark.Embed(m, setup.identCol, setup.columns, setup.pointParams(figure12Etas[i])); err != nil {
			return nil, err
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	marked := make(map[uint64]*relation.Table, len(figure12Etas))
	for i, eta := range figure12Etas {
		marked[eta] = markedByEta[i]
	}

	out := &Table{
		ID:    fmt.Sprintf("E%d / Figure %s", int(kind)+2, figure),
		Title: fmt.Sprintf("robustness to subset %s: attack strength vs mark loss (%%)", kind),
		Header: []string{
			fmt.Sprintf("data %s %%", kind),
			"mark loss % (η=50)", "mark loss % (η=75)", "mark loss % (η=100)",
		},
		Notes: []string{
			"vote accumulation across tuples and levels (DESIGN.md deviation 4) makes these curves flatter than the paper's single-overwrite detection; shape and η-ordering are preserved",
		},
	}

	// The attack battery is a grid of independent (strength, η) cells:
	// each clones its own table, attacks it with a seed derived from the
	// cell coordinates, and detects. Flattening the grid into one point
	// list load-balances across workers; rows are assembled in sweep
	// order afterwards, so the table never depends on scheduling.
	type point struct {
		frac float64
		eta  uint64
	}
	points := make([]point, 0, len(figure12Fracs)*len(figure12Etas))
	for _, frac := range figure12Fracs {
		for _, eta := range figure12Etas {
			points = append(points, point{frac: frac, eta: eta})
		}
	}
	losses, err := pool.Map(cfg.Workers, len(points), func(pi int) (string, error) {
		frac, eta := points[pi].frac, points[pi].eta
		attacked := marked[eta].Clone()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(frac*100) + int64(eta)))
		switch kind {
		case subsetAlteration:
			if _, err := attack.AlterSubset(attacked, setup.frontierValues(), frac, rng); err != nil {
				return "", err
			}
		case subsetAddition:
			gen := attack.BogusRowGenerator(attacked.Schema(), setup.identCol, "bogus", setup.frontierValues(), rng)
			if _, err := attack.AddSubset(attacked, frac, gen); err != nil {
				return "", err
			}
		case subsetDeletion:
			if _, err := attack.DeleteRanges(attacked, setup.identCol, frac, 8, rng); err != nil {
				return "", err
			}
		}
		res, err := watermark.Detect(attacked, setup.identCol, setup.columns, setup.pointParams(eta))
		if err != nil {
			return "", err
		}
		loss, err := watermark.MarkLoss(setup.mark, res)
		if err != nil {
			return "", err
		}
		return pct(loss), nil
	})
	if err != nil {
		return nil, err
	}
	for fi, frac := range figure12Fracs {
		row := []string{pct(frac)}
		row = append(row, losses[fi*len(figure12Etas):(fi+1)*len(figure12Etas)]...)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
