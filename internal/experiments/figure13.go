package experiments

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/pool"
	"repro/internal/watermark"
)

// Figure13 reproduces "information loss of watermarking" (E5): the extra
// information loss that watermark permutations introduce beyond binning,
// as a function of η. A permuted cell is correct only up to its maximal
// generalization node, so it is charged the Equation (1)/(2) loss of that
// node instead of its (smaller) ultimate-node loss; unchanged cells keep
// the binning charge. The paper's observations: the loss is minor (single
// digits) and decreases as η grows (fewer marked tuples).
func Figure13(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	setup, err := newWatermarkSetup(cfg, 20)
	if err != nil {
		return nil, err
	}
	etas := []uint64{50, 75, 100, 150, 200}

	out := &Table{
		ID:     "E5 / Figure 13",
		Title:  "information loss of watermarking vs η",
		Header: []string{"η", "tuples marked", "cells changed", "extra info loss %"},
	}

	// Each η embeds into its own clone and scans it against the shared
	// read-only binned table — independent points, merged in η order.
	quasi := setup.binned.Schema().QuasiColumns()
	rows, err := pool.Map(cfg.Workers, len(etas), func(ei int) ([]string, error) {
		eta := etas[ei]
		marked := setup.binned.Clone()
		stats, err := watermark.Embed(marked, setup.identCol, setup.columns, setup.pointParams(eta))
		if err != nil {
			return nil, err
		}

		// Per column: average per-cell charge delta between the
		// watermarked assignment and the pure binning assignment.
		var losses []float64
		for _, col := range quasi {
			spec := setup.columns[col]
			tree := spec.Tree
			ci, _ := marked.Schema().Index(col)
			total := 0.0
			n := marked.NumRows()
			for i := 0; i < n; i++ {
				if marked.CellAt(i, ci) == setup.binned.CellAt(i, ci) {
					continue
				}
				// changed cell: charged at the maximal node, minus the
				// ultimate-node charge binning already pays
				id, err := tree.ResolveValue(setup.binned.CellAt(i, ci))
				if err != nil {
					return nil, err
				}
				maxNode, ok := spec.MaxGen.CoverOf(id)
				if !ok {
					continue
				}
				total += nodeCharge(tree, maxNode) - nodeCharge(tree, id)
			}
			losses = append(losses, total/float64(n))
		}
		extra := infoloss.NormalizedLoss(losses)
		return []string{
			fmt.Sprintf("%d", eta),
			fmt.Sprintf("%d", stats.TuplesSelected),
			fmt.Sprintf("%d", stats.CellsChanged),
			pct(extra),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, rows...)
	return out, nil
}

// nodeCharge is the per-entry Equation (1)/(2) contribution of placing a
// value at node nd: interval width ratio for numeric trees, leaf-count
// ratio for categorical trees.
func nodeCharge(tree *dht.Tree, nd dht.NodeID) float64 {
	n := tree.Node(nd)
	if tree.Numeric() {
		root := tree.Node(tree.Root())
		return (n.Hi - n.Lo) / (root.Hi - root.Lo)
	}
	return float64(tree.NumLeavesUnder(nd)-1) / float64(tree.NumLeaves())
}
