package experiments

import (
	"fmt"
	"time"

	"repro/internal/binning"
	"repro/internal/dht"
	"repro/internal/ontology"
)

// DownUpAblation validates the §4.2.1 claim (E9): "downward binning may
// have efficiency advantage over previous work that bins upward along the
// tree". For each k it runs both directions over every quasi column under
// the same usage metrics and reports nodes visited and wall-clock time.
// The advantage grows with k: larger k puts the minimal frontier closer
// to the maximal nodes, exactly where the downward search starts.
func DownUpAblation(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tbl, err := generate(cfg)
	if err != nil {
		return nil, err
	}
	trees := ontology.Trees()
	quasi := tbl.Schema().QuasiColumns()
	maxGens := make(map[string]dht.GenSet, len(quasi))
	for _, col := range quasi {
		maxGens[col] = dht.RootGenSet(trees[col])
	}
	colValues := make(map[string][]string, len(quasi))
	for _, col := range quasi {
		v, err := tbl.Column(col)
		if err != nil {
			return nil, err
		}
		colValues[col] = v
	}

	out := &Table{
		ID:     "E9 / §4.2.1 claim",
		Title:  "downward vs upward mono-attribute binning (all quasi columns summed)",
		Header: []string{"k", "down nodes", "up nodes", "down µs", "up µs", "frontiers equal"},
	}
	for _, k := range []int{10, 50, 100, 200, 350} {
		var downNodes, upNodes int
		var downTime, upTime time.Duration
		equal := true
		for _, col := range quasi {
			start := time.Now()
			dGen, dStats, err := binning.MonoBin(trees[col], maxGens[col], colValues[col], k, false)
			if err != nil {
				return nil, fmt.Errorf("k=%d %s down: %w", k, col, err)
			}
			downTime += time.Since(start)
			downNodes += dStats.NodesVisited

			start = time.Now()
			uGen, uStats, err := binning.MonoBinUpward(trees[col], maxGens[col], colValues[col], k)
			if err != nil {
				return nil, fmt.Errorf("k=%d %s up: %w", k, col, err)
			}
			upTime += time.Since(start)
			upNodes += uStats.NodesVisited
			if !dGen.Equal(uGen) {
				equal = false
			}
		}
		out.Rows = append(out.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", downNodes),
			fmt.Sprintf("%d", upNodes),
			fmt.Sprintf("%d", downTime.Microseconds()),
			fmt.Sprintf("%d", upTime.Microseconds()),
			fmt.Sprintf("%v", equal),
		})
	}
	return out, nil
}

// All runs every experiment in DESIGN.md order: E1..E9 reproduce the
// paper's evaluation; E10..E12 measure its in-text suggestions
// (weighted voting, restrained swapping, the §1 linking-attack premise).
func All(cfg Config) ([]*Table, error) {
	runners := []func(Config) (*Table, error){
		Figure11, Figure12a, Figure12b, Figure12c, Figure13, Figure14,
		Seamlessness, GeneralizationAttack, DownUpAblation,
		WeightedVotingAblation, SwappingAblation, ReIdentification,
	}
	out := make([]*Table, 0, len(runners))
	for _, run := range runners {
		t, err := run(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
