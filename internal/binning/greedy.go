package binning

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dht"
	"repro/internal/pool"
)

// The incremental greedy lattice ascent.
//
// The rescan ascent pays three full-table passes per merge to re-derive
// the violating frontier members. But a merge changes the joint
// histogram in a purely local way: the only bins that move are those
// whose merged-column component is one of the merged parent's children,
// and they move to the bin keyed by the parent — MergeCandidates only
// offers parents whose children are all frontier members, so the set of
// covered leaves is invariant under the ascent and every other key
// component is untouched. multiGreedy therefore scans the rows once, to
// build a joint histogram keyed by per-column covering NodeIDs (stable
// across merges, unlike frontier member indices), and then delta-updates
// it between neighbouring lattice nodes in O(bins) per merge.
//
// The violating member sets fall out of the histogram (decode the keys
// of bins below k), so the move selection sees exactly the sets the
// rescan derives and takes the identical merge sequence: same frontier,
// same stats, byte-identical downstream output.

// greedyMove is one candidate lattice step.
type greedyMove struct {
	ci     int
	parent dht.NodeID
	delta  float64
	helps  bool
}

// betterGreedyMove is the rescan ascent's strict move order: helping
// moves first, then smallest specificity-loss increase, then the
// deterministic (column, parent) tie-break.
func betterGreedyMove(a, b *greedyMove) bool {
	if a.helps != b.helps {
		return a.helps
	}
	if a.delta != b.delta {
		return a.delta < b.delta
	}
	if a.ci != b.ci {
		return a.ci < b.ci
	}
	return a.parent < b.parent
}

// nodeBases returns the per-column radix bases (tree size + 1, so 0 can
// encode "uncovered") and place values for composing a joint bin key
// from covering NodeIDs, and whether the product fits in uint64.
func nodeBases(cols []string, mingends map[string]dht.GenSet) (bases, places []uint64, fits bool) {
	bases = make([]uint64, len(cols))
	places = make([]uint64, len(cols))
	prod := uint64(1)
	for ci, col := range cols {
		base := uint64(mingends[col].Tree().Size()) + 1
		bases[ci] = base
		if prod > math.MaxUint64/base {
			return nil, nil, false
		}
		prod *= base
	}
	place := uint64(1)
	for ci := len(cols) - 1; ci >= 0; ci-- {
		places[ci] = place
		place *= bases[ci]
	}
	return bases, places, true
}

// coverNodes maps every tree node to its covering frontier member's
// NodeID + 1, or 0 when uncovered — coverTable with stable node
// identities instead of frontier indices.
func coverNodes(gen dht.GenSet) []uint64 {
	tree := gen.Tree()
	table := make([]uint64, tree.Size())
	for _, m := range gen.Nodes() {
		for _, leaf := range tree.LeavesUnder(m) {
			table[leaf] = uint64(m) + 1
		}
		table[m] = uint64(m) + 1
	}
	return table
}

// buildJointHist scans the rows once, sharded over workers, and returns
// the joint histogram keyed by covering-NodeID radix. Shards count into
// hash-partitioned maps merged partition-parallel, then the partitions
// fold into one map — counts are (weight) sums, so every worker count
// yields the same histogram. weights nil counts every position once.
func buildJointHist(ctx context.Context, workers int, rowLeaves [][]dht.NodeID, weights []int, cover [][]uint64, places []uint64) (map[uint64]int, error) {
	rows := len(rowLeaves[0])
	chunks := pool.Chunks(workers, rows)
	nParts := len(chunks)
	shardParts := make([][]map[uint64]int, nParts)
	if err := pool.ForEachChunkCtx(ctx, workers, rows, func(si, lo, hi int) error {
		parts := make([]map[uint64]int, nParts)
		for p := range parts {
			parts[p] = make(map[uint64]int, (hi-lo)/(4*nParts)+1)
		}
		for row := lo; row < hi; row++ {
			if err := pool.CtxAt(ctx, row-lo); err != nil {
				return err
			}
			var key uint64
			for ci := range cover {
				key += cover[ci][rowLeaves[ci][row]] * places[ci]
			}
			w := 1
			if weights != nil {
				w = weights[row]
			}
			parts[key%uint64(nParts)][key] += w
		}
		shardParts[si] = parts
		return nil
	}); err != nil {
		return nil, err
	}
	parts := make([]map[uint64]int, nParts)
	if err := pool.ForEachCtx(ctx, workers, nParts, func(p int) error {
		merged := shardParts[0][p]
		for si := 1; si < nParts; si++ {
			for key, n := range shardParts[si][p] {
				merged[key] += n
			}
		}
		parts[p] = merged
		return nil
	}); err != nil {
		return nil, err
	}
	hist := parts[0]
	for _, part := range parts[1:] {
		for key, n := range part {
			hist[key] += n
		}
	}
	return hist, nil
}

// greedyMoveCand is one memoized candidate merge of a column: the
// parent and its specificity-loss increase. Both are functions of the
// column's frontier alone, so the list is invalidated only when that
// column merges; whether the move helps depends on the current
// violating sets and is re-derived per iteration.
type greedyMoveCand struct {
	parent dht.NodeID
	delta  float64
}

func multiGreedy(
	ctx context.Context,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k, workers int,
	rowLeaves [][]dht.NodeID,
	weights []int,
	stats *MultiStats,
) (map[string]dht.GenSet, MultiStats, error) {
	bases, places, fits := nodeBases(cols, mingends)
	if !fits {
		return multiGreedyRescan(ctx, cols, mingends, maxgends, k, workers, rowLeaves, weights, stats)
	}

	cur := make([]dht.GenSet, len(cols))
	cover := make([][]uint64, len(cols))
	for ci, col := range cols {
		cur[ci] = mingends[col]
		cover[ci] = coverNodes(cur[ci])
	}
	hist, err := buildJointHist(ctx, workers, rowLeaves, weights, cover, places)
	if err != nil {
		return nil, *stats, err
	}

	viol := make([][]bool, len(cols))
	for ci := range cols {
		viol[ci] = make([]bool, cur[ci].Tree().Size())
	}
	memo := make([][]greedyMoveCand, len(cols))

	for {
		if err := ctx.Err(); err != nil {
			return nil, *stats, err
		}
		// Violating members, decoded from the histogram's thin bins.
		anyViolation := false
		for ci := range viol {
			clear(viol[ci])
		}
		for key, n := range hist {
			if n >= k {
				continue
			}
			for ci := range cols {
				if comp := (key / places[ci]) % bases[ci]; comp != 0 {
					viol[ci][comp-1] = true
					anyViolation = true
				}
			}
		}
		if !anyViolation {
			break
		}

		// Candidate moves: parents and deltas come from the per-column
		// memo; once a helping move is at hand, non-helping candidates
		// cannot win and are pruned without evaluation.
		var bestMove *greedyMove
		for ci, col := range cols {
			tree := cur[ci].Tree()
			if memo[ci] == nil {
				list := make([]greedyMoveCand, 0, 8)
				for _, p := range cur[ci].MergeCandidates() {
					if _, ok := maxgends[col].CoverOf(p); !ok {
						continue // would climb past the usage metrics
					}
					delta := float64(len(tree.Children(p))-1) / float64(tree.NumLeaves())
					list = append(list, greedyMoveCand{parent: p, delta: delta})
				}
				memo[ci] = list
			}
			for _, cand := range memo[ci] {
				helps := false
				for _, c := range tree.Children(cand.parent) {
					if viol[ci][c] {
						helps = true
						break
					}
				}
				if bestMove != nil && bestMove.helps && !helps {
					continue
				}
				m := &greedyMove{ci: ci, parent: cand.parent, delta: cand.delta, helps: helps}
				if bestMove == nil || betterGreedyMove(m, bestMove) {
					bestMove = m
				}
			}
		}
		if bestMove == nil {
			return nil, *stats, fmt.Errorf(
				"binning: greedy ascent exhausted at k=%d without satisfying k-anonymity: %w", k, ErrUnsatisfiable)
		}

		// Apply the merge: frontier, cover table, and the histogram
		// delta-update — bins keyed by a child of the merged parent
		// re-key to the parent and sum; every other bin is untouched.
		ci, p := bestMove.ci, bestMove.parent
		next, err := cur[ci].MergeAt(p)
		if err != nil {
			return nil, *stats, fmt.Errorf("binning: internal: %w", err)
		}
		cur[ci] = next
		tree := next.Tree()
		childComp := make(map[uint64]bool, len(tree.Children(p)))
		for _, c := range tree.Children(p) {
			childComp[uint64(c)+1] = true
			cover[ci][c] = uint64(p) + 1
		}
		for _, leaf := range tree.LeavesUnder(p) {
			cover[ci][leaf] = uint64(p) + 1
		}
		cover[ci][p] = uint64(p) + 1
		moved := make(map[uint64]int)
		for key, n := range hist {
			if comp := (key / places[ci]) % bases[ci]; childComp[comp] {
				delete(hist, key)
				moved[key-comp*places[ci]+(uint64(p)+1)*places[ci]] += n
			}
		}
		for key, n := range moved {
			hist[key] += n
		}
		memo[ci] = nil
		stats.GreedyMerges++
	}

	out := make(map[string]dht.GenSet, len(cols))
	for ci, col := range cols {
		out[col] = cur[ci]
	}
	return out, *stats, nil
}
