package binning

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/anonymity"
	"repro/internal/datagen"
	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// sketchFromSegments builds a sketch by draining tbl.Segments(chunk).
func sketchFromSegments(tb testing.TB, tbl *relation.Table, trees map[string]*dht.Tree, chunk int) *Sketch {
	tb.Helper()
	sk, err := NewSketch(tbl.Schema(), trees)
	if err != nil {
		tb.Fatal(err)
	}
	segs := tbl.Segments(chunk)
	for {
		seg, err := segs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			tb.Fatal(err)
		}
		if err := sk.Add(seg); err != nil {
			tb.Fatal(err)
		}
	}
	return sk
}

// searchResultsEqual compares every published field of two search
// results (the sketch result has no work table; everything else must
// match exactly, floats included — both paths run the same integer
// histograms through the same loss formulas).
func searchResultsEqual(a, b *SearchResult) error {
	for name, pair := range map[string][2]map[string]dht.GenSet{
		"MinGens":  {a.MinGens, b.MinGens},
		"MaxGens":  {a.MaxGens, b.MaxGens},
		"UltiGens": {a.UltiGens, b.UltiGens},
	} {
		if err := gensEqual(pair[0], pair[1]); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if len(a.ColumnLoss) != len(b.ColumnLoss) {
		return fmt.Errorf("ColumnLoss sizes %d vs %d", len(a.ColumnLoss), len(b.ColumnLoss))
	}
	for col, la := range a.ColumnLoss {
		if lb, ok := b.ColumnLoss[col]; !ok || la != lb {
			return fmt.Errorf("ColumnLoss[%s]: %v vs %v", col, la, b.ColumnLoss[col])
		}
	}
	if a.AvgLoss != b.AvgLoss {
		return fmt.Errorf("AvgLoss %v vs %v", a.AvgLoss, b.AvgLoss)
	}
	if a.EffectiveK != b.EffectiveK {
		return fmt.Errorf("EffectiveK %d vs %d", a.EffectiveK, b.EffectiveK)
	}
	if a.Suppressed != b.Suppressed {
		return fmt.Errorf("Suppressed %d vs %d", a.Suppressed, b.Suppressed)
	}
	if len(a.SuppressValues) != len(b.SuppressValues) {
		return fmt.Errorf("SuppressValues sizes %d vs %d", len(a.SuppressValues), len(b.SuppressValues))
	}
	for col, va := range a.SuppressValues {
		vb := b.SuppressValues[col]
		if len(va) != len(vb) {
			return fmt.Errorf("SuppressValues[%s]: %v vs %v", col, va, vb)
		}
		for i := range va {
			if va[i] != vb[i] {
				return fmt.Errorf("SuppressValues[%s]: %v vs %v", col, va, vb)
			}
		}
	}
	if len(a.MonoStats) != len(b.MonoStats) {
		return fmt.Errorf("MonoStats sizes %d vs %d", len(a.MonoStats), len(b.MonoStats))
	}
	for col, sa := range a.MonoStats {
		sb := b.MonoStats[col]
		if sa.NodesVisited != sb.NodesVisited || len(sa.Deficient) != len(sb.Deficient) {
			return fmt.Errorf("MonoStats[%s]: %+v vs %+v", col, sa, sb)
		}
		for i := range sa.Deficient {
			if sa.Deficient[i] != sb.Deficient[i] {
				return fmt.Errorf("MonoStats[%s].Deficient: %v vs %v", col, sa.Deficient, sb.Deficient)
			}
		}
	}
	if a.MultiStats != b.MultiStats {
		return fmt.Errorf("MultiStats %+v vs %+v", a.MultiStats, b.MultiStats)
	}
	return nil
}

// TestSearchSketchMatchesSearchContext is the core differential guard:
// the sketch search must reproduce the table search exactly — same
// frontiers, losses, suppression, stats — for every chunking of the
// input, worker count, minimality rule and strategy.
func TestSearchSketchMatchesSearchContext(t *testing.T) {
	tbl, trees := twoColumnTable(t)
	ctx := context.Background()
	for _, k := range []int{1, 2, 3, 6} {
		for _, aggressive := range []bool{false, true} {
			for _, strategy := range []Strategy{StrategyAuto, StrategyExhaustive, StrategyGreedy} {
				cfg := Config{K: k, Trees: trees, Strategy: strategy, Aggressive: aggressive}
				ref, refErr := SearchContext(ctx, tbl, cfg)
				for _, chunk := range []int{1, 3, 5, 12, 100} {
					for _, workers := range []int{1, 2, 8} {
						cfg.Workers = workers
						sk := sketchFromSegments(t, tbl, trees, chunk)
						got, gotErr := SearchSketch(ctx, sk, cfg)
						name := fmt.Sprintf("k=%d aggressive=%v strategy=%v chunk=%d workers=%d",
							k, aggressive, strategy, chunk, workers)
						if (refErr == nil) != (gotErr == nil) {
							t.Fatalf("%s: verdicts differ: table %v, sketch %v", name, refErr, gotErr)
						}
						if refErr != nil {
							continue
						}
						if err := searchResultsEqual(ref, got); err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						// AutoEpsilon's input statistic must agree too.
						refBins, err := anonymity.GeneralizedBins(ref.Work(), tbl.Schema().QuasiColumns(), ref.UltiGens)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						gotBins, err := got.GeneralizedBins(tbl.Schema().QuasiColumns(), got.UltiGens)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if len(refBins) != len(gotBins) {
							t.Fatalf("%s: bins %v vs %v", name, refBins, gotBins)
						}
						for key, n := range refBins {
							if gotBins[key] != n {
								t.Fatalf("%s: bin %q: %d vs %d", name, key, n, gotBins[key])
							}
						}
					}
				}
			}
		}
	}
}

// TestSearchSketchMatchesOn20k runs the differential on the benchmark
// fixture — realistic trees, Zipf-skewed correlated data, the greedy
// ascent path — at one odd chunk size that forces many partial
// segments.
func TestSearchSketchMatchesOn20k(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-row search x2 in -short mode")
	}
	tbl, err := datagen.Generate(datagen.Config{Rows: 20000, Seed: 1, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	trees := ontology.Trees()
	ctx := context.Background()
	for _, aggressive := range []bool{false, true} {
		cfg := Config{K: 25, Trees: trees, Aggressive: aggressive, Workers: 2}
		ref, err := SearchContext(ctx, tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sk := sketchFromSegments(t, tbl, trees, 7777)
		got, err := SearchSketch(ctx, sk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := searchResultsEqual(ref, got); err != nil {
			t.Fatalf("aggressive=%v: %v", aggressive, err)
		}
	}
}

// TestSearchSketchNotSlower is the acceptance guard for rebasing the
// in-memory planner onto the sketch: searching via sketch build +
// SearchSketch must not be materially slower than SearchContext on the
// 20k benchmark fixture (the search scales with distinct quasi-tuples
// instead of rows). The two paths measure within a few percent of each
// other, so the guard allows a 15% scheduling-noise margin — it exists
// to catch a gross regression, not to referee microtiming.
func TestSearchSketchNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-row search x4 in -short mode")
	}
	tbl, err := datagen.Generate(datagen.Config{Rows: 20000, Seed: 1, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	trees := ontology.Trees()
	cfg := Config{K: 25, Trees: trees, Workers: 1}
	ctx := context.Background()
	timeOf := func(fn func() error) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 2; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	tblDur := timeOf(func() error {
		_, err := SearchContext(ctx, tbl, cfg)
		return err
	})
	skDur := timeOf(func() error {
		sk, err := NewSketch(tbl.Schema(), trees)
		if err != nil {
			return err
		}
		if err := sk.Add(tbl); err != nil {
			return err
		}
		_, err = SearchSketch(ctx, sk, cfg)
		return err
	})
	if float64(skDur) > float64(tblDur)*1.15 {
		t.Errorf("sketch search = %v vs table search = %v; want <= 1.15x", skDur, tblDur)
	}
}

// TestSketchEmptyAndErrors pins the sketch constructor/ingest edges.
func TestSketchEmptyAndErrors(t *testing.T) {
	tbl, trees := twoColumnTable(t)
	// No quasi columns.
	noQuasi := relation.NewTable(relation.MustSchema(relation.Column{Name: "id", Kind: relation.Identifying}))
	if _, err := NewSketch(noQuasi.Schema(), trees); err == nil {
		t.Error("schema without quasi columns accepted")
	}
	// Missing tree.
	if _, err := NewSketch(tbl.Schema(), map[string]*dht.Tree{"age": trees["age"]}); err == nil {
		t.Error("missing DHT accepted")
	}
	// Unresolvable value leaves the sketch untouched.
	sk, err := NewSketch(tbl.Schema(), trees)
	if err != nil {
		t.Fatal(err)
	}
	bad := relation.NewTable(tbl.Schema())
	if err := bad.AppendRow([]string{"1", "not-a-number", "Physician"}); err != nil {
		t.Fatal(err)
	}
	if err := sk.Add(bad); err == nil {
		t.Error("unresolvable value accepted")
	}
	if sk.Rows() != 0 {
		t.Errorf("failed Add moved counts: rows=%d", sk.Rows())
	}
	// Empty sketch searches like an empty table: minimal frontiers.
	res, err := SearchSketch(context.Background(), sk, Config{K: 3, Trees: trees})
	if err != nil {
		t.Fatal(err)
	}
	for col, g := range res.UltiGens {
		if !g.Equal(res.MinGens[col]) {
			t.Errorf("empty sketch generalized column %s", col)
		}
	}
}

// TestSketchStringKeyFallback forces the degenerate radix-overflow path
// by sketching many copies of one wide-tree column set.
func TestSketchStringKeyFallback(t *testing.T) {
	// 11 quasi columns over the role tree: 10^11 * ... exceeds uint64
	// only with deep products, so use 25 columns (10^25 >> 2^64).
	ncols := 25
	cols := make([]relation.Column, 0, ncols)
	trees := map[string]*dht.Tree{}
	roles := roleTree(t)
	for i := 0; i < ncols; i++ {
		name := fmt.Sprintf("q%d", i)
		cols = append(cols, relation.Column{Name: name, Kind: relation.QuasiCategorical})
		trees[name] = roles
	}
	schema, err := relation.NewSchema(cols)
	if err != nil {
		t.Fatal(err)
	}
	tbl := relation.NewTable(schema)
	leaves := []string{"Physician", "Surgeon", "Nurse", "Pharmacist", "Clerk", "Manager"}
	for r := 0; r < 40; r++ {
		row := make([]string, ncols)
		for c := range row {
			row[c] = leaves[(r/4+c)%len(leaves)]
		}
		if err := tbl.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	sk := sketchFromSegments(t, tbl, trees, 7)
	if sk.fits {
		t.Fatal("expected radix overflow fallback")
	}
	ctx := context.Background()
	cfg := Config{K: 4, Trees: trees, Strategy: StrategyGreedy}
	ref, refErr := SearchContext(ctx, tbl, cfg)
	got, gotErr := SearchSketch(ctx, sk, cfg)
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("verdicts differ: table %v, sketch %v", refErr, gotErr)
	}
	if refErr == nil {
		if err := searchResultsEqual(ref, got); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzSketchIngest cross-checks segment-at-a-time sketch ingest against
// the materialized path on arbitrary CSV bytes: the sketch's marginal
// histograms must equal LeafHistogramCodes over the whole table, and
// its joint tuple counts the row-joined leaf tuples.
func FuzzSketchIngest(f *testing.F) {
	f.Add([]byte("id,age,role\n1,5,Physician\n2,45,Clerk\n3,5,Physician\n"), 1)
	f.Add([]byte("id,age,role\n1,79,Nurse\n2,0,Manager\n"), 2)
	f.Add([]byte("id,age,role\n"), 3)
	f.Add([]byte("role,id,age\n\"Ph\"\"ys\",x,20\n"), 1)
	f.Fuzz(func(t *testing.T, csv []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		chunk = chunk%5 + 1
		schema := relation.MustSchema(
			relation.Column{Name: "id", Kind: relation.Identifying},
			relation.Column{Name: "age", Kind: relation.QuasiNumeric},
			relation.Column{Name: "role", Kind: relation.QuasiCategorical},
		)
		ageTree, err := dht.NewNumeric("age", 0, 80, []float64{20, 40, 60})
		if err != nil {
			t.Fatal(err)
		}
		trees := map[string]*dht.Tree{"age": ageTree, "role": roleTree(t)}

		// Materialized reference.
		tbl, tblErr := relation.ReadCSV(bytes.NewReader(csv), schema)
		var refHists map[string][]int
		refErr := tblErr
		if tblErr == nil {
			refHists = map[string][]int{}
			for _, col := range schema.QuasiColumns() {
				ci, _ := schema.Index(col)
				h, err := infoloss.LeafHistogramCodes(trees[col], tbl.DictValues(ci), tbl.Codes(ci))
				if err != nil {
					refErr = err
					break
				}
				refHists[col] = h
			}
		}

		// Streaming sketch.
		sk, err := NewSketch(schema, trees)
		if err != nil {
			t.Fatal(err)
		}
		var skErr error
		sr, err := relation.NewSegmentReader(bytes.NewReader(csv), schema, chunk)
		if err != nil {
			skErr = err
		} else {
			for {
				seg, err := sr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					skErr = err
					break
				}
				if err := sk.Add(seg); err != nil {
					skErr = err
					break
				}
			}
		}

		if (refErr == nil) != (skErr == nil) {
			t.Fatalf("verdicts differ: table %v, sketch %v", refErr, skErr)
		}
		if refErr != nil {
			return
		}
		if sk.Rows() != tbl.NumRows() {
			t.Fatalf("rows %d vs %d", sk.Rows(), tbl.NumRows())
		}
		quasi := schema.QuasiColumns()
		for i, col := range quasi {
			ref := refHists[col]
			for id, n := range ref {
				if sk.hist[i][id] != n {
					t.Fatalf("column %s hist[%d]: %d vs %d", col, id, sk.hist[i][id], n)
				}
			}
		}
		// Joint tuples: fold table rows into leaf-tuple counts.
		refTuples := map[string]int{}
		leaves := make([][]dht.NodeID, len(quasi))
		for i, col := range quasi {
			ci, _ := schema.Index(col)
			dict, codes := tbl.DictValues(ci), tbl.Codes(ci)
			leafOf := make([]dht.NodeID, len(dict))
			used := make([]bool, len(dict))
			for _, code := range codes {
				used[code] = true
			}
			for code, v := range dict {
				if !used[code] {
					continue
				}
				leaf, err := trees[col].ResolveLeaf(v)
				if err != nil {
					t.Fatal(err)
				}
				leafOf[code] = leaf
			}
			leaves[i] = make([]dht.NodeID, len(codes))
			for r, code := range codes {
				leaves[i][r] = leafOf[code]
			}
		}
		var sb strings.Builder
		for r := 0; r < tbl.NumRows(); r++ {
			sb.Reset()
			for i := range quasi {
				fmt.Fprintf(&sb, "%d|", leaves[i][r])
			}
			refTuples[sb.String()]++
		}
		gotLeaves, gotCounts, err := sk.decodeTuples()
		if err != nil {
			t.Fatal(err)
		}
		gotTuples := map[string]int{}
		for ti := range gotCounts {
			sb.Reset()
			for i := range quasi {
				fmt.Fprintf(&sb, "%d|", gotLeaves[i][ti])
			}
			gotTuples[sb.String()] += gotCounts[ti]
		}
		if len(refTuples) != len(gotTuples) {
			t.Fatalf("tuple sets differ: %d vs %d", len(refTuples), len(gotTuples))
		}
		for key, n := range refTuples {
			if gotTuples[key] != n {
				t.Fatalf("tuple %q: %d vs %d", key, n, gotTuples[key])
			}
		}
	})
}
