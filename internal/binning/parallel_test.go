package binning

import (
	"fmt"
	"testing"

	"repro/internal/dht"
	"repro/internal/relation"
)

// exhaustiveFixture builds a table whose two-column candidate space is
// large enough for the parallel search to shard meaningfully: a numeric
// age tree with three split levels and the role tree.
func exhaustiveFixture(t *testing.T, rows int) (*relation.Table, []string, map[string]dht.GenSet, map[string]dht.GenSet) {
	t.Helper()
	ageTree, err := dht.NewNumeric("age", 0, 80, []float64{10, 20, 30, 40, 50, 60, 70})
	if err != nil {
		t.Fatal(err)
	}
	trees := map[string]*dht.Tree{"age": ageTree, "role": roleTree(t)}
	tbl := relation.NewTable(relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.Identifying},
		relation.Column{Name: "age", Kind: relation.QuasiNumeric},
		relation.Column{Name: "role", Kind: relation.QuasiCategorical},
	))
	roles := []string{"Physician", "Surgeon", "Nurse", "Pharmacist", "Clerk", "Manager"}
	// Deterministic pseudo-random rows (LCG) — no global rand state.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < rows; i++ {
		row := []string{
			fmt.Sprintf("id-%05d", i),
			fmt.Sprintf("%d", next(80)),
			roles[next(len(roles))],
		}
		if err := tbl.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	cols := []string{"age", "role"}
	ming := map[string]dht.GenSet{}
	maxg := map[string]dht.GenSet{}
	for _, col := range cols {
		values, err := tbl.Column(col)
		if err != nil {
			t.Fatal(err)
		}
		mg := dht.RootGenSet(trees[col])
		g, _, err := MonoBin(trees[col], mg, values, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		ming[col] = g
		maxg[col] = mg
	}
	return tbl, cols, ming, maxg
}

// TestMultiBinExhaustiveParallelDeterminism asserts the acceptance
// criterion for the concurrent binning search: identical frontiers and
// identical work counters for Workers ∈ {1, 2, 8}.
func TestMultiBinExhaustiveParallelDeterminism(t *testing.T) {
	tbl, cols, ming, maxg := exhaustiveFixture(t, 600)
	const k = 8

	baseUlti, baseStats, err := MultiBin(tbl, cols, ming, maxg, k, StrategyExhaustive, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Candidates < 8 {
		t.Fatalf("fixture too small: only %d candidates enumerated", baseStats.Candidates)
	}
	for _, workers := range []int{2, 8} {
		ulti, stats, err := MultiBin(tbl, cols, ming, maxg, k, StrategyExhaustive, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats != baseStats {
			t.Errorf("workers=%d: stats %+v differ from sequential %+v", workers, stats, baseStats)
		}
		for _, col := range cols {
			if !ulti[col].Equal(baseUlti[col]) {
				t.Errorf("workers=%d: %s frontier %v differs from sequential %v",
					workers, col, ulti[col], baseUlti[col])
			}
		}
	}
}

// TestMultiBinWorkerCountDoesNotChangeAuto ensures Auto strategy
// resolution ignores the worker count.
func TestMultiBinWorkerCountDoesNotChangeAuto(t *testing.T) {
	tbl, cols, ming, maxg := exhaustiveFixture(t, 200)
	for _, workers := range []int{1, 8} {
		_, stats, err := MultiBin(tbl, cols, ming, maxg, 8, StrategyAuto, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Strategy != StrategyExhaustive {
			t.Fatalf("workers=%d: Auto resolved to %v", workers, stats.Strategy)
		}
	}
}
