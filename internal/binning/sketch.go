package binning

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/anonymity"
	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/pool"
	"repro/internal/relation"
)

// Sketch is the bounded-memory summary the streaming planner searches
// over: per-quasi-column leaf histograms plus a joint quasi-tuple count
// table, accumulated segment by segment. The Figure 8 search never
// reads raw rows — mono binning consumes leaf histograms and the
// multi-attribute search a joint histogram — so the sketch is lossless
// for planning purposes while holding O(distinct quasi-tuples) state:
// identifying and other columns are never retained, and rows collapse
// into tuple counts the moment a segment is ingested.
//
// Tuples are keyed by the mixed-radix composition of their per-column
// leaf NodeIDs (base = tree size); degenerate tree sets whose radix
// product overflows uint64 fall back to string keys. Leaf resolution
// runs once per distinct value via a per-column cache keyed by the
// value string — segment dictionaries are segment-local, so codes are
// never trusted across segments.
type Sketch struct {
	schema *relation.Schema
	quasi  []string
	colIdx []int
	trees  []*dht.Tree
	// leafCache memoizes value → leaf per column across segments.
	leafCache []map[string]dht.NodeID
	// hist is the pristine per-column leaf histogram (pre-suppression;
	// information loss is measured against it, exactly as SearchContext
	// measures against the original table's histograms).
	hist [][]int
	// bases/places compose the mixed-radix tuple key; fits reports
	// whether the product stays within uint64.
	bases, places []uint64
	fits          bool
	tuples        map[uint64]int
	tuplesStr     map[string]int
	rows          int
}

// NewSketch prepares an empty sketch for the schema's quasi columns.
// Every quasi column must have a DHT in trees.
func NewSketch(schema *relation.Schema, trees map[string]*dht.Tree) (*Sketch, error) {
	quasi := schema.QuasiColumns()
	if len(quasi) == 0 {
		return nil, fmt.Errorf("binning: schema has no quasi-identifying columns")
	}
	s := &Sketch{
		schema:    schema,
		quasi:     quasi,
		colIdx:    make([]int, len(quasi)),
		trees:     make([]*dht.Tree, len(quasi)),
		leafCache: make([]map[string]dht.NodeID, len(quasi)),
		hist:      make([][]int, len(quasi)),
		bases:     make([]uint64, len(quasi)),
		places:    make([]uint64, len(quasi)),
		fits:      true,
	}
	prod := uint64(1)
	for ci, col := range quasi {
		tree, ok := trees[col]
		if !ok || tree == nil {
			return nil, fmt.Errorf("binning: no DHT for quasi column %s", col)
		}
		idx, err := schema.Index(col)
		if err != nil {
			return nil, err
		}
		s.colIdx[ci] = idx
		s.trees[ci] = tree
		s.leafCache[ci] = make(map[string]dht.NodeID)
		s.hist[ci] = make([]int, tree.Size())
		base := uint64(tree.Size())
		s.bases[ci] = base
		if prod > math.MaxUint64/base {
			s.fits = false
		} else {
			prod *= base
		}
	}
	if s.fits {
		place := uint64(1)
		for ci := len(quasi) - 1; ci >= 0; ci-- {
			s.places[ci] = place
			place *= s.bases[ci]
		}
		s.tuples = make(map[uint64]int)
	} else {
		s.tuplesStr = make(map[string]int)
	}
	return s, nil
}

// Rows returns the number of rows ingested so far.
func (s *Sketch) Rows() int { return s.rows }

// Quasi returns the sketched quasi-column names in schema order.
func (s *Sketch) Quasi() []string { return s.quasi }

// Add folds one segment into the sketch. Leaf resolution happens per
// distinct dictionary entry (cached across segments by value string);
// the row loop is pure integer work. A resolution failure leaves the
// sketch untouched — all columns resolve before any count moves.
func (s *Sketch) Add(seg *relation.Table) error {
	segSchema := seg.Schema()
	colLeaves := make([][]dht.NodeID, len(s.quasi))
	colCodes := make([][]uint32, len(s.quasi))
	for ci, col := range s.quasi {
		idx := s.colIdx[ci]
		if segSchema != s.schema {
			i, err := segSchema.Index(col)
			if err != nil {
				return err
			}
			idx = i
		}
		tree := s.trees[ci]
		dict, codes := seg.DictValues(idx), seg.Codes(idx)
		used := make([]bool, len(dict))
		for _, code := range codes {
			used[code] = true
		}
		leafOf := make([]dht.NodeID, len(dict))
		for code, v := range dict {
			if !used[code] {
				continue
			}
			leaf, ok := s.leafCache[ci][v]
			if !ok {
				var err error
				leaf, err = tree.ResolveLeaf(v)
				if err != nil {
					return fmt.Errorf("binning: column %s value %q: %w", col, v, err)
				}
				s.leafCache[ci][v] = leaf
			}
			leafOf[code] = leaf
		}
		colLeaves[ci] = leafOf
		colCodes[ci] = codes
	}
	n := seg.NumRows()
	if s.fits {
		for row := 0; row < n; row++ {
			var key uint64
			for ci := range s.quasi {
				leaf := colLeaves[ci][colCodes[ci][row]]
				s.hist[ci][leaf]++
				key += uint64(leaf) * s.places[ci]
			}
			s.tuples[key]++
		}
	} else {
		var buf []byte
		for row := 0; row < n; row++ {
			buf = buf[:0]
			for ci := range s.quasi {
				leaf := colLeaves[ci][colCodes[ci][row]]
				s.hist[ci][leaf]++
				buf = strconv.AppendInt(buf, int64(leaf), 10)
				buf = append(buf, '|')
			}
			s.tuplesStr[string(buf)]++
		}
	}
	s.rows += n
	return nil
}

// decodeTuples materializes the distinct quasi-tuples as per-column
// leaf vectors plus a parallel count vector — the weighted form the
// shared multi-attribute core consumes. Map iteration order varies
// between runs, but every downstream computation (histograms, bin
// minima, violating sets, bin maps) is a sum or set union over the
// tuples, so the search outcome is order-independent.
func (s *Sketch) decodeTuples() ([][]dht.NodeID, []int, error) {
	ncols := len(s.quasi)
	var size int
	if s.fits {
		size = len(s.tuples)
	} else {
		size = len(s.tuplesStr)
	}
	leaves := make([][]dht.NodeID, ncols)
	for ci := range leaves {
		leaves[ci] = make([]dht.NodeID, 0, size)
	}
	counts := make([]int, 0, size)
	if s.fits {
		for key, n := range s.tuples {
			for ci := range leaves {
				leaves[ci] = append(leaves[ci], dht.NodeID((key/s.places[ci])%s.bases[ci]))
			}
			counts = append(counts, n)
		}
		return leaves, counts, nil
	}
	for key, n := range s.tuplesStr {
		parts := strings.Split(strings.TrimSuffix(key, "|"), "|")
		if len(parts) != ncols {
			return nil, nil, fmt.Errorf("binning: internal: malformed sketch tuple key %q", key)
		}
		for ci, p := range parts {
			id, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("binning: internal: malformed sketch tuple key %q: %w", key, err)
			}
			leaves[ci] = append(leaves[ci], dht.NodeID(id))
		}
		counts = append(counts, n)
	}
	return leaves, counts, nil
}

// sketchTuples is the post-suppression tuple state a sketch-backed
// SearchResult retains in place of a work table: enough to compute the
// generalized bin statistics AutoEpsilon needs without any rows.
type sketchTuples struct {
	cols   []string
	trees  []*dht.Tree
	leaves [][]dht.NodeID
	counts []int
}

// SearchSketch runs stages 1–3 of the Figure 8 algorithm entirely over
// a sketch — the streaming counterpart of SearchContext. The search
// consumes only the sketch's histograms and tuple counts, so its cost
// scales with distinct quasi-tuples instead of rows, and the outcome
// (frontiers, losses, suppression, stats) is identical to SearchContext
// on the materialized table. The sketch itself is never mutated; the
// aggressive rule's suppression runs on a private decoded copy.
func SearchSketch(ctx context.Context, sk *Sketch, cfg Config) (*SearchResult, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("binning: K must be >= 1, got %d", cfg.K)
	}
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("binning: Epsilon must be >= 0, got %d", cfg.Epsilon)
	}
	quasi := sk.quasi
	effectiveK := cfg.K + cfg.Epsilon

	// 1. Usage metrics in maximal-generalization-node form, from the
	// sketch's pristine histograms.
	maxGens := make(map[string]dht.GenSet, len(quasi))
	type colSetup struct {
		maxg dht.GenSet
	}
	setups, err := pool.MapCtx(ctx, cfg.Workers, len(quasi), func(i int) (colSetup, error) {
		col := quasi[i]
		tree, ok := cfg.Trees[col]
		if !ok || tree == nil {
			return colSetup{}, fmt.Errorf("binning: no DHT for quasi column %s", col)
		}
		if tree != sk.trees[i] {
			return colSetup{}, fmt.Errorf("binning: sketch for column %s was built over a different tree", col)
		}
		if g, ok := cfg.MaxGens[col]; ok {
			if g.Tree() != tree {
				return colSetup{}, fmt.Errorf("binning: maximal nodes for %s belong to a different tree", col)
			}
			return colSetup{maxg: g}, nil
		}
		if cfg.Metrics != nil {
			g, err := infoloss.DeriveMaxGen(tree, sk.hist[i], cfg.Metrics.Bound(col))
			if err != nil {
				return colSetup{}, err
			}
			return colSetup{maxg: g}, nil
		}
		return colSetup{maxg: dht.RootGenSet(tree)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, col := range quasi {
		maxGens[col] = setups[i].maxg
	}

	// 2. Mono-attribute binning. The conservative rule touches no
	// counts, so the columns fan out over the pristine marginals. The
	// aggressive rule suppresses tuples between columns (column i's
	// deletions change column i+1's marginal), so it decodes the joint
	// tuples once and walks the columns sequentially over the live set —
	// the weighted mirror of SearchContext's clone-and-suppress loop.
	minGens := make(map[string]dht.GenSet, len(quasi))
	monoStats := make(map[string]MonoStats, len(quasi))
	suppressed := 0
	suppressValues := make(map[string][]string)
	var tupleLeaves [][]dht.NodeID
	var tupleCounts []int

	if !cfg.Aggressive {
		type monoOut struct {
			gen   dht.GenSet
			stats MonoStats
		}
		outs, err := pool.MapCtx(ctx, cfg.Workers, len(quasi), func(i int) (monoOut, error) {
			col := quasi[i]
			g, st, err := MonoBinHist(sk.trees[i], maxGens[col], sk.hist[i], effectiveK, false)
			if err != nil {
				return monoOut{}, err
			}
			return monoOut{gen: g, stats: st}, nil
		})
		if err != nil {
			return nil, err
		}
		for i, col := range quasi {
			minGens[col] = outs[i].gen
			monoStats[col] = outs[i].stats
		}
		tupleLeaves, tupleCounts, err = sk.decodeTuples()
		if err != nil {
			return nil, err
		}
	} else {
		leaves, counts, err := sk.decodeTuples()
		if err != nil {
			return nil, err
		}
		alive := make([]bool, len(counts))
		for t := range alive {
			alive[t] = true
		}
		for ci, col := range quasi {
			tree := sk.trees[ci]
			hist := make([]int, tree.Size())
			for t, n := range counts {
				if alive[t] {
					hist[leaves[ci][t]] += n
				}
			}
			g, st, err := MonoBinHist(tree, maxGens[col], hist, effectiveK, true)
			if err != nil {
				return nil, err
			}
			if len(st.Deficient) > 0 {
				// Deficient bins: suppress their tuples, and record the
				// frontier values so the same suppression replays on any
				// row batch (Suppress) — e.g. when a plan built from this
				// search is applied to the streamed segments.
				values := make([]string, len(st.Deficient))
				for i, d := range st.Deficient {
					values[i] = tree.Value(d)
				}
				suppressValues[col] = values
				for t := range alive {
					if !alive[t] {
						continue
					}
					for _, d := range st.Deficient {
						if tree.IsAncestorOrSelf(d, leaves[ci][t]) {
							alive[t] = false
							suppressed += counts[t]
							break
						}
					}
				}
			}
			minGens[col] = g
			monoStats[col] = st
		}
		// Compact the survivors for the joint search.
		keep := 0
		for t := range alive {
			if alive[t] {
				keep++
			}
		}
		tupleLeaves = make([][]dht.NodeID, len(quasi))
		for ci := range tupleLeaves {
			tupleLeaves[ci] = make([]dht.NodeID, 0, keep)
		}
		tupleCounts = make([]int, 0, keep)
		for t := range alive {
			if !alive[t] {
				continue
			}
			for ci := range tupleLeaves {
				tupleLeaves[ci] = append(tupleLeaves[ci], leaves[ci][t])
			}
			tupleCounts = append(tupleCounts, counts[t])
		}
	}

	// 3. Multi-attribute binning over the weighted tuples — the same
	// strategy core MultiBinContext drives, with tuple multiplicities as
	// weights instead of one row per position.
	var multiStats MultiStats
	ultiGens, multiStats, err := multiBinLeaves(ctx, quasi, minGens, maxGens, effectiveK,
		cfg.Strategy, cfg.EnumLimit, cfg.Workers, tupleLeaves, tupleCounts, &multiStats)
	if err != nil {
		return nil, err
	}

	// Information loss per Equations (1)-(3), measured on the pristine
	// histograms (as SearchContext measures on the original table's).
	colLoss := make(map[string]float64, len(quasi))
	losses := make([]float64, 0, len(quasi))
	for i, col := range quasi {
		l, err := infoloss.ColumnLoss(ultiGens[col], sk.hist[i])
		if err != nil {
			return nil, err
		}
		colLoss[col] = l
		losses = append(losses, l)
	}
	avg := infoloss.NormalizedLoss(losses)
	if cfg.Metrics != nil {
		if err := cfg.Metrics.Check(colLoss); err != nil {
			return nil, err
		}
	}

	return &SearchResult{
		MinGens:        minGens,
		MaxGens:        maxGens,
		UltiGens:       ultiGens,
		ColumnLoss:     colLoss,
		AvgLoss:        avg,
		EffectiveK:     effectiveK,
		Suppressed:     suppressed,
		SuppressValues: suppressValues,
		MonoStats:      monoStats,
		MultiStats:     multiStats,
		work:           nil,
		tuples: &sketchTuples{
			cols:   quasi,
			trees:  sk.trees,
			leaves: tupleLeaves,
			counts: tupleCounts,
		},
	}, nil
}

// GeneralizedBins returns the bin-size map the searched table would
// have after generalizing each of cols to its frontier in gens — the
// statistic EpsilonForMark consumes. A table-backed result defers to
// anonymity.GeneralizedBins over the work table; a sketch-backed result
// computes the identical map from its retained post-suppression tuple
// counts (keys match because a generalized cell value is exactly the
// value of the frontier member covering the cell's leaf).
func (s *SearchResult) GeneralizedBins(cols []string, gens map[string]dht.GenSet) (map[string]int, error) {
	if s.work != nil {
		return anonymity.GeneralizedBins(s.work, cols, gens)
	}
	if s.tuples == nil {
		return nil, fmt.Errorf("binning: search result retains no data for bin statistics")
	}
	st := s.tuples
	colAt := make([]int, len(cols))
	genVal := make([]map[dht.NodeID]string, len(cols))
	for i, c := range cols {
		ci := -1
		for j, col := range st.cols {
			if col == c {
				ci = j
				break
			}
		}
		if ci < 0 {
			return nil, fmt.Errorf("anonymity: no generalization frontier for column %s", c)
		}
		if _, ok := gens[c]; !ok {
			return nil, fmt.Errorf("anonymity: no generalization frontier for column %s", c)
		}
		colAt[i] = ci
		genVal[i] = make(map[dht.NodeID]string)
	}
	out := make(map[string]int)
	var key []byte
	ntuples := len(st.counts)
	for t := 0; t < ntuples; t++ {
		key = key[:0]
		for i, c := range cols {
			ci := colAt[i]
			leaf := st.leaves[ci][t]
			g, ok := genVal[i][leaf]
			if !ok {
				tree := st.trees[ci]
				member, covered := gens[c].CoverOf(leaf)
				if !covered {
					return nil, fmt.Errorf("anonymity: column %s value %q: %w", c, tree.Value(leaf),
						fmt.Errorf("dht: value %q sits above the generalization frontier of %s", tree.Value(leaf), tree.Attr()))
				}
				g = tree.Value(member)
				genVal[i][leaf] = g
			}
			if i > 0 {
				key = append(key, '\x1f')
			}
			key = append(key, g...)
		}
		out[string(key)] += st.counts[t]
	}
	return out, nil
}
