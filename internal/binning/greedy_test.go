package binning

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dht"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// greedyBoth runs the incremental and the rescan ascent on the same
// inputs and returns both outcomes.
func greedyBoth(t *testing.T, tbl *relation.Table, cols []string, ming, maxg map[string]dht.GenSet, k, workers int) (inc, ref map[string]dht.GenSet, incStats, refStats MultiStats, incErr, refErr error) {
	t.Helper()
	ctx := context.Background()
	rowLeaves, err := resolveRowLeaves(ctx, tbl, cols, ming)
	if err != nil {
		t.Fatal(err)
	}
	var s1, s2 MultiStats
	inc, incStats, incErr = multiGreedy(ctx, cols, ming, maxg, k, workers, rowLeaves, nil, &s1)
	ref, refStats, refErr = multiGreedyRescan(ctx, cols, ming, maxg, k, workers, rowLeaves, nil, &s2)
	return inc, ref, incStats, refStats, incErr, refErr
}

func gensEqual(a, b map[string]dht.GenSet) error {
	if len(a) != len(b) {
		return fmt.Errorf("column counts differ: %d vs %d", len(a), len(b))
	}
	for col, ga := range a {
		gb, ok := b[col]
		if !ok {
			return fmt.Errorf("column %s missing", col)
		}
		na, nb := ga.Nodes(), gb.Nodes()
		if len(na) != len(nb) {
			return fmt.Errorf("column %s: %d vs %d members", col, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				return fmt.Errorf("column %s member %d: node %d vs %d", col, i, na[i], nb[i])
			}
		}
	}
	return nil
}

// TestMultiGreedyMatchesRescan is the differential guard for the
// incremental ascent: on random trees, random skewed data and random k,
// the delta-updated histogram walk must take exactly the merge sequence
// of the full-rescan reference — same frontiers, same merge count, same
// unsatisfiability verdicts.
func TestMultiGreedyMatchesRescan(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nCols := 2 + rng.Intn(2)
		cols := make([]string, nCols)
		schemaCols := make([]relation.Column, 0, nCols)
		trees := make(map[string]*dht.Tree, nCols)
		ming := make(map[string]dht.GenSet, nCols)
		maxg := make(map[string]dht.GenSet, nCols)
		for ci := range cols {
			cols[ci] = fmt.Sprintf("q%d", ci)
			schemaCols = append(schemaCols, relation.Column{Name: cols[ci], Kind: relation.QuasiCategorical})
		}
		schema, err := relation.NewSchema(schemaCols)
		if err != nil {
			t.Fatal(err)
		}
		tbl := relation.NewTable(schema)
		rows := 100 + rng.Intn(900)
		colValues := make([][]string, nCols)
		for ci, col := range cols {
			tree := randomCatTree(rng)
			trees[col] = tree
			ming[col] = dht.LeafGenSet(tree)
			maxg[col] = dht.RootGenSet(tree)
			colValues[ci] = randomValues(tree, rows, rng)
		}
		row := make([]string, nCols)
		for r := 0; r < rows; r++ {
			for ci := range cols {
				row[ci] = colValues[ci][r]
			}
			if err := tbl.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		k := 1 + rng.Intn(20)
		workers := 1 + rng.Intn(4)

		inc, ref, incStats, refStats, incErr, refErr := greedyBoth(t, tbl, cols, ming, maxg, k, workers)
		if (incErr == nil) != (refErr == nil) {
			t.Fatalf("seed %d: verdicts differ: incremental %v, rescan %v", seed, incErr, refErr)
		}
		if incErr != nil {
			if incErr.Error() != refErr.Error() {
				t.Fatalf("seed %d: error text differs:\n  inc: %v\n  ref: %v", seed, incErr, refErr)
			}
			continue
		}
		if err := gensEqual(inc, ref); err != nil {
			t.Fatalf("seed %d: frontiers differ: %v", seed, err)
		}
		if incStats.GreedyMerges != refStats.GreedyMerges {
			t.Fatalf("seed %d: merges %d vs %d", seed, incStats.GreedyMerges, refStats.GreedyMerges)
		}
	}
}

// greedyBenchInputs builds the BenchmarkMultiBinGreedy fixture: 20k
// synthetic rows, per-column mono frontiers at k=25.
func greedyBenchInputs(tb testing.TB) (*relation.Table, []string, map[string]dht.GenSet, map[string]dht.GenSet) {
	tb.Helper()
	tbl, err := datagen.Generate(datagen.Config{Rows: 20000, Seed: 1, Correlate: true, ZipfS: 1.2})
	if err != nil {
		tb.Fatal(err)
	}
	trees := ontology.Trees()
	quasi := tbl.Schema().QuasiColumns()
	ming := map[string]dht.GenSet{}
	maxg := map[string]dht.GenSet{}
	for _, col := range quasi {
		values, err := tbl.Column(col)
		if err != nil {
			tb.Fatal(err)
		}
		mg := dht.RootGenSet(trees[col])
		g, _, err := MonoBin(trees[col], mg, values, 25, false)
		if err != nil {
			tb.Fatal(err)
		}
		ming[col] = g
		maxg[col] = mg
	}
	return tbl, quasi, ming, maxg
}

// TestMultiGreedyIncrementalFaster is the perf regression guard for the
// acceptance criterion: the incremental ascent must beat the rescan
// reference by >= 1.3x on the 20k benchmark fixture (the measured gap
// is far larger; 1.3x keeps the bound robust on noisy CI runners).
func TestMultiGreedyIncrementalFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-row ascent x4 in -short mode")
	}
	tbl, cols, ming, maxg := greedyBenchInputs(t)
	ctx := context.Background()
	rowLeaves, err := resolveRowLeaves(ctx, tbl, cols, ming)
	if err != nil {
		t.Fatal(err)
	}
	timeOf := func(fn func() error) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 2; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	incDur := timeOf(func() error {
		var s MultiStats
		_, _, err := multiGreedy(ctx, cols, ming, maxg, 25, 1, rowLeaves, nil, &s)
		return err
	})
	refDur := timeOf(func() error {
		var s MultiStats
		_, _, err := multiGreedyRescan(ctx, cols, ming, maxg, 25, 1, rowLeaves, nil, &s)
		return err
	})
	if incDur*13 > refDur*10 {
		t.Errorf("incremental ascent = %v vs rescan = %v; want >= 1.3x speedup", incDur, refDur)
	}
}

// TestMultiGreedyWorkersIdentical pins determinism of the incremental
// ascent across worker counts on the benchmark fixture.
func TestMultiGreedyWorkersIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-row ascent x3 in -short mode")
	}
	tbl, cols, ming, maxg := greedyBenchInputs(t)
	var baseline map[string]dht.GenSet
	for _, workers := range []int{1, 2, 8} {
		out, _, err := MultiBin(tbl, cols, ming, maxg, 25, StrategyGreedy, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = out
		} else if err := gensEqual(out, baseline); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}
