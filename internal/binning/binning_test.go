package binning

import (
	"strings"
	"testing"

	"repro/internal/anonymity"
	"repro/internal/crypt"
	"repro/internal/datagen"
	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// roleTree: a small Figure-1-style hierarchy.
func roleTree(t *testing.T) *dht.Tree {
	t.Helper()
	tree, err := dht.NewCategorical("role", dht.Spec{
		Value: "Person",
		Children: []dht.Spec{
			{Value: "Medical", Children: []dht.Spec{
				{Value: "Doctor", Children: []dht.Spec{{Value: "Physician"}, {Value: "Surgeon"}}},
				{Value: "Paramedic", Children: []dht.Spec{{Value: "Nurse"}, {Value: "Pharmacist"}}},
			}},
			{Value: "Admin", Children: []dht.Spec{{Value: "Clerk"}, {Value: "Manager"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func repeat(v string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestMonoBinDownward(t *testing.T) {
	tree := roleTree(t)
	maxg := dht.RootGenSet(tree)
	// 6 Physicians, 6 Surgeons, 3 Nurses, 3 Pharmacists, 5 Clerks, 1 Manager.
	values := append(repeat("Physician", 6), repeat("Surgeon", 6)...)
	values = append(values, repeat("Nurse", 3)...)
	values = append(values, repeat("Pharmacist", 3)...)
	values = append(values, repeat("Clerk", 5)...)
	values = append(values, repeat("Manager", 1)...)

	gen, stats, err := MonoBin(tree, maxg, values, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	// k=5: Physician(6) and Surgeon(6) are individually fine, so Doctor
	// splits to leaves. Paramedic(6) stays (children have 3 < 5).
	// Admin(6) stays (Manager has 1 < 5).
	got := gen.String()
	for _, want := range []string{"Physician", "Surgeon", "Paramedic", "Admin"} {
		if !strings.Contains(got, want) {
			t.Errorf("frontier %s missing %s", got, want)
		}
	}
	if strings.Contains(got, "Nurse") || strings.Contains(got, "Clerk") {
		t.Errorf("frontier descended below k-anonymity: %s", got)
	}
	if stats.NodesVisited == 0 {
		t.Error("NodesVisited not counted")
	}
	if len(stats.Deficient) != 0 {
		t.Errorf("conservative rule produced deficient bins: %v", stats.Deficient)
	}

	// Verify the minimality invariant: every non-leaf member with data
	// has at least one child below k.
	hist, _ := infoloss.LeafHistogram(tree, values)
	sub := infoloss.SubtreeCounts(tree, hist)
	for _, nd := range gen.Nodes() {
		if tree.Node(nd).IsLeaf() || sub[nd] == 0 {
			continue
		}
		allOK := true
		for _, c := range tree.Children(nd) {
			if sub[c] < 5 {
				allOK = false
			}
		}
		if allOK {
			t.Errorf("member %q is not minimal: all children satisfy k", tree.Value(nd))
		}
	}
}

func TestMonoBinRespectsMaxGens(t *testing.T) {
	tree := roleTree(t)
	// Usage metrics: no generalization above {Medical, Admin}.
	maxg, err := dht.NewGenSetFromValues(tree, []string{"Medical", "Admin"})
	if err != nil {
		t.Fatal(err)
	}
	values := append(repeat("Physician", 10), repeat("Clerk", 10)...)
	gen, _, err := MonoBin(tree, maxg, values, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !gen.AtOrBelow(maxg) {
		t.Errorf("frontier %v above usage metrics %v", gen, maxg)
	}
}

func TestMonoBinNotBinnable(t *testing.T) {
	tree := roleTree(t)
	maxg, _ := dht.NewGenSetFromValues(tree, []string{"Medical", "Admin"})
	// Admin has only 2 tuples: not binnable at k=3 under these metrics.
	values := append(repeat("Physician", 10), repeat("Clerk", 2)...)
	if _, _, err := MonoBin(tree, maxg, values, 3, false); err == nil {
		t.Error("deficient maximal node accepted")
	}
	// With the root as maximal node it is binnable (one big bin).
	gen, _, err := MonoBin(tree, dht.RootGenSet(tree), values, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != 1 {
		t.Errorf("expected root-only frontier, got %v", gen)
	}
}

func TestMonoBinEmptyMaxNodeKept(t *testing.T) {
	tree := roleTree(t)
	maxg, _ := dht.NewGenSetFromValues(tree, []string{"Medical", "Admin"})
	// No admin tuples at all: empty bin is fine.
	values := repeat("Physician", 10)
	gen, _, err := MonoBin(tree, maxg, values, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	admin, _ := tree.ByValue("Admin")
	if !gen.Contains(admin) {
		t.Errorf("empty maximal node must stay on the frontier: %v", gen)
	}
}

func TestMonoBinValidation(t *testing.T) {
	tree := roleTree(t)
	other := roleTree(t)
	if _, _, err := MonoBin(tree, dht.RootGenSet(other), nil, 3, false); err == nil {
		t.Error("foreign maxgens accepted")
	}
	if _, _, err := MonoBin(tree, dht.RootGenSet(tree), nil, 0, false); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := MonoBin(tree, dht.RootGenSet(tree), []string{"bogus"}, 2, false); err == nil {
		t.Error("bogus value accepted")
	}
}

func TestMonoBinAggressive(t *testing.T) {
	tree := roleTree(t)
	maxg := dht.RootGenSet(tree)
	// Physician 6, Surgeon 1: conservative keeps Doctor; aggressive
	// descends (Physician satisfies k=5) and reports Surgeon deficient.
	values := append(repeat("Physician", 6), repeat("Surgeon", 1)...)
	values = append(values, repeat("Nurse", 6)...)
	values = append(values, repeat("Pharmacist", 6)...)
	values = append(values, repeat("Clerk", 6)...)
	values = append(values, repeat("Manager", 6)...)

	consGen, _, err := MonoBin(tree, maxg, values, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	aggGen, aggStats, err := MonoBin(tree, maxg, values, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if !aggGen.AtOrBelow(consGen) {
		t.Errorf("aggressive %v should be at-or-below conservative %v", aggGen, consGen)
	}
	phys, _ := tree.ByValue("Physician")
	if !aggGen.Contains(phys) {
		t.Errorf("aggressive should expose Physician: %v", aggGen)
	}
	if len(aggStats.Deficient) != 1 || tree.Value(aggStats.Deficient[0]) != "Surgeon" {
		t.Errorf("Deficient = %v, want [Surgeon]", aggStats.Deficient)
	}
}

func TestMonoBinUpwardAgreesOnResult(t *testing.T) {
	tree := roleTree(t)
	maxg := dht.RootGenSet(tree)
	values := append(repeat("Physician", 6), repeat("Surgeon", 6)...)
	values = append(values, repeat("Nurse", 3)...)
	values = append(values, repeat("Pharmacist", 3)...)
	values = append(values, repeat("Clerk", 5)...)
	values = append(values, repeat("Manager", 1)...)

	down, _, err := MonoBin(tree, maxg, values, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	up, _, err := MonoBinUpward(tree, maxg, values, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Both must be valid k=5 frontiers; upward merges whole sibling
	// groups so it can be equal or comparable to the downward result.
	hist, _ := infoloss.LeafHistogram(tree, values)
	sub := infoloss.SubtreeCounts(tree, hist)
	for _, g := range []dht.GenSet{down, up} {
		for _, nd := range g.Nodes() {
			if n := sub[nd]; n > 0 && n < 5 {
				t.Errorf("frontier %v has bin %q of size %d < 5", g, tree.Value(nd), n)
			}
		}
	}
	if !up.Equal(down) {
		t.Logf("note: upward %v differs from downward %v (both valid)", up, down)
	}
}

func TestMonoBinUpwardNotBinnable(t *testing.T) {
	tree := roleTree(t)
	maxg, _ := dht.NewGenSetFromValues(tree, []string{"Medical", "Admin"})
	values := append(repeat("Physician", 10), repeat("Clerk", 2)...)
	if _, _, err := MonoBinUpward(tree, maxg, values, 3); err == nil {
		t.Error("upward binning climbed past the usage metrics")
	}
	if _, _, err := MonoBinUpward(tree, dht.RootGenSet(tree), nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// twoColumnTable builds a table over role + a tiny numeric age tree where
// each column satisfies k individually but the combination does not —
// the §4.2 motivating example for multi-attribute binning.
func twoColumnTable(t *testing.T) (*relation.Table, map[string]*dht.Tree) {
	t.Helper()
	ageTree, err := dht.NewNumeric("age", 0, 80, []float64{20, 40, 60})
	if err != nil {
		t.Fatal(err)
	}
	trees := map[string]*dht.Tree{"age": ageTree, "role": roleTree(t)}
	tbl := relation.NewTable(relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.Identifying},
		relation.Column{Name: "age", Kind: relation.QuasiNumeric},
		relation.Column{Name: "role", Kind: relation.QuasiCategorical},
	))
	// ages cluster in [0,20) and [40,60); roles split Physician/Clerk.
	rows := [][]string{
		{"1", "5", "Physician"}, {"2", "7", "Physician"}, {"3", "12", "Clerk"},
		{"4", "15", "Clerk"}, {"5", "45", "Physician"}, {"6", "48", "Clerk"},
		{"7", "52", "Physician"}, {"8", "55", "Clerk"}, {"9", "3", "Physician"},
		{"10", "18", "Clerk"}, {"11", "44", "Physician"}, {"12", "59", "Clerk"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl, trees
}

func TestMultiBinExhaustiveAndGreedy(t *testing.T) {
	tbl, trees := twoColumnTable(t)
	cols := []string{"age", "role"}
	k := 3

	mingends := map[string]dht.GenSet{}
	maxgends := map[string]dht.GenSet{}
	for _, col := range cols {
		values, _ := tbl.Column(col)
		maxg := dht.RootGenSet(trees[col])
		g, _, err := MonoBin(trees[col], maxg, values, k, false)
		if err != nil {
			t.Fatal(err)
		}
		mingends[col] = g
		maxgends[col] = maxg
	}

	for _, strat := range []Strategy{StrategyExhaustive, StrategyGreedy, StrategyAuto} {
		ulti, stats, err := MultiBin(tbl, cols, mingends, maxgends, k, strat, 0, 1)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		// Apply the generalization and verify joint k-anonymity.
		gen := tbl.Clone()
		for _, col := range cols {
			ci, _ := gen.Schema().Index(col)
			for i := 0; i < gen.NumRows(); i++ {
				v, err := ulti[col].GeneralizeValue(gen.CellAt(i, ci))
				if err != nil {
					t.Fatal(err)
				}
				gen.SetCellAt(i, ci, v)
			}
		}
		ok, err := anonymity.SatisfiesK(gen, cols, k)
		if err != nil || !ok {
			t.Errorf("%v: joint k-anonymity violated", strat)
		}
		// Bounds respected.
		for _, col := range cols {
			if !mingends[col].AtOrBelow(ulti[col]) || !ulti[col].AtOrBelow(maxgends[col]) {
				t.Errorf("%v: %s frontier out of bounds", strat, col)
			}
		}
		if strat == StrategyExhaustive && stats.Candidates == 0 {
			t.Error("exhaustive did not count candidates")
		}
	}
}

func TestMultiBinExhaustiveMatchesGreedyValidity(t *testing.T) {
	// Exhaustive finds the loss-minimal valid frontier; greedy must find
	// a valid one with loss >= exhaustive's.
	tbl, trees := twoColumnTable(t)
	cols := []string{"age", "role"}
	k := 3
	mingends := map[string]dht.GenSet{}
	maxgends := map[string]dht.GenSet{}
	for _, col := range cols {
		values, _ := tbl.Column(col)
		maxg := dht.RootGenSet(trees[col])
		g, _, err := MonoBin(trees[col], maxg, values, k, false)
		if err != nil {
			t.Fatal(err)
		}
		mingends[col] = g
		maxgends[col] = maxg
	}
	ex, _, err := MultiBin(tbl, cols, mingends, maxgends, k, StrategyExhaustive, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	gr, _, err := MultiBin(tbl, cols, mingends, maxgends, k, StrategyGreedy, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	exLoss := (ex["age"].SpecificityLoss() + ex["role"].SpecificityLoss()) / 2
	grLoss := (gr["age"].SpecificityLoss() + gr["role"].SpecificityLoss()) / 2
	if grLoss+1e-12 < exLoss {
		t.Errorf("greedy loss %v beat exhaustive optimum %v", grLoss, exLoss)
	}
}

func TestMultiBinValidation(t *testing.T) {
	tbl, trees := twoColumnTable(t)
	cols := []string{"age", "role"}
	ming := map[string]dht.GenSet{"age": dht.LeafGenSet(trees["age"]), "role": dht.LeafGenSet(trees["role"])}
	maxg := map[string]dht.GenSet{"age": dht.RootGenSet(trees["age"]), "role": dht.RootGenSet(trees["role"])}

	if _, _, err := MultiBin(tbl, cols, ming, maxg, 0, StrategyAuto, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := MultiBin(tbl, nil, ming, maxg, 2, StrategyAuto, 0, 1); err == nil {
		t.Error("no columns accepted")
	}
	if _, _, err := MultiBin(tbl, cols, map[string]dht.GenSet{}, maxg, 2, StrategyAuto, 0, 1); err == nil {
		t.Error("missing mingends accepted")
	}
	if _, _, err := MultiBin(tbl, cols, ming, map[string]dht.GenSet{}, 2, StrategyAuto, 0, 1); err == nil {
		t.Error("missing maxgends accepted")
	}
	// reversed bounds
	rev := map[string]dht.GenSet{"age": dht.RootGenSet(trees["age"]), "role": dht.LeafGenSet(trees["role"])}
	revMax := map[string]dht.GenSet{"age": dht.LeafGenSet(trees["age"]), "role": dht.RootGenSet(trees["role"])}
	if _, _, err := MultiBin(tbl, cols, rev, revMax, 2, StrategyAuto, 0, 1); err == nil {
		t.Error("reversed bounds accepted")
	}
	if _, _, err := MultiBin(tbl, cols, ming, maxg, 2, Strategy(99), 0, 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestMultiBinEmptyTable(t *testing.T) {
	tbl, trees := twoColumnTable(t)
	empty := relation.NewTable(tbl.Schema())
	cols := []string{"age", "role"}
	ming := map[string]dht.GenSet{"age": dht.LeafGenSet(trees["age"]), "role": dht.LeafGenSet(trees["role"])}
	maxg := map[string]dht.GenSet{"age": dht.RootGenSet(trees["age"]), "role": dht.RootGenSet(trees["role"])}
	ulti, _, err := MultiBin(empty, cols, ming, maxg, 5, StrategyAuto, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ulti["age"].Equal(ming["age"]) {
		t.Error("empty table should keep minimal nodes")
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyAuto.String() != "auto" || StrategyExhaustive.String() != "exhaustive" ||
		StrategyGreedy.String() != "greedy" || Strategy(9).String() != "Strategy(9)" {
		t.Error("Strategy.String wrong")
	}
}

func TestRunEndToEnd(t *testing.T) {
	tbl, err := datagen.Generate(datagen.Config{Rows: 1500, Seed: 2, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := crypt.NewCipher([]byte("hospital-master-key"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		K:     10,
		Trees: ontology.Trees(),
	}
	res, err := Run(tbl, cfg, cipher)
	if err != nil {
		t.Fatal(err)
	}
	quasi := tbl.Schema().QuasiColumns()
	ok, err := anonymity.SatisfiesK(res.Table, quasi, 10)
	if err != nil || !ok {
		t.Error("binned table violates k-anonymity")
	}
	// identifying column must be encrypted and decryptable
	orig, _ := tbl.Column(ontology.ColSSN)
	enc, _ := res.Table.Column(ontology.ColSSN)
	for i := 0; i < 20; i++ {
		if enc[i] == orig[i] {
			t.Fatalf("row %d: SSN not encrypted", i)
		}
		back, err := cipher.DecryptString(enc[i])
		if err != nil || back != orig[i] {
			t.Fatalf("row %d: decrypt = %q, %v; want %q", i, back, err, orig[i])
		}
	}
	// losses are sane and frontiers ordered
	for _, col := range quasi {
		l := res.ColumnLoss[col]
		if l < 0 || l > 1 {
			t.Errorf("%s loss = %v", col, l)
		}
		if !res.MinGens[col].AtOrBelow(res.MaxGens[col]) {
			t.Errorf("%s: min not below max", col)
		}
		if !res.MinGens[col].AtOrBelow(res.UltiGens[col]) || !res.UltiGens[col].AtOrBelow(res.MaxGens[col]) {
			t.Errorf("%s: ultimate frontier out of [min,max]", col)
		}
	}
	if res.AvgLoss < 0 || res.AvgLoss > 1 {
		t.Errorf("AvgLoss = %v", res.AvgLoss)
	}
	if res.EffectiveK != 10 {
		t.Errorf("EffectiveK = %d", res.EffectiveK)
	}
	if res.Suppressed != 0 {
		t.Errorf("conservative run suppressed %d rows", res.Suppressed)
	}
	if res.Table.NumRows() != tbl.NumRows() {
		t.Error("row count changed")
	}
}

// TestSearchTransformEqualsRun pins the staged decomposition: the
// search stage followed by the transform stage must reproduce Run
// exactly — frontiers, losses, suppression and the binned table — and
// the recorded SuppressValues must replay the aggressive rule's row
// removal on a fresh clone of the input.
func TestSearchTransformEqualsRun(t *testing.T) {
	tbl, err := datagen.Generate(datagen.Config{Rows: 1500, Seed: 2, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := crypt.NewCipher([]byte("staged"))
	if err != nil {
		t.Fatal(err)
	}
	for _, aggressive := range []bool{false, true} {
		cfg := Config{K: 20, Trees: ontology.Trees(), Aggressive: aggressive}
		run, err := Run(tbl, cfg, cipher)
		if err != nil {
			t.Fatal(err)
		}
		search, err := SearchContext(t.Context(), tbl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for col, g := range run.UltiGens {
			if !search.UltiGens[col].Equal(g) {
				t.Errorf("aggressive=%v: column %s: search ulti frontier differs from Run", aggressive, col)
			}
			if !search.MinGens[col].Equal(run.MinGens[col]) {
				t.Errorf("aggressive=%v: column %s: search min frontier differs from Run", aggressive, col)
			}
		}
		if search.AvgLoss != run.AvgLoss || search.EffectiveK != run.EffectiveK || search.Suppressed != run.Suppressed {
			t.Errorf("aggressive=%v: search metrics differ from Run", aggressive)
		}
		out, err := TransformContext(t.Context(), search.Work(), search.UltiGens, search.EffectiveK, cipher, 0)
		if err != nil {
			t.Fatal(err)
		}
		var a, b strings.Builder
		if err := run.Table.WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := out.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("aggressive=%v: staged transform differs from Run", aggressive)
		}
		if !aggressive {
			if len(search.SuppressValues) != 0 {
				t.Errorf("conservative search recorded suppressions: %v", search.SuppressValues)
			}
			continue
		}
		// Replay: the recorded deficient values must remove exactly the
		// rows the interleaved search removed. (The fixture must keep
		// the path honest: some rows have to fall.)
		if search.Suppressed == 0 {
			t.Fatal("aggressive fixture suppressed nothing; the replay check is vacuous")
		}
		replay := tbl.Clone()
		n, err := Suppress(replay, cfg.Trees, search.SuppressValues)
		if err != nil {
			t.Fatal(err)
		}
		if n != search.Suppressed {
			t.Errorf("replayed suppression removed %d rows, search removed %d", n, search.Suppressed)
		}
		if replay.NumRows() != search.Work().NumRows() {
			t.Errorf("replayed table has %d rows, search work has %d", replay.NumRows(), search.Work().NumRows())
		}
		var c, d strings.Builder
		if err := replay.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := search.Work().WriteCSV(&d); err != nil {
			t.Fatal(err)
		}
		if c.String() != d.String() {
			t.Error("replayed suppression differs from the search's interleaved suppression")
		}
	}
}

func TestRunWithEpsilon(t *testing.T) {
	tbl, err := datagen.Generate(datagen.Config{Rows: 1000, Seed: 4, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	cipher, _ := crypt.NewCipher([]byte("key"))
	res, err := Run(tbl, Config{K: 8, Epsilon: 4, Trees: ontology.Trees()}, cipher)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := anonymity.SatisfiesK(res.Table, tbl.Schema().QuasiColumns(), 12)
	if !ok {
		t.Error("k+epsilon not enforced")
	}
	if res.EffectiveK != 12 {
		t.Errorf("EffectiveK = %d, want 12", res.EffectiveK)
	}
}

func TestRunWithMetrics(t *testing.T) {
	tbl, err := datagen.Generate(datagen.Config{Rows: 1000, Seed: 6, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	cipher, _ := crypt.NewCipher([]byte("key"))
	// Joint k-anonymity over five quasi columns forces most columns near
	// the root (the paper's Figure 11 shows 90%+ multi-attribute loss),
	// so only the age column gets a real bound here; the others stay
	// unconstrained (bound 1).
	metrics := &infoloss.Metrics{
		PerColumn: map[string]float64{ontology.ColAge: 0.6},
		Avg:       1,
	}
	res, err := Run(tbl, Config{K: 5, Trees: ontology.Trees(), Metrics: metrics}, cipher)
	if err != nil {
		t.Fatal(err)
	}
	for col, l := range res.ColumnLoss {
		if l > metrics.Bound(col)+1e-9 {
			t.Errorf("%s loss %v exceeds metric bound %v", col, l, metrics.Bound(col))
		}
	}
	// The derived age frontier must sit strictly below the root.
	if res.MaxGens[ontology.ColAge].Len() < 2 {
		t.Errorf("age maximal nodes = %v, want a frontier below the root", res.MaxGens[ontology.ColAge])
	}
}

func TestRunValidation(t *testing.T) {
	tbl, _ := datagen.Generate(datagen.Config{Rows: 100, Seed: 1, Correlate: true, ZipfS: 1.2})
	cipher, _ := crypt.NewCipher([]byte("key"))
	if _, err := Run(tbl, Config{K: 0, Trees: ontology.Trees()}, cipher); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(tbl, Config{K: 5, Epsilon: -1, Trees: ontology.Trees()}, cipher); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Run(tbl, Config{K: 5, Trees: map[string]*dht.Tree{}}, cipher); err == nil {
		t.Error("missing trees accepted")
	}
	if _, err := Run(tbl, Config{K: 5, Trees: ontology.Trees()}, nil); err == nil {
		t.Error("nil cipher with identifying columns accepted")
	}
}

func TestEpsilonForMark(t *testing.T) {
	bins := map[string]int{"a": 50, "b": 30, "c": 20}
	// s=50, S=100, |wmd|=60 -> eps = ceil(0.5*60) = 30
	if got := EpsilonForMark(bins, 60); got != 30 {
		t.Errorf("EpsilonForMark = %d, want 30", got)
	}
	if got := EpsilonForMark(map[string]int{}, 60); got != 0 {
		t.Errorf("empty bins eps = %d, want 0", got)
	}
}

func TestSortedColumns(t *testing.T) {
	tbl, _ := datagen.Generate(datagen.Config{Rows: 10, Seed: 1, Correlate: true, ZipfS: 1.2})
	cols := SortedColumns(tbl)
	if len(cols) != 5 {
		t.Fatalf("cols = %v", cols)
	}
	for i := 1; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			t.Errorf("not sorted: %v", cols)
		}
	}
}
