package binning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dht"
	"repro/internal/infoloss"
)

// randomCatTree builds a random categorical tree (no single-child nodes).
func randomCatTree(rng *rand.Rand) *dht.Tree {
	counter := 0
	var build func(depth int) dht.Spec
	build = func(depth int) dht.Spec {
		counter++
		s := dht.Spec{Value: quickName(counter)}
		if depth >= 3 {
			return s
		}
		fanout := rng.Intn(4)
		if depth == 0 && fanout < 2 {
			fanout = 2
		}
		if fanout == 1 {
			fanout = 2
		}
		for i := 0; i < fanout; i++ {
			s.Children = append(s.Children, build(depth+1))
		}
		return s
	}
	tree, err := dht.NewCategorical("q", build(0))
	if err != nil {
		panic(err)
	}
	return tree
}

func quickName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := []byte{}
	for i > 0 {
		name = append(name, letters[i%26])
		i /= 26
	}
	return "v" + string(name)
}

// randomValues draws n skewed leaf values.
func randomValues(tree *dht.Tree, n int, rng *rand.Rand) []string {
	leaves := tree.Leaves()
	out := make([]string, n)
	for i := range out {
		// head-heavy: square the uniform draw
		idx := int(float64(len(leaves)) * rng.Float64() * rng.Float64())
		if idx >= len(leaves) {
			idx = len(leaves) - 1
		}
		out[i] = tree.Value(leaves[idx])
	}
	return out
}

// Property: on random trees, random data and random k, the downward
// mono-binning frontier (a) is a valid generalization, (b) gives every
// non-empty bin at least k tuples, and (c) is minimal under the
// conservative rule (every splittable member has an under-k child).
func TestQuickMonoBinInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomCatTree(rng)
		n := int(nRaw)%800 + 50
		k := int(kRaw)%20 + 1
		if k > n {
			k = n
		}
		values := randomValues(tree, n, rng)
		maxg := dht.RootGenSet(tree)
		gen, _, err := MonoBin(tree, maxg, values, k, false)
		if err != nil {
			// only legitimate when the whole table is smaller than k
			return n < k
		}
		hist, err := infoloss.LeafHistogram(tree, values)
		if err != nil {
			return false
		}
		sub := infoloss.SubtreeCounts(tree, hist)
		// (a) validity via re-construction
		if _, err := dht.NewGenSet(tree, gen.Nodes()); err != nil {
			return false
		}
		for _, nd := range gen.Nodes() {
			// (b) k-anonymity per non-empty bin
			if c := sub[nd]; c > 0 && c < k {
				return false
			}
			// (c) minimality
			if !tree.Node(nd).IsLeaf() && sub[nd] > 0 {
				allOK := true
				for _, c := range tree.Children(nd) {
					if sub[c] < k {
						allOK = false
						break
					}
				}
				if allOK {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the upward comparator also lands on a valid k-anonymous
// frontier whenever it succeeds, and downward loss never exceeds upward
// loss by more than the granularity the different search orders allow
// — both must be within [0, 1].
func TestQuickUpwardInvariants(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomCatTree(rng)
		values := randomValues(tree, 400, rng)
		k := int(kRaw)%15 + 1
		maxg := dht.RootGenSet(tree)
		up, _, err := MonoBinUpward(tree, maxg, values, k)
		if err != nil {
			return true // not binnable upward under these draws
		}
		hist, _ := infoloss.LeafHistogram(tree, values)
		sub := infoloss.SubtreeCounts(tree, hist)
		for _, nd := range up.Nodes() {
			if c := sub[nd]; c > 0 && c < k {
				return false
			}
		}
		loss, err := infoloss.ColumnLoss(up, hist)
		return err == nil && loss >= 0 && loss <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: information loss (Eq. 1) is monotone along the lattice — a
// frontier at-or-below another never has larger loss.
func TestQuickColumnLossMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomCatTree(rng)
		values := randomValues(tree, 300, rng)
		hist, err := infoloss.LeafHistogram(tree, values)
		if err != nil {
			return false
		}
		g := dht.LeafGenSet(tree)
		prev, err := infoloss.ColumnLoss(g, hist)
		if err != nil || prev != 0 {
			return false
		}
		for {
			cands := g.MergeCandidates()
			if len(cands) == 0 {
				break
			}
			next, err := g.MergeAt(cands[rng.Intn(len(cands))])
			if err != nil {
				return false
			}
			loss, err := infoloss.ColumnLoss(next, hist)
			if err != nil || loss+1e-12 < prev || loss > 1 {
				return false
			}
			prev = loss
			g = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
