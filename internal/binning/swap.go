package binning

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dht"
	"repro/internal/relation"
)

// RestrainedSwap implements the §6 suggestion for making Lemma 1's
// equal-bin-size assumption hold: "we can incorporate 'restrained
// swapping' (e.g., swapping tuples among bins that correspond to sibling
// nodes) into binning". For every group of ultimate generalization nodes
// sharing a parent, tuples are moved from over-full bins to under-full
// ones until the group's bin sizes differ by at most one. Movement stays
// inside the sibling group, so the effective information loss of a moved
// tuple equals a generalization to the shared parent — the same bandwidth
// argument that justifies watermarking (§5.1).
//
// maxMoves caps the total number of moved tuples (0 = no cap). It returns
// the number of tuples whose column value changed.
func RestrainedSwap(tbl *relation.Table, col string, ulti dht.GenSet, maxMoves int, rng *rand.Rand) (int, error) {
	tree := ulti.Tree()
	if tree == nil {
		return 0, fmt.Errorf("binning: zero frontier")
	}
	ci, err := tbl.Schema().Index(col)
	if err != nil {
		return 0, err
	}

	// Group frontier members by parent; only groups of 2+ siblings that
	// are all frontier members can swap (restrained: the parent's
	// indiscrimination set already covers them).
	groups := make(map[dht.NodeID][]dht.NodeID)
	for _, nd := range ulti.Nodes() {
		p := tree.Parent(nd)
		if p == dht.None {
			continue
		}
		groups[p] = append(groups[p], nd)
	}

	// Rows per frontier member: the value → cover mapping is a function
	// of the dictionary entry, so resolve once per distinct value and
	// bucket rows by integer code.
	dict, codes := tbl.DictValues(ci), tbl.Codes(ci)
	coverOf := make([]dht.NodeID, len(dict))
	errOf := make([]error, len(dict))
	resolved := make([]bool, len(dict))
	rowsOf := make(map[dht.NodeID][]int)
	for i, code := range codes {
		if !resolved[code] {
			resolved[code] = true
			if id, err := tree.ResolveValue(dict[code]); err != nil {
				errOf[code] = err
			} else if cover, ok := ulti.CoverOf(id); !ok {
				errOf[code] = fmt.Errorf("value %q above the frontier", dict[code])
			} else {
				coverOf[code] = cover
			}
		}
		if err := errOf[code]; err != nil {
			return 0, fmt.Errorf("binning: row %d: %w", i, err)
		}
		rowsOf[coverOf[code]] = append(rowsOf[coverOf[code]], i)
	}

	parents := make([]dht.NodeID, 0, len(groups))
	for p := range groups {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })

	moved := 0
	for _, p := range parents {
		members := groups[p]
		if len(members) < 2 {
			continue
		}
		// Full sibling coverage required: if some child of p is not a
		// frontier member, swapping into/out of it would change the
		// generalization semantics.
		if len(members) != len(tree.Children(p)) {
			continue
		}
		sort.Slice(members, func(i, j int) bool {
			return tree.Value(members[i]) < tree.Value(members[j])
		})
		total := 0
		for _, m := range members {
			total += len(rowsOf[m])
		}
		target := total / len(members)
		// Donors give their excess above target+1; receivers fill up to
		// target. One pass is enough for the ±1 guarantee.
		type donor struct {
			nd    dht.NodeID
			extra []int
		}
		var donors []donor
		var needs []dht.NodeID
		for _, m := range members {
			n := len(rowsOf[m])
			switch {
			case n > target+1:
				rows := rowsOf[m]
				if rng != nil {
					rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
				}
				donors = append(donors, donor{m, rows[:n-target-1]})
			case n < target:
				needs = append(needs, m)
			}
		}
		di, used := 0, 0
		for _, recv := range needs {
			deficit := target - len(rowsOf[recv])
			for deficit > 0 && di < len(donors) {
				if used >= len(donors[di].extra) {
					di++
					used = 0
					continue
				}
				row := donors[di].extra[used]
				used++
				tbl.SetCellAt(row, ci, tree.Value(recv))
				rowsOf[recv] = append(rowsOf[recv], row)
				moved++
				deficit--
				if maxMoves > 0 && moved >= maxMoves {
					return moved, nil
				}
			}
		}
	}
	return moved, nil
}
