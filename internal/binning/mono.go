// Package binning implements the paper's binning algorithm (Section 4):
// mono-attribute downward binning (Figure 5), multi-attribute binning
// (Figure 7), and the complete binning step with identifier encryption
// (Figure 8), governed by usage metrics in the form of maximal
// generalization nodes.
package binning

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/infoloss"
)

// MonoStats reports work done by a mono-attribute binning run; the
// downward-vs-upward ablation (DESIGN.md E9) compares NodesVisited.
type MonoStats struct {
	// NodesVisited counts tree nodes examined during the search.
	NodesVisited int
	// Deficient lists frontier nodes whose bins hold between 1 and k-1
	// tuples; empty under the conservative rule (the aggressive rule may
	// produce them, leaving suppression to the caller).
	Deficient []dht.NodeID
}

// MonoBin implements GenMinNd of Figure 5: starting from the maximal
// generalization nodes (the off-line-enforced usage metrics) it searches
// downward along the domain hierarchy tree for the minimal generalization
// nodes — the lowest valid generalization satisfying k-anonymity for this
// single column.
//
// The conservative minimality rule of the paper applies: a node is
// minimal if it meets k-anonymity but not all of its children do. With
// aggressive set, the sketched alternative applies instead: a node is not
// minimal if any child meets k-anonymity; children below k stay on the
// frontier and are reported as Deficient (callers may suppress them).
//
// Frontier members with zero tuples are retained: an empty bin threatens
// no one and a valid generalization must cover every leaf.
//
// It errors if some maximal generalization node holds 1..k-1 tuples —
// then the data are not binnable under the given usage metrics.
func MonoBin(tree *dht.Tree, maxg dht.GenSet, values []string, k int, aggressive bool) (dht.GenSet, MonoStats, error) {
	// Only guard the LeafHistogram call below against a nil tree;
	// MonoBinHist owns the real argument validation.
	if tree == nil {
		return dht.GenSet{}, MonoStats{}, fmt.Errorf("binning: maximal generalization nodes must belong to the column's tree")
	}
	hist, err := infoloss.LeafHistogram(tree, values)
	if err != nil {
		return dht.GenSet{}, MonoStats{}, err
	}
	return MonoBinHist(tree, maxg, hist, k, aggressive)
}

// MonoBinHist is MonoBin over a precomputed leaf histogram (as built by
// infoloss.LeafHistogram or, code-level, infoloss.LeafHistogramCodes) —
// the form the columnar pipeline uses so the table is scanned once.
func MonoBinHist(tree *dht.Tree, maxg dht.GenSet, hist []int, k int, aggressive bool) (dht.GenSet, MonoStats, error) {
	var stats MonoStats
	if tree == nil || maxg.Tree() != tree {
		return dht.GenSet{}, stats, fmt.Errorf("binning: maximal generalization nodes must belong to the column's tree")
	}
	if k < 1 {
		return dht.GenSet{}, stats, fmt.Errorf("binning: k must be >= 1, got %d", k)
	}
	sub := infoloss.SubtreeCounts(tree, hist)

	var frontier []dht.NodeID
	var walk func(nd dht.NodeID)
	walk = func(nd dht.NodeID) {
		stats.NodesVisited++
		children := tree.Children(nd)
		if len(children) == 0 {
			frontier = append(frontier, nd)
			return
		}
		if aggressive {
			// Descend if any child satisfies k; under-k children stay on
			// the frontier (deficient when non-empty).
			anyOK := false
			for _, c := range children {
				if sub[c] >= k {
					anyOK = true
					break
				}
			}
			if !anyOK {
				frontier = append(frontier, nd)
				return
			}
			for _, c := range children {
				if sub[c] >= k {
					walk(c)
					continue
				}
				stats.NodesVisited++
				frontier = append(frontier, c)
				if sub[c] > 0 {
					stats.Deficient = append(stats.Deficient, c)
				}
			}
			return
		}
		// Conservative rule (the paper's SubGMN): minimal if any child
		// fails k-anonymity.
		for _, c := range children {
			if sub[c] < k {
				frontier = append(frontier, nd)
				return
			}
		}
		for _, c := range children {
			walk(c)
		}
	}

	for _, nd := range maxg.Nodes() {
		n := sub[nd]
		if n == 0 {
			// no data below: keep the maximal node itself (empty bin)
			frontier = append(frontier, nd)
			stats.NodesVisited++
			continue
		}
		if n < k {
			return dht.GenSet{}, stats, fmt.Errorf(
				"binning: column %s not binnable: maximal generalization node %q holds %d < k=%d tuples: %w",
				tree.Attr(), tree.Value(nd), n, k, ErrUnsatisfiable)
		}
		walk(nd)
	}

	gen, err := dht.NewGenSet(tree, frontier)
	if err != nil {
		return dht.GenSet{}, stats, fmt.Errorf("binning: internal: %w", err)
	}
	return gen, stats, nil
}

// MonoBinUpward is the bottom-up comparator (the binning direction of
// earlier work the paper cites, e.g. Lin et al.): start from the leaf
// frontier and merge under-k members into their parents until every bin
// reaches k, refusing to climb past the maximal generalization nodes.
// It exists for the downward-vs-upward ablation; the framework itself
// uses MonoBin.
func MonoBinUpward(tree *dht.Tree, maxg dht.GenSet, values []string, k int) (dht.GenSet, MonoStats, error) {
	var stats MonoStats
	if tree == nil || maxg.Tree() != tree {
		return dht.GenSet{}, stats, fmt.Errorf("binning: maximal generalization nodes must belong to the column's tree")
	}
	if k < 1 {
		return dht.GenSet{}, stats, fmt.Errorf("binning: k must be >= 1, got %d", k)
	}
	hist, err := infoloss.LeafHistogram(tree, values)
	if err != nil {
		return dht.GenSet{}, stats, err
	}
	sub := infoloss.SubtreeCounts(tree, hist)

	cur := dht.LeafGenSet(tree)
	for {
		// Find a violating member: non-empty but under k, and not already
		// a maximal generalization node (those are checked at the end).
		var violator dht.NodeID = dht.None
		for _, nd := range cur.Nodes() {
			stats.NodesVisited++
			if n := sub[nd]; n > 0 && n < k && !maxg.Contains(nd) {
				violator = nd
				break
			}
		}
		if violator == dht.None {
			break
		}
		parent := tree.Parent(violator)
		if parent == dht.None {
			return dht.GenSet{}, stats, fmt.Errorf("binning: column %s not binnable upward at k=%d: %w", tree.Attr(), k, ErrUnsatisfiable)
		}
		if _, ok := maxg.CoverOf(parent); !ok {
			return dht.GenSet{}, stats, fmt.Errorf(
				"binning: column %s not binnable: merging %q would climb past the usage metrics: %w",
				tree.Attr(), tree.Value(violator), ErrUnsatisfiable)
		}
		// Merging requires all siblings on the frontier; they are, because
		// merges only ever replace whole child sets. Some siblings may
		// themselves sit below (already merged subtrees) — handle by
		// merging the deepest frontier members under parent first.
		next, err := mergeSubtree(cur, tree, parent)
		if err != nil {
			return dht.GenSet{}, stats, err
		}
		cur = next
	}
	// Terminal check against the usage-metric boundary.
	for _, nd := range cur.Nodes() {
		if n := sub[nd]; n > 0 && n < k {
			return dht.GenSet{}, stats, fmt.Errorf(
				"binning: column %s not binnable: node %q holds %d < k=%d tuples at the usage-metric boundary: %w",
				tree.Attr(), tree.Value(nd), n, k, ErrUnsatisfiable)
		}
	}
	return cur, stats, nil
}

// mergeSubtree collapses every frontier member strictly below nd into nd.
func mergeSubtree(g dht.GenSet, tree *dht.Tree, nd dht.NodeID) (dht.GenSet, error) {
	keep := []dht.NodeID{nd}
	for _, m := range g.Nodes() {
		if !tree.IsAncestorOrSelf(nd, m) {
			keep = append(keep, m)
		}
	}
	return dht.NewGenSet(tree, keep)
}
