package binning

import (
	"math/rand"
	"testing"

	"repro/internal/anonymity"
	"repro/internal/dht"
	"repro/internal/relation"
)

func swapFixture(t *testing.T, counts map[string]int) (*relation.Table, *dht.Tree, dht.GenSet) {
	t.Helper()
	tree, err := dht.NewCategorical("c", dht.Spec{
		Value: "root",
		Children: []dht.Spec{
			{Value: "P", Children: []dht.Spec{{Value: "a"}, {Value: "b"}, {Value: "c"}}},
			{Value: "Q", Children: []dht.Spec{{Value: "d"}, {Value: "e"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ulti, err := dht.NewGenSetFromValues(tree, []string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	tbl := relation.NewTable(relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.Identifying},
		relation.Column{Name: "c", Kind: relation.QuasiCategorical},
	))
	i := 0
	for v, n := range counts {
		for j := 0; j < n; j++ {
			if err := tbl.AppendRow([]string{string(rune('A' + i)), v}); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	return tbl, tree, ulti
}

func TestRestrainedSwapEqualizes(t *testing.T) {
	tbl, _, ulti := swapFixture(t, map[string]int{
		"a": 30, "b": 3, "c": 3, // P group: total 36 -> target 12 each
		"d": 10, "e": 10, // Q group: already equal
	})
	rng := rand.New(rand.NewSource(1))
	moved, err := RestrainedSwap(tbl, "c", ulti, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing moved")
	}
	bins, err := anonymity.Bins(tbl, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	// P group equalized within ±1 of 12.
	for _, v := range []string{"a", "b", "c"} {
		if n := bins[v]; n < 11 || n > 13 {
			t.Errorf("bin %s = %d, want ~12", v, n)
		}
	}
	// Q group untouched.
	if bins["d"] != 10 || bins["e"] != 10 {
		t.Errorf("Q group changed: d=%d e=%d", bins["d"], bins["e"])
	}
	// Total preserved.
	total := 0
	for _, n := range bins {
		total += n
	}
	if total != 56 {
		t.Errorf("total = %d, want 56", total)
	}
}

func TestRestrainedSwapStaysInsideSiblingGroups(t *testing.T) {
	tbl, _, ulti := swapFixture(t, map[string]int{"a": 20, "b": 2, "c": 2, "d": 2, "e": 20})
	before, _ := anonymity.Bins(tbl, []string{"c"})
	rng := rand.New(rand.NewSource(2))
	if _, err := RestrainedSwap(tbl, "c", ulti, 0, rng); err != nil {
		t.Fatal(err)
	}
	after, _ := anonymity.Bins(tbl, []string{"c"})
	// Group sums invariant: P = a+b+c, Q = d+e.
	sum := func(m map[string]int, keys ...string) int {
		s := 0
		for _, k := range keys {
			s += m[k]
		}
		return s
	}
	if sum(before, "a", "b", "c") != sum(after, "a", "b", "c") {
		t.Error("P group total changed — swap crossed sibling groups")
	}
	if sum(before, "d", "e") != sum(after, "d", "e") {
		t.Error("Q group total changed — swap crossed sibling groups")
	}
}

func TestRestrainedSwapMaxMoves(t *testing.T) {
	tbl, _, ulti := swapFixture(t, map[string]int{"a": 30, "b": 3, "c": 3})
	rng := rand.New(rand.NewSource(3))
	moved, err := RestrainedSwap(tbl, "c", ulti, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 5 {
		t.Errorf("moved = %d, want exactly the cap 5", moved)
	}
}

func TestRestrainedSwapPartialSiblingCoverage(t *testing.T) {
	// A frontier where one sibling is generalized (P covers a+b+c as one
	// member) must not swap within the mixed group.
	tree, err := dht.NewCategorical("c", dht.Spec{
		Value: "root",
		Children: []dht.Spec{
			{Value: "P", Children: []dht.Spec{{Value: "a"}, {Value: "b"}}},
			{Value: "q"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// frontier {P, q}: P and q are siblings but q's group has P as an
	// internal mixed member at a different granularity.
	ulti, err := dht.NewGenSetFromValues(tree, []string{"P", "q"})
	if err != nil {
		t.Fatal(err)
	}
	tbl := relation.NewTable(relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.Identifying},
		relation.Column{Name: "c", Kind: relation.QuasiCategorical},
	))
	for i := 0; i < 9; i++ {
		_ = tbl.AppendRow([]string{string(rune('A' + i)), "P"})
	}
	_ = tbl.AppendRow([]string{"Z", "q"})
	rng := rand.New(rand.NewSource(4))
	moved, err := RestrainedSwap(tbl, "c", ulti, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// P and q are both children of root and both frontier members with
	// full coverage (root's children = {P, q}), so swapping is legal here
	// — it equalizes to 5/5.
	bins, _ := anonymity.Bins(tbl, []string{"c"})
	if moved == 0 || bins["P"] < 4 || bins["q"] < 4 {
		t.Errorf("moved=%d bins=%v", moved, bins)
	}
}

func TestRestrainedSwapErrors(t *testing.T) {
	tbl, _, ulti := swapFixture(t, map[string]int{"a": 2})
	rng := rand.New(rand.NewSource(5))
	if _, err := RestrainedSwap(tbl, "missing", ulti, 0, rng); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := RestrainedSwap(tbl, "c", dht.GenSet{}, 0, rng); err == nil {
		t.Error("zero frontier accepted")
	}
	// value above the frontier
	_ = tbl.SetCell(0, "c", "P")
	if _, err := RestrainedSwap(tbl, "c", ulti, 0, rng); err == nil {
		t.Error("above-frontier value accepted")
	}
}
