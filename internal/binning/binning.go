package binning

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/anonymity"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/pool"
	"repro/internal/relation"
)

// ErrUnsatisfiable reports that no generalization within the usage
// metrics satisfies the k-anonymity specification — the data are not
// binnable as configured. Callers detect it with errors.Is and can react
// by relaxing the metrics, lowering K, or rejecting the request (the
// service layer maps it to 422 Unprocessable Entity).
var ErrUnsatisfiable = errors.New("k-anonymity unsatisfiable under the usage metrics")

// Config parameterizes the binning agent.
type Config struct {
	// K is the k-anonymity parameter.
	K int
	// Epsilon is the slack of Section 6: binning targets k+ε so that the
	// later watermarking step cannot push any bin below k. Use
	// EpsilonForMark for the paper's conservative choice.
	Epsilon int
	// Trees maps every quasi-identifying column to its DHT.
	Trees map[string]*dht.Tree
	// MaxGens is the usage metrics in maximal-generalization-node form
	// (the paper's preferred, off-line-enforced representation). Columns
	// absent here fall back to Metrics-derived frontiers, or to the root
	// frontier when Metrics is nil.
	MaxGens map[string]dht.GenSet
	// Metrics optionally provides Equation (4) bounds from which maximal
	// generalization nodes are derived for columns missing from MaxGens.
	Metrics *infoloss.Metrics
	// Strategy selects the multi-attribute search (default Auto).
	Strategy Strategy
	// EnumLimit caps exhaustive enumeration (default DefaultEnumLimit).
	EnumLimit int
	// Aggressive switches mono-attribute binning to the paper's sketched
	// aggressive minimality rule (may yield deficient bins, which Run
	// suppresses).
	Aggressive bool
	// Workers bounds the goroutines used by the exhaustive
	// multi-attribute search (0 = GOMAXPROCS, 1 = sequential). The output
	// is identical for every worker count.
	Workers int
}

// Result is the outcome of the binning agent.
type Result struct {
	// Table is the binned table: identifying columns encrypted, quasi
	// columns generalized to the ultimate generalization nodes.
	Table *relation.Table
	// MinGens, MaxGens and UltiGens are the per-column frontiers
	// (minimal, maximal and ultimate generalization nodes).
	MinGens, MaxGens, UltiGens map[string]dht.GenSet
	// ColumnLoss is the Equation (1)/(2) information loss per column, and
	// AvgLoss the Equation (3) normalized loss.
	ColumnLoss map[string]float64
	AvgLoss    float64
	// EffectiveK is K+Epsilon, the anonymity level actually enforced.
	EffectiveK int
	// Suppressed counts rows dropped because of deficient bins (only
	// under the aggressive rule).
	Suppressed int
	// MonoStats and MultiStats expose algorithm work counters.
	MonoStats  map[string]MonoStats
	MultiStats MultiStats
}

// SearchResult is the outcome of the frontier search (stages 1–3 of
// Figure 8): the per-column frontiers and loss metrics, without the
// table transform. It is everything a later TransformContext — on the
// same table or on a freshly arrived batch — needs to bin data to the
// searched frontiers without repeating the search.
type SearchResult struct {
	// MinGens, MaxGens and UltiGens are the per-column frontiers
	// (minimal, maximal and ultimate generalization nodes).
	MinGens, MaxGens, UltiGens map[string]dht.GenSet
	// ColumnLoss is the Equation (1)/(2) information loss per column, and
	// AvgLoss the Equation (3) normalized loss.
	ColumnLoss map[string]float64
	AvgLoss    float64
	// EffectiveK is K+Epsilon, the anonymity level actually enforced.
	EffectiveK int
	// Suppressed counts rows the aggressive rule removed during the
	// search (0 under the conservative rule).
	Suppressed int
	// SuppressValues records, per quasi column, the values of the
	// deficient frontier nodes whose rows the aggressive rule removed.
	// Suppress replays the removal on any row batch, so a serialized
	// search outcome can reproduce the suppression without MonoStats.
	SuppressValues map[string][]string
	// MonoStats and MultiStats expose algorithm work counters.
	MonoStats  map[string]MonoStats
	MultiStats MultiStats
	// work is the table the search ran over: the input itself under the
	// conservative rule (never mutated), or a suppressed clone under the
	// aggressive rule. It is nil for sketch-backed results (SearchSketch),
	// which retain tuples instead.
	work *relation.Table
	// tuples is the post-suppression quasi-tuple state of a sketch-backed
	// search — what GeneralizedBins consumes when no work table exists.
	tuples *sketchTuples
}

// Work returns the table the search result describes: the input table
// under the conservative rule, or the suppressed clone the aggressive
// rule produced. Callers must treat it as read-only.
func (s *SearchResult) Work() *relation.Table { return s.work }

// EpsilonForMark returns the paper's conservative ε (Section 6):
// ε = (s/S)·|wmd|, where s is the biggest bin size, S the sum of all bin
// sizes and |wmd| the replicated mark length.
func EpsilonForMark(binSizes map[string]int, wmdLen int) int {
	s, total := 0, 0
	for _, n := range binSizes {
		total += n
		if n > s {
			s = n
		}
	}
	if total == 0 {
		return 0
	}
	return int(math.Ceil(float64(s) / float64(total) * float64(wmdLen)))
}

// Run executes the complete binning algorithm of Figure 8 on tbl:
//
//  1. derive/validate the usage metrics (maximal generalization nodes),
//  2. mono-attribute binning per quasi column (Figure 5, downward),
//  3. multi-attribute binning across columns (Figure 7),
//  4. encrypt identifying columns with cipher (one-to-one replacement),
//  5. generalize quasi columns to the ultimate generalization nodes.
//
// The input table is not modified. Cipher must not be nil when the schema
// has identifying columns.
func Run(tbl *relation.Table, cfg Config, cipher *crypt.Cipher) (*Result, error) {
	return RunContext(context.Background(), tbl, cfg, cipher)
}

// RunContext is Run under a context: the column setup, the
// multi-attribute search and the encrypt/generalize scans all stop
// dispatching work once ctx is done, and long row scans poll ctx at
// pool.CtxStride boundaries, so a cancelled binning run aborts promptly
// with the context's error.
//
// RunContext is exactly SearchContext followed by TransformContext —
// the staged pipeline core.PlanContext / core.ApplyContext invokes the
// two halves independently.
func RunContext(ctx context.Context, tbl *relation.Table, cfg Config, cipher *crypt.Cipher) (*Result, error) {
	if len(tbl.Schema().IdentColumns()) > 0 && cipher == nil {
		return nil, fmt.Errorf("binning: schema has identifying columns but no cipher")
	}
	search, err := SearchContext(ctx, tbl, cfg)
	if err != nil {
		return nil, err
	}
	out, err := TransformContext(ctx, search.work, search.UltiGens, search.EffectiveK, cipher, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Table:      out,
		MinGens:    search.MinGens,
		MaxGens:    search.MaxGens,
		UltiGens:   search.UltiGens,
		ColumnLoss: search.ColumnLoss,
		AvgLoss:    search.AvgLoss,
		EffectiveK: search.EffectiveK,
		Suppressed: search.Suppressed,
		MonoStats:  search.MonoStats,
		MultiStats: search.MultiStats,
	}, nil
}

// SearchContext runs stages 1–3 of the Figure 8 algorithm — usage-metric
// derivation, mono-attribute binning, multi-attribute binning — and
// returns the searched frontiers without transforming the table. Under
// the conservative rule the input is never touched; the aggressive rule
// interleaves row suppression with the per-column searches, so it works
// on a private clone (SearchResult.Work).
func SearchContext(ctx context.Context, tbl *relation.Table, cfg Config) (*SearchResult, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("binning: K must be >= 1, got %d", cfg.K)
	}
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("binning: Epsilon must be >= 0, got %d", cfg.Epsilon)
	}
	schema := tbl.Schema()
	quasi := schema.QuasiColumns()
	if len(quasi) == 0 {
		return nil, fmt.Errorf("binning: schema has no quasi-identifying columns")
	}
	effectiveK := cfg.K + cfg.Epsilon

	// 1. Usage metrics in maximal-generalization-node form. Each column
	// resolves its histogram and maximal nodes independently.
	maxGens := make(map[string]dht.GenSet, len(quasi))
	histograms := make(map[string][]int, len(quasi))
	type colSetup struct {
		hist []int
		maxg dht.GenSet
	}
	setups, err := pool.MapCtx(ctx, cfg.Workers, len(quasi), func(i int) (colSetup, error) {
		col := quasi[i]
		tree, ok := cfg.Trees[col]
		if !ok || tree == nil {
			return colSetup{}, fmt.Errorf("binning: no DHT for quasi column %s", col)
		}
		ci, err := schema.Index(col)
		if err != nil {
			return colSetup{}, err
		}
		// Dictionary-encoded histogram: one leaf resolution per distinct
		// value, integer counting per row.
		hist, err := infoloss.LeafHistogramCodes(tree, tbl.DictValues(ci), tbl.Codes(ci))
		if err != nil {
			return colSetup{}, fmt.Errorf("binning: column %s: %w", col, err)
		}
		if g, ok := cfg.MaxGens[col]; ok {
			if g.Tree() != tree {
				return colSetup{}, fmt.Errorf("binning: maximal nodes for %s belong to a different tree", col)
			}
			return colSetup{hist: hist, maxg: g}, nil
		}
		if cfg.Metrics != nil {
			g, err := infoloss.DeriveMaxGen(tree, hist, cfg.Metrics.Bound(col))
			if err != nil {
				return colSetup{}, err
			}
			return colSetup{hist: hist, maxg: g}, nil
		}
		return colSetup{hist: hist, maxg: dht.RootGenSet(tree)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, col := range quasi {
		histograms[col] = setups[i].hist
		maxGens[col] = setups[i].maxg
	}

	// 2. Mono-attribute binning (downward from the maximal nodes).
	minGens := make(map[string]dht.GenSet, len(quasi))
	monoStats := make(map[string]MonoStats, len(quasi))
	suppressed := 0
	suppressValues := make(map[string][]string)
	work := tbl

	// Under the conservative rule no bin is ever deficient, so no rows
	// are suppressed and the columns bin independently — fan them out.
	// The aggressive rule suppresses rows between columns (column i's
	// deletions change column i+1's histogram), so it stays sequential
	// and works on a private clone.
	if !cfg.Aggressive {
		type monoOut struct {
			gen   dht.GenSet
			stats MonoStats
		}
		outs, err := pool.MapCtx(ctx, cfg.Workers, len(quasi), func(i int) (monoOut, error) {
			// The conservative rule never suppresses, so work's histogram
			// equals the setup histogram — no second table scan.
			col := quasi[i]
			g, st, err := MonoBinHist(cfg.Trees[col], maxGens[col], setups[i].hist, effectiveK, false)
			if err != nil {
				return monoOut{}, err
			}
			return monoOut{gen: g, stats: st}, nil
		})
		if err != nil {
			return nil, err
		}
		for i, col := range quasi {
			minGens[col] = outs[i].gen
			monoStats[col] = outs[i].stats
		}
	} else {
		work = tbl.Clone()
		for _, col := range quasi {
			tree := cfg.Trees[col]
			colIdx, err := work.Schema().Index(col)
			if err != nil {
				return nil, err
			}
			hist, err := infoloss.LeafHistogramCodes(tree, work.DictValues(colIdx), work.Codes(colIdx))
			if err != nil {
				return nil, fmt.Errorf("binning: column %s: %w", col, err)
			}
			g, st, err := MonoBinHist(tree, maxGens[col], hist, effectiveK, true)
			if err != nil {
				return nil, err
			}
			if len(st.Deficient) > 0 {
				// Aggressive rule produced under-k bins: suppress their rows
				// (the "suppression" half of generalization and suppression).
				// The deficient frontier values are recorded so the same
				// suppression replays on later batches (Suppress).
				values := make([]string, len(st.Deficient))
				for i, d := range st.Deficient {
					values[i] = tree.Value(d)
				}
				suppressValues[col] = values
				n, err := suppressColumn(work, colIdx, tree, values)
				if err != nil {
					return nil, fmt.Errorf("binning: column %s: %w", col, err)
				}
				suppressed += n
			}
			minGens[col] = g
			monoStats[col] = st
		}
	}

	// 3. Multi-attribute binning.
	ultiGens, multiStats, err := MultiBinContext(ctx, work, quasi, minGens, maxGens, effectiveK, cfg.Strategy, cfg.EnumLimit, cfg.Workers)
	if err != nil {
		return nil, err
	}

	// Information loss per Equations (1)-(3), measured on the original
	// histograms (suppression notwithstanding, the metric describes the
	// published generalization).
	colLoss := make(map[string]float64, len(quasi))
	losses := make([]float64, 0, len(quasi))
	for _, col := range quasi {
		l, err := infoloss.ColumnLoss(ultiGens[col], histograms[col])
		if err != nil {
			return nil, err
		}
		colLoss[col] = l
		losses = append(losses, l)
	}
	avg := infoloss.NormalizedLoss(losses)
	if cfg.Metrics != nil {
		if err := cfg.Metrics.Check(colLoss); err != nil {
			return nil, err
		}
	}

	return &SearchResult{
		MinGens:        minGens,
		MaxGens:        maxGens,
		UltiGens:       ultiGens,
		ColumnLoss:     colLoss,
		AvgLoss:        avg,
		EffectiveK:     effectiveK,
		Suppressed:     suppressed,
		SuppressValues: suppressValues,
		MonoStats:      monoStats,
		MultiStats:     multiStats,
		work:           work,
	}, nil
}

// suppressColumn removes the rows whose value in column colIdx falls
// under any of the deficient subtree-root values. Deficiency is a
// property of the value, so the verdict is computed once per dictionary
// entry and rows drop by code. Values that do not resolve to a leaf are
// kept — they were never counted by the histogram the deficiency verdict
// came from.
func suppressColumn(tbl *relation.Table, colIdx int, tree *dht.Tree, deficient []string) (int, error) {
	roots := make([]dht.NodeID, 0, len(deficient))
	for _, v := range deficient {
		id, err := tree.ResolveValue(v)
		if err != nil {
			return 0, fmt.Errorf("deficient value %q: %w", v, err)
		}
		roots = append(roots, id)
	}
	dict := tbl.DictValues(colIdx)
	drop := make([]bool, len(dict))
	for code, v := range dict {
		leaf, err := tree.ResolveLeaf(v)
		if err != nil {
			continue
		}
		for _, d := range roots {
			if tree.IsAncestorOrSelf(d, leaf) {
				drop[code] = true
				break
			}
		}
	}
	return tbl.DeleteWhereView(func(v relation.RowView) bool {
		return drop[v.Code(colIdx)]
	}), nil
}

// Suppress replays a recorded aggressive-rule suppression (per-column
// deficient frontier values, as in SearchResult.SuppressValues) on tbl,
// in place, and returns the number of rows removed. Columns are applied
// in the table's quasi-column order; each column's verdict depends only
// on its own values, so the surviving row set matches the interleaved
// suppression of the original search.
func Suppress(tbl *relation.Table, trees map[string]*dht.Tree, suppress map[string][]string) (int, error) {
	if len(suppress) == 0 {
		return 0, nil
	}
	removed := 0
	for _, col := range tbl.Schema().QuasiColumns() {
		values, ok := suppress[col]
		if !ok || len(values) == 0 {
			continue
		}
		tree, ok := trees[col]
		if !ok || tree == nil {
			return removed, fmt.Errorf("binning: no DHT for suppressed column %s", col)
		}
		colIdx, err := tbl.Schema().Index(col)
		if err != nil {
			return removed, err
		}
		n, err := suppressColumn(tbl, colIdx, tree, values)
		if err != nil {
			return removed, fmt.Errorf("binning: column %s: %w", col, err)
		}
		removed += n
	}
	return removed, nil
}

// TransformContext applies searched frontiers to a table — stages 4+5 of
// Figure 8: encrypt identifying columns with cipher, generalize quasi
// columns to the ultimate generalization nodes, then defensively verify
// k-anonymity at the effective level. The input table is not modified.
//
// Both transforms are deterministic per-value, so they rewrite the
// column dictionaries: encryption runs once per distinct identifier
// (fanned out over workers — the cipher is safe for concurrent use) and
// generalization once per distinct quasi value (typically a handful of
// dictionary entries for 20k+ rows); rows only have their codes
// remapped. A value that cannot be generalized to the given frontier
// (not in the tree's domain, or above the frontier) fails the transform.
func TransformContext(ctx context.Context, tbl *relation.Table, ultiGens map[string]dht.GenSet, effectiveK int, cipher *crypt.Cipher, workers int) (*relation.Table, error) {
	schema := tbl.Schema()
	quasi := schema.QuasiColumns()
	idents := schema.IdentColumns()
	if len(idents) > 0 && cipher == nil {
		return nil, fmt.Errorf("binning: schema has identifying columns but no cipher")
	}
	for _, col := range quasi {
		if _, ok := ultiGens[col]; !ok {
			return nil, fmt.Errorf("binning: no ultimate generalization nodes for quasi column %s", col)
		}
	}
	out := tbl.Clone()
	for _, col := range idents {
		colIdx, _ := out.Schema().Index(col)
		if _, err := out.MapColumnCtx(ctx, workers, colIdx, func(v string) (string, error) {
			return cipher.EncryptString(v), nil
		}); err != nil {
			return nil, err
		}
	}
	for _, col := range quasi {
		gen := ultiGens[col]
		colIdx, _ := out.Schema().Index(col)
		if _, err := out.MapColumnCtx(ctx, workers, colIdx, func(v string) (string, error) {
			g, err := gen.GeneralizeValue(v)
			if err != nil {
				return "", fmt.Errorf("binning: column %s value %q: %w", col, v, err)
			}
			return g, nil
		}); err != nil {
			return nil, err
		}
	}

	// Defensive verification: the binned table must satisfy k-anonymity
	// at the effective level. effectiveK <= 0 disables the check (the
	// append path verifies the published union instead — a lone delta
	// batch may legitimately hold small bins) rather than paying a full
	// bin scan for an unfailable comparison.
	if effectiveK > 0 && out.NumRows() > 0 {
		ok, err := anonymity.SatisfiesK(out, quasi, effectiveK)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("binning: internal: output violates k=%d anonymity", effectiveK)
		}
	}
	return out, nil
}
