package binning

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dht"
	"repro/internal/relation"
)

// Strategy selects how multi-attribute binning searches the space of
// allowable generalizations (§4.2.2).
type Strategy int

const (
	// StrategyAuto enumerates exhaustively when the candidate product is
	// within EnumLimit and falls back to greedy otherwise.
	StrategyAuto Strategy = iota
	// StrategyExhaustive implements Figure 7 literally: enumerate every
	// combination of allowable generalizations, filter by k-anonymity,
	// select the one with minimal specificity loss.
	StrategyExhaustive
	// StrategyGreedy ascends the generalization lattice from the minimal
	// nodes, merging the cheapest frontier member that covers a violating
	// bin, until joint k-anonymity holds.
	StrategyGreedy
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyExhaustive:
		return "exhaustive"
	case StrategyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MultiStats reports the work done by multi-attribute binning.
type MultiStats struct {
	// Strategy actually used (after Auto resolution).
	Strategy Strategy
	// Candidates is the number of joint generalizations evaluated
	// (exhaustive) and Valid how many satisfied k-anonymity.
	Candidates, Valid int
	// GreedyMerges is the number of lattice ascent steps (greedy).
	GreedyMerges int
}

// DefaultEnumLimit bounds the exhaustive candidate product in Auto mode.
const DefaultEnumLimit = 4096

// MultiBin implements GenUltiNd of Figure 7: given per-column minimal and
// maximal generalization nodes, it chooses the ultimate generalization —
// a per-column frontier between the bounds whose joint table satisfies
// k-anonymity with minimal specificity loss ((N−Ng)/N averaged over
// columns, the paper's efficient estimate).
//
// cols fixes the column order; every col must appear in trees, mingends
// and maxgends. Rows of tbl provide the joint distribution.
func MultiBin(
	tbl *relation.Table,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k int,
	strategy Strategy,
	enumLimit int,
) (map[string]dht.GenSet, MultiStats, error) {
	var stats MultiStats
	if k < 1 {
		return nil, stats, fmt.Errorf("binning: k must be >= 1, got %d", k)
	}
	if len(cols) == 0 {
		return nil, stats, fmt.Errorf("binning: no columns to bin")
	}
	if enumLimit <= 0 {
		enumLimit = DefaultEnumLimit
	}
	for _, c := range cols {
		lo, ok := mingends[c]
		if !ok {
			return nil, stats, fmt.Errorf("binning: no minimal generalization nodes for %s", c)
		}
		hi, ok := maxgends[c]
		if !ok {
			return nil, stats, fmt.Errorf("binning: no maximal generalization nodes for %s", c)
		}
		if lo.Tree() != hi.Tree() || lo.Tree() == nil {
			return nil, stats, fmt.Errorf("binning: bounds for %s not over one tree", c)
		}
		if !lo.AtOrBelow(hi) {
			return nil, stats, fmt.Errorf("binning: minimal nodes for %s not below maximal nodes", c)
		}
	}

	// An empty table satisfies any k vacuously: keep the minimal nodes.
	if tbl.NumRows() == 0 {
		out := make(map[string]dht.GenSet, len(cols))
		for _, c := range cols {
			out[c] = mingends[c]
		}
		stats.Strategy = strategy
		return out, stats, nil
	}

	rowLeaves, err := resolveRowLeaves(tbl, cols, mingends)
	if err != nil {
		return nil, stats, err
	}

	// Resolve Auto by counting the candidate product with a cap.
	resolved := strategy
	if resolved == StrategyAuto {
		product := 1
		for _, c := range cols {
			n, err := dht.CountBetween(mingends[c], maxgends[c], enumLimit+1)
			if err != nil {
				return nil, stats, err
			}
			product *= n
			if product > enumLimit {
				break
			}
		}
		if product > enumLimit {
			resolved = StrategyGreedy
		} else {
			resolved = StrategyExhaustive
		}
	}
	stats.Strategy = resolved

	switch resolved {
	case StrategyExhaustive:
		return multiExhaustive(tbl, cols, mingends, maxgends, k, enumLimit, rowLeaves, &stats)
	case StrategyGreedy:
		return multiGreedy(tbl, cols, mingends, maxgends, k, rowLeaves, &stats)
	default:
		return nil, stats, fmt.Errorf("binning: unknown strategy %v", strategy)
	}
}

// resolveRowLeaves maps every row and column to its DHT leaf once, so
// candidate evaluation is pure array work.
func resolveRowLeaves(tbl *relation.Table, cols []string, gens map[string]dht.GenSet) ([][]dht.NodeID, error) {
	out := make([][]dht.NodeID, len(cols))
	for ci, col := range cols {
		tree := gens[col].Tree()
		colIdx, err := tbl.Schema().Index(col)
		if err != nil {
			return nil, err
		}
		leaves := make([]dht.NodeID, tbl.NumRows())
		var resolveErr error
		tbl.ForEachRow(func(i int, row []string) {
			if resolveErr != nil {
				return
			}
			leaf, err := tree.ResolveLeaf(row[colIdx])
			if err != nil {
				resolveErr = fmt.Errorf("binning: column %s row %d: %w", col, i, err)
				return
			}
			leaves[i] = leaf
		})
		if resolveErr != nil {
			return nil, resolveErr
		}
		out[ci] = leaves
	}
	return out, nil
}

// coverTable maps every tree node to the index (into gen.Nodes()) of its
// covering member, or -1. Leaf lookups then run in O(1).
func coverTable(gen dht.GenSet) []int32 {
	tree := gen.Tree()
	table := make([]int32, tree.Size())
	for i := range table {
		table[i] = -1
	}
	for mi, m := range gen.Nodes() {
		for _, leaf := range tree.LeavesUnder(m) {
			table[leaf] = int32(mi)
		}
		table[m] = int32(mi)
	}
	return table
}

// jointMinBin computes the minimum non-empty joint bin size of the table
// under the per-column frontiers.
func jointMinBin(rowLeaves [][]dht.NodeID, covers [][]int32) int {
	if len(rowLeaves) == 0 || len(rowLeaves[0]) == 0 {
		return 0
	}
	counts := make(map[string]int, len(rowLeaves[0])/4+1)
	var sb strings.Builder
	for row := 0; row < len(rowLeaves[0]); row++ {
		sb.Reset()
		for ci := range rowLeaves {
			mi := covers[ci][rowLeaves[ci][row]]
			fmt.Fprintf(&sb, "%d|", mi)
		}
		counts[sb.String()]++
	}
	min := -1
	for _, n := range counts {
		if min < 0 || n < min {
			min = n
		}
	}
	return min
}

// avgSpecificityLoss averages (N−Ng)/N across the chosen frontiers.
func avgSpecificityLoss(gens []dht.GenSet) float64 {
	if len(gens) == 0 {
		return 0
	}
	sum := 0.0
	for _, g := range gens {
		sum += g.SpecificityLoss()
	}
	return sum / float64(len(gens))
}

func multiExhaustive(
	tbl *relation.Table,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k, enumLimit int,
	rowLeaves [][]dht.NodeID,
	stats *MultiStats,
) (map[string]dht.GenSet, MultiStats, error) {
	// Materialize per-column allowable generalizations (EnumGen of the
	// paper, bounded by enumLimit on the total product).
	perCol := make([][]dht.GenSet, len(cols))
	product := 1
	for ci, col := range cols {
		var list []dht.GenSet
		err := dht.EnumerateBetween(mingends[col], maxgends[col], func(g dht.GenSet) bool {
			list = append(list, g)
			return product*len(list) <= enumLimit
		})
		if err != nil {
			return nil, *stats, err
		}
		if len(list) == 0 {
			return nil, *stats, fmt.Errorf("binning: no allowable generalization for %s", col)
		}
		perCol[ci] = list
		product *= len(list)
		if product > enumLimit {
			return nil, *stats, fmt.Errorf(
				"binning: candidate product exceeds limit %d; use StrategyGreedy or raise EnumLimit", enumLimit)
		}
	}

	var (
		best     []dht.GenSet
		bestLoss float64
		choice   = make([]dht.GenSet, len(cols))
	)
	var walk func(ci int)
	walk = func(ci int) {
		if ci == len(cols) {
			stats.Candidates++
			covers := make([][]int32, len(cols))
			for i, g := range choice {
				covers[i] = coverTable(g)
			}
			if jointMinBin(rowLeaves, covers) < k {
				return
			}
			stats.Valid++
			loss := avgSpecificityLoss(choice)
			if best == nil || loss < bestLoss {
				best = append([]dht.GenSet(nil), choice...)
				bestLoss = loss
			}
			return
		}
		for _, g := range perCol[ci] {
			choice[ci] = g
			walk(ci + 1)
		}
	}
	walk(0)

	if best == nil {
		return nil, *stats, fmt.Errorf(
			"binning: no allowable generalization satisfies k=%d; data not binnable under the usage metrics", k)
	}
	out := make(map[string]dht.GenSet, len(cols))
	for i, col := range cols {
		out[col] = best[i]
	}
	return out, *stats, nil
}

func multiGreedy(
	tbl *relation.Table,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k int,
	rowLeaves [][]dht.NodeID,
	stats *MultiStats,
) (map[string]dht.GenSet, MultiStats, error) {
	cur := make([]dht.GenSet, len(cols))
	for ci, col := range cols {
		cur[ci] = mingends[col]
	}
	covers := make([][]int32, len(cols))
	for ci := range cur {
		covers[ci] = coverTable(cur[ci])
	}

	for {
		// Identify violating rows (bins under k).
		counts := make(map[string]int)
		keys := make([]string, len(rowLeaves[0]))
		var sb strings.Builder
		for row := range keys {
			sb.Reset()
			for ci := range cur {
				fmt.Fprintf(&sb, "%d|", covers[ci][rowLeaves[ci][row]])
			}
			keys[row] = sb.String()
			counts[keys[row]]++
		}
		// Members (per column) participating in violating bins.
		violating := make([]map[int32]bool, len(cols))
		for ci := range violating {
			violating[ci] = make(map[int32]bool)
		}
		anyViolation := false
		for row, key := range keys {
			if counts[key] < k {
				anyViolation = true
				for ci := range cur {
					violating[ci][covers[ci][rowLeaves[ci][row]]] = true
				}
			}
		}
		if !anyViolation {
			break
		}

		// Candidate moves: merge a parent whose children are all frontier
		// members, staying within the maximal nodes. Prefer moves whose
		// merged member covers a violating bin; among those, the smallest
		// specificity-loss increase; deterministic tie-break.
		type move struct {
			ci     int
			parent dht.NodeID
			delta  float64
			helps  bool
		}
		var bestMove *move
		better := func(a, b *move) bool {
			if a.helps != b.helps {
				return a.helps
			}
			if a.delta != b.delta {
				return a.delta < b.delta
			}
			if a.ci != b.ci {
				return a.ci < b.ci
			}
			return a.parent < b.parent
		}
		for ci, col := range cols {
			tree := cur[ci].Tree()
			memberIndex := make(map[dht.NodeID]int32, cur[ci].Len())
			for mi, m := range cur[ci].Nodes() {
				memberIndex[m] = int32(mi)
			}
			for _, p := range cur[ci].MergeCandidates() {
				if _, ok := maxgends[col].CoverOf(p); !ok {
					continue // would climb past the usage metrics
				}
				helps := false
				for _, c := range tree.Children(p) {
					if violating[ci][memberIndex[c]] {
						helps = true
						break
					}
				}
				delta := float64(len(tree.Children(p))-1) / float64(tree.NumLeaves())
				m := &move{ci: ci, parent: p, delta: delta, helps: helps}
				if bestMove == nil || better(m, bestMove) {
					bestMove = m
				}
			}
		}
		if bestMove == nil {
			return nil, *stats, fmt.Errorf(
				"binning: greedy ascent exhausted at k=%d without satisfying k-anonymity; data not binnable under the usage metrics", k)
		}
		next, err := cur[bestMove.ci].MergeAt(bestMove.parent)
		if err != nil {
			return nil, *stats, fmt.Errorf("binning: internal: %w", err)
		}
		cur[bestMove.ci] = next
		covers[bestMove.ci] = coverTable(next)
		stats.GreedyMerges++
	}

	out := make(map[string]dht.GenSet, len(cols))
	for ci, col := range cols {
		out[col] = cur[ci]
	}
	return out, *stats, nil
}

// SortedColumns returns the quasi-identifying column names of the schema
// in deterministic (schema) order — the canonical cols argument for
// MultiBin and Run.
func SortedColumns(tbl *relation.Table) []string {
	cols := tbl.Schema().QuasiColumns()
	sorted := make([]string, len(cols))
	copy(sorted, cols)
	sort.Strings(sorted)
	return sorted
}
