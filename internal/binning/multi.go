package binning

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/dht"
	"repro/internal/pool"
	"repro/internal/relation"
)

// Strategy selects how multi-attribute binning searches the space of
// allowable generalizations (§4.2.2).
type Strategy int

const (
	// StrategyAuto enumerates exhaustively when the candidate product is
	// within EnumLimit and falls back to greedy otherwise.
	StrategyAuto Strategy = iota
	// StrategyExhaustive implements Figure 7 literally: enumerate every
	// combination of allowable generalizations, filter by k-anonymity,
	// select the one with minimal specificity loss.
	StrategyExhaustive
	// StrategyGreedy ascends the generalization lattice from the minimal
	// nodes, merging the cheapest frontier member that covers a violating
	// bin, until joint k-anonymity holds.
	StrategyGreedy
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyExhaustive:
		return "exhaustive"
	case StrategyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MultiStats reports the work done by multi-attribute binning.
type MultiStats struct {
	// Strategy actually used (after Auto resolution).
	Strategy Strategy
	// Candidates is the number of joint generalizations evaluated
	// (exhaustive) and Valid how many satisfied k-anonymity.
	Candidates, Valid int
	// GreedyMerges is the number of lattice ascent steps (greedy).
	GreedyMerges int
}

// DefaultEnumLimit bounds the exhaustive candidate product in Auto mode.
const DefaultEnumLimit = 4096

// MultiBin implements GenUltiNd of Figure 7: given per-column minimal and
// maximal generalization nodes, it chooses the ultimate generalization —
// a per-column frontier between the bounds whose joint table satisfies
// k-anonymity with minimal specificity loss ((N−Ng)/N averaged over
// columns, the paper's efficient estimate).
//
// cols fixes the column order; every col must appear in trees, mingends
// and maxgends. Rows of tbl provide the joint distribution.
//
// workers bounds the goroutines used by the exhaustive search (each
// candidate frontier needs a full k-anonymity check over the table, so
// the search is embarrassingly parallel); <= 0 means GOMAXPROCS, 1 runs
// sequentially. The result is byte-identical for every worker count:
// candidates are ranked by (specificity loss, enumeration index).
func MultiBin(
	tbl *relation.Table,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k int,
	strategy Strategy,
	enumLimit int,
	workers int,
) (map[string]dht.GenSet, MultiStats, error) {
	return MultiBinContext(context.Background(), tbl, cols, mingends, maxgends, k, strategy, enumLimit, workers)
}

// MultiBinContext is MultiBin under a context: candidate evaluation
// (exhaustive) and the per-iteration table scans (greedy) stop once ctx
// is done and the context's error is returned. An exhaustive search over
// thousands of candidates — each a full-table k-anonymity check — aborts
// at the next candidate boundary; greedy scans abort at the next
// pool.CtxStride row batch.
func MultiBinContext(
	ctx context.Context,
	tbl *relation.Table,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k int,
	strategy Strategy,
	enumLimit int,
	workers int,
) (map[string]dht.GenSet, MultiStats, error) {
	var stats MultiStats
	if k < 1 {
		return nil, stats, fmt.Errorf("binning: k must be >= 1, got %d", k)
	}
	if len(cols) == 0 {
		return nil, stats, fmt.Errorf("binning: no columns to bin")
	}
	if enumLimit <= 0 {
		enumLimit = DefaultEnumLimit
	}
	for _, c := range cols {
		lo, ok := mingends[c]
		if !ok {
			return nil, stats, fmt.Errorf("binning: no minimal generalization nodes for %s", c)
		}
		hi, ok := maxgends[c]
		if !ok {
			return nil, stats, fmt.Errorf("binning: no maximal generalization nodes for %s", c)
		}
		if lo.Tree() != hi.Tree() || lo.Tree() == nil {
			return nil, stats, fmt.Errorf("binning: bounds for %s not over one tree", c)
		}
		if !lo.AtOrBelow(hi) {
			return nil, stats, fmt.Errorf("binning: minimal nodes for %s not below maximal nodes", c)
		}
	}

	rowLeaves, err := resolveRowLeaves(ctx, tbl, cols, mingends)
	if err != nil {
		return nil, stats, err
	}

	return multiBinLeaves(ctx, cols, mingends, maxgends, k, strategy, enumLimit, workers, rowLeaves, nil, &stats)
}

// multiBinLeaves is the strategy core MultiBinContext and SearchSketch
// share: the multi-attribute search over pre-resolved per-column leaf
// vectors. Each position of rowLeaves is one unit of the joint
// distribution — a table row (weights nil, every unit counts once) or a
// distinct quasi-tuple of a Sketch (weights holds its multiplicity).
// Bin sizes are weight sums, so the weighted tuple form yields exactly
// the histograms, violating sets and merge sequences of the expanded
// rows.
func multiBinLeaves(
	ctx context.Context,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k int,
	strategy Strategy,
	enumLimit int,
	workers int,
	rowLeaves [][]dht.NodeID,
	weights []int,
	stats *MultiStats,
) (map[string]dht.GenSet, MultiStats, error) {
	if enumLimit <= 0 {
		enumLimit = DefaultEnumLimit
	}

	// An empty table satisfies any k vacuously: keep the minimal nodes.
	if len(rowLeaves) == 0 || len(rowLeaves[0]) == 0 {
		out := make(map[string]dht.GenSet, len(cols))
		for _, c := range cols {
			out[c] = mingends[c]
		}
		stats.Strategy = strategy
		return out, *stats, nil
	}

	// Resolve Auto by counting the candidate product with a cap.
	resolved := strategy
	if resolved == StrategyAuto {
		product := 1
		for _, c := range cols {
			n, err := dht.CountBetween(mingends[c], maxgends[c], enumLimit+1)
			if err != nil {
				return nil, *stats, err
			}
			product *= n
			if product > enumLimit {
				break
			}
		}
		if product > enumLimit {
			resolved = StrategyGreedy
		} else {
			resolved = StrategyExhaustive
		}
	}
	stats.Strategy = resolved

	switch resolved {
	case StrategyExhaustive:
		return multiExhaustive(ctx, cols, mingends, maxgends, k, enumLimit, workers, rowLeaves, weights, stats)
	case StrategyGreedy:
		return multiGreedy(ctx, cols, mingends, maxgends, k, workers, rowLeaves, weights, stats)
	default:
		return nil, *stats, fmt.Errorf("binning: unknown strategy %v", strategy)
	}
}

// resolveRowLeaves maps every row and column to its DHT leaf once, so
// candidate evaluation is pure array work. Resolution runs per distinct
// dictionary entry — the paper's "essentially categorical" observation —
// and rows fan out by integer code.
func resolveRowLeaves(ctx context.Context, tbl *relation.Table, cols []string, gens map[string]dht.GenSet) ([][]dht.NodeID, error) {
	out := make([][]dht.NodeID, len(cols))
	for ci, col := range cols {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tree := gens[col].Tree()
		colIdx, err := tbl.Schema().Index(col)
		if err != nil {
			return nil, err
		}
		dict, codes := tbl.DictValues(colIdx), tbl.Codes(colIdx)
		used := make([]bool, len(dict))
		for _, code := range codes {
			used[code] = true
		}
		leafOf := make([]dht.NodeID, len(dict))
		for code, v := range dict {
			if !used[code] {
				continue
			}
			leaf, err := tree.ResolveLeaf(v)
			if err != nil {
				return nil, fmt.Errorf("binning: column %s value %q: %w", col, v, err)
			}
			leafOf[code] = leaf
		}
		leaves := make([]dht.NodeID, len(codes))
		for i, code := range codes {
			leaves[i] = leafOf[code]
		}
		out[ci] = leaves
	}
	return out, nil
}

// coverTable maps every tree node to the index (into gen.Nodes()) of its
// covering member, or -1. Leaf lookups then run in O(1).
func coverTable(gen dht.GenSet) []int32 {
	tree := gen.Tree()
	table := make([]int32, tree.Size())
	for i := range table {
		table[i] = -1
	}
	for mi, m := range gen.Nodes() {
		for _, leaf := range tree.LeavesUnder(m) {
			table[leaf] = int32(mi)
		}
		table[m] = int32(mi)
	}
	return table
}

// binKeyBases returns, per column, the radix base for composing a joint
// bin key from cover indices (shifted by one so an uncovered leaf's -1
// encodes as 0), and whether the full product fits in uint64 — it does
// for any realistic tree set; the string fallback exists for safety.
func binKeyBases(covers [][]int32) ([]uint64, bool) {
	bases := make([]uint64, len(covers))
	prod := uint64(1)
	fits := true
	for ci, table := range covers {
		var maxIdx int32 = -1
		for _, mi := range table {
			if mi > maxIdx {
				maxIdx = mi
			}
		}
		base := uint64(maxIdx) + 2
		bases[ci] = base
		if prod > math.MaxUint64/base {
			fits = false
		} else {
			prod *= base
		}
	}
	return bases, fits
}

// radixKeyAt composes the uint64 joint-bin key of one row.
func radixKeyAt(rowLeaves [][]dht.NodeID, covers [][]int32, bases []uint64, row int) uint64 {
	var key uint64
	for ci := range covers {
		key = key*bases[ci] + uint64(covers[ci][rowLeaves[ci][row]]+1)
	}
	return key
}

// stringKeyAt composes the string joint-bin key of one row (fallback for
// degenerate trees whose radix product overflows).
func stringKeyAt(rowLeaves [][]dht.NodeID, covers [][]int32, row int) string {
	buf := make([]byte, 0, 4*len(covers))
	for ci := range covers {
		buf = strconv.AppendInt(buf, int64(covers[ci][rowLeaves[ci][row]]), 10)
		buf = append(buf, '|')
	}
	return string(buf)
}

// fnv64a is the partitioning hash for string bin keys.
func fnv64a(s string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// jointMinBin computes the minimum non-empty joint bin size of the table
// under the per-column frontiers. weights nil counts every position once;
// otherwise position i contributes weights[i].
func jointMinBin(rowLeaves [][]dht.NodeID, covers [][]int32, weights []int) int {
	if len(rowLeaves) == 0 || len(rowLeaves[0]) == 0 {
		return 0
	}
	rows := len(rowLeaves[0])
	min := -1
	if bases, fits := binKeyBases(covers); fits {
		counts := make(map[uint64]int, rows/4+1)
		for row := 0; row < rows; row++ {
			w := 1
			if weights != nil {
				w = weights[row]
			}
			counts[radixKeyAt(rowLeaves, covers, bases, row)] += w
		}
		for _, n := range counts {
			if min < 0 || n < min {
				min = n
			}
		}
		return min
	}
	counts := make(map[string]int, rows/4+1)
	for row := 0; row < rows; row++ {
		w := 1
		if weights != nil {
			w = weights[row]
		}
		counts[stringKeyAt(rowLeaves, covers, row)] += w
	}
	for _, n := range counts {
		if min < 0 || n < min {
			min = n
		}
	}
	return min
}

// scanViolating computes, under the current covers, the per-column sets
// of frontier members (dense, indexed like gen.Nodes()) participating in
// bins below k. The table scan is sharded over workers and the bin
// counts are partitioned by key hash so the merge parallelizes too; bin
// counting is a (weight) sum and member collection a set union — both
// order-independent — so every worker count yields the same sets.
// weights nil counts every position once.
func scanViolating[K comparable](ctx context.Context, workers, k int, rowLeaves [][]dht.NodeID, covers [][]int32, weights []int, sizes []int, keyAt func(row int) K, hashOf func(K) uint64) ([][]bool, error) {
	rows := len(rowLeaves[0])
	chunks := pool.Chunks(workers, rows)
	nParts := len(chunks)
	keys := make([]K, rows)

	// Pass 1: every shard counts its rows into per-partition maps.
	shardParts := make([][]map[K]int, nParts)
	if err := pool.ForEachChunkCtx(ctx, workers, rows, func(si, lo, hi int) error {
		parts := make([]map[K]int, nParts)
		for p := range parts {
			parts[p] = make(map[K]int, (hi-lo)/(4*nParts)+1)
		}
		for row := lo; row < hi; row++ {
			if err := pool.CtxAt(ctx, row-lo); err != nil {
				return err
			}
			key := keyAt(row)
			keys[row] = key
			w := 1
			if weights != nil {
				w = weights[row]
			}
			parts[hashOf(key)%uint64(nParts)][key] += w
		}
		shardParts[si] = parts
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 2: merge each partition across shards — partitions are
	// disjoint key sets, so they merge concurrently.
	counts := make([]map[K]int, nParts)
	if err := pool.ForEachCtx(ctx, workers, nParts, func(p int) error {
		merged := shardParts[0][p]
		for si := 1; si < nParts; si++ {
			for key, n := range shardParts[si][p] {
				merged[key] += n
			}
		}
		counts[p] = merged
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 3: collect, per column, the frontier members of violating
	// rows into dense shard-local bitmaps, then OR them together.
	shardViol := make([][][]bool, nParts)
	if err := pool.ForEachChunkCtx(ctx, workers, rows, func(si, lo, hi int) error {
		viol := make([][]bool, len(covers))
		for ci := range viol {
			viol[ci] = make([]bool, sizes[ci])
		}
		for row := lo; row < hi; row++ {
			if err := pool.CtxAt(ctx, row-lo); err != nil {
				return err
			}
			key := keys[row]
			if counts[hashOf(key)%uint64(nParts)][key] < k {
				for ci := range covers {
					if mi := covers[ci][rowLeaves[ci][row]]; mi >= 0 {
						viol[ci][mi] = true
					}
				}
			}
		}
		shardViol[si] = viol
		return nil
	}); err != nil {
		return nil, err
	}
	violating := shardViol[0]
	for _, shard := range shardViol[1:] {
		for ci := range violating {
			for mi, v := range shard[ci] {
				if v {
					violating[ci][mi] = true
				}
			}
		}
	}
	return violating, nil
}

// avgSpecificityLoss averages (N−Ng)/N across the chosen frontiers.
func avgSpecificityLoss(gens []dht.GenSet) float64 {
	if len(gens) == 0 {
		return 0
	}
	sum := 0.0
	for _, g := range gens {
		sum += g.SpecificityLoss()
	}
	return sum / float64(len(gens))
}

func multiExhaustive(
	ctx context.Context,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k, enumLimit, workers int,
	rowLeaves [][]dht.NodeID,
	weights []int,
	stats *MultiStats,
) (map[string]dht.GenSet, MultiStats, error) {
	// Materialize per-column allowable generalizations (EnumGen of the
	// paper, bounded by enumLimit on the total product).
	perCol := make([][]dht.GenSet, len(cols))
	product := 1
	for ci, col := range cols {
		var list []dht.GenSet
		err := dht.EnumerateBetween(mingends[col], maxgends[col], func(g dht.GenSet) bool {
			list = append(list, g)
			return product*len(list) <= enumLimit
		})
		if err != nil {
			return nil, *stats, err
		}
		if len(list) == 0 {
			return nil, *stats, fmt.Errorf("binning: no allowable generalization for %s", col)
		}
		perCol[ci] = list
		product *= len(list)
		if product > enumLimit {
			return nil, *stats, fmt.Errorf(
				"binning: candidate product exceeds limit %d; use StrategyGreedy or raise EnumLimit", enumLimit)
		}
	}

	// Cover tables are a function of the frontier alone, so build each
	// once up front instead of per candidate (the sequential walk used to
	// rebuild them for every combination).
	perColCovers := make([][][]int32, len(cols))
	for ci, list := range perCol {
		perColCovers[ci] = make([][]int32, len(list))
		for gi, g := range list {
			perColCovers[ci][gi] = coverTable(g)
		}
	}

	// Candidates form a mixed-radix index space with column 0 as the most
	// significant digit — the exact order the recursive walk visited them
	// in. Each candidate's k-anonymity check is independent, so they are
	// evaluated in parallel; the reduction below runs in index order,
	// keeping the min-loss/first-wins tie-break byte-identical to the
	// sequential search.
	decode := func(c int, idx []int) {
		for ci := len(cols) - 1; ci >= 0; ci-- {
			idx[ci] = c % len(perCol[ci])
			c /= len(perCol[ci])
		}
	}
	type verdict struct {
		valid bool
		loss  float64
	}
	verdicts := make([]verdict, product)
	if err := pool.ForEachCtx(ctx, workers, product, func(c int) error {
		idx := make([]int, len(cols))
		decode(c, idx)
		covers := make([][]int32, len(cols))
		choice := make([]dht.GenSet, len(cols))
		for ci, gi := range idx {
			covers[ci] = perColCovers[ci][gi]
			choice[ci] = perCol[ci][gi]
		}
		if jointMinBin(rowLeaves, covers, weights) < k {
			return nil
		}
		verdicts[c] = verdict{valid: true, loss: avgSpecificityLoss(choice)}
		return nil
	}); err != nil {
		return nil, *stats, err
	}

	stats.Candidates = product
	bestIdx := -1
	bestLoss := 0.0
	for c, v := range verdicts {
		if !v.valid {
			continue
		}
		stats.Valid++
		if bestIdx < 0 || v.loss < bestLoss {
			bestIdx, bestLoss = c, v.loss
		}
	}
	if bestIdx < 0 {
		return nil, *stats, fmt.Errorf(
			"binning: no allowable generalization satisfies k=%d: %w", k, ErrUnsatisfiable)
	}
	idx := make([]int, len(cols))
	decode(bestIdx, idx)
	out := make(map[string]dht.GenSet, len(cols))
	for ci, col := range cols {
		out[col] = perCol[ci][idx[ci]]
	}
	return out, *stats, nil
}

// multiGreedyRescan is the row-rescan reference ascent: every iteration
// re-derives the violating members with a full-table scan. It remains
// the fallback for degenerate tree sets whose joint NodeID radix
// overflows uint64, and the differential oracle the incremental ascent
// (multiGreedy) is tested against.
func multiGreedyRescan(
	ctx context.Context,
	cols []string,
	mingends, maxgends map[string]dht.GenSet,
	k, workers int,
	rowLeaves [][]dht.NodeID,
	weights []int,
	stats *MultiStats,
) (map[string]dht.GenSet, MultiStats, error) {
	cur := make([]dht.GenSet, len(cols))
	for ci, col := range cols {
		cur[ci] = mingends[col]
	}
	covers := make([][]int32, len(cols))
	for ci := range cur {
		covers[ci] = coverTable(cur[ci])
	}

	for {
		// Identify the members (per column) participating in bins under
		// k. The lattice ascent is inherently iterative — every merge
		// depends on the previous one — but each iteration's full-table
		// scan shards across workers with a deterministic merge.
		sizes := make([]int, len(cur))
		for ci := range cur {
			sizes[ci] = cur[ci].Len()
		}
		var violating [][]bool
		var err error
		if bases, fits := binKeyBases(covers); fits {
			violating, err = scanViolating(ctx, workers, k, rowLeaves, covers, weights, sizes, func(row int) uint64 {
				return radixKeyAt(rowLeaves, covers, bases, row)
			}, func(key uint64) uint64 { return key })
		} else {
			violating, err = scanViolating(ctx, workers, k, rowLeaves, covers, weights, sizes, func(row int) string {
				return stringKeyAt(rowLeaves, covers, row)
			}, fnv64a)
		}
		if err != nil {
			return nil, *stats, err
		}
		anyViolation := false
		for _, col := range violating {
			for _, v := range col {
				if v {
					anyViolation = true
					break
				}
			}
		}
		if !anyViolation {
			break
		}

		// Candidate moves: merge a parent whose children are all frontier
		// members, staying within the maximal nodes. Prefer moves whose
		// merged member covers a violating bin; among those, the smallest
		// specificity-loss increase; deterministic tie-break.
		type move struct {
			ci     int
			parent dht.NodeID
			delta  float64
			helps  bool
		}
		var bestMove *move
		better := func(a, b *move) bool {
			if a.helps != b.helps {
				return a.helps
			}
			if a.delta != b.delta {
				return a.delta < b.delta
			}
			if a.ci != b.ci {
				return a.ci < b.ci
			}
			return a.parent < b.parent
		}
		for ci, col := range cols {
			tree := cur[ci].Tree()
			memberIndex := make(map[dht.NodeID]int32, cur[ci].Len())
			for mi, m := range cur[ci].Nodes() {
				memberIndex[m] = int32(mi)
			}
			for _, p := range cur[ci].MergeCandidates() {
				if _, ok := maxgends[col].CoverOf(p); !ok {
					continue // would climb past the usage metrics
				}
				helps := false
				for _, c := range tree.Children(p) {
					if violating[ci][memberIndex[c]] {
						helps = true
						break
					}
				}
				delta := float64(len(tree.Children(p))-1) / float64(tree.NumLeaves())
				m := &move{ci: ci, parent: p, delta: delta, helps: helps}
				if bestMove == nil || better(m, bestMove) {
					bestMove = m
				}
			}
		}
		if bestMove == nil {
			return nil, *stats, fmt.Errorf(
				"binning: greedy ascent exhausted at k=%d without satisfying k-anonymity: %w", k, ErrUnsatisfiable)
		}
		next, err := cur[bestMove.ci].MergeAt(bestMove.parent)
		if err != nil {
			return nil, *stats, fmt.Errorf("binning: internal: %w", err)
		}
		cur[bestMove.ci] = next
		covers[bestMove.ci] = coverTable(next)
		stats.GreedyMerges++
	}

	out := make(map[string]dht.GenSet, len(cols))
	for ci, col := range cols {
		out[col] = cur[ci]
	}
	return out, *stats, nil
}

// SortedColumns returns the quasi-identifying column names of the schema
// in deterministic (schema) order — the canonical cols argument for
// MultiBin and Run.
func SortedColumns(tbl *relation.Table) []string {
	cols := tbl.Schema().QuasiColumns()
	sorted := make([]string, len(cols))
	copy(sorted, cols)
	sort.Strings(sorted)
	return sorted
}
