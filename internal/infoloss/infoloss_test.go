package infoloss

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dht"
)

// smallTree: R → A → {a1, a2}; R → b.  Leaves: a1, a2, b.
func smallTree(t *testing.T) *dht.Tree {
	t.Helper()
	tree, err := dht.NewCategorical("c", dht.Spec{
		Value: "R",
		Children: []dht.Spec{
			{Value: "A", Children: []dht.Spec{{Value: "a1"}, {Value: "a2"}}},
			{Value: "b"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func numTree(t *testing.T) *dht.Tree {
	t.Helper()
	tree, err := dht.NewNumeric("age", 0, 100, []float64{25, 50, 75})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestLeafHistogram(t *testing.T) {
	tree := smallTree(t)
	hist, err := LeafHistogram(tree, []string{"a1", "a1", "a2", "b", "b", "b"})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := tree.ByValue("a1")
	a2, _ := tree.ByValue("a2")
	b, _ := tree.ByValue("b")
	if hist[a1] != 2 || hist[a2] != 1 || hist[b] != 3 {
		t.Errorf("hist = %v", hist)
	}
	if _, err := LeafHistogram(tree, []string{"nope"}); err == nil {
		t.Error("unknown value accepted")
	}
	if _, err := LeafHistogram(tree, []string{"A"}); err == nil {
		t.Error("internal node accepted as leaf")
	}
}

func TestLeafHistogramNumericRaw(t *testing.T) {
	tree := numTree(t)
	hist, err := LeafHistogram(tree, []string{"10", "24.9", "25", "99"})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := tree.ByValue("[0,25)")
	second, _ := tree.ByValue("[25,50)")
	last, _ := tree.ByValue("[75,100)")
	if hist[first] != 2 || hist[second] != 1 || hist[last] != 1 {
		t.Errorf("hist = %v", hist)
	}
}

func TestSubtreeCounts(t *testing.T) {
	tree := smallTree(t)
	hist, _ := LeafHistogram(tree, []string{"a1", "a1", "a2", "b", "b", "b"})
	sub := SubtreeCounts(tree, hist)
	root := tree.Root()
	a, _ := tree.ByValue("A")
	if sub[root] != 6 {
		t.Errorf("root count = %d, want 6", sub[root])
	}
	if sub[a] != 3 {
		t.Errorf("A count = %d, want 3", sub[a])
	}
}

func TestColumnLossCategoricalEq1(t *testing.T) {
	tree := smallTree(t)
	hist, _ := LeafHistogram(tree, []string{"a1", "a1", "a2", "b", "b", "b"})
	// gen {A, b}: nA=3 with (|S_A|-1)/|S| = 1/3; nb=3 with 0.
	gen, err := dht.NewGenSetFromValues(tree, []string{"A", "b"})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := ColumnLoss(gen, hist)
	if err != nil {
		t.Fatal(err)
	}
	want := (3.0 * (1.0 / 3.0)) / 6.0 // = 1/6
	if math.Abs(loss-want) > 1e-12 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	// all-leaves: zero loss
	leaf := dht.LeafGenSet(tree)
	loss, _ = ColumnLoss(leaf, hist)
	if loss != 0 {
		t.Errorf("leaf loss = %v, want 0", loss)
	}
	// root: (|S|-1)/|S| = 2/3
	root := dht.RootGenSet(tree)
	loss, _ = ColumnLoss(root, hist)
	if math.Abs(loss-2.0/3.0) > 1e-12 {
		t.Errorf("root loss = %v, want 2/3", loss)
	}
}

func TestColumnLossNumericEq2(t *testing.T) {
	tree := numTree(t)
	hist, _ := LeafHistogram(tree, []string{"10", "30", "60", "90"})
	// Leaves are width-25 intervals: loss = 25/100 = 0.25 for every entry.
	leaf := dht.LeafGenSet(tree)
	loss, err := ColumnLoss(leaf, hist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-0.25) > 1e-12 {
		t.Errorf("leaf loss = %v, want 0.25 (Eq 2 charges interval width)", loss)
	}
	// Mid frontier {[0,50),[50,100)}: 0.5.
	mid, err := dht.NewGenSetFromValues(tree, []string{"[0,50)", "[50,100)"})
	if err != nil {
		t.Fatal(err)
	}
	loss, _ = ColumnLoss(mid, hist)
	if math.Abs(loss-0.5) > 1e-12 {
		t.Errorf("mid loss = %v, want 0.5", loss)
	}
}

func TestColumnLossWeighting(t *testing.T) {
	// Loss weights members by their entry counts n_i.
	tree := numTree(t)
	// 3 entries in [0,25), 1 entry in [50,75): generalize only the right half.
	hist, _ := LeafHistogram(tree, []string{"1", "2", "3", "60"})
	gen, err := dht.NewGenSetFromValues(tree, []string{"[0,25)", "[25,50)", "[50,100)"})
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := ColumnLoss(gen, hist)
	want := (3*0.25 + 0*0.25 + 1*0.5) / 4.0
	if math.Abs(loss-want) > 1e-12 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
}

func TestColumnLossErrors(t *testing.T) {
	tree := smallTree(t)
	gen := dht.LeafGenSet(tree)
	if _, err := ColumnLoss(gen, []int{1, 2}); err == nil {
		t.Error("histogram size mismatch accepted")
	}
	if _, err := ColumnLoss(dht.GenSet{}, nil); err == nil {
		t.Error("zero GenSet accepted")
	}
	// empty histogram: zero loss, no error
	loss, err := ColumnLoss(gen, make([]int, tree.Size()))
	if err != nil || loss != 0 {
		t.Errorf("empty histogram loss = %v, %v", loss, err)
	}
}

func TestNormalizedLoss(t *testing.T) {
	if NormalizedLoss(nil) != 0 {
		t.Error("empty should be 0")
	}
	got := NormalizedLoss([]float64{0.2, 0.4, 0.6})
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("NormalizedLoss = %v, want 0.4", got)
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{PerColumn: map[string]float64{"age": 0.3}, Avg: 0.5}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Bound("age") != 0.3 || m.Bound("zip") != 1 {
		t.Error("Bound wrong")
	}
	if err := m.Check(map[string]float64{"age": 0.2, "zip": 0.6}); err != nil {
		t.Errorf("within-bounds check failed: %v", err)
	}
	if err := m.Check(map[string]float64{"age": 0.31}); err == nil {
		t.Error("per-column violation not caught")
	}
	if err := m.Check(map[string]float64{"age": 0.3, "zip": 0.9}); err == nil {
		t.Error("average violation not caught: avg=0.6 > 0.5")
	}
	bad := Metrics{PerColumn: map[string]float64{"x": 1.5}}
	if err := bad.Validate(); err == nil {
		t.Error("bound > 1 accepted")
	}
	bad2 := Metrics{Avg: -0.1}
	if err := bad2.Validate(); err == nil {
		t.Error("negative avg accepted")
	}
}

func TestDeriveMaxGenCategorical(t *testing.T) {
	tree := smallTree(t)
	hist, _ := LeafHistogram(tree, []string{"a1", "a1", "a2", "b", "b", "b"})
	// Bound 1: root is allowed.
	g, err := DeriveMaxGen(tree, hist, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(dht.RootGenSet(tree)) {
		t.Errorf("bound 1 should keep root, got %v", g)
	}
	// Bound 0: all leaves (zero loss achievable for categorical trees).
	g, err = DeriveMaxGen(tree, hist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(dht.LeafGenSet(tree)) {
		t.Errorf("bound 0 should reach leaves, got %v", g)
	}
	// Intermediate: root loss = 2/3 ≈ 0.667; frontier {A,b} loss = 1/6.
	g, err = DeriveMaxGen(tree, hist, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dht.NewGenSetFromValues(tree, []string{"A", "b"})
	if !g.Equal(want) {
		t.Errorf("bound 0.2 -> %v, want %v", g, want)
	}
	// Loss at the derived frontier must respect the bound.
	loss, _ := ColumnLoss(g, hist)
	if loss > 0.2 {
		t.Errorf("derived frontier loss %v exceeds bound", loss)
	}
	// Bad bound.
	if _, err := DeriveMaxGen(tree, hist, 1.5); err == nil {
		t.Error("bound > 1 accepted")
	}
}

func TestDeriveMaxGenNumericFloor(t *testing.T) {
	tree := numTree(t)
	hist, _ := LeafHistogram(tree, []string{"10", "30", "60", "90"})
	// Leaf floor is 0.25; an unreachable bound must error.
	if _, err := DeriveMaxGen(tree, hist, 0.1); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable bound not reported: %v", err)
	}
	// 0.25 exactly reaches the leaf frontier.
	g, err := DeriveMaxGen(tree, hist, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := ColumnLoss(g, hist)
	if loss > 0.25+1e-12 {
		t.Errorf("loss %v exceeds bound", loss)
	}
}

func TestDeriveMaxGenIsMaximalOneStep(t *testing.T) {
	// No member of the derived frontier can be merged into its parent
	// without violating the bound (one-step maximality).
	tree := numTree(t)
	hist, _ := LeafHistogram(tree, []string{"10", "30", "60", "90", "5", "45"})
	bound := 0.3
	g, err := DeriveMaxGen(tree, hist, bound)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range g.MergeCandidates() {
		merged, err := g.MergeAt(p)
		if err != nil {
			t.Fatal(err)
		}
		loss, _ := ColumnLoss(merged, hist)
		if loss <= bound {
			t.Errorf("merging %q keeps loss %v <= bound %v; frontier not maximal", tree.Value(p), loss, bound)
		}
	}
}

func TestDeriveAllMaxGens(t *testing.T) {
	tree := smallTree(t)
	hist, _ := LeafHistogram(tree, []string{"a1", "a2", "b"})
	trees := map[string]*dht.Tree{"c": tree}
	hists := map[string][]int{"c": hist}
	m := Metrics{PerColumn: map[string]float64{"c": 1}, Avg: 1}
	out, err := DeriveAllMaxGens(trees, hists, m)
	if err != nil || len(out) != 1 {
		t.Fatalf("DeriveAllMaxGens: %v", err)
	}
	if _, err := DeriveAllMaxGens(trees, map[string][]int{}, m); err == nil {
		t.Error("missing histogram accepted")
	}
	if _, err := DeriveAllMaxGens(trees, hists, Metrics{Avg: 2}); err == nil {
		t.Error("invalid metrics accepted")
	}
}

func TestTotalLoss(t *testing.T) {
	if TotalLoss(nil) != 0 {
		t.Error("empty should be 0")
	}
	got := TotalLoss([]float64{0.2, 0.4, 0.6})
	if math.Abs(got-1.2) > 1e-12 {
		t.Errorf("TotalLoss = %v, want 1.2", got)
	}
}
