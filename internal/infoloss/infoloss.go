// Package infoloss implements the information-loss model and usage
// metrics of Section 4.1 of the paper:
//
//   - Equation (1): information loss of a generalized categorical column,
//     InfLoss_c = Σ n_i (|S_i|−1)/|S| / Σ n_i
//   - Equation (2): information loss of a generalized numeric column,
//     InfLoss_c = Σ n_i (U_i−L_i)/(U−L) / Σ n_i
//   - Equation (3): normalized loss averaged over generalized columns
//   - Equation (4): usage-metric bounds InfLoss_i ≤ bd_i, InfLoss ≤ bd_avg
//
// plus the off-line enforcement of the metrics: deriving the maximal
// generalization nodes — the highest valid generalization whose loss
// stays within the bound — so binning can start from them and never
// re-evaluate the metric (the paper's core efficiency argument).
package infoloss

import (
	"errors"
	"fmt"

	"repro/internal/dht"
)

// LeafHistogram counts, for each tree node ID, the number of column
// entries resolving to a leaf of that exact node (non-leaf positions stay
// zero). Raw numeric values resolve through their covering leaf interval.
func LeafHistogram(tree *dht.Tree, values []string) ([]int, error) {
	counts := make([]int, tree.Size())
	for i, v := range values {
		leaf, err := tree.ResolveLeaf(v)
		if err != nil {
			return nil, fmt.Errorf("infoloss: row %d: %w", i, err)
		}
		counts[leaf]++
	}
	return counts, nil
}

// LeafHistogramCodes is LeafHistogram over a dictionary-encoded column:
// each distinct value (dictionary entry) resolves to its leaf once, and
// the code vector is folded into the histogram with pure integer
// indexing — no per-row string hashing. Dictionary entries not present
// in codes are never resolved, so stale entries cannot fail the scan.
func LeafHistogramCodes(tree *dht.Tree, dict []string, codes []uint32) ([]int, error) {
	perCode := make([]int, len(dict))
	for code := range perCode {
		perCode[code] = -1
	}
	for _, code := range codes {
		perCode[code] = 0
	}
	leafOf := make([]dht.NodeID, len(dict))
	for code, v := range dict {
		if perCode[code] < 0 {
			continue // unused dictionary entry
		}
		leaf, err := tree.ResolveLeaf(v)
		if err != nil {
			return nil, fmt.Errorf("infoloss: value %q: %w", v, err)
		}
		leafOf[code] = leaf
	}
	counts := make([]int, tree.Size())
	for _, code := range codes {
		counts[leafOf[code]]++
	}
	return counts, nil
}

// SubtreeCounts turns a leaf histogram into per-node subtree sums:
// out[id] = number of entries whose leaf lies under id. This is the
// paper's NumTuple(SubTree(nd, tr), tbl) for every nd, computed once in
// O(nodes) instead of rescanning the table per subtree.
func SubtreeCounts(tree *dht.Tree, leafCounts []int) []int {
	out := make([]int, tree.Size())
	copy(out, leafCounts)
	// Nodes are stored in DFS preorder: children have larger IDs than
	// their parent, so a reverse scan accumulates bottom-up.
	for i := tree.Size() - 1; i >= 1; i-- {
		parent := tree.Parent(dht.NodeID(i))
		out[parent] += out[i]
	}
	return out
}

// ColumnLoss computes the information loss of generalizing a column to
// the frontier gen, given the column's leaf histogram. It dispatches to
// Equation (2) for numeric trees and Equation (1) for categorical trees.
// Entries under members with zero count contribute nothing (n_i = 0).
func ColumnLoss(gen dht.GenSet, leafCounts []int) (float64, error) {
	tree := gen.Tree()
	if tree == nil {
		return 0, errors.New("infoloss: zero generalization set")
	}
	if len(leafCounts) != tree.Size() {
		return 0, fmt.Errorf("infoloss: histogram size %d, tree size %d", len(leafCounts), tree.Size())
	}
	sub := SubtreeCounts(tree, leafCounts)
	var num, den float64
	if tree.Numeric() {
		root := tree.Node(tree.Root())
		domain := root.Hi - root.Lo
		for _, id := range gen.Nodes() {
			n := float64(sub[id])
			nd := tree.Node(id)
			num += n * (nd.Hi - nd.Lo) / domain
			den += n
		}
	} else {
		total := float64(tree.NumLeaves())
		for _, id := range gen.Nodes() {
			n := float64(sub[id])
			num += n * float64(tree.NumLeavesUnder(id)-1) / total
			den += n
		}
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// NormalizedLoss implements Equation (3): the average of the per-column
// losses over the CN generalized columns.
func NormalizedLoss(losses []float64) float64 {
	if len(losses) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range losses {
		sum += l
	}
	return sum / float64(len(losses))
}

// Metrics is the usage-metric bound set B of Equation (4): per-column
// maximal allowable information loss plus an average bound. A column
// absent from PerColumn is unconstrained (bound 1).
type Metrics struct {
	// PerColumn maps column name to bd_i ∈ [0,1].
	PerColumn map[string]float64
	// Avg is bd_avg ∈ [0,1]; zero means "unconstrained" only when no
	// entry was intended — use 1 to express that explicitly.
	Avg float64
}

// Validate checks the bounds are within [0,1].
func (m Metrics) Validate() error {
	for col, bd := range m.PerColumn {
		if bd < 0 || bd > 1 {
			return fmt.Errorf("infoloss: bound for %s out of [0,1]: %v", col, bd)
		}
	}
	if m.Avg < 0 || m.Avg > 1 {
		return fmt.Errorf("infoloss: average bound out of [0,1]: %v", m.Avg)
	}
	return nil
}

// Bound returns bd_i for a column (1 when unconstrained).
func (m Metrics) Bound(col string) float64 {
	if bd, ok := m.PerColumn[col]; ok {
		return bd
	}
	return 1
}

// Check enforces Equation (4) against measured per-column losses.
// It returns a descriptive error naming the first violated bound.
func (m Metrics) Check(losses map[string]float64) error {
	var sum float64
	for col, loss := range losses {
		if bd := m.Bound(col); loss > bd+1e-12 {
			return fmt.Errorf("infoloss: column %s loss %.4f exceeds bound %.4f", col, loss, bd)
		}
		sum += loss
	}
	if len(losses) > 0 && m.Avg > 0 {
		avg := sum / float64(len(losses))
		if avg > m.Avg+1e-12 {
			return fmt.Errorf("infoloss: average loss %.4f exceeds bound %.4f", avg, m.Avg)
		}
	}
	return nil
}

// DeriveMaxGen implements the off-line enforcement of §4.1: it returns
// maximal generalization nodes for one column — a valid generalization
// whose information loss stays within bound, with members as high in the
// tree as the bound allows. The search is top-down: start at {root} and
// repeatedly split the member contributing the most loss until the bound
// holds. The result is a (possibly non-unique) maximal frontier; the
// paper itself prefers the maximal nodes to be "directly given as the
// usage metrics", which callers can do instead.
//
// For numeric trees even the all-leaves frontier has positive loss
// (Equation 2 charges interval width); if bound is below that floor,
// DeriveMaxGen returns an error.
func DeriveMaxGen(tree *dht.Tree, leafCounts []int, bound float64) (dht.GenSet, error) {
	if bound < 0 || bound > 1 {
		return dht.GenSet{}, fmt.Errorf("infoloss: bound out of [0,1]: %v", bound)
	}
	cur := dht.RootGenSet(tree)
	for {
		loss, err := ColumnLoss(cur, leafCounts)
		if err != nil {
			return dht.GenSet{}, err
		}
		if loss <= bound+1e-12 {
			return cur, nil
		}
		// Split the member with the largest loss contribution that is
		// still splittable.
		sub := SubtreeCounts(tree, leafCounts)
		bestID := dht.None
		bestContrib := -1.0
		for _, id := range cur.Nodes() {
			if tree.Node(id).IsLeaf() {
				continue
			}
			var contrib float64
			if tree.Numeric() {
				root := tree.Node(tree.Root())
				nd := tree.Node(id)
				contrib = float64(sub[id]) * (nd.Hi - nd.Lo) / (root.Hi - root.Lo)
			} else {
				contrib = float64(sub[id]) * float64(tree.NumLeavesUnder(id)-1) / float64(tree.NumLeaves())
			}
			if contrib > bestContrib {
				bestContrib = contrib
				bestID = id
			}
		}
		if bestID == dht.None {
			return dht.GenSet{}, fmt.Errorf(
				"infoloss: bound %.4f unreachable for %s (all-leaves loss %.4f)", bound, tree.Attr(), loss)
		}
		next, err := cur.SplitAt(bestID)
		if err != nil {
			return dht.GenSet{}, err
		}
		cur = next
	}
}

// DeriveAllMaxGens applies DeriveMaxGen per column using the metric
// bounds, returning the maximal-generalization-node form of the usage
// metrics — what the binning agent consumes.
func DeriveAllMaxGens(trees map[string]*dht.Tree, histograms map[string][]int, m Metrics) (map[string]dht.GenSet, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]dht.GenSet, len(trees))
	for col, tree := range trees {
		hist, ok := histograms[col]
		if !ok {
			return nil, fmt.Errorf("infoloss: no histogram for column %s", col)
		}
		g, err := DeriveMaxGen(tree, hist, m.Bound(col))
		if err != nil {
			return nil, fmt.Errorf("infoloss: column %s: %w", col, err)
		}
		out[col] = g
	}
	return out, nil
}

// TotalLoss is the "total information loss" variant §4.1 mentions
// alongside the normalized average: the sum of per-column losses. It
// ranges in [0, CN] for CN generalized columns.
func TotalLoss(losses []float64) float64 {
	sum := 0.0
	for _, l := range losses {
		sum += l
	}
	return sum
}
