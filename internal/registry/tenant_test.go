package registry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/tenant"
)

// tenantRecord builds a valid record for (tenantID, recipientID),
// reusing one fingerprinted plan per test binary — the plan's content
// is irrelevant to namespacing, only its validity.
var tenantRecordOnce sync.Once
var tenantRecordBase Record

func tenantRecord(t *testing.T, tenantID, recipientID string) Record {
	t.Helper()
	tenantRecordOnce.Do(func() {
		tenantRecordBase = testRecords(t, "base-recipient")[0]
	})
	rec := tenantRecordBase
	rec.TenantID = tenantID
	rec.RecipientID = recipientID
	// Candidate.ID inside the plan's provenance does not participate in
	// store keying, so renaming the record alone is fine here.
	return rec
}

func TestTenantNamespacing(t *testing.T) {
	s := New()
	a := tenantRecord(t, "tenant-a", "hospital-1")
	b := tenantRecord(t, "tenant-b", "hospital-1") // same recipient ID, different tenant
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	// Same recipient ID under a different tenant must not conflict.
	if err := s.Put(b); err != nil {
		t.Fatalf("cross-tenant Put of the same recipient ID: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}

	got, ok := s.GetIn("tenant-a", "hospital-1")
	if !ok || got.TenantID != "tenant-a" || got.KeyFingerprint != a.KeyFingerprint {
		t.Fatalf("GetIn(tenant-a) = %+v, %v", got, ok)
	}
	if _, ok := s.GetIn("tenant-c", "hospital-1"); ok {
		t.Fatal("GetIn leaked a record to a foreign tenant")
	}

	la := s.ListIn("tenant-a")
	if len(la) != 1 || la[0].TenantID != "tenant-a" {
		t.Fatalf("ListIn(tenant-a) = %+v, want only tenant-a's record", la)
	}
	if all := s.List(); len(all) != 2 {
		t.Fatalf("List (operator view) = %d records, want 2", len(all))
	}

	// DeleteIn only touches its own tenant.
	if had, err := s.DeleteIn("tenant-b", "hospital-1"); err != nil || !had {
		t.Fatalf("DeleteIn(tenant-b) = %v, %v", had, err)
	}
	if _, ok := s.GetIn("tenant-a", "hospital-1"); !ok {
		t.Fatal("DeleteIn(tenant-b) removed tenant-a's record")
	}
}

func TestDefaultTenantCompat(t *testing.T) {
	s := New()
	rec := tenantRecord(t, "", "legacy") // no tenant: the CLI path
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// The tenant-less accessors and the default-tenant accessors see the
	// same record.
	if _, ok := s.Get("legacy"); !ok {
		t.Fatal("Get missed the default-tenant record")
	}
	if _, ok := s.GetIn(tenant.DefaultID, "legacy"); !ok {
		t.Fatal("GetIn(default) missed the tenant-less record")
	}
	if got := s.ListIn(""); len(got) != 1 || got[0].TenantID != tenant.DefaultID {
		t.Fatalf("ListIn(\"\") = %+v, want the normalized default record", got)
	}
}

func TestOpenMigratesTenantlessRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(tenantRecord(t, "", "old-recipient")); err != nil {
		t.Fatal(err)
	}
	// Strip the tenant_id field from the persisted file to simulate a
	// pre-multi-tenant registry.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.ReplaceAll(string(data), `"tenant_id": "default",`, "")
	if stripped == string(data) {
		t.Fatal("fixture did not contain a tenant_id to strip")
	}
	if err := os.WriteFile(path, []byte(stripped), 0o600); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("pre-tenant registry no longer loads: %v", err)
	}
	got, ok := s2.GetIn(tenant.DefaultID, "old-recipient")
	if !ok || got.TenantID != tenant.DefaultID {
		t.Fatalf("migrated record = %+v, %v; want default tenant", got, ok)
	}
}

func TestValidateRejectsNULInIDs(t *testing.T) {
	rec := tenantRecord(t, "a\x00b", "r")
	if err := rec.Validate(); err == nil {
		t.Fatal("NUL in tenant ID accepted")
	}
	rec = tenantRecord(t, "a", "r\x00s")
	if err := rec.Validate(); err == nil {
		t.Fatal("NUL in recipient ID accepted")
	}
}
