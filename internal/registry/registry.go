// Package registry is the owner-side recipient registry for
// multi-recipient fingerprinting: one record per outsourced copy,
// holding everything (besides the master secret) a later leak traceback
// needs — the recipient ID, the non-secret fingerprint of the copy's
// key, the recipient-salted mark and the frozen protection plan.
//
// The store is JSON-on-disk with atomic temp+rename writes (a crash
// mid-write never corrupts the registry) and is safe for concurrent
// use. A store opened with an empty path is in-memory only — useful for
// tests and for service deployments that treat the registry as
// ephemeral.
//
// File format (FormatVersion 1):
//
//	{
//	  "registry_version": 1,
//	  "recipients": [
//	    {
//	      "recipient_id": "hospital-a",
//	      "eta": 75,
//	      "key_fingerprint": "b59c...",   // crypt.WatermarkKey.Fingerprint
//	      "mark": "01101...",             // F(v, recipient_id)
//	      "duplication": 4,
//	      "created_at": "2026-07-30T12:00:00Z",
//	      "plan": { ... core.Plan JSON ... }
//	    }
//	  ]
//	}
//
// Records are sorted by recipient ID; loading rejects unknown versions,
// duplicate IDs and invalid plans (a half-understood registry must not
// silently drive detection).
package registry

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/tenant"
)

// FormatVersion is the registry file format version.
const FormatVersion = 1

// ErrConflict marks a Put that would replace an existing recipient's
// record with a different mark or key: the released copy carrying the
// old mark would become untraceable. Delete the old record explicitly
// (or register under a fresh ID) to proceed.
var ErrConflict = errors.New("registry: recipient already registered with a different mark or key")

// Record is one registered recipient.
type Record struct {
	// TenantID names the tenant that owns this record; the store's
	// *In accessors see only their own tenant's records. Empty means
	// tenant.DefaultID — records written before multi-tenancy (and CLI
	// usage, which is single-owner) load and persist unchanged.
	TenantID string `json:"tenant_id,omitempty"`
	// RecipientID is the stable recipient identifier; it salted the
	// copy's mark and keys this record.
	RecipientID string `json:"recipient_id"`
	// Eta is the selection parameter η the copy was marked under
	// (non-secret; the key re-derivation needs it).
	Eta uint64 `json:"eta"`
	// KeyFingerprint is the non-secret digest of the recipient's key
	// set. Traceback verifies a re-derived key against it before
	// trusting any verdict.
	KeyFingerprint string `json:"key_fingerprint"`
	// Mark and Duplication mirror the plan's watermark parameters for
	// at-a-glance reading; they must agree with Plan.
	Mark        string `json:"mark"`
	Duplication int    `json:"duplication"`
	// CreatedAt is an informational RFC3339 timestamp ("" when unknown).
	CreatedAt string `json:"created_at,omitempty"`
	// Plan is the recipient copy's effective protection plan — a
	// superset of the provenance record detection needs, so the same
	// registry also serves incremental appends to a recipient's copy.
	Plan core.Plan `json:"plan"`
}

// Validate checks the record's internal consistency.
func (r Record) Validate() error {
	if r.RecipientID == "" {
		return fmt.Errorf("registry: record has an empty recipient ID")
	}
	// NUL separates tenant from recipient in the store's composite
	// key; allowing it in either part would let crafted IDs collide
	// across tenants.
	if bytes.ContainsAny([]byte(r.TenantID), "\x00") || bytes.ContainsAny([]byte(r.RecipientID), "\x00") {
		return fmt.Errorf("registry: recipient %q: IDs must not contain NUL", r.RecipientID)
	}
	if r.KeyFingerprint == "" {
		return fmt.Errorf("registry: recipient %q: empty key fingerprint", r.RecipientID)
	}
	if err := r.Plan.Validate(); err != nil {
		return fmt.Errorf("registry: recipient %q: %w", r.RecipientID, err)
	}
	if r.Mark != r.Plan.Mark {
		return fmt.Errorf("registry: recipient %q: record mark does not match its plan", r.RecipientID)
	}
	if r.Duplication != r.Plan.Duplication {
		return fmt.Errorf("registry: recipient %q: record duplication does not match its plan", r.RecipientID)
	}
	return nil
}

// RecordOf builds the registry record for one fingerprinted copy.
func RecordOf(recipientID string, key crypt.WatermarkKey, plan core.Plan) Record {
	return Record{
		RecipientID:    recipientID,
		Eta:            key.Eta,
		KeyFingerprint: key.Fingerprint(),
		Mark:           plan.Mark,
		Duplication:    plan.Duplication,
		Plan:           plan,
	}
}

// Candidate converts a record plus the recipient's key into a traceback
// candidate, verifying the key against the stored fingerprint. The
// fingerprint is secret-derived, so the comparison is constant-time:
// a mismatch must not leak how many leading bytes a guessed secret got
// right.
func (r Record) Candidate(key crypt.WatermarkKey) (core.Candidate, error) {
	if subtle.ConstantTimeCompare([]byte(key.Fingerprint()), []byte(r.KeyFingerprint)) != 1 {
		return core.Candidate{}, fmt.Errorf(
			"registry: recipient %q: key does not match the registered fingerprint (wrong secret, or the record was registered under a foreign key): %w",
			r.RecipientID, core.ErrKeyMismatch)
	}
	return core.Candidate{ID: r.RecipientID, Provenance: r.Plan.Provenance, Key: key}, nil
}

// CandidatesFromSecret re-derives every record's key from the owner's
// master secret (crypt.RecipientWatermarkKey — the derivation
// fingerprinting used) and verifies each against the stored
// fingerprint. Records the secret does not verify are skipped and
// reported (second return) rather than failing the whole set — one
// foreign or stale record must not block tracing every other recipient.
// Only when the secret verifies nothing does it error with
// core.ErrKeyMismatch: that is a wrong secret, not a mixed registry.
func CandidatesFromSecret(recs []Record, secret string) ([]core.Candidate, []string, error) {
	out := make([]core.Candidate, 0, len(recs))
	var skipped []string
	for _, r := range recs {
		cand, err := r.Candidate(crypt.RecipientWatermarkKey(secret, r.RecipientID, r.Eta))
		if err != nil {
			skipped = append(skipped, r.RecipientID)
			continue
		}
		out = append(out, cand)
	}
	if len(out) == 0 && len(recs) > 0 {
		return nil, skipped, fmt.Errorf(
			"registry: the secret verifies none of the %d registered recipients (wrong master secret?): %w",
			len(recs), core.ErrKeyMismatch)
	}
	return out, skipped, nil
}

// Store is the concurrent-safe recipient registry. Records are keyed
// by (tenant, recipient): two tenants may each register a recipient
// named "hospital-a" without colliding, and the *In accessors scope
// every read and write to one tenant.
type Store struct {
	mu   sync.RWMutex
	path string            // "" = in-memory only
	recs map[string]Record // key: tenant + "\x00" + recipient ID
}

// tenantOf resolves a record's effective tenant.
func tenantOf(id string) string {
	if id == "" {
		return tenant.DefaultID
	}
	return id
}

// storeKey is the composite map key for a record.
func storeKey(tenantID, recipientID string) string {
	return tenantOf(tenantID) + "\x00" + recipientID
}

// New returns an empty in-memory store (nothing is ever persisted).
func New() *Store {
	return &Store{recs: make(map[string]Record)}
}

// Open loads the registry at path, or returns an empty store bound to
// path when the file does not exist yet (it is created on the first
// Put). An empty path is New().
func Open(path string) (*Store, error) {
	s := New()
	s.path = path
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var doc document
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("registry: decoding %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("registry: trailing data after document in %s", path)
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("registry: %s has format version %d, want %d", path, doc.Version, FormatVersion)
	}
	for _, r := range doc.Recipients {
		// Migration: registries written before multi-tenancy carry no
		// tenant ID; those records are adopted by the default tenant so
		// existing files keep loading (and keep serving the CLI, which
		// always operates as the default tenant).
		r.TenantID = tenantOf(r.TenantID)
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("registry: %s: %w", path, err)
		}
		key := storeKey(r.TenantID, r.RecipientID)
		if _, dup := s.recs[key]; dup {
			return nil, fmt.Errorf("registry: %s: duplicate recipient %q (tenant %q)", path, r.RecipientID, r.TenantID)
		}
		s.recs[key] = r
	}
	return s, nil
}

// Path returns the backing file path ("" for an in-memory store).
func (s *Store) Path() string { return s.path }

// Len returns the number of registered recipients.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Get returns the default tenant's record for id (the single-owner CLI
// view). Service handlers use GetIn with the authenticated tenant.
func (s *Store) Get(id string) (Record, bool) {
	return s.GetIn(tenant.DefaultID, id)
}

// GetIn returns tenantID's record for id.
func (s *Store) GetIn(tenantID, id string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.recs[storeKey(tenantID, id)]
	return r, ok
}

// List returns every record across all tenants, sorted by (tenant,
// recipient) — the operator/CLI view. Tenant-scoped callers use ListIn.
func (s *Store) List() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, r)
	}
	sortRecords(out)
	return out
}

// ListIn returns tenantID's records sorted by recipient ID.
func (s *Store) ListIn(tenantID string) []Record {
	tenantID = tenantOf(tenantID)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		if r.TenantID == tenantID {
			out = append(out, r)
		}
	}
	sortRecords(out)
	return out
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].TenantID != recs[j].TenantID {
			return recs[i].TenantID < recs[j].TenantID
		}
		return recs[i].RecipientID < recs[j].RecipientID
	})
}

// Put validates and inserts a record, persisting the store. Re-putting
// an identical (mark, key) record for an existing recipient is an
// idempotent update; replacing it with a *different* mark or key is
// refused with ErrConflict — silently overwriting would orphan the
// already-released copy (its leak could no longer be traced). Delete
// the old record first to force the replacement.
func (s *Store) Put(rec Record) error {
	rec.TenantID = tenantOf(rec.TenantID)
	if err := rec.Validate(); err != nil {
		return err
	}
	key := storeKey(rec.TenantID, rec.RecipientID)
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.recs[key]
	if had && (prev.Mark != rec.Mark || prev.KeyFingerprint != rec.KeyFingerprint) {
		return fmt.Errorf(
			"registry: recipient %q is already registered with a different mark/key; delete the old record first (replacing it would make the released copy untraceable): %w",
			rec.RecipientID, ErrConflict)
	}
	s.recs[key] = rec
	if err := s.persistLocked(); err != nil {
		// Keep memory and disk in agreement on failure.
		if had {
			s.recs[key] = prev
		} else {
			delete(s.recs, key)
		}
		return err
	}
	return nil
}

// PutAll registers a batch atomically: every record is validated and
// conflict-checked against the store (and the batch itself) before any
// is inserted, and the store persists once — a fingerprint run either
// registers all its recipients or none, never a prefix. The same
// ErrConflict rule as Put applies per record.
func (s *Store) PutAll(recs []Record) error {
	recs = append([]Record(nil), recs...)
	for i := range recs {
		recs[i].TenantID = tenantOf(recs[i].TenantID)
		if err := recs[i].Validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		key := storeKey(r.TenantID, r.RecipientID)
		if seen[key] {
			return fmt.Errorf("registry: duplicate recipient %q in batch", r.RecipientID)
		}
		seen[key] = true
		if prev, had := s.recs[key]; had && (prev.Mark != r.Mark || prev.KeyFingerprint != r.KeyFingerprint) {
			return fmt.Errorf(
				"registry: recipient %q is already registered with a different mark/key; delete the old record first (replacing it would make the released copy untraceable): %w",
				r.RecipientID, ErrConflict)
		}
	}
	type prevState struct {
		rec Record
		had bool
	}
	prev := make(map[string]prevState, len(recs))
	for _, r := range recs {
		key := storeKey(r.TenantID, r.RecipientID)
		p, had := s.recs[key]
		prev[key] = prevState{rec: p, had: had}
		s.recs[key] = r
	}
	if err := s.persistLocked(); err != nil {
		for key, p := range prev {
			if p.had {
				s.recs[key] = p.rec
			} else {
				delete(s.recs, key)
			}
		}
		return err
	}
	return nil
}

// Delete removes the default tenant's record for id (the CLI view);
// service handlers use DeleteIn. It reports whether the record existed.
func (s *Store) Delete(id string) (bool, error) {
	return s.DeleteIn(tenant.DefaultID, id)
}

// DeleteIn removes tenantID's record for id, persisting the store. It
// reports whether the record existed.
func (s *Store) DeleteIn(tenantID, id string) (bool, error) {
	key := storeKey(tenantID, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.recs[key]
	if !had {
		return false, nil
	}
	delete(s.recs, key)
	if err := s.persistLocked(); err != nil {
		s.recs[key] = prev
		return false, err
	}
	return true, nil
}

type document struct {
	Version    int      `json:"registry_version"`
	Recipients []Record `json:"recipients"`
}

// persistLocked writes the registry atomically: temp file in the target
// directory, sync, rename over path. Callers hold the write lock.
func (s *Store) persistLocked() (err error) {
	if s.path == "" {
		return nil
	}
	doc := document{Version: FormatVersion, Recipients: make([]Record, 0, len(s.recs))}
	for _, r := range s.recs {
		doc.Recipients = append(doc.Recipients, r)
	}
	sortRecords(doc.Recipients)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	dir, base := filepath.Dir(s.path), filepath.Base(s.path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = f.Chmod(0o600); err != nil {
		return err
	}
	if _, err = f.Write(append(data, '\n')); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}
