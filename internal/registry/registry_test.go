package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/datagen"
	"repro/internal/ontology"
)

const testSecret = "registry master secret"

// testRecords fingerprints a small table for the given recipients and
// returns their registry records.
func testRecords(t *testing.T, ids ...string) []Record {
	t.Helper()
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := datagen.Generate(datagen.Config{Rows: 600, Seed: 3, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	recipients := make([]core.Recipient, len(ids))
	for i, id := range ids {
		recipients[i] = core.Recipient{ID: id, Key: crypt.RecipientWatermarkKey(testSecret, id, 10)}
	}
	results, err := fw.Fingerprint(tbl, recipients)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, len(results))
	for i, r := range results {
		recs[i] = RecordOf(r.RecipientID, recipients[i].Key, r.Protected.Plan)
	}
	return recs
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, "hospital-a", "hospital-b")
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}

	// Reopen from disk: same records, sorted by ID.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	list := s2.List()
	if len(list) != 2 || list[0].RecipientID != "hospital-a" || list[1].RecipientID != "hospital-b" {
		t.Fatalf("reopened list: %+v", list)
	}
	got, ok := s2.Get("hospital-b")
	if !ok {
		t.Fatal("hospital-b missing after reopen")
	}
	if got.Mark != recs[1].Mark || got.KeyFingerprint != recs[1].KeyFingerprint {
		t.Error("record fields did not round-trip")
	}
	if err := got.Plan.Validate(); err != nil {
		t.Errorf("reloaded plan invalid: %v", err)
	}

	// Delete persists too.
	if had, err := s2.Delete("hospital-a"); err != nil || !had {
		t.Fatalf("delete: had=%v err=%v", had, err)
	}
	if had, err := s2.Delete("hospital-a"); err != nil || had {
		t.Fatalf("double delete: had=%v err=%v", had, err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		t.Fatalf("len after delete+reopen = %d", s3.Len())
	}
}

func TestOpenMissingFileIsEmpty(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("missing file should open empty")
	}
}

func TestInMemoryStoreNeverPersists(t *testing.T) {
	s := New()
	recs := testRecords(t, "a")
	if err := s.Put(recs[0]); err != nil {
		t.Fatal(err)
	}
	if s.Path() != "" || s.Len() != 1 {
		t.Fatalf("in-memory store: path=%q len=%d", s.Path(), s.Len())
	}
}

func TestOpenRejectsBadDocuments(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"version":  `{"registry_version": 99, "recipients": []}`,
		"unknown":  `{"registry_version": 1, "recipients": [], "extra": true}`,
		"trailing": `{"registry_version": 1, "recipients": []}{"more": 1}`,
		"garbage":  `not json`,
	}
	for name, doc := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Errorf("%s: bad document accepted", name)
		}
	}
}

func TestPutRejectsInvalidRecords(t *testing.T) {
	s := New()
	recs := testRecords(t, "a")
	bad := recs[0]
	bad.RecipientID = ""
	if err := s.Put(bad); err == nil {
		t.Error("empty recipient ID accepted")
	}
	bad = recs[0]
	bad.Mark = strings.Repeat("1", len(bad.Mark))
	if err := s.Put(bad); err == nil {
		t.Error("mark/plan mismatch accepted")
	}
	bad = recs[0]
	bad.KeyFingerprint = ""
	if err := s.Put(bad); err == nil {
		t.Error("empty fingerprint accepted")
	}
	if s.Len() != 0 {
		t.Errorf("invalid puts left %d records", s.Len())
	}
}

func TestPutAllIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, "a", "b", "c")
	// Pre-register "b" under a different key so the batch conflicts in
	// the middle.
	blocker := recs[1]
	blocker.KeyFingerprint = crypt.RecipientWatermarkKey("other secret", "b", blocker.Eta).Fingerprint()
	if err := s.Put(blocker); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAll(recs); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting batch: got %v, want ErrConflict", err)
	}
	// Nothing from the failed batch landed — not even "a".
	if _, ok := s.Get("a"); ok {
		t.Error("failed batch registered a prefix")
	}
	if got, _ := s.Get("b"); got.KeyFingerprint != blocker.KeyFingerprint {
		t.Error("failed batch mutated the existing record")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d after failed batch", s.Len())
	}
	// A clean batch lands completely and persists.
	if _, err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAll(recs); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 3 {
		t.Fatalf("len after batch+reopen = %d", reopened.Len())
	}
	// Duplicate IDs within one batch are rejected upfront.
	if err := New().PutAll([]Record{recs[0], recs[0]}); err == nil {
		t.Error("duplicate batch IDs accepted")
	}
}

func TestCandidatesFromSecret(t *testing.T) {
	recs := testRecords(t, "hospital-a", "hospital-b")
	cands, skipped, err := CandidatesFromSecret(recs, testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 || len(skipped) != 0 {
		t.Fatalf("got %d candidates, %d skipped", len(cands), len(skipped))
	}
	for i, c := range cands {
		if c.ID != recs[i].RecipientID {
			t.Errorf("candidate %d: ID %q", i, c.ID)
		}
		if c.Provenance.Mark != recs[i].Mark {
			t.Errorf("candidate %d: provenance mark mismatch", i)
		}
		if err := c.Key.Validate(); err != nil {
			t.Errorf("candidate %d: %v", i, err)
		}
	}

	// A wholly wrong secret verifies nothing: hard error.
	if _, _, err := CandidatesFromSecret(recs, "wrong secret"); !errors.Is(err, core.ErrKeyMismatch) {
		t.Errorf("wrong secret: got %v", err)
	}

	// One foreign record (registered under another secret) is skipped,
	// not fatal — the rest of the registry stays traceable.
	foreign := recs[1]
	foreign.RecipientID = "foreign-x"
	foreign.KeyFingerprint = crypt.RecipientWatermarkKey("another secret", "foreign-x", foreign.Eta).Fingerprint()
	mixed := append([]Record{recs[0]}, foreign)
	cands, skipped, err = CandidatesFromSecret(mixed, testSecret)
	if err != nil {
		t.Fatalf("mixed registry: %v", err)
	}
	if len(cands) != 1 || cands[0].ID != "hospital-a" {
		t.Fatalf("mixed registry candidates: %+v", cands)
	}
	if len(skipped) != 1 || skipped[0] != "foreign-x" {
		t.Fatalf("mixed registry skipped: %v", skipped)
	}
}

func TestPutRefusesConflictingOverwrite(t *testing.T) {
	s := New()
	recs := testRecords(t, "hospital-a")
	if err := s.Put(recs[0]); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-put of the same (mark, key) is fine.
	again := recs[0]
	again.CreatedAt = "2026-07-30T12:00:00Z"
	if err := s.Put(again); err != nil {
		t.Fatalf("idempotent re-put refused: %v", err)
	}
	// A different key for the same ID would orphan the released copy.
	clobber := recs[0]
	clobber.KeyFingerprint = crypt.RecipientWatermarkKey("other secret", "hospital-a", clobber.Eta).Fingerprint()
	if err := s.Put(clobber); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting overwrite: got %v, want ErrConflict", err)
	}
	got, _ := s.Get("hospital-a")
	if got.KeyFingerprint != recs[0].KeyFingerprint {
		t.Error("conflicting put mutated the stored record")
	}
	// After an explicit delete the replacement goes through.
	if _, err := s.Delete("hospital-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(clobber); err != nil {
		t.Fatalf("put after delete: %v", err)
	}
}

// TestStoreConcurrency is the -race workout: concurrent Put/Get/List/
// Delete over one persistent store must be safe and leave a loadable
// file behind.
func TestStoreConcurrency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	base := testRecords(t, "seed")[0]

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rec := base
				rec.RecipientID = fmt.Sprintf("r-%d-%d", w, i)
				if err := s.Put(rec); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				s.Get(rec.RecipientID)
				s.List()
				if i%3 == 0 {
					if _, err := s.Delete(rec.RecipientID); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("registry unreadable after concurrent writes: %v", err)
	}
	if reopened.Len() != s.Len() {
		t.Errorf("disk has %d records, memory has %d", reopened.Len(), s.Len())
	}
}
