package datagen

import (
	"strconv"
	"testing"

	"repro/internal/ontology"
)

func TestGenerateBasic(t *testing.T) {
	cfg := Config{Rows: 500, Seed: 7, Correlate: true, ZipfS: 1.2}
	tbl, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d, want 500", tbl.NumRows())
	}
	if tbl.Schema().NumColumns() != 6 {
		t.Fatalf("columns = %d", tbl.Schema().NumColumns())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Rows: 200, Seed: 42, Correlate: true, ZipfS: 1.2}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumRows(); i++ {
		for _, c := range a.Schema().Names() {
			av, _ := a.Cell(i, c)
			bv, _ := b.Cell(i, c)
			if av != bv {
				t.Fatalf("row %d col %s: %q != %q (nondeterministic)", i, c, av, bv)
			}
		}
	}
	// Different seed should differ somewhere.
	c, err := Generate(Config{Rows: 200, Seed: 43, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumRows() && same; i++ {
		for _, col := range a.Schema().Names() {
			av, _ := a.Cell(i, col)
			cv, _ := c.Cell(i, col)
			if av != cv {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateValuesInDomains(t *testing.T) {
	tbl, err := Generate(Config{Rows: 300, Seed: 5, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	trees := ontology.Trees()
	for i := 0; i < tbl.NumRows(); i++ {
		for col, tree := range trees {
			v, _ := tbl.Cell(i, col)
			if _, err := tree.ResolveLeaf(v); err != nil {
				t.Fatalf("row %d: %s=%q not a leaf of its DHT: %v", i, col, v, err)
			}
		}
		age, _ := tbl.Cell(i, ontology.ColAge)
		x, err := strconv.Atoi(age)
		if err != nil || x < 0 || x >= 150 {
			t.Fatalf("row %d: bad age %q", i, age)
		}
	}
}

func TestGenerateSSNsUnique(t *testing.T) {
	tbl, err := Generate(Config{Rows: 5000, Seed: 11, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, tbl.NumRows())
	col, _ := tbl.Column(ontology.ColSSN)
	for i, s := range col {
		if seen[s] {
			t.Fatalf("duplicate SSN %q at row %d", s, i)
		}
		seen[s] = true
	}
}

func TestGenerateCorrelation(t *testing.T) {
	// With correlation on, circulatory symptoms should co-occur with
	// cardiovascular prescriptions far more often than 1/7 (uniform).
	tbl, err := Generate(Config{Rows: 8000, Seed: 3, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	symptomTree := ontology.Symptom()
	prescriptionTree := ontology.Prescription()
	circulatory, cardioRx, total := 0, 0, 0
	for i := 0; i < tbl.NumRows(); i++ {
		sym, _ := tbl.Cell(i, ontology.ColSymptom)
		nd, err := symptomTree.ResolveLeaf(sym)
		if err != nil {
			t.Fatal(err)
		}
		chapter, err := symptomTree.AncestorAtDepth(nd, 1)
		if err != nil {
			t.Fatal(err)
		}
		if symptomTree.Value(chapter) != "390-459 Circulatory System" {
			continue
		}
		circulatory++
		rx, _ := tbl.Cell(i, ontology.ColPrescription)
		rnd, err := prescriptionTree.ResolveLeaf(rx)
		if err != nil {
			t.Fatal(err)
		}
		class, err := prescriptionTree.AncestorAtDepth(rnd, 1)
		if err != nil {
			t.Fatal(err)
		}
		if prescriptionTree.Value(class) == "Cardiovascular Agents" {
			cardioRx++
		}
		total++
	}
	if circulatory < 100 {
		t.Fatalf("only %d circulatory rows; generator marginals broken", circulatory)
	}
	frac := float64(cardioRx) / float64(total)
	if frac < 0.5 {
		t.Errorf("cardio-Rx fraction among circulatory = %v, want >= 0.5 (0.7 mapping)", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Rows: 0, ZipfS: 1.2}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New(Config{Rows: 10, ZipfS: 1.0}); err == nil {
		t.Error("ZipfS = 1 accepted")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("DefaultConfig rejected: %v", err)
	}
}

func TestAgeDistributionCoversBands(t *testing.T) {
	tbl, err := Generate(Config{Rows: 4000, Seed: 9, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	var pediatric, elderly int
	for i := 0; i < tbl.NumRows(); i++ {
		v, _ := tbl.Cell(i, ontology.ColAge)
		age, _ := strconv.Atoi(v)
		switch {
		case age < 15:
			pediatric++
		case age >= 65:
			elderly++
		}
	}
	if pediatric == 0 || elderly == 0 {
		t.Errorf("age mixture degenerate: pediatric=%d elderly=%d", pediatric, elderly)
	}
}
