// Package datagen generates the synthetic clinical data set used by the
// experiments. The paper evaluates on a real-world table of about 20,000
// tuples with schema R(ssn, age, zip code, doctor, symptom, prescription);
// that data set is not published, so this package substitutes a
// deterministic, seeded generator (see DESIGN.md §2): same schema, same
// size, skewed marginals and clinically plausible correlations
// (age ↔ symptom chapter ↔ prescription class), so the binning and
// watermarking code paths see realistic multiplicity histograms over the
// DHT leaves.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dht"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// Config controls generation.
type Config struct {
	// Rows is the number of tuples; the paper's data set has ~20,000.
	Rows int
	// Seed drives all randomness; equal seeds give equal tables.
	Seed int64
	// Correlate enables age→symptom and symptom→prescription skew
	// (default true via New; disable for uniform stress tests).
	Correlate bool
	// ZipfS shapes the within-chapter leaf popularity (values near 1.1
	// give a realistic head-heavy distribution). Must be > 1.
	ZipfS float64
}

// DefaultConfig mirrors the paper's evaluation data set size.
func DefaultConfig() Config {
	return Config{Rows: 20000, Seed: 1, Correlate: true, ZipfS: 1.2}
}

// Generator produces synthetic clinical tables.
type Generator struct {
	cfg   Config
	trees map[string]*dht.Tree
}

// New returns a generator over the builtin ontologies.
func New(cfg Config) (*Generator, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("datagen: Rows must be positive, got %d", cfg.Rows)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("datagen: ZipfS must exceed 1, got %v", cfg.ZipfS)
	}
	return &Generator{cfg: cfg, trees: ontology.Trees()}, nil
}

// ageBands defines a mixture distribution over ages: pediatric, adult and
// elderly peaks, mimicking hospital admission curves.
// Ages stay below 100 so that high-age DHT nodes are empty rather than
// sparsely populated: a maximal generalization node with a handful of
// tuples would make the data unbinnable at large k (see binning.MonoBin).
var ageBands = []struct {
	lo, hi int
	weight int
}{
	{0, 15, 12},  // pediatric
	{15, 40, 22}, // young adult
	{40, 65, 34}, // middle age
	{65, 90, 28}, // elderly
	{90, 100, 4}, // very old
}

// chapterWeightsByBand skews symptom chapters by age band index
// (0=pediatric .. 4=very old). Chapters are indexed in the order of
// ontology.Symptom's children.
func chapterWeight(band, chapter int) int {
	// base popularity
	base := []int{10, 6, 8, 7, 7, 12, 12, 9, 7, 5, 8, 9}
	w := base[chapter%len(base)]
	switch band {
	case 0: // pediatric: infections, respiratory, injuries up; circulatory down
		switch chapter {
		case 0, 6:
			w *= 3
		case 11:
			w *= 2
		case 5:
			w = 1
		}
	case 3, 4: // elderly: circulatory, neoplasms, musculoskeletal up
		switch chapter {
		case 5:
			w *= 3
		case 1, 10:
			w *= 2
		}
	}
	return w
}

// Generate produces the table. It is deterministic in Config.
func (g *Generator) Generate() (*relation.Table, error) {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	tbl := relation.NewTable(ontology.Schema())

	symptomTree := g.trees[ontology.ColSymptom]
	prescriptionTree := g.trees[ontology.ColPrescription]
	zipTree := g.trees[ontology.ColZip]
	doctorTree := g.trees[ontology.ColDoctor]

	chapters := symptomTree.Children(symptomTree.Root())
	classes := prescriptionTree.Children(prescriptionTree.Root())
	classByValue := make(map[string]dht.NodeID, len(classes))
	for _, c := range classes {
		classByValue[prescriptionTree.Value(c)] = c
	}
	zipLeaves := zipTree.Leaves()
	doctorLeaves := doctorTree.Leaves()

	zipPick := newZipfPicker(rng, g.cfg.ZipfS, len(zipLeaves))
	doctorPick := newZipfPicker(rng, g.cfg.ZipfS, len(doctorLeaves))

	for i := 0; i < g.cfg.Rows; i++ {
		ssn := formatSSN(i, rng)

		band := pickBand(rng)
		age := ageBands[band].lo + rng.Intn(ageBands[band].hi-ageBands[band].lo)

		zip := zipTree.Value(zipLeaves[zipPick()])
		doctor := doctorTree.Value(doctorLeaves[doctorPick()])

		var chIdx int
		if g.cfg.Correlate {
			chIdx = pickWeighted(rng, len(chapters), func(c int) int { return chapterWeight(band, c) })
		} else {
			chIdx = rng.Intn(len(chapters))
		}
		chapter := chapters[chIdx]
		symLeaves := symptomTree.LeavesUnder(chapter)
		symptom := symptomTree.Value(symLeaves[zipfIndex(rng, g.cfg.ZipfS, len(symLeaves))])

		var classNode dht.NodeID
		chapterVal := symptomTree.Value(chapter)
		if mapped, ok := ontology.SymptomChapterToPrescriptionClass[chapterVal]; g.cfg.Correlate && ok && rng.Float64() < 0.7 {
			classNode = classByValue[mapped]
		} else {
			classNode = classes[rng.Intn(len(classes))]
		}
		drugLeaves := prescriptionTree.LeavesUnder(classNode)
		prescription := prescriptionTree.Value(drugLeaves[zipfIndex(rng, g.cfg.ZipfS, len(drugLeaves))])

		row := []string{
			ssn,
			fmt.Sprintf("%d", age),
			zip,
			doctor,
			symptom,
			prescription,
		}
		if err := tbl.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// Generate is a convenience wrapper: build a generator with cfg and run it.
func Generate(cfg Config) (*relation.Table, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate()
}

// formatSSN renders a unique, realistic-looking SSN for row i. Uniqueness
// comes from i; the area/group digits are randomized for realism.
func formatSSN(i int, rng *rand.Rand) string {
	return fmt.Sprintf("%03d-%02d-%04d", rng.Intn(899)+1, i/10000+10, i%10000)
}

func pickBand(rng *rand.Rand) int {
	total := 0
	for _, b := range ageBands {
		total += b.weight
	}
	x := rng.Intn(total)
	for i, b := range ageBands {
		if x < b.weight {
			return i
		}
		x -= b.weight
	}
	return len(ageBands) - 1
}

func pickWeighted(rng *rand.Rand, n int, weight func(int) int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	x := rng.Intn(total)
	for i := 0; i < n; i++ {
		w := weight(i)
		if x < w {
			return i
		}
		x -= w
	}
	return n - 1
}

// newZipfPicker returns a function drawing Zipf-distributed indices in
// [0,n) with a per-picker random permutation, so different attributes get
// different popular leaves.
func newZipfPicker(rng *rand.Rand, s float64, n int) func() int {
	perm := rng.Perm(n)
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return perm[int(z.Uint64())] }
}

// zipfIndex draws one Zipf-distributed index in [0,n).
func zipfIndex(rng *rand.Rand, s float64, n int) int {
	if n == 1 {
		return 0
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return int(z.Uint64())
}
