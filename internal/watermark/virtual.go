package watermark

import (
	"strings"
)

// Virtual primary keys (§5.3, footnote 1): "In case the identifying
// columns cannot be relied on, we can establish virtual key attributes as
// in [Li, Swarup, Jajodia] by turning to other columns." The anchor must
// be invariant under the marking itself; in this scheme the maximal
// generalization node covering a value never changes during embedding
// (permutation stays inside one maximal subtree — the §5.1 bandwidth
// argument), so the concatenation of the per-column maximal-cover values
// is a sound virtual key.
//
// Granularity caveat: tuples sharing all maximal covers share the virtual
// key, so they are selected together and carry the same mark position —
// redundancy rather than spread. Robustness against identifier-column
// tampering is traded for lower position diversity; the tests quantify
// the roundtrip still being exact.

// virtualIdent derives the virtual key bytes for one row from the current
// cell values of the watermarkable columns (cols must be sorted; specs
// provide the trees and frontiers). Values that do not resolve, or that
// sit above the usage metrics, contribute their literal value — both the
// embedder and the detector apply the same rule, so the key stays stable
// wherever the data are intact.
func virtualIdent(tbl cellReader, row int, cols []string, colIdx map[string]int, columns map[string]ColumnSpec) []byte {
	var sb strings.Builder
	for _, col := range cols {
		spec := columns[col]
		value := tbl.CellAt(row, colIdx[col])
		part := value
		if id, err := spec.Tree.ResolveValue(value); err == nil {
			if maxNode, ok := spec.MaxGen.CoverOf(id); ok {
				part = spec.Tree.Value(maxNode)
			}
		}
		sb.WriteString(part)
		sb.WriteByte(0x1f)
	}
	return []byte(sb.String())
}

// cellReader is the slice of relation.Table the virtual key needs.
type cellReader interface {
	CellAt(row, col int) string
}

// virtualKeys is the dictionary-encoded fast path for virtualIdent: the
// per-column key contribution is a function of the cell value alone, so
// it is computed once per dictionary code and per-row derivation is pure
// integer indexing plus concatenation. Embedding never changes a value's
// maximal cover (the §5.1 bandwidth argument), and every value it writes
// is pre-interned before the parts table is built, so the parts stay
// valid while embedding mutates the table.
type virtualKeys struct {
	idxs  []int      // column indexes, in sorted column order
	parts [][]string // per column: code → key part
}

// buildVirtualKeys precomputes the per-code key parts for the given
// columns (sorted order, parallel slices).
func buildVirtualKeys(tbl codeTable, idxs []int, specs []ColumnSpec) *virtualKeys {
	vk := &virtualKeys{idxs: idxs, parts: make([][]string, len(idxs))}
	for i, ci := range idxs {
		spec := specs[i]
		dict := tbl.DictValues(ci)
		parts := make([]string, len(dict))
		for code, value := range dict {
			part := value
			if id, err := spec.Tree.ResolveValue(value); err == nil {
				if maxNode, ok := spec.MaxGen.CoverOf(id); ok {
					part = spec.Tree.Value(maxNode)
				}
			}
			parts[code] = part
		}
		vk.parts[i] = parts
	}
	return vk
}

// identOf derives the virtual key bytes of one row. The byte layout is
// identical to virtualIdent's.
func (vk *virtualKeys) identOf(tbl codeTable, row int) []byte {
	n := 0
	for i, ci := range vk.idxs {
		n += len(vk.parts[i][tbl.CodeAt(row, ci)]) + 1
	}
	out := make([]byte, 0, n)
	for i, ci := range vk.idxs {
		out = append(out, vk.parts[i][tbl.CodeAt(row, ci)]...)
		out = append(out, 0x1f)
	}
	return out
}

// codeTable is the slice of relation.Table the code-level scans need.
type codeTable interface {
	CodeAt(row, col int) uint32
	DictValues(col int) []string
}
