package watermark

import (
	"strings"
)

// Virtual primary keys (§5.3, footnote 1): "In case the identifying
// columns cannot be relied on, we can establish virtual key attributes as
// in [Li, Swarup, Jajodia] by turning to other columns." The anchor must
// be invariant under the marking itself; in this scheme the maximal
// generalization node covering a value never changes during embedding
// (permutation stays inside one maximal subtree — the §5.1 bandwidth
// argument), so the concatenation of the per-column maximal-cover values
// is a sound virtual key.
//
// Granularity caveat: tuples sharing all maximal covers share the virtual
// key, so they are selected together and carry the same mark position —
// redundancy rather than spread. Robustness against identifier-column
// tampering is traded for lower position diversity; the tests quantify
// the roundtrip still being exact.

// virtualIdent derives the virtual key bytes for one row from the current
// cell values of the watermarkable columns (cols must be sorted; specs
// provide the trees and frontiers). Values that do not resolve, or that
// sit above the usage metrics, contribute their literal value — both the
// embedder and the detector apply the same rule, so the key stays stable
// wherever the data are intact.
func virtualIdent(tbl cellReader, row int, cols []string, colIdx map[string]int, columns map[string]ColumnSpec) []byte {
	var sb strings.Builder
	for _, col := range cols {
		spec := columns[col]
		value := tbl.CellAt(row, colIdx[col])
		part := value
		if id, err := spec.Tree.ResolveValue(value); err == nil {
			if maxNode, ok := spec.MaxGen.CoverOf(id); ok {
				part = spec.Tree.Value(maxNode)
			}
		}
		sb.WriteString(part)
		sb.WriteByte(0x1f)
	}
	return []byte(sb.String())
}

// cellReader is the slice of relation.Table the virtual key needs.
type cellReader interface {
	CellAt(row, col int) string
}
