package watermark

import (
	"context"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/pool"
	"repro/internal/relation"
)

// Suspect is the table-side half of detection, precomputed once per
// suspect table and embedding policy: schema resolution plus the
// per-column, per-distinct-value verdict tables. Leak traceback runs
// detection for every registered recipient against one suspect table;
// preparing the suspect once means that work is paid once, not once per
// candidate. A Suspect is read-only after construction and safe for
// concurrent DetectContext calls.
type Suspect struct {
	tbl                 *relation.Table
	identIdx            int
	plans               []detectPlan
	boundaryPermutation bool
	weightedVoting      bool
}

// PrepareSuspectContext builds the shared detection state over tbl for
// the given column specs and embedding policy (the two Params fields the
// verdict tables depend on). Virtual-identifier detection is not
// supported here — it stays on the plain DetectContext path.
func PrepareSuspectContext(ctx context.Context, tbl *relation.Table, identCol string, columns map[string]ColumnSpec, boundaryPermutation, weightedVoting bool, workers int) (*Suspect, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	identIdx, err := tbl.Schema().Index(identCol)
	if err != nil {
		return nil, err
	}
	plans, err := buildDetectPlans(ctx, tbl, columns, Params{
		BoundaryPermutation: boundaryPermutation,
		WeightedVoting:      weightedVoting,
		Workers:             workers,
	})
	if err != nil {
		return nil, err
	}
	return &Suspect{
		tbl:                 tbl,
		identIdx:            identIdx,
		plans:               plans,
		boundaryPermutation: boundaryPermutation,
		weightedVoting:      weightedVoting,
	}, nil
}

// Selection records which suspect tuples a (K1, η) pair selects under
// Equation (5), with each selected tuple's identifier bytes. Selection
// is the per-key half of the scan that does not depend on K2, the mark
// or the duplication factor — candidates sharing K1 and η (every
// recipient key derived by crypt.RecipientWatermarkKey from one master
// secret) share one Selection, collapsing the per-candidate cost from a
// full-table PRF scan to a walk over the few selected rows.
type Selection struct {
	k1    string
	eta   uint64
	rows  []int32
	ident [][]byte
}

// SelectContext scans the suspect once under (k1, η) and returns the
// selected rows in ascending order — identical to the selection the
// sharded DetectContext performs internally.
func (s *Suspect) SelectContext(ctx context.Context, k1 []byte, eta uint64, workers int) (*Selection, error) {
	return selectTuples(ctx, s.tbl, s.identIdx, k1, eta, workers)
}

// SelectForEmbedContext scans tbl once under (k1, η) and returns the
// Equation (5) selection — the rows Embed would mark and their
// identifier bytes. The selection depends only on the identifying
// column, K1 and η, never on K2 or the mark, so a fingerprint fan-out
// whose recipient keys share K1 and η (crypt.RecipientWatermarkKey)
// computes it once and embeds every recipient's mark through
// EmbedSelectedContext without re-scanning the table.
func SelectForEmbedContext(ctx context.Context, tbl *relation.Table, identCol string, k1 []byte, eta uint64, workers int) (*Selection, error) {
	identIdx, err := tbl.Schema().Index(identCol)
	if err != nil {
		return nil, err
	}
	return selectTuples(ctx, tbl, identIdx, k1, eta, workers)
}

// selectTuples is the sharded Equation (5) scan behind SelectContext
// and SelectForEmbedContext: selected rows in ascending order, each
// with a private copy of its identifier bytes.
func selectTuples(ctx context.Context, tbl *relation.Table, identIdx int, k1 []byte, eta uint64, workers int) (*Selection, error) {
	if len(k1) == 0 {
		return nil, fmt.Errorf("watermark: empty selection key")
	}
	prf1 := crypt.NewPRF(k1)
	n := tbl.NumRows()
	type shard struct {
		rows  []int32
		ident [][]byte
	}
	chunks := pool.Chunks(workers, n)
	shards := make([]shard, len(chunks))
	err := pool.ForEachChunkCtx(ctx, workers, n, func(si, lo, hi int) error {
		var sh shard
		var buf []byte
		for row := lo; row < hi; row++ {
			if err := pool.CtxAt(ctx, row-lo); err != nil {
				return err
			}
			buf = append(buf[:0], tbl.CellAt(row, identIdx)...)
			if !prf1.Selects(buf, eta) {
				continue
			}
			ident := make([]byte, len(buf))
			copy(ident, buf)
			sh.rows = append(sh.rows, int32(row))
			sh.ident = append(sh.ident, ident)
		}
		shards[si] = sh
		return nil
	})
	if err != nil {
		return nil, err
	}
	sel := &Selection{k1: string(k1), eta: eta}
	for _, sh := range shards {
		sel.rows = append(sel.rows, sh.rows...)
		sel.ident = append(sel.ident, sh.ident...)
	}
	return sel, nil
}

// Selected returns the number of tuples the selection holds.
func (sel *Selection) Selected() int { return len(sel.rows) }

// DetectContext recovers one candidate's mark over the prepared suspect
// using a precomputed selection: only K2 position hashing and vote
// accumulation remain per candidate. The recovered mark, confidence and
// statistics are identical to the plain DetectContext under the same
// parameters. The scan is sequential — traceback parallelizes across
// candidates instead of inside one.
func (s *Suspect) DetectContext(ctx context.Context, sel *Selection, p Params) (DetectResult, error) {
	var res DetectResult
	if err := p.validate(); err != nil {
		return res, err
	}
	board := bitstr.NewVoteBoard(p.wmdLen())
	if err := s.AccumulateContext(ctx, sel, p, board, &res.Stats); err != nil {
		return res, err
	}
	folded, err := board.FoldInto(p.Mark.Len())
	if err != nil {
		return res, err
	}
	res.Mark = folded.Resolve()
	res.Confidence = folded.Confidence()
	return res, nil
}

// AccumulateContext harvests one candidate's votes over the prepared
// suspect into a caller-owned replicated board (length |wmd|) and
// counter set, without folding — the per-segment step of a streamed
// traceback, where one persistent board per candidate accumulates
// across suspect segments and folds once at end-of-stream. It is also
// DetectContext's whole-table scan: calling it once and folding
// reproduces DetectContext exactly.
func (s *Suspect) AccumulateContext(ctx context.Context, sel *Selection, p Params, board *bitstr.VoteBoard, stats *DetectStats) error {
	if err := p.validate(); err != nil {
		return err
	}
	if p.UseVirtualIdent {
		return fmt.Errorf("watermark: virtual-identifier detection is not supported over a prepared suspect")
	}
	if p.BoundaryPermutation != s.boundaryPermutation || p.WeightedVoting != s.weightedVoting {
		return fmt.Errorf(
			"watermark: params policy (boundary_permutation=%v, weighted_voting=%v) does not match the prepared suspect (%v, %v)",
			p.BoundaryPermutation, p.WeightedVoting, s.boundaryPermutation, s.weightedVoting)
	}
	if sel.k1 != string(p.Key.K1) || sel.eta != p.Key.Eta {
		return fmt.Errorf("watermark: selection was computed under a different (K1, eta) than the candidate key")
	}
	if board.Len() != p.wmdLen() {
		return fmt.Errorf("watermark: vote board has %d positions, want |wmd| = %d", board.Len(), p.wmdLen())
	}
	prf2 := crypt.NewPRF(p.Key.K2)
	for i, row := range sel.rows {
		if err := pool.CtxAt(ctx, i); err != nil {
			return err
		}
		ident := sel.ident[i]
		stats.TuplesSelected++
		for pi := range s.plans {
			plan := &s.plans[pi]
			v := &plan.verdicts[s.tbl.CodeAt(int(row), plan.idx)]
			stats.BitsRead += v.read
			if !v.ok {
				stats.SkippedCells++
				continue
			}
			pos := p.positionOf(prf2, ident, plan.col)
			board.Vote(pos, v.bit, 1)
			stats.VotesCast++
		}
	}
	return nil
}
