package watermark

import (
	"context"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/pool"
	"repro/internal/relation"
)

// cellVerdict is the value-dependent outcome of detectCell for one
// dictionary code: the harvested bit, the number of level bits read, and
// whether the cell contributes a vote at all.
type cellVerdict struct {
	bit  bool
	read int
	ok   bool
}

// detectPlan precomputes one column's per-code verdicts: the detection
// walk is a pure function of the cell value, so it runs once per
// distinct dictionary entry and the row scan reduces to integer lookups
// plus vote accumulation.
type detectPlan struct {
	col      string
	idx      int
	verdicts []cellVerdict
}

// Detect implements the Detection algorithm of Figure 9. It selects
// tuples with Equation (5), resolves each watermarked cell to its tree
// node, harvests one bit per level from the node up to (but excluding)
// its maximal generalization node — the parity of the node's index among
// its sorted siblings — majority-votes the levels into a per-cell bit
// (weighted by level when Params.WeightedVoting is set), accumulates
// votes per wmd position across tuples, and finally folds the replicas
// into the mark by majority voting.
//
// Detection is deliberately generalization-aware: a cell that an attacker
// generalized to a higher node still contributes the surviving upper
// levels; a cell altered out of the domain, or generalized above the
// usage metrics, is skipped. This single code path therefore serves clean
// tables, the §5.2 generalization attack and the §7.2 alteration attacks.
func Detect(tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (DetectResult, error) {
	return DetectContext(context.Background(), tbl, identCol, columns, p)
}

// DetectContext is Detect under a context: shards poll ctx at
// pool.CtxStride row boundaries, so a long scan over a large suspect
// table aborts promptly with the context's error when the caller's
// deadline expires or the request is cancelled.
func DetectContext(ctx context.Context, tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (DetectResult, error) {
	var res DetectResult
	if err := p.validate(); err != nil {
		return res, err
	}
	identIdx := -1
	if !p.UseVirtualIdent {
		var err error
		if identIdx, err = tbl.Schema().Index(identCol); err != nil {
			return res, err
		}
	}
	plans, err := buildDetectPlans(ctx, tbl, columns, p)
	if err != nil {
		return res, err
	}
	cols := sortColumns(columns)
	var vkeys *virtualKeys
	if p.UseVirtualIdent {
		idxs := make([]int, len(cols))
		specs := make([]ColumnSpec, len(cols))
		for i, col := range cols {
			idxs[i] = plans[i].idx
			specs[i] = columns[col]
		}
		vkeys = buildVirtualKeys(tbl, idxs, specs)
	}

	board := bitstr.NewVoteBoard(p.wmdLen())
	if err := scanVotes(ctx, tbl, identIdx, vkeys, plans, p, board, &res.Stats); err != nil {
		return res, err
	}

	folded, err := board.FoldInto(p.Mark.Len())
	if err != nil {
		return res, err
	}
	res.Mark = folded.Resolve()
	res.Confidence = folded.Confidence()
	return res, nil
}

// scanVotes shards tbl's rows into contiguous ranges, harvests
// Equation (5) votes on per-shard boards, then merges boards and
// counters in shard order into the caller's board and stats. All vote
// weights are integer-valued, so the merged tallies — and hence the
// recovered mark and confidences — are bit-identical to the sequential
// accumulation for any worker count. It is the shared scan of
// DetectContext (one whole table) and DetectAccum (one segment at a
// time); vkeys is nil unless Params.UseVirtualIdent is set.
func scanVotes(ctx context.Context, tbl *relation.Table, identIdx int, vkeys *virtualKeys, plans []detectPlan, p Params, board *bitstr.VoteBoard, stats *DetectStats) error {
	prf1 := crypt.NewPRF(p.Key.K1)
	prf2 := crypt.NewPRF(p.Key.K2)
	chunks := pool.Chunks(p.Workers, tbl.NumRows())
	shardBoards := make([]*bitstr.VoteBoard, len(chunks))
	shardStats := make([]DetectStats, len(chunks))
	err := pool.ForEachChunkCtx(ctx, p.Workers, tbl.NumRows(), func(si, lo, hi int) error {
		shardBoard := bitstr.NewVoteBoard(p.wmdLen())
		shard := &shardStats[si]
		var identBuf []byte // reused across rows; PRF calls do not retain it
		for row := lo; row < hi; row++ {
			if err := pool.CtxAt(ctx, row-lo); err != nil {
				return err
			}
			var ident []byte
			if p.UseVirtualIdent {
				ident = vkeys.identOf(tbl, row)
			} else {
				identBuf = append(identBuf[:0], tbl.CellAt(row, identIdx)...)
				ident = identBuf
			}
			if !prf1.Selects(ident, p.Key.Eta) {
				continue
			}
			shard.TuplesSelected++
			for pi := range plans {
				plan := &plans[pi]
				v := &plan.verdicts[tbl.CodeAt(row, plan.idx)]
				shard.BitsRead += v.read
				if !v.ok {
					shard.SkippedCells++
					continue
				}
				pos := p.positionOf(prf2, ident, plan.col)
				shardBoard.Vote(pos, v.bit, 1)
				shard.VotesCast++
			}
		}
		shardBoards[si] = shardBoard
		return nil
	})
	if err != nil {
		return err
	}
	for si := range chunks {
		if err := board.Merge(shardBoards[si]); err != nil {
			return err
		}
		stats.add(shardStats[si])
	}
	return nil
}

// DetectAccum accumulates detection votes segment-at-a-time: one
// replicated vote board shared across segments, folded once at the end.
// Segments arrive in row order and scanVotes merges its shards in row
// order, so the accumulated tallies — and hence the recovered mark,
// confidences and statistics — are bit-identical to DetectContext over
// the materialized concatenation of the segments, for every segment
// size and worker count. Resident state between segments is the board
// (|wmd| positions) plus the counters; the per-segment verdict tables
// are rebuilt over each segment's compact dictionaries and dropped.
type DetectAccum struct {
	identCol string
	columns  map[string]ColumnSpec
	p        Params
	board    *bitstr.VoteBoard
	stats    DetectStats
}

// NewDetectAccum validates the parameters and returns an empty
// accumulator. Virtual-identifier detection is not supported over a
// segment stream — its composite keys need the whole table.
func NewDetectAccum(identCol string, columns map[string]ColumnSpec, p Params) (*DetectAccum, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.UseVirtualIdent {
		return nil, fmt.Errorf("watermark: virtual-identifier detection is not supported over a segment stream")
	}
	return &DetectAccum{
		identCol: identCol,
		columns:  columns,
		p:        p,
		board:    bitstr.NewVoteBoard(p.wmdLen()),
	}, nil
}

// AddContext harvests one segment's votes into the accumulator: build
// the segment's per-distinct-value verdict tables, then run the shared
// sharded scan into the persistent board.
func (a *DetectAccum) AddContext(ctx context.Context, seg *relation.Table) error {
	identIdx, err := seg.Schema().Index(a.identCol)
	if err != nil {
		return err
	}
	plans, err := buildDetectPlans(ctx, seg, a.columns, a.p)
	if err != nil {
		return err
	}
	return scanVotes(ctx, seg, identIdx, nil, plans, a.p, a.board, &a.stats)
}

// Result folds the replicated tallies into the recovered mark — the
// same final step DetectContext performs. The accumulator remains
// usable: further AddContext calls keep accumulating.
func (a *DetectAccum) Result() (DetectResult, error) {
	res := DetectResult{Stats: a.stats}
	folded, err := a.board.FoldInto(a.p.Mark.Len())
	if err != nil {
		return res, err
	}
	res.Mark = folded.Resolve()
	res.Confidence = folded.Confidence()
	return res, nil
}

// buildDetectPlans precomputes the per-column verdict tables: the
// detection walk is a pure function of the cell value, so it runs once
// per distinct dictionary entry and the row scan reduces to integer
// lookups plus vote accumulation. Columns are built in parallel over the
// worker pool — each table is written by exactly one worker and the
// result slice is ordered by the canonical column order, so the outcome
// is identical for every worker count.
func buildDetectPlans(ctx context.Context, tbl *relation.Table, columns map[string]ColumnSpec, p Params) ([]detectPlan, error) {
	cols := sortColumns(columns)
	plans := make([]detectPlan, len(cols))
	err := pool.ForEachCtx(ctx, p.Workers, len(cols), func(i int) error {
		col := cols[i]
		spec := columns[col]
		if err := spec.validate(col); err != nil {
			return err
		}
		ci, err := tbl.Schema().Index(col)
		if err != nil {
			return err
		}
		// The detection walk per distinct value, not per row: an attacked
		// 20k-row table typically holds a few dozen distinct values per
		// watermarked column.
		dict := tbl.DictValues(ci)
		verdicts := make([]cellVerdict, len(dict))
		for code, value := range dict {
			bit, read, ok := detectCell(spec, value, p)
			verdicts[code] = cellVerdict{bit: bit, read: read, ok: ok}
		}
		plans[i] = detectPlan{col: col, idx: ci, verdicts: verdicts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return plans, nil
}

// detectCell recovers the per-cell bit by weighted majority over the
// surviving levels. It returns ok=false when the cell contributes nothing
// (unresolvable value, above the usage metrics, or no branching levels).
func detectCell(spec ColumnSpec, value string, p Params) (bit bool, bitsRead int, ok bool) {
	tree := spec.Tree
	id, err := tree.ResolveValue(value)
	if err != nil {
		return false, 0, false
	}
	maxNode, covered := spec.MaxGen.CoverOf(id)
	if !covered {
		return false, 0, false
	}

	var zero, one float64
	if id == maxNode {
		// Boundary case: a bit may sit in the sibling permutation when
		// BoundaryPermutation was used at embedding.
		if !p.BoundaryPermutation {
			return false, 0, false
		}
		set := boundarySet(spec, id)
		idx := indexIn(id, set)
		if len(set) < 2 || idx < 0 {
			return false, 0, false
		}
		return idx&1 == 1, 1, true
	}

	levelFromBottom := 0
	for cur := id; cur != maxNode; cur = tree.Parent(cur) {
		// The precomputed sibling rank replaces a per-level
		// SortedSiblings sort: only the parity of the canonical position
		// matters here.
		if tree.NumSiblings(cur) >= 2 {
			w := 1.0
			if p.WeightedVoting {
				// Higher levels (closer to the maximal node) are harder
				// for an attacker to disturb; §5.3 suggests weighting
				// their copies more.
				w = float64(levelFromBottom + 1)
			}
			if tree.SiblingRank(cur)&1 == 1 {
				one += w
			} else {
				zero += w
			}
			bitsRead++
		}
		levelFromBottom++
	}
	if zero == one {
		// no levels, or a perfect tie: no information
		return false, bitsRead, false
	}
	return one > zero, bitsRead, true
}
