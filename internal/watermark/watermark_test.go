package watermark

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/relation"
)

// fixture builds a binned two-column table with real bandwidth:
// zip-like tree (uniform depth) and a role tree (mixed depth frontiers).
type fixture struct {
	tbl     *relation.Table
	columns map[string]ColumnSpec
	params  Params
}

func zipLikeTree(t *testing.T) *dht.Tree {
	t.Helper()
	// 3 regions x 3 states x 3 zips: uniform depth 3 leaves.
	root := dht.Spec{Value: "ALL"}
	for r := 0; r < 3; r++ {
		reg := dht.Spec{Value: fmt.Sprintf("R%d", r)}
		for s := 0; s < 3; s++ {
			st := dht.Spec{Value: fmt.Sprintf("R%dS%d", r, s)}
			for z := 0; z < 3; z++ {
				st.Children = append(st.Children, dht.Spec{Value: fmt.Sprintf("R%dS%dZ%d", r, s, z)})
			}
			reg.Children = append(reg.Children, st)
		}
		root.Children = append(root.Children, reg)
	}
	tree, err := dht.NewCategorical("zip", root)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func roleTree(t *testing.T) *dht.Tree {
	t.Helper()
	tree, err := dht.NewCategorical("role", dht.Spec{
		Value: "Person",
		Children: []dht.Spec{
			{Value: "Medical", Children: []dht.Spec{
				{Value: "Doctor", Children: []dht.Spec{{Value: "Physician"}, {Value: "Surgeon"}}},
				{Value: "Paramedic", Children: []dht.Spec{{Value: "Nurse"}, {Value: "Pharmacist"}}},
			}},
			{Value: "Admin", Children: []dht.Spec{{Value: "Clerk"}, {Value: "Manager"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// newFixture bins a synthetic table: zip at the state level (depth 2,
// uniform), role at {Doctor, Paramedic, Admin}.
func newFixture(t *testing.T, rows int, eta uint64) *fixture {
	t.Helper()
	zipTree := zipLikeTree(t)
	roleTr := roleTree(t)

	// ultimate = states (all depth-2 nodes); maximal = regions (depth 1).
	var states, regions []string
	for r := 0; r < 3; r++ {
		regions = append(regions, fmt.Sprintf("R%d", r))
		for s := 0; s < 3; s++ {
			states = append(states, fmt.Sprintf("R%dS%d", r, s))
		}
	}
	zipUlti, err := dht.NewGenSetFromValues(zipTree, states)
	if err != nil {
		t.Fatal(err)
	}
	zipMax, err := dht.NewGenSetFromValues(zipTree, regions)
	if err != nil {
		t.Fatal(err)
	}
	roleUlti, err := dht.NewGenSetFromValues(roleTr, []string{"Doctor", "Paramedic", "Admin"})
	if err != nil {
		t.Fatal(err)
	}
	roleMax := dht.RootGenSet(roleTr)

	schema := relation.MustSchema(
		relation.Column{Name: "ssn", Kind: relation.Identifying},
		relation.Column{Name: "zip", Kind: relation.QuasiCategorical},
		relation.Column{Name: "role", Kind: relation.QuasiCategorical},
	)
	tbl := relation.NewTable(schema)
	rng := rand.New(rand.NewSource(99))
	roleVals := []string{"Doctor", "Paramedic", "Admin"}
	for i := 0; i < rows; i++ {
		row := []string{
			fmt.Sprintf("enc-%06d-%04d", i, rng.Intn(10000)),
			states[rng.Intn(len(states))],
			roleVals[rng.Intn(len(roleVals))],
		}
		if err := tbl.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}

	mark, err := bitstr.FromString("10110010011011010010") // 20 bits as in §7.2
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		tbl: tbl,
		columns: map[string]ColumnSpec{
			"zip":  {Tree: zipTree, MaxGen: zipMax, UltiGen: zipUlti},
			"role": {Tree: roleTr, MaxGen: roleMax, UltiGen: roleUlti},
		},
		params: Params{
			Key:                    crypt.NewWatermarkKeyFromSecret("owner-secret", eta),
			Mark:                   mark,
			Duplication:            4,
			SaltPositionWithColumn: true,
		},
	}
}

func TestEmbedDetectRoundtrip(t *testing.T) {
	f := newFixture(t, 4000, 10)
	marked := f.tbl.Clone()
	stats, err := Embed(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TuplesSelected == 0 || stats.BitsEmbedded == 0 {
		t.Fatalf("no embedding happened: %+v", stats)
	}
	res, err := Detect(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mark.Equal(f.params.Mark) {
		t.Fatalf("roundtrip mark = %s, want %s (stats %+v)", res.Mark.String(), f.params.Mark.String(), res.Stats)
	}
	loss, err := MarkLoss(f.params.Mark, res)
	if err != nil || loss != 0 {
		t.Errorf("clean-table mark loss = %v, %v", loss, err)
	}
}

func TestEmbedPreservesFrontierValidity(t *testing.T) {
	// Every watermarked value must still be an ultimate-frontier value:
	// watermarking must not break the binning (seamlessness).
	f := newFixture(t, 2000, 5)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	for col, spec := range f.columns {
		ci, _ := marked.Schema().Index(col)
		for i := 0; i < marked.NumRows(); i++ {
			id, err := spec.Tree.ResolveValue(marked.CellAt(i, ci))
			if err != nil {
				t.Fatalf("row %d col %s: %v", i, col, err)
			}
			if !spec.UltiGen.Contains(id) {
				t.Fatalf("row %d col %s: value %q left the ultimate frontier", i, col, marked.CellAt(i, ci))
			}
		}
	}
}

func TestEmbedRespectsUsageMetrics(t *testing.T) {
	// A watermarked value must stay under the same maximal generalization
	// node as the original (the §5.1 bandwidth argument).
	f := newFixture(t, 2000, 5)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	for col, spec := range f.columns {
		ci, _ := marked.Schema().Index(col)
		for i := 0; i < marked.NumRows(); i++ {
			before, _ := spec.Tree.ResolveValue(f.tbl.CellAt(i, ci))
			after, _ := spec.Tree.ResolveValue(marked.CellAt(i, ci))
			mb, _ := spec.MaxGen.CoverOf(before)
			ma, ok := spec.MaxGen.CoverOf(after)
			if !ok || mb != ma {
				t.Fatalf("row %d col %s: permutation crossed maximal node boundaries (%q -> %q)",
					i, col, f.tbl.CellAt(i, ci), marked.CellAt(i, ci))
			}
		}
	}
}

func TestDetectRequiresKey(t *testing.T) {
	f := newFixture(t, 4000, 10)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	wrong := f.params
	wrong.Key = crypt.NewWatermarkKeyFromSecret("thief-secret", f.params.Key.Eta)
	res, err := Detect(marked, "ssn", f.columns, wrong)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	if loss < 0.2 {
		t.Errorf("wrong key recovered the mark (loss %v); selection/permutation must be key-dependent", loss)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	f := newFixture(t, 1000, 5)
	a := f.tbl.Clone()
	b := f.tbl.Clone()
	if _, err := Embed(a, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	if _, err := Embed(b, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumRows(); i++ {
		for _, c := range a.Schema().Names() {
			av, _ := a.Cell(i, c)
			bv, _ := b.Cell(i, c)
			if av != bv {
				t.Fatalf("embedding nondeterministic at row %d col %s", i, c)
			}
		}
	}
}

func TestEmbedIdempotentDetection(t *testing.T) {
	// Re-embedding the same mark over a marked table must not change it:
	// the walk is a function of (ident, key, mark), not of the cell value.
	f := newFixture(t, 1500, 5)
	once := f.tbl.Clone()
	if _, err := Embed(once, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	twice := once.Clone()
	if _, err := Embed(twice, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < once.NumRows(); i++ {
		for _, c := range once.Schema().Names() {
			av, _ := once.Cell(i, c)
			bv, _ := twice.Cell(i, c)
			if av != bv {
				t.Fatalf("re-embedding changed row %d col %s", i, c)
			}
		}
	}
}

func TestEtaControlsBandwidth(t *testing.T) {
	fSmall := newFixture(t, 4000, 5)   // dense marking
	fLarge := newFixture(t, 4000, 100) // sparse marking
	mSmall := fSmall.tbl.Clone()
	mLarge := fLarge.tbl.Clone()
	sSmall, err := Embed(mSmall, "ssn", fSmall.columns, fSmall.params)
	if err != nil {
		t.Fatal(err)
	}
	sLarge, err := Embed(mLarge, "ssn", fLarge.columns, fLarge.params)
	if err != nil {
		t.Fatal(err)
	}
	if sSmall.TuplesSelected <= sLarge.TuplesSelected {
		t.Errorf("eta=5 selected %d tuples, eta=100 selected %d; smaller eta must select more",
			sSmall.TuplesSelected, sLarge.TuplesSelected)
	}
}

func TestZeroBandwidthWhenUltiEqualsMax(t *testing.T) {
	f := newFixture(t, 500, 3)
	// Collapse zip's maximal frontier onto the ultimate frontier.
	spec := f.columns["zip"]
	spec.MaxGen = spec.UltiGen
	f.columns["zip"] = spec

	marked := f.tbl.Clone()
	stats, err := Embed(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ZeroBandwidth == 0 {
		t.Error("expected zero-bandwidth cells when ultimate == maximal")
	}
	// zip column must be untouched
	ci, _ := marked.Schema().Index("zip")
	for i := 0; i < marked.NumRows(); i++ {
		if marked.CellAt(i, ci) != f.tbl.CellAt(i, ci) {
			t.Fatal("zip cell changed despite zero bandwidth")
		}
	}
	// role column still carries the mark
	res, err := Detect(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	if loss > 0.1 {
		t.Errorf("mark loss %v despite role-column bandwidth", loss)
	}
}

func TestBoundaryPermutation(t *testing.T) {
	f := newFixture(t, 3000, 5)
	// Collapse zip entirely: ultimate == maximal == states.
	spec := f.columns["zip"]
	spec.MaxGen = spec.UltiGen
	f.columns = map[string]ColumnSpec{"zip": spec}
	f.params.BoundaryPermutation = true

	marked := f.tbl.Clone()
	stats, err := Embed(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitsEmbedded == 0 {
		t.Fatal("boundary permutation embedded nothing")
	}
	res, err := Detect(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mark.Equal(f.params.Mark) {
		t.Errorf("boundary-mode roundtrip mark = %s, want %s", res.Mark.String(), f.params.Mark.String())
	}
}

func TestWeightedVotingRoundtrip(t *testing.T) {
	f := newFixture(t, 3000, 8)
	f.params.WeightedVoting = true
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mark.Equal(f.params.Mark) {
		t.Errorf("weighted roundtrip failed: %s vs %s", res.Mark.String(), f.params.Mark.String())
	}
}

func TestUnsaltedPositionRoundtrip(t *testing.T) {
	f := newFixture(t, 4000, 8)
	f.params.SaltPositionWithColumn = false
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(marked, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mark.Equal(f.params.Mark) {
		t.Errorf("unsalted roundtrip failed: %s vs %s", res.Mark.String(), f.params.Mark.String())
	}
}

func TestParamValidation(t *testing.T) {
	f := newFixture(t, 10, 5)
	marked := f.tbl.Clone()

	bad := f.params
	bad.Mark = bitstr.New(0)
	if _, err := Embed(marked, "ssn", f.columns, bad); err == nil {
		t.Error("empty mark accepted")
	}
	bad = f.params
	bad.Duplication = 0
	if _, err := Embed(marked, "ssn", f.columns, bad); err == nil {
		t.Error("zero duplication accepted")
	}
	bad = f.params
	bad.Key.Eta = 0
	if _, err := Embed(marked, "ssn", f.columns, bad); err == nil {
		t.Error("eta=0 accepted")
	}
	if _, err := Embed(marked, "missing", f.columns, f.params); err == nil {
		t.Error("missing ident column accepted")
	}
	if _, err := Embed(marked, "ssn", map[string]ColumnSpec{}, f.params); err == nil {
		t.Error("no columns accepted")
	}
	// cross-tree frontier
	other := roleTree(t)
	badCols := map[string]ColumnSpec{"zip": {
		Tree:    f.columns["zip"].Tree,
		MaxGen:  dht.RootGenSet(other),
		UltiGen: f.columns["zip"].UltiGen,
	}}
	if _, err := Embed(marked, "ssn", badCols, f.params); err == nil {
		t.Error("cross-tree frontier accepted")
	}
	// unbinned table: select every tuple (eta=1) so the check must fire
	raw := relation.NewTable(marked.Schema())
	_ = raw.AppendRow([]string{"x", "R0S0Z1", "Nurse"}) // leaf values, not frontier values
	selectAll := f.params
	selectAll.Key = crypt.NewWatermarkKeyFromSecret("owner-secret", 1)
	if _, err := Embed(raw, "ssn", f.columns, selectAll); err == nil {
		t.Error("unbinned values accepted")
	}
}

func TestDetectValidation(t *testing.T) {
	f := newFixture(t, 10, 5)
	if _, err := Detect(f.tbl, "missing", f.columns, f.params); err == nil {
		t.Error("missing ident column accepted")
	}
	bad := f.params
	bad.Mark = bitstr.New(0)
	if _, err := Detect(f.tbl, "ssn", f.columns, bad); err == nil {
		t.Error("empty mark accepted")
	}
}

func TestSetMuBit(t *testing.T) {
	cases := []struct {
		v    int
		bit  bool
		size int
		want int
	}{
		{0, false, 4, 0}, {0, true, 4, 1},
		{3, false, 4, 2}, {3, true, 4, 3},
		{2, true, 3, 1},  // 2|1=3 >= 3 -> 1
		{2, false, 3, 2}, // stays
		{1, false, 2, 0},
		{0, true, 2, 1},
	}
	for _, c := range cases {
		if got := setMuBit(c.v, c.bit, c.size); got != c.want {
			t.Errorf("setMuBit(%d,%v,%d) = %d, want %d", c.v, c.bit, c.size, got, c.want)
		}
	}
	// Exhaustive range+parity property.
	for size := 2; size <= 9; size++ {
		for v := 0; v < size; v++ {
			for _, bit := range []bool{false, true} {
				got := setMuBit(v, bit, size)
				if got < 0 || got >= size {
					t.Fatalf("setMuBit(%d,%v,%d) = %d out of range", v, bit, size, got)
				}
				if (got&1 == 1) != bit {
					t.Fatalf("setMuBit(%d,%v,%d) = %d wrong parity", v, bit, size, got)
				}
			}
		}
	}
}

func TestSingleLevelRoundtrip(t *testing.T) {
	f := newFixture(t, 4000, 8)
	// Single-level scheme needs uniform-depth frontiers: use zip only.
	cols := map[string]ColumnSpec{"zip": f.columns["zip"]}
	marked := f.tbl.Clone()
	stats, err := EmbedSingleLevel(marked, "ssn", cols, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitsEmbedded == 0 {
		t.Fatal("single-level embedded nothing")
	}
	res, err := DetectSingleLevel(marked, "ssn", cols, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mark.Equal(f.params.Mark) {
		t.Errorf("single-level roundtrip mark = %s, want %s", res.Mark.String(), f.params.Mark.String())
	}
}

func TestSingleLevelRejectsMixedDepthFrontier(t *testing.T) {
	f := newFixture(t, 100, 5)
	cols := map[string]ColumnSpec{"role": f.columns["role"]} // mixed depth? Doctor/Paramedic depth 2, Admin depth 1
	if _, err := EmbedSingleLevel(f.tbl.Clone(), "ssn", cols, f.params); err == nil ||
		!strings.Contains(err.Error(), "uniform-depth") {
		t.Errorf("mixed-depth frontier accepted: %v", err)
	}
}

func TestSingleLevelValuesStayOnFrontier(t *testing.T) {
	f := newFixture(t, 2000, 5)
	cols := map[string]ColumnSpec{"zip": f.columns["zip"]}
	marked := f.tbl.Clone()
	if _, err := EmbedSingleLevel(marked, "ssn", cols, f.params); err != nil {
		t.Fatal(err)
	}
	spec := cols["zip"]
	ci, _ := marked.Schema().Index("zip")
	for i := 0; i < marked.NumRows(); i++ {
		id, err := spec.Tree.ResolveValue(marked.CellAt(i, ci))
		if err != nil || !spec.UltiGen.Contains(id) {
			t.Fatalf("row %d: single-level target %q off the frontier", i, marked.CellAt(i, ci))
		}
	}
}

func TestFalsePositiveProbability(t *testing.T) {
	// exact small case: 2-bit mark, threshold 0 -> P(both coins right) = 1/4
	if got := FalsePositiveProbability(2, 0); got < 0.249 || got > 0.251 {
		t.Errorf("FPP(2,0) = %v, want 0.25", got)
	}
	// threshold 0.5 on 2 bits: need >= 1 right -> 3/4
	if got := FalsePositiveProbability(2, 0.5); got < 0.749 || got > 0.751 {
		t.Errorf("FPP(2,0.5) = %v, want 0.75", got)
	}
	// defaults: 20 bits, 0.15 threshold -> need >= 17 of 20 -> about 1.3e-3
	got := FalsePositiveProbability(20, 0.15)
	if got < 1e-4 || got > 2e-3 {
		t.Errorf("FPP(20,0.15) = %v, want ~1.3e-3", got)
	}
	// monotone: longer marks are harder to hit by chance
	if FalsePositiveProbability(32, 0.15) >= got {
		t.Error("longer mark should lower the false-positive probability")
	}
	// degenerate inputs
	if FalsePositiveProbability(0, 0.1) != 1 || FalsePositiveProbability(20, 1) != 1 ||
		FalsePositiveProbability(20, -0.1) != 1 {
		t.Error("degenerate inputs should return 1")
	}
}
