package watermark

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
)

// These tests pin the robustness claims of §7.2 (Figure 12) and the
// generalization-attack claim of §5.2 at representative operating points;
// the full parameter sweeps live in internal/experiments.

func markedFixture(t *testing.T, rows int, eta uint64) *fixture {
	t.Helper()
	f := newFixture(t, rows, eta)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	f.tbl = marked
	return f
}

func frontierValues(f *fixture, col string) []string {
	return f.columns[col].UltiGen.Values()
}

func TestRobustnessSubsetAlteration(t *testing.T) {
	f := markedFixture(t, 6000, 10)
	rng := rand.New(rand.NewSource(5))
	cols := map[string][]string{
		"zip":  frontierValues(f, "zip"),
		"role": frontierValues(f, "role"),
	}
	if _, err := attack.AlterSubset(f.tbl, cols, 0.4, rng); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(f.tbl, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	// Paper: ~30% mark loss at 70%+ alteration; at 40% we demand much less.
	if loss > 0.25 {
		t.Errorf("mark loss %v after 40%% alteration; scheme should survive", loss)
	}
}

func TestRobustnessSubsetAddition(t *testing.T) {
	f := markedFixture(t, 6000, 10)
	rng := rand.New(rand.NewSource(6))
	gen := attack.BogusRowGenerator(f.tbl.Schema(), "ssn", "bogus", map[string][]string{
		"zip":  frontierValues(f, "zip"),
		"role": frontierValues(f, "role"),
	}, rng)
	if _, err := attack.AddSubset(f.tbl, 0.6, gen); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(f.tbl, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	// Paper: "the newly-added bogus bits do not take precedence over the
	// existing bits in the majority-voting process".
	if loss > 0.15 {
		t.Errorf("mark loss %v after 60%% addition", loss)
	}
}

func TestRobustnessSubsetDeletion(t *testing.T) {
	f := markedFixture(t, 6000, 10)
	rng := rand.New(rand.NewSource(7))
	if _, err := attack.DeleteRandom(f.tbl, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(f.tbl, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	if loss > 0.2 {
		t.Errorf("mark loss %v after 50%% deletion", loss)
	}
}

func TestRobustnessRangeDeletion(t *testing.T) {
	f := markedFixture(t, 6000, 10)
	rng := rand.New(rand.NewSource(8))
	deleted, err := attack.DeleteRanges(f.tbl, "ssn", 0.4, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("range deletion removed nothing")
	}
	res, err := Detect(f.tbl, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	if loss > 0.2 {
		t.Errorf("mark loss %v after 40%% range deletion", loss)
	}
}

func TestGeneralizationAttackHierarchicalSurvives(t *testing.T) {
	// §5.2: a keyless one-level generalization within the usage metrics.
	// Zip values sit at the state level with the region ceiling directly
	// above, so this attack erases zip's bits entirely; the role column's
	// deeper paths keep voting, and the hierarchical detector must still
	// recover the mark from those surviving levels.
	f := markedFixture(t, 8000, 10)
	for col, spec := range f.columns {
		if _, err := attack.Generalize(f.tbl, col, spec.Tree, spec.MaxGen, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Detect(f.tbl, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	if loss > 0.2 {
		t.Errorf("hierarchical mark loss %v after generalization attack; must survive (§5.2)", loss)
	}
}

func TestGeneralizationAttackDestroysSingleLevel(t *testing.T) {
	f := newFixture(t, 8000, 10)
	cols := map[string]ColumnSpec{"zip": f.columns["zip"]}
	marked := f.tbl.Clone()
	if _, err := EmbedSingleLevel(marked, "ssn", cols, f.params); err != nil {
		t.Fatal(err)
	}
	// sanity: clean detection works
	clean, err := DetectSingleLevel(marked, "ssn", cols, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Mark.Equal(f.params.Mark) {
		t.Fatal("single-level clean detection failed")
	}
	// the keyless generalization attack
	spec := cols["zip"]
	if _, err := attack.Generalize(marked, "zip", spec.Tree, spec.MaxGen, 1); err != nil {
		t.Fatal(err)
	}
	res, err := DetectSingleLevel(marked, "ssn", cols, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VotesCast != 0 {
		t.Errorf("single-level detector still cast %d votes after generalization; should be blind", res.Stats.VotesCast)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	// With zero votes every position resolves to 0: loss equals the
	// fraction of 1-bits in the mark — i.e. the mark is gone.
	if loss < 0.3 {
		t.Errorf("single-level scheme survived the generalization attack (loss %v); the paper says it must not", loss)
	}
	// And the hierarchical detector on the SAME attacked table (embedded
	// hierarchically) demonstrates the fix — covered by the test above.
}

func TestCombinedAttackBattery(t *testing.T) {
	// Stacked attacks: alteration + addition + deletion at moderate rates.
	f := markedFixture(t, 8000, 8)
	rng := rand.New(rand.NewSource(11))
	colVals := map[string][]string{
		"zip":  frontierValues(f, "zip"),
		"role": frontierValues(f, "role"),
	}
	if _, err := attack.AlterSubset(f.tbl, colVals, 0.2, rng); err != nil {
		t.Fatal(err)
	}
	gen := attack.BogusRowGenerator(f.tbl.Schema(), "ssn", "bogus", colVals, rng)
	if _, err := attack.AddSubset(f.tbl, 0.2, gen); err != nil {
		t.Fatal(err)
	}
	if _, err := attack.DeleteRandom(f.tbl, 0.2, rng); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(f.tbl, "ssn", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	if loss > 0.25 {
		t.Errorf("mark loss %v after combined battery", loss)
	}
}

func TestSmallerEtaMoreResilient(t *testing.T) {
	// Figure 12's secondary observation: smaller η (more marked tuples)
	// loses fewer bits under the same attack.
	losses := make(map[uint64]float64)
	for _, eta := range []uint64{10, 100} {
		f := newFixture(t, 6000, eta)
		marked := f.tbl.Clone()
		if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		cols := map[string][]string{
			"zip":  frontierValues(f, "zip"),
			"role": frontierValues(f, "role"),
		}
		if _, err := attack.AlterSubset(marked, cols, 0.6, rng); err != nil {
			t.Fatal(err)
		}
		res, err := Detect(marked, "ssn", f.columns, f.params)
		if err != nil {
			t.Fatal(err)
		}
		losses[eta], _ = MarkLoss(f.params.Mark, res)
	}
	if losses[10] > losses[100] {
		t.Errorf("eta=10 loss %v exceeds eta=100 loss %v; more bandwidth should not hurt", losses[10], losses[100])
	}
}
