package watermark

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/relation"
)

// The single-level scheme of §5.2 permutes values only at the level of
// the ultimate generalization nodes: the bit is the parity of the chosen
// sibling's sorted index. The paper introduces it to show it is
// "susceptible to a kind of generalization attack that can completely
// destroy the inserted bits without knowing the watermarking key" — one
// generalization step leaves nothing for the detector to read. It is
// implemented here as the experimental baseline for that claim (E8).
//
// The scheme requires every ultimate generalization node of a column to
// sit at one uniform depth (the setting of categorical-permutation
// watermarking it models); uniformDepth enforces that.

func uniformDepth(spec ColumnSpec, col string) (int, error) {
	nodes := spec.UltiGen.Nodes()
	if len(nodes) == 0 {
		return 0, fmt.Errorf("watermark: column %s: empty frontier", col)
	}
	d := spec.Tree.Node(nodes[0]).Depth
	for _, nd := range nodes[1:] {
		if spec.Tree.Node(nd).Depth != d {
			return 0, fmt.Errorf(
				"watermark: column %s: single-level scheme requires a uniform-depth frontier (found depths %d and %d)",
				col, d, spec.Tree.Node(nd).Depth)
		}
	}
	return d, nil
}

// EmbedSingleLevel embeds the mark with the single-level scheme, in
// place. Selection, position addressing and key usage match Embed, so the
// two schemes are directly comparable.
func EmbedSingleLevel(tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (EmbedStats, error) {
	var stats EmbedStats
	if err := p.validate(); err != nil {
		return stats, err
	}
	if len(columns) == 0 {
		return stats, fmt.Errorf("watermark: no columns to embed into")
	}
	identIdx, err := tbl.Schema().Index(identCol)
	if err != nil {
		return stats, err
	}
	colIdx := make(map[string]int, len(columns))
	for col, spec := range columns {
		if err := spec.validate(col); err != nil {
			return stats, err
		}
		if _, err := uniformDepth(spec, col); err != nil {
			return stats, err
		}
		ci, err := tbl.Schema().Index(col)
		if err != nil {
			return stats, err
		}
		colIdx[col] = ci
	}

	prf1 := crypt.NewPRF(p.Key.K1)
	prf2 := crypt.NewPRF(p.Key.K2)
	wmd := p.Mark.Duplicate(p.Duplication)
	cols := sortColumns(columns)

	for row := 0; row < tbl.NumRows(); row++ {
		ident := []byte(tbl.CellAt(row, identIdx))
		if !prf1.Selects(ident, p.Key.Eta) {
			continue
		}
		stats.TuplesSelected++
		for _, col := range cols {
			spec := columns[col]
			ci := colIdx[col]
			oldVal := tbl.CellAt(row, ci)
			id, err := spec.Tree.ResolveValue(oldVal)
			if err != nil {
				return stats, fmt.Errorf("watermark: row %d column %s: %w", row, col, err)
			}
			if !spec.UltiGen.Contains(id) {
				return stats, fmt.Errorf("watermark: row %d column %s: value %q not at the ultimate frontier", row, col, oldVal)
			}
			siblings := spec.Tree.SortedSiblings(id)
			if len(siblings) < 2 {
				stats.ZeroBandwidth++
				continue
			}
			bit := wmd.Get(p.positionOf(prf2, ident, col))
			idx := int(prf2.Mod(uint64(len(siblings)), ident, []byte("perm"), []byte(col)))
			idx = setMuBit(idx, bit, len(siblings))
			stats.BitsEmbedded++
			newVal := spec.Tree.Value(siblings[idx])
			if newVal != oldVal {
				tbl.SetCellAt(row, ci, newVal)
				stats.CellsChanged++
			}
		}
	}
	return stats, nil
}

// DetectSingleLevel detects a single-level mark: the bit of a cell is the
// sorted-sibling index parity of the value's node at the frontier depth.
// A value that no longer sits at that depth (e.g. after a generalization
// attack) contributes nothing — which is exactly the vulnerability the
// hierarchical scheme fixes.
func DetectSingleLevel(tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (DetectResult, error) {
	var res DetectResult
	if err := p.validate(); err != nil {
		return res, err
	}
	identIdx, err := tbl.Schema().Index(identCol)
	if err != nil {
		return res, err
	}
	colIdx := make(map[string]int, len(columns))
	depths := make(map[string]int, len(columns))
	for col, spec := range columns {
		if err := spec.validate(col); err != nil {
			return res, err
		}
		d, err := uniformDepth(spec, col)
		if err != nil {
			return res, err
		}
		depths[col] = d
		ci, err := tbl.Schema().Index(col)
		if err != nil {
			return res, err
		}
		colIdx[col] = ci
	}

	prf1 := crypt.NewPRF(p.Key.K1)
	prf2 := crypt.NewPRF(p.Key.K2)
	board := bitstr.NewVoteBoard(p.wmdLen())
	cols := sortColumns(columns)

	for row := 0; row < tbl.NumRows(); row++ {
		ident := []byte(tbl.CellAt(row, identIdx))
		if !prf1.Selects(ident, p.Key.Eta) {
			continue
		}
		res.Stats.TuplesSelected++
		for _, col := range cols {
			spec := columns[col]
			id, err := spec.Tree.ResolveValue(tbl.CellAt(row, colIdx[col]))
			if err != nil || spec.Tree.Node(id).Depth != depths[col] {
				res.Stats.SkippedCells++
				continue
			}
			siblings := spec.Tree.SortedSiblings(id)
			idx := indexIn(id, siblings)
			if len(siblings) < 2 || idx < 0 {
				res.Stats.SkippedCells++
				continue
			}
			res.Stats.BitsRead++
			board.Vote(p.positionOf(prf2, ident, col), idx&1 == 1, 1)
			res.Stats.VotesCast++
		}
	}

	folded, err := board.FoldInto(p.Mark.Len())
	if err != nil {
		return res, err
	}
	res.Mark = folded.Resolve()
	res.Confidence = folded.Confidence()
	return res, nil
}
