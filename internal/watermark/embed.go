package watermark

import (
	"context"
	"fmt"

	"repro/internal/crypt"
	"repro/internal/pool"
	"repro/internal/relation"
)

// Embed implements the hierarchical Embedding algorithm of Figure 9 over
// the binned table tbl, in place. identCol names the (encrypted)
// identifying column used as the stable embedding anchor; columns maps
// each watermarkable column to its spec.
//
// For every tuple selected by Equation (5), and for every column, the
// walk starts at the maximal generalization node covering the tuple's
// current value and permutes downward: at each level the target child is
// chosen pseudorandomly with its index parity forced to the mark bit
// (Permutate), until an ultimate generalization node is reached. Levels
// with fewer than two children are traversed without carrying a bit
// (DESIGN.md deviation 2).
//
// On success the embedded table is byte-identical for every
// Params.Workers value. On error the table is left partially mutated —
// as with the sequential scan — but *which* rows were already marked
// depends on the worker count; callers must discard the table when
// Embed fails (Protect embeds into a throwaway clone for this reason).
func Embed(tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (EmbedStats, error) {
	return EmbedContext(context.Background(), tbl, identCol, columns, p)
}

// EmbedContext is Embed under a context: shards poll ctx at
// pool.CtxStride row boundaries and the run aborts with the context's
// error. A cancelled embed leaves the table partially mutated, exactly
// like an embed that failed on a bad row — callers must discard it.
func EmbedContext(ctx context.Context, tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (EmbedStats, error) {
	var stats EmbedStats
	if err := p.validate(); err != nil {
		return stats, err
	}
	if len(columns) == 0 {
		return stats, fmt.Errorf("watermark: no columns to embed into")
	}
	identIdx := -1
	if !p.UseVirtualIdent {
		var err error
		if identIdx, err = tbl.Schema().Index(identCol); err != nil {
			return stats, err
		}
	}
	colIdx := make(map[string]int, len(columns))
	for col, spec := range columns {
		if err := spec.validate(col); err != nil {
			return stats, err
		}
		ci, err := tbl.Schema().Index(col)
		if err != nil {
			return stats, err
		}
		colIdx[col] = ci
	}

	prf1 := crypt.NewPRF(p.Key.K1)
	prf2 := crypt.NewPRF(p.Key.K2)
	wmd := p.Mark.Duplicate(p.Duplication)
	cols := sortColumns(columns)

	// Shard the tuples into contiguous row ranges and embed each range on
	// its own goroutine: every row touches only its own cells (the §5.3
	// virtual key, too, is derived from the row itself), so the shards are
	// disjoint. Per-shard statistics are summed in shard order, and the
	// error of the lowest failing shard — whose scan stops at its first
	// bad row, like the sequential loop — is the one reported.
	shardStats := make([]EmbedStats, len(pool.Chunks(p.Workers, tbl.NumRows())))
	err := pool.ForEachChunkCtx(ctx, p.Workers, tbl.NumRows(), func(si, lo, hi int) error {
		shard := &shardStats[si]
		for row := lo; row < hi; row++ {
			if err := pool.CtxAt(ctx, row-lo); err != nil {
				return err
			}
			var ident []byte
			if p.UseVirtualIdent {
				ident = virtualIdent(tbl, row, cols, colIdx, columns)
			} else {
				ident = []byte(tbl.CellAt(row, identIdx))
			}
			if !prf1.Selects(ident, p.Key.Eta) {
				continue
			}
			shard.TuplesSelected++
			for _, col := range cols {
				spec := columns[col]
				bit := wmd.Get(p.positionOf(prf2, ident, col))
				ci := colIdx[col]
				oldVal := tbl.CellAt(row, ci)
				newVal, embedded, err := embedCell(spec, prf2, ident, col, oldVal, bit, p.BoundaryPermutation)
				if err != nil {
					return fmt.Errorf("watermark: row %d column %s: %w", row, col, err)
				}
				shard.BitsEmbedded += embedded
				if embedded == 0 {
					shard.ZeroBandwidth++
				}
				if newVal != oldVal {
					tbl.SetCellAt(row, ci, newVal)
					shard.CellsChanged++
				}
			}
		}
		return nil
	})
	for _, s := range shardStats {
		stats.add(s)
	}
	if err != nil {
		return stats, err
	}
	return stats, nil
}

// embedCell runs the Permutate walk for one cell, returning the new value
// and the number of bits embedded (levels with branching >= 2).
func embedCell(spec ColumnSpec, prf2 *crypt.PRF, ident []byte, col, value string, bit, boundary bool) (string, int, error) {
	tree := spec.Tree
	id, err := tree.ResolveValue(value)
	if err != nil {
		return "", 0, err
	}
	if !spec.UltiGen.Contains(id) {
		return "", 0, fmt.Errorf("value %q is not at the ultimate generalization frontier; was the table binned with these frontiers?", value)
	}
	maxNode, ok := spec.MaxGen.CoverOf(id)
	if !ok {
		return "", 0, fmt.Errorf("value %q has no covering maximal generalization node", value)
	}

	if maxNode == id {
		// §5.1 boundary case: the ultimate node is itself maximal.
		if !boundary {
			return value, 0, nil
		}
		set := boundarySet(spec, id)
		if len(set) < 2 {
			return value, 0, nil
		}
		idx := int(prf2.Mod(uint64(len(set)), ident, []byte("perm"), []byte(col), []byte("boundary")))
		idx = setMuBit(idx, bit, len(set))
		return tree.Value(set[idx]), 1, nil
	}

	// Hierarchical walk: descend from the maximal node, choosing at each
	// level a child whose sorted index carries the mark bit in its parity.
	// The pseudorandom part of the index is salted with the depth so the
	// even/odd slot varies per level; detection only reads the parity, so
	// this changes nothing observable (see DESIGN.md §2).
	cur := maxNode
	embedded := 0
	for !spec.UltiGen.Contains(cur) {
		children := tree.SortedChildren(cur)
		if len(children) == 0 {
			return "", 0, fmt.Errorf("internal: walk from %q reached leaf %q without crossing the ultimate frontier",
				tree.Value(maxNode), tree.Value(cur))
		}
		idx := 0
		if len(children) >= 2 {
			depth := tree.Node(cur).Depth
			idx = int(prf2.Mod(uint64(len(children)), ident, []byte("perm"), []byte(col), []byte{byte(depth)}))
			idx = setMuBit(idx, bit, len(children))
			embedded++
		}
		cur = children[idx]
	}
	return tree.Value(cur), embedded, nil
}
