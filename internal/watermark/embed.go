package watermark

import (
	"context"
	"fmt"

	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/pool"
	"repro/internal/relation"
)

// embedPrelude is the value-dependent half of the Permutate walk for one
// dictionary code: everything that does not depend on the tuple's
// identity is computed once per distinct value instead of once per row.
type embedPrelude struct {
	// err is the resolution/frontier error of the value; it is raised
	// only when a *selected* tuple carries this code — unselected tuples
	// never error, exactly like the per-row scan.
	err error
	// boundary marks the §5.1 case: the ultimate node is itself maximal.
	boundary bool
	// maxNode roots the hierarchical walk (non-boundary case).
	maxNode dht.NodeID
	// set / setCodes are the boundary permutation set and the dictionary
	// codes of its values (boundary case with BoundaryPermutation).
	set      []dht.NodeID
	setCodes []uint32
}

// embedPlan precomputes one column's per-code preludes plus the
// node → dictionary code table the walk endpoints decode through.
type embedPlan struct {
	col        string
	idx        int
	spec       ColumnSpec
	pre        []embedPrelude
	codeOfNode []uint32 // indexed by NodeID; valid for frontier nodes
}

// buildEmbedPlan pre-interns every value embedding can write (ultimate
// frontier members and boundary sets) so the sharded writers below touch
// only code vectors, then computes the per-code preludes.
func buildEmbedPlan(tbl *relation.Table, col string, ci int, spec ColumnSpec, boundaryPermutation bool) embedPlan {
	plan := embedPlan{col: col, idx: ci, spec: spec}
	tree := spec.Tree
	plan.codeOfNode = make([]uint32, tree.Size())
	for _, nd := range spec.UltiGen.Nodes() {
		plan.codeOfNode[nd] = tbl.InternValue(ci, tree.Value(nd))
	}
	dict := tbl.DictValues(ci)
	plan.pre = make([]embedPrelude, len(dict))
	for code, value := range dict {
		p := &plan.pre[code]
		id, err := tree.ResolveValue(value)
		if err != nil {
			p.err = err
			continue
		}
		if !spec.UltiGen.Contains(id) {
			p.err = fmt.Errorf("value %q is not at the ultimate generalization frontier; was the table binned with these frontiers?", value)
			continue
		}
		maxNode, ok := spec.MaxGen.CoverOf(id)
		if !ok {
			p.err = fmt.Errorf("value %q has no covering maximal generalization node", value)
			continue
		}
		if maxNode == id {
			p.boundary = true
			if boundaryPermutation {
				if set := boundarySet(spec, id); len(set) >= 2 {
					p.set = set
					p.setCodes = make([]uint32, len(set))
					for i, nd := range set {
						p.setCodes[i] = plan.codeOfNode[nd]
					}
				}
			}
			continue
		}
		p.maxNode = maxNode
	}
	return plan
}

// Embed implements the hierarchical Embedding algorithm of Figure 9 over
// the binned table tbl, in place. identCol names the (encrypted)
// identifying column used as the stable embedding anchor; columns maps
// each watermarkable column to its spec.
//
// For every tuple selected by Equation (5), and for every column, the
// walk starts at the maximal generalization node covering the tuple's
// current value and permutes downward: at each level the target child is
// chosen pseudorandomly with its index parity forced to the mark bit
// (Permutate), until an ultimate generalization node is reached. Levels
// with fewer than two children are traversed without carrying a bit
// (DESIGN.md deviation 2).
//
// The value-dependent half of the walk (resolution, frontier checks,
// boundary sets) is planned once per distinct dictionary entry; the
// per-tuple half (PRF selection, the keyed descent) runs on integer
// codes, and shards write disjoint rows of the code vectors only.
//
// On success the embedded table is byte-identical for every
// Params.Workers value. On error the table is left partially mutated —
// as with the sequential scan — but *which* rows were already marked
// depends on the worker count; callers must discard the table when
// Embed fails (Protect embeds into a throwaway clone for this reason).
func Embed(tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (EmbedStats, error) {
	return EmbedContext(context.Background(), tbl, identCol, columns, p)
}

// EmbedContext is Embed under a context: shards poll ctx at
// pool.CtxStride row boundaries and the run aborts with the context's
// error. A cancelled embed leaves the table partially mutated, exactly
// like an embed that failed on a bad row — callers must discard it.
func EmbedContext(ctx context.Context, tbl *relation.Table, identCol string, columns map[string]ColumnSpec, p Params) (EmbedStats, error) {
	var stats EmbedStats
	if err := p.validate(); err != nil {
		return stats, err
	}
	if len(columns) == 0 {
		return stats, fmt.Errorf("watermark: no columns to embed into")
	}
	identIdx := -1
	if !p.UseVirtualIdent {
		var err error
		if identIdx, err = tbl.Schema().Index(identCol); err != nil {
			return stats, err
		}
	}
	cols := sortColumns(columns)
	plans := make([]embedPlan, len(cols))
	for i, col := range cols {
		spec := columns[col]
		if err := spec.validate(col); err != nil {
			return stats, err
		}
		ci, err := tbl.Schema().Index(col)
		if err != nil {
			return stats, err
		}
		plans[i] = buildEmbedPlan(tbl, col, ci, spec, p.BoundaryPermutation)
	}
	var vkeys *virtualKeys
	if p.UseVirtualIdent {
		idxs := make([]int, len(plans))
		specs := make([]ColumnSpec, len(plans))
		for i := range plans {
			idxs[i], specs[i] = plans[i].idx, plans[i].spec
		}
		vkeys = buildVirtualKeys(tbl, idxs, specs)
	}

	prf1 := crypt.NewPRF(p.Key.K1)
	prf2 := crypt.NewPRF(p.Key.K2)
	wmd := p.Mark.Duplicate(p.Duplication)

	// Shard the tuples into contiguous row ranges and embed each range on
	// its own goroutine: every row touches only its own cells (the §5.3
	// virtual key, too, is derived from the row itself), and all values a
	// shard can write were interned by the plans above, so the shards are
	// disjoint writers on the code vectors. Per-shard statistics are
	// summed in shard order, and the error of the lowest failing shard —
	// whose scan stops at its first bad row, like the sequential loop —
	// is the one reported.
	shardStats := make([]EmbedStats, len(pool.Chunks(p.Workers, tbl.NumRows())))
	err := pool.ForEachChunkCtx(ctx, p.Workers, tbl.NumRows(), func(si, lo, hi int) error {
		shard := &shardStats[si]
		for row := lo; row < hi; row++ {
			if err := pool.CtxAt(ctx, row-lo); err != nil {
				return err
			}
			var ident []byte
			if p.UseVirtualIdent {
				ident = vkeys.identOf(tbl, row)
			} else {
				ident = []byte(tbl.CellAt(row, identIdx))
			}
			if !prf1.Selects(ident, p.Key.Eta) {
				continue
			}
			shard.TuplesSelected++
			for pi := range plans {
				plan := &plans[pi]
				code := tbl.CodeAt(row, plan.idx)
				newCode, embedded, err := embedCode(plan, code, prf2, ident, wmd.Get(p.positionOf(prf2, ident, plan.col)))
				if err != nil {
					return fmt.Errorf("watermark: row %d column %s: %w", row, plan.col, err)
				}
				shard.BitsEmbedded += embedded
				if embedded == 0 {
					shard.ZeroBandwidth++
				}
				if newCode != code {
					tbl.SetCodeAt(row, plan.idx, newCode)
					shard.CellsChanged++
				}
			}
		}
		return nil
	})
	for _, s := range shardStats {
		stats.add(s)
	}
	if err != nil {
		return stats, err
	}
	return stats, nil
}

// EmbedSelectedContext is EmbedContext with the Equation (5) selection
// precomputed: it walks only the selected rows instead of re-running
// the full-table PRF scan. The embedded table and the statistics are
// byte-identical to EmbedContext under the same parameters — the
// selection is a pure function of (identifier, K1, η), and the walk of
// each selected cell depends only on the identifier, K2 and the mark
// bit. This is the per-recipient step of the fingerprint fan-out: one
// SelectForEmbedContext scan serves every recipient key sharing K1 and
// η, collapsing each embed to a walk over the few selected rows.
//
// The selection must have been computed over a table whose identifying
// column matches tbl's (the fan-out embeds into clones of the table it
// selected over); row indices are trusted. Virtual-identifier
// embedding stays on the plain EmbedContext path.
func EmbedSelectedContext(ctx context.Context, tbl *relation.Table, sel *Selection, columns map[string]ColumnSpec, p Params) (EmbedStats, error) {
	var stats EmbedStats
	if err := p.validate(); err != nil {
		return stats, err
	}
	if p.UseVirtualIdent {
		return stats, fmt.Errorf("watermark: virtual-identifier embedding is not supported over a precomputed selection")
	}
	if len(columns) == 0 {
		return stats, fmt.Errorf("watermark: no columns to embed into")
	}
	if sel.k1 != string(p.Key.K1) || sel.eta != p.Key.Eta {
		return stats, fmt.Errorf("watermark: selection was computed under a different (K1, eta) than the embedding key")
	}
	cols := sortColumns(columns)
	plans := make([]embedPlan, len(cols))
	for i, col := range cols {
		spec := columns[col]
		if err := spec.validate(col); err != nil {
			return stats, err
		}
		ci, err := tbl.Schema().Index(col)
		if err != nil {
			return stats, err
		}
		plans[i] = buildEmbedPlan(tbl, col, ci, spec, p.BoundaryPermutation)
	}

	prf2 := crypt.NewPRF(p.Key.K2)
	wmd := p.Mark.Duplicate(p.Duplication)
	for i, row := range sel.rows {
		if err := pool.CtxAt(ctx, i); err != nil {
			return stats, err
		}
		ident := sel.ident[i]
		stats.TuplesSelected++
		for pi := range plans {
			plan := &plans[pi]
			code := tbl.CodeAt(int(row), plan.idx)
			newCode, embedded, err := embedCode(plan, code, prf2, ident, wmd.Get(p.positionOf(prf2, ident, plan.col)))
			if err != nil {
				return stats, fmt.Errorf("watermark: row %d column %s: %w", row, plan.col, err)
			}
			stats.BitsEmbedded += embedded
			if embedded == 0 {
				stats.ZeroBandwidth++
			}
			if newCode != code {
				tbl.SetCodeAt(int(row), plan.idx, newCode)
				stats.CellsChanged++
			}
		}
	}
	return stats, nil
}

// embedCode runs the per-tuple half of the Permutate walk for one cell,
// returning the new dictionary code and the number of bits embedded
// (levels with branching >= 2).
func embedCode(plan *embedPlan, code uint32, prf2 *crypt.PRF, ident []byte, bit bool) (uint32, int, error) {
	pre := &plan.pre[code]
	if pre.err != nil {
		return 0, 0, pre.err
	}
	tree := plan.spec.Tree
	if pre.boundary {
		// §5.1 boundary case: the ultimate node is itself maximal; the
		// plan left setCodes empty when permutation is off or the set has
		// fewer than two members.
		if len(pre.setCodes) == 0 {
			return code, 0, nil
		}
		idx := int(prf2.Mod(uint64(len(pre.set)), ident, []byte("perm"), []byte(plan.col), []byte("boundary")))
		idx = setMuBit(idx, bit, len(pre.set))
		return pre.setCodes[idx], 1, nil
	}

	// Hierarchical walk: descend from the maximal node, choosing at each
	// level a child whose sorted index carries the mark bit in its parity.
	// The pseudorandom part of the index is salted with the depth so the
	// even/odd slot varies per level; detection only reads the parity, so
	// this changes nothing observable (see DESIGN.md §2).
	cur := pre.maxNode
	embedded := 0
	for !plan.spec.UltiGen.Contains(cur) {
		children := tree.SortedChildren(cur)
		if len(children) == 0 {
			return 0, 0, fmt.Errorf("internal: walk from %q reached leaf %q without crossing the ultimate frontier",
				tree.Value(pre.maxNode), tree.Value(cur))
		}
		idx := 0
		if len(children) >= 2 {
			depth := tree.Node(cur).Depth
			idx = int(prf2.Mod(uint64(len(children)), ident, []byte("perm"), []byte(plan.col), []byte{byte(depth)}))
			idx = setMuBit(idx, bit, len(children))
			embedded++
		}
		cur = children[idx]
	}
	return plan.codeOfNode[cur], embedded, nil
}
