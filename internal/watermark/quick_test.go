package watermark

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/crypt"
)

// Property: any mark roundtrips exactly through embed → detect on a clean
// table, regardless of its bit pattern and duplication factor.
func TestQuickMarkRoundtrip(t *testing.T) {
	f := newFixture(t, 2500, 6)
	marks := 0
	prop := func(raw [3]byte, dupRaw uint8) bool {
		mark, err := bitstr.FromBytes(raw[:], 20)
		if err != nil {
			return false
		}
		params := f.params
		params.Mark = mark
		params.Duplication = int(dupRaw)%6 + 1
		marked := f.tbl.Clone()
		if _, err := Embed(marked, "ssn", f.columns, params); err != nil {
			return false
		}
		res, err := Detect(marked, "ssn", f.columns, params)
		if err != nil {
			return false
		}
		marks++
		return res.Mark.Equal(mark)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
	if marks == 0 {
		t.Fatal("property never exercised")
	}
}

// Property: embedding is content-addressed — permuting physical row order
// does not change what the detector recovers.
func TestQuickRowOrderIndependence(t *testing.T) {
	f := newFixture(t, 3000, 6)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		shuffled := marked.Clone()
		shuffled.Shuffle(rand.New(rand.NewSource(seed)))
		res, err := Detect(shuffled, "ssn", f.columns, f.params)
		if err != nil {
			return false
		}
		return res.Mark.Equal(f.params.Mark)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: two different secrets never both detect the same table as
// theirs (the key binds the mark).
func TestQuickKeySeparation(t *testing.T) {
	f := newFixture(t, 3000, 6)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	prop := func(secret string) bool {
		if secret == "" {
			return true
		}
		other := f.params
		other.Key = keyFromSecret(secret, f.params.Key.Eta)
		res, err := Detect(marked, "ssn", f.columns, other)
		if err != nil {
			return false
		}
		loss, err := MarkLoss(f.params.Mark, res)
		if err != nil {
			return false
		}
		// a wrong key reads noise: at least some mark bits must differ
		return loss > 0.05
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// keyFromSecret abbreviates crypt.NewWatermarkKeyFromSecret.
func keyFromSecret(secret string, eta uint64) crypt.WatermarkKey {
	return crypt.NewWatermarkKeyFromSecret(secret, eta)
}
