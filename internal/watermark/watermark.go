// Package watermark implements the paper's watermarking algorithms
// (Section 5): the hierarchical scheme of Figure 9 — Embedding, Permutate
// and Detection — plus the single-level scheme of §5.2, which exists as
// the baseline that the generalization attack destroys.
//
// The bandwidth channel (§5.1) is the gap between the maximal
// generalization nodes (usage metrics) and the ultimate generalization
// nodes (binning output): permuting a value among nodes below its maximal
// generalization node equals a generalization that usage metrics already
// allow, so the data tolerate it. The hierarchical scheme embeds one mark
// bit at *every* tree level between the two frontiers, which is what
// defeats the generalization attack.
package watermark

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/dht"
)

// ColumnSpec describes one watermarkable (quasi-identifying, binned)
// column: its domain hierarchy tree, the maximal generalization nodes
// from the usage metrics, and the ultimate generalization nodes the data
// are binned to.
type ColumnSpec struct {
	Tree    *dht.Tree
	MaxGen  dht.GenSet
	UltiGen dht.GenSet
}

func (c ColumnSpec) validate(col string) error {
	if c.Tree == nil {
		return fmt.Errorf("watermark: column %s: nil tree", col)
	}
	if c.MaxGen.Tree() != c.Tree || c.UltiGen.Tree() != c.Tree {
		return fmt.Errorf("watermark: column %s: frontiers must belong to the column's tree", col)
	}
	if !c.UltiGen.AtOrBelow(c.MaxGen) {
		return fmt.Errorf("watermark: column %s: ultimate nodes must be at or below maximal nodes", col)
	}
	return nil
}

// Params carries the secret watermarking key and embedding policy.
type Params struct {
	// Key holds k1 (tuple selection), k2 (index/position derivation) and
	// η (selection density) — Table 1 of the paper.
	Key crypt.WatermarkKey
	// Mark is the mark wm to embed (the paper's experiments use 20 bits).
	Mark bitstr.Bits
	// Duplication is the replication factor l: wmd = Duplicate(wm, l).
	// Must be >= 1.
	Duplication int
	// WeightedVoting gives bits recovered from higher tree levels more
	// voting weight, implementing the §5.3 policy that "the copy from a
	// higher level is more reliable than that from a lower level".
	WeightedVoting bool
	// SaltPositionWithColumn includes the column name in the wmd-position
	// hash so different columns of one tuple carry different mark
	// positions (DESIGN.md deviation 5). Disable for the paper's literal
	// single-column behaviour.
	SaltPositionWithColumn bool
	// BoundaryPermutation enables the §5.1 relaxation for tuples whose
	// ultimate generalization node is also a maximal generalization node:
	// the value is permuted among sibling frontier nodes, trading a small
	// usage-metric overshoot for bandwidth. Off by default (such tuples
	// then carry no bits).
	BoundaryPermutation bool
	// Workers bounds the goroutines Embed and Detect spread the per-tuple
	// PRF/walk work over (0 = GOMAXPROCS, 1 = sequential). Tuples are
	// sharded into contiguous row ranges and merged deterministically, so
	// the embedded table, the recovered mark and all statistics are
	// identical for every worker count.
	Workers int
	// UseVirtualIdent anchors selection and addressing on a virtual
	// primary key derived from the columns' maximal-cover values instead
	// of the identifying column (§5.3 footnote 1) — for tables whose
	// identifying columns cannot be relied on. identCol is then ignored
	// and may be empty. See virtual.go for the granularity trade-off.
	UseVirtualIdent bool
}

func (p Params) validate() error {
	if err := p.Key.Validate(); err != nil {
		return err
	}
	if p.Mark.Len() < 1 {
		return errors.New("watermark: empty mark")
	}
	if p.Duplication < 1 {
		return errors.New("watermark: Duplication must be >= 1")
	}
	return nil
}

func (p Params) wmdLen() int { return p.Mark.Len() * p.Duplication }

// WmdLen is the replicated mark length |wmd| = |wm|·l — the position
// count streaming callers size their persistent vote boards with.
func (p Params) WmdLen() int { return p.wmdLen() }

// positionOf returns the wmd position addressed by a tuple (and column,
// when salting is on): the paper's H(ti.ident, k2) mod |wmd|.
func (p Params) positionOf(prf2 *crypt.PRF, ident []byte, col string) int {
	if p.SaltPositionWithColumn {
		return int(prf2.Mod(uint64(p.wmdLen()), ident, []byte("pos"), []byte(col)))
	}
	return int(prf2.Mod(uint64(p.wmdLen()), ident, []byte("pos")))
}

// EmbedStats reports embedding work.
type EmbedStats struct {
	// TuplesSelected is the number of tuples passing Equation (5).
	TuplesSelected int
	// BitsEmbedded counts levels that carried a mark bit, across all
	// selected tuples and columns.
	BitsEmbedded int
	// CellsChanged counts cells whose value actually changed.
	CellsChanged int
	// ZeroBandwidth counts (tuple, column) pairs with no capacity —
	// the ultimate node coincides with the maximal node and boundary
	// permutation is off (or has fewer than two eligible siblings).
	ZeroBandwidth int
}

// add accumulates another shard's embedding counters.
func (s *EmbedStats) add(o EmbedStats) {
	s.TuplesSelected += o.TuplesSelected
	s.BitsEmbedded += o.BitsEmbedded
	s.CellsChanged += o.CellsChanged
	s.ZeroBandwidth += o.ZeroBandwidth
}

// DetectStats reports detection work.
type DetectStats struct {
	// TuplesSelected is the number of tuples passing Equation (5).
	TuplesSelected int
	// VotesCast counts per-(tuple, column) majority votes contributed.
	VotesCast int
	// BitsRead counts individual level bits harvested.
	BitsRead int
	// SkippedCells counts selected cells that yielded nothing (value not
	// in the domain, above the usage metrics, or at a bitless position).
	SkippedCells int
}

// add accumulates another shard's detection counters.
func (s *DetectStats) add(o DetectStats) {
	s.TuplesSelected += o.TuplesSelected
	s.VotesCast += o.VotesCast
	s.BitsRead += o.BitsRead
	s.SkippedCells += o.SkippedCells
}

// DetectResult is the detector's output.
type DetectResult struct {
	// Mark is the recovered mark (positions without votes resolve to 0).
	Mark bitstr.Bits
	// Confidence is the per-position vote margin in [0,1].
	Confidence []float64
	// Stats reports detection work.
	Stats DetectStats
}

// MarkLoss returns the fraction of mark bits the detector got wrong —
// the y-axis of Figure 12.
func MarkLoss(original bitstr.Bits, detected DetectResult) (float64, error) {
	return original.LossFraction(detected.Mark)
}

// setMuBit is the paper's SetµBit(v, b) adjusted for the out-of-range
// corner (DESIGN.md deviation 1): force the least significant bit of v to
// b; if that leaves the index outside [0, size), step one pair back.
// size must be >= 2.
func setMuBit(v int, bit bool, size int) int {
	v = v &^ 1
	if bit {
		v |= 1
	}
	if v >= size {
		v -= 2
	}
	return v
}

// sortColumns returns the map keys in deterministic order.
func sortColumns(columns map[string]ColumnSpec) []string {
	out := make([]string, 0, len(columns))
	for c := range columns {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// boundarySet returns the canonical permutation set for the §5.1 boundary
// case at node nd: nd's siblings (including itself) that are both
// ultimate-frontier members and covered by the maximal frontier, sorted
// by value. Embedder and detector must agree on this set exactly.
func boundarySet(spec ColumnSpec, nd dht.NodeID) []dht.NodeID {
	var out []dht.NodeID
	for _, s := range spec.Tree.SortedSiblings(nd) {
		if !spec.UltiGen.Contains(s) {
			continue
		}
		if _, ok := spec.MaxGen.CoverOf(s); !ok {
			continue
		}
		out = append(out, s)
	}
	return out
}

// indexIn returns the position of nd in set, or -1.
func indexIn(nd dht.NodeID, set []dht.NodeID) int {
	for i, s := range set {
		if s == nd {
			return i
		}
	}
	return -1
}

// FalsePositiveProbability returns the probability that a detector using
// an unrelated key (whose recovered bits are independent fair coins)
// achieves mark loss <= lossThreshold on a markLen-bit mark — the
// significance level of a Match verdict. It is the binomial tail
// P[Bin(markLen, 1/2) >= ceil((1-lossThreshold)·markLen)].
//
// For the defaults (20 bits, threshold 0.15) this is about 2.0e-4; for a
// 32-bit mark it drops below 1e-6.
func FalsePositiveProbability(markLen int, lossThreshold float64) float64 {
	if markLen <= 0 || lossThreshold < 0 || lossThreshold >= 1 {
		return 1
	}
	need := int(math.Ceil(float64(markLen) * (1 - lossThreshold)))
	// sum C(markLen, i) / 2^markLen for i = need..markLen, in log space
	// to stay stable for long marks.
	total := 0.0
	logHalfPow := float64(markLen) * math.Log(0.5)
	for i := need; i <= markLen; i++ {
		logC := logChoose(markLen, i)
		total += math.Exp(logC + logHalfPow)
	}
	if total > 1 {
		total = 1
	}
	return total
}

func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}
