package watermark

import (
	"testing"

	"repro/internal/bitstr"
	"repro/internal/relation"
)

// workerCounts is the determinism matrix required for the concurrent
// pipeline: sequential, a divisor-free shard count, and heavy sharding.
var workerCounts = []int{1, 2, 8}

func tablesIdentical(t *testing.T, a, b *relation.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	nc := a.Schema().NumColumns()
	for i := 0; i < a.NumRows(); i++ {
		for c := 0; c < nc; c++ {
			if a.CellAt(i, c) != b.CellAt(i, c) {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, c, a.CellAt(i, c), b.CellAt(i, c))
			}
		}
	}
}

func TestEmbedParallelDeterminism(t *testing.T) {
	f := newFixture(t, 3000, 5)
	var base *relation.Table
	var baseStats EmbedStats
	for _, w := range workerCounts {
		p := f.params
		p.Workers = w
		marked := f.tbl.Clone()
		stats, err := Embed(marked, "ssn", f.columns, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if base == nil {
			base, baseStats = marked, stats
			if stats.BitsEmbedded == 0 {
				t.Fatal("fixture has no bandwidth; determinism test is vacuous")
			}
			continue
		}
		tablesIdentical(t, base, marked)
		if stats != baseStats {
			t.Errorf("workers=%d: stats %+v differ from sequential %+v", w, stats, baseStats)
		}
	}
}

func TestDetectParallelDeterminism(t *testing.T) {
	f := newFixture(t, 3000, 5)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	var base DetectResult
	for i, w := range workerCounts {
		p := f.params
		p.Workers = w
		res, err := Detect(marked, "ssn", f.columns, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i == 0 {
			base = res
			if loss, err := f.params.Mark.LossFraction(res.Mark); err != nil || loss != 0 {
				t.Fatalf("sequential detection lossy: loss=%v err=%v", loss, err)
			}
			continue
		}
		if res.Mark.String() != base.Mark.String() {
			t.Errorf("workers=%d: mark %s differs from sequential %s", w, res.Mark, base.Mark)
		}
		if res.Stats != base.Stats {
			t.Errorf("workers=%d: stats %+v differ from sequential %+v", w, res.Stats, base.Stats)
		}
		if len(res.Confidence) != len(base.Confidence) {
			t.Fatalf("workers=%d: confidence length %d vs %d", w, len(res.Confidence), len(base.Confidence))
		}
		for pos := range res.Confidence {
			if res.Confidence[pos] != base.Confidence[pos] {
				t.Errorf("workers=%d: confidence[%d] = %v, sequential %v", w, pos, res.Confidence[pos], base.Confidence[pos])
			}
		}
	}
}

// TestDetectParallelDeterminismWeighted exercises the weighted-voting
// accumulation, whose level weights are integer-valued floats — the
// property that makes sharded merging exact.
func TestDetectParallelDeterminismWeighted(t *testing.T) {
	f := newFixture(t, 2000, 3)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "ssn", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	var base bitstr.Bits
	for i, w := range workerCounts {
		p := f.params
		p.Workers = w
		p.WeightedVoting = true
		res, err := Detect(marked, "ssn", f.columns, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i == 0 {
			base = res.Mark
			continue
		}
		if res.Mark.String() != base.String() {
			t.Errorf("workers=%d: weighted mark %s differs from sequential %s", w, res.Mark, base)
		}
	}
}
