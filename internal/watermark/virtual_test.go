package watermark

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/relation"
)

// virtualFixture builds a table where the virtual key has enough
// cardinality to address the replicated mark: zip binned at leaf level
// under state-level metrics (9 covers) and role at leaf level under
// depth-2 metrics (4 covers) — 36 distinct keys. Virtual keys are
// bin-granular (see virtual.go), so the fixture uses η=1 (select every
// key) and duplication 1.
func virtualFixture(t *testing.T, rows int) *fixture {
	t.Helper()
	zipTree := zipLikeTree(t)
	roleTr := roleTree(t)

	var states, zips []string
	for r := 0; r < 3; r++ {
		for s := 0; s < 3; s++ {
			states = append(states, fmt.Sprintf("R%dS%d", r, s))
			for z := 0; z < 3; z++ {
				zips = append(zips, fmt.Sprintf("R%dS%dZ%d", r, s, z))
			}
		}
	}
	zipUlti, err := dht.NewGenSetFromValues(zipTree, zips)
	if err != nil {
		t.Fatal(err)
	}
	zipMax, err := dht.NewGenSetFromValues(zipTree, states)
	if err != nil {
		t.Fatal(err)
	}
	roleUlti, err := dht.NewGenSetFromValues(roleTr, []string{
		"Physician", "Surgeon", "Nurse", "Pharmacist", "Clerk", "Manager"})
	if err != nil {
		t.Fatal(err)
	}
	roleMax, err := dht.NewGenSetFromValues(roleTr, []string{
		"Doctor", "Paramedic", "Clerk", "Manager"})
	if err != nil {
		t.Fatal(err)
	}

	schema := relation.MustSchema(
		relation.Column{Name: "ssn", Kind: relation.Identifying},
		relation.Column{Name: "zip", Kind: relation.QuasiCategorical},
		relation.Column{Name: "role", Kind: relation.QuasiCategorical},
	)
	tbl := relation.NewTable(schema)
	rng := rand.New(rand.NewSource(31))
	roleVals := roleUlti.Values()
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow([]string{
			fmt.Sprintf("enc-%06d", i),
			zips[rng.Intn(len(zips))],
			roleVals[rng.Intn(len(roleVals))],
		}); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{
		tbl: tbl,
		columns: map[string]ColumnSpec{
			"zip":  {Tree: zipTree, MaxGen: zipMax, UltiGen: zipUlti},
			"role": {Tree: roleTr, MaxGen: roleMax, UltiGen: roleUlti},
		},
		params: Params{
			Key:                    crypt.NewWatermarkKeyFromSecret("virtual-owner", 1),
			Mark:                   bitstr.MustFromString("10110010011011010010"),
			Duplication:            1,
			SaltPositionWithColumn: true,
			UseVirtualIdent:        true,
		},
	}
}

func TestVirtualIdentRoundtrip(t *testing.T) {
	f := virtualFixture(t, 4000)
	marked := f.tbl.Clone()
	stats, err := Embed(marked, "", f.columns, f.params) // identCol ignored
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitsEmbedded == 0 {
		t.Fatal("virtual-key embedding carried no bits")
	}
	res, err := Detect(marked, "", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	// Bin-granular keys cover most-but-not-necessarily-all positions;
	// threshold detection must still clear easily.
	if loss > 0.1 {
		t.Fatalf("virtual-key roundtrip loss %v (mark %s vs %s)", loss, res.Mark.String(), f.params.Mark.String())
	}
}

func TestVirtualIdentSurvivesIdentifierTampering(t *testing.T) {
	// The whole point of virtual keys (§5.3 footnote): the attacker
	// rewrites the identifying column entirely; anchoring on the
	// maximal-cover values keeps detection working.
	f := virtualFixture(t, 4000)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	baseline, err := Detect(marked, "", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	// scrub every identifier
	ci, _ := marked.Schema().Index("ssn")
	for i := 0; i < marked.NumRows(); i++ {
		marked.SetCellAt(i, ci, "SCRUBBED")
	}
	res, err := Detect(marked, "", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mark.Equal(baseline.Mark) {
		t.Errorf("identifier scrubbing changed virtual-key detection: %s vs %s",
			res.Mark.String(), baseline.Mark.String())
	}

	// The column-anchored scheme, by contrast, is destroyed by the same
	// tampering (all idents equal -> one selection bucket).
	f2 := newFixture(t, 4000, 8)
	marked2 := f2.tbl.Clone()
	if _, err := Embed(marked2, "ssn", f2.columns, f2.params); err != nil {
		t.Fatal(err)
	}
	ci2, _ := marked2.Schema().Index("ssn")
	for i := 0; i < marked2.NumRows(); i++ {
		marked2.SetCellAt(i, ci2, "SCRUBBED")
	}
	res2, err := Detect(marked2, "ssn", f2.columns, f2.params)
	if err != nil {
		t.Fatal(err)
	}
	loss2, _ := MarkLoss(f2.params.Mark, res2)
	if loss2 < 0.2 {
		t.Errorf("column-anchored scheme survived scrubbing (loss %v)?", loss2)
	}
}

func TestVirtualIdentInvariantUnderEmbedding(t *testing.T) {
	// The virtual key must be identical before and after embedding for
	// every row (maximal covers never change).
	f := virtualFixture(t, 1500)
	cols := sortColumns(f.columns)
	colIdx := map[string]int{}
	for col := range f.columns {
		ci, _ := f.tbl.Schema().Index(col)
		colIdx[col] = ci
	}
	before := make([]string, f.tbl.NumRows())
	for i := range before {
		before[i] = string(virtualIdent(f.tbl, i, cols, colIdx, f.columns))
	}
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		after := string(virtualIdent(marked, i, cols, colIdx, f.columns))
		if after != before[i] {
			t.Fatalf("row %d: virtual key changed by embedding: %q -> %q", i, before[i], after)
		}
	}
}

func TestVirtualIdentPartialAlteration(t *testing.T) {
	f := virtualFixture(t, 6000)
	marked := f.tbl.Clone()
	if _, err := Embed(marked, "", f.columns, f.params); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pools := map[string][]string{
		"zip":  f.columns["zip"].UltiGen.Values(),
		"role": f.columns["role"].UltiGen.Values(),
	}
	if _, err := attack.AlterSubset(marked, pools, 0.25, rng); err != nil {
		t.Fatal(err)
	}
	res, err := Detect(marked, "", f.columns, f.params)
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := MarkLoss(f.params.Mark, res)
	if loss > 0.2 {
		t.Errorf("virtual-key mark loss %v after 25%% alteration", loss)
	}
}

func TestRespecializationWeightedVoting(t *testing.T) {
	// §5.3 weighted voting under a one-level re-specialization: the leaf
	// level is randomized, the state level keeps the mark. Weighted
	// voting must not do worse than unweighted, and must recover the mark.
	f := newFixture(t, 8000, 10)
	zipSpec := f.columns["zip"]
	var leaves []string
	for _, l := range zipSpec.Tree.Leaves() {
		leaves = append(leaves, zipSpec.Tree.Value(l))
	}
	leafUlti, err := dht.NewGenSetFromValues(zipSpec.Tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	spec := ColumnSpec{Tree: zipSpec.Tree, MaxGen: zipSpec.MaxGen, UltiGen: leafUlti}
	cols := map[string]ColumnSpec{"zip": spec}

	// push the fixture's state-level zips down to deterministic leaves
	base := f.tbl.Clone()
	ci, _ := base.Schema().Index("zip")
	for i := 0; i < base.NumRows(); i++ {
		id, err := spec.Tree.ResolveValue(base.CellAt(i, ci))
		if err != nil {
			t.Fatal(err)
		}
		for !spec.UltiGen.Contains(id) {
			id = spec.Tree.Children(id)[i%3]
		}
		base.SetCellAt(i, ci, spec.Tree.Value(id))
	}

	marked := base.Clone()
	if _, err := Embed(marked, "ssn", cols, f.params); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	if _, err := attack.Respecialize(marked, "zip", spec.Tree, spec.MaxGen, spec.UltiGen, 1, rng); err != nil {
		t.Fatal(err)
	}

	plain := f.params
	weighted := f.params
	weighted.WeightedVoting = true
	resPlain, err := Detect(marked, "ssn", cols, plain)
	if err != nil {
		t.Fatal(err)
	}
	resWeighted, err := Detect(marked, "ssn", cols, weighted)
	if err != nil {
		t.Fatal(err)
	}
	lossPlain, _ := MarkLoss(f.params.Mark, resPlain)
	lossWeighted, _ := MarkLoss(f.params.Mark, resWeighted)
	if lossWeighted > lossPlain {
		t.Errorf("weighted voting (%v) worse than unweighted (%v) under re-specialization", lossWeighted, lossPlain)
	}
	if lossWeighted > 0.1 {
		t.Errorf("weighted voting loss %v; the intact state level should recover the mark", lossWeighted)
	}
}
