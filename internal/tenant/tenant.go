// Package tenant is the multi-tenant identity layer of the medshield
// service: one Record per data owner sharing the server, carrying a
// hashed bearer token (the plaintext is shown once at creation and
// never stored), an admin/member role and per-tenant quotas. The store
// is JSON-on-disk with atomic temp+rename writes (the internal/registry
// pattern) and is safe for concurrent use; an empty path is in-memory
// only.
//
// Token handling is deliberately boring: a token is "mst_" + 32 random
// hex characters from crypto/rand, the store keeps only its SHA-256,
// and Authenticate compares the presented token's hash against every
// record with crypto/subtle so lookup time does not depend on which
// (if any) tenant matched.
//
// File format (FormatVersion 1):
//
//	{
//	  "tenants_version": 1,
//	  "tenants": [
//	    {
//	      "id": "hospital-a",
//	      "name": "Hospital A",
//	      "role": "member",
//	      "token_sha256": "9f86d0…",
//	      "quota": {"requests_per_minute": 600, "burst": 20},
//	      "created_at": "2026-08-07T12:00:00Z"
//	    }
//	  ]
//	}
package tenant

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FormatVersion is the tenant store file format version.
const FormatVersion = 1

// DefaultID is the tenant every pre-multi-tenant record is adopted
// into: registry and job files written before tenancy existed load with
// this tenant ID, and a server running without a tenant store (open
// single-tenant mode) serves every request as this tenant.
const DefaultID = "default"

// Role gates what a tenant's token may do beyond its own data: members
// use the pipeline and their own registry/jobs; admins additionally
// read operator surfaces (GET /metrics from a non-loopback address).
type Role string

const (
	RoleAdmin  Role = "admin"
	RoleMember Role = "member"
)

// Valid reports whether r is a known role.
func (r Role) Valid() bool { return r == RoleAdmin || r == RoleMember }

// Quota is a tenant's resource envelope. Zero values mean "unlimited" —
// the default tenant of the open single-tenant mode runs unquotaed.
type Quota struct {
	// RequestsPerMinute is the sustained token-bucket refill rate of
	// the tenant's rate limiter (0 = no rate limit).
	RequestsPerMinute int `json:"requests_per_minute,omitempty"`
	// Burst is the bucket capacity — how many requests may arrive
	// back-to-back before the limiter starts queueing. 0 defaults to
	// max(1, RequestsPerMinute/6) (a ten-second burst window).
	Burst int `json:"burst,omitempty"`
	// MaxRowsPerRequest caps the table size of one pipeline call,
	// counted after decode (and cumulatively across the segments of a
	// streaming body). 0 = unlimited.
	MaxRowsPerRequest int `json:"max_rows_per_request,omitempty"`
	// MaxActiveJobs caps the tenant's queued+running async jobs. 0 =
	// unlimited.
	MaxActiveJobs int `json:"max_active_jobs,omitempty"`
}

// EffectiveBurst resolves the Burst default.
func (q Quota) EffectiveBurst() int {
	if q.Burst > 0 {
		return q.Burst
	}
	return max(1, q.RequestsPerMinute/6)
}

// Record is one tenant.
type Record struct {
	// ID is the stable tenant identifier; it namespaces the recipient
	// registry and the job store.
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Role Role   `json:"role"`
	// TokenSHA256 is the hex SHA-256 of the tenant's bearer token; the
	// plaintext token is never stored.
	TokenSHA256 string `json:"token_sha256"`
	Quota       Quota  `json:"quota,omitzero"`
	// Disabled suspends the tenant: its token authenticates but every
	// request is refused (403) until re-enabled — revocation without
	// losing the record.
	Disabled bool `json:"disabled,omitempty"`
	// CreatedAt / RotatedAt are informational RFC3339 timestamps.
	CreatedAt string `json:"created_at,omitempty"`
	RotatedAt string `json:"rotated_at,omitempty"`
}

// Validate checks the record's internal consistency.
func (r Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("tenant: record has an empty ID")
	}
	if strings.ContainsAny(r.ID, "\x00\n") {
		return fmt.Errorf("tenant: tenant ID %q contains forbidden characters", r.ID)
	}
	if !r.Role.Valid() {
		return fmt.Errorf("tenant: tenant %q has unknown role %q", r.ID, r.Role)
	}
	if len(r.TokenSHA256) != sha256.Size*2 {
		return fmt.Errorf("tenant: tenant %q: token_sha256 must be %d hex characters", r.ID, sha256.Size*2)
	}
	if _, err := hex.DecodeString(r.TokenSHA256); err != nil {
		return fmt.Errorf("tenant: tenant %q: token_sha256 is not hex: %w", r.ID, err)
	}
	return nil
}

// tokenPrefix marks medshield service tokens; purely cosmetic (it makes
// leaked tokens grep-able) — authentication hashes the whole string.
const tokenPrefix = "mst_"

// NewToken generates a fresh bearer token and its stored hash. The
// token is the only copy — callers print it once and keep the hash.
func NewToken() (token, hash string) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a token from
		// a degraded source would be guessable.
		panic(fmt.Sprintf("tenant: reading random token bytes: %v", err))
	}
	token = tokenPrefix + hex.EncodeToString(b[:])
	return token, HashToken(token)
}

// HashToken returns the hex SHA-256 a presented token is compared
// under.
func HashToken(token string) string {
	sum := sha256.Sum256([]byte(token))
	return hex.EncodeToString(sum[:])
}

// ErrNotFound marks lookups of unknown tenant IDs.
var ErrNotFound = errors.New("tenant: no such tenant")

// Store is the concurrent-safe tenant store.
type Store struct {
	mu   sync.RWMutex
	path string // "" = in-memory only
	recs map[string]Record
}

// New returns an empty in-memory store (nothing is ever persisted).
func New() *Store { return &Store{recs: make(map[string]Record)} }

// Open loads the tenant store at path, or returns an empty store bound
// to path when the file does not exist yet. An empty path is New().
func Open(path string) (*Store, error) {
	s := New()
	s.path = path
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var doc document
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("tenant: decoding %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("tenant: trailing data after document in %s", path)
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("tenant: %s has format version %d, want %d", path, doc.Version, FormatVersion)
	}
	for _, r := range doc.Tenants {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("tenant: %s: %w", path, err)
		}
		if _, dup := s.recs[r.ID]; dup {
			return nil, fmt.Errorf("tenant: %s: duplicate tenant %q", path, r.ID)
		}
		s.recs[r.ID] = r
	}
	return s, nil
}

// Path returns the backing file path ("" for an in-memory store).
func (s *Store) Path() string { return s.path }

// Len returns the number of tenants.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Get returns the record for id.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.recs[id]
	return r, ok
}

// List returns every record sorted by tenant ID.
func (s *Store) List() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Put validates and inserts or replaces a record, persisting the store.
func (s *Store) Put(rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.recs[rec.ID]
	s.recs[rec.ID] = rec
	if err := s.persistLocked(); err != nil {
		// Keep memory and disk in agreement on failure.
		if had {
			s.recs[rec.ID] = prev
		} else {
			delete(s.recs, rec.ID)
		}
		return err
	}
	return nil
}

// Delete removes a record, persisting the store. It reports whether the
// record existed.
func (s *Store) Delete(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.recs[id]
	if !had {
		return false, nil
	}
	delete(s.recs, id)
	if err := s.persistLocked(); err != nil {
		s.recs[id] = prev
		return false, err
	}
	return true, nil
}

// Rotate replaces the tenant's token with a fresh one, returning the
// new plaintext (shown once). The old token stops authenticating the
// moment Rotate persists.
func (s *Store) Rotate(id, rotatedAt string) (token string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.recs[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	rec := prev
	token, hash := NewToken()
	rec.TokenSHA256 = hash
	rec.RotatedAt = rotatedAt
	s.recs[id] = rec
	if err := s.persistLocked(); err != nil {
		s.recs[id] = prev
		return "", err
	}
	return token, nil
}

// Authenticate resolves a presented bearer token to its tenant. The
// token's SHA-256 is compared against every stored hash with
// crypto/subtle (no early exit), so the lookup leaks neither which
// tenant matched nor how close a guess came. Disabled tenants still
// resolve — the caller refuses them with a distinct "forbidden" rather
// than the "unauthorized" an unknown token gets, so a suspended
// customer sees suspension, not a credential bug.
func (s *Store) Authenticate(token string) (Record, bool) {
	sum, err := hex.DecodeString(HashToken(token))
	if err != nil { // unreachable: HashToken always yields hex
		return Record{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var (
		match Record
		found int
	)
	for _, r := range s.recs {
		raw, err := hex.DecodeString(r.TokenSHA256)
		if err != nil {
			continue
		}
		if subtle.ConstantTimeCompare(sum, raw) == 1 {
			// Keep scanning: the loop must touch every record regardless
			// of where the match sits.
			match = r
			found = 1
		}
	}
	return match, found == 1
}

type document struct {
	Version int      `json:"tenants_version"`
	Tenants []Record `json:"tenants"`
}

// persistLocked writes the store atomically: temp file in the target
// directory, sync, rename over path. Callers hold the write lock.
func (s *Store) persistLocked() (err error) {
	if s.path == "" {
		return nil
	}
	doc := document{Version: FormatVersion, Tenants: make([]Record, 0, len(s.recs))}
	for _, r := range s.recs {
		doc.Tenants = append(doc.Tenants, r)
	}
	sort.Slice(doc.Tenants, func(i, j int) bool { return doc.Tenants[i].ID < doc.Tenants[j].ID })
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	dir, base := filepath.Dir(s.path), filepath.Base(s.path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = f.Chmod(0o600); err != nil {
		return err
	}
	if _, err = f.Write(append(data, '\n')); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}
