package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewTokenShape(t *testing.T) {
	token, hash := NewToken()
	if !strings.HasPrefix(token, "mst_") {
		t.Fatalf("token %q lacks the mst_ prefix", token)
	}
	if len(token) != len("mst_")+32 {
		t.Fatalf("token %q has length %d, want %d", token, len(token), len("mst_")+32)
	}
	if hash != HashToken(token) {
		t.Fatalf("NewToken hash %q != HashToken(token) %q", hash, HashToken(token))
	}
	token2, _ := NewToken()
	if token == token2 {
		t.Fatal("two NewToken calls returned the same token")
	}
}

func TestRecordValidate(t *testing.T) {
	_, hash := NewToken()
	good := Record{ID: "a", Role: RoleMember, TokenSHA256: hash}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []Record{
		{Role: RoleMember, TokenSHA256: hash},                     // empty ID
		{ID: "a\x00b", Role: RoleMember, TokenSHA256: hash},       // NUL in ID
		{ID: "a", Role: "superuser", TokenSHA256: hash},           // bad role
		{ID: "a", Role: RoleMember, TokenSHA256: "abc"},           // short hash
		{ID: "a", Role: RoleMember, TokenSHA256: hash[:63] + "z"}, // non-hex
	}
	for i, rec := range cases {
		if err := rec.Validate(); err == nil {
			t.Errorf("case %d: invalid record %+v accepted", i, rec)
		}
	}
}

func TestAuthenticate(t *testing.T) {
	s := New()
	tokA, hashA := NewToken()
	tokB, hashB := NewToken()
	if err := s.Put(Record{ID: "a", Role: RoleAdmin, TokenSHA256: hashA}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{ID: "b", Role: RoleMember, TokenSHA256: hashB, Disabled: true}); err != nil {
		t.Fatal(err)
	}

	rec, ok := s.Authenticate(tokA)
	if !ok || rec.ID != "a" || rec.Role != RoleAdmin {
		t.Fatalf("Authenticate(tokA) = %+v, %v; want tenant a", rec, ok)
	}
	// Disabled tenants still resolve; the caller decides 403 vs 401.
	rec, ok = s.Authenticate(tokB)
	if !ok || rec.ID != "b" || !rec.Disabled {
		t.Fatalf("Authenticate(tokB) = %+v, %v; want disabled tenant b", rec, ok)
	}
	if _, ok := s.Authenticate("mst_deadbeefdeadbeefdeadbeefdeadbeef"); ok {
		t.Fatal("unknown token authenticated")
	}
	if _, ok := s.Authenticate(""); ok {
		t.Fatal("empty token authenticated")
	}
}

func TestStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tok, hash := NewToken()
	rec := Record{
		ID: "clinic", Name: "Clinic", Role: RoleMember, TokenSHA256: hash,
		Quota:     Quota{RequestsPerMinute: 120, MaxRowsPerRequest: 50000, MaxActiveJobs: 4},
		CreatedAt: "2026-08-07T00:00:00Z",
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}

	// Reopen: the record round-trips and the token still authenticates.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("clinic")
	if !ok || got != rec {
		t.Fatalf("reloaded record = %+v, %v; want %+v", got, ok, rec)
	}
	if r, ok := s2.Authenticate(tok); !ok || r.ID != "clinic" {
		t.Fatalf("token does not authenticate after reload: %+v, %v", r, ok)
	}

	// The store file must never hold the plaintext token, only its hash.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), tok) {
		t.Fatal("plaintext token written to the store file")
	}
	if !strings.Contains(string(data), hash) {
		t.Fatal("token hash missing from the store file")
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("store file mode = %v, %v; want 0600", fi.Mode().Perm(), err)
	}
}

func TestRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	oldTok, oldHash := NewToken()
	if err := s.Put(Record{ID: "a", Role: RoleMember, TokenSHA256: oldHash}); err != nil {
		t.Fatal(err)
	}
	newTok, err := s.Rotate("a", "2026-08-07T01:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	if newTok == oldTok {
		t.Fatal("Rotate returned the old token")
	}
	if _, ok := s.Authenticate(oldTok); ok {
		t.Fatal("old token still authenticates after rotation")
	}
	if r, ok := s.Authenticate(newTok); !ok || r.ID != "a" || r.RotatedAt != "2026-08-07T01:00:00Z" {
		t.Fatalf("new token does not authenticate: %+v, %v", r, ok)
	}
	if _, err := s.Rotate("missing", ""); err == nil {
		t.Fatal("Rotate of an unknown tenant succeeded")
	}
}

func TestDelete(t *testing.T) {
	s := New()
	tok, hash := NewToken()
	if err := s.Put(Record{ID: "a", Role: RoleMember, TokenSHA256: hash}); err != nil {
		t.Fatal(err)
	}
	if had, err := s.Delete("a"); err != nil || !had {
		t.Fatalf("Delete = %v, %v; want true, nil", had, err)
	}
	if _, ok := s.Authenticate(tok); ok {
		t.Fatal("deleted tenant's token still authenticates")
	}
	if had, err := s.Delete("a"); err != nil || had {
		t.Fatalf("second Delete = %v, %v; want false, nil", had, err)
	}
}

func TestOpenRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	_, hash := NewToken()
	cases := map[string]string{
		"version": `{"tenants_version": 99, "tenants": []}`,
		"dup": `{"tenants_version": 1, "tenants": [` +
			`{"id":"a","role":"member","token_sha256":"` + hash + `"},` +
			`{"id":"a","role":"member","token_sha256":"` + hash + `"}]}`,
		"badrole":  `{"tenants_version": 1, "tenants": [{"id":"a","role":"root","token_sha256":"` + hash + `"}]}`,
		"unknown":  `{"tenants_version": 1, "tenants": [], "extra": true}`,
		"trailing": `{"tenants_version": 1, "tenants": []}{}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Errorf("%s: Open accepted a bad file", name)
		}
	}
}

func TestEffectiveBurst(t *testing.T) {
	cases := []struct {
		q    Quota
		want int
	}{
		{Quota{}, 1},
		{Quota{RequestsPerMinute: 5}, 1},
		{Quota{RequestsPerMinute: 600}, 100},
		{Quota{RequestsPerMinute: 600, Burst: 7}, 7},
	}
	for _, c := range cases {
		if got := c.q.EffectiveBurst(); got != c.want {
			t.Errorf("EffectiveBurst(%+v) = %d, want %d", c.q, got, c.want)
		}
	}
}
