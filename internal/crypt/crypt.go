// Package crypt provides the cryptographic substrate of the framework:
//
//   - H, the keyed hash the paper uses for secret tuple selection
//     (Equation 5: H(ti.ident, k1) mod η = 0) and for pseudorandom index
//     derivation inside Permutate. The paper suggests MD5 or SHA1; we use
//     HMAC-SHA256, which keeps the required keyed-PRF contract with modern
//     primitives.
//
//   - E, the one-to-one encryption the binning algorithm applies to
//     identifying columns (Figure 8: ti.ident.val ← E(ti.ident.val)).
//     The paper suggests DES or AES; we implement deterministic
//     authenticated encryption: AES-256-CTR under a synthetic IV derived
//     from the plaintext (SIV-style), so equal plaintexts map to equal
//     ciphertexts (one-to-one replacement, required so that the encrypted
//     identifier is a stable embedding anchor) and tampering is detected
//     on decryption. Determinism over unique identifiers (SSNs) leaks
//     nothing beyond equality, and identifiers are unique by definition.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"sync"
)

// Errors returned by Decrypt.
var (
	ErrCiphertextFormat = errors.New("crypt: malformed ciphertext")
	ErrAuthentication   = errors.New("crypt: authentication failed")
)

// PRF is the keyed hash H of the paper. It is safe for concurrent use.
type PRF struct {
	key []byte
	// macs pools keyed HMAC states: hmac.New re-hashes the key into the
	// inner/outer pads on every call (~2 extra compressions plus several
	// allocations), which dominates hot loops that evaluate H once per
	// tuple (watermark selection, position addressing). A pooled state is
	// Reset between uses — crypto/hmac restores the precomputed pads from
	// their marshaled form, so the output is bit-identical to a fresh
	// HMAC while skipping the key schedule.
	macs sync.Pool
}

// NewPRF returns a PRF keyed with key. The key may be any length; it is
// used as an HMAC-SHA256 key.
func NewPRF(key []byte) *PRF {
	k := make([]byte, len(key))
	copy(k, key)
	p := &PRF{key: k}
	p.macs.New = func() any { return hmac.New(sha256.New, p.key) }
	return p
}

// Sum returns HMAC-SHA256(key, parts[0] || 0x00 || parts[1] || 0x00 ...).
// Parts are length-prefixed to avoid ambiguity between concatenations.
func (p *PRF) Sum(parts ...[]byte) []byte {
	mac := p.macs.Get().(hash.Hash)
	var lenBuf [8]byte
	for _, part := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(part)))
		mac.Write(lenBuf[:])
		mac.Write(part)
	}
	out := mac.Sum(nil)
	mac.Reset()
	p.macs.Put(mac)
	return out
}

// Uint64 interprets the first 8 bytes of Sum(parts...) as a big-endian
// unsigned integer. This is the H(·) value used modulo η or |S| in the
// watermarking algorithms.
func (p *PRF) Uint64(parts ...[]byte) uint64 {
	return binary.BigEndian.Uint64(p.Sum(parts...))
}

// Mod returns Uint64(parts...) mod m. m must be positive.
func (p *PRF) Mod(m uint64, parts ...[]byte) uint64 {
	if m == 0 {
		panic("crypt: modulus must be positive")
	}
	return p.Uint64(parts...) % m
}

// Selects implements the paper's Equation (5): it reports whether the
// tuple identified by ident is selected for embedding under parameter η.
// η == 1 selects every tuple; larger η selects roughly a 1/η fraction.
func (p *PRF) Selects(ident []byte, eta uint64) bool {
	if eta == 0 {
		return false
	}
	return p.Mod(eta, ident) == 0
}

// Cipher is the deterministic authenticated encryption E() applied to
// identifying columns. It is safe for concurrent use.
type Cipher struct {
	block  cipher.Block
	ivPRF  *PRF
	tagPRF *PRF
}

// NewCipher derives a Cipher from a master key of any length. Independent
// subkeys for encryption, IV synthesis and authentication are derived by
// domain-separated HMAC.
func NewCipher(masterKey []byte) (*Cipher, error) {
	root := NewPRF(masterKey)
	encKey := root.Sum([]byte("medshield/enc/v1"))
	block, err := aes.NewCipher(encKey) // 32 bytes -> AES-256
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	return &Cipher{
		block:  block,
		ivPRF:  NewPRF(root.Sum([]byte("medshield/iv/v1"))),
		tagPRF: NewPRF(root.Sum([]byte("medshield/tag/v1"))),
	}, nil
}

const tagLen = 16

// EncryptString encrypts a cell value, returning a compact base64 token.
// Equal plaintexts yield equal tokens (deterministic one-to-one
// replacement, as the binning algorithm requires).
func (c *Cipher) EncryptString(plaintext string) string {
	return base64.RawURLEncoding.EncodeToString(c.Encrypt([]byte(plaintext)))
}

// DecryptString reverses EncryptString.
func (c *Cipher) DecryptString(token string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrCiphertextFormat, err)
	}
	pt, err := c.Decrypt(raw)
	if err != nil {
		return "", err
	}
	return string(pt), nil
}

// Encrypt produces iv || ctr(plaintext) || tag. The IV is a PRF of the
// plaintext (synthetic IV), making encryption deterministic; the tag
// authenticates iv||ciphertext.
func (c *Cipher) Encrypt(plaintext []byte) []byte {
	iv := c.ivPRF.Sum(plaintext)[:aes.BlockSize]
	out := make([]byte, aes.BlockSize+len(plaintext)+tagLen)
	copy(out, iv)
	cipher.NewCTR(c.block, iv).XORKeyStream(out[aes.BlockSize:aes.BlockSize+len(plaintext)], plaintext)
	tag := c.tagPRF.Sum(out[:aes.BlockSize+len(plaintext)])[:tagLen]
	copy(out[aes.BlockSize+len(plaintext):], tag)
	return out
}

// Decrypt verifies and reverses Encrypt.
func (c *Cipher) Decrypt(raw []byte) ([]byte, error) {
	if len(raw) < aes.BlockSize+tagLen {
		return nil, ErrCiphertextFormat
	}
	body := raw[:len(raw)-tagLen]
	tag := raw[len(raw)-tagLen:]
	want := c.tagPRF.Sum(body)[:tagLen]
	if subtle.ConstantTimeCompare(tag, want) != 1 {
		return nil, ErrAuthentication
	}
	iv := body[:aes.BlockSize]
	ct := body[aes.BlockSize:]
	pt := make([]byte, len(ct))
	cipher.NewCTR(c.block, iv).XORKeyStream(pt, ct)
	// SIV check: the IV must match the plaintext-derived IV, otherwise the
	// ciphertext was spliced from another message.
	wantIV := c.ivPRF.Sum(pt)[:aes.BlockSize]
	if subtle.ConstantTimeCompare(iv, wantIV) != 1 {
		return nil, ErrAuthentication
	}
	return pt, nil
}

// WatermarkKey bundles the secret elements of the watermarking key
// (Table 1 of the paper: k1, k2, η) together with the master encryption
// key used by the binning agent for identifying columns. "Without having
// possession of the secret watermarking key, no one can erase the inserted
// mark from the data."
type WatermarkKey struct {
	// K1 drives tuple selection (Equation 5).
	K1 []byte
	// K2 drives index derivation and mark-position addressing inside
	// Permutate. The paper stresses that distinct keys remove correlation
	// between the two calculations.
	K2 []byte
	// Eta is the selection parameter η: roughly one tuple in Eta carries
	// mark bits. Smaller η = more bandwidth = more resilience and more
	// distortion (the trade-off of Figure 12).
	Eta uint64
	// Enc is the master key for the identifying-column cipher E().
	Enc []byte
}

// NewWatermarkKeyFromSecret derives a full, independent key set from one
// secret passphrase. Deterministic: the same secret always yields the same
// keys, so a data owner can re-derive them for detection.
func NewWatermarkKeyFromSecret(secret string, eta uint64) WatermarkKey {
	root := NewPRF([]byte(secret))
	return WatermarkKey{
		K1:  root.Sum([]byte("k1")),
		K2:  root.Sum([]byte("k2")),
		Eta: eta,
		Enc: root.Sum([]byte("enc")),
	}
}

// RecipientWatermarkKey derives the per-recipient key set used when one
// source table is fingerprinted for several recipients. K1 (tuple
// selection), Eta and Enc (identifier encryption) are shared with the
// owner's NewWatermarkKeyFromSecret key — all copies select the same
// tuples and encrypt identifiers identically, which lets leak traceback
// pay the selection scan once across every candidate and keeps the §5.4
// decryption story owner-wide — while K2 (position addressing) is salted
// with the recipient ID, so each copy carries its bits at
// recipient-specific wmd positions. Deterministic: the owner re-derives
// any recipient's key from the master secret and the recipient ID.
func RecipientWatermarkKey(secret, recipientID string, eta uint64) WatermarkKey {
	root := NewPRF([]byte(secret))
	return WatermarkKey{
		K1:  root.Sum([]byte("k1")),
		K2:  root.Sum([]byte("k2"), []byte(recipientID)),
		Eta: eta,
		Enc: root.Sum([]byte("enc")),
	}
}

// Fingerprint returns a short non-secret digest of the key material
// (K1, K2 and Enc; Eta travels in clear next to it). A recipient
// registry stores it so a later traceback can verify that the key it
// derived or was handed matches the key the copy was actually marked
// with — without the registry ever holding key bytes.
func (k WatermarkKey) Fingerprint() string {
	fp := NewPRF([]byte("medshield/keyfp/v1"))
	var eta [8]byte
	binary.BigEndian.PutUint64(eta[:], k.Eta)
	return hex.EncodeToString(fp.Sum(k.K1, k.K2, k.Enc, eta[:])[:16])
}

// Validate reports whether the key material is usable.
func (k WatermarkKey) Validate() error {
	if len(k.K1) == 0 {
		return errors.New("crypt: empty K1")
	}
	if len(k.K2) == 0 {
		return errors.New("crypt: empty K2")
	}
	if string(k.K1) == string(k.K2) {
		return errors.New("crypt: K1 and K2 must differ (the paper requires uncorrelated calculations)")
	}
	if k.Eta == 0 {
		return errors.New("crypt: Eta must be positive")
	}
	return nil
}
