package crypt

import (
	"bytes"
	"testing"
)

func TestRecipientWatermarkKeyDerivation(t *testing.T) {
	owner := NewWatermarkKeyFromSecret("secret", 75)
	a := RecipientWatermarkKey("secret", "hospital-a", 75)
	b := RecipientWatermarkKey("secret", "hospital-b", 75)

	// K1 and Enc are shared with the owner key (shared selection scan,
	// owner-wide decryption); K2 is recipient-specific.
	if !bytes.Equal(a.K1, owner.K1) || !bytes.Equal(b.K1, owner.K1) {
		t.Error("recipient keys must share the owner's K1")
	}
	if !bytes.Equal(a.Enc, owner.Enc) || !bytes.Equal(b.Enc, owner.Enc) {
		t.Error("recipient keys must share the owner's Enc")
	}
	if bytes.Equal(a.K2, b.K2) || bytes.Equal(a.K2, owner.K2) {
		t.Error("recipient K2 must be distinct per recipient and from the owner")
	}

	// Deterministic re-derivation.
	a2 := RecipientWatermarkKey("secret", "hospital-a", 75)
	if !bytes.Equal(a.K2, a2.K2) || a.Eta != a2.Eta {
		t.Error("recipient key derivation is not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("derived key invalid: %v", err)
	}
}

func TestWatermarkKeyFingerprint(t *testing.T) {
	a := RecipientWatermarkKey("secret", "hospital-a", 75)
	b := RecipientWatermarkKey("secret", "hospital-b", 75)
	if a.Fingerprint() == "" || len(a.Fingerprint()) != 32 {
		t.Errorf("fingerprint %q: want 32 hex chars", a.Fingerprint())
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint is not deterministic")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("distinct keys share a fingerprint")
	}
	etaVariant := a
	etaVariant.Eta = 76
	if a.Fingerprint() == etaVariant.Fingerprint() {
		t.Error("eta change must change the fingerprint")
	}
}

// TestPRFPooledStateIdentical guards the HMAC-state pooling: repeated
// and interleaved Sum calls must stay bit-identical to a fresh HMAC.
func TestPRFPooledStateIdentical(t *testing.T) {
	p := NewPRF([]byte("pool-key"))
	first := p.Sum([]byte("a"), []byte("bb"))
	for i := 0; i < 100; i++ {
		p.Sum([]byte("interleaved"), []byte{byte(i)})
		if got := p.Sum([]byte("a"), []byte("bb")); !bytes.Equal(got, first) {
			t.Fatalf("iteration %d: pooled Sum diverged", i)
		}
	}
}
