package crypt

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPRFDeterministic(t *testing.T) {
	p := NewPRF([]byte("key"))
	a := p.Sum([]byte("hello"))
	b := p.Sum([]byte("hello"))
	if !bytes.Equal(a, b) {
		t.Fatal("PRF not deterministic")
	}
	if len(a) != 32 {
		t.Fatalf("sum length = %d, want 32", len(a))
	}
}

func TestPRFKeySeparation(t *testing.T) {
	a := NewPRF([]byte("k1")).Sum([]byte("x"))
	b := NewPRF([]byte("k2")).Sum([]byte("x"))
	if bytes.Equal(a, b) {
		t.Fatal("different keys produced equal digests")
	}
}

func TestPRFPartsAreUnambiguous(t *testing.T) {
	p := NewPRF([]byte("key"))
	// ("ab","c") must differ from ("a","bc") — length prefixing.
	if bytes.Equal(p.Sum([]byte("ab"), []byte("c")), p.Sum([]byte("a"), []byte("bc"))) {
		t.Fatal("part boundaries are ambiguous")
	}
	// ("x") must differ from ("x","").
	if bytes.Equal(p.Sum([]byte("x")), p.Sum([]byte("x"), nil)) {
		t.Fatal("empty trailing part is ambiguous")
	}
}

func TestPRFModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPRF([]byte("k")).Mod(0, []byte("x"))
}

func TestSelectsFraction(t *testing.T) {
	p := NewPRF([]byte("selection-key"))
	const n = 20000
	const eta = 50
	hits := 0
	for i := 0; i < n; i++ {
		ident := []byte{byte(i), byte(i >> 8), byte(i >> 16)}
		if p.Selects(ident, eta) {
			hits++
		}
	}
	want := float64(n) / float64(eta)
	got := float64(hits)
	// within 25% relative error — binomial std-dev is ~20 here
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("selection rate %v, want about %v", got, want)
	}
}

func TestSelectsEtaEdge(t *testing.T) {
	p := NewPRF([]byte("k"))
	if p.Selects([]byte("x"), 0) {
		t.Error("eta=0 must select nothing")
	}
	if !p.Selects([]byte("x"), 1) {
		t.Error("eta=1 must select everything")
	}
}

func TestCipherRoundtrip(t *testing.T) {
	c, err := NewCipher([]byte("master"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range []string{"", "a", "123-45-6789", "a longer identifying value with spaces"} {
		tok := c.EncryptString(pt)
		back, err := c.DecryptString(tok)
		if err != nil {
			t.Fatalf("decrypt %q: %v", pt, err)
		}
		if back != pt {
			t.Fatalf("roundtrip %q -> %q", pt, back)
		}
	}
}

func TestCipherDeterministicOneToOne(t *testing.T) {
	c, err := NewCipher([]byte("master"))
	if err != nil {
		t.Fatal(err)
	}
	a := c.EncryptString("ssn-001")
	b := c.EncryptString("ssn-001")
	d := c.EncryptString("ssn-002")
	if a != b {
		t.Error("encryption not deterministic")
	}
	if a == d {
		t.Error("distinct plaintexts collided")
	}
}

func TestCipherKeySeparation(t *testing.T) {
	c1, _ := NewCipher([]byte("master-1"))
	c2, _ := NewCipher([]byte("master-2"))
	tok := c1.EncryptString("ssn-001")
	if _, err := c2.DecryptString(tok); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("wrong-key decrypt error = %v, want ErrAuthentication", err)
	}
}

func TestCipherTamperDetection(t *testing.T) {
	c, _ := NewCipher([]byte("master"))
	raw := c.Encrypt([]byte("patient-7"))
	for i := 0; i < len(raw); i++ {
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[i] ^= 0x01
		if _, err := c.Decrypt(mut); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestCipherShortCiphertext(t *testing.T) {
	c, _ := NewCipher([]byte("master"))
	if _, err := c.Decrypt([]byte("short")); !errors.Is(err, ErrCiphertextFormat) {
		t.Fatalf("error = %v, want ErrCiphertextFormat", err)
	}
	if _, err := c.DecryptString("!!! not base64 !!!"); !errors.Is(err, ErrCiphertextFormat) {
		t.Fatalf("error = %v, want ErrCiphertextFormat", err)
	}
}

func TestWatermarkKeyDerivation(t *testing.T) {
	k := NewWatermarkKeyFromSecret("hospital-secret", 75)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	k2 := NewWatermarkKeyFromSecret("hospital-secret", 75)
	if !bytes.Equal(k.K1, k2.K1) || !bytes.Equal(k.K2, k2.K2) || !bytes.Equal(k.Enc, k2.Enc) {
		t.Error("derivation not deterministic")
	}
	other := NewWatermarkKeyFromSecret("different", 75)
	if bytes.Equal(k.K1, other.K1) {
		t.Error("different secrets collided")
	}
	if bytes.Equal(k.K1, k.K2) {
		t.Error("K1 must differ from K2")
	}
}

func TestWatermarkKeyValidate(t *testing.T) {
	cases := []struct {
		name string
		k    WatermarkKey
	}{
		{"empty K1", WatermarkKey{K2: []byte("b"), Eta: 1}},
		{"empty K2", WatermarkKey{K1: []byte("a"), Eta: 1}},
		{"equal keys", WatermarkKey{K1: []byte("a"), K2: []byte("a"), Eta: 1}},
		{"zero eta", WatermarkKey{K1: []byte("a"), K2: []byte("b"), Eta: 0}},
	}
	for _, tc := range cases {
		if err := tc.k.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// Property: Decrypt(Encrypt(x)) == x for arbitrary byte strings.
func TestQuickCipherRoundtrip(t *testing.T) {
	c, err := NewCipher([]byte("quick-master"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(pt []byte) bool {
		back, err := c.Decrypt(c.Encrypt(pt))
		return err == nil && bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: PRF.Mod output is always < m.
func TestQuickModRange(t *testing.T) {
	p := NewPRF([]byte("k"))
	f := func(data []byte, mRaw uint16) bool {
		m := uint64(mRaw)%1000 + 1
		return p.Mod(m, data) < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
