package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	r.Write(&sb)
	return sb.String()
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec(r, "requests_total", "Requests.", "route")
	v.With("/v1/protect").Add(3)
	v.With("/v1/detect").Inc()
	out := render(r)
	for _, want := range []string{
		"# HELP requests_total Requests.",
		"# TYPE requests_total counter",
		`requests_total{route="/v1/detect"} 1`,
		`requests_total{route="/v1/protect"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiCounterVec(t *testing.T) {
	r := NewRegistry()
	v := NewMultiCounterVec(r, "http_requests_total", "HTTP requests.", "route", "method", "code")
	v.With("/v1/protect", "POST", "200").Inc()
	v.With("/v1/protect", "POST", "200").Inc()
	v.With("/v1/protect", "POST", "429").Inc()
	out := render(r)
	if !strings.Contains(out, `http_requests_total{route="/v1/protect",method="POST",code="200"} 2`) {
		t.Errorf("missing 200 sample:\n%s", out)
	}
	if !strings.Contains(out, `http_requests_total{route="/v1/protect",method="POST",code="429"} 1`) {
		t.Errorf("missing 429 sample:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := NewGauge(r, "inflight", "In-flight requests.")
	g.Inc()
	g.Inc()
	g.Dec()
	out := render(r)
	if !strings.Contains(out, "# TYPE inflight gauge") || !strings.Contains(out, "inflight 1\n") {
		t.Errorf("bad gauge output:\n%s", out)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	NewGaugeFunc(r, "jobs", "Jobs by state.", "state", func() map[string]int64 {
		return map[string]int64{"queued": 2, "running": 1}
	})
	out := render(r)
	if !strings.Contains(out, `jobs{state="queued"} 2`) || !strings.Contains(out, `jobs{state="running"} 1`) {
		t.Errorf("bad gauge-func output:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramVec(r, "latency_seconds", "Latency.", "route", []float64{0.1, 1})
	h.Observe("/v1/protect", 0.05)
	h.Observe("/v1/protect", 0.5)
	h.Observe("/v1/protect", 5)
	out := render(r)
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{route="/v1/protect",le="0.1"} 1`,
		`latency_seconds_bucket{route="/v1/protect",le="1"} 2`,
		`latency_seconds_bucket{route="/v1/protect",le="+Inf"} 3`,
		`latency_seconds_count{route="/v1/protect"} 3`,
		`latency_seconds_sum{route="/v1/protect"} 5.55`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBoundaryLandsInBucket(t *testing.T) {
	// Prometheus buckets are le (<=): a sample exactly on a bound
	// belongs to that bucket.
	r := NewRegistry()
	h := NewHistogramVec(r, "h", "h.", "l", []float64{1})
	h.Observe("x", 1)
	out := render(r)
	if !strings.Contains(out, `h_bucket{l="x",le="1"} 1`) {
		t.Errorf("sample on the bound not counted le-style:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec(r, "c", "c.", "l")
	v.With(`quo"te\slash` + "\n").Inc()
	out := render(r)
	if !strings.Contains(out, `c{l="quo\"te\\slash\n"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	NewCounterVec(r, "dup", "d.", "l")
	defer func() {
		if recover() == nil {
			t.Error("duplicate family did not panic")
		}
	}()
	NewCounterVec(r, "dup", "d.", "l")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := NewMultiCounterVec(r, "c", "c.", "a", "b")
	h := NewHistogramVec(r, "h", "h.", "l", DurationBuckets)
	g := NewGauge(r, "g", "g.")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.With("x", "y").Inc()
				h.Observe("k", float64(j)/100)
				g.Inc()
				render(r)
			}
		}()
	}
	wg.Wait()
	out := render(r)
	if !strings.Contains(out, `c{a="x",b="y"} 4000`) {
		t.Errorf("lost counter increments:\n%s", out)
	}
	if !strings.Contains(out, `h_count{l="k"} 4000`) {
		t.Errorf("lost histogram samples:\n%s", out)
	}
}
