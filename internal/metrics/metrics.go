// Package metrics is a minimal, stdlib-only metrics registry exposing
// the Prometheus text format (version 0.0.4). It implements just the
// three instrument kinds the service plane needs — counters, gauges and
// cumulative histograms, each optionally split by one label — rather
// than a general client library: no dependency budget exists for one,
// and the text format is simple enough to emit by hand.
//
// All instruments are safe for concurrent use. Label values are
// expected to come from a bounded set (route patterns, status codes,
// job states) — callers must never feed user-controlled strings as
// label values or the series count grows without bound.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named metric families and renders them in
// name order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []family
	byName   map[string]family
}

type family interface {
	name() string
	write(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]family)}
}

func (r *Registry) register(f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name()]; dup {
		panic("metrics: duplicate family " + f.name())
	}
	r.byName[f.name()] = f
	r.families = append(r.families, f)
	sort.Slice(r.families, func(i, j int) bool { return r.families[i].name() < r.families[j].name() })
}

// Write renders every family as Prometheus text exposition format.
func (r *Registry) Write(w io.Writer) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv(f)
}

func strconv(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// ---- counters ----------------------------------------------------------

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64 // value ×1 (integer counts only)
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter family split by one label.
type CounterVec struct {
	fname, help, label string
	mu                 sync.Mutex
	children           map[string]*Counter
}

// NewCounterVec registers a labeled counter family.
func NewCounterVec(r *Registry, name, help, label string) *CounterVec {
	v := &CounterVec{fname: name, help: help, label: label, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the child counter for the label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[value]
	if c == nil {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) name() string { return v.fname }

func (v *CounterVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = v.children[k].Value()
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.fname, v.help, v.fname)
	for i, k := range keys {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.fname, v.label, escapeLabel(k), vals[i])
	}
}

// MultiCounterVec is a counter family split by a fixed tuple of labels
// (e.g. route+method+code). The tuple arity is set at construction and
// With panics on mismatch — a programming error, not a runtime state.
type MultiCounterVec struct {
	fname, help string
	labels      []string
	mu          sync.Mutex
	children    map[string]*Counter // key: label values joined by \x00
}

// NewMultiCounterVec registers a counter family with multiple labels.
func NewMultiCounterVec(r *Registry, name, help string, labels ...string) *MultiCounterVec {
	v := &MultiCounterVec{fname: name, help: help, labels: labels, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the child for the label-value tuple.
func (v *MultiCounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", v.fname, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[key]
	if c == nil {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

func (v *MultiCounterVec) name() string { return v.fname }

func (v *MultiCounterVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = v.children[k].Value()
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.fname, v.help, v.fname)
	for i, key := range keys {
		parts := strings.Split(key, "\x00")
		pairs := make([]string, len(parts))
		for j, p := range parts {
			pairs[j] = fmt.Sprintf("%s=\"%s\"", v.labels[j], escapeLabel(p))
		}
		fmt.Fprintf(w, "%s{%s} %d\n", v.fname, strings.Join(pairs, ","), vals[i])
	}
}

// ---- gauges ------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1; Dec subtracts 1; Set replaces the value.
func (g *Gauge) Inc()         { g.v.Add(1) }
func (g *Gauge) Dec()         { g.v.Add(-1) }
func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }

// NewGauge registers an unlabeled gauge.
func NewGauge(r *Registry, name, help string) *Gauge {
	g := &Gauge{}
	r.register(&gaugeFamily{fname: name, help: help, g: g})
	return g
}

type gaugeFamily struct {
	fname, help string
	g           *Gauge
}

func (f *gaugeFamily) name() string { return f.fname }

func (f *gaugeFamily) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", f.fname, f.help, f.fname, f.fname, f.g.Value())
}

// GaugeFunc is a gauge family whose samples are computed at scrape time
// — used for job-state counts, which live in the job manager, not here.
type GaugeFunc struct {
	fname, help, label string
	fn                 func() map[string]int64
}

// NewGaugeFunc registers a labeled gauge computed by fn at scrape time.
// fn must be safe for concurrent use.
func NewGaugeFunc(r *Registry, name, help, label string, fn func() map[string]int64) {
	r.register(&GaugeFunc{fname: name, help: help, label: label, fn: fn})
}

func (f *GaugeFunc) name() string { return f.fname }

func (f *GaugeFunc) write(w io.Writer) {
	samples := f.fn()
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", f.fname, f.help, f.fname)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", f.fname, f.label, escapeLabel(k), samples[k])
	}
}

// ---- histograms --------------------------------------------------------

// DurationBuckets is the default latency bucket ladder in seconds,
// spanning the service's range from sub-10ms cache-warm requests to the
// 60s request timeout.
var DurationBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// HistogramVec is a cumulative histogram family split by one label.
type HistogramVec struct {
	fname, help, label string
	bounds             []float64
	mu                 sync.Mutex
	children           map[string]*histogram
}

type histogram struct {
	mu     sync.Mutex
	counts []uint64 // per-bucket (non-cumulative) observation counts
	sum    float64
	total  uint64
}

// NewHistogramVec registers a labeled histogram family with the given
// upper bounds (ascending; +Inf is implicit).
func NewHistogramVec(r *Registry, name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{
		fname: name, help: help, label: label,
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*histogram),
	}
	r.register(v)
	return v
}

// Observe records one sample for the label value.
func (v *HistogramVec) Observe(value string, sample float64) {
	v.mu.Lock()
	h := v.children[value]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(v.bounds)+1)}
		v.children[value] = h
	}
	v.mu.Unlock()
	idx := sort.SearchFloat64s(v.bounds, sample)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += sample
	h.total++
	h.mu.Unlock()
}

func (v *HistogramVec) name() string { return v.fname }

func (v *HistogramVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.fname, v.help, v.fname)
	for i, k := range keys {
		h := children[i]
		h.mu.Lock()
		counts := append([]uint64(nil), h.counts...)
		sum, total := h.sum, h.total
		h.mu.Unlock()
		lv := escapeLabel(k)
		var cum uint64
		for j, bound := range v.bounds {
			cum += counts[j]
			fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"%s\"} %d\n", v.fname, v.label, lv, formatFloat(bound), cum)
		}
		cum += counts[len(v.bounds)]
		fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", v.fname, v.label, lv, cum)
		fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %s\n", v.fname, v.label, lv, strconv(sum))
		fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", v.fname, v.label, lv, total)
	}
}
