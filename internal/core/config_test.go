package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/crypt"
	"repro/internal/ontology"
)

// TestSaltConfigSingleSource is the regression test for the
// SaltPositionWithColumn / NoColumnSalt footgun: NoColumnSalt is the
// single source of truth, the effective SaltPositionWithColumn is always
// derived from it, and the contradictory combination is rejected instead
// of silently keeping the salt enabled.
func TestSaltConfigSingleSource(t *testing.T) {
	trees := ontology.Trees()

	fw, err := New(trees, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !fw.Config().SaltPositionWithColumn {
		t.Error("default config must salt positions with the column name")
	}

	fw, err = New(trees, Config{K: 5, NoColumnSalt: true})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Config().SaltPositionWithColumn {
		t.Error("NoColumnSalt must disable the position salt")
	}

	// Previously this combination silently left the salt on; now it is a
	// configuration error.
	_, err = New(trees, Config{K: 5, NoColumnSalt: true, SaltPositionWithColumn: true})
	if err == nil {
		t.Fatal("conflicting NoColumnSalt + SaltPositionWithColumn accepted")
	}
	if !strings.Contains(err.Error(), "NoColumnSalt") {
		t.Errorf("conflict error should name the fields: %v", err)
	}

	// An explicit (redundant) SaltPositionWithColumn without NoColumnSalt
	// stays valid and keeps the salt on.
	fw, err = New(trees, Config{K: 5, SaltPositionWithColumn: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fw.Config().SaltPositionWithColumn {
		t.Error("explicit salt request must keep the salt on")
	}
}

// TestProtectDetectWorkersDeterminism asserts the pipeline-wide
// guarantee: the published table, the provenance record and the
// detection verdict are identical for Workers ∈ {1, 2, 8}.
func TestProtectDetectWorkersDeterminism(t *testing.T) {
	tbl := testData(t, 3000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)

	type outcome struct {
		tableCSV string
		provJSON string
		mark     string
		loss     float64
	}
	var base *outcome
	for _, workers := range []int{1, 2, 8} {
		fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		p, err := fw.Protect(tbl, key)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var sb strings.Builder
		if err := p.Table.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		provData, err := json.Marshal(p.Provenance)
		if err != nil {
			t.Fatal(err)
		}
		det, err := fw.Detect(p.Table, p.Provenance, key)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &outcome{
			tableCSV: sb.String(),
			provJSON: string(provData),
			mark:     det.Result.Mark.String(),
			loss:     det.MarkLoss,
		}
		if base == nil {
			base = got
			if !det.Match {
				t.Fatal("sequential run does not even detect its own mark")
			}
			continue
		}
		if got.tableCSV != base.tableCSV {
			t.Errorf("workers=%d: protected table differs from sequential", workers)
		}
		if got.provJSON != base.provJSON {
			t.Errorf("workers=%d: provenance differs:\n%s\nvs\n%s", workers, got.provJSON, base.provJSON)
		}
		if got.mark != base.mark || got.loss != base.loss {
			t.Errorf("workers=%d: detection (%s, %v) differs from sequential (%s, %v)",
				workers, got.mark, got.loss, base.mark, base.loss)
		}
	}
}
