package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/attack"
	"repro/internal/crypt"
	"repro/internal/datagen"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// alteredLeak clones a protected copy and runs a 30% alteration attack
// over it, so the streamed detectors exercise the skip paths (values out
// of the domain, above the metrics) and not just the clean read.
func alteredLeak(t *testing.T, fw *Framework, prot *Protected) *relation.Table {
	t.Helper()
	leak := prot.Table.Clone()
	specs, err := fw.SpecsFromProvenance(prot.Provenance)
	if err != nil {
		t.Fatal(err)
	}
	pools := map[string][]string{}
	for col, spec := range specs {
		pools[col] = spec.UltiGen.Values()
	}
	if _, err := attack.AlterSubset(leak, pools, 0.3, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	return leak
}

// TestDetectStreamMatchesDetect pins the read-side tentpole guarantee:
// detection over a segment stream is bit-identical — mark, confidences,
// statistics, loss and verdict — to DetectContext over the materialized
// suspect, for every chunk size and worker count, on both a clean and
// an attacked suspect.
func TestDetectStreamMatchesDetect(t *testing.T) {
	tbl := testData(t, 2000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	for _, workers := range []int{1, 2, 8} {
		fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		prot, err := fw.Protect(tbl, key)
		if err != nil {
			t.Fatal(err)
		}
		for name, suspect := range map[string]*relation.Table{
			"clean":    prot.Table,
			"attacked": alteredLeak(t, fw, prot),
		} {
			want, err := fw.Detect(suspect, prot.Provenance, key)
			if err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []int{1, 512, 4000} {
				got, err := fw.DetectStream(context.Background(), suspect.Segments(chunk), prot.Provenance, key)
				if err != nil {
					t.Fatalf("%s workers=%d chunk=%d: %v", name, workers, chunk, err)
				}
				if !reflect.DeepEqual(got.Detection, *want) {
					t.Fatalf("%s workers=%d chunk=%d: streamed detection diverged\n  stream: %+v\n  memory: %+v",
						name, workers, chunk, got.Detection, *want)
				}
				if got.Rows != suspect.NumRows() {
					t.Fatalf("rows = %d, want %d", got.Rows, suspect.NumRows())
				}
			}
		}
	}
}

// TestTracebackStreamMatchesTraceback pins the traceback twin over a
// streamed, attacked suspect: the ranked report — verdicts, match
// ratios, confidences, culprit — is bit-identical to TracebackContext
// over the materialized leak, for every chunk size and worker count,
// and still names the leaking recipient.
func TestTracebackStreamMatchesTraceback(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		fw, results := fingerprintFixture(t, workers, "hospital-a", "hospital-b", "hospital-c")
		cands := candidatesOf(results)
		leak := alteredLeak(t, fw, results[1].Protected)
		want, err := fw.Traceback(leak, cands)
		if err != nil {
			t.Fatal(err)
		}
		if want.Culprit != "hospital-b" {
			t.Fatalf("in-memory culprit = %q, want hospital-b", want.Culprit)
		}
		for _, chunk := range []int{1, 512, 4000} {
			got, err := fw.TracebackStream(context.Background(), leak.Segments(chunk), cands)
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if !reflect.DeepEqual(got.Traceback, *want) {
				t.Fatalf("workers=%d chunk=%d: streamed traceback diverged\n  stream: %+v\n  memory: %+v",
					workers, chunk, got.Traceback, *want)
			}
			if got.Rows != leak.NumRows() {
				t.Fatalf("rows = %d, want %d", got.Rows, leak.NumRows())
			}
		}
	}
}

// TestTracebackStreamMixedPlanGroups exercises the per-segment shared
// state across distinct frontier groups: candidates from two unrelated
// plans, streamed verdicts equal to the in-memory ones.
func TestTracebackStreamMixedPlanGroups(t *testing.T) {
	fw, results := fingerprintFixture(t, 0, "h-a", "h-b")
	cands := candidatesOf(results)
	other := testData(t, 900)
	otherKey := crypt.RecipientWatermarkKey("another secret", "h-x", 15)
	prot, err := fw.Protect(other, otherKey)
	if err != nil {
		t.Fatal(err)
	}
	cands = append(cands, Candidate{ID: "h-x", Provenance: prot.Provenance, Key: otherKey})

	leak := results[0].Protected.Table
	want, err := fw.Traceback(leak, cands)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fw.TracebackStream(context.Background(), leak.Segments(300), cands)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Traceback, *want) {
		t.Fatalf("mixed-group streamed traceback diverged\n  stream: %+v\n  memory: %+v", got.Traceback, *want)
	}
	if got.Culprit != "h-a" {
		t.Errorf("culprit = %q, want h-a", got.Culprit)
	}
}

// TestFingerprintStreamMatchesFingerprint pins the fan-out guarantee:
// every recipient's streamed CSV is byte-identical to WriteCSV of the
// in-memory FingerprintContext copy, and the per-copy effective plans
// and statistics agree — for several segment sizes.
func TestFingerprintStreamMatchesFingerprint(t *testing.T) {
	tbl := testData(t, 1500)
	ids := []string{"hospital-a", "hospital-b", "hospital-c"}
	recipients := make([]Recipient, len(ids))
	for i, id := range ids {
		recipients[i] = Recipient{ID: id, Key: crypt.RecipientWatermarkKey(tracebackSecret, id, 20)}
	}
	for _, chunk := range []int{1, 512, 4000} {
		fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Chunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fw.Fingerprint(tbl, recipients)
		if err != nil {
			t.Fatal(err)
		}
		outs := make([]io.Writer, len(recipients))
		bufs := make([]*bytes.Buffer, len(recipients))
		for i := range outs {
			bufs[i] = &bytes.Buffer{}
			outs[i] = bufs[i]
		}
		got, err := fw.FingerprintStream(context.Background(), tbl, recipients, outs)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d streamed results, want %d", chunk, len(got), len(want))
		}
		for i, w := range want {
			g := got[i]
			if g.RecipientID != w.RecipientID || g.KeyFingerprint != w.KeyFingerprint {
				t.Fatalf("chunk=%d recipient %d: identity mismatch", chunk, i)
			}
			if !bytes.Equal(bufs[i].Bytes(), tableCSV(t, w.Protected.Table)) {
				t.Fatalf("chunk=%d recipient %s: streamed CSV differs from in-memory copy", chunk, w.RecipientID)
			}
			if g.Streamed.Embed != w.Protected.Embed || g.Streamed.BinStats != w.Protected.BinStats {
				t.Fatalf("chunk=%d recipient %s: stats diverged", chunk, w.RecipientID)
			}
			if g.Streamed.Plan.Mark != w.Protected.Plan.Mark ||
				g.Streamed.Plan.Rows != w.Protected.Plan.Rows ||
				g.Streamed.Plan.BoundaryPermutation != w.Protected.Plan.BoundaryPermutation {
				t.Fatalf("chunk=%d recipient %s: effective plan diverged", chunk, w.RecipientID)
			}
		}
	}
}

// TestFingerprintMatchesPerRecipientApply pins the shared-transform
// guarantee with golden hashes: every FingerprintContext copy must be
// byte-identical (SHA-256 over the CSV) to a standalone ApplyContext
// under the same recipient plan and key — splitting the transform out
// of the per-recipient loop may not change a single output byte.
func TestFingerprintMatchesPerRecipientApply(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 1500)
	ids := []string{"hospital-a", "hospital-b", "hospital-c", "hospital-d"}
	recipients := make([]Recipient, len(ids))
	for i, id := range ids {
		recipients[i] = Recipient{ID: id, Key: crypt.RecipientWatermarkKey(tracebackSecret, id, 20)}
	}
	results, err := fw.Fingerprint(tbl, recipients)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fw.Plan(tbl, recipients[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recipients {
		rp, err := RecipientPlan(plan, r.ID)
		if err != nil {
			t.Fatal(err)
		}
		p, err := fw.Apply(tbl, rp, r.Key)
		if err != nil {
			t.Fatal(err)
		}
		want := sha256.Sum256(tableCSV(t, p.Table))
		got := sha256.Sum256(tableCSV(t, results[i].Protected.Table))
		if got != want {
			t.Errorf("recipient %s: fingerprint copy hash %x != independent apply hash %x", r.ID, got, want)
		}
		if !reflect.DeepEqual(results[i].Protected.Plan, p.Plan) {
			t.Errorf("recipient %s: effective plans diverged", r.ID)
		}
	}
}

// TestReadStreamValidation covers the cheap up-front failures of the
// streamed read plane and the fingerprint fan-out.
func TestReadStreamValidation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 200)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.DetectStream(context.Background(), nil, prot.Provenance, key); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil source: %v", err)
	}
	if _, err := fw.DetectStream(context.Background(), prot.Table.Segments(0), prot.Provenance, crypt.WatermarkKey{}); !errors.Is(err, ErrBadKey) {
		t.Errorf("empty key: %v", err)
	}
	badProv := prot.Provenance
	badProv.IdentCol = "no-such-column"
	if _, err := fw.DetectStream(context.Background(), prot.Table.Segments(0), badProv, key); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad ident column: %v", err)
	}
	cand := Candidate{ID: "a", Provenance: prot.Provenance, Key: key}
	if _, err := fw.TracebackStream(context.Background(), nil, []Candidate{cand}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil traceback source: %v", err)
	}
	if _, err := fw.TracebackStream(context.Background(), prot.Table.Segments(0), nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no candidates: %v", err)
	}
	if _, err := fw.TracebackStream(context.Background(), prot.Table.Segments(0), []Candidate{{ID: "a"}}); !errors.Is(err, ErrBadKey) {
		t.Errorf("invalid candidate key: %v", err)
	}
	rec := []Recipient{{ID: "a", Key: key}}
	if _, err := fw.FingerprintStream(context.Background(), tbl, rec, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("missing writers: %v", err)
	}
	if _, err := fw.FingerprintStream(context.Background(), tbl, rec, []io.Writer{nil}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil writer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.DetectStream(ctx, prot.Table.Segments(0), prot.Provenance, key); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled detect: %v", err)
	}
	if _, err := fw.TracebackStream(ctx, prot.Table.Segments(0), []Candidate{cand}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled traceback: %v", err)
	}
	if _, err := fw.FingerprintStream(ctx, tbl, rec, []io.Writer{io.Discard}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled fingerprint: %v", err)
	}
}

// cutSegments yields tbl sliced at arbitrary caller-chosen boundaries —
// the adversarial Segments source of FuzzDetectStreamSegments.
type cutSegments struct {
	tbl  *relation.Table
	cuts []int // strictly ascending, last == NumRows
	pos  int
	at   int
}

func (s *cutSegments) Schema() *relation.Schema { return s.tbl.Schema() }

func (s *cutSegments) Next() (*relation.Table, error) {
	if s.pos >= len(s.cuts) {
		return nil, io.EOF
	}
	lo, hi := s.at, s.cuts[s.pos]
	s.pos++
	s.at = hi
	return s.tbl.Slice(lo, hi)
}

// FuzzDetectStreamSegments differentially fuzzes the streamed detector
// against the in-memory one: each fuzz input encodes an adversarial
// sequence of segment lengths, and the streamed votes must reproduce
// the in-memory detection bit for bit no matter where the suspect is
// cut.
func FuzzDetectStreamSegments(f *testing.F) {
	fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: 3})
	if err != nil {
		f.Fatal(err)
	}
	tbl, err := datagen.Generate(datagen.Config{Rows: 600, Seed: 77, Correlate: true, ZipfS: 1.2})
	if err != nil {
		f.Fatal(err)
	}
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		f.Fatal(err)
	}
	want, err := fw.Detect(prot.Table, prot.Provenance, key)
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{1})
	f.Add([]byte{0, 255, 3})
	f.Add([]byte{7, 7, 7, 7, 200})
	f.Fuzz(func(t *testing.T, lens []byte) {
		n := prot.Table.NumRows()
		var cuts []int
		at := 0
		for _, b := range lens {
			if at >= n {
				break
			}
			step := 1 + int(b)
			if at+step > n {
				step = n - at
			}
			at += step
			cuts = append(cuts, at)
		}
		if at < n {
			cuts = append(cuts, n)
		}
		got, err := fw.DetectStream(context.Background(), &cutSegments{tbl: prot.Table, cuts: cuts}, prot.Provenance, key)
		if err != nil {
			t.Fatalf("cuts %v: %v", cuts, err)
		}
		if !reflect.DeepEqual(got.Detection, *want) {
			t.Fatalf("cuts %v: streamed detection diverged from in-memory", cuts)
		}
	})
}
