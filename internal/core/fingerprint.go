package core

import (
	"context"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/ownership"
	"repro/internal/relation"
)

// Recipient names one party a marked copy is outsourced to, together
// with the key set that copy is embedded under. Keys are usually derived
// from the owner's master secret with crypt.RecipientWatermarkKey, which
// shares the selection key K1 across recipients so a later traceback
// pays the suspect-table selection scan once for all of them.
type Recipient struct {
	// ID is the stable recipient identifier (a hospital code, a partner
	// name). It salts the recipient's mark and addresses the registry.
	ID string
	// Key is the recipient copy's watermarking key set.
	Key crypt.WatermarkKey
}

// FingerprintResult is one recipient's outcome of FingerprintContext.
type FingerprintResult struct {
	// RecipientID echoes the request.
	RecipientID string
	// KeyFingerprint is the non-secret digest of the recipient's key —
	// what the recipient registry stores to later verify a re-derived
	// key against.
	KeyFingerprint string
	// Protected is the recipient's marked copy: its table carries the
	// recipient-salted mark F(v, recipientID) under the recipient's key,
	// and its Plan/Provenance are what traceback detects against.
	Protected *Protected
}

// RecipientPlan derives one recipient's plan from a base plan: the same
// frozen frontiers, statistic and watermark parameters, with the mark
// replaced by the recipient-salted commitment F(v, recipientID). The
// base plan's same-process search state is shared, so applying N
// recipient plans to the planned table repeats no binning work.
func RecipientPlan(base *Plan, recipientID string) (*Plan, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil plan: %w", ErrBadProvenance)
	}
	if recipientID == "" {
		return nil, fmt.Errorf("core: empty recipient ID: %w", ErrBadConfig)
	}
	baseMark, err := bitstr.FromString(base.Mark)
	if err != nil {
		return nil, fmt.Errorf("core: plan mark: %w: %w", err, ErrBadProvenance)
	}
	mark, err := ownership.MarkFromStatisticSalted(base.V, base.Quantum, baseMark.Len(), recipientID)
	if err != nil {
		return nil, fmt.Errorf("core: deriving recipient mark: %w: %w", err, ErrBadProvenance)
	}
	rp := *base
	rp.Mark = mark.String()
	return &rp, nil
}

// Fingerprint is FingerprintContext under the background context.
func (f *Framework) Fingerprint(tbl *relation.Table, recipients []Recipient) ([]FingerprintResult, error) {
	return f.FingerprintContext(context.Background(), tbl, recipients)
}

// FingerprintContext protects one source table for N recipients — the
// paper's motivating outsourcing scenario, where the owner hands a
// marked copy to every partner and later asks whose copy a leak came
// from. The binning search runs once (PlanContext); each recipient then
// gets its own ApplyContext pass embedding the recipient-salted mark
// F(v, recipientID) under the recipient's key. All copies share the
// frontiers, the encrypted identifiers and the published bin record —
// only the watermark differs — so any copy remains detectable and
// appendable under its own plan.
//
// Register each result (internal/registry) to enable TracebackContext
// on a leaked table later.
func (f *Framework) FingerprintContext(ctx context.Context, tbl *relation.Table, recipients []Recipient) ([]FingerprintResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(recipients) == 0 {
		return nil, fmt.Errorf("core: no recipients: %w", ErrBadConfig)
	}
	seen := make(map[string]bool, len(recipients))
	for i, r := range recipients {
		if r.ID == "" {
			return nil, fmt.Errorf("core: recipient %d has an empty ID: %w", i, ErrBadConfig)
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("core: duplicate recipient ID %q: %w", r.ID, ErrBadConfig)
		}
		seen[r.ID] = true
		if err := r.Key.Validate(); err != nil {
			return nil, fmt.Errorf("core: recipient %q: %w: %w", r.ID, err, ErrBadKey)
		}
	}

	// Progress counts one unit for the shared plan plus one per
	// recipient copy.
	total := len(recipients) + 1
	reportProgress(ctx, Progress{Stage: "plan", Done: 0, Total: total})
	plan, err := f.PlanContext(ctx, tbl, recipients[0].Key)
	if err != nil {
		return nil, err
	}
	reportProgress(ctx, Progress{Stage: "fingerprint", Done: 1, Total: total})
	out := make([]FingerprintResult, 0, len(recipients))
	for i, r := range recipients {
		rp, err := RecipientPlan(plan, r.ID)
		if err != nil {
			return nil, err
		}
		prot, err := f.ApplyContext(ctx, tbl, rp, r.Key)
		if err != nil {
			return nil, fmt.Errorf("core: fingerprinting for recipient %q: %w", r.ID, err)
		}
		out = append(out, FingerprintResult{
			RecipientID:    r.ID,
			KeyFingerprint: r.Key.Fingerprint(),
			Protected:      prot,
		})
		reportProgress(ctx, Progress{Stage: "fingerprint", Done: i + 2, Total: total})
	}
	return out, nil
}
