package core

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"repro/internal/anonymity"
	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/ownership"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// Recipient names one party a marked copy is outsourced to, together
// with the key set that copy is embedded under. Keys are usually derived
// from the owner's master secret with crypt.RecipientWatermarkKey, which
// shares the selection key K1 across recipients so a later traceback
// pays the suspect-table selection scan once for all of them.
type Recipient struct {
	// ID is the stable recipient identifier (a hospital code, a partner
	// name). It salts the recipient's mark and addresses the registry.
	ID string
	// Key is the recipient copy's watermarking key set.
	Key crypt.WatermarkKey
}

// FingerprintResult is one recipient's outcome of FingerprintContext.
type FingerprintResult struct {
	// RecipientID echoes the request.
	RecipientID string
	// KeyFingerprint is the non-secret digest of the recipient's key —
	// what the recipient registry stores to later verify a re-derived
	// key against.
	KeyFingerprint string
	// Protected is the recipient's marked copy: its table carries the
	// recipient-salted mark F(v, recipientID) under the recipient's key,
	// and its Plan/Provenance are what traceback detects against.
	Protected *Protected
}

// RecipientPlan derives one recipient's plan from a base plan: the same
// frozen frontiers, statistic and watermark parameters, with the mark
// replaced by the recipient-salted commitment F(v, recipientID). The
// base plan's same-process search state is shared, so applying N
// recipient plans to the planned table repeats no binning work.
func RecipientPlan(base *Plan, recipientID string) (*Plan, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil plan: %w", ErrBadProvenance)
	}
	if recipientID == "" {
		return nil, fmt.Errorf("core: empty recipient ID: %w", ErrBadConfig)
	}
	baseMark, err := bitstr.FromString(base.Mark)
	if err != nil {
		return nil, fmt.Errorf("core: plan mark: %w: %w", err, ErrBadProvenance)
	}
	mark, err := ownership.MarkFromStatisticSalted(base.V, base.Quantum, baseMark.Len(), recipientID)
	if err != nil {
		return nil, fmt.Errorf("core: deriving recipient mark: %w: %w", err, ErrBadProvenance)
	}
	rp := *base
	rp.Mark = mark.String()
	return &rp, nil
}

// Fingerprint is FingerprintContext under the background context.
func (f *Framework) Fingerprint(tbl *relation.Table, recipients []Recipient) ([]FingerprintResult, error) {
	return f.FingerprintContext(context.Background(), tbl, recipients)
}

// FingerprintContext protects one source table for N recipients — the
// paper's motivating outsourcing scenario, where the owner hands a
// marked copy to every partner and later asks whose copy a leak came
// from. The binning search runs once (PlanContext) and the transform
// stage — identifier encryption, generalization, the k check — runs
// once per distinct encryption key (once, when the keys come from
// crypt.RecipientWatermarkKey); each recipient then gets an embed-only
// pass over the shared immutable transformed table, cloning into fresh
// code vectors before embedding the recipient-salted mark
// F(v, recipientID) under the recipient's key. All copies share the
// frontiers, the encrypted identifiers and the published bin record —
// only the watermark differs — so any copy remains detectable and
// appendable under its own plan, and every copy is byte-identical to a
// standalone ApplyContext under the same recipient plan and key.
//
// Register each result (internal/registry) to enable TracebackContext
// on a leaked table later.
func (f *Framework) FingerprintContext(ctx context.Context, tbl *relation.Table, recipients []Recipient) ([]FingerprintResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateRecipients(recipients); err != nil {
		return nil, err
	}

	// Progress counts one unit for the shared plan, one for the shared
	// transform, and one per recipient embed.
	total := len(recipients) + 2
	reportProgress(ctx, Progress{Stage: "plan", Done: 0, Total: total})
	plan, err := f.PlanContext(ctx, tbl, recipients[0].Key)
	if err != nil {
		return nil, err
	}
	reportProgress(ctx, Progress{Stage: "transform", Done: 1, Total: total})
	preps := make(map[string]*applyPrepared, 1)
	sels := make(map[string]*watermark.Selection, 1)
	out := make([]FingerprintResult, 0, len(recipients))
	for i, r := range recipients {
		prep, err := f.prepareForKey(ctx, preps, tbl, plan, r)
		if err != nil {
			return nil, err
		}
		// The Equation (5) selection depends only on the transformed
		// identifiers, K1 and η — RecipientWatermarkKey-derived keys
		// share all three, so one scan serves every embed.
		sel, err := f.selectForKey(ctx, sels, prep, plan, r)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			reportProgress(ctx, Progress{Stage: "embed", Done: 2, Total: total})
		}
		rp, err := RecipientPlan(plan, r.ID)
		if err != nil {
			return nil, err
		}
		prot, err := f.applyEmbed(ctx, prep, rp, r.Key, sel)
		if err != nil {
			return nil, fmt.Errorf("core: fingerprinting for recipient %q: %w", r.ID, err)
		}
		out = append(out, FingerprintResult{
			RecipientID:    r.ID,
			KeyFingerprint: r.Key.Fingerprint(),
			Protected:      prot,
		})
		reportProgress(ctx, Progress{Stage: "embed", Done: i + 3, Total: total})
	}
	return out, nil
}

// validateRecipients rejects empty, duplicate or badly-keyed recipient
// sets — the shared front door of the fingerprint entry points.
func validateRecipients(recipients []Recipient) error {
	if len(recipients) == 0 {
		return fmt.Errorf("core: no recipients: %w", ErrBadConfig)
	}
	seen := make(map[string]bool, len(recipients))
	for i, r := range recipients {
		if r.ID == "" {
			return fmt.Errorf("core: recipient %d has an empty ID: %w", i, ErrBadConfig)
		}
		if seen[r.ID] {
			return fmt.Errorf("core: duplicate recipient ID %q: %w", r.ID, ErrBadConfig)
		}
		seen[r.ID] = true
		if err := r.Key.Validate(); err != nil {
			return fmt.Errorf("core: recipient %q: %w: %w", r.ID, err, ErrBadKey)
		}
	}
	return nil
}

// prepareForKey returns the shared transform state for a recipient's
// encryption key, running the transform stage on first use. Keys
// derived by crypt.RecipientWatermarkKey share one encryption key, so
// the usual fan-out pays exactly one transform.
func (f *Framework) prepareForKey(ctx context.Context, preps map[string]*applyPrepared, tbl *relation.Table, plan *Plan, r Recipient) (*applyPrepared, error) {
	if prep, ok := preps[string(r.Key.Enc)]; ok {
		return prep, nil
	}
	prep, err := f.applyPrepare(ctx, tbl, plan, r.Key)
	if err != nil {
		return nil, fmt.Errorf("core: fingerprinting for recipient %q: %w", r.ID, err)
	}
	preps[string(r.Key.Enc)] = prep
	return prep, nil
}

// selectForKey returns the shared Equation (5) selection over a
// transform's output for a recipient's (K1, η), scanning on first use.
// The cache key includes the encryption key — a different cipher
// yields different encrypted identifiers, hence a different selection.
func (f *Framework) selectForKey(ctx context.Context, sels map[string]*watermark.Selection, prep *applyPrepared, plan *Plan, r Recipient) (*watermark.Selection, error) {
	key := string(r.Key.Enc) + "\x00" + string(r.Key.K1) + "\x00" + strconv.FormatUint(r.Key.Eta, 10)
	if sel, ok := sels[key]; ok {
		return sel, nil
	}
	sel, err := watermark.SelectForEmbedContext(ctx, prep.binned, plan.IdentCol, r.Key.K1, r.Key.Eta, f.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: fingerprinting for recipient %q: %w", r.ID, err)
	}
	sels[key] = sel
	return sel, nil
}

// FingerprintStreamed is one recipient's outcome of FingerprintStream:
// the effective plan and statistics of that recipient's copy — the copy
// itself went to the recipient's writer as CSV.
type FingerprintStreamed struct {
	RecipientID    string
	KeyFingerprint string
	// Streamed carries the recipient copy's effective plan, embedding
	// statistics and bin comparison, exactly as ApplyContext would
	// report them for the materialized copy.
	Streamed Streamed
}

// FingerprintStream is the bounded-memory fingerprint fan-out: plan and
// transform run once (exactly as FingerprintContext), then the shared
// transformed table is re-segmented and every segment is cloned,
// embedded and written per recipient through a relation.SegmentWriter —
// so peak memory is one transformed table plus one segment per copy,
// never N materialized tables. outs[i] receives recipient i's protected
// CSV, byte-identical to WriteCSV of the FingerprintContext copy under
// the same recipient plan and key, for every Config.Chunk.
//
// One difference is inherited from the streaming data plane: the §5.1
// boundary-permutation fallback would re-embed whole copies, which the
// segment writers cannot replay — FingerprintStream reports
// ErrUnsatisfiable instead (re-plan with Config.BoundaryPermutation, or
// use the in-memory FingerprintContext). On any error the CSV already
// written to the outs is partial and must be discarded by the caller.
func (f *Framework) FingerprintStream(ctx context.Context, tbl *relation.Table, recipients []Recipient, outs []io.Writer) ([]FingerprintStreamed, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateRecipients(recipients); err != nil {
		return nil, err
	}
	if len(outs) != len(recipients) {
		return nil, fmt.Errorf("core: %d recipients but %d output writers: %w", len(recipients), len(outs), ErrBadConfig)
	}
	for i, out := range outs {
		if out == nil {
			return nil, fmt.Errorf("core: nil output writer for recipient %q: %w", recipients[i].ID, ErrBadConfig)
		}
	}

	reportProgress(ctx, Progress{Stage: "plan", Done: 0})
	plan, err := f.PlanContext(ctx, tbl, recipients[0].Key)
	if err != nil {
		return nil, err
	}
	reportProgress(ctx, Progress{Stage: "transform", Done: 0})
	preps := make(map[string]*applyPrepared, 1)
	type fanout struct {
		prep   *applyPrepared
		plan   *Plan
		params watermark.Params
		sw     *relation.SegmentWriter
		after  map[string]int
		res    Streamed
	}
	states := make([]*fanout, len(recipients))
	for i, r := range recipients {
		prep, err := f.prepareForKey(ctx, preps, tbl, plan, r)
		if err != nil {
			return nil, err
		}
		rp, err := RecipientPlan(plan, r.ID)
		if err != nil {
			return nil, err
		}
		params, err := paramsFromProvenance(rp.Provenance, r.Key)
		if err != nil {
			return nil, fmt.Errorf("core: fingerprinting for recipient %q: %w", r.ID, err)
		}
		params.Workers = f.cfg.Workers
		states[i] = &fanout{
			prep:   prep,
			plan:   rp,
			params: params,
			sw:     relation.NewSegmentWriter(outs[i], prep.binned.Schema()),
			after:  make(map[string]int),
		}
	}

	// Fan the shared transformed table out segment-at-a-time: each
	// recipient embeds into a fresh clone of the segment's code vectors
	// (copy-on-embed) and appends it to its own CSV stream.
	rows := 0
	for i, st := range states {
		src := st.prep.binned.Segments(f.cfg.Chunk)
		for {
			seg, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			marked := seg.Clone()
			segStats, err := watermark.EmbedContext(ctx, marked, st.plan.IdentCol, st.prep.columns, st.params)
			if err != nil {
				return nil, fmt.Errorf("core: fingerprinting for recipient %q: %w", recipients[i].ID, err)
			}
			addEmbed(&st.res.Embed, segStats)
			if err := addBins(st.after, marked, st.prep.quasi); err != nil {
				return nil, err
			}
			if err := st.sw.WriteSegment(marked); err != nil {
				return nil, err
			}
			st.res.Rows += marked.NumRows()
			st.res.Segments++
			rows += seg.NumRows()
			reportProgress(ctx, Progress{Stage: "embed", Done: rows})
		}
		if err := st.sw.Flush(); err != nil {
			return nil, err
		}
	}

	out := make([]FingerprintStreamed, 0, len(recipients))
	for i, st := range states {
		r := recipients[i]
		// End-of-stream verdicts per copy, mirroring ApplyStream: the
		// transform already enforced the planned k+ε floor, so only the
		// bandwidth and seamlessness checks remain.
		params := st.params
		if st.res.Embed.BitsEmbedded == 0 {
			switch {
			case st.res.Embed.TuplesSelected > 0 && !params.BoundaryPermutation:
				return nil, fmt.Errorf(
					"core: fingerprinting for recipient %q: no watermark bandwidth under the planned frontiers, and the §5.1 boundary-permutation fallback cannot replay the streamed copies; re-plan with Config.BoundaryPermutation or use the in-memory fingerprint: %w", r.ID, ErrUnsatisfiable)
			case st.res.Embed.TuplesSelected > 0:
				return nil, fmt.Errorf(
					"core: fingerprinting for recipient %q: no watermark bandwidth: every frontier sits at the usage metrics with no permutable siblings; relax the metrics or lower K: %w", r.ID, ErrUnsatisfiable)
			case !params.BoundaryPermutation:
				// No tuple selected at all: the in-memory path flips the
				// fallback on with no observable table change; mirror its
				// effective plan.
				params.BoundaryPermutation = true
			}
		}
		st.res.BinStats = anonymity.Compare(st.prep.before, st.after, st.plan.K)
		if st.res.BinStats.BelowK > 0 && !params.BoundaryPermutation {
			return nil, fmt.Errorf(
				"core: fingerprinting for recipient %q: watermarking pushed %d bins below k=%d; increase Epsilon or enable AutoEpsilon: %w",
				r.ID, st.res.BinStats.BelowK, st.plan.K, ErrUnsatisfiable)
		}
		eff := *st.plan
		eff.rt = nil
		eff.BoundaryPermutation = params.BoundaryPermutation
		eff.Bins = st.after
		eff.Rows = st.res.Rows
		st.res.Plan = eff
		out = append(out, FingerprintStreamed{
			RecipientID:    r.ID,
			KeyFingerprint: r.Key.Fingerprint(),
			Streamed:       st.res,
		})
	}
	return out, nil
}
