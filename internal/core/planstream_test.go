package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/crypt"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// TestPlanStreamMatchesPlanContext pins the planner tentpole: the
// one-pass sketch planner emits a plan byte-identical (MarshalPlan) to
// PlanContext's over the materialized table, for every chunk size,
// worker count, suppression rule and the AutoEpsilon re-search — and
// applying either plan produces the same protected CSV.
func TestPlanStreamMatchesPlanContext(t *testing.T) {
	tbl := testData(t, 4000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	for _, workers := range []int{1, 2, 8} {
		for _, aggressive := range []bool{false, true} {
			for _, auto := range []bool{false, true} {
				fw, err := New(ontology.Trees(), Config{
					K: 15, AutoEpsilon: auto, Aggressive: aggressive, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("workers=%d aggressive=%v auto=%v", workers, aggressive, auto)
				ref, err := fw.PlanContext(context.Background(), tbl, key)
				if err != nil {
					t.Fatalf("%s: PlanContext: %v", name, err)
				}
				want, err := MarshalPlan(ref)
				if err != nil {
					t.Fatal(err)
				}
				refApply, err := fw.Apply(tbl, ref, key)
				if err != nil {
					t.Fatalf("%s: apply of context plan: %v", name, err)
				}
				wantCSV := tableCSV(t, refApply.Table)
				for _, chunk := range []int{1, 7, 512, 4000, 9000} {
					ps, err := fw.PlanStream(context.Background(), tbl.Segments(chunk), key)
					if err != nil {
						t.Fatalf("%s chunk=%d: PlanStream: %v", name, chunk, err)
					}
					got, err := MarshalPlan(ps.Plan)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s chunk=%d: streamed plan differs:\n got: %s\nwant: %s", name, chunk, got, want)
					}
					if ps.Rows != tbl.NumRows() {
						t.Fatalf("%s chunk=%d: rows = %d, want %d", name, chunk, ps.Rows, tbl.NumRows())
					}
					wantSegs := (tbl.NumRows() + chunk - 1) / chunk
					if chunk >= tbl.NumRows() {
						wantSegs = 1
					}
					if ps.Segments != wantSegs {
						t.Fatalf("%s chunk=%d: segments = %d, want %d", name, chunk, ps.Segments, wantSegs)
					}
					// The cold (rt-less) streamed plan must protect to the
					// same bytes as the context plan's warm fast path.
					if chunk == 512 {
						p, err := fw.Apply(tbl, ps.Plan, key)
						if err != nil {
							t.Fatalf("%s: apply of streamed plan: %v", name, err)
						}
						if !bytes.Equal(tableCSV(t, p.Table), wantCSV) {
							t.Fatalf("%s: protected CSV differs between streamed and context plans", name)
						}
					}
				}
			}
		}
	}
}

// TestPlanStreamFromCSV plans straight from CSV ingest, no materialized
// table: SegmentReader in, plan out, identical to PlanContext.
func TestPlanStreamFromCSV(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 3000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	ref, err := fw.PlanContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalPlan(ref)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := relation.NewSegmentReader(bytes.NewReader(tableCSV(t, tbl)), tbl.Schema(), 256)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := fw.PlanStream(context.Background(), sr, key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MarshalPlan(ps.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CSV-streamed plan differs:\n got: %s\nwant: %s", got, want)
	}
	if ps.Rows != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", ps.Rows, tbl.NumRows())
	}
}

// errSegments yields one good segment, then a read error.
type errSegments struct {
	tbl  *relation.Table
	done bool
}

func (e *errSegments) Schema() *relation.Schema { return e.tbl.Schema() }

func (e *errSegments) Next() (*relation.Table, error) {
	if e.done {
		return nil, errors.New("disk on fire")
	}
	e.done = true
	return e.tbl, nil
}

// TestPlanStreamValidation covers the cheap up-front failures and the
// mid-stream read error.
func TestPlanStreamValidation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 100)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	if _, err := fw.PlanStream(context.Background(), nil, key); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil source: %v", err)
	}
	if _, err := fw.PlanStream(context.Background(), tbl.Segments(0), crypt.WatermarkKey{}); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.PlanStream(ctx, tbl.Segments(0), key); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: %v", err)
	}
	_, err := fw.PlanStream(context.Background(), &errSegments{tbl: tbl}, key)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("reading segment 1")) {
		t.Fatalf("mid-stream error: %v", err)
	}
}

// TestPlanStreamProgress checks the per-segment progress callbacks.
func TestPlanStreamProgress(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 1000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	var stages []string
	var last int
	ctx := WithProgress(context.Background(), func(p Progress) {
		stages = append(stages, p.Stage)
		last = p.Done
	})
	if _, err := fw.PlanStream(ctx, tbl.Segments(300), key); err != nil {
		t.Fatal(err)
	}
	planTicks := 0
	for _, s := range stages {
		if s == "plan" {
			planTicks++
		}
	}
	if planTicks != 4 {
		t.Fatalf("plan progress ticks = %d (stages %v), want 4", planTicks, stages)
	}
	if last != 1000 {
		t.Fatalf("last Done = %d, want 1000", last)
	}
}
