package core

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/anonymity"
	"repro/internal/crypt"
	"repro/internal/datagen"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// appendFixture plans and applies a base table, then carves a delta
// batch out of the same synthetic distribution (rows the base has never
// seen).
func appendFixture(t *testing.T, baseRows, deltaRows int) (*Framework, *Protected, *relation.Table, crypt.WatermarkKey) {
	t.Helper()
	all, err := datagen.Generate(datagen.Config{Rows: baseRows + deltaRows, Seed: 77, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := all.Slice(0, baseRows)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := all.Slice(baseRows, baseRows+deltaRows)
	if err != nil {
		t.Fatal(err)
	}
	fw := testFramework(t)
	key := crypt.NewWatermarkKeyFromSecret("append owner", 25)
	prot, err := fw.Protect(base, key)
	if err != nil {
		t.Fatal(err)
	}
	return fw, prot, delta, key
}

// TestAppendDetectDisputeRoundTrip is the incremental-ingestion
// workflow: protect a base table, append a delta under the retained
// plan, and verify that detection and dispute over the published union
// still side with the owner.
func TestAppendDetectDisputeRoundTrip(t *testing.T) {
	fw, prot, delta, key := appendFixture(t, 4000, 600)
	plan := prot.Plan

	app, err := fw.Append(delta, &plan, key)
	if err != nil {
		t.Fatal(err)
	}
	if app.Table.NumRows() != delta.NumRows()-app.Suppressed {
		t.Fatalf("appended %d rows, want %d", app.Table.NumRows(), delta.NumRows())
	}
	if app.Plan.Rows != plan.Rows+app.Table.NumRows() {
		t.Fatalf("advanced plan rows = %d, want %d", app.Plan.Rows, plan.Rows+app.Table.NumRows())
	}

	// The published union: base + delta.
	union := prot.Table.Clone()
	if err := union.AppendTable(app.Table); err != nil {
		t.Fatal(err)
	}

	// The advanced plan's bin record describes exactly the union.
	unionBins := 0
	for _, n := range app.Plan.Bins {
		unionBins += n
	}
	if unionBins != union.NumRows() {
		t.Fatalf("plan bins cover %d rows, union has %d", unionBins, union.NumRows())
	}

	// Detection over old+new rows votes the owner's mark.
	det, err := fw.Detect(union, app.Plan.Provenance, key)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Match {
		t.Fatalf("mark not found in union (loss %v)", det.MarkLoss)
	}
	if det.Result.Stats.TuplesSelected <= prot.Embed.TuplesSelected {
		t.Error("union detection selected no tuples from the appended batch")
	}

	// An impostor key still fails.
	badDet, err := fw.Detect(union, app.Plan.Provenance, crypt.NewWatermarkKeyFromSecret("impostor", 25))
	if err != nil {
		t.Fatal(err)
	}
	if badDet.Match {
		t.Error("impostor key matched the union")
	}

	// Dispute over the union upholds the owner (§5.4).
	verdicts, err := fw.Dispute(union, app.Plan.Provenance, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts[0].Valid {
		t.Fatalf("owner dispute over the union failed: %+v", verdicts[0])
	}

	// A second nightly batch chains off the advanced plan.
	all, err := datagen.Generate(datagen.Config{Rows: 5200, Seed: 78, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := all.Slice(0, 400)
	if err != nil {
		t.Fatal(err)
	}
	next := app.Plan
	app2, err := fw.Append(second, &next, key)
	if err != nil {
		t.Fatal(err)
	}
	if app2.Plan.Rows != next.Rows+app2.Table.NumRows() {
		t.Fatalf("second append rows = %d, want %d", app2.Plan.Rows, next.Rows+app2.Table.NumRows())
	}
}

// TestAppendDeterministicAcrossWorkers pins the append transform to the
// same determinism contract as the full pipeline.
func TestAppendDeterministicAcrossWorkers(t *testing.T) {
	all, err := datagen.Generate(datagen.Config{Rows: 3000, Seed: 77, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := all.Slice(0, 2500)
	delta, _ := all.Slice(2500, 3000)
	key := crypt.NewWatermarkKeyFromSecret("append workers", 25)
	var baseline string
	for _, workers := range []int{1, 2, 8} {
		fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		prot, err := fw.Protect(base, key)
		if err != nil {
			t.Fatal(err)
		}
		plan := prot.Plan
		app, err := fw.Append(delta, &plan, key)
		if err != nil {
			t.Fatal(err)
		}
		got := csvOf(t, app.Table)
		if baseline == "" {
			baseline = got
		} else if got != baseline {
			t.Fatalf("workers=%d: append output differs", workers)
		}
	}
}

func TestAppendPlanDriftOutsideFrontier(t *testing.T) {
	fw, prot, delta, key := appendFixture(t, 2500, 10)
	plan := prot.Plan

	// A symptom outside the ontology cannot resolve to any planned leaf.
	bad := delta.Clone()
	ci, err := bad.Schema().Index(ontology.ColSymptom)
	if err != nil {
		t.Fatal(err)
	}
	bad.SetCellAt(0, ci, "martian flu")
	_, err = fw.Append(bad, &plan, key)
	if !errors.Is(err, ErrPlanDrift) {
		t.Fatalf("out-of-domain delta: %v, want ErrPlanDrift", err)
	}
	if !strings.Contains(err.Error(), "planned frontiers") {
		t.Errorf("drift error lacks frontier context: %v", err)
	}
}

func TestAppendPlanDriftThinNewBin(t *testing.T) {
	fw, prot, delta, key := appendFixture(t, 4000, 25)
	plan := prot.Plan

	// Baseline: this delta appends cleanly under the true plan.
	app, err := fw.Append(delta, &plan, key)
	if err != nil {
		t.Fatal(err)
	}

	// Find a bin the marked delta touches with fewer than k rows, then
	// hand the append a plan whose record has never published that bin —
	// the situation of a batch opening a fresh, under-populated value
	// combination. The append must refuse with ErrPlanDrift rather than
	// publish a bin below k.
	deltaBins, err := anonymity.Bins(app.Table, delta.Schema().QuasiColumns())
	if err != nil {
		t.Fatal(err)
	}
	thinBin := ""
	for _, bin := range sortedKeys(deltaBins) {
		if deltaBins[bin] < plan.K {
			thinBin = bin
			break
		}
	}
	if thinBin == "" {
		t.Fatal("every delta bin holds >= k rows; enlarge the delta to find a thin one")
	}
	doctored := plan
	doctored.Bins = make(map[string]int, len(plan.Bins))
	for bin, n := range plan.Bins {
		if bin != thinBin {
			doctored.Bins[bin] = n
		}
	}
	_, err = fw.Append(delta, &doctored, key)
	if !errors.Is(err, ErrPlanDrift) {
		t.Fatalf("thin new bin: %v, want ErrPlanDrift", err)
	}
	if !strings.Contains(err.Error(), "below k") {
		t.Errorf("drift error lacks bin context: %v", err)
	}

	// Under §5.1 boundary permutation the seamlessness guarantee is the
	// relaxed one (ApplyContext publishes below-K permuted bins the same
	// way), so the identical batch must not dead-end the incremental
	// path.
	permissive := doctored
	permissive.BoundaryPermutation = true
	if _, err := fw.Append(delta, &permissive, key); err != nil {
		t.Fatalf("thin new bin under boundary permutation: %v, want success", err)
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestAppendSchemaMismatch pins the quasi-column guard: a delta whose
// schema re-classifies (or reorders) a quasi column must be refused
// with ErrBadSchema — generalization would silently skip the column and
// the bin keys would stop matching the plan's record.
func TestAppendSchemaMismatch(t *testing.T) {
	fw, prot, delta, key := appendFixture(t, 2500, 50)
	plan := prot.Plan

	// Demote one quasi column to "other".
	cols := delta.Schema().Columns()
	for i := range cols {
		if cols[i].Name == ontology.ColDoctor {
			cols[i].Kind = relation.Other
		}
	}
	demoted, err := relation.NewSchema(cols)
	if err != nil {
		t.Fatal(err)
	}
	bad := relation.NewTable(demoted)
	for i := 0; i < delta.NumRows(); i++ {
		if err := bad.AppendRow(delta.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fw.Append(bad, &plan, key); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("demoted quasi column: %v, want ErrBadSchema", err)
	}

	// Reorder two quasi columns.
	cols = delta.Schema().Columns()
	qi := make([]int, 0, len(cols))
	for i, c := range cols {
		if c.Kind.IsQuasi() {
			qi = append(qi, i)
		}
	}
	cols[qi[0]], cols[qi[1]] = cols[qi[1]], cols[qi[0]]
	swapped, err := relation.NewSchema(cols)
	if err != nil {
		t.Fatal(err)
	}
	bad = relation.NewTable(swapped)
	row := make([]string, len(cols))
	for i := 0; i < delta.NumRows(); i++ {
		src := delta.Row(i)
		copy(row, src)
		row[qi[0]], row[qi[1]] = src[qi[1]], src[qi[0]]
		if err := bad.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fw.Append(bad, &plan, key); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("reordered quasi columns: %v, want ErrBadSchema", err)
	}
}

func TestAppendRequiresAppliedPlan(t *testing.T) {
	fw, _, delta, key := appendFixture(t, 2500, 100)

	// A pre-apply plan (PlanContext output) has no published bin record.
	fresh, err := fw.Plan(delta.Clone(), key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Append(delta, fresh, key); !errors.Is(err, ErrBadProvenance) {
		t.Fatalf("append under unapplied plan: %v, want ErrBadProvenance", err)
	}
	if _, err := fw.Append(delta, nil, key); !errors.Is(err, ErrBadProvenance) {
		t.Fatalf("append under nil plan: %v, want ErrBadProvenance", err)
	}
}
