package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/anonymity"
	"repro/internal/attack"
	"repro/internal/crypt"
	"repro/internal/datagen"
	"repro/internal/infoloss"
	"repro/internal/ontology"
	"repro/internal/ownership"
	"repro/internal/relation"
	"repro/internal/watermark"
)

func testFramework(t *testing.T) *Framework {
	t.Helper()
	fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func testData(t *testing.T, rows int) *relation.Table {
	t.Helper()
	tbl, err := datagen.Generate(datagen.Config{Rows: rows, Seed: 77, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewDefaults(t *testing.T) {
	fw, err := New(ontology.Trees(), Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fw.Config()
	if cfg.MarkBits != 20 || cfg.Duplication != 4 {
		t.Errorf("defaults: MarkBits=%d Duplication=%d", cfg.MarkBits, cfg.Duplication)
	}
	if !cfg.SaltPositionWithColumn {
		t.Error("column salt should default on")
	}
	if cfg.Quantum == 0 || cfg.Tau == 0 || cfg.LossThreshold == 0 {
		t.Error("dispute defaults missing")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{K: 5}); err == nil {
		t.Error("nil trees accepted")
	}
	if _, err := New(ontology.Trees(), Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(ontology.Trees(), Config{K: 5, MarkBits: -1}); err == nil {
		t.Error("negative MarkBits accepted")
	}
	if _, err := New(ontology.Trees(), Config{K: 5, Duplication: -1}); err == nil {
		t.Error("negative Duplication accepted")
	}
}

func TestProtectEndToEnd(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 4000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)

	p, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	// privacy: k-anonymity holds on the published table
	ok, err := anonymity.SatisfiesK(p.Table, tbl.Schema().QuasiColumns(), 15)
	if err != nil || !ok {
		t.Error("published table violates k-anonymity")
	}
	// seamlessness: no bin fell below k
	if p.BinStats.BelowK != 0 {
		t.Errorf("%d bins below k after watermarking", p.BinStats.BelowK)
	}
	// ownership: detection under the right key matches
	det, err := fw.Detect(p.Table, p.Provenance, key)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Match || det.MarkLoss != 0 {
		t.Errorf("clean detection: match=%v loss=%v", det.Match, det.MarkLoss)
	}
	// input untouched
	if v, _ := tbl.Cell(0, ontology.ColSSN); len(v) < 5 || v[3] != '-' {
		t.Error("Protect mutated the input table")
	}
	// the mark is the §5.4 commitment F(v)
	wm, v, err := ownership.OwnerMark(tbl, ontology.ColSSN, p.Provenance.Quantum, 20)
	if err != nil {
		t.Fatal(err)
	}
	if wm.String() != p.Provenance.Mark || v != p.Provenance.V {
		t.Error("provenance mark/statistic do not match the §5.4 derivation")
	}
}

func TestDetectWrongKeyFails(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 3000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	p, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	wrong := crypt.NewWatermarkKeyFromSecret("not-the-owner", 25)
	det, err := fw.Detect(p.Table, p.Provenance, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if det.Match {
		t.Errorf("wrong key matched (loss %v)", det.MarkLoss)
	}
}

func TestDetectSurvivesAttacks(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 6000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 20)
	p, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	attacked := p.Table.Clone()
	rng := rand.New(rand.NewSource(3))
	if _, err := attack.DeleteRandom(attacked, 0.3, rng); err != nil {
		t.Fatal(err)
	}
	det, err := fw.Detect(attacked, p.Provenance, key)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Match {
		t.Errorf("mark lost after 30%% deletion (loss %v)", det.MarkLoss)
	}
}

func TestProvenanceJSONRoundtrip(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 2000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	p, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p.Provenance)
	if err != nil {
		t.Fatal(err)
	}
	var back Provenance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// The full recovery chain: the round-tripped record must rebuild the
	// exact column specs before detection succeeds with them.
	specs, err := fw.SpecsFromProvenance(back)
	if err != nil {
		t.Fatal(err)
	}
	orig := fw.columnSpecs(p.Binning)
	if len(specs) != len(orig) {
		t.Fatalf("rebuilt %d specs, want %d", len(specs), len(orig))
	}
	for col, spec := range specs {
		o, ok := orig[col]
		if !ok {
			t.Fatalf("rebuilt spec for unknown column %s", col)
		}
		if !spec.UltiGen.Equal(o.UltiGen) || !spec.MaxGen.Equal(o.MaxGen) {
			t.Errorf("column %s: rebuilt frontiers differ from originals", col)
		}
	}
	det, err := fw.Detect(p.Table, back, key)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Match {
		t.Error("detection failed with roundtripped provenance")
	}
}

func TestSpecsFromProvenanceErrors(t *testing.T) {
	fw := testFramework(t)
	prov := Provenance{Columns: map[string]ColumnProvenance{"nope": {}}}
	if _, err := fw.SpecsFromProvenance(prov); err == nil {
		t.Error("unknown column accepted")
	}
	prov = Provenance{Columns: map[string]ColumnProvenance{
		ontology.ColAge: {Ulti: []string{"bogus"}, Max: []string{"bogus"}},
	}}
	if _, err := fw.SpecsFromProvenance(prov); err == nil {
		t.Error("bogus frontier values accepted")
	}
}

func TestDisputeOwnerWins(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 4000)
	ownerKey := crypt.NewWatermarkKeyFromSecret("owner", 20)
	p, err := fw.Protect(tbl, ownerKey)
	if err != nil {
		t.Fatal(err)
	}
	// A thief over-embeds his own mark and raises a rival claim.
	thiefKey := crypt.NewWatermarkKeyFromSecret("thief", 20)
	thiefV := 9.9e8
	thiefMark, err := ownership.MarkFromStatistic(thiefV, p.Provenance.Quantum, 20)
	if err != nil {
		t.Fatal(err)
	}
	stolen := p.Table.Clone()
	specs, err := fw.SpecsFromProvenance(p.Provenance)
	if err != nil {
		t.Fatal(err)
	}
	thiefParams, err := paramsFromProvenance(p.Provenance, thiefKey)
	if err != nil {
		t.Fatal(err)
	}
	thiefParams.Mark = thiefMark
	if _, err := watermark.Embed(stolen, p.Provenance.IdentCol, specs, thiefParams); err != nil {
		t.Fatal(err)
	}

	verdicts, err := fw.Dispute(stolen, p.Provenance, ownerKey, []ownership.Claim{{
		Claimant: "thief", V: thiefV, Key: thiefKey, Params: thiefParams,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	if !verdicts[0].Valid {
		t.Errorf("owner claim rejected: %+v", verdicts[0])
	}
	if verdicts[1].Valid {
		t.Errorf("thief claim accepted: %+v", verdicts[1])
	}
}

func TestProtectValidation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 100)
	if _, err := fw.Protect(tbl, crypt.WatermarkKey{}); err == nil {
		t.Error("empty key accepted")
	}
	// ident column override that does not exist
	bad, err := New(ontology.Trees(), Config{K: 5, IdentCol: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Protect(tbl, crypt.NewWatermarkKeyFromSecret("k", 10)); err == nil {
		t.Error("missing ident column accepted")
	}
}

func TestProtectBoundaryFallback(t *testing.T) {
	// Tight joint k-anonymity over five quasi columns pushes every
	// ultimate frontier onto the maximal nodes; Protect must fall back to
	// §5.1 boundary permutation, record it in the provenance, and still
	// roundtrip detection.
	metrics := &infoloss.Metrics{
		PerColumn: map[string]float64{ontology.ColAge: 0.45},
		Avg:       1,
	}
	fw, err := New(ontology.Trees(), Config{K: 25, AutoEpsilon: true, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	tbl := testData(t, 5000)
	key := crypt.NewWatermarkKeyFromSecret("boundary-owner", 30)
	p, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Provenance.BoundaryPermutation {
		t.Log("note: hierarchical bandwidth existed; boundary fallback not needed for this draw")
	}
	if p.Embed.BitsEmbedded == 0 {
		t.Fatal("no bits embedded even after fallback")
	}
	det, err := fw.Detect(p.Table, p.Provenance, key)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Match {
		t.Errorf("boundary-mode detection failed: loss %v", det.MarkLoss)
	}
}

func TestDetectBadProvenanceMark(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 300)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	p, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	bad := p.Provenance
	bad.Mark = "not-bits"
	if _, err := fw.Detect(p.Table, bad, key); err == nil {
		t.Error("garbage provenance mark accepted")
	}
	if _, err := fw.Dispute(p.Table, bad, key, nil); err == nil {
		t.Error("garbage provenance mark accepted by Dispute")
	}
}

func TestFrameworkAccessors(t *testing.T) {
	fw := testFramework(t)
	if len(fw.Trees()) != 5 {
		t.Errorf("Trees = %d", len(fw.Trees()))
	}
	if fw.Config().K != 15 {
		t.Errorf("Config.K = %d", fw.Config().K)
	}
}
