package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/anonymity"
	"repro/internal/binning"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/ownership"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// Segments is the streaming-table source ApplyStream and AppendStream
// consume: a sequence of bounded *relation.Table segments over one
// schema, terminated by io.EOF. relation.SegmentReader (CSV ingest) and
// relation.TableSegments (an in-memory table) both satisfy it.
//
// Segments may share dictionary backing (as SegmentReader's do); the
// consumers below never mutate a yielded segment in place.
type Segments interface {
	Schema() *relation.Schema
	Next() (*relation.Table, error)
}

// Streamed is the outcome of a streaming run: the statistics and the
// advanced plan of the in-memory counterpart, minus the materialized
// table — the protected rows went to the output writer.
type Streamed struct {
	// Plan is the effective (ApplyStream) or advanced (AppendStream)
	// plan, exactly as ApplyContext/AppendContext would return it.
	Plan Plan
	// Embed accumulates the watermarking agent's statistics over every
	// segment.
	Embed watermark.EmbedStats
	// BinStats compares the combined bins before and after watermarking
	// (ApplyStream only).
	BinStats anonymity.Stats
	// Rows and Segments count the protected output.
	Rows, Segments int
	// NewBins counts published bins the streamed batch created
	// (AppendStream only).
	NewBins int
	// Suppressed counts rows removed by the plan's recorded
	// aggressive-rule suppression.
	Suppressed int
}

// addBins accumulates tbl's joint quasi-column bins into dst.
func addBins(dst map[string]int, tbl *relation.Table, quasi []string) error {
	bins, err := anonymity.Bins(tbl, quasi)
	if err != nil {
		return err
	}
	for bin, n := range bins {
		dst[bin] += n
	}
	return nil
}

// addEmbed accumulates per-segment embedding counters.
func addEmbed(dst *watermark.EmbedStats, s watermark.EmbedStats) {
	dst.TuplesSelected += s.TuplesSelected
	dst.BitsEmbedded += s.BitsEmbedded
	dst.CellsChanged += s.CellsChanged
	dst.ZeroBandwidth += s.ZeroBandwidth
}

// ApplyStream executes a plan segment-at-a-time: each segment from src
// is suppressed (per the plan's record), transformed to the planned
// frontiers, watermarked, and written to out as CSV — so peak memory is
// bounded by the segment size, not the table size. The protected CSV is
// byte-identical to WriteCSV of ApplyContext's table on the same rows,
// for every segment size and worker count: the frozen plan makes the
// whole transform a pure per-row function.
//
// The verdicts ApplyContext issues on the full table are deferred to
// end-of-stream and checked on the combined bins: the planned k+ε
// floor, the no-bandwidth error, and the seamlessness guarantee. One
// difference is inherent to streaming: the §5.1 boundary-permutation
// fallback re-embeds the whole table, which a consumed stream cannot
// replay — ApplyStream reports ErrUnsatisfiable instead (re-plan with
// Config.BoundaryPermutation, or use the in-memory ApplyContext).
//
// On any error the CSV already written to out is partial and must be
// discarded by the caller.
func (f *Framework) ApplyStream(ctx context.Context, src Segments, plan *Plan, key crypt.WatermarkKey, out io.Writer) (*Streamed, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil segment source: %w", ErrBadConfig)
	}
	if plan == nil {
		return nil, fmt.Errorf("core: nil plan: %w", ErrBadProvenance)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	cipher, err := crypt.NewCipher(key.Enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	schema := src.Schema()
	identCol := plan.IdentCol
	if _, err := schema.Index(identCol); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadSchema)
	}
	if err := checkQuasiCols(schema, plan); err != nil {
		return nil, err
	}
	columns, err := f.SpecsFromProvenance(plan.Provenance)
	if err != nil {
		return nil, err
	}
	ultiGens := make(map[string]dht.GenSet, len(columns))
	for col, spec := range columns {
		ultiGens[col] = spec.UltiGen
	}
	params, err := paramsFromProvenance(plan.Provenance, key)
	if err != nil {
		return nil, err
	}
	params.Workers = f.cfg.Workers
	quasi := schema.QuasiColumns()

	res := &Streamed{}
	sw := relation.NewSegmentWriter(out, schema)
	before := make(map[string]int)
	after := make(map[string]int)
	for {
		seg, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		work := seg
		if len(plan.Suppress) > 0 {
			work = seg.Clone()
			n, err := binning.Suppress(work, f.trees, plan.Suppress)
			if err != nil {
				return nil, fmt.Errorf("core: replaying plan suppression: %w: %w", err, ErrBadProvenance)
			}
			res.Suppressed += n
		}
		// The per-segment k check is disabled (effective k 0): a
		// segment's bins may be thin as long as the combined table is
		// safe — verified below, at end-of-stream.
		binned, err := binning.TransformContext(ctx, work, ultiGens, 0, cipher, f.cfg.Workers)
		if err != nil {
			return nil, err
		}
		if err := addBins(before, binned, quasi); err != nil {
			return nil, err
		}
		// The embed mutates the (private) transform output in place; the
		// per-row walk depends only on the encrypted identifier cell, so
		// segmentation cannot change which bits land where.
		segStats, err := watermark.EmbedContext(ctx, binned, identCol, columns, params)
		if err != nil {
			return nil, err
		}
		addEmbed(&res.Embed, segStats)
		if err := addBins(after, binned, quasi); err != nil {
			return nil, err
		}
		if err := sw.WriteSegment(binned); err != nil {
			return nil, err
		}
		res.Rows += binned.NumRows()
		res.Segments++
		reportProgress(ctx, Progress{Stage: "stream", Done: res.Rows})
	}
	if err := sw.Flush(); err != nil {
		return nil, err
	}

	// End-of-stream verdicts, on the combined bins.
	if plan.EffectiveK > 0 && res.Rows > 0 {
		for _, n := range before {
			if n < plan.EffectiveK {
				return nil, fmt.Errorf("core: streamed output violates k=%d anonymity: %w", plan.EffectiveK, ErrUnsatisfiable)
			}
		}
	}
	if res.Embed.BitsEmbedded == 0 {
		switch {
		case res.Embed.TuplesSelected > 0 && !params.BoundaryPermutation:
			return nil, fmt.Errorf(
				"core: no watermark bandwidth under the planned frontiers, and the §5.1 boundary-permutation fallback cannot replay a consumed stream; re-plan with Config.BoundaryPermutation or use the in-memory apply: %w", ErrUnsatisfiable)
		case res.Embed.TuplesSelected > 0:
			return nil, fmt.Errorf(
				"core: no watermark bandwidth: every frontier sits at the usage metrics with no permutable siblings; relax the metrics or lower K: %w", ErrUnsatisfiable)
		case !params.BoundaryPermutation:
			// No tuple was selected at all: the in-memory path would
			// flip the fallback on with no observable table change;
			// mirror its effective plan.
			params.BoundaryPermutation = true
		}
	}
	res.BinStats = anonymity.Compare(before, after, plan.K)
	if res.BinStats.BelowK > 0 && !params.BoundaryPermutation {
		return nil, fmt.Errorf(
			"core: watermarking pushed %d bins below k=%d; increase Epsilon or enable AutoEpsilon: %w",
			res.BinStats.BelowK, plan.K, ErrUnsatisfiable)
	}

	eff := *plan
	eff.rt = nil
	eff.BoundaryPermutation = params.BoundaryPermutation
	eff.Bins = after
	eff.Rows = res.Rows
	res.Plan = eff
	return res, nil
}

// AppendStream protects a new batch of rows under an existing plan,
// segment-at-a-time — AppendContext with bounded memory: each segment
// is suppressed, transformed, watermarked and written to out as CSV,
// and the combined-bin k-safety verdict is issued at end-of-stream over
// the union of all segments, exactly as AppendContext issues it over
// the whole delta. The emitted CSV is byte-identical to WriteCSV of
// AppendContext's table on the same rows.
//
// On any error — including the end-of-stream ErrPlanDrift verdict — the
// CSV already written to out is partial (or unsafe to publish) and must
// be discarded by the caller.
func (f *Framework) AppendStream(ctx context.Context, src Segments, plan *Plan, key crypt.WatermarkKey, out io.Writer) (*Streamed, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil segment source: %w", ErrBadConfig)
	}
	if plan == nil {
		return nil, fmt.Errorf("core: nil plan: %w", ErrBadProvenance)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(plan.Bins) == 0 {
		return nil, fmt.Errorf(
			"core: plan carries no published bin record; apply it first (ApplyContext/ProtectContext) and retain the returned plan: %w", ErrBadProvenance)
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	cipher, err := crypt.NewCipher(key.Enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	schema := src.Schema()
	if _, err := schema.Index(plan.IdentCol); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadSchema)
	}
	if err := checkQuasiCols(schema, plan); err != nil {
		return nil, err
	}
	quasi := schema.QuasiColumns()
	columns, err := f.SpecsFromProvenance(plan.Provenance)
	if err != nil {
		return nil, err
	}
	ultiGens := make(map[string]dht.GenSet, len(columns))
	for col, spec := range columns {
		ultiGens[col] = spec.UltiGen
	}
	params, err := paramsFromProvenance(plan.Provenance, key)
	if err != nil {
		return nil, err
	}
	params.Workers = f.cfg.Workers

	res := &Streamed{}
	sw := relation.NewSegmentWriter(out, schema)
	deltaBins := make(map[string]int)
	for {
		seg, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		work := seg
		if len(plan.Suppress) > 0 {
			work = seg.Clone()
			n, err := binning.Suppress(work, f.trees, plan.Suppress)
			if err != nil {
				return nil, fmt.Errorf("core: replaying plan suppression: %w: %w", err, ErrBadProvenance)
			}
			res.Suppressed += n
		}
		marked, err := binning.TransformContext(ctx, work, ultiGens, 0, cipher, f.cfg.Workers)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			return nil, fmt.Errorf("core: delta outside planned frontiers: %w: %w", err, ErrPlanDrift)
		}
		segStats, err := watermark.EmbedContext(ctx, marked, plan.IdentCol, columns, params)
		if err != nil {
			return nil, err
		}
		addEmbed(&res.Embed, segStats)
		if err := addBins(deltaBins, marked, quasi); err != nil {
			return nil, err
		}
		if err := sw.WriteSegment(marked); err != nil {
			return nil, err
		}
		res.Rows += marked.NumRows()
		res.Segments++
		reportProgress(ctx, Progress{Stage: "stream", Done: res.Rows})
	}
	if err := sw.Flush(); err != nil {
		return nil, err
	}

	// Combined-bin k-safety on the published union, exactly as
	// AppendContext verifies it: existing bins only grow; brand-new bins
	// must carry at least K streamed rows of their own.
	newBins := 0
	var thin []string
	for bin, n := range deltaBins {
		if plan.Bins[bin] > 0 {
			continue
		}
		newBins++
		if n < plan.K && !plan.BoundaryPermutation {
			thin = append(thin, fmt.Sprintf("%s (%d)", strings.ReplaceAll(bin, "\x1f", "|"), n))
		}
	}
	if len(thin) > 0 {
		sort.Strings(thin)
		return nil, fmt.Errorf(
			"core: appending would publish %d new bin(s) below k=%d — %s; re-plan over the combined table: %w",
			len(thin), plan.K, strings.Join(thin, ", "), ErrPlanDrift)
	}
	res.NewBins = newBins

	eff := *plan
	eff.rt = nil
	bins := make(map[string]int, len(plan.Bins)+newBins)
	for bin, n := range plan.Bins {
		bins[bin] = n
	}
	for bin, n := range deltaBins {
		bins[bin] += n
	}
	eff.Bins = bins
	eff.Rows = plan.Rows + res.Rows
	res.Plan = eff
	return res, nil
}

// PlannedStream is the outcome of PlanStream: the plan plus ingest
// counters. Unlike PlanContext's result, the plan carries no runtime
// fast path — applying it (ApplyContext or ApplyStream) replays the
// recorded suppression.
type PlannedStream struct {
	// Plan is byte-identical (MarshalPlan) to the plan PlanContext
	// would produce over the materialized concatenation of the
	// segments.
	Plan *Plan
	// Rows and Segments count the consumed input.
	Rows, Segments int
}

// PlanStream computes a protection plan in one pass over a segment
// source with memory bounded by the number of distinct quasi-tuples,
// not rows: each segment is folded into a binning.Sketch (per-column
// leaf histograms plus a joint quasi-tuple count table) and an
// ownership.StatAccum over the identifying column, then discarded. The
// frontier search, the aggressive-rule suppression replay and the
// conservative-ε re-search all run over the sketch and produce exactly
// the plan PlanContext would — the paper's planning pass without ever
// materializing the table.
func (f *Framework) PlanStream(ctx context.Context, src Segments, key crypt.WatermarkKey) (*PlannedStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil segment source: %w", ErrBadConfig)
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	schema := src.Schema()
	identCol, err := f.identCol(schema)
	if err != nil {
		return nil, err
	}
	identIdx, err := schema.Index(identCol)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadSchema)
	}
	sk, err := binning.NewSketch(schema, f.trees)
	if err != nil {
		return nil, err
	}

	var accum ownership.StatAccum
	res := &PlannedStream{}
	for {
		seg, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading segment %d: %w", res.Segments, err)
		}
		if err := sk.Add(seg); err != nil {
			return nil, err
		}
		dict := seg.DictValues(identIdx)
		for _, code := range seg.Codes(identIdx) {
			accum.Add(dict[code])
		}
		res.Rows += seg.NumRows()
		res.Segments++
		reportProgress(ctx, Progress{Stage: "plan", Done: res.Rows})
	}

	// Ownership mark from the accumulated identifying column (§5.4),
	// numerically identical to the materialized computation: the
	// accumulator folds values in row order.
	v, err := accum.Statistic()
	if err != nil {
		return nil, fmt.Errorf("core: deriving ownership mark: %w: %w", err, ErrBadSchema)
	}
	mark, err := ownership.MarkFromStatistic(v, f.cfg.Quantum, f.cfg.MarkBits)
	if err != nil {
		return nil, fmt.Errorf("core: deriving ownership mark: %w: %w", err, ErrBadSchema)
	}

	plan, err := f.planFromSketch(ctx, sk, schema.QuasiColumns(), identCol, mark, v, nil)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	return res, nil
}
