package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/binning"
	"repro/internal/crypt"
	"repro/internal/ontology"
)

// TestSentinelErrors pins the errors.Is contract the service layer
// depends on: every classifiable failure wraps exactly one sentinel, so
// HTTP status mapping needs no string matching.
func TestSentinelErrors(t *testing.T) {
	trees := ontology.Trees()
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)

	t.Run("bad config", func(t *testing.T) {
		if _, err := New(trees, Config{K: 0}); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("K=0: got %v, want ErrBadConfig", err)
		}
		if _, err := New(nil, Config{K: 5}); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("no trees: got %v, want ErrBadConfig", err)
		}
		if _, err := New(trees, Config{K: 5, NoColumnSalt: true, SaltPositionWithColumn: true}); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("salt conflict: got %v, want ErrBadConfig", err)
		}
	})

	t.Run("bad key", func(t *testing.T) {
		fw := testFramework(t)
		tbl := testData(t, 200)
		bad := key
		bad.K2 = bad.K1 // the paper forbids correlated subkeys
		if _, err := fw.Protect(tbl, bad); !errors.Is(err, ErrBadKey) {
			t.Fatalf("K1=K2: got %v, want ErrBadKey", err)
		}
		if _, err := fw.Detect(tbl, Provenance{}, bad); !errors.Is(err, ErrBadKey) {
			t.Fatalf("detect with K1=K2: got %v, want ErrBadKey", err)
		}
	})

	t.Run("bad schema", func(t *testing.T) {
		fw, err := New(trees, Config{K: 5, IdentCol: "no_such_column"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Protect(testData(t, 200), key); !errors.Is(err, ErrBadSchema) {
			t.Fatalf("missing ident col: got %v, want ErrBadSchema", err)
		}
	})

	t.Run("bad provenance", func(t *testing.T) {
		fw := testFramework(t)
		prov := Provenance{
			IdentCol:    "ssn",
			Mark:        "0101",
			Duplication: 4,
			Columns:     map[string]ColumnProvenance{"no_such_column": {}},
		}
		if _, err := fw.SpecsFromProvenance(prov); !errors.Is(err, ErrBadProvenance) {
			t.Fatalf("unknown column: got %v, want ErrBadProvenance", err)
		}
		prov.Columns = nil
		prov.Mark = "xyz"
		if _, err := fw.Detect(testData(t, 50), prov, key); !errors.Is(err, ErrBadProvenance) {
			t.Fatalf("malformed mark: got %v, want ErrBadProvenance", err)
		}
	})

	t.Run("unsatisfiable", func(t *testing.T) {
		// 3 rows can never satisfy k=10, even fully generalized to the
		// tree roots.
		fw, err := New(trees, Config{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		_, err = fw.Protect(testData(t, 3), key)
		if !errors.Is(err, ErrUnsatisfiable) {
			t.Fatalf("3 rows at k=10: got %v, want ErrUnsatisfiable", err)
		}
		if !errors.Is(err, binning.ErrUnsatisfiable) {
			t.Fatal("core.ErrUnsatisfiable must be the binning sentinel")
		}
	})

	t.Run("key mismatch", func(t *testing.T) {
		fw := testFramework(t)
		prot, err := fw.Protect(testData(t, 500), key)
		if err != nil {
			t.Fatal(err)
		}
		wrong := crypt.NewWatermarkKeyFromSecret("not-the-owner", 25)
		if _, err := fw.DecryptIdentifiers(context.Background(), prot.Table, "", wrong); !errors.Is(err, ErrKeyMismatch) {
			t.Fatalf("wrong key: got %v, want ErrKeyMismatch", err)
		}
		// The right key round-trips the identifying column.
		dec, err := fw.DecryptIdentifiers(context.Background(), prot.Table, "", key)
		if err != nil {
			t.Fatal(err)
		}
		orig := testData(t, 500)
		for i := 0; i < 500; i++ {
			want, _ := orig.Cell(i, "ssn")
			got, _ := dec.Cell(i, "ssn")
			if want != got {
				t.Fatalf("row %d: decrypted %q, want %q", i, got, want)
			}
		}
	})
}
