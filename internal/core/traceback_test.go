package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/crypt"
	"repro/internal/ontology"
)

const tracebackSecret = "master outsourcing secret"

func fingerprintFixture(t *testing.T, workers int, ids ...string) (*Framework, []FingerprintResult) {
	t.Helper()
	fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	tbl := testData(t, 1500)
	recipients := make([]Recipient, len(ids))
	for i, id := range ids {
		recipients[i] = Recipient{ID: id, Key: crypt.RecipientWatermarkKey(tracebackSecret, id, 20)}
	}
	results, err := fw.Fingerprint(tbl, recipients)
	if err != nil {
		t.Fatal(err)
	}
	return fw, results
}

func candidatesOf(results []FingerprintResult) []Candidate {
	cands := make([]Candidate, len(results))
	for i, r := range results {
		cands[i] = Candidate{
			ID:         r.RecipientID,
			Provenance: r.Protected.Provenance,
			Key:        crypt.RecipientWatermarkKey(tracebackSecret, r.RecipientID, 20),
		}
	}
	return cands
}

func TestFingerprintDistinctCopiesSharedFrontiers(t *testing.T) {
	_, results := fingerprintFixture(t, 0, "hospital-a", "hospital-b", "hospital-c")
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	marks := map[string]bool{}
	csvs := map[string]bool{}
	for _, r := range results {
		if r.Protected.Embed.BitsEmbedded == 0 {
			t.Fatalf("recipient %s: no bits embedded", r.RecipientID)
		}
		marks[r.Protected.Provenance.Mark] = true
		var sb strings.Builder
		if err := r.Protected.Table.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		csvs[sb.String()] = true
		// All copies share the planned frontiers and bin record baseline.
		if !reflect.DeepEqual(r.Protected.Provenance.Columns, results[0].Protected.Provenance.Columns) {
			t.Errorf("recipient %s: frontiers differ from recipient %s", r.RecipientID, results[0].RecipientID)
		}
		if r.Protected.Provenance.V != results[0].Protected.Provenance.V {
			t.Errorf("recipient %s: statistic differs", r.RecipientID)
		}
	}
	if len(marks) != 3 {
		t.Errorf("want 3 distinct recipient marks, got %d", len(marks))
	}
	if len(csvs) != 3 {
		t.Errorf("want 3 distinct marked tables, got %d", len(csvs))
	}
}

func TestFingerprintValidation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 200)
	key := crypt.RecipientWatermarkKey(tracebackSecret, "a", 10)
	if _, err := fw.Fingerprint(tbl, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no recipients: got %v", err)
	}
	if _, err := fw.Fingerprint(tbl, []Recipient{{ID: "", Key: key}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty ID: got %v", err)
	}
	dup := []Recipient{{ID: "a", Key: key}, {ID: "a", Key: key}}
	if _, err := fw.Fingerprint(tbl, dup); !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate ID: got %v", err)
	}
	if _, err := fw.Fingerprint(tbl, []Recipient{{ID: "a"}}); !errors.Is(err, ErrBadKey) {
		t.Errorf("invalid key: got %v", err)
	}
}

func TestTracebackNamesTheLeaker(t *testing.T) {
	fw, results := fingerprintFixture(t, 0, "hospital-a", "hospital-b", "hospital-c")
	cands := candidatesOf(results)

	// Leak hospital-b's copy, with a 30% alteration attack on top.
	leak := results[1].Protected.Table.Clone()
	specs, err := fw.SpecsFromProvenance(results[1].Protected.Provenance)
	if err != nil {
		t.Fatal(err)
	}
	pools := map[string][]string{}
	for col, spec := range specs {
		pools[col] = spec.UltiGen.Values()
	}
	if _, err := attack.AlterSubset(leak, pools, 0.3, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}

	tb, err := fw.Traceback(leak, cands)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Culprit != "hospital-b" {
		t.Fatalf("culprit = %q, want hospital-b (verdicts: %+v)", tb.Culprit, tb.Verdicts)
	}
	if tb.Matches != 1 {
		t.Errorf("matches = %d, want 1", tb.Matches)
	}
	if len(tb.Verdicts) != 3 || tb.Verdicts[0].RecipientID != "hospital-b" {
		t.Fatalf("verdicts not ranked with the leaker first: %+v", tb.Verdicts)
	}
	for _, v := range tb.Verdicts[1:] {
		if v.Match {
			t.Errorf("innocent recipient %s matched (loss %.3f)", v.RecipientID, v.MarkLoss)
		}
		if v.MatchRatio >= tb.Verdicts[0].MatchRatio {
			t.Errorf("innocent %s ranked at or above the leaker", v.RecipientID)
		}
	}
}

// TestTracebackMatchesIndependentDetect pins the sharing optimization:
// each traceback verdict must be bit-identical to an independent
// DetectContext run under the same provenance and key.
func TestTracebackMatchesIndependentDetect(t *testing.T) {
	fw, results := fingerprintFixture(t, 0, "hospital-a", "hospital-b")
	cands := candidatesOf(results)
	leak := results[0].Protected.Table

	tb, err := fw.Traceback(leak, cands)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]TracebackVerdict{}
	for _, v := range tb.Verdicts {
		byID[v.RecipientID] = v
	}
	for _, c := range cands {
		det, err := fw.Detect(leak, c.Provenance, c.Key)
		if err != nil {
			t.Fatal(err)
		}
		v := byID[c.ID]
		if v.Mark != det.Result.Mark.String() {
			t.Errorf("candidate %s: traceback mark %s != detect mark %s", c.ID, v.Mark, det.Result.Mark.String())
		}
		if v.MarkLoss != det.MarkLoss {
			t.Errorf("candidate %s: traceback loss %v != detect loss %v", c.ID, v.MarkLoss, det.MarkLoss)
		}
		if v.Match != det.Match {
			t.Errorf("candidate %s: traceback match %v != detect match %v", c.ID, v.Match, det.Match)
		}
		if v.VotesCast != det.Result.Stats.VotesCast {
			t.Errorf("candidate %s: votes %d != %d", c.ID, v.VotesCast, det.Result.Stats.VotesCast)
		}
	}
	if tb.Culprit != "hospital-a" {
		t.Errorf("culprit = %q, want hospital-a", tb.Culprit)
	}
}

// TestTracebackWorkersDeterministic locks the ranked report across
// worker counts.
func TestTracebackWorkersDeterministic(t *testing.T) {
	var baseline *Traceback
	for _, workers := range []int{1, 2, 8} {
		fw, results := fingerprintFixture(t, workers, "h-a", "h-b", "h-c", "h-d")
		leak := results[2].Protected.Table
		tb, err := fw.Traceback(leak, candidatesOf(results))
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = tb
			if tb.Culprit != "h-c" {
				t.Fatalf("culprit = %q, want h-c", tb.Culprit)
			}
			continue
		}
		if !reflect.DeepEqual(tb, baseline) {
			t.Errorf("workers=%d: traceback report differs from workers=1", workers)
		}
	}
}

// TestTracebackOverAppendedUnion drives the PR 4 incremental path into
// traceback: a recipient's copy grows by an appended batch under its
// frozen plan, and traceback over the union still names that recipient.
func TestTracebackOverAppendedUnion(t *testing.T) {
	fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	all := testData(t, 1800)
	base, err := all.Slice(0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := all.Slice(1500, 1800)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"clinic-a", "clinic-b", "clinic-c"}
	recipients := make([]Recipient, len(ids))
	for i, id := range ids {
		recipients[i] = Recipient{ID: id, Key: crypt.RecipientWatermarkKey(tracebackSecret, id, 20)}
	}
	results, err := fw.Fingerprint(base, recipients)
	if err != nil {
		t.Fatal(err)
	}

	// clinic-b's copy ingests the delta under its own frozen plan.
	leakPlan := results[1].Protected.Plan
	app, err := fw.Append(delta, &leakPlan, recipients[1].Key)
	if err != nil {
		t.Fatal(err)
	}
	union := results[1].Protected.Table.Clone()
	if err := union.AppendTable(app.Table); err != nil {
		t.Fatal(err)
	}

	tb, err := fw.Traceback(union, candidatesOf(results))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Culprit != "clinic-b" {
		t.Fatalf("culprit over the appended union = %q, want clinic-b (verdicts: %+v)", tb.Culprit, tb.Verdicts)
	}
	if tb.Verdicts[0].MarkLoss > 0.05 {
		t.Errorf("leaker loss over the union = %.3f, want near zero", tb.Verdicts[0].MarkLoss)
	}
}

func TestTracebackValidation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 200)
	key := crypt.RecipientWatermarkKey(tracebackSecret, "a", 10)
	if _, err := fw.Traceback(tbl, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no candidates: got %v", err)
	}
	if _, err := fw.Traceback(tbl, []Candidate{{ID: "", Key: key}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty ID: got %v", err)
	}
	dup := []Candidate{{ID: "a", Key: key}, {ID: "a", Key: key}}
	if _, err := fw.Traceback(tbl, dup); !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate ID: got %v", err)
	}
	if _, err := fw.Traceback(tbl, []Candidate{{ID: "a"}}); !errors.Is(err, ErrBadKey) {
		t.Errorf("invalid key: got %v", err)
	}
}

func TestTracebackCancellation(t *testing.T) {
	fw, results := fingerprintFixture(t, 2, "h-a", "h-b")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fw.TracebackContext(ctx, results[0].Protected.Table, candidatesOf(results))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled traceback: got %v", err)
	}
}

func TestRecipientPlanDerivation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 400)
	key := crypt.RecipientWatermarkKey(tracebackSecret, "a", 10)
	plan, err := fw.Plan(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	rpA, err := RecipientPlan(plan, "a")
	if err != nil {
		t.Fatal(err)
	}
	rpA2, err := RecipientPlan(plan, "a")
	if err != nil {
		t.Fatal(err)
	}
	rpB, err := RecipientPlan(plan, "b")
	if err != nil {
		t.Fatal(err)
	}
	if rpA.Mark != rpA2.Mark {
		t.Error("recipient plan derivation is not deterministic")
	}
	if rpA.Mark == rpB.Mark || rpA.Mark == plan.Mark {
		t.Error("recipient marks must be distinct from each other and from the owner mark")
	}
	if rpA.V != plan.V || len(rpA.Mark) != len(plan.Mark) {
		t.Error("recipient plan must keep the statistic and mark length")
	}
	if _, err := RecipientPlan(plan, ""); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty recipient ID: got %v", err)
	}
	if _, err := RecipientPlan(nil, "a"); !errors.Is(err, ErrBadProvenance) {
		t.Errorf("nil plan: got %v", err)
	}
}

// TestTracebackMixedPlanGroups exercises the grouping path: candidates
// whose provenance comes from different plans (different frontiers must
// not share verdict tables).
func TestTracebackMixedPlanGroups(t *testing.T) {
	fw, results := fingerprintFixture(t, 0, "h-a", "h-b")
	cands := candidatesOf(results)

	// A third candidate from an unrelated plan over different data.
	other := testData(t, 900)
	otherKey := crypt.RecipientWatermarkKey("another secret", "h-x", 15)
	prot, err := fw.Protect(other, otherKey)
	if err != nil {
		t.Fatal(err)
	}
	cands = append(cands, Candidate{ID: "h-x", Provenance: prot.Provenance, Key: otherKey})

	leak := results[0].Protected.Table
	tb, err := fw.Traceback(leak, cands)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Culprit != "h-a" {
		t.Fatalf("culprit = %q, want h-a", tb.Culprit)
	}
	for _, v := range tb.Verdicts {
		if v.RecipientID == "h-x" && v.Match {
			t.Error("candidate from an unrelated plan matched the leak")
		}
	}
}
