package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/crypt"
	"repro/internal/ontology"
)

// TestProtectContextPreCancelled is the request-scoped API's promptness
// contract: a Protect on a 20k-row table under an already-cancelled
// context must return context.Canceled before doing the heavy pipeline
// work, for both the sequential and the fanned-out worker configuration.
func TestProtectContextPreCancelled(t *testing.T) {
	tbl := testData(t, 20_000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	for _, workers := range []int{1, 8} {
		fw, err := New(ontology.Trees(), Config{K: 20, AutoEpsilon: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		prot, err := fw.ProtectContext(ctx, tbl, key)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got (%v, %v), want context.Canceled", workers, prot, err)
		}
		// An uncancelled 20k-row Protect takes seconds; a pre-cancelled
		// one must return in a small fraction of that.
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("workers=%d: cancelled Protect took %v", workers, elapsed)
		}
	}
}

func TestProtectContextMidRunCancel(t *testing.T) {
	tbl := testData(t, 20_000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	fw, err := New(ontology.Trees(), Config{K: 20, AutoEpsilon: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := fw.ProtectContext(ctx, tbl, key); !errors.Is(err, context.Canceled) {
		// The pipeline may legitimately finish before the timer fires on
		// a fast machine — but then err must be nil, not something else.
		if err != nil {
			t.Fatalf("mid-run cancel surfaced unexpected error: %v", err)
		}
	}
}

func TestDetectContextPreCancelled(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 2_000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.DetectContext(ctx, prot.Table, prot.Provenance, key); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := fw.DisputeContext(ctx, prot.Table, prot.Provenance, key, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("dispute: got %v, want context.Canceled", err)
	}
}

// TestContextFormsMatchPlain pins the wrapper contract: the plain
// signatures are the Background-context forms, byte-identical results
// included.
func TestContextFormsMatchPlain(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 1_500)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	plain, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := fw.ProtectContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Provenance.Mark != ctxed.Provenance.Mark {
		t.Fatal("ProtectContext(Background) diverged from Protect")
	}
	for i := 0; i < plain.Table.NumRows(); i++ {
		for c := 0; c < plain.Table.Schema().NumColumns(); c++ {
			if plain.Table.CellAt(i, c) != ctxed.Table.CellAt(i, c) {
				t.Fatalf("cell (%d,%d) diverged", i, c)
			}
		}
	}
	det, err := fw.DetectContext(context.Background(), ctxed.Table, ctxed.Provenance, key)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Match {
		t.Fatal("DetectContext missed the mark on a clean table")
	}
}
