// Package core implements the paper's unified protection framework for
// outsourced medical data (Section 3, Figure 2): a binning agent that
// transforms the table to satisfy the k-anonymity specification under
// usage metrics, followed by a watermarking agent that embeds an
// owner-specific mark into the binned data. The output simultaneously
// protects individual privacy (no bin smaller than k) and data ownership
// (a key-protected, attack-resilient mark whose value commits to a
// statistic of the encrypted identifiers, resolving the rightful
// ownership problem of §5.4).
package core

import (
	"context"
	"fmt"

	"repro/internal/anonymity"
	"repro/internal/binning"
	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/infoloss"
	"repro/internal/ownership"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// Config parameterizes the framework. Zero values get sensible defaults
// from New: MarkBits 20 (as in §7.2), Duplication 4, Quantum 1e6, Tau
// 5e7, LossThreshold 0.15, SaltPositionWithColumn true.
type Config struct {
	// K is the k-anonymity specification parameter.
	K int
	// Epsilon is the §6 slack added to K during binning so watermarking
	// cannot push a bin below K. Ignored when AutoEpsilon is set.
	Epsilon int
	// AutoEpsilon computes the paper's conservative ε = (s/S)·|wmd| from
	// a first binning pass, then re-bins at K+ε.
	AutoEpsilon bool
	// MaxGens optionally gives the usage metrics directly as maximal
	// generalization nodes (the simplification §7 uses).
	MaxGens map[string]dht.GenSet
	// Metrics optionally gives Equation (4) bounds instead.
	Metrics *infoloss.Metrics
	// Strategy and EnumLimit control multi-attribute binning.
	Strategy  binning.Strategy
	EnumLimit int
	// Aggressive selects the sketched aggressive mono-binning rule.
	Aggressive bool
	// IdentCol names the identifying column used as the watermark anchor;
	// empty selects the schema's sole identifying column.
	IdentCol string
	// MarkBits is the mark length |wm| (default 20).
	MarkBits int
	// Duplication is the replication factor l (default 4).
	Duplication int
	// Quantum is the quantization step of the ownership function F.
	Quantum float64
	// Tau is the statistic tolerance τ used in disputes.
	Tau float64
	// LossThreshold is the maximal mark loss accepted as a match.
	LossThreshold float64
	// WeightedVoting and BoundaryPermutation are passed to the
	// watermarking agent (see watermark.Params).
	WeightedVoting      bool
	BoundaryPermutation bool
	// NoColumnSalt disables the default column salt in the wmd-position
	// hash (DESIGN.md deviation 5), restoring the paper's literal
	// single-column addressing. It is the single source of truth for the
	// salt policy: New derives the effective SaltPositionWithColumn as
	// !NoColumnSalt, and rejects configurations that set both fields.
	NoColumnSalt bool
	// SaltPositionWithColumn is derived by New (= !NoColumnSalt) and is
	// only exported so the effective configuration and the provenance
	// record can carry it. Do not set it directly: a true value combined
	// with NoColumnSalt is a validation error, and any other explicit
	// value is overwritten by the derivation.
	SaltPositionWithColumn bool
	// Workers bounds the goroutines the pipeline fans out to: the
	// exhaustive multi-attribute binning search, watermark embedding and
	// detection all shard their work across it (0 = GOMAXPROCS,
	// 1 = sequential). Outputs are identical for every worker count.
	Workers int
	// Chunk is the row count of one streaming segment — the unit the
	// service and CLI layers feed ApplyStream/AppendStream, and the
	// bound on the streaming data plane's resident row set. New defaults
	// 0 to relation.DefaultChunk and rejects values below 1. Output is
	// byte-identical for every chunk size.
	Chunk int
}

// ColumnProvenance records one column's frontiers in portable form.
type ColumnProvenance struct {
	Ulti []string `json:"ulti"`
	Max  []string `json:"max"`
}

// Provenance is everything (besides the secret key) the owner must retain
// to later detect the mark or argue a dispute. It is JSON-serializable;
// it contains no key material.
type Provenance struct {
	IdentCol               string                      `json:"ident_col"`
	K                      int                         `json:"k"`
	Epsilon                int                         `json:"epsilon"`
	Mark                   string                      `json:"mark"` // '0'/'1' runes
	V                      float64                     `json:"v"`    // the §5.4 statistic
	Quantum                float64                     `json:"quantum"`
	Duplication            int                         `json:"duplication"`
	WeightedVoting         bool                        `json:"weighted_voting,omitempty"`
	SaltPositionWithColumn bool                        `json:"salt_position_with_column,omitempty"`
	BoundaryPermutation    bool                        `json:"boundary_permutation,omitempty"`
	Columns                map[string]ColumnProvenance `json:"columns"`
}

// Protected is the outcome of Protect.
type Protected struct {
	// Table is the outsourcing-ready table: binned and watermarked.
	Table *relation.Table
	// Provenance is the owner's detection/dispute record.
	Provenance Provenance
	// Plan is the effective protection plan: the input plan with the
	// §5.1 boundary-permutation decision actually taken and the
	// published bin record (Bins/Rows) filled in. Retain it (it is a
	// superset of Provenance) to protect later batches with
	// AppendContext.
	Plan Plan
	// Binning exposes the binning agent's result (frontiers, losses).
	Binning *binning.Result
	// Embed exposes the watermarking agent's statistics.
	Embed watermark.EmbedStats
	// BinStats compares the per-column mono bins before and after
	// watermarking (the Figure 14 measurement for this run).
	BinStats anonymity.Stats
}

// Framework wires the binning agent and the watermarking agent.
type Framework struct {
	trees map[string]*dht.Tree
	cfg   Config
}

// New validates the configuration and returns a Framework over the given
// per-column domain hierarchy trees.
func New(trees map[string]*dht.Tree, cfg Config) (*Framework, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: no domain hierarchy trees: %w", ErrBadConfig)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d: %w", cfg.K, ErrBadConfig)
	}
	if cfg.Chunk == 0 {
		cfg.Chunk = relation.DefaultChunk
	}
	if cfg.Chunk < 1 {
		return nil, fmt.Errorf("core: Chunk must be >= 1: %w", ErrBadConfig)
	}
	if cfg.MarkBits == 0 {
		cfg.MarkBits = 20
	}
	if cfg.MarkBits < 1 {
		return nil, fmt.Errorf("core: MarkBits must be >= 1: %w", ErrBadConfig)
	}
	if cfg.Duplication == 0 {
		cfg.Duplication = 4
	}
	if cfg.Duplication < 1 {
		return nil, fmt.Errorf("core: Duplication must be >= 1: %w", ErrBadConfig)
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 1e6
	}
	if cfg.Tau == 0 {
		cfg.Tau = 5e7
	}
	if cfg.LossThreshold == 0 {
		cfg.LossThreshold = 0.15
	}
	if cfg.NoColumnSalt && cfg.SaltPositionWithColumn {
		return nil, fmt.Errorf(
			"core: conflicting Config: NoColumnSalt and SaltPositionWithColumn are both set; NoColumnSalt is the single source of truth — leave SaltPositionWithColumn unset: %w", ErrBadConfig)
	}
	cfg.SaltPositionWithColumn = !cfg.NoColumnSalt
	return &Framework{trees: trees, cfg: cfg}, nil
}

// Trees returns the framework's tree map (shared, not copied).
func (f *Framework) Trees() map[string]*dht.Tree { return f.trees }

// Config returns the effective (defaulted) configuration.
func (f *Framework) Config() Config { return f.cfg }

func (f *Framework) identCol(schema *relation.Schema) (string, error) {
	if f.cfg.IdentCol != "" {
		if _, err := schema.Index(f.cfg.IdentCol); err != nil {
			return "", fmt.Errorf("%w: %w", err, ErrBadSchema)
		}
		return f.cfg.IdentCol, nil
	}
	idents := schema.IdentColumns()
	if len(idents) != 1 {
		return "", fmt.Errorf("core: schema has %d identifying columns; set Config.IdentCol: %w", len(idents), ErrBadSchema)
	}
	return idents[0], nil
}

// Protect runs the full pipeline of Figure 2 on tbl under the secret key:
// derive the ownership mark wm = F(v) from the clear-text identifiers
// (§5.4), bin to satisfy k-anonymity (+ε) under the usage metrics
// (Section 4), and watermark the binned table hierarchically (Section 5).
// The input table is not modified.
func (f *Framework) Protect(tbl *relation.Table, key crypt.WatermarkKey) (*Protected, error) {
	return f.ProtectContext(context.Background(), tbl, key)
}

// ProtectContext is Protect under a context: binning (including the
// candidate search and re-binning pass), encryption, generalization and
// watermark embedding all abort promptly with the context's error once
// ctx is cancelled or its deadline passes. A request-scoped caller — the
// HTTP service, a job queue — should always use this form.
//
// ProtectContext is exactly PlanContext followed by ApplyContext; the
// two stages are independently invokable for plan-once/apply-later and
// incremental (AppendContext) workflows.
func (f *Framework) ProtectContext(ctx context.Context, tbl *relation.Table, key crypt.WatermarkKey) (*Protected, error) {
	reportProgress(ctx, Progress{Stage: "plan", Done: 0, Total: 2})
	plan, err := f.PlanContext(ctx, tbl, key)
	if err != nil {
		return nil, err
	}
	reportProgress(ctx, Progress{Stage: "apply", Done: 1, Total: 2})
	prot, err := f.ApplyContext(ctx, tbl, plan, key)
	if err != nil {
		return nil, err
	}
	reportProgress(ctx, Progress{Stage: "apply", Done: 2, Total: 2})
	return prot, nil
}

// Apply is ApplyContext under the background context.
func (f *Framework) Apply(tbl *relation.Table, plan *Plan, key crypt.WatermarkKey) (*Protected, error) {
	return f.ApplyContext(context.Background(), tbl, plan, key)
}

// ApplyContext executes a plan on tbl — the transform half of the
// Figure 2 pipeline, with no search: encrypt the identifying columns,
// generalize the quasi columns to the planned frontiers, and embed the
// planned mark (§5.1 boundary-permutation fallback included). The input
// table is not modified. The returned Protected carries the effective
// plan (Protected.Plan) with the published bin record filled in — the
// document AppendContext later verifies delta batches against.
//
// The plan is usually the one PlanContext produced for this very table
// (the same-process fast path reuses the search state); a deserialized
// plan (ParsePlan) applies identically, minus the search statistics in
// Protected.Binning.
func (f *Framework) ApplyContext(ctx context.Context, tbl *relation.Table, plan *Plan, key crypt.WatermarkKey) (*Protected, error) {
	prep, err := f.applyPrepare(ctx, tbl, plan, key)
	if err != nil {
		return nil, err
	}
	return f.applyEmbed(ctx, prep, plan, key, nil)
}

// applyPrepared is the recipient-independent half of an apply: the
// suppressed, encrypted and generalized table (k-verified at the plan's
// effective k) plus the spec and bookkeeping state every embed pass
// reads. It depends on the key only through the encryption key Enc —
// never on the plan's mark or the selection/position keys — so one
// prepared state serves every recipient of a fingerprint fan-out when
// the keys come from crypt.RecipientWatermarkKey.
type applyPrepared struct {
	columns    map[string]watermark.ColumnSpec
	ultiGens   map[string]dht.GenSet
	maxGens    map[string]dht.GenSet
	binned     *relation.Table
	quasi      []string
	before     map[string]int
	suppressed int
	minGens    map[string]dht.GenSet
	monoStats  map[string]binning.MonoStats
	multiStats binning.MultiStats
}

// applyPrepare runs the transform stage of ApplyContext: validate the
// plan and key, replay the recorded suppression (or reuse the plan's
// same-process search state), encrypt the identifying column and
// generalize the quasi columns to the planned frontiers, and record the
// pre-watermark bins. The returned state is immutable — applyEmbed
// clones the binned table before mutating it — so it is safe to share
// across several embed passes.
func (f *Framework) applyPrepare(ctx context.Context, tbl *relation.Table, plan *Plan, key crypt.WatermarkKey) (*applyPrepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, fmt.Errorf("core: nil plan: %w", ErrBadProvenance)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	cipher, err := crypt.NewCipher(key.Enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	identCol := plan.IdentCol
	if _, err := tbl.Schema().Index(identCol); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadSchema)
	}
	if err := checkQuasiCols(tbl.Schema(), plan); err != nil {
		return nil, err
	}
	columns, err := f.SpecsFromProvenance(plan.Provenance)
	if err != nil {
		return nil, err
	}
	ultiGens := make(map[string]dht.GenSet, len(columns))
	maxGens := make(map[string]dht.GenSet, len(columns))
	for col, spec := range columns {
		ultiGens[col] = spec.UltiGen
		maxGens[col] = spec.MaxGen
	}

	// Same-process fast path: when this plan was computed from this very
	// table, reuse the search state (already-suppressed work table plus
	// algorithm statistics). A cold plan replays the recorded
	// suppression instead.
	var search *binning.SearchResult
	if plan.rt != nil && plan.rt.source == tbl {
		search = plan.rt.search
	}
	work := tbl
	suppressed := 0
	var minGens map[string]dht.GenSet
	var monoStats map[string]binning.MonoStats
	var multiStats binning.MultiStats
	if search != nil {
		suppressed = search.Suppressed
		monoStats = search.MonoStats
		multiStats = search.MultiStats
		minGens = search.MinGens
		if w := search.Work(); w != nil {
			work = w
		} else if len(plan.Suppress) > 0 {
			// Sketch-backed search: no materialized work table was
			// retained, so replay the recorded suppression like a
			// cold plan would.
			work = tbl.Clone()
			if suppressed, err = binning.Suppress(work, f.trees, plan.Suppress); err != nil {
				return nil, fmt.Errorf("core: replaying plan suppression: %w: %w", err, ErrBadProvenance)
			}
		}
	} else {
		if minGens, err = f.minGensFromPlan(plan); err != nil {
			return nil, err
		}
		if len(plan.Suppress) > 0 {
			work = tbl.Clone()
			if suppressed, err = binning.Suppress(work, f.trees, plan.Suppress); err != nil {
				return nil, fmt.Errorf("core: replaying plan suppression: %w: %w", err, ErrBadProvenance)
			}
		}
	}

	binned, err := binning.TransformContext(ctx, work, ultiGens, plan.EffectiveK, cipher, f.cfg.Workers)
	if err != nil {
		return nil, err
	}
	quasi := tbl.Schema().QuasiColumns()
	before, err := anonymity.Bins(binned, quasi)
	if err != nil {
		return nil, err
	}
	return &applyPrepared{
		columns:    columns,
		ultiGens:   ultiGens,
		maxGens:    maxGens,
		binned:     binned,
		quasi:      quasi,
		before:     before,
		suppressed: suppressed,
		minGens:    minGens,
		monoStats:  monoStats,
		multiStats: multiStats,
	}, nil
}

// applyEmbed runs the per-recipient embed stage of ApplyContext over a
// prepared transform: clone the binned table, embed the plan's mark
// under the key (§5.1 boundary-permutation fallback included), verify
// seamlessness, and assemble the Protected outcome. prep is not
// mutated; the plan must agree with the one prep was built from on
// everything but the mark.
func (f *Framework) applyEmbed(ctx context.Context, prep *applyPrepared, plan *Plan, key crypt.WatermarkKey, sel *watermark.Selection) (*Protected, error) {
	// Watermarking agent on the binned table. A non-nil sel is a
	// precomputed Equation (5) selection over prep.binned (the
	// fingerprint fan-out shares one per (K1, eta) across recipients);
	// the embedded bytes and statistics are identical either way.
	params, err := paramsFromProvenance(plan.Provenance, key)
	if err != nil {
		return nil, err
	}
	params.Workers = f.cfg.Workers
	embed := func(marked *relation.Table, p watermark.Params) (watermark.EmbedStats, error) {
		if sel != nil {
			return watermark.EmbedSelectedContext(ctx, marked, sel, prep.columns, p)
		}
		return watermark.EmbedContext(ctx, marked, plan.IdentCol, prep.columns, p)
	}
	marked := prep.binned.Clone()
	embedStats, err := embed(marked, params)
	if err != nil {
		return nil, err
	}
	if embedStats.BitsEmbedded == 0 && !params.BoundaryPermutation {
		// §5.1 special case: k-anonymity forced the ultimate
		// generalization nodes all the way up to the maximal nodes, so
		// the hierarchical channel is empty. Apply the paper's remedy —
		// permute boundary values among sibling frontier nodes, accepting
		// a slight usage-metric overshoot for a small tuple fraction.
		params.BoundaryPermutation = true
		marked = prep.binned.Clone()
		if embedStats, err = embed(marked, params); err != nil {
			return nil, err
		}
	}
	if embedStats.BitsEmbedded == 0 && embedStats.TuplesSelected > 0 {
		return nil, fmt.Errorf(
			"core: no watermark bandwidth: every frontier sits at the usage metrics with no permutable siblings; relax the metrics or lower K: %w", ErrUnsatisfiable)
	}
	after, err := anonymity.Bins(marked, prep.quasi)
	if err != nil {
		return nil, err
	}
	binStats := anonymity.Compare(prep.before, after, plan.K)

	// The seamlessness guarantee: no bin below K after watermarking.
	if binStats.BelowK > 0 && !params.BoundaryPermutation {
		return nil, fmt.Errorf(
			"core: watermarking pushed %d bins below k=%d; increase Epsilon or enable AutoEpsilon: %w",
			binStats.BelowK, plan.K, ErrUnsatisfiable)
	}

	// The effective plan: the §5.1 fallback may have enabled boundary
	// permutation (detection must mirror it), and the published bin
	// record is the baseline later appends verify against.
	eff := *plan
	eff.rt = nil
	eff.BoundaryPermutation = params.BoundaryPermutation
	eff.Bins = after
	eff.Rows = marked.NumRows()

	return &Protected{
		Table:      marked,
		Provenance: eff.Provenance,
		Plan:       eff,
		Binning: &binning.Result{
			Table:      prep.binned,
			MinGens:    prep.minGens,
			MaxGens:    prep.maxGens,
			UltiGens:   prep.ultiGens,
			ColumnLoss: plan.ColumnLoss,
			AvgLoss:    plan.AvgLoss,
			EffectiveK: plan.EffectiveK,
			Suppressed: prep.suppressed,
			MonoStats:  prep.monoStats,
			MultiStats: prep.multiStats,
		},
		Embed:    embedStats,
		BinStats: binStats,
	}, nil
}

// columnSpecs builds the watermark column specs straight from a binning
// result (the in-process twin of SpecsFromProvenance).
func (f *Framework) columnSpecs(res *binning.Result) map[string]watermark.ColumnSpec {
	out := make(map[string]watermark.ColumnSpec, len(res.UltiGens))
	for col, ulti := range res.UltiGens {
		out[col] = watermark.ColumnSpec{
			Tree:    f.trees[col],
			MaxGen:  res.MaxGens[col],
			UltiGen: ulti,
		}
	}
	return out
}

// ownershipMark derives the §5.4 ownership mark, wrapping failures in
// ErrBadSchema (the statistic is undefined for non-numeric identifying
// columns).
func ownershipMark(tbl *relation.Table, identCol string, quantum float64, markBits int) (bitstr.Bits, float64, error) {
	mark, v, err := ownership.OwnerMark(tbl, identCol, quantum, markBits)
	if err != nil {
		return bitstr.Bits{}, 0, fmt.Errorf("core: deriving ownership mark: %w: %w", err, ErrBadSchema)
	}
	return mark, v, nil
}

// SpecsFromProvenance rebuilds the watermark column specs from a stored
// provenance record and the framework's trees.
func (f *Framework) SpecsFromProvenance(prov Provenance) (map[string]watermark.ColumnSpec, error) {
	out := make(map[string]watermark.ColumnSpec, len(prov.Columns))
	for col, cp := range prov.Columns {
		tree, ok := f.trees[col]
		if !ok {
			return nil, fmt.Errorf("core: no tree for column %s: %w", col, ErrBadProvenance)
		}
		ulti, err := dht.NewGenSetFromValues(tree, cp.Ulti)
		if err != nil {
			return nil, fmt.Errorf("core: column %s: %w: %w", col, err, ErrBadProvenance)
		}
		maxg, err := dht.NewGenSetFromValues(tree, cp.Max)
		if err != nil {
			return nil, fmt.Errorf("core: column %s: %w: %w", col, err, ErrBadProvenance)
		}
		out[col] = watermark.ColumnSpec{Tree: tree, MaxGen: maxg, UltiGen: ulti}
	}
	return out, nil
}

// paramsFromProvenance rebuilds detection parameters; the mark comes from
// the provenance record, the key from the caller.
func paramsFromProvenance(prov Provenance, key crypt.WatermarkKey) (watermark.Params, error) {
	mark, err := bitstr.FromString(prov.Mark)
	if err != nil {
		return watermark.Params{}, fmt.Errorf("core: provenance mark: %w: %w", err, ErrBadProvenance)
	}
	return watermark.Params{
		Key:                    key,
		Mark:                   mark,
		Duplication:            prov.Duplication,
		WeightedVoting:         prov.WeightedVoting,
		SaltPositionWithColumn: prov.SaltPositionWithColumn,
		BoundaryPermutation:    prov.BoundaryPermutation,
	}, nil
}

// Detection is Detect's report.
type Detection struct {
	Result watermark.DetectResult
	// MarkLoss is the detected mark's loss against the provenance mark.
	MarkLoss float64
	// Match applies the configured loss threshold.
	Match bool
}

// Detect recovers the mark from a (possibly attacked) table under the
// secret key and compares it with the provenance record.
func (f *Framework) Detect(tbl *relation.Table, prov Provenance, key crypt.WatermarkKey) (*Detection, error) {
	return f.DetectContext(context.Background(), tbl, prov, key)
}

// DetectContext is Detect under a context: the sharded vote-harvesting
// scan aborts promptly with the context's error on cancellation.
func (f *Framework) DetectContext(ctx context.Context, tbl *relation.Table, prov Provenance, key crypt.WatermarkKey) (*Detection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	columns, err := f.SpecsFromProvenance(prov)
	if err != nil {
		return nil, err
	}
	params, err := paramsFromProvenance(prov, key)
	if err != nil {
		return nil, err
	}
	params.Workers = f.cfg.Workers
	res, err := watermark.DetectContext(ctx, tbl, prov.IdentCol, columns, params)
	if err != nil {
		return nil, err
	}
	loss, err := params.Mark.LossFraction(res.Mark)
	if err != nil {
		return nil, err
	}
	return &Detection{Result: res, MarkLoss: loss, Match: loss <= f.cfg.LossThreshold}, nil
}

// Dispute arbitrates ownership of a disputed table (§5.4). The owner's
// claim is built from the provenance record plus the owner's key; rival
// claims come as ownership.Claim values.
func (f *Framework) Dispute(disputed *relation.Table, prov Provenance, ownerKey crypt.WatermarkKey, rivals []ownership.Claim) ([]ownership.Verdict, error) {
	return f.DisputeContext(context.Background(), disputed, prov, ownerKey, rivals)
}

// DisputeContext is Dispute under a context: each claim's detection scan
// aborts promptly with the context's error on cancellation.
func (f *Framework) DisputeContext(ctx context.Context, disputed *relation.Table, prov Provenance, ownerKey crypt.WatermarkKey, rivals []ownership.Claim) ([]ownership.Verdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	columns, err := f.SpecsFromProvenance(prov)
	if err != nil {
		return nil, err
	}
	params, err := paramsFromProvenance(prov, ownerKey)
	if err != nil {
		return nil, err
	}
	params.Workers = f.cfg.Workers
	judge := ownership.Judge{
		IdentCol:      prov.IdentCol,
		Columns:       columns,
		Tau:           f.cfg.Tau,
		Quantum:       prov.Quantum,
		LossThreshold: f.cfg.LossThreshold,
	}
	claims := append([]ownership.Claim{{
		Claimant: "owner",
		V:        prov.V,
		Key:      ownerKey,
		Params:   params,
	}}, rivals...)
	return judge.ResolveContext(ctx, disputed, claims)
}

// DecryptIdentifiers returns a copy of tbl with identCol decrypted back
// to cleartext under the owner's key — the inverse of the binning
// agent's one-to-one encryption, available only to the key holder
// (§5.4: "only the true owner can decrypt them"). identCol empty selects
// the configured or sole identifying column. A well-formed key whose
// ciphertexts fail to authenticate returns ErrKeyMismatch wrapping the
// first failing row's error.
func (f *Framework) DecryptIdentifiers(ctx context.Context, tbl *relation.Table, identCol string, key crypt.WatermarkKey) (*relation.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(key.Enc) == 0 {
		return nil, fmt.Errorf("core: empty encryption key: %w", ErrBadKey)
	}
	if identCol == "" {
		var err error
		if identCol, err = f.identCol(tbl.Schema()); err != nil {
			return nil, err
		}
	}
	colIdx, err := tbl.Schema().Index(identCol)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadSchema)
	}
	cipher, err := crypt.NewCipher(key.Enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	out := tbl.Clone()
	// Decryption is deterministic per value, so it rewrites the column
	// dictionary: one DecryptString per distinct ciphertext (fanned out
	// over workers), and rows remap by code.
	if _, err := out.MapColumnCtx(ctx, f.cfg.Workers, colIdx, func(token string) (string, error) {
		pt, err := cipher.DecryptString(token)
		if err != nil {
			return "", fmt.Errorf("core: identifier %q: %w: %w", token, err, ErrKeyMismatch)
		}
		return pt, nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
