package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/pool"
	"repro/internal/watermark"
)

// This file is the read side of the streaming data plane: detection and
// traceback over a Segments source, mirroring what ApplyStream and
// PlanStream do for the write side. The voting walks of Figure 9 are
// segmentation-safe — every vote carries integer weight 1 and lands on
// a position derived only from the tuple's encrypted identifier — so
// per-segment walks accumulated into one persistent vote board, folded
// once at end-of-stream, reproduce the in-memory results bit for bit
// while the resident row set stays bounded by the segment size.

// DetectStreamed is DetectStream's report: the in-memory Detection
// verdict plus ingest counters.
type DetectStreamed struct {
	Detection
	// Rows and Segments count the consumed suspect input.
	Rows, Segments int
}

// DetectStream recovers the mark from a suspect table consumed
// segment-at-a-time: each segment's per-distinct-value verdict tables
// are built, its votes harvested into one persistent replicated board,
// and the segment dropped — so peak memory is bounded by the segment
// size, not the suspect size. The recovered mark, confidences,
// statistics and match verdict are bit-identical to DetectContext over
// the materialized concatenation of the segments, for every segment
// size and worker count.
func (f *Framework) DetectStream(ctx context.Context, src Segments, prov Provenance, key crypt.WatermarkKey) (*DetectStreamed, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil segment source: %w", ErrBadConfig)
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	if _, err := src.Schema().Index(prov.IdentCol); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadSchema)
	}
	columns, err := f.SpecsFromProvenance(prov)
	if err != nil {
		return nil, err
	}
	params, err := paramsFromProvenance(prov, key)
	if err != nil {
		return nil, err
	}
	params.Workers = f.cfg.Workers
	accum, err := watermark.NewDetectAccum(prov.IdentCol, columns, params)
	if err != nil {
		return nil, err
	}

	out := &DetectStreamed{}
	for {
		seg, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading segment %d: %w", out.Segments, err)
		}
		if err := accum.AddContext(ctx, seg); err != nil {
			return nil, err
		}
		out.Rows += seg.NumRows()
		out.Segments++
		reportProgress(ctx, Progress{Stage: "detect", Done: out.Rows})
	}

	res, err := accum.Result()
	if err != nil {
		return nil, err
	}
	loss, err := params.Mark.LossFraction(res.Mark)
	if err != nil {
		return nil, err
	}
	out.Detection = Detection{Result: res, MarkLoss: loss, Match: loss <= f.cfg.LossThreshold}
	return out, nil
}

// TracebackStreamed is TracebackStream's report: the ranked in-memory
// Traceback plus ingest counters.
type TracebackStreamed struct {
	Traceback
	// Rows and Segments count the consumed suspect input.
	Rows, Segments int
}

// TracebackStream ranks the registered recipients against a suspect
// consumed segment-at-a-time. Per segment it rebuilds the shared
// suspect-side state — one verdict-table set per distinct
// frontier/policy group, one Equation (5) selection per distinct
// (K1, η) pair, exactly the sharing TracebackContext exploits — then
// walks every candidate's votes into that candidate's persistent
// replicated board. Boards fold once at end-of-stream, so resident
// state between segments is |candidates| boards of |wmd| positions
// while the verdict tables and selections stay segment-bounded.
//
// Verdicts, ranking, culprit and match ratios are bit-identical to
// TracebackContext over the materialized concatenation of the
// segments, for every segment size and worker count.
func (f *Framework) TracebackStream(ctx context.Context, src Segments, candidates []Candidate) (*TracebackStreamed, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil segment source: %w", ErrBadConfig)
	}
	if err := validateCandidates(candidates); err != nil {
		return nil, err
	}

	// Persistent per-candidate state (parameters, group signature,
	// selection key, vote board, counters) plus one spec set and one
	// representative candidate per distinct suspect signature.
	params := make([]watermark.Params, len(candidates))
	sigs := make([]string, len(candidates))
	selKeys := make([]string, len(candidates))
	boards := make([]*bitstr.VoteBoard, len(candidates))
	stats := make([]watermark.DetectStats, len(candidates))
	columnsOf := make(map[string]map[string]watermark.ColumnSpec)
	repOf := make(map[string]int)
	for i, c := range candidates {
		p, err := paramsFromProvenance(c.Provenance, c.Key)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.ID, err)
		}
		params[i] = p
		sigs[i] = suspectSignature(c.Provenance)
		selKeys[i] = string(c.Key.K1) + "\x00" + strconv.FormatUint(c.Key.Eta, 10)
		boards[i] = bitstr.NewVoteBoard(p.WmdLen())
		if _, ok := repOf[sigs[i]]; !ok {
			columns, err := f.SpecsFromProvenance(c.Provenance)
			if err != nil {
				return nil, fmt.Errorf("core: candidate %q: %w", c.ID, err)
			}
			columnsOf[sigs[i]] = columns
			repOf[sigs[i]] = i
		}
	}

	out := &TracebackStreamed{}
	for {
		seg, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading segment %d: %w", out.Segments, err)
		}
		// Segment-scoped shared state: verdict tables per group,
		// selections per distinct (K1, η) within a group.
		states := make(map[string]*watermark.Suspect, len(repOf))
		for sig, rep := range repOf {
			c := candidates[rep]
			state, err := watermark.PrepareSuspectContext(ctx, seg, c.Provenance.IdentCol, columnsOf[sig],
				params[rep].BoundaryPermutation, params[rep].WeightedVoting, f.cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("core: candidate %q: %w: %w", c.ID, err, ErrBadSchema)
			}
			states[sig] = state
		}
		sels := make(map[string]map[string]*watermark.Selection, len(repOf))
		for i, c := range candidates {
			m := sels[sigs[i]]
			if m == nil {
				m = make(map[string]*watermark.Selection)
				sels[sigs[i]] = m
			}
			if _, ok := m[selKeys[i]]; !ok {
				sel, err := states[sigs[i]].SelectContext(ctx, c.Key.K1, c.Key.Eta, f.cfg.Workers)
				if err != nil {
					return nil, err
				}
				m[selKeys[i]] = sel
			}
		}
		// The per-candidate vote walks fan out over the pool: each
		// candidate owns its board and counters, so worker count cannot
		// change the tallies.
		err = pool.ForEachCtx(ctx, f.cfg.Workers, len(candidates), func(i int) error {
			if err := states[sigs[i]].AccumulateContext(ctx, sels[sigs[i]][selKeys[i]], params[i], boards[i], &stats[i]); err != nil {
				return fmt.Errorf("core: candidate %q: %w", candidates[i].ID, err)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out.Rows += seg.NumRows()
		out.Segments++
		reportProgress(ctx, Progress{Stage: "traceback", Done: out.Rows})
	}

	// Fold each candidate's accumulated board into its verdict — the
	// same final step Suspect.DetectContext performs per candidate.
	verdicts := make([]TracebackVerdict, len(candidates))
	for i, c := range candidates {
		folded, err := boards[i].FoldInto(params[i].Mark.Len())
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.ID, err)
		}
		mark := folded.Resolve()
		loss, err := params[i].Mark.LossFraction(mark)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.ID, err)
		}
		verdicts[i] = TracebackVerdict{
			RecipientID: c.ID,
			Mark:        mark.String(),
			MarkLoss:    loss,
			MatchRatio:  1 - loss,
			Match:       loss <= f.cfg.LossThreshold,
			Confidence:  meanConfidence(folded.Confidence()),
			VotesCast:   stats[i].VotesCast,
		}
	}
	out.Traceback = *rankVerdicts(verdicts)
	return out, nil
}
