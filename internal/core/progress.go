package core

import "context"

// Progress is one pipeline progress report: which stage is running and
// how far along it is. Total 0 means the stage's extent is unknown up
// front (streaming sources); Done then counts processed units (rows,
// segments) monotonically.
type Progress struct {
	// Stage names the pipeline stage: "plan", "apply", "append",
	// "transform", "embed", "detect", "traceback", "stream".
	Stage string `json:"stage"`
	// Done and Total count stage units: stages for protect (plan+apply),
	// the shared transform then per-recipient embeds for fingerprint,
	// candidates for traceback, rows for the streaming data plane
	// (detect/traceback streams included).
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
}

// progressKey carries the callback in a context.
type progressKey struct{}

// WithProgress returns a context that delivers pipeline progress to fn.
// The long-running Framework methods (ProtectContext, ApplyContext,
// FingerprintContext, TracebackContext, ApplyStream, AppendStream)
// report coarse-grained progress through it — the async job layer
// threads this into per-job SSE streams. fn must be cheap, must not
// block, and must be safe for concurrent use: fan-out stages (the
// traceback candidate scan) report from worker goroutines.
func WithProgress(ctx context.Context, fn func(Progress)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, fn)
}

// reportProgress invokes the context's progress callback, if any.
func reportProgress(ctx context.Context, p Progress) {
	if fn, ok := ctx.Value(progressKey{}).(func(Progress)); ok {
		fn(p)
	}
}
