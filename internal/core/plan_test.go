package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/crypt"
	"repro/internal/ontology"
	"repro/internal/relation"
)

func csvOf(t *testing.T, tbl *relation.Table) string {
	t.Helper()
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestPlanApplyEqualsProtect pins the staged-pipeline contract: Protect
// is exactly Plan followed by Apply, byte-identical for every worker
// count — including an Apply driven by a plan that went through JSON
// (the cold path, with no in-process search state).
func TestPlanApplyEqualsProtect(t *testing.T) {
	tbl := testData(t, 2500)
	key := crypt.NewWatermarkKeyFromSecret("staged owner", 25)
	var baseline string
	for _, workers := range []int{1, 2, 8} {
		fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		prot, err := fw.Protect(tbl, key)
		if err != nil {
			t.Fatal(err)
		}
		protCSV := csvOf(t, prot.Table)
		if baseline == "" {
			baseline = protCSV
		} else if protCSV != baseline {
			t.Fatalf("workers=%d: Protect output differs across worker counts", workers)
		}

		plan, err := fw.Plan(tbl, key)
		if err != nil {
			t.Fatal(err)
		}
		hot, err := fw.Apply(tbl, plan, key)
		if err != nil {
			t.Fatal(err)
		}
		if got := csvOf(t, hot.Table); got != protCSV {
			t.Fatalf("workers=%d: Plan+Apply output differs from Protect", workers)
		}
		if !provEqual(hot.Provenance, prot.Provenance) {
			t.Fatalf("workers=%d: Plan+Apply provenance differs from Protect", workers)
		}

		// Cold path: the plan round-trips through its JSON format first.
		data, err := MarshalPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := ParsePlan(data)
		if err != nil {
			t.Fatal(err)
		}
		applied, err := fw.Apply(tbl, cold, key)
		if err != nil {
			t.Fatal(err)
		}
		if got := csvOf(t, applied.Table); got != protCSV {
			t.Fatalf("workers=%d: Apply of deserialized plan differs from Protect", workers)
		}
		if applied.Plan.Rows != applied.Table.NumRows() || len(applied.Plan.Bins) == 0 {
			t.Fatalf("workers=%d: effective plan lacks the published bin record", workers)
		}
		det, err := fw.Detect(applied.Table, applied.Provenance, key)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Match || det.MarkLoss != 0 {
			t.Fatalf("workers=%d: detection after staged protect: match=%v loss=%v", workers, det.Match, det.MarkLoss)
		}
	}
}

// provEqual compares provenance records (Columns is a map, so the
// struct is not comparable with ==).
func provEqual(a, b Provenance) bool {
	return reflect.DeepEqual(a, b)
}

// TestPlanApplyAggressiveColdPath covers the suppression replay: under
// the aggressive rule the plan records the deficient frontier values,
// and an Apply driven by the deserialized plan (no in-process search
// state) must suppress the same rows and produce the same bytes.
func TestPlanApplyAggressiveColdPath(t *testing.T) {
	fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Aggressive: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl := testData(t, 1500)
	key := crypt.NewWatermarkKeyFromSecret("aggressive owner", 25)
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	if prot.Binning.Suppressed == 0 || len(prot.Plan.Suppress) == 0 {
		t.Fatalf("aggressive fixture suppressed nothing (suppressed=%d, recorded=%d) — the cold path is vacuous",
			prot.Binning.Suppressed, len(prot.Plan.Suppress))
	}
	data, err := MarshalPlan(&prot.Plan)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := fw.Apply(tbl, cold, key)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := csvOf(t, applied.Table), csvOf(t, prot.Table); got != want {
		t.Fatal("cold aggressive Apply differs from Protect")
	}
	if applied.Binning.Suppressed != prot.Binning.Suppressed {
		t.Errorf("cold Apply suppressed %d rows, Protect %d", applied.Binning.Suppressed, prot.Binning.Suppressed)
	}
}

// TestPlanToleratesOrphanDictEntries regression-tests the AutoEpsilon
// planning scan against orphaned dictionary entries: a Slice that
// excludes a bad row still carries its value in the column dictionary
// (dictionaries copy wholesale), and planning must ignore it exactly as
// the transform path does.
func TestPlanToleratesOrphanDictEntries(t *testing.T) {
	tbl := testData(t, 1501)
	ci, err := tbl.Schema().Index(ontology.ColSymptom)
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetCellAt(1500, ci, "typo'd out-of-ontology symptom")
	base, err := tbl.Slice(0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	fw := testFramework(t)
	key := crypt.NewWatermarkKeyFromSecret("orphan owner", 25)
	if _, err := fw.Protect(base, key); err != nil {
		t.Fatalf("orphan dictionary entry failed the protect run: %v", err)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 1500)
	key := crypt.NewWatermarkKeyFromSecret("roundtrip", 25)
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	plan := prot.Plan
	data, err := MarshalPlan(&plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !provEqual(back.Provenance, plan.Provenance) {
		t.Error("provenance did not round-trip")
	}
	if back.EffectiveK != plan.EffectiveK || back.AvgLoss != plan.AvgLoss || back.Rows != plan.Rows {
		t.Error("plan scalars did not round-trip")
	}
	if len(back.Bins) != len(plan.Bins) {
		t.Fatalf("bins: %d, want %d", len(back.Bins), len(plan.Bins))
	}
	for bin, n := range plan.Bins {
		if back.Bins[bin] != n {
			t.Fatalf("bin %q: %d, want %d", bin, back.Bins[bin], n)
		}
	}
}

func TestParsePlanRejectsMismatches(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 1500)
	key := crypt.NewWatermarkKeyFromSecret("reject", 25)
	plan, err := fw.Plan(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	good, err := MarshalPlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(s string) string{
		"version mismatch": func(s string) string {
			return strings.Replace(s, `"plan_version": 1`, `"plan_version": 99`, 1)
		},
		"missing version": func(s string) string {
			return strings.Replace(s, `"plan_version": 1`, `"plan_version": 0`, 1)
		},
		"unknown field": func(s string) string {
			return strings.Replace(s, `"plan_version": 1`, `"plan_version": 1, "bogus_field": true`, 1)
		},
		"mark corrupted": func(s string) string {
			return strings.Replace(s, `"mark": "`, `"mark": "x`, 1)
		},
		"k zeroed": func(s string) string {
			return strings.Replace(s, `"k": 15`, `"k": 0`, 1)
		},
		"effective k below k": func(s string) string {
			return strings.Replace(s, `"effective_k": `, `"effective_k": -`, 1)
		},
		"not json": func(string) string { return "{" },
	}
	for name, mutate := range cases {
		doc := mutate(string(good))
		if doc == string(good) {
			t.Fatalf("%s: mutation did not apply", name)
		}
		if _, err := ParsePlan([]byte(doc)); !errors.Is(err, ErrBadProvenance) {
			t.Errorf("%s: error %v, want ErrBadProvenance", name, err)
		}
	}

	// The untouched document still parses.
	if _, err := ParsePlan(good); err != nil {
		t.Fatalf("pristine plan rejected: %v", err)
	}
}

func TestApplyValidation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 1500)
	key := crypt.NewWatermarkKeyFromSecret("apply validation", 25)
	if _, err := fw.Apply(tbl, nil, key); !errors.Is(err, ErrBadProvenance) {
		t.Errorf("nil plan: %v, want ErrBadProvenance", err)
	}
	plan, err := fw.Plan(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	bad := *plan
	bad.FormatVersion = 7
	if _, err := fw.Apply(tbl, &bad, key); !errors.Is(err, ErrBadProvenance) {
		t.Errorf("bad version: %v, want ErrBadProvenance", err)
	}
	if _, err := fw.Apply(tbl, plan, crypt.WatermarkKey{}); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad key: %v, want ErrBadKey", err)
	}
}
