package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/crypt"
	"repro/internal/pool"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// Candidate is one registered recipient a suspect table is tested
// against: the provenance record of that recipient's copy (carrying the
// recipient-salted mark) and the recipient's key.
type Candidate struct {
	ID         string
	Provenance Provenance
	Key        crypt.WatermarkKey
}

// TracebackVerdict is one candidate's detection outcome over the
// suspect table.
type TracebackVerdict struct {
	// RecipientID names the candidate.
	RecipientID string
	// Mark is the mark the suspect's votes reconstruct under the
	// candidate's key ('0'/'1' runes).
	Mark string
	// MarkLoss is the reconstructed mark's loss against the candidate's
	// registered mark; MatchRatio = 1 - MarkLoss ranks the verdicts.
	MarkLoss   float64
	MatchRatio float64
	// Match applies the framework's loss threshold.
	Match bool
	// Confidence is the mean per-position vote margin of the
	// reconstruction in [0,1].
	Confidence float64
	// VotesCast counts the suspect votes harvested for this candidate.
	VotesCast int
}

// Traceback is TracebackContext's report: every candidate's verdict,
// ranked best match first.
type Traceback struct {
	// Verdicts are ordered by descending MatchRatio (ties: descending
	// Confidence, then ascending recipient ID) — the ranking is
	// deterministic for any worker count.
	Verdicts []TracebackVerdict
	// Culprit is the best-ranked recipient ID when its verdict matches,
	// "" when no candidate's mark survives in the suspect.
	Culprit string
	// Matches counts verdicts passing the loss threshold.
	Matches int
}

// Traceback is TracebackContext under the background context.
func (f *Framework) Traceback(suspect *relation.Table, candidates []Candidate) (*Traceback, error) {
	return f.TracebackContext(context.Background(), suspect, candidates)
}

// TracebackContext answers the leak question: given a suspect table and
// the registered recipients of its source, whose copy was leaked? It
// runs detection for every candidate concurrently over the worker pool,
// sharing the suspect-side work across them — the per-column verdict
// tables are built once per distinct frontier/policy group, and the
// Equation (5) selection scan runs once per distinct (K1, η) pair (one
// scan total when the keys come from crypt.RecipientWatermarkKey) — so
// tracing N recipients costs one table scan plus N cheap per-candidate
// vote walks instead of N full detections.
//
// The per-candidate verdicts are bit-identical to independent
// DetectContext calls under the same provenance and key.
func (f *Framework) TracebackContext(ctx context.Context, suspect *relation.Table, candidates []Candidate) (*Traceback, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateCandidates(candidates); err != nil {
		return nil, err
	}

	// Group candidates whose provenance shares the suspect-side state
	// (identifying column, frontiers, vote policy): one fingerprint run
	// yields a single group, but a registry may hold recipients from
	// several plans. Each group prepares its verdict tables once; within
	// a group, each distinct (K1, η) computes its selection once.
	type group struct {
		suspectState *watermark.Suspect
		selections   map[string]*watermark.Selection
	}
	groups := make(map[string]*group)
	groupOf := make([]*group, len(candidates))
	params := make([]watermark.Params, len(candidates))
	for i, c := range candidates {
		p, err := paramsFromProvenance(c.Provenance, c.Key)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.ID, err)
		}
		params[i] = p
		sig := suspectSignature(c.Provenance)
		g := groups[sig]
		if g == nil {
			columns, err := f.SpecsFromProvenance(c.Provenance)
			if err != nil {
				return nil, fmt.Errorf("core: candidate %q: %w", c.ID, err)
			}
			state, err := watermark.PrepareSuspectContext(ctx, suspect, c.Provenance.IdentCol, columns,
				p.BoundaryPermutation, p.WeightedVoting, f.cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("core: candidate %q: %w: %w", c.ID, err, ErrBadSchema)
			}
			g = &group{suspectState: state, selections: make(map[string]*watermark.Selection)}
			groups[sig] = g
		}
		groupOf[i] = g
		selKey := string(c.Key.K1) + "\x00" + strconv.FormatUint(c.Key.Eta, 10)
		if _, ok := g.selections[selKey]; !ok {
			sel, err := g.suspectState.SelectContext(ctx, c.Key.K1, c.Key.Eta, f.cfg.Workers)
			if err != nil {
				return nil, err
			}
			g.selections[selKey] = sel
		}
	}

	// Per-candidate progress: scanned counts completions across the
	// pool's worker goroutines (the callback contract allows concurrent
	// reports; Done is monotone per report, not globally ordered).
	var scanned atomic.Int64
	reportProgress(ctx, Progress{Stage: "traceback", Done: 0, Total: len(candidates)})
	verdicts, err := pool.MapCtx(ctx, f.cfg.Workers, len(candidates), func(i int) (TracebackVerdict, error) {
		c := candidates[i]
		g := groupOf[i]
		selKey := string(c.Key.K1) + "\x00" + strconv.FormatUint(c.Key.Eta, 10)
		res, err := g.suspectState.DetectContext(ctx, g.selections[selKey], params[i])
		if err != nil {
			return TracebackVerdict{}, fmt.Errorf("core: candidate %q: %w", c.ID, err)
		}
		reportProgress(ctx, Progress{Stage: "traceback", Done: int(scanned.Add(1)), Total: len(candidates)})
		loss, err := params[i].Mark.LossFraction(res.Mark)
		if err != nil {
			return TracebackVerdict{}, fmt.Errorf("core: candidate %q: %w", c.ID, err)
		}
		return TracebackVerdict{
			RecipientID: c.ID,
			Mark:        res.Mark.String(),
			MarkLoss:    loss,
			MatchRatio:  1 - loss,
			Match:       loss <= f.cfg.LossThreshold,
			Confidence:  meanConfidence(res.Confidence),
			VotesCast:   res.Stats.VotesCast,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	return rankVerdicts(verdicts), nil
}

// validateCandidates rejects empty, duplicate or badly-keyed candidate
// sets — the shared front door of the traceback entry points.
func validateCandidates(candidates []Candidate) error {
	if len(candidates) == 0 {
		return fmt.Errorf("core: no traceback candidates: %w", ErrBadConfig)
	}
	seen := make(map[string]bool, len(candidates))
	for i, c := range candidates {
		if c.ID == "" {
			return fmt.Errorf("core: candidate %d has an empty ID: %w", i, ErrBadConfig)
		}
		if seen[c.ID] {
			return fmt.Errorf("core: duplicate candidate ID %q: %w", c.ID, ErrBadConfig)
		}
		seen[c.ID] = true
		if err := c.Key.Validate(); err != nil {
			return fmt.Errorf("core: candidate %q: %w: %w", c.ID, err, ErrBadKey)
		}
	}
	return nil
}

// rankVerdicts orders the verdicts (descending MatchRatio, descending
// Confidence, ascending recipient ID) and derives the culprit and match
// count — the shared tail of the in-memory and streamed tracebacks.
func rankVerdicts(verdicts []TracebackVerdict) *Traceback {
	sort.SliceStable(verdicts, func(a, b int) bool {
		if verdicts[a].MatchRatio != verdicts[b].MatchRatio {
			return verdicts[a].MatchRatio > verdicts[b].MatchRatio
		}
		if verdicts[a].Confidence != verdicts[b].Confidence {
			return verdicts[a].Confidence > verdicts[b].Confidence
		}
		return verdicts[a].RecipientID < verdicts[b].RecipientID
	})
	out := &Traceback{Verdicts: verdicts}
	for _, v := range verdicts {
		if v.Match {
			out.Matches++
		}
	}
	if len(verdicts) > 0 && verdicts[0].Match {
		out.Culprit = verdicts[0].RecipientID
	}
	return out
}

// meanConfidence folds the per-position vote margins into one scalar.
func meanConfidence(conf []float64) float64 {
	if len(conf) == 0 {
		return 0
	}
	var sum float64
	for _, c := range conf {
		sum += c
	}
	return sum / float64(len(conf))
}

// suspectSignature keys the shared suspect-side state: two candidates
// with equal signatures produce identical verdict tables.
func suspectSignature(prov Provenance) string {
	var sb strings.Builder
	sb.WriteString(prov.IdentCol)
	sb.WriteByte(0)
	if prov.BoundaryPermutation {
		sb.WriteByte(1)
	} else {
		sb.WriteByte(0)
	}
	if prov.WeightedVoting {
		sb.WriteByte(1)
	} else {
		sb.WriteByte(0)
	}
	cols := make([]string, 0, len(prov.Columns))
	for col := range prov.Columns {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		cp := prov.Columns[col]
		sb.WriteByte(0)
		sb.WriteString(col)
		for _, v := range cp.Ulti {
			sb.WriteByte(1)
			sb.WriteString(v)
		}
		for _, v := range cp.Max {
			sb.WriteByte(2)
			sb.WriteString(v)
		}
	}
	return sb.String()
}
