package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/binning"
	"repro/internal/bitstr"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/relation"
)

// PlanVersion is the serialization format version of Plan. ParsePlan
// rejects any other value: a plan is a frozen commitment between a
// protection run and every later append, so silent format drift is
// worse than a hard error.
const PlanVersion = 1

// Plan is the frozen outcome of the planning stage (PlanContext): the
// ownership mark, the searched per-column generalization frontiers and
// the effective watermark parameters — everything ApplyContext and
// AppendContext need to transform rows without repeating the binning
// search. It extends the Provenance record (which it embeds, and whose
// JSON fields it inlines) with the planning-only state:
//
//   - EffectiveK and MinGens pin the anonymity level and search floor;
//   - Suppress records the aggressive rule's deficient frontier values,
//     so suppression replays identically on later batches;
//   - ColumnLoss / AvgLoss carry the Equation (1)-(3) metrics;
//   - Bins / Rows record the published bin sizes after ApplyContext, the
//     baseline AppendContext verifies combined-bin k-safety against.
//
// A Plan is JSON-serializable and contains no key material. The plan
// returned by ApplyContext (Protected.Plan) is the one to retain: it
// carries the effective boundary-permutation decision and the published
// bin record.
type Plan struct {
	Provenance
	// FormatVersion is the plan serialization version (PlanVersion).
	FormatVersion int `json:"plan_version"`
	// EffectiveK is K+ε, the anonymity level the frontiers enforce.
	EffectiveK int `json:"effective_k"`
	// QuasiCols records the quasi-identifying columns in schema order —
	// the order the Bins keys are assembled in. Apply and Append require
	// their table's quasi columns to match it exactly: a reordered or
	// re-classified schema would silently void the bin bookkeeping.
	QuasiCols []string `json:"quasi_cols"`
	// MinGens records the per-column minimal generalization nodes the
	// search found (portable value form, like Provenance.Columns).
	MinGens map[string][]string `json:"min_gens,omitempty"`
	// Suppress records, per column, the deficient frontier values whose
	// rows the aggressive rule removed (empty under the conservative
	// rule). AppendContext replays the removal on every delta batch.
	Suppress map[string][]string `json:"suppress,omitempty"`
	// ColumnLoss and AvgLoss are the planned information-loss metrics.
	ColumnLoss map[string]float64 `json:"column_loss,omitempty"`
	AvgLoss    float64            `json:"avg_loss"`
	// Rows counts the published rows covered by Bins; Bins maps each
	// published bin (quasi-value combination of the marked table, keyed
	// as in anonymity.Bins) to its size. Both are zero until
	// ApplyContext runs and grow with every AppendContext.
	Rows int            `json:"rows,omitempty"`
	Bins map[string]int `json:"bins,omitempty"`

	// rt is the same-process fast path: the search state of the
	// PlanContext run that produced this plan. ApplyContext reuses it
	// (suppressed work table, algorithm stats) only when applied to the
	// very table the plan was computed from; it never serializes.
	rt *planRuntime
}

// planRuntime carries the non-serialized search state from PlanContext
// to ApplyContext.
type planRuntime struct {
	source *relation.Table
	search *binning.SearchResult
}

// Validate checks the plan's internal consistency — version, required
// fields, and cross-field fits. Every failure wraps ErrBadProvenance.
func (p *Plan) Validate() error {
	if p.FormatVersion != PlanVersion {
		return fmt.Errorf("core: plan version %d, want %d: %w", p.FormatVersion, PlanVersion, ErrBadProvenance)
	}
	if p.K < 1 {
		return fmt.Errorf("core: plan K must be >= 1, got %d: %w", p.K, ErrBadProvenance)
	}
	if p.EffectiveK < p.K {
		return fmt.Errorf("core: plan effective k %d below K %d: %w", p.EffectiveK, p.K, ErrBadProvenance)
	}
	if p.IdentCol == "" {
		return fmt.Errorf("core: plan names no identifying column: %w", ErrBadProvenance)
	}
	if _, err := bitstr.FromString(p.Mark); err != nil {
		return fmt.Errorf("core: plan mark: %w: %w", err, ErrBadProvenance)
	}
	if p.Duplication < 1 {
		return fmt.Errorf("core: plan duplication must be >= 1, got %d: %w", p.Duplication, ErrBadProvenance)
	}
	if p.Quantum <= 0 {
		return fmt.Errorf("core: plan quantum must be positive, got %v: %w", p.Quantum, ErrBadProvenance)
	}
	if len(p.Columns) == 0 {
		return fmt.Errorf("core: plan has no column frontiers: %w", ErrBadProvenance)
	}
	if len(p.QuasiCols) != len(p.Columns) {
		return fmt.Errorf("core: plan records %d quasi columns but %d column frontiers: %w",
			len(p.QuasiCols), len(p.Columns), ErrBadProvenance)
	}
	for _, col := range p.QuasiCols {
		if _, ok := p.Columns[col]; !ok {
			return fmt.Errorf("core: plan quasi column %s has no frontier record: %w", col, ErrBadProvenance)
		}
	}
	for col := range p.MinGens {
		if _, ok := p.Columns[col]; !ok {
			return fmt.Errorf("core: plan min_gens column %s has no frontier record: %w", col, ErrBadProvenance)
		}
	}
	for col := range p.Suppress {
		if _, ok := p.Columns[col]; !ok {
			return fmt.Errorf("core: plan suppress column %s has no frontier record: %w", col, ErrBadProvenance)
		}
	}
	if p.Rows < 0 {
		return fmt.Errorf("core: plan rows must be >= 0, got %d: %w", p.Rows, ErrBadProvenance)
	}
	return nil
}

// MarshalPlan serializes a plan as indented JSON — the format ParsePlan
// accepts and the medprotect CLI writes to plan files.
func MarshalPlan(p *Plan) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(p, "", "  ")
}

// ParsePlan deserializes and validates a plan document. Unknown fields,
// trailing data, a version other than PlanVersion and any field
// inconsistency are rejected with an error wrapping ErrBadProvenance —
// a plan is replayed against live data, so a half-understood document
// must not pass.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding plan: %w: %w", err, ErrBadProvenance)
	}
	if dec.More() {
		return nil, fmt.Errorf("core: trailing data after plan document: %w", ErrBadProvenance)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Plan is PlanContext under the background context.
func (f *Framework) Plan(tbl *relation.Table, key crypt.WatermarkKey) (*Plan, error) {
	return f.PlanContext(context.Background(), tbl, key)
}

// PlanContext runs the planning half of the Figure 2 pipeline: derive
// the ownership mark wm = F(v) from the clear-text identifiers (§5.4)
// and search the binning frontiers satisfying k-anonymity (+ε) under
// the usage metrics (Section 4), including the AutoEpsilon re-binning
// pass (Section 6). It performs no table transform — the input is never
// modified — and returns a serializable Plan that ApplyContext (same
// table) or AppendContext (later delta batches) execute without
// repeating the search. ProtectContext is exactly PlanContext followed
// by ApplyContext.
// PlanContext runs over a binning.Sketch of the table rather than the
// table itself: the search cost then scales with distinct quasi-tuples
// instead of rows, and the streaming PlanStream shares the identical
// search path — both produce byte-identical plans to the historical
// materialized search.
func (f *Framework) PlanContext(ctx context.Context, tbl *relation.Table, key crypt.WatermarkKey) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	identCol, err := f.identCol(tbl.Schema())
	if err != nil {
		return nil, err
	}

	// Ownership mark from the clear-text identifying column (§5.4).
	mark, v, err := ownershipMark(tbl, identCol, f.cfg.Quantum, f.cfg.MarkBits)
	if err != nil {
		return nil, err
	}

	sk, err := binning.NewSketch(tbl.Schema(), f.trees)
	if err != nil {
		return nil, err
	}
	if err := sk.Add(tbl); err != nil {
		return nil, err
	}
	return f.planFromSketch(ctx, sk, tbl.Schema().QuasiColumns(), identCol, mark, v, tbl)
}

// planFromSketch is the planning core PlanContext and PlanStream share:
// the frontier search (optionally twice, for the conservative ε) over a
// quasi-tuple sketch, frozen into a Plan. source is the materialized
// table the sketch was built from, when one exists — it arms the
// same-process ApplyContext fast path; the streaming caller passes nil.
func (f *Framework) planFromSketch(ctx context.Context, sk *binning.Sketch, quasiCols []string, identCol string, mark bitstr.Bits, v float64, source *relation.Table) (*Plan, error) {
	binCfg := binning.Config{
		K:          f.cfg.K,
		Epsilon:    f.cfg.Epsilon,
		Trees:      f.trees,
		MaxGens:    f.cfg.MaxGens,
		Metrics:    f.cfg.Metrics,
		Strategy:   f.cfg.Strategy,
		EnumLimit:  f.cfg.EnumLimit,
		Aggressive: f.cfg.Aggressive,
		Workers:    f.cfg.Workers,
	}
	search, err := binning.SearchSketch(ctx, sk, binCfg)
	if err != nil {
		return nil, err
	}
	if f.cfg.AutoEpsilon {
		bins, err := search.GeneralizedBins(quasiCols, search.UltiGens)
		if err != nil {
			return nil, err
		}
		eps := binning.EpsilonForMark(bins, f.cfg.MarkBits*f.cfg.Duplication)
		if eps > binCfg.Epsilon {
			binCfg.Epsilon = eps
			if search, err = binning.SearchSketch(ctx, sk, binCfg); err != nil {
				return nil, fmt.Errorf("core: re-binning at k+ε=%d: %w", f.cfg.K+eps, err)
			}
		}
	}

	plan := &Plan{
		Provenance: Provenance{
			IdentCol:               identCol,
			K:                      f.cfg.K,
			Epsilon:                binCfg.Epsilon,
			Mark:                   mark.String(),
			V:                      v,
			Quantum:                f.cfg.Quantum,
			Duplication:            f.cfg.Duplication,
			WeightedVoting:         f.cfg.WeightedVoting,
			SaltPositionWithColumn: f.cfg.SaltPositionWithColumn,
			BoundaryPermutation:    f.cfg.BoundaryPermutation,
			Columns:                make(map[string]ColumnProvenance, len(search.UltiGens)),
		},
		FormatVersion: PlanVersion,
		EffectiveK:    search.EffectiveK,
		QuasiCols:     quasiCols,
		MinGens:       genSetValues(search.MinGens),
		Suppress:      search.SuppressValues,
		ColumnLoss:    search.ColumnLoss,
		AvgLoss:       search.AvgLoss,
	}
	if source != nil {
		plan.rt = &planRuntime{source: source, search: search}
	}
	for col, ulti := range search.UltiGens {
		plan.Columns[col] = ColumnProvenance{
			Ulti: ulti.Values(),
			Max:  search.MaxGens[col].Values(),
		}
	}
	return plan, nil
}

// genSetValues converts per-column frontiers to the portable value form.
func genSetValues(gens map[string]dht.GenSet) map[string][]string {
	if len(gens) == 0 {
		return nil
	}
	out := make(map[string][]string, len(gens))
	for col, g := range gens {
		out[col] = g.Values()
	}
	return out
}

// checkQuasiCols requires the table's quasi-identifying columns to
// match the plan's recorded set and order exactly. The published bin
// keys are assembled in quasi-column order, so a reordered or
// re-classified schema (a quasi column demoted to "other", say) would
// silently break the k-safety bookkeeping rather than fail — hence a
// hard ErrBadSchema here.
func checkQuasiCols(schema *relation.Schema, plan *Plan) error {
	quasi := schema.QuasiColumns()
	if len(quasi) != len(plan.QuasiCols) {
		return fmt.Errorf("core: table has quasi columns %v but the plan records %v: %w",
			quasi, plan.QuasiCols, ErrBadSchema)
	}
	for i, col := range quasi {
		if plan.QuasiCols[i] != col {
			return fmt.Errorf("core: table has quasi columns %v but the plan records %v (order matters — bin keys follow it): %w",
				quasi, plan.QuasiCols, ErrBadSchema)
		}
	}
	return nil
}

// minGensFromPlan rebuilds the minimal-frontier GenSets recorded in the
// plan (empty map when the plan carries none — the cold-path stats are
// then simply absent).
func (f *Framework) minGensFromPlan(plan *Plan) (map[string]dht.GenSet, error) {
	out := make(map[string]dht.GenSet, len(plan.MinGens))
	for col, values := range plan.MinGens {
		tree, ok := f.trees[col]
		if !ok {
			return nil, fmt.Errorf("core: no tree for column %s: %w", col, ErrBadProvenance)
		}
		g, err := dht.NewGenSetFromValues(tree, values)
		if err != nil {
			return nil, fmt.Errorf("core: column %s min nodes: %w: %w", col, err, ErrBadProvenance)
		}
		out[col] = g
	}
	return out, nil
}
