package core

import (
	"errors"

	"repro/internal/binning"
)

// Sentinel errors of the protection pipeline. Every error returned by
// New, Protect, Detect, Dispute and DecryptIdentifiers wraps exactly one
// of these (or a context error), so callers — in particular the HTTP
// service layer — classify failures with errors.Is instead of string
// matching.
var (
	// ErrBadConfig marks an invalid Config rejected by New.
	ErrBadConfig = errors.New("invalid configuration")
	// ErrBadKey marks unusable key material (empty subkeys, k1 = k2,
	// zero η).
	ErrBadKey = errors.New("invalid key material")
	// ErrBadSchema marks a table or schema the pipeline cannot process:
	// a missing identifying column, no quasi-identifying columns, or
	// identifying values the ownership statistic cannot be derived from.
	ErrBadSchema = errors.New("schema mismatch")
	// ErrBadProvenance marks a provenance record that does not fit the
	// framework: unknown columns, frontiers from a different tree, or a
	// malformed mark string.
	ErrBadProvenance = errors.New("invalid provenance record")
	// ErrUnsatisfiable marks a table that cannot be binned (or
	// watermarked) under the configured K and usage metrics. It is the
	// binning agent's sentinel, re-exported so callers need only import
	// core.
	ErrUnsatisfiable = binning.ErrUnsatisfiable
	// ErrKeyMismatch marks a key that is well-formed but does not match
	// the data: identifying-column ciphertexts fail to authenticate
	// under it.
	ErrKeyMismatch = errors.New("key does not match the data")
	// ErrPlanDrift marks a delta batch that no longer fits a frozen
	// protection plan: a value falls outside the planned generalization
	// frontiers, or appending would create a bin below k. The remedy is
	// to re-plan over the combined table (PlanContext + ApplyContext),
	// not to force the append.
	ErrPlanDrift = errors.New("delta drifts from the protection plan")
)
