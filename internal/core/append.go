package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/anonymity"
	"repro/internal/binning"
	"repro/internal/crypt"
	"repro/internal/dht"
	"repro/internal/relation"
	"repro/internal/watermark"
)

// Appended is the outcome of AppendContext: the protected delta batch
// plus the advanced plan.
type Appended struct {
	// Table holds the delta rows, binned to the planned frontiers and
	// carrying the planned mark — ready to append to the published
	// table (relation.Table.AppendTable, or a CSV append).
	Table *relation.Table
	// Plan is the advanced plan: Bins and Rows now include the delta.
	// Retain it in place of the input plan for the next append.
	Plan Plan
	// Embed exposes the watermarking agent's statistics for the delta.
	Embed watermark.EmbedStats
	// NewBins counts published bins this batch created (value
	// combinations absent from the plan's bin record).
	NewBins int
	// Suppressed counts delta rows removed by the plan's recorded
	// aggressive-rule suppression (0 under the conservative rule).
	Suppressed int
}

// Append is AppendContext under the background context.
func (f *Framework) Append(delta *relation.Table, plan *Plan, key crypt.WatermarkKey) (*Appended, error) {
	return f.AppendContext(context.Background(), delta, plan, key)
}

// AppendContext protects a new batch of rows under an existing plan —
// the incremental-ingestion path: the repository already published a
// protected table (ApplyContext filled the plan's bin record) and new
// patient records have arrived since. Each delta row is resolved to the
// planned leaves (per distinct dictionary code, like the full
// transform), its identifier encrypted, its quasi values generalized to
// the planned frontiers, and the same mark embedded with the same
// per-value hash addressing — so DetectContext over the union of old
// and new rows still votes on the same wmd positions. No binning search
// runs: appending a batch costs one transform plus one embed.
//
// Safety: the published union must keep every bin at or above k. Rows
// joining bins the plan already published only grow them; a value
// combination the plan has never published must arrive with at least K
// rows of its own. AppendContext verifies this on the marked delta and
// returns an error wrapping ErrPlanDrift — as it does for delta values
// that fall outside the planned frontiers — when the batch no longer
// fits the frozen plan; the caller should then re-plan over the
// combined table rather than force the append.
//
// The input delta is not modified. On success, publish Appended.Table
// (append its rows to the outsourced copy) and retain Appended.Plan for
// the next batch.
func (f *Framework) AppendContext(ctx context.Context, delta *relation.Table, plan *Plan, key crypt.WatermarkKey) (*Appended, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, fmt.Errorf("core: nil plan: %w", ErrBadProvenance)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(plan.Bins) == 0 {
		return nil, fmt.Errorf(
			"core: plan carries no published bin record; apply it first (ApplyContext/ProtectContext) and retain the returned plan: %w", ErrBadProvenance)
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	cipher, err := crypt.NewCipher(key.Enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadKey)
	}
	if _, err := delta.Schema().Index(plan.IdentCol); err != nil {
		return nil, fmt.Errorf("%w: %w", err, ErrBadSchema)
	}
	// The delta's quasi columns must match the plan's recorded set and
	// order exactly: the bin keys below are assembled in that order, and
	// a re-classified column (quasi demoted to "other") would both skip
	// generalization and void the combined-bin comparison.
	if err := checkQuasiCols(delta.Schema(), plan); err != nil {
		return nil, err
	}
	quasi := delta.Schema().QuasiColumns()
	columns, err := f.SpecsFromProvenance(plan.Provenance)
	if err != nil {
		return nil, err
	}
	ultiGens := make(map[string]dht.GenSet, len(columns))
	for col, spec := range columns {
		ultiGens[col] = spec.UltiGen
	}

	// Replay the plan's aggressive-rule suppression on the delta, then
	// resolve the batch to the planned leaves. The per-batch k check is
	// disabled (effective k 0): a delta bin may be small as long as the
	// published union stays safe — verified below, after embedding.
	work := delta
	suppressed := 0
	if len(plan.Suppress) > 0 {
		work = delta.Clone()
		if suppressed, err = binning.Suppress(work, f.trees, plan.Suppress); err != nil {
			return nil, fmt.Errorf("core: replaying plan suppression: %w: %w", err, ErrBadProvenance)
		}
	}
	marked, err := binning.TransformContext(ctx, work, ultiGens, 0, cipher, f.cfg.Workers)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("core: delta outside planned frontiers: %w: %w", err, ErrPlanDrift)
	}

	// Embed the planned mark. The §5.1 fallback never triggers here: the
	// plan's effective boundary-permutation decision is frozen, and
	// detection over the union mirrors exactly it.
	params, err := paramsFromProvenance(plan.Provenance, key)
	if err != nil {
		return nil, err
	}
	params.Workers = f.cfg.Workers
	embedStats, err := watermark.EmbedContext(ctx, marked, plan.IdentCol, columns, params)
	if err != nil {
		return nil, err
	}

	// Combined-bin k-safety on the published union: existing bins only
	// grow; brand-new bins must carry at least K delta rows themselves.
	// Under §5.1 boundary permutation the guarantee is already the
	// relaxed one — permuted boundary tuples may open thin sibling bins,
	// and ApplyContext publishes them (its seamlessness check is skipped
	// the same way) — so a permutation plan must not dead-end the
	// incremental path on a bin a full re-protect would have published.
	deltaBins, err := anonymity.Bins(marked, quasi)
	if err != nil {
		return nil, err
	}
	newBins := 0
	var thin []string
	for bin, n := range deltaBins {
		if plan.Bins[bin] > 0 {
			continue
		}
		newBins++
		if n < plan.K && !plan.BoundaryPermutation {
			thin = append(thin, fmt.Sprintf("%s (%d)", strings.ReplaceAll(bin, "\x1f", "|"), n))
		}
	}
	if len(thin) > 0 {
		sort.Strings(thin)
		return nil, fmt.Errorf(
			"core: appending would publish %d new bin(s) below k=%d — %s; re-plan over the combined table: %w",
			len(thin), plan.K, strings.Join(thin, ", "), ErrPlanDrift)
	}

	// Advance the plan: the union's bin record is the next append's
	// baseline.
	eff := *plan
	eff.rt = nil
	bins := make(map[string]int, len(plan.Bins)+newBins)
	for bin, n := range plan.Bins {
		bins[bin] = n
	}
	for bin, n := range deltaBins {
		bins[bin] += n
	}
	eff.Bins = bins
	eff.Rows = plan.Rows + marked.NumRows()

	return &Appended{
		Table:      marked,
		Plan:       eff,
		Embed:      embedStats,
		NewBins:    newBins,
		Suppressed: suppressed,
	}, nil
}
