package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/anonymity"
	"repro/internal/crypt"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// tableCSV renders a table exactly as the streaming writers do.
func tableCSV(t *testing.T, tbl *relation.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestApplyStreamMatchesApply pins the tentpole guarantee: the streamed
// apply emits CSV byte-identical to the in-memory ApplyContext's table,
// for every chunk size and worker count, and returns the same effective
// plan.
func TestApplyStreamMatchesApply(t *testing.T) {
	tbl := testData(t, 4000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	for _, workers := range []int{1, 2, 8} {
		fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fw.PlanContext(context.Background(), tbl, key)
		if err != nil {
			t.Fatal(err)
		}
		p, err := fw.Apply(tbl, plan, key)
		if err != nil {
			t.Fatal(err)
		}
		want := tableCSV(t, p.Table)
		for _, chunk := range []int{1, 7, 512, 4000, 9000} {
			var got bytes.Buffer
			res, err := fw.ApplyStream(context.Background(), tbl.Segments(chunk), plan, key, &got)
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("workers=%d chunk=%d: streamed CSV differs from in-memory apply", workers, chunk)
			}
			if res.Rows != p.Table.NumRows() {
				t.Fatalf("rows = %d, want %d", res.Rows, p.Table.NumRows())
			}
			if res.Plan.Rows != p.Plan.Rows || res.Plan.BoundaryPermutation != p.Plan.BoundaryPermutation {
				t.Fatalf("effective plan diverged: rows %d/%d perm %v/%v",
					res.Plan.Rows, p.Plan.Rows, res.Plan.BoundaryPermutation, p.Plan.BoundaryPermutation)
			}
			if len(res.Plan.Bins) != len(p.Plan.Bins) {
				t.Fatalf("bin record: %d bins streamed, %d in-memory", len(res.Plan.Bins), len(p.Plan.Bins))
			}
			for bin, n := range p.Plan.Bins {
				if res.Plan.Bins[bin] != n {
					t.Fatalf("bin %q: %d streamed, %d in-memory", bin, res.Plan.Bins[bin], n)
				}
			}
			if res.Embed != p.Embed {
				t.Fatalf("embed stats diverged: %+v vs %+v", res.Embed, p.Embed)
			}
			if res.BinStats != p.BinStats {
				t.Fatalf("bin stats diverged: %+v vs %+v", res.BinStats, p.BinStats)
			}
		}
	}
}

// TestApplyStreamFromCSV drives the full streaming data plane: CSV in
// (SegmentReader), CSV out, no materialized table — and the output
// still matches the in-memory path.
func TestApplyStreamFromCSV(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 3000)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	plan, err := fw.PlanContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	p, err := fw.Apply(tbl, plan, key)
	if err != nil {
		t.Fatal(err)
	}
	want := tableCSV(t, p.Table)

	input := tableCSV(t, tbl)
	sr, err := relation.NewSegmentReader(bytes.NewReader(input), tbl.Schema(), 256)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := fw.ApplyStream(context.Background(), sr, plan, key, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("CSV-to-CSV stream differs from in-memory apply")
	}
}

// TestAppendStreamMatchesAppend pins the append twin: same emitted CSV,
// same advanced plan, same thin-bin verdict as AppendContext.
func TestAppendStreamMatchesAppend(t *testing.T) {
	all := testData(t, 5000)
	base, err := all.Slice(0, 4000)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := all.Slice(4000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	for _, workers := range []int{1, 2, 8} {
		fw, err := New(ontology.Trees(), Config{K: 15, AutoEpsilon: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		prot, err := fw.Protect(base, key)
		if err != nil {
			t.Fatal(err)
		}
		app, err := fw.Append(delta, &prot.Plan, key)
		if err != nil {
			t.Fatal(err)
		}
		want := tableCSV(t, app.Table)
		for _, chunk := range []int{64, 333, 1000} {
			var got bytes.Buffer
			res, err := fw.AppendStream(context.Background(), delta.Segments(chunk), &prot.Plan, key, &got)
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("workers=%d chunk=%d: streamed CSV differs from in-memory append", workers, chunk)
			}
			if res.NewBins != app.NewBins || res.Plan.Rows != app.Plan.Rows {
				t.Fatalf("verdicts diverged: newBins %d/%d rows %d/%d",
					res.NewBins, app.NewBins, res.Plan.Rows, app.Plan.Rows)
			}
			if len(res.Plan.Bins) != len(app.Plan.Bins) {
				t.Fatalf("advanced bin record: %d bins streamed, %d in-memory", len(res.Plan.Bins), len(app.Plan.Bins))
			}
			for bin, n := range app.Plan.Bins {
				if res.Plan.Bins[bin] != n {
					t.Fatalf("bin %q: %d streamed, %d in-memory", bin, res.Plan.Bins[bin], n)
				}
			}
		}
	}
}

// TestAppendStreamPlanDrift checks the deferred end-of-stream verdict:
// a batch that would publish a thin new bin fails with ErrPlanDrift and
// the exact verdict text AppendContext issues — even when the thin
// bin's rows were spread across segments.
func TestAppendStreamPlanDrift(t *testing.T) {
	fw, prot, delta, key := appendFixture(t, 4000, 25)
	plan := prot.Plan
	app, err := fw.Append(delta, &plan, key)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one thin delta bin from the published record, so the batch
	// appears to open a fresh, under-populated value combination.
	deltaBins, err := anonymity.Bins(app.Table, delta.Schema().QuasiColumns())
	if err != nil {
		t.Fatal(err)
	}
	thinBin := ""
	for _, bin := range sortedKeys(deltaBins) {
		if deltaBins[bin] < plan.K {
			thinBin = bin
			break
		}
	}
	if thinBin == "" {
		t.Fatal("every delta bin holds >= k rows; enlarge the delta to find a thin one")
	}
	doctored := plan
	doctored.Bins = make(map[string]int, len(plan.Bins))
	for bin, n := range plan.Bins {
		if bin != thinBin {
			doctored.Bins[bin] = n
		}
	}
	_, wantErr := fw.Append(delta, &doctored, key)
	if !errors.Is(wantErr, ErrPlanDrift) {
		t.Fatalf("in-memory append: %v, want ErrPlanDrift", wantErr)
	}
	var got bytes.Buffer
	_, err = fw.AppendStream(context.Background(), delta.Segments(97), &doctored, key, &got)
	if !errors.Is(err, ErrPlanDrift) {
		t.Fatalf("streamed append: %v, want ErrPlanDrift", err)
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("verdict text diverged:\n  stream: %v\n  memory: %v", err, wantErr)
	}
}

// TestApplyStreamValidation covers the cheap up-front failures.
func TestApplyStreamValidation(t *testing.T) {
	fw := testFramework(t)
	tbl := testData(t, 100)
	key := crypt.NewWatermarkKeyFromSecret("owner", 25)
	if _, err := fw.ApplyStream(context.Background(), tbl.Segments(0), nil, key, io.Discard); !errors.Is(err, ErrBadProvenance) {
		t.Fatalf("nil plan: %v", err)
	}
	if _, err := fw.ApplyStream(context.Background(), nil, nil, key, io.Discard); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil source: %v", err)
	}
	plan, err := fw.PlanContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.ApplyStream(context.Background(), tbl.Segments(0), plan, crypt.WatermarkKey{}, io.Discard); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := fw.AppendStream(context.Background(), tbl.Segments(0), plan, key, io.Discard); !errors.Is(err, ErrBadProvenance) {
		t.Fatalf("append under unapplied plan: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.ApplyStream(ctx, tbl.Segments(0), plan, key, io.Discard); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: %v", err)
	}
}

// TestConfigChunkValidation pins the streaming segment-size knob:
// 0 defaults, explicit values pass through, below-1 is ErrBadConfig.
func TestConfigChunkValidation(t *testing.T) {
	fw, err := New(ontology.Trees(), Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.Config().Chunk; got != relation.DefaultChunk {
		t.Errorf("defaulted Chunk = %d, want %d", got, relation.DefaultChunk)
	}
	fw, err = New(ontology.Trees(), Config{K: 5, Chunk: 123})
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.Config().Chunk; got != 123 {
		t.Errorf("Chunk = %d, want 123", got)
	}
	_, err = New(ontology.Trees(), Config{K: 5, Chunk: -1})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("Chunk=-1: err = %v, want ErrBadConfig", err)
	}
	if err != nil && !strings.Contains(err.Error(), "Chunk") {
		t.Errorf("error does not name Chunk: %v", err)
	}
}
