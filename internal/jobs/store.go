package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FormatVersion is the job store file format version.
const FormatVersion = 1

// Store is the durable job record store. Implementations must be safe
// for concurrent use and must persist synchronously: when Put returns,
// the record survives a crash. The manager is the only writer; reads
// may come from any goroutine (HTTP handlers, webhook deliverers).
type Store interface {
	// Put inserts or replaces the record (keyed by Job.ID).
	Put(Job) error
	// Get returns the record for id.
	Get(id string) (Job, bool)
	// List returns every record, sorted by CreatedAt then ID (oldest
	// first — the recovery enqueue order).
	List() []Job
	// Len returns the number of records.
	Len() int
	// Delete removes the record for id (a no-op when absent). The TTL
	// sweeper is the only caller.
	Delete(id string) error
}

// FileStore is the JSON-on-disk Store: one document holding every job,
// rewritten atomically (temp file + rename, like internal/registry) on
// each Put. A store opened with an empty path is in-memory only.
//
// File format (FormatVersion 1):
//
//	{
//	  "jobs_version": 1,
//	  "jobs": [ { ... Job JSON ... } ]
//	}
//
// Loading rejects unknown versions, duplicate IDs and invalid records.
// The file is written mode 0600: requests embed owner secrets.
type FileStore struct {
	mu   sync.RWMutex
	path string // "" = in-memory only
	jobs map[string]Job
}

// NewStore returns an empty in-memory store (nothing is persisted).
func NewStore() *FileStore {
	return &FileStore{jobs: make(map[string]Job)}
}

// Open loads the job store at path, or returns an empty store bound to
// path when the file does not exist yet. An empty path is NewStore().
func Open(path string) (*FileStore, error) {
	s := NewStore()
	s.path = path
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var doc document
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("jobs: decoding %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("jobs: trailing data after document in %s", path)
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("jobs: %s has format version %d, want %d", path, doc.Version, FormatVersion)
	}
	for _, j := range doc.Jobs {
		// Migration: stores written before multi-tenancy carry no tenant
		// ID; those jobs are adopted by the default tenant so existing
		// queues keep loading and resuming.
		j.TenantID = normalizeTenant(j.TenantID)
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("jobs: %s: %w", path, err)
		}
		if _, dup := s.jobs[j.ID]; dup {
			return nil, fmt.Errorf("jobs: %s: duplicate job %q", path, j.ID)
		}
		s.jobs[j.ID] = j
	}
	return s, nil
}

// Path returns the backing file path ("" for an in-memory store).
func (s *FileStore) Path() string { return s.path }

// Put inserts or replaces the record and persists the store.
func (s *FileStore) Put(j Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.jobs[j.ID]
	s.jobs[j.ID] = j
	if err := s.persistLocked(); err != nil {
		// Keep memory and disk in agreement on failure.
		if had {
			s.jobs[j.ID] = prev
		} else {
			delete(s.jobs, j.ID)
		}
		return err
	}
	return nil
}

// Get returns the record for id.
func (s *FileStore) Get(id string) (Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns every record, oldest first (CreatedAt, then ID).
func (s *FileStore) List() []Job {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Delete removes the record for id and persists the store; deleting an
// absent id is a no-op.
func (s *FileStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.jobs[id]
	if !had {
		return nil
	}
	delete(s.jobs, id)
	if err := s.persistLocked(); err != nil {
		// Keep memory and disk in agreement on failure.
		s.jobs[id] = prev
		return err
	}
	return nil
}

// Len returns the number of records.
func (s *FileStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.jobs)
}

type document struct {
	Version int   `json:"jobs_version"`
	Jobs    []Job `json:"jobs"`
}

// persistLocked writes the store atomically: temp file in the target
// directory, sync, rename over path. Callers hold the write lock.
func (s *FileStore) persistLocked() (err error) {
	if s.path == "" {
		return nil
	}
	doc := document{Version: FormatVersion, Jobs: make([]Job, 0, len(s.jobs))}
	for _, j := range s.jobs {
		doc.Jobs = append(doc.Jobs, j)
	}
	sort.Slice(doc.Jobs, func(i, j int) bool {
		if !doc.Jobs[i].CreatedAt.Equal(doc.Jobs[j].CreatedAt) {
			return doc.Jobs[i].CreatedAt.Before(doc.Jobs[j].CreatedAt)
		}
		return doc.Jobs[i].ID < doc.Jobs[j].ID
	})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	dir, base := filepath.Dir(s.path), filepath.Base(s.path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = f.Chmod(0o600); err != nil {
		return err
	}
	if _, err = f.Write(append(data, '\n')); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}
