package jobs

import (
	"encoding/json"
	"time"

	"repro/internal/sse"
)

// Topic returns the hub topic carrying job id's events.
func Topic(id string) string { return "jobs/" + id }

// Event types published on a job's topic.
const (
	// EventState carries a Snapshot JSON document on every lifecycle
	// transition (queued, running, retry re-queue, terminal states).
	EventState = "state"
	// EventProgress carries a Progress JSON document per pipeline
	// progress report of the running attempt.
	EventProgress = "progress"
)

// Snapshot is the wire form of a job on event streams and webhook
// payloads: the full record minus the request and result documents
// (both can be megabytes; clients fetch the result via the job
// resource).
type Snapshot struct {
	ID             string     `json:"id"`
	Kind           string     `json:"kind"`
	State          State      `json:"state"`
	IdempotencyKey string     `json:"idempotency_key,omitempty"`
	Error          string     `json:"error,omitempty"`
	ErrorCode      string     `json:"error_code,omitempty"`
	Attempts       int        `json:"attempts"`
	MaxAttempts    int        `json:"max_attempts"`
	NotBefore      time.Time  `json:"not_before,omitzero"`
	CreatedAt      time.Time  `json:"created_at"`
	StartedAt      time.Time  `json:"started_at,omitzero"`
	FinishedAt     time.Time  `json:"finished_at,omitzero"`
	Progress       Progress   `json:"progress,omitzero"`
	Webhook        string     `json:"webhook,omitempty"`
	Deliveries     []Delivery `json:"deliveries,omitempty"`
	WebhookOK      bool       `json:"webhook_ok,omitempty"`
}

// SnapshotOf trims a job to its event/webhook form.
func SnapshotOf(j Job) Snapshot {
	return Snapshot{
		ID:             j.ID,
		Kind:           j.Kind,
		State:          j.State,
		IdempotencyKey: j.IdempotencyKey,
		Error:          j.Error,
		ErrorCode:      j.ErrorCode,
		Attempts:       j.Attempts,
		MaxAttempts:    j.MaxAttempts,
		NotBefore:      j.NotBefore,
		CreatedAt:      j.CreatedAt,
		StartedAt:      j.StartedAt,
		FinishedAt:     j.FinishedAt,
		Progress:       j.Progress,
		Webhook:        j.Webhook,
		Deliveries:     j.Deliveries,
		WebhookOK:      j.WebhookOK,
	}
}

// publish emits a state event for j on its topic.
func (m *Manager) publish(j Job) {
	if m.cfg.Hub == nil {
		return
	}
	data, err := json.Marshal(SnapshotOf(j))
	if err != nil {
		return
	}
	m.cfg.Hub.Publish(Topic(j.ID), sse.Event{Type: EventState, Data: data})
}

// publishProgress emits a progress event for job id.
func (m *Manager) publishProgress(id string, p Progress) {
	if m.cfg.Hub == nil {
		return
	}
	data, err := json.Marshal(p)
	if err != nil {
		return
	}
	m.cfg.Hub.Publish(Topic(id), sse.Event{Type: EventProgress, Data: data})
}
