package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestSignAndVerify(t *testing.T) {
	payload := []byte(`{"id":"j-1","state":"succeeded"}`)
	sig := Sign("master-secret", payload)
	if len(sig) != len("sha256=")+64 {
		t.Fatalf("signature shape: %q", sig)
	}
	if !VerifySignature("master-secret", payload, sig) {
		t.Fatal("valid signature rejected")
	}
	if VerifySignature("wrong-secret", payload, sig) {
		t.Fatal("signature verified under the wrong secret")
	}
	if VerifySignature("master-secret", []byte(`{"id":"j-2"}`), sig) {
		t.Fatal("signature verified for a different payload")
	}
}

// TestWebhookRetriesAndDeliveryLog injects a deliverer that fails twice
// (transport error, then 500) before succeeding: the delivery log must
// record all three attempts in order, the payload must verify against
// the runner's secret, and it must not leak the request document.
func TestWebhookRetriesAndDeliveryLog(t *testing.T) {
	type call struct {
		url     string
		headers http.Header
		body    []byte
	}
	var mu sync.Mutex
	var calls []call
	deliver := func(url string, headers http.Header, body []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, call{url: url, headers: headers.Clone(), body: body})
		switch len(calls) {
		case 1:
			return 0, errors.New("connection refused")
		case 2:
			return 500, nil
		default:
			return 200, nil
		}
	}

	clock := newFakeClock()
	m := newTestManager(t, Config{
		Runner: &fakeRunner{
			fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
				return json.RawMessage(`{"rows":42}`), nil
			},
			secret: "owner-master-secret",
		},
		Clock:          clock,
		AttemptTimeout: -1,
		Deliver:        deliver,
		WebhookBackoff: Backoff{Base: time.Second, Max: 4 * time.Second},
	})

	j, _, err := m.Submit("noop", json.RawMessage(`{"secret":"owner-master-secret"}`), SubmitOptions{
		Webhook: "http://receiver.test/hook",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drive the delivery backoffs: 1s after attempt 1, 2s after 2.
	for _, d := range []time.Duration{time.Second, 2 * time.Second} {
		waitFor(t, "webhook backoff timer", func() bool {
			delays := clock.pendingDelays()
			return len(delays) == 1 && delays[0] == d
		})
		clock.Advance(d)
	}
	final := waitState(t, m, j.ID, StateSucceeded)
	waitFor(t, "webhook delivery to succeed", func() bool {
		got, _ := m.Get(j.ID)
		return got.WebhookOK
	})
	got, _ := m.Get(j.ID)

	if len(got.Deliveries) != 3 {
		t.Fatalf("delivery log has %d attempts, want 3: %+v", len(got.Deliveries), got.Deliveries)
	}
	d1, d2, d3 := got.Deliveries[0], got.Deliveries[1], got.Deliveries[2]
	if d1.Attempt != 1 || d1.OK || d1.Error == "" || d1.Status != 0 {
		t.Fatalf("attempt 1 log: %+v", d1)
	}
	if d2.Attempt != 2 || d2.OK || d2.Status != 500 {
		t.Fatalf("attempt 2 log: %+v", d2)
	}
	if d3.Attempt != 3 || !d3.OK || d3.Status != 200 {
		t.Fatalf("attempt 3 log: %+v", d3)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 3 {
		t.Fatalf("deliverer called %d times, want 3", len(calls))
	}
	last := calls[2]
	if last.url != "http://receiver.test/hook" {
		t.Fatalf("delivered to %q", last.url)
	}
	if got := last.headers.Get(JobIDHeader); got != j.ID {
		t.Fatalf("%s = %q, want %q", JobIDHeader, got, j.ID)
	}
	if got := last.headers.Get(DeliveryHeader); got != "3" {
		t.Fatalf("%s = %q, want 3", DeliveryHeader, got)
	}
	if got := last.headers.Get(EventHeader); got != "job.completed" {
		t.Fatalf("%s = %q", EventHeader, got)
	}
	sig := last.headers.Get(SignatureHeader)
	if !VerifySignature("owner-master-secret", last.body, sig) {
		t.Fatalf("webhook body does not verify against its signature %q", sig)
	}
	var snap Snapshot
	if err := json.Unmarshal(last.body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != j.ID || snap.State != StateSucceeded {
		t.Fatalf("webhook snapshot: %+v", snap)
	}
	// The payload is the snapshot: no request (secret!) or result body.
	var raw map[string]any
	if err := json.Unmarshal(last.body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, has := raw["request"]; has {
		t.Fatal("webhook payload leaks the request document")
	}
	if _, has := raw["result"]; has {
		t.Fatal("webhook payload carries the result document")
	}
	_ = final
}

// TestWebhookGivesUpAfterMaxAttempts: a receiver that never accepts
// exhausts WebhookMaxAttempts; the log records each attempt and
// WebhookOK stays false.
func TestWebhookGivesUpAfterMaxAttempts(t *testing.T) {
	var mu sync.Mutex
	var count int
	deliver := func(url string, headers http.Header, body []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		count++
		return 503, nil
	}
	clock := newFakeClock()
	m := newTestManager(t, Config{
		Runner: &fakeRunner{
			fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
				return json.RawMessage(`"ok"`), nil
			},
			secret: "s",
		},
		Clock:              clock,
		AttemptTimeout:     -1,
		Deliver:            deliver,
		WebhookMaxAttempts: 3,
		WebhookBackoff:     Backoff{Base: time.Second, Max: time.Minute},
	})
	j, _, err := m.Submit("noop", nil, SubmitOptions{Webhook: "https://receiver.test/hook"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{time.Second, 2 * time.Second} {
		waitFor(t, "webhook backoff timer", func() bool {
			delays := clock.pendingDelays()
			return len(delays) == 1 && delays[0] == d
		})
		clock.Advance(d)
	}
	waitFor(t, "delivery log to fill", func() bool {
		got, _ := m.Get(j.ID)
		return len(got.Deliveries) == 3
	})
	got, _ := m.Get(j.ID)
	if got.WebhookOK {
		t.Fatal("WebhookOK set although every delivery failed")
	}
	for i, d := range got.Deliveries {
		if d.Attempt != i+1 || d.OK || d.Status != 503 {
			t.Fatalf("delivery %d: %+v", i, d)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 3 {
		t.Fatalf("deliverer called %d times, want 3", count)
	}
}
