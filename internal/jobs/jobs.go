// Package jobs is the durable asynchronous job layer of the medshield
// service: long protections (protect, plan, apply, fingerprint,
// traceback) submitted as queued jobs instead of blocking RPCs. A
// bounded worker pool drains a persistent queue; every state transition
// is persisted (atomic temp+rename, like internal/registry), so queued
// and running jobs survive a crash and are re-enqueued on boot. Failed
// attempts retry with exponential backoff and jitter up to a
// max-attempts dead-letter state; client-supplied idempotency keys make
// duplicate submits return the existing job; progress streams out via
// an internal/sse hub and completion fires HMAC-signed webhooks with
// their own capped-retry delivery log.
//
// The package is payload-agnostic: a Job carries its request and result
// as raw JSON, and a Runner (implemented by internal/server over the
// core.Framework) executes one attempt. Everything queue-shaped —
// persistence, retry policy, cancellation, idempotency, events,
// webhooks — lives here.
//
// Job lifecycle:
//
//	queued ──► running ──► succeeded
//	  ▲           │  │
//	  │ (retry/   │  └────► failed      (permanent error)
//	  │  drain)   │
//	  └───────────┤
//	              ├───────► dead        (transient error, attempts exhausted)
//	              └───────► canceled    (client cancel; also from queued)
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/tenant"
)

// normalizeTenant resolves a job's effective tenant.
func normalizeTenant(id string) string {
	if id == "" {
		return tenant.DefaultID
	}
	return id
}

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
	// StateDead is the dead-letter state: every allowed attempt failed
	// transiently. The job is terminal but its request is retained for
	// inspection and manual resubmission.
	StateDead State = "dead"
)

// Terminal reports whether the state is final (no further transitions).
func (s State) Terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCanceled, StateDead:
		return true
	}
	return false
}

// Valid reports whether s is a known state.
func (s State) Valid() bool {
	switch s {
	case StateQueued, StateRunning, StateSucceeded, StateFailed, StateCanceled, StateDead:
		return true
	}
	return false
}

// Progress mirrors core.Progress on the job record: the running stage
// and its unit counts (Total 0 = unknown extent).
type Progress struct {
	Stage string `json:"stage,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total,omitempty"`
}

// Delivery is one webhook delivery attempt in the job's delivery log.
type Delivery struct {
	// Attempt numbers deliveries from 1.
	Attempt int `json:"attempt"`
	// At is the attempt time.
	At time.Time `json:"at"`
	// Status is the receiver's HTTP status (0 when the request itself
	// failed).
	Status int `json:"status,omitempty"`
	// Error is the transport error, if any.
	Error string `json:"error,omitempty"`
	// OK marks a 2xx delivery.
	OK bool `json:"ok"`
}

// Job is one queued unit of pipeline work. The request and result ride
// as raw JSON documents of the corresponding synchronous API endpoint —
// the job layer never interprets them.
//
// Note that Request usually embeds the owner's secret (exactly like the
// synchronous request bodies do); a durable store therefore holds
// secrets at rest, and the store file is written 0600. Deployments that
// must not persist secrets run the job store in memory.
type Job struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// TenantID names the tenant that submitted the job; get/list/cancel
	// and the SSE event stream are scoped to it. Empty means
	// tenant.DefaultID — stores written before multi-tenancy migrate on
	// load.
	TenantID string `json:"tenant_id,omitempty"`
	State    State  `json:"state"`
	// IdempotencyKey dedups submissions per (tenant, kind): a second
	// submit with the same key returns this job instead of creating a
	// new one. Two tenants reusing the same key never collide.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Request is the submitted payload (the sync endpoint's JSON body).
	Request json.RawMessage `json:"request,omitempty"`
	// Result is the sync endpoint's JSON response, set on success.
	Result json.RawMessage `json:"result,omitempty"`
	// Error and ErrorCode describe the last failure (ErrorCode is the
	// api wire code when the manager has a classifier).
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
	// Attempts counts started run attempts; MaxAttempts bounds them.
	Attempts    int `json:"attempts"`
	MaxAttempts int `json:"max_attempts"`
	// NotBefore is the earliest next run time while a retry backoff is
	// pending (informational; the in-process timer is authoritative).
	NotBefore  time.Time `json:"not_before,omitzero"`
	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// Progress is the latest reported progress of the running attempt.
	Progress Progress `json:"progress,omitzero"`
	// Webhook is the completion callback URL ("" = none); Deliveries is
	// its attempt log, WebhookOK whether a delivery succeeded.
	Webhook    string     `json:"webhook,omitempty"`
	Deliveries []Delivery `json:"deliveries,omitempty"`
	WebhookOK  bool       `json:"webhook_ok,omitempty"`
}

// Validate checks the record's internal consistency (used by the store
// on load — a half-understood queue must not silently run).
func (j Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("jobs: job has an empty ID")
	}
	if j.Kind == "" {
		return fmt.Errorf("jobs: job %s has an empty kind", j.ID)
	}
	// NUL delimits tenant/kind/key in the idempotency index.
	if strings.ContainsRune(j.TenantID, '\x00') {
		return fmt.Errorf("jobs: job %s has a NUL in its tenant ID", j.ID)
	}
	if !j.State.Valid() {
		return fmt.Errorf("jobs: job %s has unknown state %q", j.ID, j.State)
	}
	if j.MaxAttempts < 1 {
		return fmt.Errorf("jobs: job %s has max_attempts %d (want >= 1)", j.ID, j.MaxAttempts)
	}
	return nil
}

// Sentinel errors of the job layer.
var (
	// ErrNotFound marks lookups of unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrDraining marks submissions refused because the manager is
	// shutting down.
	ErrDraining = errors.New("jobs: manager is draining; submissions refused")
	// ErrUnknownKind marks submissions of a kind the manager does not
	// serve.
	ErrUnknownKind = errors.New("jobs: unknown job kind")
	// ErrCanceled is the cancellation cause a client cancel injects into
	// a running job's context; the attempt ends in StateCanceled.
	ErrCanceled = errors.New("jobs: job canceled by request")
	// errDrain is the internal cancellation cause of a graceful drain; a
	// drained attempt goes back to queued without consuming an attempt.
	errDrain = errors.New("jobs: draining; job re-queued")
)

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// Transient wraps err so the manager retries the job (with backoff, up
// to MaxAttempts) instead of failing it permanently. Runners wrap
// infrastructure failures (I/O, upstream timeouts); malformed requests
// and pipeline validation errors stay permanent.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t transientError
	return errors.As(err, &t)
}

// NewID returns a fresh job ID: "j-" + 16 hex characters.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; an ID from a
		// degraded source would risk silent collisions in the store.
		panic(fmt.Sprintf("jobs: reading random ID bytes: %v", err))
	}
	return "j-" + hex.EncodeToString(b[:])
}
