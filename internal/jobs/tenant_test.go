package jobs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tenant"
)

func TestIdempotencyScopedPerTenant(t *testing.T) {
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		}},
	})
	a, existing, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{TenantID: "tenant-a", IdempotencyKey: "k1"})
	if err != nil || existing {
		t.Fatalf("submit a: %v existing=%v", err, existing)
	}
	if a.TenantID != "tenant-a" {
		t.Fatalf("job tenant = %q, want tenant-a", a.TenantID)
	}
	// Same key, same tenant: dedup.
	a2, existing, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{TenantID: "tenant-a", IdempotencyKey: "k1"})
	if err != nil || !existing || a2.ID != a.ID {
		t.Fatalf("same-tenant resubmit: %v existing=%v id=%s (want %s)", err, existing, a2.ID, a.ID)
	}
	// Same key, different tenant: a fresh job — keys never cross tenants.
	b, existing, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{TenantID: "tenant-b", IdempotencyKey: "k1"})
	if err != nil || existing {
		t.Fatalf("cross-tenant submit: %v existing=%v", err, existing)
	}
	if b.ID == a.ID {
		t.Fatal("tenant-b's idempotency key resolved to tenant-a's job")
	}
}

func TestListFiltersByTenant(t *testing.T) {
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		}},
	})
	ja, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{TenantID: "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	jb, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{TenantID: "tenant-b"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, ja.ID, StateSucceeded)
	waitState(t, m, jb.ID, StateSucceeded)

	la := m.List(Filter{Tenant: "tenant-a"})
	if len(la) != 1 || la[0].ID != ja.ID {
		t.Fatalf("List(tenant-a) = %+v, want only %s", la, ja.ID)
	}
	if all := m.List(Filter{}); len(all) != 2 {
		t.Fatalf("List (operator view) = %d jobs, want 2", len(all))
	}
}

func TestSubmitDefaultsTenant(t *testing.T) {
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		}},
	})
	j, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.TenantID != tenant.DefaultID {
		t.Fatalf("tenant-less submit recorded tenant %q, want %q", j.TenantID, tenant.DefaultID)
	}
	// The default-tenant filter sees it.
	if l := m.List(Filter{Tenant: tenant.DefaultID}); len(l) != 1 {
		t.Fatalf("List(default) = %d jobs, want 1", len(l))
	}
}

func TestStoreMigratesTenantlessJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j := Job{ID: NewID(), Kind: "protect", TenantID: tenant.DefaultID, State: StateQueued, MaxAttempts: 3}
	if err := s.Put(j); err != nil {
		t.Fatal(err)
	}
	// Strip tenant_id to simulate a pre-multi-tenant store file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.ReplaceAll(string(data), `"tenant_id": "default",`, "")
	if stripped == string(data) {
		t.Fatal("fixture did not contain a tenant_id to strip")
	}
	if err := os.WriteFile(path, []byte(stripped), 0o600); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("pre-tenant job store no longer loads: %v", err)
	}
	got, ok := s2.Get(j.ID)
	if !ok || got.TenantID != tenant.DefaultID {
		t.Fatalf("migrated job = %+v, %v; want default tenant", got, ok)
	}
}
