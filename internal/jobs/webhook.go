package jobs

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Webhook wire headers.
const (
	// SignatureHeader carries "sha256=<hex>" — the HMAC-SHA256 of the
	// request body under the job's master secret.
	SignatureHeader = "X-Medshield-Signature"
	// JobIDHeader carries the job ID; DeliveryHeader the 1-based
	// delivery attempt number.
	JobIDHeader    = "X-Medshield-Job-Id"
	DeliveryHeader = "X-Medshield-Delivery"
	// EventHeader names the payload type ("job.completed").
	EventHeader = "X-Medshield-Event"
)

// Sign computes the webhook signature header value for a payload:
// "sha256=" + hex(HMAC-SHA256(secret, payload)).
func Sign(secret string, payload []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(payload)
	return "sha256=" + hex.EncodeToString(mac.Sum(nil))
}

// VerifySignature checks a webhook body against its SignatureHeader
// value in constant time — the receiver-side recipe.
func VerifySignature(secret string, payload []byte, header string) bool {
	return hmac.Equal([]byte(Sign(secret, payload)), []byte(header))
}

// DeliverFunc executes one webhook POST and returns the receiver's
// HTTP status. Injectable for tests; production uses httpDeliver.
type DeliverFunc func(url string, headers http.Header, body []byte) (status int, err error)

// httpDeliver returns the production DeliverFunc: a plain POST with the
// given per-request timeout.
func httpDeliver(timeout time.Duration) DeliverFunc {
	client := &http.Client{Timeout: timeout}
	return func(url string, headers http.Header, body []byte) (int, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		for k, vs := range headers {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
}

// deliverWebhook posts the terminal job's snapshot to its webhook URL,
// retrying with backoff up to WebhookMaxAttempts. Every attempt is
// appended to the job's delivery log and persisted, so an operator can
// audit exactly what the receiver was told and when. Runs on its own
// goroutine (m.side); shutdown releases the backoff waits.
func (m *Manager) deliverWebhook(id string) {
	defer m.side.Done()

	m.mu.Lock()
	j, ok := m.store.Get(id)
	m.mu.Unlock()
	if !ok || j.Webhook == "" {
		return
	}
	payload, err := json.Marshal(SnapshotOf(j))
	if err != nil {
		m.logf("job %s: marshaling webhook payload: %v", id, err)
		return
	}
	secret := m.cfg.Runner.Secret(j)
	headers := http.Header{}
	headers.Set("Content-Type", "application/json")
	headers.Set(EventHeader, "job.completed")
	headers.Set(JobIDHeader, j.ID)
	if secret != "" {
		headers.Set(SignatureHeader, Sign(secret, payload))
	}

	for attempt := 1; attempt <= m.cfg.WebhookMaxAttempts; attempt++ {
		headers.Set(DeliveryHeader, fmt.Sprintf("%d", attempt))
		status, err := m.cfg.Deliver(j.Webhook, headers, payload)
		d := Delivery{
			Attempt: attempt,
			At:      m.cfg.Clock.Now().UTC(),
			Status:  status,
			OK:      err == nil && status >= 200 && status < 300,
		}
		if err != nil {
			d.Error = err.Error()
		} else if !d.OK {
			d.Error = fmt.Sprintf("receiver returned status %d", status)
		}
		m.recordDelivery(id, d)
		if d.OK {
			m.logf("job %s webhook delivered (attempt %d)", id, attempt)
			return
		}
		m.logf("job %s webhook attempt %d failed: %s", id, attempt, d.Error)
		if attempt == m.cfg.WebhookMaxAttempts {
			return
		}
		select {
		case <-m.cfg.Clock.After(m.jittered(m.cfg.WebhookBackoff.delay(attempt))):
		case <-m.stop:
			return
		}
	}
}

// recordDelivery appends one delivery attempt to the job's log and
// persists it.
func (m *Manager) recordDelivery(id string, d Delivery) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.store.Get(id)
	if !ok {
		return
	}
	j.Deliveries = append(j.Deliveries, d)
	if d.OK {
		j.WebhookOK = true
	}
	if err := m.store.Put(j); err != nil {
		m.logf("job %s: persisting delivery log: %v", id, err)
	}
	m.publish(j)
}
