package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sse"
)

// fakeClock is a manually advanced Clock: After registers a timer that
// fires when Advance moves the clock past its deadline. Tests inspect
// pending delays to assert the backoff schedule without real sleeps.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at    time.Time
	delay time.Duration
	ch    chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), delay: d, ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
		return t.ch
	}
	c.timers = append(c.timers, t)
	return t.ch
}

// Advance moves the clock and fires every timer whose deadline passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	var rest []*fakeTimer
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			rest = append(rest, t)
		}
	}
	c.timers = rest
}

// pendingDelays returns the requested delays of unfired timers.
func (c *fakeClock) pendingDelays() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.timers))
	for i, t := range c.timers {
		out[i] = t.delay
	}
	return out
}

// fakeRunner runs fn per attempt; secret is the webhook signing secret.
type fakeRunner struct {
	fn     func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error)
	secret string
}

func (r *fakeRunner) Run(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
	return r.fn(ctx, job, progress)
}
func (r *fakeRunner) Secret(Job) string { return r.secret }

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	var j Job
	waitFor(t, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		var ok bool
		j, ok = m.Get(id)
		return ok && j.State == want
	})
	return j
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = NewStore()
	}
	if cfg.Kinds == nil {
		cfg.Kinds = []string{"protect", "noop"}
	}
	cfg.DisableJitter = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m
}

// TestRetryBackoffSchedule drives a job that always fails transiently
// through its full retry schedule under the fake clock: delays must
// follow Base<<n capped at Max, and the job must land in the
// dead-letter state after MaxAttempts — all without a real sleep.
func TestRetryBackoffSchedule(t *testing.T) {
	clock := newFakeClock()
	var attempts atomic.Int64
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			attempts.Add(1)
			return nil, Transient(errors.New("upstream wobble"))
		}},
		Workers:        1,
		MaxAttempts:    4,
		Backoff:        Backoff{Base: 2 * time.Second, Max: 5 * time.Second},
		AttemptTimeout: -1,
		Clock:          clock,
	})

	j, existing, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil || existing {
		t.Fatalf("submit: existing=%v err=%v", existing, err)
	}

	// Expected pre-jitter delays after attempts 1..3: 2s, 4s, 5s (capped).
	want := []time.Duration{2 * time.Second, 4 * time.Second, 5 * time.Second}
	for i, d := range want {
		waitFor(t, fmt.Sprintf("retry timer %d", i+1), func() bool {
			return len(clock.pendingDelays()) == 1
		})
		if got := clock.pendingDelays()[0]; got != d {
			t.Fatalf("retry %d delay = %s, want %s", i+1, got, d)
		}
		got, _ := m.Get(j.ID)
		if got.State != StateQueued {
			t.Fatalf("retry %d: state = %s, want queued", i+1, got.State)
		}
		if got.NotBefore.IsZero() {
			t.Fatalf("retry %d: NotBefore not recorded", i+1)
		}
		clock.Advance(d)
	}

	final := waitState(t, m, j.ID, StateDead)
	if n := attempts.Load(); n != 4 {
		t.Fatalf("runner attempts = %d, want 4", n)
	}
	if final.Attempts != 4 {
		t.Fatalf("job attempts = %d, want 4", final.Attempts)
	}
	if final.Error == "" || final.FinishedAt.IsZero() {
		t.Fatalf("dead job lacks error/finish time: %+v", final)
	}
}

// TestPermanentFailureNoRetry: an unmarked error must fail the job on
// the first attempt, with the classifier's code recorded.
func TestPermanentFailureNoRetry(t *testing.T) {
	var attempts atomic.Int64
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			attempts.Add(1)
			return nil, errors.New("bad request shape")
		}},
		MaxAttempts:   5,
		ClassifyError: func(error) string { return "bad_request" },
	})
	j, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, j.ID, StateFailed)
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on permanent errors)", attempts.Load())
	}
	if final.ErrorCode != "bad_request" {
		t.Fatalf("error code = %q, want bad_request", final.ErrorCode)
	}
}

// TestIdempotencyConcurrentSubmits hammers Submit with one idempotency
// key from many goroutines (run under -race in CI): exactly one job may
// be created; every other submit must return it.
func TestIdempotencyConcurrentSubmits(t *testing.T) {
	block := make(chan struct{})
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			<-block
			return json.RawMessage(`"done"`), nil
		}},
		Workers: 4,
	})

	const n = 32
	ids := make([]string, n)
	created := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, existing, err := m.Submit("protect", json.RawMessage(`{"i":1}`), SubmitOptions{IdempotencyKey: "same-key"})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = j.ID
			created[i] = !existing
		}(i)
	}
	wg.Wait()
	close(block)

	var createdCount int
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submit %d returned job %s, want %s (dedup broke)", i, ids[i], ids[0])
		}
	}
	for _, c := range created {
		if c {
			createdCount++
		}
	}
	if createdCount != 1 {
		t.Fatalf("%d submits created a job, want exactly 1", createdCount)
	}
	if got := m.store.Len(); got != 1 {
		t.Fatalf("store holds %d jobs, want 1", got)
	}
	// A different kind with the same key is a distinct job.
	j2, existing, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{IdempotencyKey: "same-key"})
	if err != nil || existing {
		t.Fatalf("cross-kind submit: existing=%v err=%v", existing, err)
	}
	if j2.ID == ids[0] {
		t.Fatal("idempotency key collided across kinds")
	}
	waitState(t, m, ids[0], StateSucceeded)
}

// TestCancelQueuedAndRunning covers both cancel paths.
func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			started <- job.ID
			<-ctx.Done()
			return nil, context.Cause(ctx)
		}},
		Workers: 1,
	})

	// Two jobs on one worker: the second stays queued while the first
	// runs.
	j1, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	if _, err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	got2 := waitState(t, m, j2.ID, StateCanceled)
	if got2.Attempts != 0 {
		t.Fatalf("queued-cancel consumed %d attempts", got2.Attempts)
	}

	if _, err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	got1 := waitState(t, m, j1.ID, StateCanceled)
	if got1.Attempts != 1 {
		t.Fatalf("running-cancel attempts = %d, want 1", got1.Attempts)
	}

	// Cancel is idempotent on terminal jobs.
	again, err := m.Cancel(j1.ID)
	if err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: state=%s err=%v", again.State, err)
	}
	if _, err := m.Cancel("j-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
}

// TestDrainRequeuesRunning: Close must kick a running job back to
// queued without consuming an attempt, and refuse new submissions.
func TestDrainRequeuesRunning(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.json")
	store, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	runner := &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}}
	m, err := New(Config{Store: store, Runner: runner, Kinds: []string{"noop"}, Workers: 1, DisableJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	m.Drain()
	if !m.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The store on disk must show the job queued with no attempt spent.
	reloaded, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reloaded.Get(j.ID)
	if !ok {
		t.Fatal("job lost across drain")
	}
	if got.State != StateQueued || got.Attempts != 0 {
		t.Fatalf("drained job: state=%s attempts=%d, want queued/0", got.State, got.Attempts)
	}

	// A fresh manager over the same store completes it.
	runner2 := &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
		return json.RawMessage(`"after restart"`), nil
	}}
	m2, err := New(Config{Store: reloaded, Runner: runner2, Kinds: []string{"noop"}, Workers: 1, DisableJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	final := waitState(t, m2, j.ID, StateSucceeded)
	if string(final.Result) != `"after restart"` {
		t.Fatalf("result = %s", final.Result)
	}
}

// TestCrashRecovery simulates kill -9 mid-job: snapshot the store file
// while the job is persisted as running, then boot a fresh manager from
// the snapshot. The job must be re-enqueued exactly once (not lost, not
// duplicated) and complete; resubmitting its idempotency key must
// return it, not create a second job.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "jobs.json")
	snapshot := filepath.Join(dir, "jobs.crash.json")

	store, err := Open(live)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	runner := &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`"first life"`), nil
	}}
	m, err := New(Config{Store: store, Runner: runner, Kinds: []string{"protect"}, Workers: 1, DisableJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := m.Submit("protect", json.RawMessage(`{"table":"x"}`), SubmitOptions{IdempotencyKey: "nightly-1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// The running state is persisted before the runner is invoked; the
	// file now captures the mid-job moment a kill -9 would freeze.
	data, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshot, data, 0o600); err != nil {
		t.Fatal(err)
	}
	close(release)
	m.Close(context.Background())

	// "Reboot" from the crash snapshot.
	store2, err := Open(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := store2.Get(j.ID); got.State != StateRunning {
		t.Fatalf("snapshot state = %s, want running (mid-job)", got.State)
	}
	var attempts atomic.Int64
	runner2 := &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
		attempts.Add(1)
		return json.RawMessage(`"second life"`), nil
	}}
	m2, err := New(Config{Store: store2, Runner: runner2, Kinds: []string{"protect"}, Workers: 2, DisableJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())

	final := waitState(t, m2, j.ID, StateSucceeded)
	if string(final.Result) != `"second life"` {
		t.Fatalf("result = %s", final.Result)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts after recovery = %d, want 1 (interrupted attempt uncounted)", final.Attempts)
	}
	if attempts.Load() != 1 {
		t.Fatalf("runner ran %d times after recovery, want 1 (no duplication)", attempts.Load())
	}
	if store2.Len() != 1 {
		t.Fatalf("store holds %d jobs, want 1", store2.Len())
	}
	// Same idempotency key after the restart: still the same job.
	again, existing, err := m2.Submit("protect", json.RawMessage(`{"table":"x"}`), SubmitOptions{IdempotencyKey: "nightly-1"})
	if err != nil {
		t.Fatal(err)
	}
	if !existing || again.ID != j.ID {
		t.Fatalf("resubmit after recovery: existing=%v id=%s, want existing id %s", existing, again.ID, j.ID)
	}
}

// TestProgressAndEvents: progress reports surface on Get and stream
// through the hub; the terminal state event arrives last.
func TestProgressAndEvents(t *testing.T) {
	hub := sse.NewHub()
	defer hub.Close()
	subscribed := make(chan struct{})
	gate := make(chan struct{})
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
			// Hold progress until the test has subscribed, so every
			// progress event is observable.
			<-subscribed
			progress(Progress{Stage: "plan", Done: 0, Total: 2})
			progress(Progress{Stage: "apply", Done: 1, Total: 2})
			<-gate
			return json.RawMessage(`"ok"`), nil
		}},
		Hub: hub,
	})

	j, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub := hub.Subscribe(Topic(j.ID), 64)
	defer sub.Close()
	close(subscribed)

	waitFor(t, "live progress on Get", func() bool {
		got, _ := m.Get(j.ID)
		return got.State == StateRunning && got.Progress.Stage == "apply" && got.Progress.Done == 1
	})
	close(gate)
	final := waitState(t, m, j.ID, StateSucceeded)
	if final.Progress.Stage != "apply" || final.Progress.Done != 1 {
		t.Fatalf("terminal record lost last progress: %+v", final.Progress)
	}

	var sawProgress, sawTerminal bool
	deadline := time.After(5 * time.Second)
	for !sawTerminal {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatal("subscription closed before terminal event")
			}
			switch ev.Type {
			case EventProgress:
				sawProgress = true
			case EventState:
				var snap Snapshot
				if err := json.Unmarshal(ev.Data, &snap); err != nil {
					t.Fatalf("state event payload: %v", err)
				}
				if snap.State == StateSucceeded {
					sawTerminal = true
				}
			}
		case <-deadline:
			t.Fatal("no terminal state event within 5s")
		}
	}
	if !sawProgress {
		t.Fatal("no progress events observed")
	}
}

// TestSubmitValidation covers kind and webhook validation.
func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{
		Runner: &fakeRunner{
			fn: func(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error) {
				return nil, nil
			},
			secret: "", // no signing secret available
		},
	})
	if _, _, err := m.Submit("mystery", nil, SubmitOptions{}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: %v", err)
	}
	if _, _, err := m.Submit("noop", nil, SubmitOptions{Webhook: "not a url"}); err == nil {
		t.Fatal("malformed webhook URL accepted")
	}
	if _, _, err := m.Submit("noop", nil, SubmitOptions{Webhook: "ftp://x/y"}); err == nil {
		t.Fatal("non-http webhook URL accepted")
	}
	if _, _, err := m.Submit("noop", nil, SubmitOptions{Webhook: "http://127.0.0.1:1/hook"}); err == nil {
		t.Fatal("webhook without a signing secret accepted")
	}
}

// TestManagerTTLSweep pins the garbage collector: terminal jobs older
// than TTL are deleted from the store and their idempotency keys
// released (a resubmission starts a fresh job), while younger terminal
// jobs and non-terminal jobs survive every sweep.
func TestManagerTTLSweep(t *testing.T) {
	clock := newFakeClock()
	release := make(chan struct{})
	m := newTestManager(t, Config{
		Runner: &fakeRunner{fn: func(ctx context.Context, job Job, _ func(Progress)) (json.RawMessage, error) {
			if job.Kind == "noop" {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return json.RawMessage(`{"ok":true}`), nil
		}},
		Clock:      clock,
		TTL:        time.Hour,
		GCInterval: 10 * time.Minute,
	})

	done, _, err := m.Submit("protect", json.RawMessage(`{}`), SubmitOptions{IdempotencyKey: "dup"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, done.ID, StateSucceeded)
	running, _, err := m.Submit("noop", json.RawMessage(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)

	// Under the TTL: sweeps run but must not collect, and the
	// idempotency key still dedups.
	clock.Advance(30 * time.Minute)
	if _, existing, err := m.Submit("protect", json.RawMessage(`{}`), SubmitOptions{IdempotencyKey: "dup"}); err != nil || !existing {
		t.Fatalf("young terminal job lost its idempotency key (existing=%v err=%v)", existing, err)
	}
	if _, ok := m.Get(done.ID); !ok {
		t.Fatal("terminal job collected before its TTL")
	}

	// Past the TTL: each poll advances one GC interval until a sweep
	// fires and collects the finished job.
	waitFor(t, "terminal job to expire", func() bool {
		clock.Advance(10 * time.Minute)
		_, ok := m.Get(done.ID)
		return !ok
	})
	// The long-running job outlived every sweep untouched.
	if j, ok := m.Get(running.ID); !ok || j.State != StateRunning {
		t.Fatalf("running job swept (ok=%v state %v)", ok, j.State)
	}
	// The released key starts a brand-new job instead of resurrecting
	// the expired record.
	fresh, existing, err := m.Submit("protect", json.RawMessage(`{}`), SubmitOptions{IdempotencyKey: "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if existing || fresh.ID == done.ID {
		t.Fatalf("expired idempotency key resurrected job %s (existing=%v)", fresh.ID, existing)
	}
	close(release)
	waitState(t, m, running.ID, StateSucceeded)
	waitState(t, m, fresh.ID, StateSucceeded)
}

// TestFileStoreDelete pins Delete round-trips through the on-disk
// document: a deleted record stays gone after reopening, and deleting
// an absent ID is a no-op.
func TestFileStoreDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j := Job{ID: NewID(), Kind: "protect", State: StateSucceeded, MaxAttempts: 1, CreatedAt: time.Now().UTC()}
	if err := s.Put(j); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("no-such-id"); err != nil {
		t.Fatalf("deleting an absent id: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("no-op delete changed Len to %d", s.Len())
	}
	if err := s.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 {
		t.Fatalf("deleted record survived reopen (Len = %d)", re.Len())
	}
}
