package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/url"
	"sync"
	"time"

	"repro/internal/sse"
)

// Clock abstracts time for the manager so retry/backoff schedules are
// testable without real sleeps.
type Clock interface {
	Now() time.Time
	// After fires once after d (like time.After).
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Backoff is the retry delay schedule: Base doubled per failed attempt,
// capped at Max, with up to ±half-delay jitter unless disabled.
type Backoff struct {
	Base time.Duration // delay before the second attempt (default 2s)
	Max  time.Duration // delay ceiling (default 1m)
}

// delay returns the pre-jitter backoff after the given number of
// completed attempts (>= 1): Base << (attempts-1), capped at Max.
func (b Backoff) delay(attempts int) time.Duration {
	d := b.Base
	for i := 1; i < attempts; i++ {
		d *= 2
		if d >= b.Max {
			return b.Max
		}
	}
	return min(d, b.Max)
}

// Runner executes one job attempt. Implementations decode Job.Request
// per Job.Kind, run the pipeline under ctx (honoring cancellation), and
// return the response document. Errors wrapped with Transient are
// retried; anything else fails the job permanently.
type Runner interface {
	// Run executes one attempt, reporting coarse progress through
	// progress (never nil; safe for concurrent use).
	Run(ctx context.Context, job Job, progress func(Progress)) (json.RawMessage, error)
	// Secret returns the job's webhook-signing secret — by convention
	// the master secret embedded in the request payload. Submissions
	// with a webhook are refused when it is empty (unsigned completion
	// callbacks would be forgeable).
	Secret(job Job) string
}

// Config parameterizes the manager.
type Config struct {
	// Store is the durable job store (required).
	Store Store
	// Runner executes attempts (required).
	Runner Runner
	// Kinds is the set of accepted job kinds (required, non-empty).
	Kinds []string
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// MaxAttempts bounds run attempts per job before the dead-letter
	// state (default 3).
	MaxAttempts int
	// AttemptTimeout is the per-attempt context deadline (default 15m;
	// <0 disables).
	AttemptTimeout time.Duration
	// Backoff is the retry schedule (defaults: Base 2s, Max 1m).
	Backoff Backoff
	// DisableJitter makes retry delays exact (tests).
	DisableJitter bool
	// Clock abstracts time (default real time).
	Clock Clock
	// Hub receives per-job events on topic "jobs/<id>" (nil = no
	// events).
	Hub *sse.Hub
	// Webhook delivery tuning: attempts (default 5), retry backoff
	// (defaults: Base 1s, Max 30s) and the POST executor. Deliver is
	// injectable for tests; nil selects an HTTP client with
	// WebhookTimeout (default 10s) per request.
	WebhookMaxAttempts int
	WebhookBackoff     Backoff
	WebhookTimeout     time.Duration
	Deliver            DeliverFunc
	// TTL retains terminal jobs (succeeded, failed, canceled, dead) for
	// this long after they finish; the sweeper then deletes the record
	// and releases its idempotency key, so the store cannot grow without
	// bound. 0 disables garbage collection (records are kept forever).
	TTL time.Duration
	// GCInterval is the sweep period (default TTL/4, capped at 1m
	// minimum).
	GCInterval time.Duration
	// ClassifyError maps a run error to the wire error code stored on
	// the job (nil = no codes).
	ClassifyError func(error) string
	// Logger receives one line per lifecycle event; nil disables.
	Logger *log.Logger
}

// Manager owns the queue: it recovers persisted jobs on Start, runs
// them on a bounded worker pool, and serves submit/get/list/cancel.
type Manager struct {
	cfg   Config
	store Store

	mu       sync.Mutex
	cond     *sync.Cond // signals queue pushes and stop
	queue    []string   // job IDs ready to run, FIFO
	cancels  map[string]context.CancelCauseFunc
	progress map[string]Progress // latest progress of running jobs
	idem     map[string]string   // kind + "\x00" + key -> job ID
	draining bool
	stopped  bool

	stop    chan struct{} // closed by Close: timers and deliveries exit
	workers sync.WaitGroup
	side    sync.WaitGroup // retry timers + webhook deliveries

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New validates the configuration, recovers the store (running jobs —
// interrupted by a crash — go back to queued; queued jobs re-enter the
// queue, oldest first) and starts the worker pool.
func New(cfg Config) (*Manager, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("jobs: Config.Store is required")
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("jobs: Config.Runner is required")
	}
	if len(cfg.Kinds) == 0 {
		return nil, fmt.Errorf("jobs: Config.Kinds is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 15 * time.Minute
	}
	if cfg.Backoff.Base <= 0 {
		cfg.Backoff.Base = 2 * time.Second
	}
	if cfg.Backoff.Max <= 0 {
		cfg.Backoff.Max = time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.WebhookMaxAttempts <= 0 {
		cfg.WebhookMaxAttempts = 5
	}
	if cfg.WebhookBackoff.Base <= 0 {
		cfg.WebhookBackoff.Base = time.Second
	}
	if cfg.WebhookBackoff.Max <= 0 {
		cfg.WebhookBackoff.Max = 30 * time.Second
	}
	if cfg.WebhookTimeout <= 0 {
		cfg.WebhookTimeout = 10 * time.Second
	}
	if cfg.Deliver == nil {
		cfg.Deliver = httpDeliver(cfg.WebhookTimeout)
	}
	m := &Manager{
		cfg:      cfg,
		store:    cfg.Store,
		cancels:  make(map[string]context.CancelCauseFunc),
		progress: make(map[string]Progress),
		idem:     make(map[string]string),
		stop:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	if cfg.TTL > 0 {
		if m.cfg.GCInterval <= 0 {
			m.cfg.GCInterval = max(cfg.TTL/4, time.Minute)
		}
		m.side.Add(1)
		go m.sweeper()
	}
	return m, nil
}

// sweeper periodically garbage-collects terminal jobs older than TTL.
func (m *Manager) sweeper() {
	defer m.side.Done()
	for {
		select {
		case <-m.cfg.Clock.After(m.cfg.GCInterval):
			m.sweep()
		case <-m.stop:
			return
		}
	}
}

// sweep deletes every terminal job that finished at least TTL ago and
// releases its idempotency key, so a later submission with the same key
// starts a fresh job instead of resurrecting the expired record.
func (m *Manager) sweep() {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.cfg.Clock.Now().UTC().Add(-m.cfg.TTL)
	for _, j := range m.store.List() {
		if !j.State.Terminal() || j.FinishedAt.IsZero() || j.FinishedAt.After(cutoff) {
			continue
		}
		if err := m.store.Delete(j.ID); err != nil {
			m.logf("job %s: expiring after TTL: %v", j.ID, err)
			continue
		}
		if j.IdempotencyKey != "" && m.idem[idemIndex(j.TenantID, j.Kind, j.IdempotencyKey)] == j.ID {
			delete(m.idem, idemIndex(j.TenantID, j.Kind, j.IdempotencyKey))
		}
		delete(m.progress, j.ID)
		m.logf("job %s (%s) expired %s after finishing", j.ID, j.Kind, m.cfg.TTL)
	}
}

// recover rebuilds in-memory state from the store: the idempotency
// index, and the queue — jobs persisted as running were interrupted
// mid-attempt (crash or kill -9) and are re-enqueued as queued; their
// started attempt does not count against MaxAttempts because it never
// reported an outcome.
func (m *Manager) recover() error {
	for _, j := range m.store.List() {
		if j.IdempotencyKey != "" {
			m.idem[idemIndex(j.TenantID, j.Kind, j.IdempotencyKey)] = j.ID
		}
		switch j.State {
		case StateRunning:
			j.State = StateQueued
			if j.Attempts > 0 {
				j.Attempts--
			}
			j.StartedAt = time.Time{}
			j.Progress = Progress{}
			if err := m.store.Put(j); err != nil {
				return fmt.Errorf("jobs: re-enqueueing interrupted job %s: %w", j.ID, err)
			}
			m.queue = append(m.queue, j.ID)
			m.logf("job %s (%s) recovered: re-enqueued after interrupted attempt", j.ID, j.Kind)
		case StateQueued:
			m.queue = append(m.queue, j.ID)
		}
	}
	return nil
}

// SubmitOptions carries the per-submission extras.
type SubmitOptions struct {
	// TenantID is the submitting tenant ("" = tenant.DefaultID). It is
	// recorded on the job and scopes the idempotency key.
	TenantID string
	// IdempotencyKey dedups submissions per (tenant, kind) ("" = no
	// dedup).
	IdempotencyKey string
	// Webhook is the completion callback URL (http/https; "" = none).
	Webhook string
	// MaxAttempts overrides the manager default for this job (0 =
	// default).
	MaxAttempts int
}

// Submit enqueues a job. When opts.IdempotencyKey matches an earlier
// submission of the same kind, the existing job is returned with
// existing=true and nothing is enqueued — duplicate submits are safe.
func (m *Manager) Submit(kind string, req json.RawMessage, opts SubmitOptions) (job Job, existing bool, err error) {
	if !m.kindAllowed(kind) {
		return Job{}, false, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	if opts.Webhook != "" {
		u, err := url.Parse(opts.Webhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return Job{}, false, fmt.Errorf("jobs: webhook %q is not an absolute http(s) URL", opts.Webhook)
		}
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = m.cfg.MaxAttempts
	}

	tenantID := normalizeTenant(opts.TenantID)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || m.stopped {
		return Job{}, false, ErrDraining
	}
	if opts.IdempotencyKey != "" {
		if id, ok := m.idem[idemIndex(tenantID, kind, opts.IdempotencyKey)]; ok {
			if j, ok := m.store.Get(id); ok {
				return m.overlayProgressLocked(j), true, nil
			}
		}
	}
	j := Job{
		ID:             NewID(),
		Kind:           kind,
		TenantID:       tenantID,
		State:          StateQueued,
		IdempotencyKey: opts.IdempotencyKey,
		Request:        req,
		MaxAttempts:    maxAttempts,
		CreatedAt:      m.cfg.Clock.Now().UTC(),
		Webhook:        opts.Webhook,
	}
	if opts.Webhook != "" && m.cfg.Runner.Secret(j) == "" {
		return Job{}, false, fmt.Errorf("jobs: webhook requires a signing secret in the request payload")
	}
	if err := m.store.Put(j); err != nil {
		return Job{}, false, err
	}
	if j.IdempotencyKey != "" {
		m.idem[idemIndex(j.TenantID, kind, j.IdempotencyKey)] = j.ID
	}
	m.queue = append(m.queue, j.ID)
	m.cond.Signal()
	m.publish(j)
	m.logf("job %s (%s) queued", j.ID, j.Kind)
	return j, false, nil
}

// Get returns the job, overlaying the live progress of a running
// attempt (progress is not persisted per tick, only per transition).
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.store.Get(id)
	if !ok {
		return Job{}, false
	}
	return m.overlayProgressLocked(j), true
}

// Filter selects jobs for List ("" matches everything).
type Filter struct {
	Kind  string
	State State
	// Tenant restricts the listing to one tenant's jobs ("" = all —
	// the operator view; tenant-facing handlers always set this).
	Tenant string
}

// List returns matching jobs, newest first.
func (m *Manager) List(f Filter) []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	all := m.store.List()
	out := make([]Job, 0, len(all))
	for _, j := range all {
		if f.Tenant != "" && normalizeTenant(j.TenantID) != f.Tenant {
			continue
		}
		if f.Kind != "" && j.Kind != f.Kind {
			continue
		}
		if f.State != "" && j.State != f.State {
			continue
		}
		out = append(out, m.overlayProgressLocked(j))
	}
	// Store order is oldest-first; the listing serves newest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Cancel cancels a job: a queued job transitions to canceled
// immediately; a running job's context is cancelled and the transition
// happens when the attempt unwinds (the returned record still says
// running). Cancelling a terminal job is a no-op returning its current
// state. Unknown IDs return ErrNotFound.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.store.Get(id)
	if !ok {
		return Job{}, ErrNotFound
	}
	switch {
	case j.State.Terminal():
		return j, nil
	case j.State == StateRunning:
		if cancel, ok := m.cancels[id]; ok {
			cancel(ErrCanceled)
		}
		return m.overlayProgressLocked(j), nil
	default: // queued (possibly waiting out a retry backoff)
		j.State = StateCanceled
		j.FinishedAt = m.cfg.Clock.Now().UTC()
		j.Error = ErrCanceled.Error()
		if err := m.store.Put(j); err != nil {
			return Job{}, err
		}
		m.publish(j)
		m.logf("job %s (%s) canceled while queued", j.ID, j.Kind)
		m.maybeDeliverLocked(j)
		return j, nil
	}
}

// Draining reports whether the manager has stopped accepting
// submissions (readiness probes key off this).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining || m.stopped
}

// Drain stops intake: subsequent Submits fail with ErrDraining. Running
// jobs keep running; call Close to stop them.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Close drains and shuts down: intake stops, running attempts are
// cancelled with the drain cause so they fail cleanly back to queued
// (no attempt consumed — they resume on the next boot), retry timers
// and webhook deliveries are released, and every worker is joined. The
// store has been flushed when Close returns (each transition persisted
// synchronously). ctx bounds the wait.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.stopped = true
	close(m.stop)
	for _, cancel := range m.cancels {
		cancel(errDrain)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		m.side.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain incomplete: %w", ctx.Err())
	}
}

// worker is one pool goroutine: pop, run, repeat.
func (m *Manager) worker() {
	defer m.workers.Done()
	for {
		id, ok := m.next()
		if !ok {
			return
		}
		m.runJob(id)
	}
}

// next blocks until a job ID is queued or the manager stops.
func (m *Manager) next() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.stopped {
		m.cond.Wait()
	}
	if m.stopped {
		return "", false
	}
	id := m.queue[0]
	m.queue = m.queue[1:]
	return id, true
}

// runJob executes one attempt of job id and applies the outcome.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	j, ok := m.store.Get(id)
	if !ok || j.State != StateQueued {
		// Cancelled (or otherwise transitioned) while waiting in the
		// queue or a retry timer; nothing to run.
		m.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = m.cfg.Clock.Now().UTC()
	j.NotBefore = time.Time{}
	j.Progress = Progress{}
	if err := m.store.Put(j); err != nil {
		// The store refusing the transition means persistence is broken;
		// leave the job queued on disk and surface the error.
		m.mu.Unlock()
		m.logf("job %s: persisting running state: %v", id, err)
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	if m.cfg.AttemptTimeout > 0 {
		tctx, cancelTimeout := context.WithTimeout(ctx, m.cfg.AttemptTimeout)
		defer cancelTimeout()
		ctx = tctx
	}
	m.cancels[id] = cancel
	delete(m.progress, id)
	m.publish(j)
	m.mu.Unlock()
	m.logf("job %s (%s) running (attempt %d/%d)", j.ID, j.Kind, j.Attempts, j.MaxAttempts)

	progressFn := func(p Progress) {
		m.mu.Lock()
		m.progress[id] = p
		m.mu.Unlock()
		m.publishProgress(id, p)
	}
	result, runErr := m.cfg.Runner.Run(ctx, j, progressFn)
	cause := context.Cause(ctx)
	cancel(nil)

	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cancels, id)
	lastProgress := m.progress[id]
	delete(m.progress, id)
	j, ok = m.store.Get(id)
	if !ok {
		return
	}
	now := m.cfg.Clock.Now().UTC()
	j.Progress = lastProgress

	switch {
	case runErr == nil:
		j.State = StateSucceeded
		j.Result = result
		j.Error, j.ErrorCode = "", ""
		j.FinishedAt = now
	case errors.Is(cause, errDrain):
		// Graceful drain: the attempt was interrupted by shutdown, not
		// by its own failure — back to queued without consuming the
		// attempt; the next boot re-runs it.
		j.State = StateQueued
		j.Attempts--
		j.StartedAt = time.Time{}
		j.Progress = Progress{}
		m.persistAndPublishLocked(j)
		m.logf("job %s (%s) re-queued by drain", j.ID, j.Kind)
		return
	case errors.Is(cause, ErrCanceled):
		j.State = StateCanceled
		j.Error = ErrCanceled.Error()
		j.FinishedAt = now
	case IsTransient(runErr) || errors.Is(runErr, context.DeadlineExceeded):
		// Retryable: attempt-deadline hits count as transient (the
		// machine may simply have been saturated).
		j.Error = runErr.Error()
		j.ErrorCode = m.classify(runErr)
		if j.Attempts >= j.MaxAttempts {
			j.State = StateDead
			j.FinishedAt = now
			break
		}
		delay := m.jittered(m.cfg.Backoff.delay(j.Attempts))
		j.State = StateQueued
		j.NotBefore = now.Add(delay)
		j.StartedAt = time.Time{}
		j.Progress = Progress{}
		m.persistAndPublishLocked(j)
		m.logf("job %s (%s) attempt %d failed (%v); retry in %s", j.ID, j.Kind, j.Attempts, runErr, delay)
		m.side.Add(1)
		go m.requeueAfter(id, delay)
		return
	default:
		j.State = StateFailed
		j.Error = runErr.Error()
		j.ErrorCode = m.classify(runErr)
		j.FinishedAt = now
	}
	m.persistAndPublishLocked(j)
	m.logf("job %s (%s) %s", j.ID, j.Kind, j.State)
	m.maybeDeliverLocked(j)
}

// requeueAfter pushes id back on the queue after the backoff delay (or
// drops the timer at shutdown — the job is already persisted queued, so
// the next boot re-enqueues it).
func (m *Manager) requeueAfter(id string, d time.Duration) {
	defer m.side.Done()
	select {
	case <-m.cfg.Clock.After(d):
	case <-m.stop:
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.queue = append(m.queue, id)
	m.cond.Signal()
}

// persistAndPublishLocked stores j and emits its state event. Callers
// hold m.mu.
func (m *Manager) persistAndPublishLocked(j Job) {
	if err := m.store.Put(j); err != nil {
		m.logf("job %s: persisting %s state: %v", j.ID, j.State, err)
	}
	m.publish(j)
}

// maybeDeliverLocked kicks off webhook delivery for a terminal job.
// Callers hold m.mu.
func (m *Manager) maybeDeliverLocked(j Job) {
	if j.Webhook == "" || !j.State.Terminal() {
		return
	}
	m.side.Add(1)
	go m.deliverWebhook(j.ID)
}

// overlayProgressLocked merges the live progress of a running job into
// its stored snapshot. Callers hold m.mu.
func (m *Manager) overlayProgressLocked(j Job) Job {
	if p, ok := m.progress[j.ID]; ok && j.State == StateRunning {
		j.Progress = p
	}
	return j
}

// jittered spreads d to [d/2, d) so synchronized failures do not retry
// in lockstep.
func (m *Manager) jittered(d time.Duration) time.Duration {
	if m.cfg.DisableJitter || d <= 0 {
		return d
	}
	m.rngMu.Lock()
	f := m.rng.Float64()
	m.rngMu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

func (m *Manager) classify(err error) string {
	if m.cfg.ClassifyError == nil || err == nil {
		return ""
	}
	return m.cfg.ClassifyError(err)
}

func (m *Manager) kindAllowed(kind string) bool {
	for _, k := range m.cfg.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// idemIndex keys the idempotency map by (tenant, kind, key) so two
// tenants reusing the same Idempotency-Key never see each other's jobs.
func idemIndex(tenantID, kind, key string) string {
	return normalizeTenant(tenantID) + "\x00" + kind + "\x00" + key
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}
