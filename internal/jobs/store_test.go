package jobs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleJob(id string, created time.Time) Job {
	return Job{
		ID:          id,
		Kind:        "protect",
		State:       StateQueued,
		MaxAttempts: 3,
		CreatedAt:   created,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	j1 := sampleJob("j-aaaa", base.Add(time.Minute))
	j1.IdempotencyKey = "k1"
	j1.Request = []byte(`{"table":"x"}`)
	j2 := sampleJob("j-bbbb", base)
	j2.State = StateSucceeded
	j2.Result = []byte(`{"rows":5}`)
	j2.FinishedAt = base.Add(time.Hour)
	j2.Deliveries = []Delivery{{Attempt: 1, At: base, Status: 200, OK: true}}
	j2.WebhookOK = true
	for _, j := range []Job{j1, j2} {
		if err := s.Put(j); err != nil {
			t.Fatal(err)
		}
	}

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("store file mode = %v, want 0600 (requests embed secrets)", info.Mode().Perm())
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d jobs, want 2", re.Len())
	}
	got, ok := re.Get("j-aaaa")
	if !ok || got.IdempotencyKey != "k1" {
		t.Fatalf("j-aaaa round-trip mismatch: %+v", got)
	}
	// Persisting re-indents embedded raw JSON; compare compacted.
	var req bytes.Buffer
	if err := json.Compact(&req, got.Request); err != nil {
		t.Fatal(err)
	}
	if req.String() != `{"table":"x"}` {
		t.Fatalf("request round-trip = %s", req.String())
	}
	got2, _ := re.Get("j-bbbb")
	if got2.State != StateSucceeded || !got2.WebhookOK || len(got2.Deliveries) != 1 {
		t.Fatalf("j-bbbb round-trip mismatch: %+v", got2)
	}
	// List is oldest-first (recovery enqueue order).
	list := re.List()
	if list[0].ID != "j-bbbb" || list[1].ID != "j-aaaa" {
		t.Fatalf("list order = [%s %s], want oldest first", list[0].ID, list[1].ID)
	}
}

func TestStoreVersionGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, []byte(`{"jobs_version": 99, "jobs": []}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestStoreRejectsUnknownFieldsAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"jobs_version": 1, "jobs": [], "surprise": true}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(unknown); err == nil {
		t.Fatal("unknown top-level field accepted")
	}

	dup := filepath.Join(dir, "dup.json")
	doc := `{"jobs_version": 1, "jobs": [
		{"id":"j-1","kind":"protect","state":"queued","attempts":0,"max_attempts":3,"created_at":"2026-08-07T09:00:00Z"},
		{"id":"j-1","kind":"protect","state":"queued","attempts":0,"max_attempts":3,"created_at":"2026-08-07T09:00:00Z"}
	]}`
	if err := os.WriteFile(dup, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate job IDs accepted: %v", err)
	}
}

func TestStoreMissingFileAndInMemory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Path() != path {
		t.Fatalf("fresh store: len=%d path=%q", s.Len(), s.Path())
	}

	mem := NewStore()
	if err := mem.Put(sampleJob("j-mem", time.Now())); err != nil {
		t.Fatal(err)
	}
	if mem.Path() != "" {
		t.Fatal("in-memory store has a path")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Open created a file before any Put")
	}
}

func TestStorePutValidates(t *testing.T) {
	s := NewStore()
	bad := sampleJob("", time.Now())
	if err := s.Put(bad); err == nil {
		t.Fatal("job without ID accepted")
	}
	bad = sampleJob("j-x", time.Now())
	bad.State = "limbo"
	if err := s.Put(bad); err == nil {
		t.Fatal("job with invalid state accepted")
	}
}
