package sse

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestHubSubscribeBroadcastOrder(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a := h.Subscribe("jobs/1", 16)
	b := h.Subscribe("jobs/1", 16)
	other := h.Subscribe("jobs/2", 16)

	for i := 0; i < 5; i++ {
		h.Publish("jobs/1", Event{Type: "progress", Data: []byte(fmt.Sprintf("%d", i))})
	}
	a.Close()
	b.Close()

	for name, sub := range map[string]*Subscription{"a": a, "b": b} {
		var got []string
		for ev := range sub.Events() {
			got = append(got, string(ev.Data))
		}
		if len(got) != 5 {
			t.Fatalf("%s received %d events, want 5", name, len(got))
		}
		for i, d := range got {
			if d != fmt.Sprintf("%d", i) {
				t.Fatalf("%s event %d = %q, out of order", name, i, d)
			}
		}
		if sub.Dropped() {
			t.Fatalf("%s reported dropped without falling behind", name)
		}
	}

	select {
	case ev := <-other.Events():
		t.Fatalf("jobs/2 subscriber received foreign event %q", ev.Data)
	default:
	}
}

func TestHubSlowConsumerDropped(t *testing.T) {
	h := NewHub()
	defer h.Close()
	slow := h.Subscribe("t", 2)
	fast := h.Subscribe("t", 16)

	// Nobody drains slow: the third publish overflows its buffer and
	// must drop it rather than block or stall fast.
	for i := 0; i < 5; i++ {
		h.Publish("t", Event{Data: []byte{byte('0' + i)}})
	}

	var slowGot int
	for range slow.Events() {
		slowGot++
	}
	if slowGot != 2 {
		t.Fatalf("slow consumer read %d buffered events, want 2", slowGot)
	}
	if !slow.Dropped() {
		t.Fatal("slow consumer not flagged as dropped")
	}
	if h.Subscribers("t") != 1 {
		t.Fatalf("topic has %d subscribers after drop, want 1 (the fast one)", h.Subscribers("t"))
	}

	fast.Close()
	var fastGot int
	for range fast.Events() {
		fastGot++
	}
	if fastGot != 5 {
		t.Fatalf("fast consumer read %d events, want all 5", fastGot)
	}
	if fast.Dropped() {
		t.Fatal("fast consumer flagged as dropped")
	}
}

// TestHubConcurrency exercises publish/subscribe/close races; run under
// -race it is the hub's memory-safety gate. Some subscribers read
// slowly on purpose so the drop path races with Close.
func TestHubConcurrency(t *testing.T) {
	h := NewHub()
	const topics = 4
	var pubs, subs sync.WaitGroup

	for s := 0; s < 16; s++ {
		subs.Add(1)
		go func(s int) {
			defer subs.Done()
			sub := h.Subscribe(fmt.Sprintf("t%d", s%topics), 1+s%3)
			n := 0
			for range sub.Events() {
				if n++; n >= 10+s {
					sub.Close()
				}
			}
			sub.Dropped() // racy read path under -race
		}(s)
	}
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < 200; i++ {
				h.Publish(fmt.Sprintf("t%d", i%topics), Event{Type: "e", Data: []byte("x")})
			}
		}(p)
	}
	pubs.Wait()
	// Closing the hub ends every remaining subscriber's range loop —
	// racing deliberately with subscriber-side Close and drop.
	h.Close()
	subs.Wait()

	// Post-close operations are inert.
	h.Publish("t0", Event{Data: []byte("late")})
	late := h.Subscribe("t0", 1)
	if _, ok := <-late.Events(); ok {
		t.Fatal("subscription on a closed hub yielded an event")
	}
}

func TestWriteEventFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvent(&buf, Event{Type: "state", Data: []byte(`{"a":1}`)}); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "event: state\ndata: {\"a\":1}\n\n"; got != want {
		t.Fatalf("framing = %q, want %q", got, want)
	}

	buf.Reset()
	if err := WriteEvent(&buf, Event{Data: []byte("l1\nl2")}); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "data: l1\ndata: l2\n\n"; got != want {
		t.Fatalf("multiline framing = %q, want %q", got, want)
	}

	buf.Reset()
	if err := Comment(&buf, "hb"); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), ": hb\n\n"; got != want {
		t.Fatalf("comment = %q, want %q", got, want)
	}
}
