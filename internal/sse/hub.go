// Package sse is the event fan-out substrate of the async job layer: a
// topic-based publish/subscribe hub plus the text/event-stream framing
// helpers the HTTP layer writes with. The hub carries per-job progress
// and state-transition events from the job workers to any number of
// concurrently connected SSE clients.
//
// Delivery semantics are "live tail", not a durable log: a subscriber
// receives events published after it subscribed, in publish order per
// topic. Publishing never blocks — a subscriber whose buffer is full is
// dropped (its channel closed) rather than allowed to stall the
// publisher, because one stuck TCP connection must not back-pressure
// the worker pool. Clients that need a consistent view re-read the job
// resource after the stream ends.
package sse

import (
	"fmt"
	"io"
	"sync"
)

// Event is one published message: a type tag (the SSE "event:" field)
// and a pre-encoded payload (the "data:" field, usually one JSON
// document on a single line).
type Event struct {
	Type string
	Data []byte
}

// Hub routes events from publishers to topic subscribers. The zero
// value is not usable; construct with NewHub. All methods are safe for
// concurrent use.
type Hub struct {
	mu     sync.Mutex
	topics map[string]map[*Subscription]struct{}
	closed bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{topics: make(map[string]map[*Subscription]struct{})}
}

// Subscribe registers a new subscription on topic with the given
// channel buffer (minimum 1). The caller must drain Events() promptly;
// a subscriber that falls buf events behind the publisher is dropped.
// Subscribing on a closed hub returns an already-closed subscription.
func (h *Hub) Subscribe(topic string, buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{hub: h, topic: topic, ch: make(chan Event, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(sub.ch)
		sub.done = true
		return sub
	}
	set := h.topics[topic]
	if set == nil {
		set = make(map[*Subscription]struct{})
		h.topics[topic] = set
	}
	set[sub] = struct{}{}
	return sub
}

// Publish delivers ev to every current subscriber of topic without
// blocking. Subscribers whose buffers are full are unsubscribed and
// their channels closed (the slow-consumer drop); they observe the
// closure as end-of-stream with Dropped() true.
func (h *Hub) Publish(topic string, ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for sub := range h.topics[topic] {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped = true
			h.removeLocked(sub)
		}
	}
}

// Close shuts the hub down: every subscription's channel is closed and
// further Publish/Subscribe calls are no-ops.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, set := range h.topics {
		for sub := range set {
			if !sub.done {
				sub.done = true
				close(sub.ch)
			}
		}
	}
	h.topics = make(map[string]map[*Subscription]struct{})
}

// Subscribers returns the current subscriber count of topic (test and
// introspection helper).
func (h *Hub) Subscribers(topic string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.topics[topic])
}

// removeLocked detaches sub and closes its channel. Callers hold h.mu.
func (h *Hub) removeLocked(sub *Subscription) {
	if sub.done {
		return
	}
	sub.done = true
	close(sub.ch)
	set := h.topics[sub.topic]
	delete(set, sub)
	if len(set) == 0 {
		delete(h.topics, sub.topic)
	}
}

// Subscription is one subscriber's handle on a topic.
type Subscription struct {
	hub   *Hub
	topic string
	ch    chan Event
	// done and dropped are guarded by hub.mu.
	done    bool
	dropped bool
}

// Events is the receive channel. It is closed when the subscription
// ends: Close was called, the hub shut down, or the subscriber was
// dropped for falling behind.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports whether the hub dropped this subscriber for falling
// behind (meaningful once Events is closed).
func (s *Subscription) Dropped() bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.dropped
}

// Close unsubscribes. Pending buffered events remain readable until the
// (now closed) channel drains. Close is idempotent.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	s.hub.removeLocked(s)
}

// ContentType is the SSE response media type.
const ContentType = "text/event-stream"

// WriteEvent writes one event in text/event-stream framing: an
// optional "event:" line, one "data:" line per newline-separated
// payload chunk, and the blank-line terminator.
func WriteEvent(w io.Writer, ev Event) error {
	if ev.Type != "" {
		if _, err := fmt.Fprintf(w, "event: %s\n", ev.Type); err != nil {
			return err
		}
	}
	data := ev.Data
	if len(data) == 0 {
		data = []byte{}
	}
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if _, err := fmt.Fprintf(w, "data: %s\n", data[start:i]); err != nil {
				return err
			}
			start = i + 1
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Comment writes an SSE comment line (":text") — the conventional
// keep-alive heartbeat, ignored by EventSource clients.
func Comment(w io.Writer, text string) error {
	_, err := fmt.Fprintf(w, ": %s\n\n", text)
	return err
}
