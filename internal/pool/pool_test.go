package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Resolve(0); got != want {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Resolve(-5); got != want {
		t.Fatalf("Resolve(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 500, func(i int) error {
			if i%100 == 37 { // fails at 37, 137, 237, ...
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@37" {
			t.Fatalf("workers=%d: got %v, want fail@37", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestChunksPartition(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {3, 10}, {4, 4}, {8, 3}, {16, 1000}, {5, 0},
	} {
		chunks := Chunks(tc.workers, tc.n)
		if tc.n == 0 {
			if chunks != nil {
				t.Fatalf("Chunks(%d, 0) = %v, want nil", tc.workers, chunks)
			}
			continue
		}
		next := 0
		for _, c := range chunks {
			if c.Lo != next || c.Hi <= c.Lo {
				t.Fatalf("Chunks(%d, %d): bad chunk %+v at offset %d", tc.workers, tc.n, c, next)
			}
			next = c.Hi
		}
		if next != tc.n {
			t.Fatalf("Chunks(%d, %d) covers [0, %d)", tc.workers, tc.n, next)
		}
		if len(chunks) > tc.workers {
			t.Fatalf("Chunks(%d, %d) produced %d chunks", tc.workers, tc.n, len(chunks))
		}
	}
}

func TestForEachChunkLowestChunkErrorWins(t *testing.T) {
	// Chunks 1 and 3 fail; the chunk-1 error must win for every worker
	// count that yields at least 4 chunks.
	err := ForEachChunk(4, 400, func(shard, lo, hi int) error {
		if shard != lo/100 {
			return fmt.Errorf("shard %d does not match range [%d,%d)", shard, lo, hi)
		}
		switch shard {
		case 1:
			return errors.New("chunk1")
		case 3:
			return errors.New("chunk3")
		}
		return nil
	})
	if err == nil || err.Error() != "chunk1" {
		t.Fatalf("got %v, want chunk1", err)
	}
}

func TestForEachChunkCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 777
		seen := make([]atomic.Int32, n)
		if err := ForEachChunk(workers, n, func(shard, lo, hi int) error {
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(8, 100, func(i int) (int, error) {
		if i >= 40 {
			return 0, fmt.Errorf("fail@%d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail@40" {
		t.Fatalf("got %v, want fail@40", err)
	}
	if out != nil {
		t.Fatalf("expected nil results on error, got %v", out)
	}
}
