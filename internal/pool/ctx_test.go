package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var calls atomic.Int64
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if calls.Load() != 0 {
			t.Fatalf("workers=%d: %d calls ran under a pre-cancelled ctx", workers, calls.Load())
		}
	}
}

func TestForEachCtxMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := ForEachCtx(ctx, 4, 10_000, func(i int) error {
		if calls.Add(1) == 8 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop dispatch: all %d indices ran", n)
	}
}

func TestForEachCtxFnErrorWinsOverCancel(t *testing.T) {
	// A recorded fn failure takes precedence over the context error, so
	// callers keep the deterministic lowest-index error.
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachCtx(ctx, 2, 50, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want fn error to win", err)
	}
}

func TestForEachChunkCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var calls atomic.Int64
		err := ForEachChunkCtx(ctx, workers, 1000, func(si, lo, hi int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if calls.Load() != 0 {
			t.Fatalf("workers=%d: %d chunks ran under a pre-cancelled ctx", workers, calls.Load())
		}
	}
}

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 4, 10, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", out, err)
	}
}

func TestCtxAt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if err := CtxAt(ctx, 0); err != nil {
		t.Fatalf("live ctx at stride boundary: %v", err)
	}
	cancel()
	if err := CtxAt(ctx, 1); err != nil {
		t.Fatalf("off-stride index must not poll: %v", err)
	}
	if err := CtxAt(ctx, CtxStride); !errors.Is(err, context.Canceled) {
		t.Fatalf("stride boundary after cancel: got %v", err)
	}
}

func TestCtxVariantsMatchPlainOnBackground(t *testing.T) {
	// The plain helpers delegate to the ctx forms with Background; a
	// completed run must never surface a non-nil error from the ctx path.
	if err := ForEach(4, 100, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachChunk(4, 100, func(si, lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(4, 100, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
}
