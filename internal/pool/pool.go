// Package pool is the concurrency substrate of the protection pipeline:
// a bounded worker pool with deterministic, ordered fan-in. Every hot
// path (binning candidate search, watermark embedding/detection,
// experiment sweeps) distributes index-addressed work across a fixed
// number of goroutines and merges results *by index*, so the outcome is
// byte-identical to a sequential run regardless of the worker count or
// goroutine scheduling.
//
// The determinism contract every helper upholds:
//
//   - results are keyed by input index and merged in index order;
//   - when several indices fail, the error reported is the one the
//     sequential loop would have hit first (lowest index / lowest chunk);
//   - worker count only changes wall-clock time, never output.
//
// Every helper has a context-aware form (ForEachCtx, ForEachChunkCtx,
// MapCtx) that stops dispatching new work once the context is done and
// returns the context's error. Cancellation is inherently racy — which
// indices had already started is scheduler-dependent — so the
// determinism contract applies to runs that complete without
// cancellation; a cancelled run deterministically reports the
// cancellation cause (unless a lower-indexed fn failure had already been
// recorded, which wins as usual).
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a configured worker count to the effective one: n when
// positive, GOMAXPROCS when n <= 0 (the "0 = all cores" convention of
// core.Config.Workers).
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 means GOMAXPROCS). Indices are dispatched
// dynamically, so uneven per-index cost still balances. If any calls
// fail, the error of the lowest failing index is returned — the same
// error a sequential loop would have surfaced first.
//
// With workers resolved to 1 the loop runs inline on the caller's
// goroutine and stops at the first error, exactly like a plain for loop.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach under a context: no new index is dispatched once
// ctx is done, and the context error is returned after in-flight calls
// drain — unless an fn call failed, in which case the lowest failing
// index's error wins (matching the uncancelled contract). A context that
// is already done returns immediately without calling fn at all.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if failed.Load() {
					// A lower or equal index may already have failed; keep
					// draining cheaply. Correctness does not depend on this
					// check — it only short-circuits doomed work — because
					// every index below a recorded failure has either run
					// or is running.
					mu.Lock()
					skip := i > firstIdx
					mu.Unlock()
					if skip {
						continue
					}
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Chunk is a contiguous index range [Lo, Hi).
type Chunk struct{ Lo, Hi int }

// Chunks splits [0, n) into at most workers contiguous, balanced,
// non-empty ranges in ascending order. The split depends only on
// (workers, n), so shard-then-merge pipelines built on it are
// reproducible.
func Chunks(workers, n int) []Chunk {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	out := make([]Chunk, 0, workers)
	base, rem := n/workers, n%workers
	lo := 0
	for i := 0; i < workers; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Chunk{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// ForEachChunk shards [0, n) with Chunks and runs fn(shard, lo, hi) for
// every shard concurrently; shard is the chunk's index, for callers that
// keep per-shard accumulators to merge in shard order afterwards. Error
// selection is deterministic: the error of the lowest-indexed failing
// chunk wins, which — for callers that scan their chunk in ascending
// order and stop at the first failure — is exactly the error a
// sequential [0, n) loop would have returned.
func ForEachChunk(workers, n int, fn func(shard, lo, hi int) error) error {
	return ForEachChunkCtx(context.Background(), workers, n, fn)
}

// ForEachChunkCtx is ForEachChunk under a context. A context that is
// already done returns its error before any chunk runs. Because one
// chunk can cover a large index range, long-running fn bodies should
// additionally poll ctx at row-batch boundaries (see CtxStride) to abort
// mid-chunk; ForEachChunkCtx itself only gates chunk dispatch. After all
// chunks drain, a chunk error (lowest shard first) wins over the
// context error.
func ForEachChunkCtx(ctx context.Context, workers, n int, fn func(shard, lo, hi int) error) error {
	chunks := Chunks(workers, n)
	if len(chunks) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(chunks) == 1 {
		return fn(0, chunks[0].Lo, chunks[0].Hi)
	}
	errs := make([]error, len(chunks))
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for ci, c := range chunks {
		go func() {
			defer wg.Done()
			select {
			case <-done:
				errs[ci] = ctx.Err()
				return
			default:
			}
			errs[ci] = fn(ci, c.Lo, c.Hi)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// CtxStride is the row-batch size at which chunked scans poll their
// context: fn bodies iterating a [lo, hi) range check ctx.Err() every
// CtxStride rows, so cancellation aborts a chunk in bounded time without
// putting a branch-heavy check in the per-row hot path.
const CtxStride = 1024

// CtxAt polls ctx at CtxStride boundaries: it returns ctx.Err() when i
// is a multiple of CtxStride (and always at i itself when ctx is nil-safe
// to skip). Callers write
//
//	if err := pool.CtxAt(ctx, row-lo); err != nil { return err }
//
// at the top of their row loop.
func CtxAt(ctx context.Context, i int) error {
	if i%CtxStride != 0 {
		return nil
	}
	return ctx.Err()
}

// Map computes out[i] = fn(i) for i in [0, n) on at most workers
// goroutines, returning the results in input order. On failure it
// returns the error of the lowest failing index and no results.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map under a context: it stops dispatching on cancellation
// and returns the context error (or the lowest failing index's error)
// with no results.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
