// Package anonymity implements k-anonymity verification and the bin
// statistics of the paper. "Records containing the same value constitute
// a bin, and the size of every bin is at least equal to k" (Section 2).
// Figure 14's seamlessness experiment reports, per attribute, the total
// number of bins, the number of bins whose size changed under
// watermarking, and the number of bins that fell below k.
package anonymity

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/relation"
)

// keySep joins cell values into a bin key; \x1f (unit separator) cannot
// appear in normal cell values.
const keySep = "\x1f"

// appendBinKey appends the keySep-joined bin key of the given cell
// values to dst — the single definition of the key shape that BinKey,
// Bins and Flow all share.
func appendBinKey(dst []byte, cellAt func(i int) string, n int) []byte {
	for i := 0; i < n; i++ {
		if i > 0 {
			dst = append(dst, keySep...)
		}
		dst = append(dst, cellAt(i)...)
	}
	return dst
}

// BinKey builds the bin identity of a row over the given column indices.
func BinKey(row []string, colIdx []int) string {
	return string(appendBinKey(nil, func(i int) string { return row[colIdx[i]] }, len(colIdx)))
}

// Bins returns the bin-size map of the table over the given columns:
// bin value-combination → number of tuples. The scan is columnar: bin
// keys assemble from dictionary codes into a reused buffer, so steady
// state allocates only on first sight of a bin.
func Bins(tbl *relation.Table, cols []string) (map[string]int, error) {
	idx := make([]int, len(cols))
	dicts := make([][]string, len(cols))
	codes := make([][]uint32, len(cols))
	for i, c := range cols {
		ci, err := tbl.Schema().Index(c)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
		dicts[i] = tbl.DictValues(ci)
		codes[i] = tbl.Codes(ci)
	}
	out := make(map[string]int)
	n := tbl.NumRows()
	var key []byte
	for row := 0; row < n; row++ {
		key = appendBinKey(key[:0], func(c int) string { return dicts[c][codes[c][row]] }, len(idx))
		out[string(key)]++
	}
	return out, nil
}

// GeneralizedBins returns the bin-size map tbl would have after
// generalizing each of cols to its frontier in gens — Bins of the
// would-be transformed table, computed without materializing it. The
// generalization is resolved once per distinct dictionary entry; rows
// contribute by code. Keys are identical to Bins over the transformed
// table, so the two maps are interchangeable.
func GeneralizedBins(tbl *relation.Table, cols []string, gens map[string]dht.GenSet) (map[string]int, error) {
	dicts := make([][]string, len(cols))
	codes := make([][]uint32, len(cols))
	for i, c := range cols {
		ci, err := tbl.Schema().Index(c)
		if err != nil {
			return nil, err
		}
		gen, ok := gens[c]
		if !ok {
			return nil, fmt.Errorf("anonymity: no generalization frontier for column %s", c)
		}
		colCodes := tbl.Codes(ci)
		dict := tbl.DictValues(ci)
		// Only entries some row still uses are generalized — deletions
		// can orphan dictionary entries, and an orphan must not be able
		// to fail the scan (MapColumnCtx skips them the same way on the
		// real transform path).
		inUse := make([]bool, len(dict))
		for _, code := range colCodes {
			inUse[code] = true
		}
		mapped := make([]string, len(dict))
		for code, v := range dict {
			if !inUse[code] {
				continue
			}
			g, err := gen.GeneralizeValue(v)
			if err != nil {
				return nil, fmt.Errorf("anonymity: column %s value %q: %w", c, v, err)
			}
			mapped[code] = g
		}
		dicts[i] = mapped
		codes[i] = colCodes
	}
	out := make(map[string]int)
	n := tbl.NumRows()
	var key []byte
	for row := 0; row < n; row++ {
		key = appendBinKey(key[:0], func(c int) string { return dicts[c][codes[c][row]] }, len(cols))
		out[string(key)]++
	}
	return out, nil
}

// MinBinSize returns the smallest bin size of the table over cols.
// An empty table has min bin size 0.
func MinBinSize(tbl *relation.Table, cols []string) (int, error) {
	bins, err := Bins(tbl, cols)
	if err != nil {
		return 0, err
	}
	if len(bins) == 0 {
		return 0, nil
	}
	min := -1
	for _, n := range bins {
		if min < 0 || n < min {
			min = n
		}
	}
	return min, nil
}

// SatisfiesK reports whether every bin over cols holds at least k tuples
// — the paper's k-anonymity specification.
func SatisfiesK(tbl *relation.Table, cols []string, k int) (bool, error) {
	if tbl.NumRows() == 0 {
		return k <= 0, nil
	}
	min, err := MinBinSize(tbl, cols)
	if err != nil {
		return false, err
	}
	return min >= k, nil
}

// Stats summarizes the effect of a transformation on a bin map — one
// column of Figure 14.
type Stats struct {
	// Total is the number of distinct bins before the transformation.
	Total int
	// Changed is the number of original bins whose size changed.
	Changed int
	// BelowK is the number of bins (before or after) whose size dropped
	// below k after the transformation.
	BelowK int
	// NewBins counts value-combinations present only after the
	// transformation (created, e.g., by boundary permutation).
	NewBins int
}

// Compare computes the Figure 14 statistics between the bin maps of a
// table before and after watermarking, against the anonymity parameter k.
// Bins present before count toward Total; a before-bin missing after has
// size 0 (changed, and below k if k > 0).
func Compare(before, after map[string]int, k int) Stats {
	s := Stats{Total: len(before)}
	for key, nb := range before {
		na := after[key]
		if na != nb {
			s.Changed++
		}
		if na < k {
			s.BelowK++
		}
	}
	for key := range after {
		if _, ok := before[key]; !ok {
			s.NewBins++
			if after[key] < k {
				s.BelowK++
			}
		}
	}
	return s
}

// String renders the stats like a Figure 14 cell: "total changed belowK".
func (s Stats) String() string {
	return fmt.Sprintf("%d %d %d", s.Total, s.Changed, s.BelowK)
}

// BinFlow records, for one bin, how watermarking moved tuples — the
// empirical counterpart of Lemmas 1 and 2 (Section 6): the per-embedding
// probability of a bin losing a tuple (Pr−) should equal that of gaining
// one (Pr+), so on average watermarking neither shrinks nor grows bins.
type BinFlow struct {
	// Before and After are the bin sizes before/after watermarking.
	Before, After int
	// Out counts tuples that left this bin; In counts tuples that entered.
	Out, In int
}

// Flow compares per-row bin keys before and after watermarking over the
// same (row-aligned) tables, returning per-bin flow statistics keyed by
// the bin's value combination. Both tables must have equal row counts;
// the watermarking agent permutes values in place, so rows stay aligned.
func Flow(before, after *relation.Table, cols []string) (map[string]*BinFlow, error) {
	if before.NumRows() != after.NumRows() {
		return nil, fmt.Errorf("anonymity: row count mismatch %d vs %d", before.NumRows(), after.NumRows())
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci, err := before.Schema().Index(c)
		if err != nil {
			return nil, err
		}
		if _, err := after.Schema().Index(c); err != nil {
			return nil, err
		}
		idx[i] = ci
	}
	flows := make(map[string]*BinFlow)
	get := func(key string) *BinFlow {
		f := flows[key]
		if f == nil {
			f = &BinFlow{}
			flows[key] = f
		}
		return f
	}
	binKeyAt := func(t *relation.Table, i int) string {
		v := t.View(i)
		return string(appendBinKey(nil, func(c int) string { return v.Cell(idx[c]) }, len(idx)))
	}
	for i := 0; i < before.NumRows(); i++ {
		kb := binKeyAt(before, i)
		ka := binKeyAt(after, i)
		get(kb).Before++
		get(ka).After++
		if kb != ka {
			get(kb).Out++
			get(ka).In++
		}
	}
	return flows, nil
}
