package anonymity

import (
	"testing"

	"repro/internal/dht"
	"repro/internal/relation"
)

func makeTable(t *testing.T, rows [][]string) *relation.Table {
	t.Helper()
	tbl := relation.NewTable(relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.Identifying},
		relation.Column{Name: "age", Kind: relation.QuasiNumeric},
		relation.Column{Name: "role", Kind: relation.QuasiCategorical},
	))
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestBins(t *testing.T) {
	tbl := makeTable(t, [][]string{
		{"1", "[20,40)", "Nurse"},
		{"2", "[20,40)", "Nurse"},
		{"3", "[20,40)", "Doctor"},
		{"4", "[40,60)", "Nurse"},
	})
	bins, err := Bins(tbl, []string{"age", "role"})
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	if bins["[20,40)\x1fNurse"] != 2 {
		t.Errorf("bin sizes = %v", bins)
	}
	if _, err := Bins(tbl, []string{"missing"}); err == nil {
		t.Error("missing column accepted")
	}
}

func TestGeneralizedBins(t *testing.T) {
	roleTree, err := dht.NewCategorical("role", dht.Spec{Value: "AnyRole", Children: []dht.Spec{
		{Value: "Medical", Children: []dht.Spec{{Value: "Nurse"}, {Value: "Doctor"}}},
		{Value: "Admin", Children: []dht.Spec{{Value: "Clerk"}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ageTree, err := dht.NewNumeric("age", 0, 100, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	roleGen, err := dht.NewGenSetFromValues(roleTree, []string{"Medical", "Admin"})
	if err != nil {
		t.Fatal(err)
	}
	gens := map[string]dht.GenSet{"role": roleGen, "age": dht.RootGenSet(ageTree)}

	tbl := makeTable(t, [][]string{
		{"1", "34", "Nurse"},
		{"2", "67", "Doctor"},
		{"3", "12", "Clerk"},
		{"4", "45", "Nurse"},
	})
	cols := []string{"age", "role"}
	got, err := GeneralizedBins(tbl, cols, gens)
	if err != nil {
		t.Fatal(err)
	}

	// The contract: identical to Bins over the actually transformed
	// table.
	transformed := tbl.Clone()
	for _, col := range cols {
		ci, err := transformed.Schema().Index(col)
		if err != nil {
			t.Fatal(err)
		}
		gen := gens[col]
		if _, err := transformed.MapColumn(ci, gen.GeneralizeValue); err != nil {
			t.Fatal(err)
		}
	}
	want, err := Bins(transformed, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("bins = %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("bin %q = %d, want %d", k, got[k], n)
		}
	}
	// Medical covers Nurse+Doctor: 3 tuples under (root age, Medical).
	foundMedical := false
	for k, n := range got {
		if n == 3 {
			foundMedical = true
			_ = k
		}
	}
	if !foundMedical {
		t.Errorf("expected a merged Medical bin of 3 tuples: %v", got)
	}

	// Error paths: missing frontier, unresolvable value.
	if _, err := GeneralizedBins(tbl, cols, map[string]dht.GenSet{"age": dht.RootGenSet(ageTree)}); err == nil {
		t.Error("missing frontier accepted")
	}
	bad := makeTable(t, [][]string{{"1", "34", "Astronaut"}})
	if _, err := GeneralizedBins(bad, cols, gens); err == nil {
		t.Error("out-of-domain value accepted")
	}

	// An orphaned out-of-domain dictionary entry — a value no surviving
	// row uses (here: the Astronaut row was deleted) — must not fail the
	// scan, exactly as the real transform path skips unused entries.
	orphan := makeTable(t, [][]string{
		{"1", "34", "Nurse"},
		{"2", "67", "Astronaut"},
	})
	if n := orphan.DeleteWhereView(func(v relation.RowView) bool {
		ci, _ := orphan.Schema().Index("role")
		return v.Cell(ci) == "Astronaut"
	}); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	got2, err := GeneralizedBins(orphan, cols, gens)
	if err != nil {
		t.Fatalf("orphan dictionary entry failed the scan: %v", err)
	}
	if len(got2) != 1 {
		t.Fatalf("orphan-table bins = %v, want one bin", got2)
	}
}

func TestMinBinSizeAndSatisfiesK(t *testing.T) {
	tbl := makeTable(t, [][]string{
		{"1", "[20,40)", "Nurse"},
		{"2", "[20,40)", "Nurse"},
		{"3", "[20,40)", "Doctor"},
	})
	min, err := MinBinSize(tbl, []string{"age", "role"})
	if err != nil || min != 1 {
		t.Errorf("MinBinSize = %d, %v; want 1", min, err)
	}
	ok, err := SatisfiesK(tbl, []string{"age", "role"}, 2)
	if err != nil || ok {
		t.Error("k=2 should fail (Doctor bin has 1)")
	}
	ok, _ = SatisfiesK(tbl, []string{"age"}, 3)
	if !ok {
		t.Error("k=3 over age alone should hold")
	}
	// Single-column vs multi-column: the paper's §4.2 example — columns
	// can satisfy k individually while the combination does not.
	ok, _ = SatisfiesK(tbl, []string{"age", "role"}, 3)
	if ok {
		t.Error("combination must fail k=3")
	}
	// Empty table.
	empty := makeTable(t, nil)
	min, err = MinBinSize(empty, []string{"age"})
	if err != nil || min != 0 {
		t.Errorf("empty MinBinSize = %d, %v", min, err)
	}
	ok, _ = SatisfiesK(empty, []string{"age"}, 5)
	if ok {
		t.Error("empty table with k>0 should report false (no bins at all)")
	}
}

func TestCompare(t *testing.T) {
	before := map[string]int{"a": 5, "b": 3, "c": 4}
	after := map[string]int{"a": 5, "b": 2, "d": 1}
	s := Compare(before, after, 3)
	if s.Total != 3 {
		t.Errorf("Total = %d, want 3", s.Total)
	}
	// b changed (3->2), c changed (4->0): 2 changed.
	if s.Changed != 2 {
		t.Errorf("Changed = %d, want 2", s.Changed)
	}
	// below k=3 after: b(2), c(0), d(1) -> 3.
	if s.BelowK != 3 {
		t.Errorf("BelowK = %d, want 3", s.BelowK)
	}
	if s.NewBins != 1 {
		t.Errorf("NewBins = %d, want 1", s.NewBins)
	}
	if s.String() != "3 2 3" {
		t.Errorf("String = %q", s.String())
	}
}

func TestCompareNoChange(t *testing.T) {
	bins := map[string]int{"a": 5, "b": 7}
	s := Compare(bins, bins, 5)
	if s.Changed != 0 || s.BelowK != 0 || s.NewBins != 0 {
		t.Errorf("identity compare = %+v", s)
	}
}

func TestFlow(t *testing.T) {
	before := makeTable(t, [][]string{
		{"1", "[20,40)", "Nurse"},
		{"2", "[20,40)", "Nurse"},
		{"3", "[40,60)", "Doctor"},
	})
	after := makeTable(t, [][]string{
		{"1", "[20,40)", "Nurse"},  // unchanged
		{"2", "[40,60)", "Nurse"},  // moved bins
		{"3", "[40,60)", "Doctor"}, // unchanged
	})
	flows, err := Flow(before, after, []string{"age", "role"})
	if err != nil {
		t.Fatal(err)
	}
	src := flows["[20,40)\x1fNurse"]
	if src == nil || src.Before != 2 || src.After != 1 || src.Out != 1 || src.In != 0 {
		t.Errorf("source bin flow = %+v", src)
	}
	dst := flows["[40,60)\x1fNurse"]
	if dst == nil || dst.Before != 0 || dst.After != 1 || dst.In != 1 || dst.Out != 0 {
		t.Errorf("dest bin flow = %+v", dst)
	}
	// conservation: total out == total in
	totalOut, totalIn := 0, 0
	for _, f := range flows {
		totalOut += f.Out
		totalIn += f.In
	}
	if totalOut != totalIn {
		t.Errorf("flow not conserved: out=%d in=%d", totalOut, totalIn)
	}
}

func TestFlowErrors(t *testing.T) {
	a := makeTable(t, [][]string{{"1", "x", "y"}})
	b := makeTable(t, nil)
	if _, err := Flow(a, b, []string{"age"}); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := Flow(a, a, []string{"missing"}); err == nil {
		t.Error("missing column accepted")
	}
}

func TestBinKey(t *testing.T) {
	row := []string{"a", "b", "c"}
	if BinKey(row, []int{0, 2}) != "a\x1fc" {
		t.Errorf("BinKey = %q", BinKey(row, []int{0, 2}))
	}
	if BinKey(row, nil) != "" {
		t.Error("empty column set should give empty key")
	}
}
