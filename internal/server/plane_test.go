package server

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/tenant"
)

// tenantFixture is one provisioned tenant plus its plaintext token.
type tenantFixture struct {
	id    string
	token string
}

// newTenantServer builds a server in multi-tenant mode with one tenant
// per spec, returning the frontend and the fixtures in spec order.
func newTenantServer(t *testing.T, cfg Config, specs ...tenant.Record) (*httptest.Server, []tenantFixture) {
	t.Helper()
	store := tenant.New()
	fixtures := make([]tenantFixture, len(specs))
	for i, spec := range specs {
		token, hash := tenant.NewToken()
		spec.TokenSHA256 = hash
		if spec.Role == "" {
			spec.Role = tenant.RoleMember
		}
		if err := store.Put(spec); err != nil {
			t.Fatal(err)
		}
		fixtures[i] = tenantFixture{id: spec.ID, token: token}
	}
	cfg.Tenants = store
	if cfg.Defaults.K == 0 {
		cfg.Defaults = core.Config{K: 15, AutoEpsilon: true}
	}
	ts := testServer(t, cfg)
	return ts, fixtures
}

// doAs performs one JSON request as the given tenant ("" = no token).
func doAs(t *testing.T, token, method, url string, body []byte, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func readBody(t *testing.T, r *http.Response) []byte {
	t.Helper()
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func errorCode(t *testing.T, body []byte) string {
	t.Helper()
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("response is not an error envelope: %v\n%s", err, body)
	}
	return er.Error.Code
}

// TestAuthRequired: with a tenant store configured, pipeline routes
// refuse tokenless (401 + WWW-Authenticate), wrong-token (401) and
// disabled-tenant (403) requests, and serve valid tokens.
func TestAuthRequired(t *testing.T) {
	ts, tenants := newTenantServer(t, Config{},
		tenant.Record{ID: "hospital-a"},
		tenant.Record{ID: "mothballed", Disabled: true},
	)

	r := doAs(t, "", http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	body := readBody(t, r)
	if r.StatusCode != http.StatusUnauthorized || errorCode(t, body) != api.CodeUnauthorized {
		t.Fatalf("tokenless request: %d %s, want 401 unauthorized", r.StatusCode, body)
	}
	if got := r.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Fatalf("WWW-Authenticate = %q, want a Bearer challenge", got)
	}
	if r.Header.Get(api.RequestIDHeader) == "" {
		t.Fatal("401 response carries no request ID")
	}

	r = doAs(t, "mst_00000000000000000000000000000000", http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	if body := readBody(t, r); r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token request: %d %s, want 401", r.StatusCode, body)
	}

	// A disabled tenant's still-valid token is recognized but refused.
	disabledToken := tenants[1].token
	r = doAs(t, disabledToken, http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	body = readBody(t, r)
	if r.StatusCode != http.StatusForbidden || errorCode(t, body) != api.CodeForbidden {
		t.Fatalf("disabled tenant: %d %s, want 403 forbidden", r.StatusCode, body)
	}

	r = doAs(t, tenants[0].token, http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	if body := readBody(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("valid token: %d %s, want 200", r.StatusCode, body)
	}
	// Probes stay open: no token needed even in tenant mode.
	r = doAs(t, "", http.MethodGet, ts.URL+"/healthz", nil, nil)
	if readBody(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("tokenless healthz in tenant mode: %d, want 200", r.StatusCode)
	}
}

// TestAuthGolden20k: the pipeline output is byte-identical through an
// authenticated tenant client — the tenant plane never perturbs
// protection. Hash-pinned to the same golden as TestJobGolden20k.
func TestAuthGolden20k(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-row protect in -short mode")
	}
	const wantResultSHA = "91b1d6b978f70b474cf3a7897dcd77c95e80a48c298a6432ce298f2dd505c606"
	ts, tenants := newTenantServer(t, Config{Defaults: core.Config{K: 20, AutoEpsilon: true}},
		tenant.Record{ID: "golden"})

	tbl, err := datagen.Generate(datagen.Config{Rows: 20000, Seed: 1, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := api.EncodeTable(tbl, api.OutputCSV)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(api.ProtectRequest{
		Table:  wire,
		Key:    api.Key{Secret: "bench", Eta: 75},
		Output: api.OutputCSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := doAs(t, tenants[0].token, http.MethodPost, ts.URL+"/v1/protect", body, nil)
	respBody := readBody(t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("authenticated protect: %d\n%.300s", r.StatusCode, respBody)
	}
	// The sync body is the job-golden result document plus the JSON
	// encoder's trailing newline.
	got := fmt.Sprintf("%x", sha256.Sum256(bytes.TrimRight(respBody, "\n")))
	if got != wantResultSHA {
		t.Fatalf("authenticated protect hash = %s, want %s", got, wantResultSHA)
	}
}

// TestTenantRegistryIsolation: tenant B can neither see, read, delete
// nor trace against tenant A's fingerprint registrations.
func TestTenantRegistryIsolation(t *testing.T) {
	ts, tenants := newTenantServer(t, Config{},
		tenant.Record{ID: "tenant-a"},
		tenant.Record{ID: "tenant-b"},
	)
	a, b := tenants[0], tenants[1]

	// A fingerprints a table for one recipient, registering it.
	wire, err := api.EncodeTable(testTable(t, 600), api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	fpBody, err := json.Marshal(api.FingerprintRequest{
		Table:      wire,
		Secret:     "tenant-a master secret",
		Eta:        10,
		Recipients: []api.RecipientRef{{ID: "clinic-1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := doAs(t, a.token, http.MethodPost, ts.URL+"/v1/fingerprint", fpBody, nil)
	if body := readBody(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint as A: %d %s", r.StatusCode, body)
	}

	// A sees its registration; B's list is empty.
	var listA, listB api.RecipientsResponse
	r = doAs(t, a.token, http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	if err := json.Unmarshal(readBody(t, r), &listA); err != nil || len(listA.Recipients) != 1 {
		t.Fatalf("A's recipients: %v %+v, want exactly clinic-1", err, listA)
	}
	r = doAs(t, b.token, http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	if err := json.Unmarshal(readBody(t, r), &listB); err != nil || len(listB.Recipients) != 0 {
		t.Fatalf("B's recipients: %v %+v, want empty", err, listB)
	}

	// B cannot read or delete A's record even with A's secret in hand —
	// the record does not exist in B's namespace.
	secretHdr := map[string]string{api.SecretHeader: "tenant-a master secret"}
	r = doAs(t, b.token, http.MethodGet, ts.URL+"/v1/recipients/clinic-1", nil, secretHdr)
	if body := readBody(t, r); r.StatusCode != http.StatusNotFound {
		t.Fatalf("B reading A's record: %d %s, want 404", r.StatusCode, body)
	}
	r = doAs(t, b.token, http.MethodDelete, ts.URL+"/v1/recipients/clinic-1", nil, secretHdr)
	if body := readBody(t, r); r.StatusCode != http.StatusNotFound {
		t.Fatalf("B deleting A's record: %d %s, want 404", r.StatusCode, body)
	}

	// B's traceback sees no candidates at all.
	tbBody, err := json.Marshal(api.TracebackRequest{Table: wire, Secret: "tenant-a master secret"})
	if err != nil {
		t.Fatal(err)
	}
	r = doAs(t, b.token, http.MethodPost, ts.URL+"/v1/traceback", tbBody, nil)
	body := readBody(t, r)
	if r.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "no recipients registered") {
		t.Fatalf("B's traceback over A's registry: %d %s, want 400 no-recipients", r.StatusCode, body)
	}

	// A's own record stays readable and deletable.
	r = doAs(t, a.token, http.MethodGet, ts.URL+"/v1/recipients/clinic-1", nil, secretHdr)
	if body := readBody(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("A reading its record: %d %s", r.StatusCode, body)
	}
}

// TestTenantJobIsolation: jobs are invisible across tenants — list,
// get, cancel and the SSE event stream all treat a foreign job ID as
// absent (404, never 403).
func TestTenantJobIsolation(t *testing.T) {
	ts, tenants := newTenantServer(t, Config{},
		tenant.Record{ID: "tenant-a"},
		tenant.Record{ID: "tenant-b"},
	)
	a, b := tenants[0], tenants[1]

	r := doAs(t, a.token, http.MethodPost, ts.URL+"/v1/jobs/protect", protectBody(t, 300, api.OutputRows), nil)
	body := readBody(t, r)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit as A: %d %s", r.StatusCode, body)
	}
	var sub api.JobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	jobID := sub.Job.ID

	// B: list empty, get/cancel/events 404.
	var listB api.JobsListResponse
	r = doAs(t, b.token, http.MethodGet, ts.URL+"/v1/jobs", nil, nil)
	if err := json.Unmarshal(readBody(t, r), &listB); err != nil || listB.Total != 0 {
		t.Fatalf("B's job list: %v total=%d, want empty", err, listB.Total)
	}
	r = doAs(t, b.token, http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil, nil)
	if body := readBody(t, r); r.StatusCode != http.StatusNotFound || errorCode(t, body) != api.CodeNotFound {
		t.Fatalf("B polling A's job: %d %s, want 404 not_found", r.StatusCode, body)
	}
	r = doAs(t, b.token, http.MethodDelete, ts.URL+"/v1/jobs/"+jobID, nil, nil)
	if body := readBody(t, r); r.StatusCode != http.StatusNotFound {
		t.Fatalf("B canceling A's job: %d %s, want 404", r.StatusCode, body)
	}
	r = doAs(t, b.token, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/events", nil, nil)
	if body := readBody(t, r); r.StatusCode != http.StatusNotFound {
		t.Fatalf("B streaming A's job events: %d %s, want 404", r.StatusCode, body)
	}

	// A: list shows it, get works, the event stream opens.
	var listA api.JobsListResponse
	r = doAs(t, a.token, http.MethodGet, ts.URL+"/v1/jobs", nil, nil)
	if err := json.Unmarshal(readBody(t, r), &listA); err != nil || listA.Total != 1 {
		t.Fatalf("A's job list: %v total=%d, want 1", err, listA.Total)
	}
	r = doAs(t, a.token, http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil, nil)
	if body := readBody(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("A polling its job: %d %s", r.StatusCode, body)
	}
	r = doAs(t, a.token, http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/events", nil, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("A streaming its job events: %d", r.StatusCode)
	}
	// Read the first SSE event, then drop the stream.
	br := bufio.NewReader(r.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "event:") {
		t.Fatalf("first SSE line = %q, %v", line, err)
	}
	r.Body.Close()
}

// TestTenantRateLimit: a burst beyond the tenant's bucket is refused
// with 429/rate_limited and a positive whole-second Retry-After, while
// another tenant is unaffected.
func TestTenantRateLimit(t *testing.T) {
	ts, tenants := newTenantServer(t, Config{},
		tenant.Record{ID: "throttled", Quota: tenant.Quota{RequestsPerMinute: 60, Burst: 2}},
		tenant.Record{ID: "calm"},
	)
	limited, calm := tenants[0], tenants[1]

	got429 := false
	for i := 0; i < 3; i++ {
		r := doAs(t, limited.token, http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
		body := readBody(t, r)
		if i < 2 {
			if r.StatusCode != http.StatusOK {
				t.Fatalf("request %d within burst: %d %s", i, r.StatusCode, body)
			}
			continue
		}
		if r.StatusCode != http.StatusTooManyRequests || errorCode(t, body) != api.CodeRateLimited {
			t.Fatalf("request %d over burst: %d %s, want 429 rate_limited", i, r.StatusCode, body)
		}
		if ra := r.Header.Get("Retry-After"); ra == "" || ra == "0" {
			t.Fatalf("Retry-After = %q, want a positive whole-second value", ra)
		}
		got429 = true
	}
	if !got429 {
		t.Fatal("burst never hit the limiter")
	}
	// The other tenant's bucket is untouched.
	r := doAs(t, calm.token, http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	if readBody(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("unthrottled tenant refused: %d", r.StatusCode)
	}
}

// TestRowQuota: a table beyond the tenant's MaxRowsPerRequest is
// refused with 429/quota_exceeded before the pipeline runs.
func TestRowQuota(t *testing.T) {
	ts, tenants := newTenantServer(t, Config{},
		tenant.Record{ID: "small", Quota: tenant.Quota{MaxRowsPerRequest: 100}})

	wire, err := api.EncodeTable(testTable(t, 300), api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(api.ProtectRequest{Table: wire, Key: api.Key{Secret: "s", Eta: 10}})
	if err != nil {
		t.Fatal(err)
	}
	r := doAs(t, tenants[0].token, http.MethodPost, ts.URL+"/v1/protect", body, nil)
	respBody := readBody(t, r)
	if r.StatusCode != http.StatusTooManyRequests || errorCode(t, respBody) != api.CodeQuotaExceeded {
		t.Fatalf("over-quota protect: %d %s, want 429 quota_exceeded", r.StatusCode, respBody)
	}
}

// TestActiveJobQuota: MaxActiveJobs bounds queued+running jobs per
// tenant at submit time.
func TestActiveJobQuota(t *testing.T) {
	ts, tenants := newTenantServer(t, Config{},
		tenant.Record{ID: "queued-up", Quota: tenant.Quota{MaxActiveJobs: 1}})
	tok := tenants[0].token

	// First job (big enough to still be active when the second submit
	// lands microseconds later).
	r := doAs(t, tok, http.MethodPost, ts.URL+"/v1/jobs/protect", protectBody(t, 5000, api.OutputRows), nil)
	if body := readBody(t, r); r.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", r.StatusCode, body)
	}
	r = doAs(t, tok, http.MethodPost, ts.URL+"/v1/jobs/protect", protectBody(t, 300, api.OutputRows), nil)
	body := readBody(t, r)
	if r.StatusCode != http.StatusTooManyRequests || errorCode(t, body) != api.CodeQuotaExceeded {
		t.Fatalf("second submit over job quota: %d %s, want 429 quota_exceeded", r.StatusCode, body)
	}
}

// TestMetricsEndpoint: loopback scrapes pass unauthenticated and the
// exposition carries the service families; off-host scrapes need an
// admin token.
func TestMetricsEndpoint(t *testing.T) {
	ts, tenants := newTenantServer(t, Config{},
		tenant.Record{ID: "ops", Role: tenant.RoleAdmin},
		tenant.Record{ID: "member"},
	)

	// Drive one authenticated request so the counters are non-empty.
	r := doAs(t, tenants[1].token, http.MethodGet, ts.URL+"/v1/recipients", nil, nil)
	readBody(t, r)

	// httptest serves over 127.0.0.1, so the plain scrape is the
	// loopback case.
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readBody(t, r))
	if r.StatusCode != http.StatusOK {
		t.Fatalf("loopback scrape: %d\n%s", r.StatusCode, text)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	for _, family := range []string{
		"# TYPE medshield_http_requests_total counter",
		"# TYPE medshield_http_request_duration_seconds histogram",
		"# TYPE medshield_http_inflight_requests gauge",
		`medshield_http_requests_total{route="/v1/recipients",method="GET",code="200"} 1`,
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("exposition is missing %q:\n%.800s", family, text)
		}
	}

	// Off-host scrapes: refused without a token or with a member token,
	// served with an admin token. Drive the handler directly so the
	// remote address is controllable.
	s, err := New(Config{Defaults: core.Config{K: 15, AutoEpsilon: true}, Tenants: mustStoreOf(t, tenants)})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for _, tc := range []struct {
		name  string
		token string
		want  int
	}{
		{"anonymous", "", http.StatusForbidden},
		{"member", tenants[1].token, http.StatusForbidden},
		{"admin", tenants[0].token, http.StatusOK},
	} {
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		req.RemoteAddr = "203.0.113.9:4711"
		if tc.token != "" {
			req.Header.Set("Authorization", "Bearer "+tc.token)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Fatalf("off-host scrape as %s: %d, want %d", tc.name, rec.Code, tc.want)
		}
	}
}

// mustStoreOf rebuilds a tenant store whose records authenticate the
// fixtures' tokens (for servers constructed outside newTenantServer).
func mustStoreOf(t *testing.T, fixtures []tenantFixture) *tenant.Store {
	t.Helper()
	store := tenant.New()
	for i, f := range fixtures {
		role := tenant.RoleMember
		if i == 0 {
			role = tenant.RoleAdmin
		}
		if err := store.Put(tenant.Record{ID: f.id, Role: role, TokenSHA256: tenant.HashToken(f.token)}); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// TestAuditTrail: every mutating call appends exactly one JSONL record
// carrying tenant, route, status, rows and duration — and no secret
// material (token, master secret, table data).
func TestAuditTrail(t *testing.T) {
	var buf bytes.Buffer
	ts, tenants := newTenantServer(t, Config{Audit: audit.NewLogger(&buf)},
		tenant.Record{ID: "audited"})
	tok := tenants[0].token

	wire, err := api.EncodeTable(testTable(t, 200), api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(api.ProtectRequest{Table: wire, Key: api.Key{Secret: "very secret phrase", Eta: 10}})
	if err != nil {
		t.Fatal(err)
	}
	r := doAs(t, tok, http.MethodPost, ts.URL+"/v1/protect", body, nil)
	if respBody := readBody(t, r); r.StatusCode != http.StatusOK {
		t.Fatalf("protect: %d %s", r.StatusCode, respBody)
	}
	// A read (recipients list) is not audited; a failed mutate is.
	readBody(t, doAs(t, tok, http.MethodGet, ts.URL+"/v1/recipients", nil, nil))
	readBody(t, doAs(t, "", http.MethodPost, ts.URL+"/v1/protect", body, nil))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("audit lines = %d, want exactly 2 (one per mutating call):\n%s", len(lines), buf.String())
	}
	var rec audit.Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("audit line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.Tenant != "audited" || rec.Route != "/v1/protect" || rec.Method != http.MethodPost || rec.Status != http.StatusOK {
		t.Fatalf("audit record = %+v", rec)
	}
	if rec.Rows != 200 {
		t.Fatalf("audit rows = %d, want 200", rec.Rows)
	}
	if rec.RequestID == "" || rec.DurationMS < 0 {
		t.Fatalf("audit record lacks request ID or duration: %+v", rec)
	}
	var denied audit.Record
	if err := json.Unmarshal([]byte(lines[1]), &denied); err != nil {
		t.Fatal(err)
	}
	if denied.Status != http.StatusUnauthorized || denied.Code != api.CodeUnauthorized {
		t.Fatalf("refused call's audit record = %+v, want 401 unauthorized", denied)
	}
	for _, leak := range []string{"very secret phrase", tok, "mst_"} {
		if strings.Contains(buf.String(), leak) {
			t.Fatalf("audit log leaks secret material %q", leak)
		}
	}
}

// TestRequestIDEcho: every response (success and error, open and
// tenant mode) echoes a fresh X-Request-Id.
func TestRequestIDEcho(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	first := r.Header.Get(api.RequestIDHeader)
	readBody(t, r)
	if !strings.HasPrefix(first, "r-") || len(first) != 14 {
		t.Fatalf("request ID = %q, want r-<12 hex>", first)
	}
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	second := r.Header.Get(api.RequestIDHeader)
	readBody(t, r)
	if second == first {
		t.Fatal("request IDs repeat across requests")
	}
}
