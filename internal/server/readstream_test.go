package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/jobs"
	"repro/internal/ontology"
	"repro/internal/registry"
)

// This file covers the read side of the streaming surface: text/csv
// POST /v1/detect and /v1/traceback (body-less responses, verdict in
// the ResultTrailer), the CSV-sourced JSON mode riding the same stream
// cores, the streaming fingerprint fan-out behind Output=csv, the
// configurable /v1/fingerprint recipient cap and the async detect job
// kind.

// detectStreamHeaders is planStreamHeaders plus the provenance record a
// streaming detect runs under.
func detectStreamHeaders(t *testing.T, h http.Header, prov core.Provenance) http.Header {
	t.Helper()
	provJSON, err := json.Marshal(prov)
	if err != nil {
		t.Fatal(err)
	}
	h.Set(api.ProvenanceHeader, string(provJSON))
	return h
}

// tracebackStreamHeaders builds a streaming /v1/traceback request:
// schema + master secret only — the candidates come from the registry,
// so there is no eta and no provenance.
func tracebackStreamHeaders(t *testing.T, cols []api.Column, secret string, chunk int) http.Header {
	t.Helper()
	schemaJSON, err := json.Marshal(cols)
	if err != nil {
		t.Fatal(err)
	}
	h := http.Header{}
	h.Set("Content-Type", api.ContentTypeCSV)
	h.Set(api.SchemaHeader, string(schemaJSON))
	h.Set(api.SecretHeader, secret)
	if chunk > 0 {
		h.Set(api.ChunkHeader, strconv.Itoa(chunk))
	}
	return h
}

// TestHTTPDetectStream drives the streaming /v1/detect end to end: the
// suspect CSV goes up segment-at-a-time, the body comes back empty, and
// the verdict document in the ResultTrailer is identical to the JSON
// mode's — for the marked copy and for an unmarked original.
func TestHTTPDetectStream(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 1500)
	key := crypt.NewWatermarkKeyFromSecret("detect stream secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}

	wire, err := api.EncodeTable(prot.Table, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	var want api.DetectResponse
	status, raw := postJSON(t, ts.URL+"/v1/detect", api.DetectRequest{
		Table:      wire,
		Provenance: prot.Provenance,
		Key:        api.Key{Secret: "detect stream secret", Eta: 25},
	}, &want)
	if status != http.StatusOK {
		t.Fatalf("detect json: %d\n%s", status, raw)
	}
	if !want.Match {
		t.Fatalf("in-memory detect missed its own mark: %+v", want)
	}

	h := detectStreamHeaders(t, planStreamHeaders(t, tbl.Schema(), "detect stream secret", 25, 128), prot.Provenance)
	resp, got := postCSV(t, ts.URL+"/v1/detect", h, csvBytes(t, prot.Table))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect stream: %d\n%s", resp.StatusCode, got)
	}
	if len(got) != 0 {
		t.Fatalf("detect mode must not emit a body, got %d bytes", len(got))
	}
	if ct := resp.Header.Get("Content-Type"); ct != api.ContentTypeCSV {
		t.Fatalf("Content-Type = %q", ct)
	}
	var streamed api.DetectResponse
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.ResultTrailer)), &streamed); err != nil {
		t.Fatalf("result trailer: %v (%q)", err, resp.Trailer.Get(api.ResultTrailer))
	}
	if !reflect.DeepEqual(streamed, want) {
		t.Fatalf("streamed verdict differs from the JSON mode:\n got: %+v\nwant: %+v", streamed, want)
	}
	var stats api.ReadStreamStats
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.StatsTrailer)), &stats); err != nil {
		t.Fatalf("stats trailer: %v (%q)", err, resp.Trailer.Get(api.StatsTrailer))
	}
	rows := prot.Table.NumRows()
	if stats.Rows != rows || stats.Segments != (rows+127)/128 {
		t.Fatalf("implausible read stream stats: %+v", stats)
	}

	// The JSON mode with a CSV-sourced table runs the same stream core
	// and answers with the identical document.
	csvWire, err := api.EncodeTable(prot.Table, api.OutputCSV)
	if err != nil {
		t.Fatal(err)
	}
	var viaCSV api.DetectResponse
	status, raw = postJSON(t, ts.URL+"/v1/detect", api.DetectRequest{
		Table:      csvWire,
		Provenance: prot.Provenance,
		Key:        api.Key{Secret: "detect stream secret", Eta: 25},
	}, &viaCSV)
	if status != http.StatusOK {
		t.Fatalf("detect json over csv: %d\n%s", status, raw)
	}
	if !reflect.DeepEqual(viaCSV, want) {
		t.Fatalf("CSV-sourced JSON verdict differs:\n got: %+v\nwant: %+v", viaCSV, want)
	}

	// Streaming the unmarked original under the same provenance must
	// come back negative — on both modes, identically.
	var wantClean api.DetectResponse
	cleanWire, err := api.EncodeTable(tbl, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	status, raw = postJSON(t, ts.URL+"/v1/detect", api.DetectRequest{
		Table:      cleanWire,
		Provenance: prot.Provenance,
		Key:        api.Key{Secret: "detect stream secret", Eta: 25},
	}, &wantClean)
	if status != http.StatusOK {
		t.Fatalf("clean detect json: %d\n%s", status, raw)
	}
	h = detectStreamHeaders(t, planStreamHeaders(t, tbl.Schema(), "detect stream secret", 25, 64), prot.Provenance)
	resp, got = postCSV(t, ts.URL+"/v1/detect", h, csvBytes(t, tbl))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean detect stream: %d\n%s", resp.StatusCode, got)
	}
	var streamedClean api.DetectResponse
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.ResultTrailer)), &streamedClean); err != nil {
		t.Fatalf("result trailer: %v", err)
	}
	if !reflect.DeepEqual(streamedClean, wantClean) {
		t.Fatalf("clean verdicts diverge:\n got: %+v\nwant: %+v", streamedClean, wantClean)
	}
}

// TestHTTPDetectStreamErrors: read-side streaming failures never use
// the ErrorTrailer — nothing is written before the verdict, so every
// failure keeps the ordinary status + JSON envelope.
func TestHTTPDetectStreamErrors(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 200)
	key := crypt.NewWatermarkKeyFromSecret("detect err secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	body := csvBytes(t, prot.Table)
	good := func() http.Header {
		return detectStreamHeaders(t, planStreamHeaders(t, tbl.Schema(), "detect err secret", 25, 0), prot.Provenance)
	}

	cases := []struct {
		name   string
		mutate func(http.Header)
	}{
		{"missing provenance", func(h http.Header) { h.Del(api.ProvenanceHeader) }},
		{"mangled provenance", func(h http.Header) { h.Set(api.ProvenanceHeader, "{") }},
		{"missing schema", func(h http.Header) { h.Del(api.SchemaHeader) }},
		{"missing secret", func(h http.Header) { h.Del(api.SecretHeader) }},
		{"zero eta", func(h http.Header) { h.Set(api.EtaHeader, "0") }},
		{"bad chunk", func(h http.Header) { h.Set(api.ChunkHeader, "-3") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := good()
			tc.mutate(h)
			resp, got := postCSV(t, ts.URL+"/v1/detect", h, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d\n%s", resp.StatusCode, got)
			}
			var envelope api.ErrorResponse
			if err := json.Unmarshal(got, &envelope); err != nil || envelope.Error.Code != api.CodeBadRequest {
				t.Fatalf("envelope: %s", got)
			}
			if e := resp.Trailer.Get(api.ErrorTrailer); e != "" {
				t.Fatalf("read side must not use the error trailer: %s", e)
			}
		})
	}

	// A malformed record midway through the suspect: still the ordinary
	// envelope, with the segment context preserved.
	t.Run("mid-body csv error", func(t *testing.T) {
		lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
		lines[len(lines)/2] = "not,enough"
		resp, got := postCSV(t, ts.URL+"/v1/detect", good(), []byte(strings.Join(lines, "\n")+"\n"))
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("bad CSV detected successfully:\n%s", got)
		}
		var envelope api.ErrorResponse
		if err := json.Unmarshal(got, &envelope); err != nil || envelope.Error.Code == "" {
			t.Fatalf("envelope: %s", got)
		}
		if !strings.Contains(envelope.Error.Message, "reading segment") {
			t.Fatalf("error lost the segment context: %s", envelope.Error.Message)
		}
	})
}

// TestHTTPTracebackStream fingerprints a fleet with Output=csv (the
// streaming fan-out), then streams the leaked copy back through
// /v1/traceback: empty body, ranked verdicts in the ResultTrailer,
// identical to both JSON modes (rows table and CSV-sourced table).
func TestHTTPTracebackStream(t *testing.T) {
	reg := registry.New()
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}, Registry: reg})
	tbl := testTable(t, 1200)
	wire, err := api.EncodeTable(tbl, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}

	var fp api.FingerprintResponse
	status, raw := postJSON(t, ts.URL+"/v1/fingerprint", api.FingerprintRequest{
		Table:  wire,
		Secret: "fleet master secret",
		Eta:    20,
		Recipients: []api.RecipientRef{
			{ID: "hospital-a"}, {ID: "hospital-b"}, {ID: "hospital-c"},
		},
		Output: api.OutputCSV,
	}, &fp)
	if status != http.StatusOK {
		t.Fatalf("fingerprint: %d\n%s", status, raw)
	}
	if len(fp.Recipients) != 3 || fp.Recipients[1].Table.CSV == "" {
		t.Fatalf("csv fingerprint response: %d recipients", len(fp.Recipients))
	}
	if reg.Len() != 3 {
		t.Fatalf("registry holds %d records", reg.Len())
	}
	leak := []byte(fp.Recipients[1].Table.CSV)

	// JSON mode over the in-memory rows table is the reference verdict;
	// the CSV-sourced JSON mode must agree with it.
	leakTbl, err := api.DecodeTable(fp.Recipients[1].Table)
	if err != nil {
		t.Fatal(err)
	}
	rowsWire, err := api.EncodeTable(leakTbl, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	var want api.TracebackResponse
	status, raw = postJSON(t, ts.URL+"/v1/traceback", api.TracebackRequest{
		Table: rowsWire, Secret: "fleet master secret",
	}, &want)
	if status != http.StatusOK {
		t.Fatalf("traceback json: %d\n%s", status, raw)
	}
	if want.Culprit != "hospital-b" || want.Matches != 1 {
		t.Fatalf("reference verdicts: %+v", want)
	}
	var viaCSV api.TracebackResponse
	status, raw = postJSON(t, ts.URL+"/v1/traceback", api.TracebackRequest{
		Table: fp.Recipients[1].Table, Secret: "fleet master secret",
	}, &viaCSV)
	if status != http.StatusOK {
		t.Fatalf("traceback json over csv: %d\n%s", status, raw)
	}
	if !reflect.DeepEqual(viaCSV, want) {
		t.Fatalf("CSV-sourced JSON verdicts differ:\n got: %+v\nwant: %+v", viaCSV, want)
	}

	// The streaming mode: suspect CSV up, verdict down in the trailer.
	h := tracebackStreamHeaders(t, fp.Recipients[1].Table.Columns, "fleet master secret", 128)
	resp, got := postCSV(t, ts.URL+"/v1/traceback", h, leak)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traceback stream: %d\n%s", resp.StatusCode, got)
	}
	if len(got) != 0 {
		t.Fatalf("traceback mode must not emit a body, got %d bytes", len(got))
	}
	var streamed api.TracebackResponse
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.ResultTrailer)), &streamed); err != nil {
		t.Fatalf("result trailer: %v (%q)", err, resp.Trailer.Get(api.ResultTrailer))
	}
	if !reflect.DeepEqual(streamed, want) {
		t.Fatalf("streamed verdicts differ from the JSON mode:\n got: %+v\nwant: %+v", streamed, want)
	}
	var stats api.ReadStreamStats
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.StatsTrailer)), &stats); err != nil {
		t.Fatalf("stats trailer: %v", err)
	}
	if stats.Rows != tbl.NumRows() || stats.Segments != (tbl.NumRows()+127)/128 {
		t.Fatalf("implausible read stream stats: %+v", stats)
	}

	// Failures keep the ordinary envelope: wrong master secret is the
	// usual 403, an empty registry the usual 400.
	h = tracebackStreamHeaders(t, fp.Recipients[1].Table.Columns, "not the secret", 0)
	resp, got = postCSV(t, ts.URL+"/v1/traceback", h, leak)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong secret: %d\n%s", resp.StatusCode, got)
	}
	var envelope api.ErrorResponse
	if err := json.Unmarshal(got, &envelope); err != nil || envelope.Error.Code != api.CodeKeyMismatch {
		t.Fatalf("wrong-secret envelope: %s", got)
	}
	empty := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	h = tracebackStreamHeaders(t, fp.Recipients[1].Table.Columns, "fleet master secret", 0)
	resp, got = postCSV(t, empty.URL+"/v1/traceback", h, leak)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty registry: %d\n%s", resp.StatusCode, got)
	}
}

// TestHTTPFingerprintCSVOutput pins the streaming fan-out arm of
// /v1/fingerprint: Output=csv rides FingerprintStream (one shared
// transform, N CSV writers) and must be byte-identical to encoding the
// rows-mode copies, with the same provenance and registry effect.
func TestHTTPFingerprintCSVOutput(t *testing.T) {
	regRows, regCSV := registry.New(), registry.New()
	tsRows := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}, Registry: regRows})
	tsCSV := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}, Registry: regCSV})
	tbl := testTable(t, 900)
	wire, err := api.EncodeTable(tbl, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	req := api.FingerprintRequest{
		Table:  wire,
		Secret: "csv fleet secret",
		Eta:    15,
		Recipients: []api.RecipientRef{
			{ID: "clinic-x"}, {ID: "clinic-y"}, {ID: "clinic-z"},
		},
	}

	var viaRows api.FingerprintResponse
	status, raw := postJSON(t, tsRows.URL+"/v1/fingerprint", req, &viaRows)
	if status != http.StatusOK {
		t.Fatalf("fingerprint rows: %d\n%s", status, raw)
	}
	req.Output = api.OutputCSV
	var viaCSV api.FingerprintResponse
	status, raw = postJSON(t, tsCSV.URL+"/v1/fingerprint", req, &viaCSV)
	if status != http.StatusOK {
		t.Fatalf("fingerprint csv: %d\n%s", status, raw)
	}

	if len(viaCSV.Recipients) != len(viaRows.Recipients) {
		t.Fatalf("recipient counts differ: %d vs %d", len(viaCSV.Recipients), len(viaRows.Recipients))
	}
	for i, want := range viaRows.Recipients {
		got := viaCSV.Recipients[i]
		if got.ID != want.ID || got.KeyFingerprint != want.KeyFingerprint {
			t.Fatalf("recipient %d identity diverged: %s/%s", i, got.ID, want.ID)
		}
		rt, err := api.DecodeTable(want.Table)
		if err != nil {
			t.Fatal(err)
		}
		if got.Table.CSV != string(csvBytes(t, rt)) {
			t.Fatalf("recipient %s: streamed CSV differs from the rows-mode copy", got.ID)
		}
		if !reflect.DeepEqual(got.Provenance, want.Provenance) {
			t.Fatalf("recipient %s provenance diverged:\n got: %+v\nwant: %+v", got.ID, got.Provenance, want.Provenance)
		}
		if got.TuplesSelected != want.TuplesSelected || got.BitsEmbedded != want.BitsEmbedded ||
			got.CellsChanged != want.CellsChanged {
			t.Fatalf("recipient %s embed stats diverged: %+v vs %+v", got.ID, got, want)
		}
	}
	if viaCSV.Stats != viaRows.Stats {
		t.Fatalf("plan stats diverged: %+v vs %+v", viaCSV.Stats, viaRows.Stats)
	}
	if regCSV.Len() != 3 {
		t.Fatalf("csv path registered %d records", regCSV.Len())
	}
	recRows, _ := regRows.Get("clinic-y")
	recCSV, ok := regCSV.Get("clinic-y")
	if !ok || recCSV.KeyFingerprint != recRows.KeyFingerprint || recCSV.Plan.Rows != recRows.Plan.Rows {
		t.Fatalf("registry records diverged: %+v vs %+v", recCSV, recRows)
	}
}

// TestHTTPFingerprintRecipientCap pins the configurable batch cap: the
// default is 128 (the old hardwired 32 is gone), and an over-cap batch
// is refused with the too_many_recipients machine code before anything
// reaches the registry.
func TestHTTPFingerprintRecipientCap(t *testing.T) {
	s, ts := newJobServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	if s.cfg.MaxFingerprintRecipients != 128 {
		t.Fatalf("default cap = %d, want 128", s.cfg.MaxFingerprintRecipients)
	}

	// 33 recipients — over the old hardwired 32 — pass under the default.
	tbl := testTable(t, 300)
	wire, err := api.EncodeTable(tbl, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	recips := make([]api.RecipientRef, 33)
	for i := range recips {
		recips[i] = api.RecipientRef{ID: fmt.Sprintf("site-%02d", i)}
	}
	var fp api.FingerprintResponse
	status, raw := postJSON(t, ts.URL+"/v1/fingerprint", api.FingerprintRequest{
		Table: wire, Secret: "cap secret", Eta: 15, Recipients: recips,
	}, &fp)
	if status != http.StatusOK {
		t.Fatalf("33 recipients under the default cap: %d\n%s", status, raw)
	}
	if len(fp.Recipients) != 33 {
		t.Fatalf("got %d recipients", len(fp.Recipients))
	}

	// A configured cap refuses larger batches with the machine code.
	reg := registry.New()
	capped := testServer(t, Config{
		Defaults:                 core.Config{K: 15, AutoEpsilon: true},
		MaxFingerprintRecipients: 2,
		Registry:                 reg,
	})
	status, raw = postJSON(t, capped.URL+"/v1/fingerprint", api.FingerprintRequest{
		Table: wire, Secret: "cap secret", Eta: 15,
		Recipients: []api.RecipientRef{{ID: "a"}, {ID: "b"}, {ID: "c"}},
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("over-cap batch: %d\n%s", status, raw)
	}
	var envelope api.ErrorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Error.Code != api.CodeTooManyRecipients {
		t.Fatalf("over-cap envelope: %s", raw)
	}
	if !strings.Contains(envelope.Error.Message, "at most 2") {
		t.Fatalf("envelope lost the cap: %s", envelope.Error.Message)
	}
	if reg.Len() != 0 {
		t.Fatalf("refused batch reached the registry (%d records)", reg.Len())
	}
	// At the cap passes.
	status, raw = postJSON(t, capped.URL+"/v1/fingerprint", api.FingerprintRequest{
		Table: wire, Secret: "cap secret", Eta: 15,
		Recipients: []api.RecipientRef{{ID: "a"}, {ID: "b"}},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("at-cap batch: %d\n%s", status, raw)
	}
}

// TestJobDetect submits the same CSV-sourced detect request sync and
// async: the job result must be byte-identical to the sync response
// body, and the verdict must find the mark.
func TestJobDetect(t *testing.T) {
	_, ts := newJobServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 600)
	key := crypt.NewWatermarkKeyFromSecret("job detect secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := fw.Protect(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	csvWire, err := api.EncodeTable(prot.Table, api.OutputCSV)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(api.DetectRequest{
		Table:      csvWire,
		Provenance: prot.Provenance,
		Key:        api.Key{Secret: "job detect secret", Eta: 25},
	})
	if err != nil {
		t.Fatal(err)
	}

	r, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	syncBody, _ := readAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("sync detect: %d\n%s", r.StatusCode, syncBody)
	}

	status, sub := submitJob(t, ts.URL, "detect", body, nil)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d", status)
	}
	final := waitJob(t, ts.URL, sub.Job.ID)
	if final.Job.State != jobs.StateSucceeded {
		t.Fatalf("job ended %s: %s %s", final.Job.State, final.Job.ErrorCode, final.Job.Error)
	}
	if !bytes.Equal(syncBody, append(bytes.Clone(final.Result), '\n')) {
		t.Fatalf("async detect differs from sync body:\nsync:  %s\nasync: %s", syncBody, final.Result)
	}
	var det api.DetectResponse
	if err := json.Unmarshal(final.Result, &det); err != nil {
		t.Fatal(err)
	}
	if !det.Match {
		t.Fatalf("async detect missed the mark: %+v", det)
	}
}
