package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/anonymity"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/ontology"
	"repro/internal/relation"
)

// streamHeaders builds the request headers of one streaming call.
func streamHeaders(t *testing.T, plan *core.Plan, schema *relation.Schema, secret string, eta uint64, chunk int) http.Header {
	t.Helper()
	planJSON, err := api.EncodePlanHeader(plan)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]api.Column, schema.NumColumns())
	for i := 0; i < schema.NumColumns(); i++ {
		c := schema.Column(i)
		cols[i] = api.Column{Name: c.Name, Kind: c.Kind.String()}
	}
	schemaJSON, err := json.Marshal(cols)
	if err != nil {
		t.Fatal(err)
	}
	h := http.Header{}
	h.Set("Content-Type", api.ContentTypeCSV)
	h.Set(api.PlanHeader, planJSON)
	h.Set(api.SchemaHeader, string(schemaJSON))
	h.Set(api.SecretHeader, secret)
	h.Set(api.EtaHeader, strconv.FormatUint(eta, 10))
	if chunk > 0 {
		h.Set(api.ChunkHeader, strconv.Itoa(chunk))
	}
	return h
}

// postCSV fires one streaming request and returns the response with its
// body fully read (so trailers are populated).
func postCSV(t *testing.T, url string, h http.Header, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header = h
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

func csvBytes(t *testing.T, tbl *relation.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHTTPApplyStream drives the streaming /v1/apply end to end: CSV
// body in, protected CSV out, byte-identical to the in-memory apply,
// with the effective plan and run stats in the trailers.
func TestHTTPApplyStream(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 1500)
	key := crypt.NewWatermarkKeyFromSecret("stream secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fw.PlanContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := fw.Apply(tbl, plan, key)
	if err != nil {
		t.Fatal(err)
	}
	want := csvBytes(t, prot.Table)

	h := streamHeaders(t, plan, tbl.Schema(), "stream secret", 25, 128)
	resp, got := postCSV(t, ts.URL+"/v1/apply", h, csvBytes(t, tbl))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply stream: %d\n%s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != api.ContentTypeCSV {
		t.Fatalf("Content-Type = %q", ct)
	}
	if e := resp.Trailer.Get(api.ErrorTrailer); e != "" {
		t.Fatalf("unexpected error trailer: %s", e)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed CSV differs from the in-memory apply")
	}
	var stats api.StreamStats
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.StatsTrailer)), &stats); err != nil {
		t.Fatalf("stats trailer: %v", err)
	}
	if stats.Rows != prot.Table.NumRows() || stats.BitsEmbedded == 0 {
		t.Fatalf("implausible stream stats: %+v", stats)
	}
	effPlan, err := api.DecodePlanHeader(resp.Trailer.Get(api.PlanHeader))
	if err != nil {
		t.Fatalf("plan trailer: %v", err)
	}
	if effPlan.Rows != prot.Plan.Rows || len(effPlan.Bins) != len(prot.Plan.Bins) {
		t.Fatalf("effective plan diverged: rows %d/%d bins %d/%d",
			effPlan.Rows, prot.Plan.Rows, len(effPlan.Bins), len(prot.Plan.Bins))
	}

	// The JSON mode of the same endpoint returns the same table.
	wire, err := api.EncodeTable(tbl, api.OutputCSV)
	if err != nil {
		t.Fatal(err)
	}
	var applied api.ApplyResponse
	status, raw := postJSON(t, ts.URL+"/v1/apply", api.ApplyRequest{
		Table: wire, Plan: *plan, Key: api.Key{Secret: "stream secret", Eta: 25}, Output: api.OutputCSV,
	}, &applied)
	if status != http.StatusOK {
		t.Fatalf("apply json: %d\n%s", status, raw)
	}
	if applied.Table.CSV != string(want) {
		t.Fatal("JSON-mode apply differs from the in-memory apply")
	}
}

// TestHTTPAppendStream drives the streaming /v1/append: the delta CSV
// is protected under the frozen plan, and the advanced plan rides the
// trailer for the next batch.
func TestHTTPAppendStream(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	all := testTable(t, 2000)
	base, err := all.Slice(0, 1600)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := all.Slice(1600, 2000)
	if err != nil {
		t.Fatal(err)
	}
	key := crypt.NewWatermarkKeyFromSecret("append secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := fw.Protect(base, key)
	if err != nil {
		t.Fatal(err)
	}
	app, err := fw.Append(delta, &prot.Plan, key)
	if err != nil {
		t.Fatal(err)
	}

	h := streamHeaders(t, &prot.Plan, delta.Schema(), "append secret", 25, 97)
	resp, got := postCSV(t, ts.URL+"/v1/append", h, csvBytes(t, delta))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append stream: %d\n%s", resp.StatusCode, got)
	}
	if e := resp.Trailer.Get(api.ErrorTrailer); e != "" {
		t.Fatalf("unexpected error trailer: %s", e)
	}
	if want := csvBytes(t, app.Table); !bytes.Equal(got, want) {
		t.Fatal("streamed delta differs from the in-memory append")
	}
	advanced, err := api.DecodePlanHeader(resp.Trailer.Get(api.PlanHeader))
	if err != nil {
		t.Fatalf("plan trailer: %v", err)
	}
	if advanced.Rows != app.Plan.Rows || len(advanced.Bins) != len(app.Plan.Bins) {
		t.Fatalf("advanced plan diverged: rows %d/%d bins %d/%d",
			advanced.Rows, app.Plan.Rows, len(advanced.Bins), len(app.Plan.Bins))
	}
}

// TestHTTPStreamBeyondBodyCap is the point of the streaming mode: a CSV
// body several times MaxBodyBytes passes — metered per segment — while
// the same payload is rejected whole by the JSON mode's cap, and a
// single segment larger than the cap still yields 413.
func TestHTTPStreamBeyondBodyCap(t *testing.T) {
	ts := testServer(t, Config{
		Defaults:     core.Config{K: 15, AutoEpsilon: true},
		MaxBodyBytes: 16 << 10,
	})
	tbl := testTable(t, 2000) // ~100 KiB of CSV, >> the 16 KiB cap
	key := crypt.NewWatermarkKeyFromSecret("cap secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fw.PlanContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	body := csvBytes(t, tbl)
	if int64(len(body)) <= 4*(16<<10) {
		t.Fatalf("fixture too small to exercise the cap: %d bytes", len(body))
	}

	// Small segments: every segment fits the cap, the whole body passes.
	h := streamHeaders(t, plan, tbl.Schema(), "cap secret", 25, 64)
	resp, got := postCSV(t, ts.URL+"/v1/apply", h, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed body beyond the cap: %d\n%s", resp.StatusCode, got)
	}
	if e := resp.Trailer.Get(api.ErrorTrailer); e != "" {
		t.Fatalf("unexpected error trailer: %s", e)
	}

	// One giant segment: the first segment blows the per-segment budget
	// before any output, so the ordinary 413 envelope applies.
	h = streamHeaders(t, plan, tbl.Schema(), "cap secret", 25, 1<<19)
	resp, got = postCSV(t, ts.URL+"/v1/apply", h, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized segment: %d\n%s", resp.StatusCode, got)
	}
	var envelope api.ErrorResponse
	if err := json.Unmarshal(got, &envelope); err != nil || envelope.Error.Code != api.CodePayloadTooLarge {
		t.Fatalf("oversized segment envelope: %s", got)
	}

	// The JSON mode on the same route keeps the whole-body cap.
	wire, err := api.EncodeTable(tbl, api.OutputCSV)
	if err != nil {
		t.Fatal(err)
	}
	status, raw := postJSON(t, ts.URL+"/v1/apply", api.ApplyRequest{
		Table: wire, Plan: *plan, Key: api.Key{Secret: "cap secret", Eta: 25},
	}, nil)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("json mode ignored the body cap: %d\n%s", status, raw)
	}
}

// TestHTTPStreamBadRequests covers the pre-stream failures: they keep
// the ordinary status + JSON error envelope.
func TestHTTPStreamBadRequests(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 200)
	key := crypt.NewWatermarkKeyFromSecret("bad secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fw.PlanContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	body := csvBytes(t, tbl)
	good := func() http.Header { return streamHeaders(t, plan, tbl.Schema(), "bad secret", 25, 0) }

	cases := []struct {
		name   string
		mutate func(http.Header)
	}{
		{"missing plan", func(h http.Header) { h.Del(api.PlanHeader) }},
		{"mangled plan", func(h http.Header) { h.Set(api.PlanHeader, "{") }},
		{"missing schema", func(h http.Header) { h.Del(api.SchemaHeader) }},
		{"missing secret", func(h http.Header) { h.Del(api.SecretHeader) }},
		{"zero eta", func(h http.Header) { h.Set(api.EtaHeader, "0") }},
		{"bad chunk", func(h http.Header) { h.Set(api.ChunkHeader, "-3") }},
		{"chunk beyond cap", func(h http.Header) { h.Set(api.ChunkHeader, "9999999") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := good()
			tc.mutate(h)
			resp, got := postCSV(t, ts.URL+"/v1/apply", h, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d\n%s", resp.StatusCode, got)
			}
			var envelope api.ErrorResponse
			if err := json.Unmarshal(got, &envelope); err != nil || envelope.Error.Code != api.CodeBadRequest {
				t.Fatalf("envelope: %s", got)
			}
		})
	}
}

// TestHTTPStreamMidBodyError pins the trailer error contract: a verdict
// that only exists at end-of-stream (plan drift on a thin new bin)
// arrives after the 200 status and the body, as api.ErrorTrailer.
func TestHTTPStreamMidBodyError(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	all := testTable(t, 2000)
	base, err := all.Slice(0, 1600)
	if err != nil {
		t.Fatal(err)
	}
	// A small delta batch makes a thin bin (under k rows of its own)
	// near-certain, which the doctored plan below turns into drift.
	delta, err := all.Slice(1600, 1700)
	if err != nil {
		t.Fatal(err)
	}
	key := crypt.NewWatermarkKeyFromSecret("drift secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := fw.Protect(base, key)
	if err != nil {
		t.Fatal(err)
	}
	app, err := fw.Append(delta, &prot.Plan, key)
	if err != nil {
		t.Fatal(err)
	}
	// Doctor the plan: hide one thin delta bin from the published
	// record, so the streamed batch appears to open it below k.
	deltaBins, err := anonymity.Bins(app.Table, delta.Schema().QuasiColumns())
	if err != nil {
		t.Fatal(err)
	}
	thin := ""
	for bin, n := range deltaBins {
		if n < prot.Plan.K {
			thin = bin
			break
		}
	}
	if thin == "" {
		t.Skip("every delta bin holds >= k rows; fixture cannot drift")
	}
	doctored := prot.Plan
	doctored.Bins = make(map[string]int, len(prot.Plan.Bins))
	for bin, n := range prot.Plan.Bins {
		if bin != thin {
			doctored.Bins[bin] = n
		}
	}

	h := streamHeaders(t, &doctored, delta.Schema(), "drift secret", 25, 50)
	resp, got := postCSV(t, ts.URL+"/v1/append", h, csvBytes(t, delta))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-body verdicts cannot change the status: %d\n%s", resp.StatusCode, got)
	}
	if len(got) == 0 {
		t.Fatal("expected a partial body before the verdict")
	}
	var wireErr api.Error
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.ErrorTrailer)), &wireErr); err != nil {
		t.Fatalf("error trailer: %v (%q)", err, resp.Trailer.Get(api.ErrorTrailer))
	}
	if wireErr.Code != api.CodePlanDrift {
		t.Fatalf("error trailer code = %q, want %q (%s)", wireErr.Code, api.CodePlanDrift, wireErr.Message)
	}
	if !strings.Contains(wireErr.Message, "re-plan") {
		t.Fatalf("verdict lost its remedy: %s", wireErr.Message)
	}
	if resp.Trailer.Get(api.StatsTrailer) != "" {
		t.Fatal("failed stream must not report stats")
	}
}

// planStreamHeaders is streamHeaders without the PlanHeader: the
// planning mode computes the plan.
func planStreamHeaders(t *testing.T, schema *relation.Schema, secret string, eta uint64, chunk int) http.Header {
	t.Helper()
	cols := make([]api.Column, schema.NumColumns())
	for i := 0; i < schema.NumColumns(); i++ {
		c := schema.Column(i)
		cols[i] = api.Column{Name: c.Name, Kind: c.Kind.String()}
	}
	schemaJSON, err := json.Marshal(cols)
	if err != nil {
		t.Fatal(err)
	}
	h := http.Header{}
	h.Set("Content-Type", api.ContentTypeCSV)
	h.Set(api.SchemaHeader, string(schemaJSON))
	h.Set(api.SecretHeader, secret)
	h.Set(api.EtaHeader, strconv.FormatUint(eta, 10))
	if chunk > 0 {
		h.Set(api.ChunkHeader, strconv.Itoa(chunk))
	}
	return h
}

// TestHTTPPlanStream drives the streaming /v1/plan end to end: CSV body
// in, empty body out, and the computed plan — identical to the
// in-memory PlanContext's — in the PlanHeader trailer beside a
// PlanStreamStats summary.
func TestHTTPPlanStream(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 1500)
	key := crypt.NewWatermarkKeyFromSecret("plan secret", 25)
	fw, err := core.New(ontology.Trees(), core.Config{K: 15, AutoEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fw.PlanContext(context.Background(), tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := core.MarshalPlan(want)
	if err != nil {
		t.Fatal(err)
	}

	h := planStreamHeaders(t, tbl.Schema(), "plan secret", 25, 128)
	resp, got := postCSV(t, ts.URL+"/v1/plan", h, csvBytes(t, tbl))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan stream: %d\n%s", resp.StatusCode, got)
	}
	if len(got) != 0 {
		t.Fatalf("plan mode must not emit a body, got %d bytes", len(got))
	}
	planned, err := api.DecodePlanHeader(resp.Trailer.Get(api.PlanHeader))
	if err != nil {
		t.Fatalf("plan trailer: %v", err)
	}
	gotJSON, err := core.MarshalPlan(planned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("streamed plan differs from PlanContext:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
	var stats api.PlanStreamStats
	if err := json.Unmarshal([]byte(resp.Trailer.Get(api.StatsTrailer)), &stats); err != nil {
		t.Fatalf("stats trailer: %v (%q)", err, resp.Trailer.Get(api.StatsTrailer))
	}
	if stats.Rows != tbl.NumRows() || stats.Segments != (tbl.NumRows()+127)/128 ||
		stats.K != want.K || stats.EffectiveK != want.EffectiveK || stats.AvgLoss != want.AvgLoss {
		t.Fatalf("implausible plan stream stats: %+v", stats)
	}

	// The JSON mode with a CSV-sourced table streams through the same
	// planner and returns the same plan document.
	wire, err := api.EncodeTable(tbl, api.OutputCSV)
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON api.PlanResponse
	status, raw := postJSON(t, ts.URL+"/v1/plan", api.PlanRequest{
		Table: wire, Key: api.Key{Secret: "plan secret", Eta: 25},
	}, &viaJSON)
	if status != http.StatusOK {
		t.Fatalf("plan json: %d\n%s", status, raw)
	}
	jsonPlanJSON, err := core.MarshalPlan(&viaJSON.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonPlanJSON, wantJSON) {
		t.Fatal("JSON-mode CSV-sourced plan differs from PlanContext")
	}
	if viaJSON.Stats.Rows != tbl.NumRows() {
		t.Fatalf("json stats rows = %d, want %d", viaJSON.Stats.Rows, tbl.NumRows())
	}
}

// TestHTTPPlanStreamErrors: the plan mode writes nothing before the
// pass completes, so even data errors discovered deep in the body keep
// the ordinary status + JSON envelope — no ErrorTrailer.
func TestHTTPPlanStreamErrors(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 300)
	body := csvBytes(t, tbl)

	// Pre-stream failures.
	for _, tc := range []struct {
		name   string
		mutate func(http.Header)
	}{
		{"missing schema", func(h http.Header) { h.Del(api.SchemaHeader) }},
		{"missing secret", func(h http.Header) { h.Del(api.SecretHeader) }},
		{"zero eta", func(h http.Header) { h.Set(api.EtaHeader, "0") }},
		{"bad chunk", func(h http.Header) { h.Set(api.ChunkHeader, "-3") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := planStreamHeaders(t, tbl.Schema(), "plan secret", 25, 0)
			tc.mutate(h)
			resp, got := postCSV(t, ts.URL+"/v1/plan", h, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d\n%s", resp.StatusCode, got)
			}
			var envelope api.ErrorResponse
			if err := json.Unmarshal(got, &envelope); err != nil || envelope.Error.Code != api.CodeBadRequest {
				t.Fatalf("envelope: %s", got)
			}
		})
	}

	// A malformed record midway through the body: still the ordinary
	// envelope (an error status and a JSON body, never an ErrorTrailer),
	// since the plan mode commits no early bytes.
	t.Run("mid-body csv error", func(t *testing.T) {
		lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
		lines[len(lines)/2] = "not,enough"
		h := planStreamHeaders(t, tbl.Schema(), "plan secret", 25, 32)
		resp, got := postCSV(t, ts.URL+"/v1/plan", h, []byte(strings.Join(lines, "\n")+"\n"))
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("bad CSV planned successfully:\n%s", got)
		}
		var envelope api.ErrorResponse
		if err := json.Unmarshal(got, &envelope); err != nil || envelope.Error.Code == "" {
			t.Fatalf("envelope: %s", got)
		}
		if !strings.Contains(envelope.Error.Message, "reading segment") {
			t.Fatalf("error lost the segment context: %s", envelope.Error.Message)
		}
		if e := resp.Trailer.Get(api.ErrorTrailer); e != "" {
			t.Fatalf("plan mode must not use the error trailer: %s", e)
		}
	})
}
