package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/datagen"
)

// TestHTTPPlanAppendRoundTrip drives the incremental-ingestion service
// flow end to end: protect a base table, POST a delta to /v1/append
// under the returned plan, and detect the mark over the published
// union.
func TestHTTPPlanAppendRoundTrip(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	all, err := datagen.Generate(datagen.Config{Rows: 2800, Seed: 42, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := all.Slice(0, 2500)
	delta, _ := all.Slice(2500, 2800)
	key := api.Key{Secret: "append service secret", Eta: 25}

	baseWire, err := api.EncodeTable(base, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	var prot api.ProtectResponse
	status, raw := postJSON(t, ts.URL+"/v1/protect", api.ProtectRequest{Table: baseWire, Key: key}, &prot)
	if status != http.StatusOK {
		t.Fatalf("protect: %d\n%s", status, raw)
	}
	if len(prot.Plan.Bins) == 0 || prot.Plan.Rows != base.NumRows() {
		t.Fatalf("protect response plan lacks the published bin record: rows=%d bins=%d",
			prot.Plan.Rows, len(prot.Plan.Bins))
	}

	// The plan survives its own wire round-trip (the client stores it as
	// JSON and sends it back verbatim).
	planDoc, err := json.Marshal(prot.Plan)
	if err != nil {
		t.Fatal(err)
	}
	var storedPlan core.Plan
	if err := json.Unmarshal(planDoc, &storedPlan); err != nil {
		t.Fatal(err)
	}

	deltaWire, err := api.EncodeTable(delta, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	var app api.AppendResponse
	status, raw = postJSON(t, ts.URL+"/v1/append",
		api.AppendRequest{Table: deltaWire, Plan: storedPlan, Key: key}, &app)
	if status != http.StatusOK {
		t.Fatalf("append: %d\n%s", status, raw)
	}
	if app.Stats.Rows != delta.NumRows() || app.Stats.TotalRows != base.NumRows()+delta.NumRows() {
		t.Fatalf("implausible append stats: %+v", app.Stats)
	}

	// Publish the union and detect over it.
	union, err := api.DecodeTable(prot.Table)
	if err != nil {
		t.Fatal(err)
	}
	deltaTbl, err := api.DecodeTable(app.Table)
	if err != nil {
		t.Fatal(err)
	}
	if err := union.AppendTable(deltaTbl); err != nil {
		t.Fatal(err)
	}
	unionWire, err := api.EncodeTable(union, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	var det api.DetectResponse
	status, raw = postJSON(t, ts.URL+"/v1/detect",
		api.DetectRequest{Table: unionWire, Provenance: app.Plan.Provenance, Key: key}, &det)
	if status != http.StatusOK {
		t.Fatalf("detect: %d\n%s", status, raw)
	}
	if !det.Match {
		t.Fatalf("mark not detected over the union: %+v", det)
	}
}

func TestHTTPPlanEndpoint(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	tbl := testTable(t, 1500)
	wire, err := api.EncodeTable(tbl, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	var plan api.PlanResponse
	status, raw := postJSON(t, ts.URL+"/v1/plan",
		api.PlanRequest{Table: wire, Key: api.Key{Secret: "plan secret", Eta: 25}}, &plan)
	if status != http.StatusOK {
		t.Fatalf("plan: %d\n%s", status, raw)
	}
	if plan.Stats.Rows != tbl.NumRows() || plan.Stats.EffectiveK < plan.Stats.K {
		t.Fatalf("implausible plan stats: %+v", plan.Stats)
	}
	if plan.Plan.FormatVersion != core.PlanVersion || len(plan.Plan.Columns) == 0 {
		t.Fatalf("implausible plan payload: version=%d columns=%d",
			plan.Plan.FormatVersion, len(plan.Plan.Columns))
	}
	if len(plan.Plan.Bins) != 0 {
		t.Error("search-only plan should carry no published bin record")
	}
}

// TestHTTPAppendPlanDrift pins the wire contract for a drifting batch:
// 409 with the machine-readable plan_drift code.
func TestHTTPAppendPlanDrift(t *testing.T) {
	ts := testServer(t, Config{Defaults: core.Config{K: 15, AutoEpsilon: true}})
	all, err := datagen.Generate(datagen.Config{Rows: 2510, Seed: 42, Correlate: true, ZipfS: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := all.Slice(0, 2500)
	delta, _ := all.Slice(2500, 2510)
	key := api.Key{Secret: "drift secret", Eta: 25}

	baseWire, err := api.EncodeTable(base, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	var prot api.ProtectResponse
	status, raw := postJSON(t, ts.URL+"/v1/protect", api.ProtectRequest{Table: baseWire, Key: key}, &prot)
	if status != http.StatusOK {
		t.Fatalf("protect: %d\n%s", status, raw)
	}

	drifting := delta.Clone()
	if err := drifting.SetCell(0, "symptom", "uncatalogued syndrome"); err != nil {
		t.Fatal(err)
	}
	wire, err := api.EncodeTable(drifting, api.OutputRows)
	if err != nil {
		t.Fatal(err)
	}
	status, raw = postJSON(t, ts.URL+"/v1/append",
		api.AppendRequest{Table: wire, Plan: prot.Plan, Key: key}, nil)
	if status != http.StatusConflict {
		t.Fatalf("drifting append: status %d, want 409\n%s", status, raw)
	}
	var envelope api.ErrorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != api.CodePlanDrift {
		t.Fatalf("error code %q, want %q", envelope.Error.Code, api.CodePlanDrift)
	}

	// An unapplied (bin-record-free) plan is a provenance problem, not a
	// drift: 400 bad_provenance.
	empty := prot.Plan
	empty.Bins = nil
	empty.Rows = 0
	status, raw = postJSON(t, ts.URL+"/v1/append",
		api.AppendRequest{Table: wire, Plan: empty, Key: key}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unapplied plan: status %d, want 400\n%s", status, raw)
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != api.CodeBadProvenance {
		t.Fatalf("error code %q, want %q", envelope.Error.Code, api.CodeBadProvenance)
	}
}
